package lruleak

// The secret-recovery defense matrix is pinned byte-for-byte at a fixed
// seed, matching the PR 2 pinning scheme (see determinism_test.go):
// the simulator is exactly reproducible from a seed, so the golden is
// machine-independent and regenerable with UPDATE_GOLDEN=1. The pinned
// table is also asserted semantically: it must SHOW the acceptance
// property — full recovery on the unprotected cache, chance under DAWG.

import (
	"testing"

	"repro/internal/attack"
)

// attackGoldenSpec keeps the pinned matrix small enough for CI: one
// victim, the headline policy, every defense.
func attackGoldenSpec() AttackSpec {
	return AttackSpec{
		Victims:  []string{"ttable"},
		Policies: []ReplacementKind{TreePLRU},
		Symbols:  6,
	}
}

func TestAttackSweepGoldenPinned(t *testing.T) {
	cells := AttackSweep(attackGoldenSpec(), goldenSeed, RunOptions{Workers: 1})
	want := RenderAttackSweep(cells)
	checkGolden(t, "attacksweep", want)

	for _, workers := range []int{2, 8} {
		got := RenderAttackSweep(AttackSweep(attackGoldenSpec(), goldenSeed, RunOptions{Workers: workers}))
		if got != want {
			t.Errorf("attack sweep at Workers=%d diverges from the serial run", workers)
		}
	}

	// The pinned table must exhibit the acceptance property.
	byDefense := map[AttackDefense]AttackCell{}
	for _, c := range cells {
		byDefense[c.Defense] = c
	}
	if base := byDefense[attack.DefenseNone]; base.Recovery.Mean != 1.0 {
		t.Errorf("baseline Tree-PLRU recovery %.2f, want 1.0", base.Recovery.Mean)
	}
	if base := byDefense[attack.DefenseNone]; base.AttackerFlagged != 1.0 || base.VictimFlagged != 0.0 {
		t.Errorf("baseline detection: attacker %.1f / victim %.1f, want flagged / clean",
			base.AttackerFlagged, base.VictimFlagged)
	}
	if dawg := byDefense[attack.DefenseDAWG]; dawg.Recovery.Mean > 0.3 {
		t.Errorf("DAWG recovery %.2f, want chance level", dawg.Recovery.Mean)
	}
}

// The full matrix (all victims × policies × defenses) must keep its
// grid shape and stay worker-invariant; its contents are exercised by
// internal/attack's tests, so one small-symbol pass suffices here.
func TestAttackSweepGridShape(t *testing.T) {
	spec := AttackSpec{Symbols: 2, Votes: 2, ProfilingRounds: 2}
	cells := AttackSweep(spec, 5, RunOptions{})
	want := 3 * 3 * 5 // victims × policies × defenses
	if len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		key := c.Victim + "/" + c.Policy.String() + "/" + c.Defense.String()
		if seen[key] {
			t.Errorf("duplicate cell %s", key)
		}
		seen[key] = true
	}
}

// The d-split partial prime at d=1 — the paper's Figure 11 operating
// point — must separate the PL-cache variants in the pinned matrix:
// the original design leaks above chance, the fixed design sits at
// chance. The canonical full prime (attacksweep.golden) cannot tell
// them apart; this golden is the key-recovery restating of Figure 11.
func TestDSplitSweepGoldenPinned(t *testing.T) {
	spec := AttackSpec{
		Victims:  []string{"ttable"},
		Policies: []ReplacementKind{TreePLRU},
		Defenses: []AttackDefense{attack.DefenseNone, attack.DefensePLCache, attack.DefensePLCacheFixed},
		Probes:   []AttackProbe{attack.ProbeDSplit(1)},
		Symbols:  6,
		Trials:   3,
	}
	cells := AttackSweep(spec, goldenSeed, RunOptions{Workers: 1})
	want := RenderAttackSweep(cells)
	checkGolden(t, "probesweep", want)

	if got := RenderAttackSweep(AttackSweep(spec, goldenSeed, RunOptions{Workers: 4})); got != want {
		t.Error("d-split sweep at Workers=4 diverges from the serial run")
	}

	byDefense := map[AttackDefense]AttackCell{}
	for _, c := range cells {
		byDefense[c.Defense] = c
	}
	chance := 8.5 // (16+1)/2 for the T-table's nibble space
	if base := byDefense[attack.DefenseNone]; base.Recovery.Mean != 1.0 {
		t.Errorf("baseline d=1 recovery %.2f, want 1.0", base.Recovery.Mean)
	}
	if pl := byDefense[attack.DefensePLCache]; pl.Recovery.Mean <= 1.0/16 || pl.Guesses.Mean > 0.7*chance {
		t.Errorf("plcache d=1 should leak above chance: recovery %.2f, guesses %.1f",
			pl.Recovery.Mean, pl.Guesses.Mean)
	}
	if fix := byDefense[attack.DefensePLCacheFixed]; fix.Recovery.Mean > 0.15 || fix.Guesses.Mean < 0.7*chance {
		t.Errorf("plcache-fix d=1 should sit at chance: recovery %.2f, guesses %.1f",
			fix.Recovery.Mean, fix.Guesses.Mean)
	}
}

// The scheduled attack — victim and attacker as unsynchronized sched
// threads — must still recover the demo key on the baseline cache in
// both sharing modes, pinned alongside the synchronous rows.
func TestScheduledSweepGoldenPinned(t *testing.T) {
	spec := AttackSpec{
		Victims:   []string{"ttable"},
		Policies:  []ReplacementKind{TrueLRU, TreePLRU},
		Defenses:  []AttackDefense{attack.DefenseNone},
		Schedules: []AttackSchedule{attack.ScheduleSync, attack.ScheduleSMT, attack.ScheduleTimeSliced},
		Symbols:   6,
		Votes:     8,
	}
	cells := AttackSweep(spec, goldenSeed, RunOptions{Workers: 1})
	want := RenderAttackSweep(cells)
	checkGolden(t, "schedsweep", want)

	if got := RenderAttackSweep(AttackSweep(spec, goldenSeed, RunOptions{Workers: 4})); got != want {
		t.Error("scheduled sweep at Workers=4 diverges from the serial run")
	}
	for _, c := range cells {
		if c.Recovery.Mean != 1.0 {
			t.Errorf("%v/%v: recovery %.2f, want 1.0 (the scheduled attack must survive jitter)",
				c.Schedule, c.Policy, c.Recovery.Mean)
		}
	}
}

// The vote-overhead study prices scheduling jitter: the scheduled
// attacks need at least as many votes per symbol as the synchronous
// baseline, and all three schedules reach full recovery by the
// ceiling.
func TestVoteOverheadGoldenPinned(t *testing.T) {
	rows := VoteOverheadStudy("ttable", TreePLRU, 8, 10, goldenSeed, RunOptions{Workers: 1})
	want := RenderVoteOverhead(rows)
	checkGolden(t, "voteoverhead", want)

	votes := map[AttackSchedule]int{}
	for _, r := range rows {
		if !r.Recovered {
			t.Errorf("%v: no full recovery within the vote ceiling", r.Schedule)
		}
		votes[r.Schedule] = r.Votes
	}
	sync := votes[attack.ScheduleSync]
	if sync < 1 {
		t.Fatalf("sync baseline votes = %d", sync)
	}
	for _, sc := range []AttackSchedule{attack.ScheduleSMT, attack.ScheduleTimeSliced} {
		if votes[sc] < sync {
			t.Errorf("%v needs %d votes, fewer than the sync baseline's %d — jitter cannot help",
				sc, votes[sc], sync)
		}
	}
}

// The detection threshold sweep: per-defense ROC curves over the
// cross-eviction criterion, pinned with their AUCs. The semantic
// anchors: the unprotected attacker is cleanly separable from the
// benign Figure 9 population (and caught at the deployed threshold
// with zero false positives), while DAWG's partitioning makes the
// attacker structurally invisible to the criterion.
func TestROCSweepGoldenPinned(t *testing.T) {
	res := ROCSweep(ROCSpec{}, goldenSeed, RunOptions{Workers: 1})
	want := RenderROC(res)
	checkGolden(t, "roc", want)

	if got := RenderROC(ROCSweep(ROCSpec{}, goldenSeed, RunOptions{Workers: 8})); got != want {
		t.Error("ROC sweep at Workers=8 diverges from the serial run")
	}

	byDefense := map[AttackDefense]DefenseROC{}
	for _, c := range res.Curves {
		byDefense[c.Defense] = c
	}
	if none := byDefense[attack.DefenseNone]; none.ROC.AUC < 0.9 {
		t.Errorf("unprotected AUC %.3f, want near-perfect separability", none.ROC.AUC)
	}
	if p := byDefense[attack.DefenseNone].ROC.PointAt(res.Deployed); p.TPR != 1.0 || p.FPR != 0.0 {
		t.Errorf("deployed operating point TPR=%.2f FPR=%.2f, want 1, 0", p.TPR, p.FPR)
	}
	if dawg := byDefense[attack.DefenseDAWG]; dawg.ROC.AUC != 0.0 {
		t.Errorf("DAWG AUC %.3f, want 0 (structurally zero cross-evictions)", dawg.ROC.AUC)
	}
	// Monotone curves: lowering the threshold only adds flags.
	for _, c := range res.Curves {
		for i := 1; i < len(c.ROC.Points); i++ {
			a, b := c.ROC.Points[i-1], c.ROC.Points[i]
			if b.TPR < a.TPR || b.FPR < a.FPR {
				t.Errorf("%v: curve not monotone at point %d", c.Defense, i)
			}
		}
	}
}

// Trials must aggregate: a 2-trial cell reports N == 2 and a flagged
// fraction in [0, 1].
func TestAttackSweepTrialsAggregate(t *testing.T) {
	spec := AttackSpec{
		Victims:  []string{"sqmul"},
		Policies: []ReplacementKind{TreePLRU},
		Defenses: []AttackDefense{attack.DefenseNone},
		Symbols:  4, Votes: 2, ProfilingRounds: 4,
		Trials: 2,
	}
	cells := AttackSweep(spec, 11, RunOptions{})
	if len(cells) != 1 {
		t.Fatalf("got %d cells", len(cells))
	}
	c := cells[0]
	if c.Recovery.N != 2 {
		t.Errorf("recovery summary over %d trials, want 2", c.Recovery.N)
	}
	if c.AttackerFlagged < 0 || c.AttackerFlagged > 1 || c.VictimFlagged < 0 || c.VictimFlagged > 1 {
		t.Errorf("flagged fractions out of range: %v %v", c.AttackerFlagged, c.VictimFlagged)
	}
}
