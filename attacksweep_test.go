package lruleak

// The secret-recovery defense matrix is pinned byte-for-byte at a fixed
// seed, matching the PR 2 pinning scheme (see determinism_test.go):
// the simulator is exactly reproducible from a seed, so the golden is
// machine-independent and regenerable with UPDATE_GOLDEN=1. The pinned
// table is also asserted semantically: it must SHOW the acceptance
// property — full recovery on the unprotected cache, chance under DAWG.

import (
	"testing"

	"repro/internal/attack"
)

// attackGoldenSpec keeps the pinned matrix small enough for CI: one
// victim, the headline policy, every defense.
func attackGoldenSpec() AttackSpec {
	return AttackSpec{
		Victims:  []string{"ttable"},
		Policies: []ReplacementKind{TreePLRU},
		Symbols:  6,
	}
}

func TestAttackSweepGoldenPinned(t *testing.T) {
	cells := AttackSweep(attackGoldenSpec(), goldenSeed, RunOptions{Workers: 1})
	want := RenderAttackSweep(cells)
	checkGolden(t, "attacksweep", want)

	for _, workers := range []int{2, 8} {
		got := RenderAttackSweep(AttackSweep(attackGoldenSpec(), goldenSeed, RunOptions{Workers: workers}))
		if got != want {
			t.Errorf("attack sweep at Workers=%d diverges from the serial run", workers)
		}
	}

	// The pinned table must exhibit the acceptance property.
	byDefense := map[AttackDefense]AttackCell{}
	for _, c := range cells {
		byDefense[c.Defense] = c
	}
	if base := byDefense[attack.DefenseNone]; base.Recovery.Mean != 1.0 {
		t.Errorf("baseline Tree-PLRU recovery %.2f, want 1.0", base.Recovery.Mean)
	}
	if base := byDefense[attack.DefenseNone]; base.AttackerFlagged != 1.0 || base.VictimFlagged != 0.0 {
		t.Errorf("baseline detection: attacker %.1f / victim %.1f, want flagged / clean",
			base.AttackerFlagged, base.VictimFlagged)
	}
	if dawg := byDefense[attack.DefenseDAWG]; dawg.Recovery.Mean > 0.3 {
		t.Errorf("DAWG recovery %.2f, want chance level", dawg.Recovery.Mean)
	}
}

// The full matrix (all victims × policies × defenses) must keep its
// grid shape and stay worker-invariant; its contents are exercised by
// internal/attack's tests, so one small-symbol pass suffices here.
func TestAttackSweepGridShape(t *testing.T) {
	spec := AttackSpec{Symbols: 2, Votes: 2, ProfilingRounds: 2}
	cells := AttackSweep(spec, 5, RunOptions{})
	want := 3 * 3 * 5 // victims × policies × defenses
	if len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		key := c.Victim + "/" + c.Policy.String() + "/" + c.Defense.String()
		if seen[key] {
			t.Errorf("duplicate cell %s", key)
		}
		seen[key] = true
	}
}

// Trials must aggregate: a 2-trial cell reports N == 2 and a flagged
// fraction in [0, 1].
func TestAttackSweepTrialsAggregate(t *testing.T) {
	spec := AttackSpec{
		Victims:  []string{"sqmul"},
		Policies: []ReplacementKind{TreePLRU},
		Defenses: []AttackDefense{attack.DefenseNone},
		Symbols:  4, Votes: 2, ProfilingRounds: 4,
		Trials: 2,
	}
	cells := AttackSweep(spec, 11, RunOptions{})
	if len(cells) != 1 {
		t.Fatalf("got %d cells", len(cells))
	}
	c := cells[0]
	if c.Recovery.N != 2 {
		t.Errorf("recovery summary over %d trials, want 2", c.Recovery.N)
	}
	if c.AttackerFlagged < 0 || c.AttackerFlagged > 1 || c.VictimFlagged < 0 || c.VictimFlagged > 1 {
		t.Errorf("flagged fractions out of range: %v %v", c.AttackerFlagged, c.VictimFlagged)
	}
}
