package lruleak

import (
	"strings"
	"testing"

	"repro/internal/spectre"
)

func TestEncodeDecodeString(t *testing.T) {
	in := "THE MAGIC WORDS ARE 42"
	enc := EncodeString(in)
	for i, v := range enc {
		if int(v) >= SpectreAlphabet {
			t.Fatalf("encoded byte %d = %d outside alphabet", i, v)
		}
	}
	if got := DecodeString(enc); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
	if got := DecodeString(EncodeString("lower case")); got != "LOWER CASE" {
		t.Errorf("lower-case fold = %q", got)
	}
	if DecodeString([]byte{61}) != "?" {
		t.Error("unknown value should decode to ?")
	}
}

func TestProfileAccessors(t *testing.T) {
	if len(Profiles()) != 3 {
		t.Fatal("profile count")
	}
	if SandyBridge().Arch != "Sandy Bridge" || Skylake().Arch != "Skylake" || Zen().Arch != "Zen" {
		t.Error("profile constructors broken")
	}
	if _, err := ProfileByName("zen"); err != nil {
		t.Error(err)
	}
}

func TestQuickstartFlow(t *testing.T) {
	// The README quick-start must work as written.
	setup := NewChannel(ChannelConfig{
		Algorithm: Alg1SharedMemory,
		Mode:      SMT,
		Tr:        600, Ts: 6000,
		Seed: 99,
	})
	trace := setup.Run([]byte{0, 1}, true, 100, 1<<40)
	bits := trace.RawBits(setup.HitMeansOne())
	if len(bits) != 100 {
		t.Fatalf("got %d bits", len(bits))
	}
}

func TestTableIIRender(t *testing.T) {
	out := RenderTableII(TableII())
	for _, want := range []string{"Sandy Bridge", "Skylake", "Zen", "12", "17"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIRenderAndShape(t *testing.T) {
	cells := TableI(300, 5, RunOptions{})
	out := RenderTableI(cells)
	if !strings.Contains(out, "Tree-PLRU") || !strings.Contains(out, "sequential") {
		t.Errorf("Table I render incomplete:\n%s", out[:200])
	}
}

func TestTableVValuesMatchPaperScale(t *testing.T) {
	rows := TableV(3, RunOptions{})
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Paper: LRU 31-52 cycles, F+R(L1) 35-56, F+R(mem) 232-336.
		if r.LRU < 25 || r.LRU > 60 {
			t.Errorf("%s: LRU encode %d cycles", r.Profile.Name, r.LRU)
		}
		if r.FRMem < 150 || r.FRMem < r.FRL1 || r.FRL1 < r.LRU {
			t.Errorf("%s: ordering broken: mem=%d l1=%d lru=%d",
				r.Profile.Name, r.FRMem, r.FRL1, r.LRU)
		}
	}
	if RenderTableV(rows) == "" {
		t.Error("empty render")
	}
}

func TestFigure3SeparatesFigure13DoesNot(t *testing.T) {
	f3 := Figure3(SandyBridge(), 800, 7, RunOptions{})
	if !f3.Separable {
		t.Error("Figure 3: pointer chase should separate hit from miss")
	}
	f13 := Figure13(SandyBridge(), 800, 7, RunOptions{})
	if f13.Separable {
		t.Error("Figure 13: single access must NOT separate (Appendix A)")
	}
	if !strings.Contains(f3.Render(), "threshold") {
		t.Error("render incomplete")
	}
}

func TestFigure5TraceBimodal(t *testing.T) {
	f := Figure5(SandyBridge(), Alg1SharedMemory, 200, 11, RunOptions{})
	var lo, hi int
	for _, o := range f.Trace.Observations {
		if o.Latency > f.Trace.Threshold {
			hi++
		} else {
			lo++
		}
	}
	if lo < 40 || hi < 40 {
		t.Errorf("trace not bimodal: %d below / %d above threshold", lo, hi)
	}
	if f.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure7SmoothedWave(t *testing.T) {
	f := Figure7(Alg1SharedMemory, 400, 13, RunOptions{})
	if len(f.Smoothed) != len(f.Trace.Observations) {
		t.Fatal("smoothing length mismatch")
	}
	// The moving average must actually vary (a wave, not a flat line).
	min, max := f.Smoothed[0], f.Smoothed[0]
	for _, v := range f.Smoothed {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 1 {
		t.Errorf("smoothed trace flat: range %v", max-min)
	}
}

func TestFigure9RowsComplete(t *testing.T) {
	rows := Figure9(150_000, 3, RunOptions{})
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	out := RenderFigure9(rows)
	for _, want := range []string{"mcf", "gcc", "libquantum", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 9 output missing %q", want)
		}
	}
}

func TestFigure11LeakThenFixed(t *testing.T) {
	res := Figure11(200, 17, RunOptions{})
	if res.Original.Separation <= res.Fixed.Separation {
		t.Errorf("fix did not reduce leak: %v -> %v",
			res.Original.Separation, res.Fixed.Separation)
	}
	if !res.Fixed.AlwaysHit {
		t.Error("fixed PL cache should always hit")
	}
	if !strings.Contains(res.Render(), "PL cache") {
		t.Error("render incomplete")
	}
}

func TestSpectreEndToEnd(t *testing.T) {
	secret := EncodeString("SQUEAMISH")
	a := NewSpectre(SpectreConfig{Disclosure: DiscLRUAlg1, Seed: 19}, secret)
	got := a.RecoverSecret()
	if DecodeString(got) != "SQUEAMISH" {
		t.Errorf("recovered %q", DecodeString(got))
	}
}

func TestTableVIIAccuracies(t *testing.T) {
	rows := TableVII(EncodeString("AB"), 23, RunOptions{})
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Disclosure == spectre.LRUAlg1 && r.Accuracy < 0.9 {
			t.Errorf("%s LRU Alg.1 accuracy %v", r.Profile.Name, r.Accuracy)
		}
	}
	if RenderTableVII(rows) == "" {
		t.Error("empty render")
	}
}

func TestTableIVShape(t *testing.T) {
	cells := TableIV(24, 2, 29, RunOptions{})
	if len(cells) != 8 {
		t.Fatalf("%d cells", len(cells))
	}
	// SMT on Intel must be Kbps-scale; time-sliced bps-scale; Alg2
	// time-sliced unmeasurable.
	var intelSMT, intelTS, alg2TS float64
	for _, c := range cells {
		if c.Profile.Arch == "Sandy Bridge" {
			switch {
			case c.Mode == SMT && c.Algorithm == Alg1SharedMemory:
				intelSMT = c.RateBps
			case c.Mode == TimeSliced && c.Algorithm == Alg1SharedMemory:
				intelTS = c.RateBps
			case c.Mode == TimeSliced && c.Algorithm == Alg2NoSharedMemory:
				alg2TS = c.RateBps
			}
		}
	}
	if intelSMT < 100_000 {
		t.Errorf("Intel SMT rate %v bps, want 100s of Kbps", intelSMT)
	}
	if intelTS <= 0 || intelTS > 100 {
		t.Errorf("Intel time-sliced rate %v bps, want single-digit bps", intelTS)
	}
	if alg2TS != 0 {
		t.Errorf("Algorithm 2 time-sliced should be unmeasurable, got %v", alg2TS)
	}
	if !strings.Contains(RenderTableIV(cells), "Kbps") {
		t.Error("render missing rates")
	}
}

func TestRenderFigure4And6(t *testing.T) {
	pts := []Figure4Point{{Tr: 600, Ts: 6000, D: 8, RateKbps: 633, ErrorRate: 0.01}}
	if !strings.Contains(RenderFigure4(pts), "Tr=600") {
		t.Error("figure 4 render")
	}
	p6 := []Figure6Point{{Tr: 1000, D: 8, SendingBit: 1, FractionOnes: 0.3}}
	if !strings.Contains(RenderFigure6(p6), "Sending 1") {
		t.Error("figure 6 render")
	}
}
