// securecache evaluates the paper's Section IX defences against the LRU
// channel: the Partition-Locked cache before and after the fix (Figure 11),
// the random-fill cache the channel walks straight through, the DAWG-style
// partition that closes it, and the replacement-policy mitigation's
// performance price (Figure 9).
//
// Run: go run ./examples/securecache
package main

import (
	"fmt"

	"repro"
	"repro/internal/secure"
)

func main() {
	fmt.Println("=== 1. Partition-Locked cache (Figure 11) ===")
	res := lruleak.Figure11(300, 3, lruleak.RunOptions{})
	fmt.Print(res.Render())

	fmt.Println("\n=== 2. Random-fill cache (Section IX-B, randomization) ===")
	acc := secure.RandomFillLeakExperiment(1000, 120, 3)
	fmt.Printf("hit-encoded LRU leak decodes at %.1f%% (chance 50%%): the channel SURVIVES,\n", 100*acc)
	fmt.Println("because hits still update replacement state under random fill.")

	fmt.Println("\n=== 3. DAWG-style way + LRU-state partitioning ===")
	acc = secure.DAWGLeakExperiment(4000, 3)
	fmt.Printf("leak decodes at %.1f%% (chance 50%%): partitioning the replacement\n", 100*acc)
	fmt.Println("state alongside the ways CLOSES the channel.")

	fmt.Println("\n=== 4. Replacing LRU outright: the performance bill (Figure 9) ===")
	rows := lruleak.Figure9(400_000, 3, lruleak.RunOptions{})
	fmt.Print(lruleak.RenderFigure9(rows))
	fmt.Println("\nFIFO or Random in the L1D removes the LRU state entirely at a CPI")
	fmt.Println("cost of a couple of percent — the paper's cheapest clean mitigation.")
}
