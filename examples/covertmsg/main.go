// covertmsg sends a real text message across the LRU covert channel —
// Algorithm 2, so the two processes share NO memory at all — and decodes it
// on the receiving side, reporting the effective error rate the same way
// the paper's Section V does (Wagner–Fischer edit distance).
//
// Run: go run ./examples/covertmsg [-msg "SOME TEXT"]
package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/stats"
)

func main() {
	msg := flag.String("msg", "ATTACK AT DAWN", "message to smuggle")
	flag.Parse()

	// Expand the text to bits, most significant first, 5 bits per
	// character of a 32-letter alphabet to keep the demo short.
	var sent []byte
	for _, c := range lruleak.EncodeString(*msg) {
		for b := 4; b >= 0; b-- {
			sent = append(sent, (c>>uint(b))&1)
		}
	}

	setup := lruleak.NewChannel(lruleak.ChannelConfig{
		Algorithm: lruleak.Alg2NoSharedMemory,
		Mode:      lruleak.SMT,
		Tr:        600,
		Ts:        12_000,
		D:         1, // odd d: the Tree-PLRU parity effect of Section V-A
		Seed:      7,
	})

	fmt.Printf("sending %q as %d bits over Algorithm 2 (no shared memory)\n", *msg, len(sent))

	// One full transmission plus margin.
	wall := setup.Cfg.Ts * uint64(len(sent)+4)
	trace := setup.Run(sent, false, 0, wall)

	raw := trace.RawBits(setup.HitMeansOne())
	perBit := float64(setup.Cfg.Ts) / float64(setup.Cfg.Tr)
	if len(trace.Observations) > 1 {
		span := trace.Observations[len(trace.Observations)-1].Wall - trace.Observations[0].Wall
		perBit = float64(setup.Cfg.Ts) / (float64(span) / float64(len(trace.Observations)-1))
	}
	decoded := stats.RunLengthDecode(raw, perBit)

	// Re-pack 5-bit groups into characters at the best alignment.
	bestErr, bestOff := 1.0, 0
	for off := 0; off+len(sent) <= len(decoded); off++ {
		if e := stats.BitErrorRate(sent, decoded[off:off+len(sent)]); e < bestErr {
			bestErr, bestOff = e, off
		}
	}
	var chars []byte
	for i := bestOff; i+5 <= len(decoded) && len(chars) < len(*msg); i += 5 {
		var v byte
		for b := 0; b < 5; b++ {
			v = v<<1 | decoded[i+b]
		}
		chars = append(chars, v)
	}

	fmt.Printf("receiver captured %d samples (~%.1f per bit)\n", len(trace.Observations), perBit)
	fmt.Printf("decoded: %q\n", lruleak.DecodeString(chars))
	fmt.Printf("bit error rate (edit distance / sent bits): %.1f%%\n", 100*bestErr)
}
