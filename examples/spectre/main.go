// spectre shows the Section VIII result: a Spectre v1 bounds-check-bypass
// attack that exfiltrates the victim's secret through the LRU channel. The
// sender side of the channel is ONE speculative cache access — a hit — so
// the attack fits a speculation window an order of magnitude smaller than
// the classic Flush+Reload gadget requires.
//
// Run: go run ./examples/spectre
package main

import (
	"fmt"

	"repro"
	"repro/internal/spectre"
)

func main() {
	secretText := "THE MAGIC WORDS ARE SQUEAMISH OSSIFRAGE"
	secret := lruleak.EncodeString(secretText)

	fmt.Println("=== Spectre v1 with the LRU-channel disclosure primitive ===")
	attack := lruleak.NewSpectre(lruleak.SpectreConfig{
		Disclosure: lruleak.DiscLRUAlg1,
		Seed:       1,
	}, secret)

	fmt.Printf("planted secret: %q\n", secretText)
	fmt.Print("leaking:        ")
	got := make([]byte, len(secret))
	for i := range secret {
		got[i], _ = attack.RecoverByte(i)
		fmt.Print(lruleak.DecodeString(got[i : i+1]))
	}
	fmt.Println()

	fmt.Println("\n=== Why the LRU channel matters for transient execution ===")
	fmt.Println("smallest speculation window that still leaks (binary search):")
	probe := lruleak.EncodeString("AB")
	for _, c := range []struct {
		name string
		d    spectre.Disclosure
	}{
		{"LRU Algorithm 1 (hit-encoded)", lruleak.DiscLRUAlg1},
		{"LRU Algorithm 2 (no shared memory)", lruleak.DiscLRUAlg2},
		{"Flush+Reload via L1 eviction", lruleak.DiscFRL1},
		{"Flush+Reload via clflush to memory", lruleak.DiscFRMem},
	} {
		w := spectre.MinimumWindow(lruleak.SpectreConfig{Disclosure: c.d, Seed: 1}, probe, 1.0, 4, 400)
		fmt.Printf("  %-36s %4d cycles\n", c.name, w)
	}
	fmt.Println("\nthe F+R(mem) gadget needs its probe line to come back from memory")
	fmt.Println("inside the window; the LRU gadget only needs two cache hits.")
}
