// Quickstart: open an LRU covert channel between two simulated
// hyper-threads and watch the receiver decode the sender's bits.
//
// This is the paper's Algorithm 1 at its Figure 5 operating point: the
// sender and receiver share cache line 0 (as if through a shared library);
// the sender encodes a 1 by merely TOUCHING the shared line — a cache hit,
// the novelty of the attack — and the receiver reads the bit back by
// timing one access after walking the set.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	setup := lruleak.NewChannel(lruleak.ChannelConfig{
		Profile:   lruleak.SandyBridge(),
		Algorithm: lruleak.Alg1SharedMemory,
		Mode:      lruleak.SMT,
		Tr:        600,  // receiver samples every 600 cycles
		Ts:        6000, // sender holds each bit for 6000 cycles
		Seed:      42,
	})

	// The sender transmits 01010101... forever; collect 120 receiver
	// samples (about 12 bit periods).
	trace := setup.Run([]byte{0, 1}, true, 120, 1<<40)

	fmt.Printf("receiver took %d timing samples; hit/miss threshold %.1f cycles\n\n",
		len(trace.Observations), trace.Threshold)

	fmt.Println("sample  latency  decoded bit")
	bits := trace.RawBits(setup.HitMeansOne())
	for i, o := range trace.Observations {
		bar := ""
		for j := 0; j < int(o.Latency-30); j++ {
			bar += "#"
		}
		fmt.Printf("%4d   %6.1f   %d  %s\n", i, o.Latency, bits[i], bar)
	}

	rate := setup.Hier.Profile().BitsPerSecond(float64(setup.Cfg.Ts))
	fmt.Printf("\nchannel rate at Ts=%d on %s: %.0f Kbit/s per cache set\n",
		setup.Cfg.Ts, setup.Hier.Profile(), rate/1000)
}
