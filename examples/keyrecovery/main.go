// keyrecovery walks through the secret-recovery side channel end to
// end: a victim whose single secret-dependent access per event — the
// case flush- and eviction-based attacks miss — leaks its key through
// the L1 replacement state to a prime/probe template attacker, and the
// Section IX defense matrix shows which designs stop it and whether a
// counter monitor can see the attack happening.
//
// Run: go run ./examples/keyrecovery
package main

import (
	"fmt"

	"repro"
	"repro/internal/victim"
)

func main() {
	prof := lruleak.SandyBridge()
	v, err := lruleak.NewVictim("ttable", prof.L1Sets)
	if err != nil {
		panic(err)
	}
	secret := victim.DemoSecret(v, 16, 42)

	fmt.Println("=== 1. The victim: one secret-dependent access per event ===")
	fmt.Printf("an AES-style victim reads T[nibble] once per lookup; its %d-line\n", len(v.TableLines()))
	fmt.Println("table is cached the whole time, so the access is a plain cache hit")
	fmt.Println("buried in benign traffic — nothing a miss counter would notice.")
	fmt.Printf("planted key: %s\n", victim.FormatSecret(v, secret))

	fmt.Println("\n=== 2. The attack: prime the LRU state, probe which way moved ===")
	res := lruleak.RunAttack(lruleak.AttackConfig{
		Victim: v, Policy: lruleak.TreePLRU, Profile: prof, Seed: 7,
	}, secret)
	fmt.Printf("recovered  : %s\n", victim.FormatSecret(v, res.Recovered))
	fmt.Printf("recovery rate %.2f, guesses-to-first-correct %.1f (chance %.1f)\n",
		res.RecoveryRate, res.MeanGuesses, lruleak.AttackChanceGuesses(v))

	fmt.Println("\n=== 3. Is it detectable while it runs? ===")
	fmt.Printf("attacker: %s\n", res.AttackerExplain)
	fmt.Printf("victim:   %s\n", res.VictimExplain)
	fmt.Println("a miss-rate line alone cannot tell the probing from any memory-heavy")
	fmt.Println("program; the cross-eviction rate — fills that displace ANOTHER")
	fmt.Println("process's lines — is the prime/probe signature the monitor keys on.")

	fmt.Println("\n=== 4. The defense matrix: which design stops the attack ===")
	cells := lruleak.AttackSweep(lruleak.AttackSpec{
		Victims:  []string{"ttable"},
		Policies: []lruleak.ReplacementKind{lruleak.TreePLRU},
		Symbols:  8,
	}, 7, lruleak.RunOptions{})
	fmt.Print(lruleak.RenderAttackSweep(cells))
	fmt.Println("\nDAWG's way+state partitioning and the PL designs drive exact recovery")
	fmt.Println("to chance; random fill still leaks rank information (guesses-to-first-")
	fmt.Println("correct well below chance) even though exact recovery is rare.")
}
