package lruleak

// EmitBench exposes emitBench to the external test package. The
// service throughput benchmark must live in package lruleak_test
// (the root package cannot import repro/internal/service from an
// internal test file — import cycle), and routing its records through
// the same emitter keeps BENCH_JSON a single deduplicated file across
// both packages' benchmarks.
var EmitBench = emitBench
