package lruleak

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches called out in DESIGN.md §5. Each bench regenerates its
// experiment end to end; b.ReportMetric attaches the headline quantity so
// `go test -bench` output doubles as a results table.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/perf"
	"repro/internal/replacement"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/stats"
	"repro/internal/uarch"
)

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := TableI(1000, 1)
		if len(cells) != 48 {
			b.Fatal("table shape")
		}
	}
}

func BenchmarkFigure3PointerChase(b *testing.B) {
	var sep int
	for i := 0; i < b.N; i++ {
		p := Figure3(SandyBridge(), 500, uint64(i+1))
		if p.Separable {
			sep++
		}
	}
	b.ReportMetric(float64(sep)/float64(b.N), "separable-frac")
}

func BenchmarkFigure13SingleAccess(b *testing.B) {
	var sep int
	for i := 0; i < b.N; i++ {
		p := Figure13(SandyBridge(), 500, uint64(i+1))
		if p.Separable {
			sep++
		}
	}
	// Appendix A: this should stay at 0.
	b.ReportMetric(float64(sep)/float64(b.N), "separable-frac")
}

func BenchmarkFigure4Alg1(b *testing.B) {
	var err float64
	for i := 0; i < b.N; i++ {
		pts := Figure4(SandyBridge(), Alg1SharedMemory, 32, 2, uint64(i+1))
		for _, p := range pts {
			err += p.ErrorRate
		}
		err /= float64(len(pts))
	}
	b.ReportMetric(err, "mean-error-rate")
}

func BenchmarkFigure4Alg2(b *testing.B) {
	var err float64
	for i := 0; i < b.N; i++ {
		pts := Figure4(SandyBridge(), Alg2NoSharedMemory, 32, 2, uint64(i+1))
		for _, p := range pts {
			err += p.ErrorRate
		}
		err /= float64(len(pts))
	}
	b.ReportMetric(err, "mean-error-rate")
}

func BenchmarkFigure5Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := Figure5(SandyBridge(), Alg1SharedMemory, 200, uint64(i+1))
		if len(f.Trace.Observations) != 200 {
			b.Fatal("trace length")
		}
	}
}

func BenchmarkFigure6TimeSliced(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		pts := Figure6(SandyBridge(), []uint64{10_000_000}, 40, uint64(i+1))
		var f0, f1 float64
		for _, p := range pts {
			if p.D == 8 && p.SendingBit == 0 {
				f0 = p.FractionOnes
			}
			if p.D == 8 && p.SendingBit == 1 {
				f1 = p.FractionOnes
			}
		}
		gap += f1 - f0
	}
	b.ReportMetric(gap/float64(b.N), "d8-separation")
}

func BenchmarkFigure7AMDTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := Figure7(Alg1SharedMemory, 300, uint64(i+1))
		if len(f.Smoothed) != len(f.Trace.Observations) {
			b.Fatal("smoothing length")
		}
	}
}

func BenchmarkFigure8AMDTimeSliced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := Figure6(Zen(), []uint64{10_000_000}, 30, uint64(i+1))
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure9ReplacementPolicies(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		rows := Figure9(300_000, uint64(i+1))
		var fifo []float64
		for _, r := range rows {
			fifo = append(fifo, r.NormCPI["FIFO"])
		}
		geo = geomean(fifo)
	}
	b.ReportMetric(geo, "fifo-cpi-vs-plru")
}

func BenchmarkFigure11PLCache(b *testing.B) {
	var sep float64
	for i := 0; i < b.N; i++ {
		res := Figure11(150, uint64(i+1))
		sep += res.Original.Separation - res.Fixed.Separation
	}
	b.ReportMetric(sep/float64(b.N), "leak-amplitude-removed")
}

func BenchmarkFigure14SkylakeTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := Figure5(Skylake(), Alg1SharedMemory, 200, uint64(i+1))
		if len(f.Trace.Observations) != 200 {
			b.Fatal("trace length")
		}
	}
}

func BenchmarkFigure15SkylakeTimeSliced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := Figure6(Skylake(), []uint64{10_000_000}, 30, uint64(i+1))
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := TableIV(32, 2, uint64(i+1))
		if len(cells) != 8 {
			b.Fatalf("table IV has %d cells", len(cells))
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	var lru float64
	for i := 0; i < b.N; i++ {
		rows := TableV(uint64(i + 1))
		lru = float64(rows[0].LRU)
	}
	b.ReportMetric(lru, "lru-encode-cycles")
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := TableVI(100, uint64(i+1))
		if len(rows) != 12 {
			b.Fatalf("table VI has %d rows", len(rows))
		}
	}
}

func BenchmarkTableVII(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		rows := TableVII(EncodeString("KEY"), uint64(i+1))
		for _, r := range rows {
			if r.Disclosure == spectre.LRUAlg1 {
				acc += r.Accuracy
			}
		}
	}
	b.ReportMetric(acc/float64(2*b.N), "lru-alg1-recovery")
}

func BenchmarkSpectreLRUChannel(b *testing.B) {
	secret := EncodeString("THE MAGIC WORDS ARE SQUEAMISH OSSIFRAGE")
	var acc float64
	for i := 0; i < b.N; i++ {
		a := NewSpectre(SpectreConfig{Disclosure: DiscLRUAlg1, Seed: uint64(i + 1)}, secret)
		acc += a.Accuracy()
	}
	b.ReportMetric(acc/float64(b.N), "recovery-accuracy")
}

// --- Ablation benches (DESIGN.md §5) ---

// Associativity sweep for the Table I study: eviction reliability of
// Tree-PLRU Sequence 1 across 4/8/16 ways.
func BenchmarkAblationAssociativity(b *testing.B) {
	for _, ways := range []int{4, 8, 16} {
		b.Run(benchName("ways", ways), func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				res := core.RunEvictionStudy(core.EvictionStudyConfig{
					Policy: replacement.TreePLRU, Ways: ways,
					Trials: 2000, Seed: uint64(i + 1),
				}, core.InitSequential, core.Seq1)
				p = res.Prob[0]
			}
			b.ReportMetric(p, "evict-prob-iter1")
		})
	}
}

// Pointer-chase chain-length sweep: how many local elements the probe needs
// before hit and miss separate on the Sandy Bridge profile.
func BenchmarkAblationChainLength(b *testing.B) {
	for _, chain := range []int{3, 5, 7, 11, 15} {
		b.Run(benchName("chain", chain), func(b *testing.B) {
			var sep int
			for i := 0; i < b.N; i++ {
				s := NewChannel(ChannelConfig{ChainLen: chain, Seed: uint64(i + 1)})
				if chaseSeparates(s) {
					sep++
				}
			}
			b.ReportMetric(float64(sep)/float64(b.N), "separable-frac")
		})
	}
}

// TSC-granularity sweep: at what readout quantum the single-shot channel
// dies (the Intel vs AMD order-of-magnitude gap of Section VI).
func BenchmarkAblationTSCGranularity(b *testing.B) {
	for _, quantum := range []int{1, 4, 8, 16, 24, 48} {
		b.Run(benchName("quantum", quantum), func(b *testing.B) {
			prof := uarch.SandyBridge()
			prof.TSCQuantum = quantum
			var err float64
			for i := 0; i < b.N; i++ {
				s := NewChannel(ChannelConfig{
					Profile: prof, Algorithm: Alg1SharedMemory,
					Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: uint64(i + 1),
				})
				err += s.MeasureErrorRate(32, 3).ErrorRate
			}
			b.ReportMetric(err/float64(b.N), "error-rate")
		})
	}
}

// d-parity ablation: the Section V-A observation that even d fails on
// Tree-PLRU for Algorithm 2.
func BenchmarkAblationDParity(b *testing.B) {
	for _, d := range []int{1, 2, 4, 5} {
		b.Run(benchName("d", d), func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				s := NewChannel(ChannelConfig{
					Algorithm: Alg2NoSharedMemory, Mode: sched.SMT,
					Tr: 600, Ts: 6000, D: d, Seed: uint64(i + 1),
				})
				err += s.MeasureErrorRate(32, 3).ErrorRate
			}
			b.ReportMetric(err/float64(b.N), "error-rate")
		})
	}
}

// Spectre rounds ablation: randomized-round averaging vs the prefetcher
// (Appendix C).
func BenchmarkAblationSpectreRounds(b *testing.B) {
	secret := EncodeString("KEY")
	for _, rounds := range []int{1, 4, 16} {
		b.Run(benchName("rounds", rounds), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				a := NewSpectre(SpectreConfig{
					Disclosure: DiscLRUAlg2, Prefetcher: PrefetchNextLine,
					Rounds: rounds, Seed: uint64(i + 1),
				}, secret)
				acc += a.Accuracy()
			}
			b.ReportMetric(acc/float64(b.N), "recovery-accuracy")
		})
	}
}

// Minimum speculation window per disclosure primitive (Section VIII).
func BenchmarkAblationSpeculationWindow(b *testing.B) {
	secret := EncodeString("AB")
	for _, d := range []struct {
		name string
		disc spectre.Disclosure
	}{{"lru1", spectre.LRUAlg1}, {"lru2", spectre.LRUAlg2}, {"frmem", spectre.FRMem}} {
		b.Run(d.name, func(b *testing.B) {
			var w float64
			for i := 0; i < b.N; i++ {
				w = float64(spectre.MinimumWindow(
					SpectreConfig{Disclosure: d.disc, Seed: uint64(i + 1)},
					secret, 1.0, 4, 400))
			}
			b.ReportMetric(w, "min-window-cycles")
		})
	}
}

// Multi-set parallel channel (Section IV extension): per-bit accuracy and
// effective parallel throughput with 4 lanes.
func BenchmarkMultiSetChannel(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		m := NewMultiChannel(ChannelConfig{
			Algorithm: Alg1SharedMemory, Mode: sched.SMT,
			Tr: 2000, Ts: 20_000, Seed: uint64(i + 1),
		}, []int{3, 9, 17, 30})
		acc += m.MeasureWordAccuracy([][]byte{{1, 0, 1, 0}, {0, 1, 1, 0}}, 100)
	}
	b.ReportMetric(acc/float64(b.N), "per-bit-accuracy")
}

// InvisiSpec mitigation (Section IX-B): recovery accuracy with and without.
func BenchmarkAblationInvisiSpec(b *testing.B) {
	secret := EncodeString("KEY")
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				a := NewSpectre(SpectreConfig{
					Disclosure: DiscLRUAlg1, InvisiSpec: on, Seed: uint64(i + 1),
				}, secret)
				acc += a.Accuracy()
			}
			b.ReportMetric(acc/float64(b.N), "recovery-accuracy")
		})
	}
}

// Detection evasion (Sections VII/X): fraction of runs in which a
// miss-rate monitor flags the F+R sender but not the LRU sender.
func BenchmarkDetectionEvasion(b *testing.B) {
	var evaded int
	for i := 0; i < b.N; i++ {
		m := detect.NewMonitor(detect.Thresholds{})
		sFR := NewChannel(ChannelConfig{Algorithm: Alg1SharedMemory, Mode: sched.SMT,
			Tr: 600, Ts: 6000, Seed: uint64(2*i + 1)})
		NewBaseline(FlushReloadMem, sFR).Run([]byte{1, 0}, true, 600, 1<<40)
		sLRU := NewChannel(ChannelConfig{Algorithm: Alg1SharedMemory, Mode: sched.SMT,
			Tr: 600, Ts: 6000, Seed: uint64(2*i + 2)})
		sLRU.Run([]byte{1, 0}, true, 600, 1<<40)
		frCaught := m.ClassifyProcess(sFR.Hier, core.ReqSender) == detect.Suspicious
		lruMissed := m.ClassifyProcess(sLRU.Hier, core.ReqSender) == detect.Benign
		if frCaught && lruMissed {
			evaded++
		}
	}
	b.ReportMetric(float64(evaded)/float64(b.N), "fr-caught-lru-missed")
}

// --- helpers ---

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func geomean(xs []float64) float64 { return perf.GeoMean(xs) }

func chaseSeparates(s *Channel) bool {
	target := s.ReceiverLines[0]
	var hits, misses []float64
	for i := 0; i < 200; i++ {
		s.Hier.Load(target, 1)
		s.Chaser.WarmUp()
		hits = append(hits, s.Chaser.Measure(target).Observed)
		s.Hier.L1().Flush(target.PhysLine)
		s.Chaser.WarmUp()
		misses = append(misses, s.Chaser.Measure(target).Observed)
		s.Hier.Flush(target.PhysLine)
	}
	th := otsu(append(append([]float64{}, hits...), misses...))
	wrong := 0
	for _, v := range hits {
		if v > th {
			wrong++
		}
	}
	for _, v := range misses {
		if v <= th {
			wrong++
		}
	}
	return float64(wrong)/float64(len(hits)+len(misses)) < 0.05
}

func otsu(xs []float64) float64 { return stats.OtsuThreshold(xs) }
