package lruleak

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches called out in DESIGN.md §5. Each bench regenerates its
// experiment end to end; emitBench attaches the headline quantity so
// `go test -bench` output doubles as a results table, and writes one JSON
// line per benchmark when BENCH_JSON is set (see benchreport_test.go).
//
// The drivers run through internal/engine; benches that measure the
// engine's parallel speedup pin Workers explicitly, the rest use the
// session default.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/hier"
	"repro/internal/leakage"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/perf"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/transport/codec"
	"repro/internal/uarch"
	"repro/internal/victim"
)

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := TableI(1000, 1, RunOptions{})
		if len(cells) != 48 {
			b.Fatal("table shape")
		}
	}
	emitBench(b, nil)
}

func BenchmarkFigure3PointerChase(b *testing.B) {
	var sep int
	for i := 0; i < b.N; i++ {
		p := Figure3(SandyBridge(), 500, uint64(i+1), RunOptions{})
		if p.Separable {
			sep++
		}
	}
	emitBench(b, map[string]float64{"separable-frac": float64(sep) / float64(b.N)})
}

func BenchmarkFigure13SingleAccess(b *testing.B) {
	var sep int
	for i := 0; i < b.N; i++ {
		p := Figure13(SandyBridge(), 500, uint64(i+1), RunOptions{})
		if p.Separable {
			sep++
		}
	}
	// Appendix A: this should stay at 0.
	emitBench(b, map[string]float64{"separable-frac": float64(sep) / float64(b.N)})
}

func BenchmarkFigure4Alg1(b *testing.B) {
	emitBench(b, map[string]float64{"mean-error-rate": benchFigure4(b, Alg1SharedMemory)})
}

func BenchmarkFigure4Alg2(b *testing.B) {
	emitBench(b, map[string]float64{"mean-error-rate": benchFigure4(b, Alg2NoSharedMemory)})
}

// benchFigure4 regenerates the sweep b.N times and returns the mean
// per-cell error rate across iterations.
func benchFigure4(b *testing.B, alg core.Algorithm) float64 {
	var mean float64
	for i := 0; i < b.N; i++ {
		pts := Figure4(SandyBridge(), alg, 32, 2, uint64(i+1), RunOptions{})
		var sum float64
		for _, p := range pts {
			sum += p.ErrorRate
		}
		mean += sum / float64(len(pts))
	}
	return mean / float64(b.N)
}

func BenchmarkFigure5Trace(b *testing.B) {
	var cyclesPerBit float64
	for i := 0; i < b.N; i++ {
		f := Figure5(SandyBridge(), Alg1SharedMemory, 200, uint64(i+1), RunOptions{})
		if len(f.Trace.Observations) != 200 {
			b.Fatal("trace length")
		}
		if f.Trace.BitsSent > 0 {
			cyclesPerBit = float64(f.Trace.Elapsed) / float64(f.Trace.BitsSent)
		}
	}
	emitBench(b, map[string]float64{"sim-cycles-per-bit": cyclesPerBit})
}

func BenchmarkFigure6TimeSliced(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		pts := Figure6(SandyBridge(), []uint64{10_000_000}, 40, uint64(i+1), RunOptions{})
		var f0, f1 float64
		for _, p := range pts {
			if p.D == 8 && p.SendingBit == 0 {
				f0 = p.FractionOnes
			}
			if p.D == 8 && p.SendingBit == 1 {
				f1 = p.FractionOnes
			}
		}
		gap += f1 - f0
	}
	emitBench(b, map[string]float64{"d8-separation": gap / float64(b.N)})
}

func BenchmarkFigure7AMDTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := Figure7(Alg1SharedMemory, 300, uint64(i+1), RunOptions{})
		if len(f.Smoothed) != len(f.Trace.Observations) {
			b.Fatal("smoothing length")
		}
	}
	emitBench(b, nil)
}

func BenchmarkFigure8AMDTimeSliced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := Figure6(Zen(), []uint64{10_000_000}, 30, uint64(i+1), RunOptions{})
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
	emitBench(b, nil)
}

func BenchmarkFigure9ReplacementPolicies(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		rows := Figure9(300_000, uint64(i+1), RunOptions{})
		var fifo []float64
		for _, r := range rows {
			fifo = append(fifo, r.NormCPI["FIFO"])
		}
		geo = geomean(fifo)
	}
	emitBench(b, map[string]float64{"fifo-cpi-vs-plru": geo})
}

func BenchmarkFigure11PLCache(b *testing.B) {
	var sep float64
	for i := 0; i < b.N; i++ {
		res := Figure11(150, uint64(i+1), RunOptions{})
		sep += res.Original.Separation - res.Fixed.Separation
	}
	emitBench(b, map[string]float64{"leak-amplitude-removed": sep / float64(b.N)})
}

func BenchmarkFigure14SkylakeTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := Figure5(Skylake(), Alg1SharedMemory, 200, uint64(i+1), RunOptions{})
		if len(f.Trace.Observations) != 200 {
			b.Fatal("trace length")
		}
	}
	emitBench(b, nil)
}

func BenchmarkFigure15SkylakeTimeSliced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := Figure6(Skylake(), []uint64{10_000_000}, 30, uint64(i+1), RunOptions{})
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
	emitBench(b, nil)
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := TableIV(32, 2, uint64(i+1), RunOptions{})
		if len(cells) != 8 {
			b.Fatalf("table IV has %d cells", len(cells))
		}
	}
	emitBench(b, nil)
}

// speedupVariants enumerates the worker counts of the parallel-speedup
// benchmarks. The workers=all variant is meaningless on a single-core
// runner — the "parallel" run is the serial run plus pool overhead, and
// publishing its 1.0x ratio misled a whole baseline — so it is skipped
// there, and every variant records the worker count that actually ran
// plus GOMAXPROCS so the emitted JSON is self-describing.
func speedupVariants(b *testing.B, run func(b *testing.B, workers int)) {
	procs := runtime.GOMAXPROCS(0)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=all", procs}} {
		b.Run(bc.name, func(b *testing.B) {
			if bc.name == "workers=all" && procs == 1 {
				b.Skip("GOMAXPROCS=1: workers=all would be the workers=1 run; skipping the meaningless 1.0x ratio")
			}
			run(b, bc.workers)
			emitBench(b, map[string]float64{
				"workers":    float64(RunOptions{Workers: bc.workers}.ResolvedWorkers()),
				"gomaxprocs": float64(procs),
			})
		})
	}
}

// BenchmarkTableIVParallelSpeedup is the engine's headline number: the
// same full Table IV sweep at one worker and at all cores. On a
// multi-core runner the ns/op ratio between the two sub-benches is the
// wall-time speedup (>= 2x expected: the sweep's two heavyweight Zen
// cells run concurrently instead of back to back).
func BenchmarkTableIVParallelSpeedup(b *testing.B) {
	speedupVariants(b, func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			cells := TableIV(32, 2, uint64(i+1), RunOptions{Workers: workers})
			if len(cells) != 8 {
				b.Fatal("table shape")
			}
		}
	})
}

// BenchmarkSweepParallelSpeedup scales further than Table IV: a 24-cell
// profile × policy grid, where the engine's speedup approaches the core
// count because the cells are uniform.
func BenchmarkSweepParallelSpeedup(b *testing.B) {
	spec := SweepSpec{
		Policies: []ReplacementKind{TreePLRU, BitPLRU, FIFO, Random},
		MsgBits:  16, Repeats: 1,
	}
	speedupVariants(b, func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			cells := Sweep(spec, uint64(i+1), RunOptions{Workers: workers})
			if len(cells) != 24 {
				b.Fatalf("sweep has %d cells", len(cells))
			}
		}
	})
}

func BenchmarkTableV(b *testing.B) {
	var lru float64
	for i := 0; i < b.N; i++ {
		rows := TableV(uint64(i+1), RunOptions{})
		lru = float64(rows[0].LRU)
	}
	emitBench(b, map[string]float64{"lru-encode-cycles": lru})
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := TableVI(100, uint64(i+1), RunOptions{})
		if len(rows) != 12 {
			b.Fatalf("table VI has %d rows", len(rows))
		}
	}
	emitBench(b, nil)
}

func BenchmarkTableVII(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		rows := TableVII(EncodeString("KEY"), uint64(i+1), RunOptions{})
		for _, r := range rows {
			if r.Disclosure == spectre.LRUAlg1 {
				acc += r.Accuracy
			}
		}
	}
	emitBench(b, map[string]float64{"lru-alg1-recovery": acc / float64(2*b.N)})
}

func BenchmarkSpectreLRUChannel(b *testing.B) {
	secret := EncodeString("THE MAGIC WORDS ARE SQUEAMISH OSSIFRAGE")
	var acc float64
	for i := 0; i < b.N; i++ {
		a := NewSpectre(SpectreConfig{Disclosure: DiscLRUAlg1, Seed: uint64(i + 1)}, secret)
		acc += a.Accuracy()
	}
	emitBench(b, map[string]float64{"recovery-accuracy": acc / float64(b.N)})
}

// --- Ablation benches (DESIGN.md §5) ---

// Associativity sweep for the Table I study: eviction reliability of
// Tree-PLRU Sequence 1 across 4/8/16 ways.
func BenchmarkAblationAssociativity(b *testing.B) {
	for _, ways := range []int{4, 8, 16} {
		b.Run(benchName("ways", ways), func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				res := core.RunEvictionStudy(core.EvictionStudyConfig{
					Policy: replacement.TreePLRU, Ways: ways,
					Trials: 2000, Seed: uint64(i + 1),
				}, core.InitSequential, core.Seq1)
				p = res.Prob[0]
			}
			emitBench(b, map[string]float64{"evict-prob-iter1": p})
		})
	}
}

// Pointer-chase chain-length sweep: how many local elements the probe needs
// before hit and miss separate on the Sandy Bridge profile.
func BenchmarkAblationChainLength(b *testing.B) {
	for _, chain := range []int{3, 5, 7, 11, 15} {
		b.Run(benchName("chain", chain), func(b *testing.B) {
			var sep int
			for i := 0; i < b.N; i++ {
				s := NewChannel(ChannelConfig{ChainLen: chain, Seed: uint64(i + 1)})
				if chaseSeparates(s) {
					sep++
				}
			}
			emitBench(b, map[string]float64{"separable-frac": float64(sep) / float64(b.N)})
		})
	}
}

// TSC-granularity sweep: at what readout quantum the single-shot channel
// dies (the Intel vs AMD order-of-magnitude gap of Section VI).
func BenchmarkAblationTSCGranularity(b *testing.B) {
	for _, quantum := range []int{1, 4, 8, 16, 24, 48} {
		b.Run(benchName("quantum", quantum), func(b *testing.B) {
			prof := uarch.SandyBridge()
			prof.TSCQuantum = quantum
			var err float64
			for i := 0; i < b.N; i++ {
				s := NewChannel(ChannelConfig{
					Profile: prof, Algorithm: Alg1SharedMemory,
					Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: uint64(i + 1),
				})
				err += s.MeasureErrorRate(32, 3).ErrorRate
			}
			emitBench(b, map[string]float64{"error-rate": err / float64(b.N)})
		})
	}
}

// d-parity ablation: the Section V-A observation that even d fails on
// Tree-PLRU for Algorithm 2.
func BenchmarkAblationDParity(b *testing.B) {
	for _, d := range []int{1, 2, 4, 5} {
		b.Run(benchName("d", d), func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				s := NewChannel(ChannelConfig{
					Algorithm: Alg2NoSharedMemory, Mode: sched.SMT,
					Tr: 600, Ts: 6000, D: d, Seed: uint64(i + 1),
				})
				err += s.MeasureErrorRate(32, 3).ErrorRate
			}
			emitBench(b, map[string]float64{"error-rate": err / float64(b.N)})
		})
	}
}

// Spectre rounds ablation: randomized-round averaging vs the prefetcher
// (Appendix C).
func BenchmarkAblationSpectreRounds(b *testing.B) {
	secret := EncodeString("KEY")
	for _, rounds := range []int{1, 4, 16} {
		b.Run(benchName("rounds", rounds), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				a := NewSpectre(SpectreConfig{
					Disclosure: DiscLRUAlg2, Prefetcher: PrefetchNextLine,
					Rounds: rounds, Seed: uint64(i + 1),
				}, secret)
				acc += a.Accuracy()
			}
			emitBench(b, map[string]float64{"recovery-accuracy": acc / float64(b.N)})
		})
	}
}

// Minimum speculation window per disclosure primitive (Section VIII).
func BenchmarkAblationSpeculationWindow(b *testing.B) {
	secret := EncodeString("AB")
	for _, d := range []struct {
		name string
		disc spectre.Disclosure
	}{{"lru1", spectre.LRUAlg1}, {"lru2", spectre.LRUAlg2}, {"frmem", spectre.FRMem}} {
		b.Run(d.name, func(b *testing.B) {
			var w float64
			for i := 0; i < b.N; i++ {
				w = float64(spectre.MinimumWindow(
					SpectreConfig{Disclosure: d.disc, Seed: uint64(i + 1)},
					secret, 1.0, 4, 400))
			}
			emitBench(b, map[string]float64{"min-window-cycles": w})
		})
	}
}

// Multi-set parallel channel (Section IV extension): per-bit accuracy and
// effective parallel throughput with 4 lanes.
func BenchmarkMultiSetChannel(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		m := NewMultiChannel(ChannelConfig{
			Algorithm: Alg1SharedMemory, Mode: sched.SMT,
			Tr: 2000, Ts: 20_000, Seed: uint64(i + 1),
		}, []int{3, 9, 17, 30})
		acc += m.MeasureWordAccuracy([][]byte{{1, 0, 1, 0}, {0, 1, 1, 0}}, 100)
	}
	emitBench(b, map[string]float64{"per-bit-accuracy": acc / float64(b.N)})
}

// Streaming-transport goodput ablation: end-to-end payload transfer
// (framing + ECC + lane striping) across codec × lanes × noise, at the
// stream demo operating point. The headline metrics are delivered
// goodput and residual frame-error rate — the transport-layer
// restatement of Figure 4's capacity-vs-reliability trade.
func BenchmarkStreamGoodput(b *testing.B) {
	for _, cname := range codec.Names() {
		for _, lanes := range []int{1, 4} {
			for _, noise := range []int{0, 3} {
				name := fmt.Sprintf("codec=%s/lanes=%d/noise=%d", cname, lanes, noise)
				b.Run(name, func(b *testing.B) {
					c, err := codec.ByName(cname)
					if err != nil {
						b.Fatal(err)
					}
					var goodput, fer, byteErrs float64
					for i := 0; i < b.N; i++ {
						pt := transport.MeasureCapacity(transport.Config{
							Channel: core.Config{
								Algorithm: core.Alg1SharedMemory, Mode: sched.SMT,
								Tr: 2000, Ts: 8000,
								NoiseThreads: noise, NoisePeriod: 2000,
							},
							Lanes: transport.DefaultLanes(lanes),
							Codec: c,
						}, 64, uint64(i+1))
						goodput += pt.GoodputBps
						fer += pt.FrameErrorRate
						byteErrs += float64(pt.ByteErrors)
					}
					emitBench(b, map[string]float64{
						"goodput-kbps":     goodput / float64(b.N) / 1000,
						"frame-error-rate": fer / float64(b.N),
						"byte-errors":      byteErrs / float64(b.N),
					})
				})
			}
		}
	}
}

// InvisiSpec mitigation (Section IX-B): recovery accuracy with and without.
func BenchmarkAblationInvisiSpec(b *testing.B) {
	secret := EncodeString("KEY")
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				a := NewSpectre(SpectreConfig{
					Disclosure: DiscLRUAlg1, InvisiSpec: on, Seed: uint64(i + 1),
				}, secret)
				acc += a.Accuracy()
			}
			emitBench(b, map[string]float64{"recovery-accuracy": acc / float64(b.N)})
		})
	}
}

// Key-recovery ablation (victim × defense): the secret-recovery
// subsystem end to end — template profiling, recovery, detection — per
// cell of the defense matrix. Headline metrics: exact-recovery rate,
// guesses-to-first-correct, and whether the monitor flagged each party.
func BenchmarkKeyRecovery(b *testing.B) {
	for _, vname := range victim.Names() {
		for _, def := range attack.Defenses() {
			b.Run(fmt.Sprintf("victim=%s/defense=%v", vname, def), func(b *testing.B) {
				v, err := victim.ByName(vname, 64)
				if err != nil {
					b.Fatal(err)
				}
				secret := victim.DemoSecret(v, 8, 42)
				var rec, guesses, attFlagged, vicClean float64
				for i := 0; i < b.N; i++ {
					res := attack.Run(attack.Config{
						Victim: v, Defense: def, Policy: replacement.TreePLRU,
						Seed: uint64(i + 1),
					}, secret)
					rec += res.RecoveryRate
					guesses += res.MeanGuesses
					if res.AttackerVerdict == detect.Suspicious {
						attFlagged++
					}
					if res.VictimVerdict == detect.Benign {
						vicClean++
					}
				}
				emitBench(b, map[string]float64{
					"recovery-rate":    rec / float64(b.N),
					"mean-guesses":     guesses / float64(b.N),
					"attacker-flagged": attFlagged / float64(b.N),
					"victim-clean":     vicClean / float64(b.N),
				})
			})
		}
	}
}

// Scheduled key recovery: the attack run as unsynchronized sched
// threads (SMT and time-sliced), the regression watch for the
// scheduler-native attack path. Votes sit above the measured jitter
// overhead so the quality metric pins full recovery.
func BenchmarkScheduledKeyRecovery(b *testing.B) {
	for _, sc := range []attack.Schedule{attack.ScheduleSMT, attack.ScheduleTimeSliced} {
		b.Run(fmt.Sprintf("schedule=%v", sc), func(b *testing.B) {
			v, err := victim.ByName("ttable", 64)
			if err != nil {
				b.Fatal(err)
			}
			secret := victim.DemoSecret(v, 8, 42)
			var rec, guesses float64
			for i := 0; i < b.N; i++ {
				res := attack.Run(attack.Config{
					Victim: v, Policy: replacement.TreePLRU,
					Schedule: sc, Votes: 8, Seed: uint64(i + 1),
				}, secret)
				rec += res.RecoveryRate
				guesses += res.MeanGuesses
			}
			emitBench(b, map[string]float64{
				"recovery-rate": rec / float64(b.N),
				"mean-guesses":  guesses / float64(b.N),
			})
		})
	}
}

// The d-split partial prime against the PL-cache variants: the quality
// metrics pin the Figure 11 separation (original leaks, fix at
// chance) that the canonical prime cannot see.
func BenchmarkDSplitProbe(b *testing.B) {
	for _, def := range []attack.Defense{attack.DefensePLCache, attack.DefensePLCacheFixed} {
		b.Run(fmt.Sprintf("defense=%v", def), func(b *testing.B) {
			v, err := victim.ByName("ttable", 64)
			if err != nil {
				b.Fatal(err)
			}
			secret := victim.DemoSecret(v, 8, 42)
			var rec, guesses float64
			for i := 0; i < b.N; i++ {
				res := attack.Run(attack.Config{
					Victim: v, Defense: def, Policy: replacement.TreePLRU,
					Probe: attack.ProbeDSplit(1), Seed: uint64(i + 1),
				}, secret)
				rec += res.RecoveryRate
				guesses += res.MeanGuesses
			}
			emitBench(b, map[string]float64{
				"recovery-rate": rec / float64(b.N),
				"mean-guesses":  guesses / float64(b.N),
			})
		})
	}
}

// The detection threshold sweep end to end; the per-defense AUCs are
// the quality metrics (a drifting AUC means the attacker's or the
// benign suite's counter profile moved).
func BenchmarkROCSweep(b *testing.B) {
	metrics := map[string]float64{}
	for i := 0; i < b.N; i++ {
		res := ROCSweep(ROCSpec{}, uint64(i+1), RunOptions{})
		for _, c := range res.Curves {
			metrics["auc-"+c.Defense.String()] = c.ROC.AUC
		}
	}
	emitBench(b, metrics)
}

// Detection evasion (Sections VII/X): fraction of runs in which a
// miss-rate monitor flags the F+R sender but not the LRU sender.
func BenchmarkDetectionEvasion(b *testing.B) {
	var evaded int
	for i := 0; i < b.N; i++ {
		m := detect.NewMonitor(detect.Thresholds{})
		sFR := NewChannel(ChannelConfig{Algorithm: Alg1SharedMemory, Mode: sched.SMT,
			Tr: 600, Ts: 6000, Seed: uint64(2*i + 1)})
		NewBaseline(FlushReloadMem, sFR).Run([]byte{1, 0}, true, 600, 1<<40)
		sLRU := NewChannel(ChannelConfig{Algorithm: Alg1SharedMemory, Mode: sched.SMT,
			Tr: 600, Ts: 6000, Seed: uint64(2*i + 2)})
		sLRU.Run([]byte{1, 0}, true, 600, 1<<40)
		frCaught := m.ClassifyProcess(sFR.Hier, core.ReqSender) == detect.Suspicious
		lruMissed := m.ClassifyProcess(sLRU.Hier, core.ReqSender) == detect.Benign
		if frCaught && lruMissed {
			evaded++
		}
	}
	emitBench(b, map[string]float64{"fr-caught-lru-missed": float64(evaded) / float64(b.N)})
}

// --- hot-path microbenchmarks ---
//
// Every experiment above bottoms out in cache.Access and hier.Load;
// these two benches watch the substrate itself. The headline metric is
// allocs/op, which must stay at 0 (the flattened hot path's invariant,
// also pinned by the AllocsPerRun regression tests).

// BenchmarkCacheAccess measures one L1-shaped cache access per policy:
// a warm hit and a full miss/evict/install, alternating, so both paths
// stay resident in the measurement.
func BenchmarkCacheAccess(b *testing.B) {
	for _, pol := range replacement.Kinds() {
		b.Run("policy="+pol.String(), func(b *testing.B) {
			cfg := cache.Config{Name: "L1D", Sets: 64, Ways: 8, LineSize: 64, Policy: pol}
			if pol == replacement.Random {
				cfg.RNG = rng.New(11)
			}
			c := cache.New(cfg)
			const set = 5
			line := func(i int) uint64 { return uint64(i)*64 + set }
			for i := 0; i < 8; i++ {
				c.Access(cache.Request{PhysLine: line(i)})
			}
			// Alternate a fresh-tag miss (install + evict) with a
			// re-access of the line just installed — resident under
			// EVERY policy, including FIFO and Random, whose victim
			// choice ignores recency.
			last := line(7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i&1 == 0 {
					c.Access(cache.Request{PhysLine: last})
				} else {
					last = line(8 + i)
					c.Access(cache.Request{PhysLine: last})
				}
			}
			// Keep emitBench's own file write out of the ns-scale
			// measurement (it matters at -benchtime 1x).
			b.StopTimer()
			emitBench(b, nil)
		})
	}
}

// BenchmarkHierLoad measures a full-hierarchy load per prefetcher model:
// alternating L1 hits and all-level misses (the miss also exercises the
// prefetcher's issue path).
func BenchmarkHierLoad(b *testing.B) {
	for _, pf := range []hier.PrefetcherKind{hier.PrefetchNone, hier.PrefetchNextLine, hier.PrefetchStride} {
		b.Run("prefetch="+pf.String(), func(b *testing.B) {
			h := hier.New(hier.Config{
				Profile:  SandyBridge(),
				L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU,
				Prefetcher: pf,
				WithLLC:    true,
			})
			addr := func(pl uint64) mem.Addr {
				return mem.Addr{Virt: pl * 64, Phys: pl * 64, VirtLine: pl, PhysLine: pl}
			}
			h.Load(addr(1), 0)
			next := uint64(1 << 20)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i&1 == 0 {
					h.Load(addr(1), 0)
				} else {
					h.Load(addr(next), 0)
					next += 2
				}
			}
			b.StopTimer()
			emitBench(b, nil)
		})
	}
}

// --- helpers ---

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func geomean(xs []float64) float64 { return perf.GeoMean(xs) }

func chaseSeparates(s *Channel) bool {
	target := s.ReceiverLines[0]
	var hits, misses []float64
	for i := 0; i < 200; i++ {
		s.Hier.Load(target, 1)
		s.Chaser.WarmUp()
		hits = append(hits, s.Chaser.Measure(target).Observed)
		s.Hier.L1().Flush(target.PhysLine)
		s.Chaser.WarmUp()
		misses = append(misses, s.Chaser.Measure(target).Observed)
		s.Hier.Flush(target.PhysLine)
	}
	all := append(append([]float64{}, hits...), misses...)
	return separationError(hits, misses, otsu(all)) < 0.05
}

func otsu(xs []float64) float64 { return stats.OtsuThreshold(xs) }

// ---- Trace-compiled batch execution (DESIGN.md §10) ----
//
// The three benches below measure the same workload through the
// per-access path and the batch path, so the batch speedup is a
// sibling ratio inside one run — independent of the runner's absolute
// speed. CI pins the ratios with benchdiff -require. Each mode
// verifies its hit count against a precomputed reference, so the
// wall-time comparison is also a bit-identity check.

// batchBenchProgram mixes a hot working set (hits, provable runs) with
// strided cold misses — the shape of a probe loop's reference stream.
func batchBenchProgram(n, sets int, seed uint64) []uint64 {
	r := rng.New(seed)
	lines := make([]uint64, n)
	for i := range lines {
		if r.Intn(5) == 0 {
			lines[i] = uint64(r.Intn(64))*uint64(sets)*7 + uint64(r.Intn(sets))
		} else {
			lines[i] = uint64(r.Intn(10))*uint64(sets) + uint64(r.Intn(4))
		}
	}
	return lines
}

func BenchmarkAccessBatch(b *testing.B) {
	const sets, ways, n = 64, 8, 1 << 16
	prog := batchBenchProgram(n, sets, 21)
	reqs := make([]cache.Request, n)
	for i, ln := range prog {
		reqs[i] = cache.Request{PhysLine: ln, LinearLine: ln}
	}
	mk := func() *cache.Cache {
		return cache.New(cache.Config{Name: "bench", Sets: sets, Ways: ways,
			LineSize: 64, Policy: replacement.TreePLRU})
	}
	ref := mk()
	var wantHits uint64
	for _, req := range reqs {
		if ref.Access(req).Hit {
			wantHits++
		}
	}

	b.Run("mode=peraccess", func(b *testing.B) {
		c := mk()
		for i := 0; i < b.N; i++ {
			c.Reset()
			var hits uint64
			for _, req := range reqs {
				if c.Access(req).Hit {
					hits++
				}
			}
			if hits != wantHits {
				b.Fatalf("hits %d, want %d", hits, wantHits)
			}
		}
		emitBench(b, map[string]float64{"hit-rate": float64(wantHits) / n})
	})
	b.Run("mode=batch", func(b *testing.B) {
		c := mk()
		out := make([]cache.Result, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Reset()
			c.AccessBatch(reqs, out)
			var hits uint64
			for j := range out {
				if out[j].Hit {
					hits++
				}
			}
			if hits != wantHits {
				b.Fatalf("hits %d, want %d", hits, wantHits)
			}
		}
		emitBench(b, map[string]float64{"hit-rate": float64(wantHits) / n})
	})
}

func BenchmarkLoadBatch(b *testing.B) {
	const n = 1 << 15
	prof := SandyBridge()
	prog := batchBenchProgram(n, prof.L1Sets, 22)
	addrs := make([]mem.Addr, n)
	for i, ln := range prog {
		addrs[i] = mem.Addr{Virt: ln * 64, Phys: ln * 64, VirtLine: ln, PhysLine: ln}
	}
	mk := func() *hier.Hierarchy {
		return hier.New(hier.Config{Profile: prof,
			L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU, WithLLC: true})
	}
	ref := mk()
	var wantL1 uint64
	for _, a := range addrs {
		if ref.Load(a, 0).L1Hit {
			wantL1++
		}
	}

	b.Run("mode=peraccess", func(b *testing.B) {
		h := mk()
		for i := 0; i < b.N; i++ {
			h.Reset()
			var l1 uint64
			for _, a := range addrs {
				if h.Load(a, 0).L1Hit {
					l1++
				}
			}
			if l1 != wantL1 {
				b.Fatalf("L1 hits %d, want %d", l1, wantL1)
			}
		}
		emitBench(b, map[string]float64{"l1-hit-rate": float64(wantL1) / n})
	})
	b.Run("mode=batch", func(b *testing.B) {
		h := mk()
		out := make([]hier.Result, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Reset()
			h.LoadBatch(addrs, 0, out)
			var l1 uint64
			for j := range out {
				if out[j].L1Hit {
					l1++
				}
			}
			if l1 != wantL1 {
				b.Fatalf("L1 hits %d, want %d", l1, wantL1)
			}
		}
		emitBench(b, map[string]float64{"l1-hit-rate": float64(wantL1) / n})
	})
}

// BenchmarkTraceCompiledTrial replays a compiled prime/probe trial —
// repeated full passes over a few monitored sets, the attack's
// canonical access program — per-access, as a compiled trace (whose
// passes after the first are provable-hit runs), and set-partitioned.
func BenchmarkTraceCompiledTrial(b *testing.B) {
	prof := SandyBridge()
	mk := func() *hier.Hierarchy {
		return hier.New(hier.Config{Profile: prof,
			L1Policy: replacement.TrueLRU, L2Policy: replacement.TreePLRU, WithLLC: true})
	}
	// 16 monitored sets × 8 ways, 400 passes: one line program.
	var prog []uint64
	for pass := 0; pass < 400; pass++ {
		for set := 0; set < 16; set++ {
			for w := 0; w < prof.L1Ways; w++ {
				prog = append(prog, uint64(w)*uint64(prof.L1Sets)+uint64(set))
			}
		}
	}
	addrs := make([]mem.Addr, len(prog))
	for i, ln := range prog {
		addrs[i] = mem.Addr{Virt: ln * 64, Phys: ln * 64, VirtLine: ln, PhysLine: ln}
	}
	ref := mk()
	var wantL1 uint64
	for _, a := range addrs {
		if ref.Load(a, 0).L1Hit {
			wantL1++
		}
	}
	check := func(b *testing.B, out []hier.Result) {
		var l1 uint64
		for i := range out {
			if out[i].L1Hit {
				l1++
			}
		}
		if l1 != wantL1 {
			b.Fatalf("L1 hits %d, want %d", l1, wantL1)
		}
	}

	b.Run("mode=peraccess", func(b *testing.B) {
		h := mk()
		out := make([]hier.Result, len(addrs))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Reset()
			for j, a := range addrs {
				out[j] = h.Load(a, 0)
			}
			check(b, out)
		}
		emitBench(b, map[string]float64{"l1-hit-rate": float64(wantL1) / float64(len(addrs))})
	})
	b.Run("mode=batch", func(b *testing.B) {
		h := mk()
		tb := h.NewTraceBuilder()
		for _, ln := range prog {
			tb.Load(ln, 0)
		}
		tr := tb.Trace()
		out := make([]hier.Result, len(addrs))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Reset()
			h.LoadTrace(tr, out)
			check(b, out)
		}
		emitBench(b, map[string]float64{"l1-hit-rate": float64(wantL1) / float64(len(addrs))})
	})
	b.Run("mode=parallel", func(b *testing.B) {
		h := mk()
		tb := h.NewTraceBuilder()
		for _, ln := range prog {
			tb.Load(ln, 0)
		}
		tr := tb.Trace()
		out := make([]hier.Result, len(addrs))
		workers := runtime.GOMAXPROCS(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Reset()
			h.LoadTraceParallel(tr, out, workers)
			check(b, out)
		}
		emitBench(b, map[string]float64{
			"l1-hit-rate": float64(wantL1) / float64(len(addrs)),
			"workers":     float64(workers),
		})
	})
}

// BenchmarkTraceCompiledProbe replays the attack's other canonical
// program shape: d-split partial-prime probing — d of the ways per
// monitored set, sender and receiver passes alternating — interrupted
// by never-repeating cold loads that break the trace into many runs
// with per-access gap records between them.
func BenchmarkTraceCompiledProbe(b *testing.B) {
	prof := SandyBridge()
	mk := func() *hier.Hierarchy {
		return hier.New(hier.Config{Profile: prof,
			L1Policy: replacement.TrueLRU, L2Policy: replacement.TreePLRU, WithLLC: true})
	}
	const monSets, d, passes = 32, 6, 300
	type rec struct {
		line uint64
		req  int
	}
	var prog []rec
	cold := uint64(1 << 20)
	for pass := 0; pass < passes; pass++ {
		req := pass & 1
		for set := 0; set < monSets; set++ {
			for w := 0; w < d; w++ {
				prog = append(prog, rec{uint64(w)*uint64(prof.L1Sets) + uint64(set), req})
			}
		}
		if pass%8 == 7 {
			// A fresh line, never revisited: an unprovable record that
			// ends the current run mid-trace.
			cold++
			prog = append(prog, rec{cold*uint64(prof.L1Sets) + uint64(pass%monSets), 0})
		}
	}
	ref := mk()
	var wantL1 uint64
	for _, r := range prog {
		a := mem.Addr{Virt: r.line * 64, Phys: r.line * 64, VirtLine: r.line, PhysLine: r.line}
		if ref.Load(a, r.req).L1Hit {
			wantL1++
		}
	}
	hitRate := float64(wantL1) / float64(len(prog))
	check := func(b *testing.B, out []hier.Result) {
		var l1 uint64
		for i := range out {
			if out[i].L1Hit {
				l1++
			}
		}
		if l1 != wantL1 {
			b.Fatalf("L1 hits %d, want %d", l1, wantL1)
		}
	}

	b.Run("mode=peraccess", func(b *testing.B) {
		h := mk()
		out := make([]hier.Result, len(prog))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Reset()
			for j, r := range prog {
				a := mem.Addr{Virt: r.line * 64, Phys: r.line * 64, VirtLine: r.line, PhysLine: r.line}
				out[j] = h.Load(a, r.req)
			}
			check(b, out)
		}
		emitBench(b, map[string]float64{"l1-hit-rate": hitRate})
	})
	b.Run("mode=batch", func(b *testing.B) {
		h := mk()
		tb := h.NewTraceBuilder()
		for _, r := range prog {
			tb.Load(r.line, r.req)
		}
		tr := tb.Trace()
		out := make([]hier.Result, len(prog))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Reset()
			h.LoadTrace(tr, out)
			check(b, out)
		}
		emitBench(b, map[string]float64{"l1-hit-rate": hitRate})
	})
}

// BenchmarkMetricsOverhead prices the engine's per-cell telemetry: the
// same many-small-cell grid on a persistent pool, uninstrumented vs
// instrumented. The cells are deliberately tiny (~µs of xorshift work
// through a pooled workspace) so the per-cell hooks — a handful of
// atomic adds plus a histogram observe — are as visible as they can
// ever be; real experiment cells are orders of magnitude heavier. CI
// pins telemetry=on to >= 0.8x the telemetry=off sibling via
// cmd/benchdiff -require, a box-speed-immune guard that the hooks stay
// in the noise.
func BenchmarkMetricsOverhead(b *testing.B) {
	const cells = 256
	jobs := make([]engine.Job[uint64], cells)
	for i := range jobs {
		jobs[i] = engine.Job[uint64]{
			Name: fmt.Sprintf("cell%d", i),
			Seed: uint64(i + 1),
			RunW: func(seed uint64, ws *engine.Workspace) uint64 {
				buf := ws.Get("scratch", func() any { return make([]uint64, 64) }).([]uint64)
				x := seed
				for k := 0; k < 2048; k++ {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					buf[k&63] += x
				}
				return x
			},
		}
	}
	run := func(b *testing.B, pool *engine.Pool) uint64 {
		var sink uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range engine.Run(jobs, engine.Options{Pool: pool}) {
				sink ^= res.Value
			}
		}
		return sink
	}

	b.Run("telemetry=off", func(b *testing.B) {
		pool := engine.NewPool(0)
		defer pool.Close()
		run(b, pool)
		emitBench(b, map[string]float64{"cells": cells})
	})
	b.Run("telemetry=on", func(b *testing.B) {
		reg := metrics.NewRegistry()
		tel := engine.NewTelemetry(reg)
		pool := engine.NewPoolWithTelemetry(0, tel)
		defer pool.Close()
		run(b, pool)
		es := metrics.Snapshot(reg)
		want := float64(b.N * cells)
		if es["engine_cells_completed_total"] != want || es["engine_cell_wall_seconds.count"] != want {
			b.Fatalf("telemetry lost cells: completed=%v histogram=%v, want %v",
				es["engine_cells_completed_total"], es["engine_cell_wall_seconds.count"], want)
		}
		emitBench(b, map[string]float64{"cells": cells})
	})
}

// BenchmarkLeakageEnumeration times the reachable-state-space
// enumerator on the two paths the leakage study exercises: the
// exhaustive BFS (Tree-PLRU at 16 ways, 32768 states) and the sampling
// fallback (true LRU at 16 ways, whose 16! closure blows the cap, so
// that run pays the capped BFS plus the full sampling budget). CI's
// benchdiff pin holds the exhaustive path well ahead of the sampled
// one — if BFS ever drifts toward the fallback's cost, the MaxStates
// cap is mis-set.
func BenchmarkLeakageEnumeration(b *testing.B) {
	b.Run("mode=exhaustive", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			sp := leakage.Enumerate(replacement.TreePLRU, 16, leakage.Options{})
			if !sp.Exhaustive {
				b.Fatal("Tree-PLRU/16 should enumerate exhaustively")
			}
			states = len(sp.States)
		}
		emitBench(b, map[string]float64{"states": float64(states)})
	})
	b.Run("mode=sampled", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			sp := leakage.Enumerate(replacement.TrueLRU, 16, leakage.Options{})
			if sp.Exhaustive {
				b.Fatal("true LRU/16 should fall back to sampling")
			}
			cov = sp.Coverage
		}
		emitBench(b, map[string]float64{"coverage": cov})
	})
}
