package lruleak

// The engine's contract: a parallel run is bit-identical to a serial
// run, and the engine-based drivers are bit-identical to the
// pre-engine serial drivers. The serial reference implementations below
// are verbatim copies of the hand-rolled trial loops the drivers had
// before the refactor (one pinned figure, one pinned table, plus the
// Table I grid), kept only in this test file.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// serialFigure4 is the pre-refactor Figure4 driver: the inline grid
// loop over Tr × Ts × d running one error-rate experiment per cell.
func serialFigure4(prof Profile, alg core.Algorithm, msgBits, repeats int, seed uint64) []Figure4Point {
	var out []Figure4Point
	for _, tr := range []uint64{600, 1000, 3000} {
		for _, ts := range []uint64{4500, 6000, 12000, 30000} {
			for d := 1; d <= prof.L1Ways; d++ {
				s := NewChannel(ChannelConfig{
					Profile: prof, Algorithm: alg, Mode: sched.SMT,
					Tr: tr, Ts: ts, D: d, Seed: seed + ts + tr + uint64(d),
				})
				res := s.MeasureErrorRate(msgBits, repeats)
				out = append(out, Figure4Point{
					Tr: tr, Ts: ts, D: d,
					RateKbps:  res.RateBps / 1000,
					ErrorRate: res.ErrorRate,
				})
			}
		}
	}
	return out
}

// serialTableIV is the pre-refactor TableIV driver.
func serialTableIV(msgBits, repeats int, seed uint64) []TableIVCell {
	var out []TableIVCell
	for _, prof := range []Profile{SandyBridge(), Zen()} {
		ts, tr := uint64(6000), uint64(600)
		same := false
		if prof.Arch == "Zen" {
			ts, tr = 100_000, 1000
			same = true
		}
		for _, alg := range []core.Algorithm{Alg1SharedMemory, Alg2NoSharedMemory} {
			s := NewChannel(ChannelConfig{
				Profile: prof, Algorithm: alg, Mode: sched.SMT,
				Tr: tr, Ts: ts, Seed: seed,
				SameAddressSpace: same && alg == Alg1SharedMemory,
			})
			res := s.MeasureErrorRate(msgBits, repeats)
			out = append(out, TableIVCell{
				Profile: prof, Mode: sched.SMT, Algorithm: alg,
				RateBps: res.RateBps, ErrorRate: res.ErrorRate,
			})
		}
		k := 10.0
		if prof.Arch == "Zen" {
			k = 100
		}
		trSlice := 100_000_000.0
		out = append(out, TableIVCell{
			Profile: prof, Mode: sched.TimeSliced, Algorithm: Alg1SharedMemory,
			RateBps: prof.Freq * 1e9 / (trSlice * k),
		})
		out = append(out, TableIVCell{
			Profile: prof, Mode: sched.TimeSliced, Algorithm: Alg2NoSharedMemory,
		})
	}
	return out
}

// serialTableI is the pre-refactor core.RunTableI grid loop, copied
// verbatim (it must NOT be built from TableISpecs/RunTableISpec, or the
// comparison would be circular).
func serialTableI(trials int, seed uint64) []core.TableICell {
	var cells []core.TableICell
	for _, cond := range []core.InitCond{core.InitRandom, core.InitSequential} {
		for _, pol := range []ReplacementKind{TrueLRU, TreePLRU, BitPLRU} {
			for _, seq := range []core.Sequence{core.Seq1, core.Seq2} {
				res := core.RunEvictionStudy(core.EvictionStudyConfig{
					Policy: pol, Trials: trials, Seed: seed,
				}, cond, seq)
				for _, it := range []int{1, 2, 3, 8} {
					cells = append(cells, core.TableICell{
						Init: cond, Policy: pol, Seq: seq,
						Iteration: it, Prob: res.Prob[it-1],
					})
				}
			}
		}
	}
	return cells
}

func TestFigure4MatchesSerialReferenceAtAnyWorkerCount(t *testing.T) {
	const msgBits, repeats, seed = 8, 1, 77
	want := RenderFigure4(serialFigure4(SandyBridge(), Alg1SharedMemory, msgBits, repeats, seed))
	if want == "" {
		t.Fatal("empty reference render")
	}
	for _, workers := range []int{1, 8} {
		got := RenderFigure4(Figure4(SandyBridge(), Alg1SharedMemory, msgBits, repeats, seed,
			RunOptions{Workers: workers}))
		if got != want {
			t.Errorf("Figure4 at Workers=%d diverges from the serial reference", workers)
		}
	}
}

func TestTableIVMatchesSerialReferenceAtAnyWorkerCount(t *testing.T) {
	const msgBits, repeats, seed = 16, 1, 41
	want := RenderTableIV(serialTableIV(msgBits, repeats, seed))
	for _, workers := range []int{1, 8} {
		got := RenderTableIV(TableIV(msgBits, repeats, seed, RunOptions{Workers: workers}))
		if got != want {
			t.Errorf("TableIV at Workers=%d diverges from the serial reference", workers)
		}
	}
}

func TestTableIMatchesSerialReferenceAtAnyWorkerCount(t *testing.T) {
	want := RenderTableI(serialTableI(200, 9))
	for _, workers := range []int{1, 8} {
		got := RenderTableI(TableI(200, 9, RunOptions{Workers: workers}))
		if got != want {
			t.Errorf("TableI at Workers=%d diverges from the serial reference", workers)
		}
	}
}

// The remaining grid drivers have no pre-refactor twin to compare
// against (their cell decomposition changed), but parallel and serial
// runs must still render identically.
func TestDriversSerialParallelIdentical(t *testing.T) {
	serial := RunOptions{Workers: 1}
	parallel := RunOptions{Workers: 8}

	t.Run("Figure3", func(t *testing.T) {
		a := Figure3(SandyBridge(), 600, 5, serial).Render()
		b := Figure3(SandyBridge(), 600, 5, parallel).Render()
		if a != b {
			t.Error("Figure3 renders differ")
		}
	})
	t.Run("Figure6", func(t *testing.T) {
		a := RenderFigure6(Figure6(SandyBridge(), []uint64{10_000_000}, 20, 5, serial))
		b := RenderFigure6(Figure6(SandyBridge(), []uint64{10_000_000}, 20, 5, parallel))
		if a != b {
			t.Error("Figure6 renders differ")
		}
	})
	t.Run("TableV", func(t *testing.T) {
		a := RenderTableV(TableV(5, serial))
		b := RenderTableV(TableV(5, parallel))
		if a != b {
			t.Error("TableV renders differ")
		}
	})
	t.Run("TableVII", func(t *testing.T) {
		a := RenderTableVII(TableVII(EncodeString("AB"), 5, serial))
		b := RenderTableVII(TableVII(EncodeString("AB"), 5, parallel))
		if a != b {
			t.Error("TableVII renders differ")
		}
	})
	t.Run("Sweep", func(t *testing.T) {
		spec := SweepSpec{
			Profiles: []Profile{SandyBridge()},
			Policies: []ReplacementKind{TreePLRU, FIFO},
			MsgBits:  8, Repeats: 1,
		}
		a := RenderSweep(Sweep(spec, 5, serial))
		b := RenderSweep(Sweep(spec, 5, parallel))
		if a != b {
			t.Error("Sweep renders differ")
		}
		if len(Sweep(spec, 5, serial)) != 4 {
			t.Error("sweep grid shape")
		}
	})
}

// --- golden pinning ---
//
// Beyond serial-vs-parallel equality, the perfctr tables (VI, VII), the
// securesim defence-cost study (Figure 9) and the stream sweep are
// pinned byte-for-byte at a fixed seed against files in testdata/. The
// simulator is exactly reproducible from a seed, so these goldens are
// machine-independent; a diff means an (intended or not) behaviour
// change in the simulator, the drivers, or the renderers. Regenerate
// with UPDATE_GOLDEN=1 go test -run Golden .

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file instead when UPDATE_GOLDEN is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s diverges from golden %s:\n--- got ---\n%s--- want ---\n%s",
			name, path, got, want)
	}
}

const goldenSeed = 7

func TestTableVIGoldenPinned(t *testing.T) {
	want := RenderTableVI(TableVI(50, goldenSeed, RunOptions{Workers: 1}))
	checkGolden(t, "table6", want)
	if got := RenderTableVI(TableVI(50, goldenSeed, RunOptions{Workers: 8})); got != want {
		t.Error("Table VI diverges across worker counts")
	}
}

func TestTableVIIGoldenPinned(t *testing.T) {
	want := RenderTableVII(TableVII(EncodeString("AB"), goldenSeed, RunOptions{Workers: 1}))
	checkGolden(t, "table7", want)
	if got := RenderTableVII(TableVII(EncodeString("AB"), goldenSeed, RunOptions{Workers: 8})); got != want {
		t.Error("Table VII diverges across worker counts")
	}
}

func TestFigure9GoldenPinned(t *testing.T) {
	want := RenderFigure9(Figure9(50_000, goldenSeed, RunOptions{Workers: 1}))
	checkGolden(t, "figure9", want)
	if got := RenderFigure9(Figure9(50_000, goldenSeed, RunOptions{Workers: 8})); got != want {
		t.Error("Figure 9 diverges across worker counts")
	}
}

// The stream sweep (the transport layer's capacity grid) must be
// bit-identical across worker counts, like every other engine driver.
func TestStreamSweepWorkersIdentical(t *testing.T) {
	spec := StreamSpec{
		Codecs:       []string{"none", "hamming74"},
		LaneCounts:   []int{4},
		NoiseThreads: []int{0, 3},
		PayloadBytes: 48,
	}
	want := RenderStreamSweep(StreamSweep(spec, goldenSeed, RunOptions{Workers: 1}))
	checkGolden(t, "streamsweep", want)
	for _, workers := range []int{2, 8} {
		got := RenderStreamSweep(StreamSweep(spec, goldenSeed, RunOptions{Workers: workers}))
		if got != want {
			t.Errorf("stream sweep at Workers=%d diverges from the serial run", workers)
		}
	}
}
