package lruleak

// Machine-readable benchmark results: when the BENCH_JSON environment
// variable names a file, every benchmark that finishes through emitBench
// writes one JSON line (name, trials, ns/op, plus its headline metrics,
// e.g. simulated cycles per transmitted bit). Future PRs diff these
// BENCH_*.json files to track the performance trajectory.

import (
	"encoding/json"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
)

// benchRecord is the schema of one BENCH_JSON line.
type benchRecord struct {
	Name    string             `json:"name"`
	Trials  int                `json:"trials"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchRecordLine renders one record as a JSON line. Metric keys are
// sorted so the output is byte-stable across runs.
func benchRecordLine(name string, trials int, nsPerOp float64, metrics map[string]float64) []byte {
	rec := benchRecord{Name: name, Trials: trials, NsPerOp: nsPerOp}
	if len(metrics) > 0 {
		rec.Metrics = metrics
	}
	line, err := json.Marshal(rec)
	if err != nil {
		panic(err) // float64 maps always marshal
	}
	return append(line, '\n')
}

// benchEmitted collects the latest record per benchmark name, in first-
// emission order. The testing framework re-invokes each benchmark while
// calibrating b.N, so emitBench runs several times per benchmark; only
// the final (largest-b.N) invocation should survive in the file.
var (
	benchEmitMu  sync.Mutex
	benchEmitted = map[string]benchRecord{}
	benchEmitOrd []string
)

// emitBench reports each metric through the testing framework and, when
// BENCH_JSON is set, records the benchmark's JSON line — rewriting the
// file with one line per benchmark seen so far, so calibration reruns
// overwrite their earlier short-run records instead of appending
// duplicates. Call it after the b.N loop, exactly once per invocation.
func emitBench(b *testing.B, metrics map[string]float64) {
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.ReportMetric(metrics[k], k)
	}
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		return
	}
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	rec := benchRecord{Name: b.Name(), Trials: b.N, NsPerOp: nsPerOp}
	if len(metrics) > 0 {
		rec.Metrics = metrics
	}

	benchEmitMu.Lock()
	defer benchEmitMu.Unlock()
	if _, seen := benchEmitted[rec.Name]; !seen {
		benchEmitOrd = append(benchEmitOrd, rec.Name)
	}
	benchEmitted[rec.Name] = rec
	var out []byte
	for _, name := range benchEmitOrd {
		r := benchEmitted[name]
		out = append(out, benchRecordLine(r.Name, r.Trials, r.NsPerOp, r.Metrics)...)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		b.Logf("BENCH_JSON: %v", err)
	}
}

func TestBenchRecordLineRoundTrips(t *testing.T) {
	line := benchRecordLine("BenchmarkX/d=4", 17, 1234.5, map[string]float64{
		"error-rate": 0.25, "sim-cycles-per-bit": 6000,
	})
	if !strings.HasSuffix(string(line), "\n") {
		t.Fatal("record line not newline-terminated")
	}
	var rec benchRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if rec.Name != "BenchmarkX/d=4" || rec.Trials != 17 || rec.NsPerOp != 1234.5 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Metrics["sim-cycles-per-bit"] != 6000 {
		t.Fatalf("metrics %v", rec.Metrics)
	}
	// No metrics -> the field is omitted entirely.
	if strings.Contains(string(benchRecordLine("B", 1, 1, nil)), "metrics") {
		t.Fatal("empty metrics not omitted")
	}
}

func TestBenchRecordLineStableKeyOrder(t *testing.T) {
	m := map[string]float64{"b": 2, "a": 1, "c": 3}
	first := string(benchRecordLine("B", 1, 1, m))
	for i := 0; i < 10; i++ {
		if got := string(benchRecordLine("B", 1, 1, m)); got != first {
			t.Fatalf("unstable line: %q vs %q", got, first)
		}
	}
}
