package lruleak

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
)

// This file is the generalization the engine buys us: arbitrary
// evaluation grids over the channel's main dimensions as a single call.
// The paper's Figure 4 is one slice of this space (one profile, one
// policy); related work (Cañones et al., "Security Analysis of Cache
// Replacement Policies") sweeps the same experiments across replacement
// policies, which here is one extra slice element.

// TrTs is one operating point of the covert channel.
type TrTs struct {
	Tr, Ts uint64
}

// SweepSpec declares a cross-product grid of SMT error-rate
// experiments. Zero-valued dimensions get sensible defaults, so the
// zero spec is already a runnable (if small) sweep.
type SweepSpec struct {
	// Profiles defaults to all three Table III CPUs.
	Profiles []Profile
	// Policies defaults to Tree-PLRU (the policy of the evaluated
	// parts).
	Policies []ReplacementKind
	// Algorithms defaults to both protocols.
	Algorithms []core.Algorithm
	// Points defaults to the paper's Intel operating point
	// (Tr=600, Ts=6000).
	Points []TrTs
	// Ds defaults to {0}, i.e. each algorithm's default split.
	Ds []int
	// Trials is the number of independent repetitions per cell, each
	// with its own split seed; the cell reports the error-rate summary
	// over them. Defaults to 1.
	Trials int
	// MsgBits and Repeats control the per-trial measurement cost
	// (defaults 64 and 4, like Figure 4).
	MsgBits, Repeats int
}

func (sp SweepSpec) withDefaults() SweepSpec {
	if len(sp.Profiles) == 0 {
		sp.Profiles = Profiles()
	}
	if len(sp.Policies) == 0 {
		sp.Policies = []ReplacementKind{TreePLRU}
	}
	if len(sp.Algorithms) == 0 {
		sp.Algorithms = []core.Algorithm{Alg1SharedMemory, Alg2NoSharedMemory}
	}
	if len(sp.Points) == 0 {
		sp.Points = []TrTs{{Tr: 600, Ts: 6000}}
	}
	if len(sp.Ds) == 0 {
		sp.Ds = []int{0}
	}
	if sp.Trials == 0 {
		sp.Trials = 1
	}
	if sp.MsgBits == 0 {
		sp.MsgBits = 64
	}
	if sp.Repeats == 0 {
		sp.Repeats = 4
	}
	return sp
}

// SweepCell is one grid point's identity and measured result.
type SweepCell struct {
	Profile   Profile
	Policy    ReplacementKind
	Algorithm core.Algorithm
	Tr, Ts    uint64
	D         int
	// RateBps is the operating point's transmission rate (identical
	// across trials).
	RateBps float64
	// Err summarizes the error rate over the spec's Trials independent
	// repetitions (N == 1 when Trials is 1).
	Err engine.Summary
}

// Sweep runs the full cross product of the spec through the engine and
// returns the cells in grid order (profiles-major, then policies,
// algorithms, points, Ds). Each (cell, trial) seed is split
// deterministically from the root seed by grid position. Per §VI-B,
// Zen + Algorithm 1 cells run sender and receiver in one address space
// (the configuration Table IV and Figure 7 use, without which that
// combination does not work on AMD).
func Sweep(spec SweepSpec, seed uint64, opt RunOptions) []SweepCell {
	spec = spec.withDefaults()

	type cellID struct {
		prof Profile
		pol  ReplacementKind
		alg  core.Algorithm
		pt   TrTs
		d    int
	}
	var ids []cellID
	for _, prof := range spec.Profiles {
		for _, pol := range spec.Policies {
			for _, alg := range spec.Algorithms {
				for _, pt := range spec.Points {
					for _, d := range spec.Ds {
						ids = append(ids, cellID{prof, pol, alg, pt, d})
					}
				}
			}
		}
	}

	seeds := engine.Seeds(seed, len(ids)*spec.Trials)
	jobs := make([]engine.Job[ErrorRateResult], 0, len(ids)*spec.Trials)
	for _, id := range ids {
		id := id
		for trial := 0; trial < spec.Trials; trial++ {
			jobs = append(jobs, engine.Job[ErrorRateResult]{
				Name: fmt.Sprintf("sweep/%s/%v/alg=%d/tr=%d/ts=%d/d=%d/trial=%d",
					id.prof.Arch, id.pol, int(id.alg), id.pt.Tr, id.pt.Ts, id.d, trial),
				Seed: seeds[len(jobs)],
				Run: func(s uint64) ErrorRateResult {
					c := NewChannel(ChannelConfig{
						Profile: id.prof, L1Policy: id.pol, Algorithm: id.alg,
						Mode: sched.SMT, Tr: id.pt.Tr, Ts: id.pt.Ts, D: id.d,
						SameAddressSpace: id.prof.Arch == "Zen" && id.alg == Alg1SharedMemory,
						Seed:             s,
					})
					return c.MeasureErrorRate(spec.MsgBits, spec.Repeats)
				},
			})
		}
	}
	rs := engine.Run(jobs, opt)

	cells := make([]SweepCell, len(ids))
	for ci, id := range ids {
		sub := rs[ci*spec.Trials : (ci+1)*spec.Trials]
		cells[ci] = SweepCell{
			Profile: id.prof, Policy: id.pol, Algorithm: id.alg,
			Tr: id.pt.Tr, Ts: id.pt.Ts, D: id.d,
			RateBps: sub[0].Value.RateBps,
			Err:     engine.SummarizeBy(sub, func(r ErrorRateResult) float64 { return r.ErrorRate }),
		}
	}
	return cells
}

// RenderSweep formats a sweep as a flat table (mean ± stddev error when
// the sweep ran multiple trials per cell).
func RenderSweep(cells []SweepCell) string {
	var b strings.Builder
	b.WriteString("CPU                     Policy      Algorithm                         Tr      Ts      d  Rate        Error\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-22s  %-10v  %-32v  %-6d  %-6d  %d  %7.1f Kbps  %5.1f%%",
			c.Profile.Name, c.Policy, c.Algorithm, c.Tr, c.Ts, c.D,
			c.RateBps/1000, 100*c.Err.Mean)
		if c.Err.N > 1 {
			fmt.Fprintf(&b, " ± %4.1f%%", 100*c.Err.Std)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
