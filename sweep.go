package lruleak

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/hier"
	"repro/internal/leakage"
	"repro/internal/mem"
	"repro/internal/perfctr"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/transport"
	"repro/internal/transport/codec"
	"repro/internal/victim"
	"repro/internal/workload"
)

// This file is the generalization the engine buys us: arbitrary
// evaluation grids over the channel's main dimensions as a single call.
// The paper's Figure 4 is one slice of this space (one profile, one
// policy); related work (Cañones et al., "Security Analysis of Cache
// Replacement Policies") sweeps the same experiments across replacement
// policies, which here is one extra slice element.

// TrTs is one operating point of the covert channel.
type TrTs struct {
	Tr, Ts uint64
}

// SweepSpec declares a cross-product grid of SMT error-rate
// experiments. Zero-valued dimensions get sensible defaults, so the
// zero spec is already a runnable (if small) sweep.
type SweepSpec struct {
	// Profiles defaults to all three Table III CPUs.
	Profiles []Profile
	// Policies defaults to Tree-PLRU (the policy of the evaluated
	// parts).
	Policies []ReplacementKind
	// Algorithms defaults to both protocols.
	Algorithms []core.Algorithm
	// Points defaults to the paper's Intel operating point
	// (Tr=600, Ts=6000).
	Points []TrTs
	// Ds defaults to {0}, i.e. each algorithm's default split.
	Ds []int
	// Trials is the number of independent repetitions per cell, each
	// with its own split seed; the cell reports the error-rate summary
	// over them. Defaults to 1.
	Trials int
	// MsgBits and Repeats control the per-trial measurement cost
	// (defaults 64 and 4, like Figure 4).
	MsgBits, Repeats int
}

// WithDefaults returns the spec with every zero-valued dimension
// replaced by its documented default — the normal form Sweep evaluates
// and the one the service layer hashes for content-addressed caching.
func (sp SweepSpec) WithDefaults() SweepSpec {
	if len(sp.Profiles) == 0 {
		sp.Profiles = Profiles()
	}
	if len(sp.Policies) == 0 {
		sp.Policies = []ReplacementKind{TreePLRU}
	}
	if len(sp.Algorithms) == 0 {
		sp.Algorithms = []core.Algorithm{Alg1SharedMemory, Alg2NoSharedMemory}
	}
	if len(sp.Points) == 0 {
		sp.Points = []TrTs{{Tr: 600, Ts: 6000}}
	}
	if len(sp.Ds) == 0 {
		sp.Ds = []int{0}
	}
	if sp.Trials == 0 {
		sp.Trials = 1
	}
	if sp.MsgBits == 0 {
		sp.MsgBits = 64
	}
	if sp.Repeats == 0 {
		sp.Repeats = 4
	}
	return sp
}

// SweepCell is one grid point's identity and measured result.
type SweepCell struct {
	Profile   Profile
	Policy    ReplacementKind
	Algorithm core.Algorithm
	Tr, Ts    uint64
	D         int
	// RateBps is the operating point's transmission rate (identical
	// across trials).
	RateBps float64
	// Err summarizes the error rate over the spec's Trials independent
	// repetitions (N == 1 when Trials is 1).
	Err engine.Summary
}

// Sweep runs the full cross product of the spec through the engine and
// returns the cells in grid order (profiles-major, then policies,
// algorithms, points, Ds). Each (cell, trial) seed is split
// deterministically from the root seed by grid position. Per §VI-B,
// Zen + Algorithm 1 cells run sender and receiver in one address space
// (the configuration Table IV and Figure 7 use, without which that
// combination does not work on AMD).
func Sweep(spec SweepSpec, seed uint64, opt RunOptions) []SweepCell {
	spec = spec.WithDefaults()

	type cellID struct {
		prof Profile
		pol  ReplacementKind
		alg  core.Algorithm
		pt   TrTs
		d    int
	}
	var ids []cellID
	for _, prof := range spec.Profiles {
		for _, pol := range spec.Policies {
			for _, alg := range spec.Algorithms {
				for _, pt := range spec.Points {
					for _, d := range spec.Ds {
						ids = append(ids, cellID{prof, pol, alg, pt, d})
					}
				}
			}
		}
	}

	seeds := engine.Seeds(seed, len(ids)*spec.Trials)
	jobs := make([]engine.Job[ErrorRateResult], 0, len(ids)*spec.Trials)
	for _, id := range ids {
		id := id
		for trial := 0; trial < spec.Trials; trial++ {
			jobs = append(jobs, engine.Job[ErrorRateResult]{
				Name: fmt.Sprintf("sweep/%s/%v/alg=%d/tr=%d/ts=%d/d=%d/trial=%d",
					id.prof.Arch, id.pol, int(id.alg), id.pt.Tr, id.pt.Ts, id.d, trial),
				Seed: seeds[len(jobs)],
				RunW: func(s uint64, ws *engine.Workspace) ErrorRateResult {
					c := NewChannelW(ChannelConfig{
						Profile: id.prof, L1Policy: id.pol, Algorithm: id.alg,
						Mode: sched.SMT, Tr: id.pt.Tr, Ts: id.pt.Ts, D: id.d,
						SameAddressSpace: id.prof.Arch == "Zen" && id.alg == Alg1SharedMemory,
						Seed:             s,
					}, ws)
					return c.MeasureErrorRate(spec.MsgBits, spec.Repeats)
				},
			})
		}
	}
	rs := engine.Run(jobs, opt)

	cells := make([]SweepCell, len(ids))
	for ci, id := range ids {
		sub := rs[ci*spec.Trials : (ci+1)*spec.Trials]
		cells[ci] = SweepCell{
			Profile: id.prof, Policy: id.pol, Algorithm: id.alg,
			Tr: id.pt.Tr, Ts: id.pt.Ts, D: id.d,
			RateBps: sub[0].Value.RateBps,
			Err:     engine.SummarizeBy(sub, func(r ErrorRateResult) float64 { return r.ErrorRate }),
		}
	}
	return cells
}

// StreamSpec declares a cross-product grid of transport-layer capacity
// experiments: end-to-end goodput and frame-error rate of the streaming
// covert channel (internal/transport) as functions of the operating
// point, the error-correcting code, the lane count and the noise level.
// Zero-valued dimensions get sensible defaults.
type StreamSpec struct {
	// Points defaults to the stream demo point (Tr=2000, Ts=8000).
	Points []TrTs
	// Codecs defaults to the full codec family (none, rep3, hamming74).
	Codecs []string
	// LaneCounts defaults to {1, 4}.
	LaneCounts []int
	// NoiseThreads defaults to {0, 3}.
	NoiseThreads []int
	// NoisePeriod is the cycles between noise accesses (default 2000).
	NoisePeriod uint64
	// PayloadBytes is the per-cell transfer size (default 96).
	PayloadBytes int
	// FramePayload is the payload bytes per frame (default 32).
	FramePayload int
}

// WithDefaults returns the spec with every zero-valued dimension
// replaced by its documented default (see SweepSpec.WithDefaults).
func (sp StreamSpec) WithDefaults() StreamSpec {
	if len(sp.Points) == 0 {
		sp.Points = []TrTs{{Tr: 2000, Ts: 8000}}
	}
	if len(sp.Codecs) == 0 {
		sp.Codecs = codec.Names()
	}
	if len(sp.LaneCounts) == 0 {
		sp.LaneCounts = []int{1, 4}
	}
	if len(sp.NoiseThreads) == 0 {
		sp.NoiseThreads = []int{0, 3}
	}
	if sp.NoisePeriod == 0 {
		sp.NoisePeriod = 2000
	}
	if sp.PayloadBytes == 0 {
		sp.PayloadBytes = 96
	}
	if sp.FramePayload == 0 {
		sp.FramePayload = 32
	}
	return sp
}

// StreamSweep runs the full cross product of the spec through the
// engine and returns one capacity point per cell in grid order
// (points-major, then codecs, lane counts, noise levels). Cell seeds
// are split deterministically from the root seed by grid position, so
// the result is bit-identical at any worker count.
func StreamSweep(spec StreamSpec, seed uint64, opt RunOptions) []StreamPoint {
	spec = spec.WithDefaults()

	type cellID struct {
		pt    TrTs
		cname string
		lanes int
		noise int
	}
	var ids []cellID
	for _, pt := range spec.Points {
		for _, cname := range spec.Codecs {
			if _, err := codec.ByName(cname); err != nil {
				panic(fmt.Sprintf("lruleak: StreamSweep: %v", err))
			}
			for _, lanes := range spec.LaneCounts {
				for _, noise := range spec.NoiseThreads {
					ids = append(ids, cellID{pt, cname, lanes, noise})
				}
			}
		}
	}

	seeds := engine.Seeds(seed, len(ids))
	jobs := make([]engine.Job[StreamPoint], len(ids))
	for i, id := range ids {
		id := id
		jobs[i] = engine.Job[StreamPoint]{
			Name: fmt.Sprintf("stream/tr=%d/ts=%d/%s/lanes=%d/noise=%d",
				id.pt.Tr, id.pt.Ts, id.cname, id.lanes, id.noise),
			Seed: seeds[i],
			Run: func(s uint64) StreamPoint {
				c, _ := codec.ByName(id.cname)
				cfg := transport.Config{
					Channel: core.Config{
						Algorithm: Alg1SharedMemory, Mode: sched.SMT,
						Tr: id.pt.Tr, Ts: id.pt.Ts,
						NoiseThreads: id.noise, NoisePeriod: spec.NoisePeriod,
					},
					Lanes:        transport.DefaultLanes(id.lanes),
					Codec:        c,
					FramePayload: spec.FramePayload,
				}
				return transport.MeasureCapacity(cfg, spec.PayloadBytes, s)
			},
		}
	}
	return engine.Values(engine.Run(jobs, opt))
}

// RenderStreamSweep formats the grid as a flat table.
func RenderStreamSweep(points []StreamPoint) string {
	var b strings.Builder
	b.WriteString("Tr      Ts      Codec       Lanes  Noise  Frames  FER     ByteErr  Goodput\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d  %-6d  %-10s  %-5d  %-5d  %2d/%-2d   %5.1f%%  %-7d  %7.1f Kbps\n",
			p.Tr, p.Ts, p.Codec, p.Lanes, p.NoiseThreads,
			p.FramesOK, p.FramesSent, 100*p.FrameErrorRate, p.ByteErrors,
			p.GoodputBps/1000)
	}
	return b.String()
}

// StreamDemo is the headline transport experiment: one payload sent
// end to end per codec at the noisy demo operating point (Tr=2000,
// Ts=8000, four lanes, three noise processes by default). At this point
// the no-ECC baseline loses frames while Hamming(7,4) delivers the
// payload with zero residual byte errors — the capacity-vs-reliability
// trade of Figure 4 restated at the transport layer.
func StreamDemo(payloadBytes, noiseThreads int, seed uint64, opt RunOptions) []StreamPoint {
	return StreamSweep(StreamSpec{
		LaneCounts:   []int{4},
		NoiseThreads: []int{noiseThreads},
		PayloadBytes: payloadBytes,
	}, seed, opt)
}

// RenderStreamDemo formats the demo as a small comparison table.
func RenderStreamDemo(points []StreamPoint) string {
	var b strings.Builder
	if len(points) > 0 {
		p := points[0]
		fmt.Fprintf(&b, "Streaming covert-channel transport — %d-byte payload, %d lanes, Tr=%d Ts=%d, %d noise threads\n",
			p.PayloadBytes, p.Lanes, p.Tr, p.Ts, p.NoiseThreads)
	}
	b.WriteString("Codec       Frames  FER     ByteErr  Goodput\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s  %2d/%-2d   %5.1f%%  %-7d  %7.1f Kbps\n",
			p.Codec, p.FramesOK, p.FramesSent, 100*p.FrameErrorRate,
			p.ByteErrors, p.GoodputBps/1000)
	}
	return b.String()
}

// AttackSpec declares a cross-product grid of secret-recovery attacks:
// victims × replacement policies × defenses × uarch profiles, each cell
// running the full template attack of internal/attack and reporting
// recovery quality plus the detection verdicts. Zero-valued dimensions
// get sensible defaults, so the zero spec is a runnable matrix.
type AttackSpec struct {
	// Victims defaults to every victim kind (ttable, sqmul, lookup).
	Victims []string
	// Policies defaults to the LRU family the paper studies
	// (true LRU, Tree-PLRU, Bit-PLRU).
	Policies []ReplacementKind
	// Defenses defaults to the full Section IX matrix (baseline, both
	// PL-cache variants, random fill, DAWG).
	Defenses []AttackDefense
	// Profiles defaults to Sandy Bridge only (the attack depends on
	// geometry, which all three Table III parts share).
	Profiles []Profile
	// Probes defaults to the canonical full prime only; add
	// attack.ProbeDSplit(1) for the Figure 11 d=1 partial prime that
	// separates the PL-cache variants.
	Probes []AttackProbe
	// Schedules defaults to the synchronous attack-driven baseline
	// only; add the SMT and time-sliced schedules to price scheduling
	// jitter into the matrix.
	Schedules []AttackSchedule
	// Symbols is the demo-secret length per cell (default 8).
	Symbols int
	// Votes is the observation windows fused per symbol (default 4).
	Votes int
	// ProfilingRounds is the per-symbol-value template windows
	// (default 8).
	ProfilingRounds int
	// Trials is the independent repetitions per cell, each with its own
	// split seed (default 1).
	Trials int
}

// WithDefaults returns the spec with every zero-valued dimension
// replaced by its documented default (see SweepSpec.WithDefaults).
func (sp AttackSpec) WithDefaults() AttackSpec {
	if len(sp.Victims) == 0 {
		sp.Victims = victim.Names()
	}
	if len(sp.Policies) == 0 {
		sp.Policies = []ReplacementKind{TrueLRU, TreePLRU, BitPLRU}
	}
	if len(sp.Defenses) == 0 {
		sp.Defenses = attack.Defenses()
	}
	if len(sp.Profiles) == 0 {
		sp.Profiles = []Profile{SandyBridge()}
	}
	if len(sp.Probes) == 0 {
		sp.Probes = []AttackProbe{attack.ProbeFull()}
	}
	if len(sp.Schedules) == 0 {
		sp.Schedules = []AttackSchedule{attack.ScheduleSync}
	}
	if sp.Symbols == 0 {
		sp.Symbols = 8
	}
	if sp.Votes == 0 {
		sp.Votes = 4
	}
	if sp.ProfilingRounds == 0 {
		sp.ProfilingRounds = 8
	}
	if sp.Trials == 0 {
		sp.Trials = 1
	}
	return sp
}

// AttackCell is one grid point of the defense-evaluation matrix.
type AttackCell struct {
	Victim   string
	Profile  Profile
	Policy   ReplacementKind
	Defense  AttackDefense
	Probe    AttackProbe
	Schedule AttackSchedule

	// Recovery summarizes the recovery rate over the cell's trials.
	Recovery engine.Summary
	// Guesses summarizes mean guesses-to-first-correct per symbol.
	Guesses engine.Summary
	// AttackerFlagged and VictimFlagged are the fractions of trials in
	// which the counter monitor called each process suspicious.
	AttackerFlagged, VictimFlagged float64
}

// AttackSweep runs the full cross product of the spec through the
// engine and returns the cells in grid order (victims-major, then
// profiles, policies, defenses, probes, schedules). Each (cell, trial)
// seed is split deterministically from the root seed by grid position,
// and all cells of one victim kind attack the same demo secret, so the
// matrix is comparable across defenses and bit-identical at any worker
// count.
func AttackSweep(spec AttackSpec, seed uint64, opt RunOptions) []AttackCell {
	spec = spec.WithDefaults()

	type cellID struct {
		vname string
		prof  Profile
		pol   ReplacementKind
		def   AttackDefense
		probe AttackProbe
		sched AttackSchedule
	}
	var ids []cellID
	for _, vname := range spec.Victims {
		for _, prof := range spec.Profiles {
			// Validate every (victim, profile) pairing up front so a
			// bad spec fails here, not inside an engine worker.
			if _, err := victim.ByName(vname, prof.L1Sets); err != nil {
				panic(fmt.Sprintf("lruleak: AttackSweep: %s on %s: %v", vname, prof.Arch, err))
			}
			for _, pol := range spec.Policies {
				for _, def := range spec.Defenses {
					for _, probe := range spec.Probes {
						for _, sched := range spec.Schedules {
							ids = append(ids, cellID{vname, prof, pol, def, probe, sched})
						}
					}
				}
			}
		}
	}

	type trialResult struct {
		rec, guesses           float64
		attFlagged, vicFlagged bool
	}
	seeds := engine.Seeds(seed, len(ids)*spec.Trials)
	jobs := make([]engine.Job[trialResult], 0, len(ids)*spec.Trials)
	for _, id := range ids {
		id := id
		for trial := 0; trial < spec.Trials; trial++ {
			jobs = append(jobs, engine.Job[trialResult]{
				Name: fmt.Sprintf("attack/%s/%v/%v/%v/%v/%s/trial=%d",
					id.vname, id.pol, id.def, id.probe, id.sched, id.prof.Arch, trial),
				Seed: seeds[len(jobs)],
				Run: func(s uint64) trialResult {
					v, err := victim.ByName(id.vname, id.prof.L1Sets)
					if err != nil {
						panic(err)
					}
					secret := victim.DemoSecret(v, spec.Symbols, seed)
					res := attack.Run(attack.Config{
						Victim: v, Defense: id.def, Policy: id.pol,
						Profile: id.prof, Votes: spec.Votes,
						ProfilingRounds: spec.ProfilingRounds,
						Probe:           id.probe, Schedule: id.sched,
						Seed: s,
					}, secret)
					return trialResult{
						rec:        res.RecoveryRate,
						guesses:    res.MeanGuesses,
						attFlagged: res.AttackerVerdict == detect.Suspicious,
						vicFlagged: res.VictimVerdict == detect.Suspicious,
					}
				},
			})
		}
	}
	rs := engine.Run(jobs, opt)

	cells := make([]AttackCell, len(ids))
	for ci, id := range ids {
		sub := rs[ci*spec.Trials : (ci+1)*spec.Trials]
		cell := AttackCell{
			Victim: id.vname, Profile: id.prof, Policy: id.pol,
			Defense: id.def, Probe: id.probe, Schedule: id.sched,
		}
		cell.Recovery = engine.SummarizeBy(sub, func(t trialResult) float64 { return t.rec })
		cell.Guesses = engine.SummarizeBy(sub, func(t trialResult) float64 { return t.guesses })
		for _, r := range sub {
			if r.Value.attFlagged {
				cell.AttackerFlagged++
			}
			if r.Value.vicFlagged {
				cell.VictimFlagged++
			}
		}
		cell.AttackerFlagged /= float64(len(sub))
		cell.VictimFlagged /= float64(len(sub))
		cells[ci] = cell
	}
	return cells
}

// RenderAttackSweep formats the defense-evaluation matrix as a flat
// table: which defense stops which attack under which probe strategy
// and execution schedule, and whether the monitor flags the attacker
// (and spares the victim) while it runs.
func RenderAttackSweep(cells []AttackCell) string {
	var b strings.Builder
	b.WriteString("Victim   Policy      Defense       Probe  Sched   Recovery  Guesses  Attacker     Victim\n")
	for _, c := range cells {
		att, vic := "benign", "benign"
		if c.AttackerFlagged > 0.5 {
			att = "flagged"
		}
		if c.VictimFlagged > 0.5 {
			vic = "flagged"
		}
		fmt.Fprintf(&b, "%-7s  %-10v  %-12v  %-5v  %-6v  %8.2f  %7.1f  %-11s  %s",
			c.Victim, c.Policy, c.Defense, c.Probe, c.Schedule,
			c.Recovery.Mean, c.Guesses.Mean, att, vic)
		if c.Recovery.N > 1 {
			fmt.Fprintf(&b, "  (±%.2f over %d trials)", c.Recovery.Std, c.Recovery.N)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// VoteOverheadRow is one schedule's price in votes: the smallest
// per-symbol window count at which the attack recovers the demo key
// exactly.
type VoteOverheadRow struct {
	Schedule AttackSchedule
	// Votes is the minimum vote count (== MaxVotes when !Recovered).
	Votes     int
	Recovered bool
}

// VoteOverheadStudy prices scheduling jitter: for each schedule it
// searches the minimum votes-per-symbol needed for exact recovery of
// the victim's demo key on the unprotected cache, one engine job per
// schedule. The sync row is the baseline; the SMT and time-sliced rows
// pay for probe windows that drift against the victim's events.
func VoteOverheadStudy(victimName string, pol ReplacementKind, symbols, maxVotes int, seed uint64, opt RunOptions) []VoteOverheadRow {
	scheds := attack.Schedules()
	jobs := make([]engine.Job[VoteOverheadRow], len(scheds))
	for i, sc := range scheds {
		sc := sc
		jobs[i] = engine.Job[VoteOverheadRow]{
			Name: fmt.Sprintf("voteoverhead/%s/%v/%v", victimName, pol, sc),
			Seed: seed,
			Run: func(s uint64) VoteOverheadRow {
				v, err := victim.ByName(victimName, SandyBridge().L1Sets)
				if err != nil {
					panic(err)
				}
				secret := victim.DemoSecret(v, symbols, s)
				n, ok := attack.MinVotes(attack.Config{
					Victim: v, Policy: pol, Schedule: sc, Seed: s,
				}, secret, maxVotes)
				return VoteOverheadRow{Schedule: sc, Votes: n, Recovered: ok}
			},
		}
	}
	return engine.Values(engine.Run(jobs, opt))
}

// RenderVoteOverhead formats the study against its sync baseline.
func RenderVoteOverhead(rows []VoteOverheadRow) string {
	var b strings.Builder
	base := 0
	for _, r := range rows {
		if r.Schedule == attack.ScheduleSync && r.Recovered {
			base = r.Votes
		}
	}
	b.WriteString("Schedule  MinVotes  Overhead\n")
	for _, r := range rows {
		if !r.Recovered {
			fmt.Fprintf(&b, "%-8v  >%-7d  (no full recovery)\n", r.Schedule, r.Votes)
			continue
		}
		over := "baseline"
		if r.Schedule != attack.ScheduleSync {
			if base > 0 {
				over = fmt.Sprintf("%+d votes/symbol (%.1fx)", r.Votes-base, float64(r.Votes)/float64(base))
			} else {
				over = "(no sync baseline)"
			}
		}
		fmt.Fprintf(&b, "%-8v  %-8d  %s\n", r.Schedule, r.Votes, over)
	}
	return b.String()
}

// ROCSpec declares the detection threshold sweep: attacker counter
// profiles (positives) per defense against benign Figure 9 suite
// co-runs (negatives), swept over the monitor's cross-eviction
// threshold grid. Zero-valued dimensions get sensible defaults.
type ROCSpec struct {
	// Victims defaults to the T-table victim only.
	Victims []string
	// Policies defaults to Tree-PLRU.
	Policies []ReplacementKind
	// Defenses defaults to the full Section IX matrix.
	Defenses []AttackDefense
	// Trials is the attack runs per (victim, policy, defense), each an
	// independent positive sample (default 4).
	Trials int
	// Symbols is the per-attack demo-secret length (default 4; the
	// sweep needs counter profiles, not long recoveries).
	Symbols int
	// BenignRefs is the reference count each benign process issues
	// (default 300_000).
	BenignRefs int
	// BenignSlice is the time-slice granularity of the benign co-run,
	// in references per turn (default 100_000). Cross-evictions cost a
	// sliced process roughly one shared-cache refill per slice, so
	// this knob sets where the benign population sits on the
	// cross-eviction axis — real quanta are millions of references, so
	// the default is already pessimistic about benign interference.
	BenignSlice int
	// Thresholds defaults to detect.DefaultROCThresholds().
	Thresholds []float64
}

// WithDefaults returns the spec with every zero-valued dimension
// replaced by its documented default (see SweepSpec.WithDefaults).
func (sp ROCSpec) WithDefaults() ROCSpec {
	if len(sp.Victims) == 0 {
		sp.Victims = []string{"ttable"}
	}
	if len(sp.Policies) == 0 {
		sp.Policies = []ReplacementKind{TreePLRU}
	}
	if len(sp.Defenses) == 0 {
		sp.Defenses = attack.Defenses()
	}
	if sp.Trials == 0 {
		sp.Trials = 4
	}
	if sp.Symbols == 0 {
		sp.Symbols = 4
	}
	if sp.BenignRefs == 0 {
		sp.BenignRefs = 300_000
	}
	if sp.BenignSlice == 0 {
		sp.BenignSlice = 100_000
	}
	if len(sp.Thresholds) == 0 {
		sp.Thresholds = detect.DefaultROCThresholds()
	}
	return sp
}

// DefenseROC is one defense's swept detection curve.
type DefenseROC struct {
	Defense AttackDefense
	ROC     detect.ROC
}

// ROCResult is the full threshold-sensitivity study.
type ROCResult struct {
	Curves []DefenseROC
	// BenignProcesses is the negative sample size (two per suite pair).
	BenignProcesses int
	// Deployed is the cross-eviction threshold the stock attack
	// monitor runs at, for the operating-point columns.
	Deployed float64
}

// ROCSweep runs the detection threshold sweep through the engine:
// positives are the attacker's counter reports from live attack runs
// (per defense — a defense changes what the attacker's traffic looks
// like, DAWG structurally zeroing its cross-evictions); negatives are
// the per-process reports of every unordered Figure 9 suite pair
// co-run on the unprotected baseline hierarchy. The same negatives
// serve every defense, so the curves differ only in what the attack
// does to the counters.
func ROCSweep(spec ROCSpec, seed uint64, opt RunOptions) ROCResult {
	spec = spec.WithDefaults()

	// Positive samples: one job per (defense, victim, policy, trial).
	type posID struct {
		def   AttackDefense
		vname string
		pol   ReplacementKind
	}
	var posIDs []posID
	for _, def := range spec.Defenses {
		for _, vname := range spec.Victims {
			if _, err := victim.ByName(vname, SandyBridge().L1Sets); err != nil {
				panic(fmt.Sprintf("lruleak: ROCSweep: %v", err))
			}
			for _, pol := range spec.Policies {
				posIDs = append(posIDs, posID{def, vname, pol})
			}
		}
	}
	seeds := engine.Seeds(seed, len(posIDs)*spec.Trials+1)
	posJobs := make([]engine.Job[perfctr.Report], 0, len(posIDs)*spec.Trials)
	for _, id := range posIDs {
		id := id
		for trial := 0; trial < spec.Trials; trial++ {
			posJobs = append(posJobs, engine.Job[perfctr.Report]{
				Name: fmt.Sprintf("roc/pos/%v/%s/%v/trial=%d", id.def, id.vname, id.pol, trial),
				Seed: seeds[len(posJobs)],
				Run: func(s uint64) perfctr.Report {
					v, err := victim.ByName(id.vname, SandyBridge().L1Sets)
					if err != nil {
						panic(err)
					}
					secret := victim.DemoSecret(v, spec.Symbols, s)
					res := attack.Run(attack.Config{
						Victim: v, Defense: id.def, Policy: id.pol, Seed: s,
					}, secret)
					return res.AttackerReport
				},
			})
		}
	}
	posReports := engine.Values(engine.Run(posJobs, opt))

	// Negative samples: every unordered pair of suite benchmarks,
	// co-run on a shared baseline hierarchy; both processes' reports
	// count.
	type pairID struct{ a, b int }
	var pairs []pairID
	for i := 0; i < workload.SuiteSize(); i++ {
		for j := i + 1; j < workload.SuiteSize(); j++ {
			pairs = append(pairs, pairID{i, j})
		}
	}
	pairSeeds := engine.Seeds(seeds[len(seeds)-1], len(pairs))
	negJobs := make([]engine.Job[[2]perfctr.Report], len(pairs))
	for i, p := range pairs {
		p := p
		negJobs[i] = engine.Job[[2]perfctr.Report]{
			Name: fmt.Sprintf("roc/neg/pair=%d-%d", p.a, p.b),
			Seed: pairSeeds[i],
			Run: func(s uint64) [2]perfctr.Report {
				return benignPairReports(p.a, p.b, spec.BenignRefs, spec.BenignSlice, s)
			},
		}
	}
	var negReports []perfctr.Report
	for _, pair := range engine.Values(engine.Run(negJobs, opt)) {
		negReports = append(negReports, pair[0], pair[1])
	}

	// Sweep one curve per defense over the shared negatives.
	base := detect.ROCBaseThresholds()
	out := ROCResult{BenignProcesses: len(negReports), Deployed: base.L1CrossEvictionRate}
	perDefense := spec.Trials * len(spec.Victims) * len(spec.Policies)
	for di, def := range spec.Defenses {
		pos := posReports[di*perDefense : (di+1)*perDefense]
		out.Curves = append(out.Curves, DefenseROC{
			Defense: def,
			ROC:     detect.SweepCrossEvictionThreshold(pos, negReports, base, spec.Thresholds),
		})
	}
	return out
}

// benignPairTagStride separates the two benign processes' address
// spaces (no shared lines — only set contention couples them).
const benignPairTagStride = 1 << 26

// benignPairReports co-runs two Figure 9 suite workloads on a shared
// unprotected hierarchy with the attack's cache geometry, alternating
// time slices of `slice` references each until both have issued
// `refs`, and returns both processes' counter reports — the
// false-positive population a deployed monitor must not flag. The
// sliced interleave matters: a time-sliced process pays its partner's
// displacement once per slice (one shared-cache refill), so its
// cross-eviction rate is bounded by roughly cacheLines/slice, whereas
// a reference-by-reference interleave (two hyper-threads thrashing)
// would push every heavy pair over any plausible threshold.
func benignPairReports(a, b, refs, slice int, seed uint64) [2]perfctr.Report {
	gens := [2]workload.Generator{
		workload.SuiteBenchmark(a, seed),
		workload.SuiteBenchmark(b, seed^0x9e3779b9),
	}
	h := hier.New(hier.Config{
		Profile:  SandyBridge(),
		L1Policy: TreePLRU, L2Policy: TreePLRU,
		RNG: rng.New(seed),
	})
	if slice < 1 {
		slice = 1
	}
	// Each slice is one requestor's run of generator-driven loads, so it
	// executes as a single LoadBatch (the geometry above is prefetch-free
	// and deterministic, so the batch is bit-identical to per-access
	// Load calls).
	n := min(slice, refs)
	addrs := make([]mem.Addr, n)
	res := make([]hier.Result, n)
	var issued [2]int
	for turn := 0; issued[0] < refs || issued[1] < refs; turn++ {
		p := turn % 2
		n := min(slice, refs-issued[p])
		if n <= 0 {
			continue
		}
		for k := 0; k < n; k++ {
			l := gens[p].Next().Addr / 64
			if p == 1 {
				l += benignPairTagStride
			}
			addrs[k] = mem.Addr{Virt: l * 64, Phys: l * 64, VirtLine: l, PhysLine: l}
		}
		h.LoadBatch(addrs[:n], p, res[:n])
		issued[p] += n
	}
	return [2]perfctr.Report{perfctr.Collect(h, 0), perfctr.Collect(h, 1)}
}

// RenderROC formats the study: the AUC summary table with the deployed
// operating point, then each defense's swept curve.
func RenderROC(res ROCResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection ROC — cross-eviction threshold sweep (negatives: %d benign Figure 9 suite processes)\n",
		res.BenignProcesses)
	fmt.Fprintf(&b, "Defense       AUC     TPR@%.1f%%  FPR@%.1f%%\n", 100*res.Deployed, 100*res.Deployed)
	for _, c := range res.Curves {
		p := c.ROC.PointAt(res.Deployed)
		fmt.Fprintf(&b, "%-12v  %.3f   %-8.2f  %-8.2f\n", c.Defense, c.ROC.AUC, p.TPR, p.FPR)
	}
	for _, c := range res.Curves {
		fmt.Fprintf(&b, "\ndefense=%v (positives: %d attacker runs)\n", c.Defense, c.ROC.PosN)
		b.WriteString("  threshold   TPR    FPR\n")
		for _, p := range c.ROC.Points {
			th := fmt.Sprintf("%6.2f%%", 100*p.Threshold)
			if p.Threshold > 1 {
				th = "    off"
			}
			fmt.Fprintf(&b, "  %s     %.2f   %.2f\n", th, p.TPR, p.FPR)
		}
	}
	return b.String()
}

// RenderSweep formats a sweep as a flat table (mean ± stddev error when
// the sweep ran multiple trials per cell).
func RenderSweep(cells []SweepCell) string {
	var b strings.Builder
	b.WriteString("CPU                     Policy      Algorithm                         Tr      Ts      d  Rate        Error\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-22s  %-10v  %-32v  %-6d  %-6d  %d  %7.1f Kbps  %5.1f%%",
			c.Profile.Name, c.Policy, c.Algorithm, c.Tr, c.Ts, c.D,
			c.RateBps/1000, 100*c.Err.Mean)
		if c.Err.N > 1 {
			fmt.Fprintf(&b, " ± %4.1f%%", 100*c.Err.Std)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LeakageSpec parameterises the automated policy leakage study: a
// reachable-state-space table (the information-theoretic ceiling per
// policy family) and a ranked leaderboard of measured probing leakage
// per policy x associativity x defense cell. The zero value is the
// documented default grid.
type LeakageSpec struct {
	// Policies defaults to every family with replacement state (true
	// LRU, Tree-PLRU, Bit-PLRU, FIFO). Random keeps no state and has
	// no state space to enumerate.
	Policies []ReplacementKind
	// Ways is the leaderboard associativity axis (default {4, 8}; 8 is
	// the Sandy Bridge L1 point the detect ROC study runs on).
	Ways []int
	// Defenses defaults to the full Section IX matrix.
	Defenses []AttackDefense
	// FillWindows is the random-fill window axis: the randomfill
	// defense is scored once per window (default {4, 16, 64}; 16 is
	// the canonical window every other table uses). Other defenses
	// ignore it.
	FillWindows []uint64
	// SpaceWays is the state-space table's associativity axis (default
	// {4, 8, 16}; 16 drives true LRU past the exhaustive cap and onto
	// the sampled path, so the coverage accounting shows up in the
	// rendered table).
	SpaceWays []int
	// Strategy tunes the eviction probe (zero fields take the
	// leakage.Strategy defaults).
	Strategy leakage.Strategy
	// Enum tunes the enumerator (zero fields take the leakage.Options
	// defaults).
	Enum leakage.Options
}

// WithDefaults returns the spec with every zero-valued dimension
// replaced by its documented default (see SweepSpec.WithDefaults).
func (sp LeakageSpec) WithDefaults() LeakageSpec {
	if len(sp.Policies) == 0 {
		sp.Policies = []ReplacementKind{TrueLRU, TreePLRU, BitPLRU, FIFO}
	}
	if len(sp.Ways) == 0 {
		sp.Ways = []int{4, 8}
	}
	if len(sp.Defenses) == 0 {
		sp.Defenses = attack.Defenses()
	}
	if len(sp.FillWindows) == 0 {
		sp.FillWindows = []uint64{4, 16, 64}
	}
	if len(sp.SpaceWays) == 0 {
		sp.SpaceWays = []int{4, 8, 16}
	}
	return sp
}

// LeakageSpaceRow is one policy family's reachable-state-space summary
// at one associativity.
type LeakageSpaceRow struct {
	Policy ReplacementKind
	Ways   int
	Space  leakage.StateSpace
}

// LeakageCell is one measured leaderboard entry. FillWindow is nonzero
// only on randomfill rows. Bound is the state-space leakage ceiling
// log2(TheoreticalStates) for the cell's policy family — the measured
// Bits can never legitimately exceed it.
type LeakageCell struct {
	Policy     ReplacementKind
	Ways       int
	Defense    AttackDefense
	FillWindow uint64
	Bound      float64
	Res        leakage.Result
}

// LeakageResult is the full study: the state-space table plus every
// leaderboard cell in grid order (RenderLeakage ranks them).
type LeakageResult struct {
	Spaces []LeakageSpaceRow
	Cells  []LeakageCell
}

// LeakageSweep runs the study through the engine: one job per
// state-space enumeration and one per leaderboard cell, each seeded
// from the grid position so the result is byte-identical at any worker
// count.
func LeakageSweep(spec LeakageSpec, seed uint64, opt RunOptions) LeakageResult {
	spec = spec.WithDefaults()

	type spaceID struct {
		pol  ReplacementKind
		ways int
	}
	var spaceIDs []spaceID
	for _, pol := range spec.Policies {
		for _, ways := range spec.SpaceWays {
			spaceIDs = append(spaceIDs, spaceID{pol, ways})
		}
	}
	type cellID struct {
		pol    ReplacementKind
		ways   int
		def    AttackDefense
		window uint64
	}
	var cellIDs []cellID
	for _, pol := range spec.Policies {
		for _, ways := range spec.Ways {
			for _, def := range spec.Defenses {
				if def == attack.DefenseRandomFill {
					for _, w := range spec.FillWindows {
						cellIDs = append(cellIDs, cellID{pol, ways, def, w})
					}
				} else {
					cellIDs = append(cellIDs, cellID{pol, ways, def, 0})
				}
			}
		}
	}

	seeds := engine.Seeds(seed, len(spaceIDs)+len(cellIDs))
	spaceJobs := make([]engine.Job[leakage.StateSpace], len(spaceIDs))
	for i, id := range spaceIDs {
		id, enum := id, spec.Enum
		spaceJobs[i] = engine.Job[leakage.StateSpace]{
			Name: fmt.Sprintf("leakage/space/%v/ways=%d", id.pol, id.ways),
			Seed: seeds[i],
			Run: func(s uint64) leakage.StateSpace {
				// The enumerator's sampling fallback is seeded from the grid,
				// not the traversal: the canonical closure needs no seed.
				enum.SampleSeed = s
				return leakage.Enumerate(id.pol, id.ways, enum)
			},
		}
	}
	cellJobs := make([]engine.Job[leakage.Result], len(cellIDs))
	for i, id := range cellIDs {
		id := id
		name := fmt.Sprintf("leakage/cell/%v/ways=%d/%v", id.pol, id.ways, id.def)
		if id.def == attack.DefenseRandomFill {
			name += fmt.Sprintf("/window=%d", id.window)
		}
		cellJobs[i] = engine.Job[leakage.Result]{
			Name: name,
			Seed: seeds[len(spaceIDs)+i],
			Run: func(s uint64) leakage.Result {
				return leakage.Eval(leakage.Config{
					Policy: id.pol, Ways: id.ways, Defense: id.def,
					FillWindow: id.window, Strategy: spec.Strategy, Seed: s,
				})
			},
		}
	}

	var out LeakageResult
	for i, sp := range engine.Values(engine.Run(spaceJobs, opt)) {
		out.Spaces = append(out.Spaces, LeakageSpaceRow{
			Policy: spaceIDs[i].pol, Ways: spaceIDs[i].ways, Space: sp,
		})
	}
	for i, res := range engine.Values(engine.Run(cellJobs, opt)) {
		id := cellIDs[i]
		bound := math.Inf(1)
		if n, ok := leakage.TheoreticalStates(id.pol, id.ways); ok {
			bound = math.Log2(n)
		}
		out.Cells = append(out.Cells, LeakageCell{
			Policy: id.pol, Ways: id.ways, Defense: id.def,
			FillWindow: id.window, Bound: bound, Res: res,
		})
	}
	return out
}

// RenderLeakage formats the study: the reachable-state-space table
// (with explicit coverage accounting on sampled rows), then the
// leaderboard ranked by measured bits per observation, descending;
// ties keep grid order, so the ranking is deterministic. Randomized
// cells are marked est (surrogate-corrected estimate) rather than
// exact, and the footnote carries the Cañones–Köpf–Reineke caveat:
// ranked leakage under ONE probing strategy is not a total order on
// policies — orderings may legitimately differ under another probe.
func RenderLeakage(res LeakageResult) string {
	var b strings.Builder
	b.WriteString("Reachable replacement-state spaces (per set, BFS over the hit/miss access alphabet)\n")
	b.WriteString("Policy      Ways  States     Theory     Coverage  Ceiling     Mode\n")
	for _, row := range res.Spaces {
		theory := "-"
		if n, ok := leakage.TheoreticalStates(row.Policy, row.Ways); ok {
			theory = fmt.Sprintf("%.4g", n)
		}
		mode := "exhaustive"
		if !row.Space.Exhaustive {
			mode = fmt.Sprintf("sampled(%d seqs)", row.Space.SampledSequences)
		}
		fmt.Fprintf(&b, "%-10v  %-4d  %-9d  %-9s  %-8.3g  %5.1f bits  %s\n",
			row.Policy, row.Ways, len(row.Space.States), theory,
			row.Space.Coverage, row.Space.Bound(), mode)
	}

	ranked := make([]LeakageCell, len(res.Cells))
	copy(ranked, res.Cells)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Res.Bits > ranked[j].Res.Bits })

	b.WriteString("\nLeakage leaderboard (bits per probe observation, eviction-probe strategy, ranked)\n")
	b.WriteString("Rank  Policy      Ways  Defense       Window  Bits/obs  Ceiling  Obs   Kind\n")
	for i, c := range ranked {
		window := "-"
		if c.Defense == attack.DefenseRandomFill {
			window = fmt.Sprintf("%d", c.FillWindow)
		}
		kind := "exact"
		if !c.Res.Deterministic {
			kind = "est"
		}
		fmt.Fprintf(&b, "%-4d  %-10v  %-4d  %-12v  %-6s  %8.3f  %7.1f  %-4d  %s\n",
			i+1, c.Policy, c.Ways, c.Defense, window, c.Res.Bits, c.Bound,
			c.Res.DistinctObs, kind)
	}
	b.WriteString("\nRanking is per this probe only: policies are incomparable in general\n")
	b.WriteString("(Cañones–Köpf–Reineke), and a different probing strategy may order them differently.\n")
	return b.String()
}
