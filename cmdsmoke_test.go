package lruleak

// Flag-surface smoke test: every cmd/* binary must build and parse its
// flag set. -h exercises the whole flag table (every default is
// evaluated and printed), so a mis-declared or colliding flag — the
// usual casualty of flag churn like lruattack's -schedule/-probe/-roc
// additions — fails here instead of in a user's terminal.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestCommandsParseFlags(t *testing.T) {
	cmds, err := filepath.Glob(filepath.Join("cmd", "*"))
	if err != nil || len(cmds) == 0 {
		t.Fatalf("no cmd/* directories found (err=%v)", err)
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	for _, dir := range cmds {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(filepath.Join(bin, name), "-h")
			out, err := cmd.CombinedOutput()
			// flag.ExitOnError exits 0 on -h (flag.ErrHelp).
			if err != nil {
				t.Fatalf("%s -h exited with %v:\n%s", name, err, out)
			}
			if !strings.Contains(string(out), "Usage") && !strings.Contains(string(out), "-seed") {
				t.Errorf("%s -h printed no usage text:\n%s", name, out)
			}

			// An unknown flag must be a clean exit-2 rejection, not a
			// hang or a panic.
			cmd = exec.Command(filepath.Join(bin, name), "-definitely-not-a-flag")
			out, err = cmd.CombinedOutput()
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
				t.Errorf("%s with an unknown flag: err=%v (want exit 2)\n%s", name, err, out)
			}
		})
	}
}
