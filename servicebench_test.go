package lruleak_test

// The job server's capstone benchmark: many concurrent small jobs
// through a real in-process HTTP server, measuring client-observed
// submit-to-report throughput and tail latency. The workload cycles a
// small set of unique (spec, seed) grids, so most submissions join an
// already-running or cached job — by design: the content-addressed
// cache IS the service's throughput story, and the benchmark prices
// the whole path (HTTP, validation, content keying, dedup join,
// engine execution for the unique specs, report delivery).
//
// CI runs this with -benchtime 10000x so every record in BENCH_JSON
// reflects at least ten thousand jobs.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	lruleak "repro"
	"repro/internal/service"
)

func BenchmarkServiceThroughput(b *testing.B) {
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc)
	defer func() { ts.Close(); svc.Close() }()

	// 64 unique single-cell attack grids; submissions beyond the first
	// 64 are dedup joins onto running or finished jobs.
	const uniqueJobs = 64
	specs := make([]string, uniqueJobs)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"kind":"attack","seed":%d,"attack":{"victims":["ttable"],"policies":["treeplru"],"defenses":["none"],"symbols":1,"votes":1,"profilingRounds":1}}`, i+1)
	}

	const clients = 128
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: clients, MaxIdleConnsPerHost: clients,
	}}

	var next atomic.Int64
	latencies := make([]time.Duration, b.N)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json",
					strings.NewReader(specs[i%uniqueJobs]))
				if err != nil {
					b.Errorf("job %d: submit: %v", i, err)
					return
				}
				var body struct {
					ID string `json:"id"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil || body.ID == "" {
					b.Errorf("job %d: submit response (HTTP %d): %v", i, resp.StatusCode, err)
					return
				}
				rep, err := client.Get(ts.URL + "/v1/jobs/" + body.ID + "/report?wait=1")
				if err != nil {
					b.Errorf("job %d: report: %v", i, err)
					return
				}
				io.Copy(io.Discard, rep.Body)
				rep.Body.Close()
				if rep.StatusCode != http.StatusOK {
					b.Errorf("job %d: report HTTP %d", i, rep.StatusCode)
					return
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pctMs := func(q float64) float64 {
		i := int(q * float64(len(latencies)-1))
		return float64(latencies[i].Microseconds()) / 1000
	}
	unique := uniqueJobs
	if b.N < unique {
		unique = b.N
	}
	lruleak.EmitBench(b, map[string]float64{
		"jobs_per_sec": float64(b.N) / elapsed.Seconds(),
		"p50_ms":       pctMs(0.50),
		"p99_ms":       pctMs(0.99),
		"unique_jobs":  float64(unique),
	})
}
