package lruleak

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/perfctr"
	"repro/internal/sched"
	"repro/internal/spectre"
)

// This file contains one driver per table of the paper's evaluation. Like
// the figure drivers, each declares its grid as engine jobs; results come
// back in submission order, so rendered tables are identical at any worker
// count.

// TableI reproduces the eviction-probability grid (trials 0 = the paper's
// 10,000): one job per (condition, policy, sequence) study, four cells
// each.
func TableI(trials int, seed uint64, opt RunOptions) []core.TableICell {
	specs := core.TableISpecs()
	jobs := make([]engine.Job[[]core.TableICell], len(specs))
	for i, sp := range specs {
		sp := sp
		jobs[i] = engine.Job[[]core.TableICell]{
			Name: sp.String(),
			Seed: seed,
			Run: func(s uint64) []core.TableICell {
				return core.RunTableISpec(sp, trials, s)
			},
		}
	}
	var cells []core.TableICell
	for _, group := range engine.Values(engine.Run(jobs, opt)) {
		cells = append(cells, group...)
	}
	return cells
}

// RenderTableI formats the grid like the paper's Table I.
func RenderTableI(cells []core.TableICell) string {
	var b strings.Builder
	b.WriteString("Init cond.  Iter  Policy      Seq  P(line 0 evicted)\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-10s  %4d  %-10s  %d    %5.1f%%\n",
			c.Init, c.Iteration, c.Policy, c.Seq, 100*c.Prob)
	}
	return b.String()
}

// TableIIRow is one microarchitecture's cache latencies.
type TableIIRow struct {
	Profile Profile
	L1D, L2 int
}

// TableII returns the latency table.
func TableII() []TableIIRow {
	var rows []TableIIRow
	for _, p := range Profiles() {
		rows = append(rows, TableIIRow{Profile: p, L1D: p.L1Latency, L2: p.L2Latency})
	}
	return rows
}

// RenderTableII formats Table II.
func RenderTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("Microarchitecture        L1D    L2 (cycles)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s  %4d  %4d\n", r.Profile.Arch, r.L1D, r.L2)
	}
	return b.String()
}

// TableIVCell is one transmission-rate summary entry.
type TableIVCell struct {
	Profile   Profile
	Mode      sched.Mode
	Algorithm core.Algorithm
	// RateBps is the effective transmission rate; 0 marks the
	// combinations the paper found unusable (Algorithm 2 time-sliced).
	RateBps float64
	// ErrorRate at that operating point (SMT entries only).
	ErrorRate float64
}

// TableIV measures the transmission-rate summary. The SMT entries run the
// error-rate experiment at the paper's operating point (Tr=600/Ts=6000 on
// Intel, Tr=1000/Ts=1e5 on AMD) as parallel jobs; the time-sliced entries
// use the measurements-per-decision estimate of Sections V-B and VI-B and
// need no simulation.
func TableIV(msgBits, repeats int, seed uint64, opt RunOptions) []TableIVCell {
	if msgBits == 0 {
		msgBits = 64
	}
	if repeats == 0 {
		repeats = 4
	}
	profiles := []Profile{SandyBridge(), Zen()}
	var jobs []engine.Job[TableIVCell]
	for _, prof := range profiles {
		ts, tr := uint64(6000), uint64(600)
		same := false
		if prof.Arch == "Zen" {
			ts, tr = 100_000, 1000
			same = true // §VI-B: Algorithm 1 needs one address space on Zen
		}
		for _, alg := range []core.Algorithm{Alg1SharedMemory, Alg2NoSharedMemory} {
			prof, alg, ts, tr, same := prof, alg, ts, tr, same
			jobs = append(jobs, engine.Job[TableIVCell]{
				Name: fmt.Sprintf("tableIV/%s/alg=%d", prof.Arch, int(alg)),
				Seed: seed,
				RunW: func(s uint64, ws *engine.Workspace) TableIVCell {
					c := NewChannelW(ChannelConfig{
						Profile: prof, Algorithm: alg, Mode: sched.SMT,
						Tr: tr, Ts: ts, Seed: s,
						SameAddressSpace: same && alg == Alg1SharedMemory,
					}, ws)
					res := c.MeasureErrorRate(msgBits, repeats)
					return TableIVCell{
						Profile: prof, Mode: sched.SMT, Algorithm: alg,
						RateBps: res.RateBps, ErrorRate: res.ErrorRate,
					}
				},
			})
		}
	}
	smt := engine.Values(engine.Run(jobs, opt))

	// Reassemble in the paper's row order: per profile, the two measured
	// SMT entries followed by the two derived time-sliced entries.
	var out []TableIVCell
	for pi, prof := range profiles {
		out = append(out, smt[2*pi], smt[2*pi+1])
		// Time-sliced Algorithm 1: rate ~ 1 bit per K measurements of
		// period Tr (K=10 on Intel, 100 on AMD per the paper).
		k := 10.0
		if prof.Arch == "Zen" {
			k = 100
		}
		trSlice := 100_000_000.0
		out = append(out, TableIVCell{
			Profile: prof, Mode: sched.TimeSliced, Algorithm: Alg1SharedMemory,
			RateBps: prof.Freq * 1e9 / (trSlice * k),
		})
		// Algorithm 2 time-sliced: no signal observed (paper: "–").
		out = append(out, TableIVCell{
			Profile: prof, Mode: sched.TimeSliced, Algorithm: Alg2NoSharedMemory,
		})
	}
	return out
}

// RenderTableIV formats the summary like Table IV.
func RenderTableIV(cells []TableIVCell) string {
	var b strings.Builder
	b.WriteString("CPU                     Sharing          Algorithm                         Rate\n")
	for _, c := range cells {
		rate := "-"
		if c.RateBps >= 1000 {
			rate = fmt.Sprintf("%.0f Kbps", c.RateBps/1000)
		} else if c.RateBps > 0 {
			rate = fmt.Sprintf("%.1f bps", c.RateBps)
		}
		fmt.Fprintf(&b, "%-22s  %-15s  %-32s  %s\n", c.Profile.Name, c.Mode, c.Algorithm, rate)
	}
	return b.String()
}

// TableVRow is one encoding-latency comparison row.
type TableVRow struct {
	Profile Profile
	FRMem   int
	FRL1    int
	LRU     int
}

// TableV measures the sender's per-bit encoding cost for each channel,
// one job per profile.
func TableV(seed uint64, opt RunOptions) []TableVRow {
	profiles := Profiles()
	jobs := make([]engine.Job[TableVRow], len(profiles))
	for i, prof := range profiles {
		prof := prof
		jobs[i] = engine.Job[TableVRow]{
			Name: fmt.Sprintf("tableV/%s", prof.Arch),
			Seed: seed,
			RunW: func(s uint64, ws *engine.Workspace) TableVRow {
				mk := func() *Channel {
					return NewChannelW(ChannelConfig{Profile: prof, Algorithm: Alg1SharedMemory, Seed: s}, ws)
				}
				return TableVRow{
					Profile: prof,
					FRMem:   baseline.New(baseline.FlushReloadMem, mk()).EncodeCostOne(),
					FRL1:    baseline.New(baseline.FlushReloadL1, mk()).EncodeCostOne(),
					LRU:     mk().EncodeCost(),
				}
			},
		}
	}
	return engine.Values(engine.Run(jobs, opt))
}

// RenderTableV formats Table V.
func RenderTableV(rows []TableVRow) string {
	var b strings.Builder
	b.WriteString("CPU                     F+R(mem)  F+R(L1)  L1 LRU (cycles)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s  %8d  %7d  %6d\n", r.Profile.Name, r.FRMem, r.FRL1, r.LRU)
	}
	return b.String()
}

// TableVIRow is one sender-process miss-rate row.
type TableVIRow struct {
	Profile Profile
	Channel string
	Report  perfctr.Report
}

// TableVI runs each channel and collects the sender's per-level miss rates,
// plus the baselines of a sender sharing with a benign workload and a
// sender alone — one job per table row.
func TableVI(samples int, seed uint64, opt RunOptions) []TableVIRow {
	if samples == 0 {
		samples = 200
	}
	var jobs []engine.Job[TableVIRow]
	add := func(name string, run func(seed uint64, ws *engine.Workspace) TableVIRow) {
		jobs = append(jobs, engine.Job[TableVIRow]{Name: name, Seed: seed, RunW: run})
	}
	for _, prof := range []Profile{SandyBridge(), Skylake()} {
		prof := prof
		// F+R variants and the LRU channels.
		for _, kind := range []baseline.Kind{baseline.FlushReloadMem, baseline.FlushReloadL1} {
			kind := kind
			add(fmt.Sprintf("tableVI/%s/%v", prof.Arch, kind), func(s uint64, ws *engine.Workspace) TableVIRow {
				c := NewChannelW(ChannelConfig{Profile: prof, Algorithm: Alg1SharedMemory,
					Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: s}, ws)
				ch := baseline.New(kind, c)
				ch.Run([]byte{1, 0}, true, samples, 1<<40)
				return TableVIRow{prof, kind.String(), perfctr.Collect(c.Hier, core.ReqSender)}
			})
		}
		for _, alg := range []core.Algorithm{Alg1SharedMemory, Alg2NoSharedMemory} {
			alg := alg
			name := "L1 LRU Alg.1"
			if alg == Alg2NoSharedMemory {
				name = "L1 LRU Alg.2"
			}
			add(fmt.Sprintf("tableVI/%s/%s", prof.Arch, name), func(s uint64, ws *engine.Workspace) TableVIRow {
				c := NewChannelW(ChannelConfig{Profile: prof, Algorithm: alg,
					Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: s}, ws)
				c.Run([]byte{1, 0}, true, samples, 1<<40)
				return TableVIRow{prof, name, perfctr.Collect(c.Hier, core.ReqSender)}
			})
		}
		// sender & gcc: the sender shares the core with a benign noisy
		// workload instead of a receiver.
		add(fmt.Sprintf("tableVI/%s/sender&gcc", prof.Arch), func(s uint64, ws *engine.Workspace) TableVIRow {
			c := NewChannelW(ChannelConfig{Profile: prof, Algorithm: Alg1SharedMemory,
				Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: s,
				NoiseThreads: 1, NoisePeriod: 300}, ws)
			m := c.NewMachine()
			c.WarmSender()
			m.AddThread("sender", core.ReqSender, c.SenderProgram([]byte{1, 0}, true))
			m.AddThread("gcc", core.ReqOther, c.NoiseProgram())
			m.Run(3_000_000)
			return TableVIRow{prof, "sender & gcc", perfctr.Collect(c.Hier, core.ReqSender)}
		})
		// sender only.
		add(fmt.Sprintf("tableVI/%s/sender-only", prof.Arch), func(s uint64, ws *engine.Workspace) TableVIRow {
			c := NewChannelW(ChannelConfig{Profile: prof, Algorithm: Alg1SharedMemory,
				Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: s}, ws)
			m := c.NewMachine()
			c.WarmSender()
			m.AddThread("sender", core.ReqSender, c.SenderProgram([]byte{1, 0}, true))
			m.Run(3_000_000)
			return TableVIRow{prof, "sender only", perfctr.Collect(c.Hier, core.ReqSender)}
		})
	}
	return engine.Values(engine.Run(jobs, opt))
}

// RenderTableVI formats Table VI.
func RenderTableVI(rows []TableVIRow) string {
	var b strings.Builder
	b.WriteString("CPU                     Channel        sender miss rates\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s  %-13s  %s\n", r.Profile.Name, r.Channel, r.Report)
	}
	return b.String()
}

// TableVIIRow is one Spectre-attack miss-rate row.
type TableVIIRow struct {
	Profile    Profile
	Disclosure spectre.Disclosure
	Report     perfctr.Report
	Accuracy   float64
}

// TableVII runs the Spectre attack with each disclosure primitive and
// collects combined victim+attacker miss rates — one job per
// (profile, disclosure) cell.
func TableVII(secret []byte, seed uint64, opt RunOptions) []TableVIIRow {
	if len(secret) == 0 {
		secret = EncodeString("MAGIC")
	}
	var jobs []engine.Job[TableVIIRow]
	for _, prof := range []Profile{SandyBridge(), Skylake()} {
		for _, d := range []spectre.Disclosure{spectre.FRMem, spectre.FRL1, spectre.LRUAlg1, spectre.LRUAlg2} {
			prof, d := prof, d
			jobs = append(jobs, engine.Job[TableVIIRow]{
				Name: fmt.Sprintf("tableVII/%s/%v", prof.Arch, d),
				Seed: seed,
				Run: func(s uint64) TableVIIRow {
					cfg := SpectreConfig{Profile: prof, Disclosure: d, Seed: s}
					if d == spectre.FRMem {
						cfg.Window = 300 // F+R needs the probe fill to complete
					}
					a := NewSpectre(cfg, secret)
					acc := a.Accuracy()
					return TableVIIRow{
						Profile: prof, Disclosure: d,
						Report:   perfctr.CollectCombined(a.Hier, spectre.ReqVictim, spectre.ReqAttacker),
						Accuracy: acc,
					}
				},
			})
		}
	}
	return engine.Values(engine.Run(jobs, opt))
}

// RenderTableVII formats Table VII (plus the recovery accuracy, which the
// paper reports in prose).
func RenderTableVII(rows []TableVIIRow) string {
	var b strings.Builder
	b.WriteString("CPU                     Disclosure     miss rates                              recovered\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s  %-13s  %s  %5.1f%%\n",
			r.Profile.Name, r.Disclosure, r.Report, 100*r.Accuracy)
	}
	return b.String()
}
