package lruleak

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/perfctr"
	"repro/internal/sched"
	"repro/internal/spectre"
)

// This file contains one driver per table of the paper's evaluation.

// TableI reproduces the eviction-probability grid (trials 0 = the paper's
// 10,000).
func TableI(trials int, seed uint64) []core.TableICell {
	return core.RunTableI(trials, seed)
}

// RenderTableI formats the grid like the paper's Table I.
func RenderTableI(cells []core.TableICell) string {
	var b strings.Builder
	b.WriteString("Init cond.  Iter  Policy      Seq  P(line 0 evicted)\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-10s  %4d  %-10s  %d    %5.1f%%\n",
			c.Init, c.Iteration, c.Policy, c.Seq, 100*c.Prob)
	}
	return b.String()
}

// TableIIRow is one microarchitecture's cache latencies.
type TableIIRow struct {
	Profile Profile
	L1D, L2 int
}

// TableII returns the latency table.
func TableII() []TableIIRow {
	var rows []TableIIRow
	for _, p := range Profiles() {
		rows = append(rows, TableIIRow{Profile: p, L1D: p.L1Latency, L2: p.L2Latency})
	}
	return rows
}

// RenderTableII formats Table II.
func RenderTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("Microarchitecture        L1D    L2 (cycles)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s  %4d  %4d\n", r.Profile.Arch, r.L1D, r.L2)
	}
	return b.String()
}

// TableIVCell is one transmission-rate summary entry.
type TableIVCell struct {
	Profile   Profile
	Mode      sched.Mode
	Algorithm core.Algorithm
	// RateBps is the effective transmission rate; 0 marks the
	// combinations the paper found unusable (Algorithm 2 time-sliced).
	RateBps float64
	// ErrorRate at that operating point (SMT entries only).
	ErrorRate float64
}

// TableIV measures the transmission-rate summary. The SMT entries run the
// error-rate experiment at the paper's operating point (Tr=600/Ts=6000 on
// Intel, Tr=1000/Ts=1e5 on AMD); the time-sliced entries use the
// measurements-per-decision estimate of Sections V-B and VI-B.
func TableIV(msgBits, repeats int, seed uint64) []TableIVCell {
	if msgBits == 0 {
		msgBits = 64
	}
	if repeats == 0 {
		repeats = 4
	}
	var out []TableIVCell
	for _, prof := range []Profile{SandyBridge(), Zen()} {
		ts, tr := uint64(6000), uint64(600)
		same := false
		if prof.Arch == "Zen" {
			ts, tr = 100_000, 1000
			same = true // §VI-B: Algorithm 1 needs one address space on Zen
		}
		for _, alg := range []core.Algorithm{Alg1SharedMemory, Alg2NoSharedMemory} {
			s := NewChannel(ChannelConfig{
				Profile: prof, Algorithm: alg, Mode: sched.SMT,
				Tr: tr, Ts: ts, Seed: seed,
				SameAddressSpace: same && alg == Alg1SharedMemory,
			})
			res := s.MeasureErrorRate(msgBits, repeats)
			out = append(out, TableIVCell{
				Profile: prof, Mode: sched.SMT, Algorithm: alg,
				RateBps: res.RateBps, ErrorRate: res.ErrorRate,
			})
		}
		// Time-sliced Algorithm 1: rate ~ 1 bit per K measurements of
		// period Tr (K=10 on Intel, 100 on AMD per the paper).
		k := 10.0
		if prof.Arch == "Zen" {
			k = 100
		}
		trSlice := 100_000_000.0
		out = append(out, TableIVCell{
			Profile: prof, Mode: sched.TimeSliced, Algorithm: Alg1SharedMemory,
			RateBps: prof.Freq * 1e9 / (trSlice * k),
		})
		// Algorithm 2 time-sliced: no signal observed (paper: "–").
		out = append(out, TableIVCell{
			Profile: prof, Mode: sched.TimeSliced, Algorithm: Alg2NoSharedMemory,
		})
	}
	return out
}

// RenderTableIV formats the summary like Table IV.
func RenderTableIV(cells []TableIVCell) string {
	var b strings.Builder
	b.WriteString("CPU                     Sharing          Algorithm                         Rate\n")
	for _, c := range cells {
		rate := "-"
		if c.RateBps >= 1000 {
			rate = fmt.Sprintf("%.0f Kbps", c.RateBps/1000)
		} else if c.RateBps > 0 {
			rate = fmt.Sprintf("%.1f bps", c.RateBps)
		}
		fmt.Fprintf(&b, "%-22s  %-15s  %-32s  %s\n", c.Profile.Name, c.Mode, c.Algorithm, rate)
	}
	return b.String()
}

// TableVRow is one encoding-latency comparison row.
type TableVRow struct {
	Profile Profile
	FRMem   int
	FRL1    int
	LRU     int
}

// TableV measures the sender's per-bit encoding cost for each channel.
func TableV(seed uint64) []TableVRow {
	var rows []TableVRow
	for _, prof := range Profiles() {
		mk := func() *Channel {
			return NewChannel(ChannelConfig{Profile: prof, Algorithm: Alg1SharedMemory, Seed: seed})
		}
		frMem := baseline.New(baseline.FlushReloadMem, mk()).EncodeCostOne()
		frL1 := baseline.New(baseline.FlushReloadL1, mk()).EncodeCostOne()
		lru := mk().EncodeCost()
		rows = append(rows, TableVRow{Profile: prof, FRMem: frMem, FRL1: frL1, LRU: lru})
	}
	return rows
}

// RenderTableV formats Table V.
func RenderTableV(rows []TableVRow) string {
	var b strings.Builder
	b.WriteString("CPU                     F+R(mem)  F+R(L1)  L1 LRU (cycles)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s  %8d  %7d  %6d\n", r.Profile.Name, r.FRMem, r.FRL1, r.LRU)
	}
	return b.String()
}

// TableVIRow is one sender-process miss-rate row.
type TableVIRow struct {
	Profile Profile
	Channel string
	Report  perfctr.Report
}

// TableVI runs each channel and collects the sender's per-level miss rates,
// plus the baselines of a sender sharing with a benign workload and a
// sender alone.
func TableVI(samples int, seed uint64) []TableVIRow {
	if samples == 0 {
		samples = 200
	}
	var rows []TableVIRow
	for _, prof := range []Profile{SandyBridge(), Skylake()} {
		// F+R variants and the LRU channels.
		for _, kind := range []baseline.Kind{baseline.FlushReloadMem, baseline.FlushReloadL1} {
			s := NewChannel(ChannelConfig{Profile: prof, Algorithm: Alg1SharedMemory,
				Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: seed})
			ch := baseline.New(kind, s)
			ch.Run([]byte{1, 0}, true, samples, 1<<40)
			rows = append(rows, TableVIRow{prof, kind.String(), perfctr.Collect(s.Hier, core.ReqSender)})
		}
		for _, alg := range []core.Algorithm{Alg1SharedMemory, Alg2NoSharedMemory} {
			s := NewChannel(ChannelConfig{Profile: prof, Algorithm: alg,
				Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: seed})
			s.Run([]byte{1, 0}, true, samples, 1<<40)
			name := "L1 LRU Alg.1"
			if alg == Alg2NoSharedMemory {
				name = "L1 LRU Alg.2"
			}
			rows = append(rows, TableVIRow{prof, name, perfctr.Collect(s.Hier, core.ReqSender)})
		}
		// sender & gcc: the sender shares the core with a benign noisy
		// workload instead of a receiver.
		s := NewChannel(ChannelConfig{Profile: prof, Algorithm: Alg1SharedMemory,
			Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: seed,
			NoiseThreads: 1, NoisePeriod: 300})
		m := s.NewMachine()
		s.WarmSender()
		m.AddThread("sender", core.ReqSender, s.SenderProgram([]byte{1, 0}, true))
		m.AddThread("gcc", core.ReqOther, s.NoiseProgram())
		m.Run(3_000_000)
		rows = append(rows, TableVIRow{prof, "sender & gcc", perfctr.Collect(s.Hier, core.ReqSender)})
		// sender only.
		s2 := NewChannel(ChannelConfig{Profile: prof, Algorithm: Alg1SharedMemory,
			Mode: sched.SMT, Tr: 600, Ts: 6000, Seed: seed})
		m2 := s2.NewMachine()
		s2.WarmSender()
		m2.AddThread("sender", core.ReqSender, s2.SenderProgram([]byte{1, 0}, true))
		m2.Run(3_000_000)
		rows = append(rows, TableVIRow{prof, "sender only", perfctr.Collect(s2.Hier, core.ReqSender)})
	}
	return rows
}

// RenderTableVI formats Table VI.
func RenderTableVI(rows []TableVIRow) string {
	var b strings.Builder
	b.WriteString("CPU                     Channel        sender miss rates\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s  %-13s  %s\n", r.Profile.Name, r.Channel, r.Report)
	}
	return b.String()
}

// TableVIIRow is one Spectre-attack miss-rate row.
type TableVIIRow struct {
	Profile    Profile
	Disclosure spectre.Disclosure
	Report     perfctr.Report
	Accuracy   float64
}

// TableVII runs the Spectre attack with each disclosure primitive and
// collects combined victim+attacker miss rates.
func TableVII(secret []byte, seed uint64) []TableVIIRow {
	if len(secret) == 0 {
		secret = EncodeString("MAGIC")
	}
	var rows []TableVIIRow
	for _, prof := range []Profile{SandyBridge(), Skylake()} {
		for _, d := range []spectre.Disclosure{spectre.FRMem, spectre.FRL1, spectre.LRUAlg1, spectre.LRUAlg2} {
			cfg := SpectreConfig{Profile: prof, Disclosure: d, Seed: seed}
			if d == spectre.FRMem {
				cfg.Window = 300 // F+R needs the probe fill to complete
			}
			a := NewSpectre(cfg, secret)
			acc := a.Accuracy()
			rows = append(rows, TableVIIRow{
				Profile: prof, Disclosure: d,
				Report:   perfctr.CollectCombined(a.Hier, spectre.ReqVictim, spectre.ReqAttacker),
				Accuracy: acc,
			})
		}
	}
	return rows
}

// RenderTableVII formats Table VII (plus the recovery accuracy, which the
// paper reports in prose).
func RenderTableVII(rows []TableVIIRow) string {
	var b strings.Builder
	b.WriteString("CPU                     Disclosure     miss rates                              recovered\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s  %-13s  %s  %5.1f%%\n",
			r.Profile.Name, r.Disclosure, r.Report, 100*r.Accuracy)
	}
	return b.String()
}
