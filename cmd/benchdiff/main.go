// Command benchdiff compares a fresh BENCH_JSON run against a committed
// baseline (BENCH_BASELINE.json) and reports per-benchmark deltas.
//
// Two kinds of numbers live in those files and they are judged very
// differently:
//
//   - ns/op is machine- and load-dependent. Deltas are REPORTED (so the
//     performance trajectory is visible in CI artifacts) but never fail
//     the comparison.
//
//   - The metrics map holds experiment-quality results — error rates,
//     recovery accuracy, separable fractions, eviction probabilities —
//     which are produced by a seeded, deterministic simulator and must
//     not drift at all between runs with the same trial count. Any
//     quality metric moving by more than -tol is a behaviour change in
//     the simulator and FAILS the comparison (exit code 1).
//
// Machine-dependent metrics ("workers", "gomaxprocs") and benchmarks
// whose trial counts differ between the two files (the metrics are
// per-iteration averages over different seed sets) are compared
// informationally only.
//
// Wall-time ratios are never judged by default (see above), but CI can
// opt specific benches into a minimum-speedup gate with -require:
//
//	-require name:ratio            base-ns(name) / cur-ns(name)  >= ratio
//	-require name:reference:ratio  cur-ns(reference) / cur-ns(name) >= ratio
//
// The two-name form compares siblings inside the current run — immune
// to the runner's absolute speed — and is how the parallel-speedup and
// batch-vs-per-access pins are expressed. A required bench missing
// from the current run is a warning, not a failure: single-core
// runners legitimately skip the workers=all variants.
//
// Usage:
//
//	BENCH_JSON=bench.json go test -run xxx -bench . -benchtime 1x .
//	go run ./cmd/benchdiff -baseline BENCH_BASELINE.json -current bench.json -out report.md
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// requirement is one -require pin: the named bench must be at least
// ratio times faster than its reference (a sibling in the current run
// when reference is set, its own baseline entry otherwise).
type requirement struct {
	name      string
	reference string // empty: compare against the baseline file
	ratio     float64
}

func parseRequire(s string) (requirement, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return requirement{}, fmt.Errorf("want name:ratio or name:reference:ratio, got %q", s)
	}
	ratio, err := strconv.ParseFloat(parts[len(parts)-1], 64)
	if err != nil || ratio <= 0 {
		return requirement{}, fmt.Errorf("bad ratio in %q", s)
	}
	req := requirement{name: parts[0], ratio: ratio}
	if len(parts) == 3 {
		req.reference = parts[1]
	}
	return req, nil
}

// checkRequirements evaluates the -require pins against the loaded
// records, appending failure lines to failures and returning the
// report section text (empty when no pins were given).
func checkRequirements(reqs []requirement, base, cur map[string]record, failures *[]string) string {
	if len(reqs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("\n## Required speedups\n\n")
	for _, req := range reqs {
		c, ok := cur[req.name]
		if !ok || c.NsPerOp <= 0 {
			fmt.Fprintf(&b, "- %s: not in this run (skipped — partial or single-core invocation)\n", req.name)
			continue
		}
		var refNs float64
		var refDesc string
		if req.reference != "" {
			r, ok := cur[req.reference]
			if !ok || r.NsPerOp <= 0 {
				fmt.Fprintf(&b, "- %s: reference %s not in this run (skipped)\n", req.name, req.reference)
				continue
			}
			refNs, refDesc = r.NsPerOp, req.reference
		} else {
			o, ok := base[req.name]
			if !ok || o.NsPerOp <= 0 {
				fmt.Fprintf(&b, "- %s: not in the baseline (skipped)\n", req.name)
				continue
			}
			refNs, refDesc = o.NsPerOp, "baseline"
		}
		got := refNs / c.NsPerOp
		if got >= req.ratio {
			fmt.Fprintf(&b, "- %s: %.2fx vs %s (required %.2fx) ok\n", req.name, got, refDesc, req.ratio)
		} else {
			fmt.Fprintf(&b, "- **%s: %.2fx vs %s, required %.2fx** FAIL\n", req.name, got, refDesc, req.ratio)
			*failures = append(*failures, fmt.Sprintf(
				"%s: %.2fx vs %s below required %.2fx", req.name, got, refDesc, req.ratio))
		}
	}
	return b.String()
}

// record mirrors the BENCH_JSON line schema written by emitBench.
type record struct {
	Name    string             `json:"name"`
	Trials  int                `json:"trials"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// informational metrics describe the machine, not the experiment; they
// may differ between runners without meaning anything.
var informational = map[string]bool{
	"workers":    true,
	"gomaxprocs": true,
}

func load(path string) (map[string]record, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	recs := map[string]record{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, nil, fmt.Errorf("%s:%d: %v", path, ln, err)
		}
		if _, dup := recs[r.Name]; !dup {
			order = append(order, r.Name)
		}
		recs[r.Name] = r
	}
	return recs, order, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline BENCH_JSON file")
	currentPath := flag.String("current", "", "freshly generated BENCH_JSON file (required)")
	outPath := flag.String("out", "", "write the report here instead of stdout")
	tol := flag.Float64("tol", 1e-9, "maximum allowed absolute drift of a quality metric")
	var requires []requirement
	flag.Func("require", "minimum speedup pin, name:ratio or name:reference:ratio (repeatable)", func(s string) error {
		req, err := parseRequire(s)
		if err != nil {
			return err
		}
		requires = append(requires, req)
		return nil
	})
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	base, _, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, curOrder, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# benchdiff: %s vs %s\n\n", *currentPath, *baselinePath)
	fmt.Fprintf(&b, "| benchmark | ns/op (base → cur) | speedup | quality |\n")
	fmt.Fprintf(&b, "|---|---|---|---|\n")

	var failures []string
	for _, name := range curOrder {
		c := cur[name]
		o, inBase := base[name]
		if !inBase {
			fmt.Fprintf(&b, "| %s | new: %.3gms | — | new benchmark |\n", name, c.NsPerOp/1e6)
			continue
		}
		speed := "—"
		if c.NsPerOp > 0 {
			speed = fmt.Sprintf("%.2fx", o.NsPerOp/c.NsPerOp)
		}
		quality := describeQuality(name, o, c, *tol, &failures)
		fmt.Fprintf(&b, "| %s | %.3gms → %.3gms | %s | %s |\n",
			name, o.NsPerOp/1e6, c.NsPerOp/1e6, speed, quality)
	}

	// Baseline benchmarks absent from the current run: normal for
	// partial bench invocations, so informational only.
	var missing []string
	for name := range base {
		if _, ok := cur[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		fmt.Fprintf(&b, "\n%d baseline benchmark(s) not in this run: %s\n",
			len(missing), strings.Join(missing, ", "))
	}

	b.WriteString(checkRequirements(requires, base, cur, &failures))

	if len(failures) > 0 {
		fmt.Fprintf(&b, "\n## FAILURES (fatal)\n\n")
		for _, f := range failures {
			fmt.Fprintf(&b, "- %s\n", f)
		}
	} else {
		fmt.Fprintf(&b, "\nAll experiment-quality metrics match the baseline.\n")
	}

	report := b.String()
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}
	fmt.Print(report)
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// describeQuality compares one benchmark's metrics and appends fatal
// drifts to failures. It returns the cell text for the report table.
func describeQuality(name string, o, c record, tol float64, failures *[]string) string {
	if len(o.Metrics) == 0 && len(c.Metrics) == 0 {
		return "no metrics"
	}
	if o.Trials != c.Trials {
		return fmt.Sprintf("trials differ (%d vs %d): metrics informational", o.Trials, c.Trials)
	}
	keys := map[string]bool{}
	for k := range o.Metrics {
		keys[k] = true
	}
	for k := range c.Metrics {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var notes []string
	ok := 0
	for _, k := range sorted {
		ov, inO := o.Metrics[k]
		cv, inC := c.Metrics[k]
		switch {
		case !inO:
			notes = append(notes, fmt.Sprintf("%s new (%.6g)", k, cv))
		case !inC && !informational[k]:
			// A quality metric vanishing from a benchmark that DID run
			// is the same class of regression as a drifted value: the
			// simulator (or the bench) stopped producing the result.
			notes = append(notes, fmt.Sprintf("**%s gone (was %.6g)**", k, ov))
			*failures = append(*failures,
				fmt.Sprintf("%s: quality metric %s disappeared (baseline had %.6g)", name, k, ov))
		case !inC:
			notes = append(notes, fmt.Sprintf("%s gone (was %.6g, info)", k, ov))
		case informational[k]:
			if ov != cv {
				notes = append(notes, fmt.Sprintf("%s %g → %g (info)", k, ov, cv))
			} else {
				ok++
			}
		case math.Abs(ov-cv) > tol:
			notes = append(notes, fmt.Sprintf("**%s %.6g → %.6g**", k, ov, cv))
			*failures = append(*failures,
				fmt.Sprintf("%s: %s drifted %.6g → %.6g (|Δ|=%.3g > tol %.3g)",
					name, k, ov, cv, math.Abs(ov-cv), tol))
		default:
			ok++
		}
	}
	if len(notes) == 0 {
		return fmt.Sprintf("%d metric(s) match", ok)
	}
	return strings.Join(notes, "; ")
}
