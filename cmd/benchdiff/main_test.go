package main

import (
	"strings"
	"testing"
)

func TestParseRequire(t *testing.T) {
	cases := []struct {
		in   string
		want requirement
		err  bool
	}{
		{in: "BenchmarkX:2.0", want: requirement{name: "BenchmarkX", ratio: 2.0}},
		{in: "BenchmarkY/workers=all:BenchmarkY/workers=1:2.0",
			want: requirement{name: "BenchmarkY/workers=all", reference: "BenchmarkY/workers=1", ratio: 2.0}},
		{in: "BenchmarkX", err: true},
		{in: "BenchmarkX:zero", err: true},
		{in: "BenchmarkX:-1", err: true},
		{in: "a:b:c:2.0", err: true},
	}
	for _, c := range cases {
		got, err := parseRequire(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseRequire(%q): want error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRequire(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseRequire(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestCheckRequirements(t *testing.T) {
	base := map[string]record{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100},
	}
	cur := map[string]record{
		"BenchmarkA":             {Name: "BenchmarkA", NsPerOp: 40},
		"BenchmarkB/mode=fast":   {Name: "BenchmarkB/mode=fast", NsPerOp: 10},
		"BenchmarkB/mode=slow":   {Name: "BenchmarkB/mode=slow", NsPerOp: 50},
		"BenchmarkB/mode=barely": {Name: "BenchmarkB/mode=barely", NsPerOp: 30},
		"BenchmarkNotInBaseline": {Name: "BenchmarkNotInBaseline", NsPerOp: 5},
	}

	t.Run("baseline ratio passes", func(t *testing.T) {
		var failures []string
		out := checkRequirements([]requirement{{name: "BenchmarkA", ratio: 2.0}}, base, cur, &failures)
		if len(failures) != 0 {
			t.Fatalf("unexpected failures: %v", failures)
		}
		if !strings.Contains(out, "2.50x vs baseline") {
			t.Fatalf("report missing measured ratio:\n%s", out)
		}
	})

	t.Run("sibling ratio passes and fails", func(t *testing.T) {
		var failures []string
		checkRequirements([]requirement{
			{name: "BenchmarkB/mode=fast", reference: "BenchmarkB/mode=slow", ratio: 2.0},
			{name: "BenchmarkB/mode=barely", reference: "BenchmarkB/mode=slow", ratio: 2.0},
		}, base, cur, &failures)
		if len(failures) != 1 {
			t.Fatalf("want exactly the below-ratio pin to fail, got %v", failures)
		}
		if !strings.Contains(failures[0], "BenchmarkB/mode=barely") {
			t.Fatalf("wrong failing pin: %v", failures)
		}
	})

	t.Run("missing bench warns instead of failing", func(t *testing.T) {
		var failures []string
		out := checkRequirements([]requirement{
			{name: "BenchmarkZ/workers=all", reference: "BenchmarkZ/workers=1", ratio: 2.0},
			{name: "BenchmarkB/mode=fast", reference: "BenchmarkGone", ratio: 2.0},
			{name: "BenchmarkNotInBaseline", ratio: 2.0},
		}, base, cur, &failures)
		if len(failures) != 0 {
			t.Fatalf("missing benches must not fail the gate: %v", failures)
		}
		for _, want := range []string{"not in this run", "reference BenchmarkGone not in this run", "not in the baseline"} {
			if !strings.Contains(out, want) {
				t.Fatalf("report missing %q:\n%s", want, out)
			}
		}
	})
}
