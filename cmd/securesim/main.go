// Command securesim regenerates the Section IX defence evaluations:
// Figure 9 (replacement-policy performance with FIFO/Random in the L1D),
// Figure 11 (the PL cache leaking through LRU state and the fixed design),
// and the random-fill / DAWG analyses discussed in Section IX-B.
//
// Usage:
//
//	securesim -fig 9  [-instructions 2000000]
//	securesim -fig 11 [-samples 300]
//	securesim -design randomfill|dawg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/secure"
)

func main() {
	var (
		fig          = flag.Int("fig", 0, "figure to regenerate: 9 or 11")
		design       = flag.String("design", "", "secure design analysis: randomfill or dawg")
		instructions = flag.Int("instructions", 2_000_000, "instructions per Figure 9 benchmark")
		samples      = flag.Int("samples", 300, "receiver samples for Figure 11")
		seed         = flag.Uint64("seed", 2020, "experiment seed")
	)
	flag.Parse()

	switch {
	case *fig == 9:
		fmt.Print(lruleak.RenderFigure9(lruleak.Figure9(*instructions, *seed)))
	case *fig == 11:
		fmt.Print(lruleak.Figure11(*samples, *seed).Render())
	case *design == "randomfill":
		acc := secure.RandomFillLeakExperiment(1000, 120, *seed)
		fmt.Printf("random-fill cache, Algorithm 1 style hit-encoded leak:\n")
		fmt.Printf("  receiver decodes the sender's bit correctly %.1f%% of the time (chance = 50%%)\n", 100*acc)
		fmt.Printf("  -> the LRU channel SURVIVES random fill (Section IX-B)\n")
	case *design == "dawg":
		acc := secure.DAWGLeakExperiment(4000, *seed)
		fmt.Printf("DAWG-style way + LRU-state partitioning:\n")
		fmt.Printf("  receiver decodes the sender's bit correctly %.1f%% of the time (chance = 50%%)\n", 100*acc)
		fmt.Printf("  -> partitioning the replacement state CLOSES the channel\n")
	default:
		fmt.Fprintln(os.Stderr, "securesim: pass -fig 9, -fig 11, or -design randomfill|dawg")
		os.Exit(2)
	}
}
