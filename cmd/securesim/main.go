// Command securesim regenerates the Section IX defence evaluations:
// Figure 9 (replacement-policy performance with FIFO/Random in the L1D),
// Figure 11 (the PL cache leaking through LRU state and the fixed design),
// and the random-fill / DAWG analyses discussed in Section IX-B. All
// evaluations execute through the experiment engine; -design both runs
// the two secure-design analyses as parallel jobs.
//
// Usage:
//
//	securesim -fig 9  [-instructions 2000000]
//	securesim -fig 11 [-samples 300]
//	securesim -design randomfill|dawg|both
//
// All forms accept -workers N (0 = all cores) and -progress.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/engine"
	"repro/internal/secure"
)

func main() {
	var (
		fig          = flag.Int("fig", 0, "figure to regenerate: 9 or 11")
		design       = flag.String("design", "", "secure design analysis: randomfill, dawg or both")
		instructions = flag.Int("instructions", 2_000_000, "instructions per Figure 9 benchmark")
		samples      = flag.Int("samples", 300, "receiver samples for Figure 11")
		seed         = flag.Uint64("seed", 2020, "experiment seed")
		workers      = flag.Int("workers", 0, "parallel experiment workers (0 = all cores)")
		progress     = flag.Bool("progress", false, "report per-cell progress on stderr")
	)
	flag.Parse()

	opt := lruleak.RunOptions{Workers: *workers}
	if *progress {
		opt.Progress = lruleak.ProgressTo(os.Stderr)
	}

	renderRandomFill := func(s uint64) string {
		acc := secure.RandomFillLeakExperiment(1000, 120, s)
		return fmt.Sprintf("random-fill cache, Algorithm 1 style hit-encoded leak:\n"+
			"  receiver decodes the sender's bit correctly %.1f%% of the time (chance = 50%%)\n"+
			"  -> the LRU channel SURVIVES random fill (Section IX-B)\n", 100*acc)
	}
	renderDAWG := func(s uint64) string {
		acc := secure.DAWGLeakExperiment(4000, s)
		return fmt.Sprintf("DAWG-style way + LRU-state partitioning:\n"+
			"  receiver decodes the sender's bit correctly %.1f%% of the time (chance = 50%%)\n"+
			"  -> partitioning the replacement state CLOSES the channel\n", 100*acc)
	}

	var jobs []engine.Job[string]
	switch {
	case *fig == 9:
		fmt.Print(lruleak.RenderFigure9(lruleak.Figure9(*instructions, *seed, opt)))
		return
	case *fig == 11:
		fmt.Print(lruleak.Figure11(*samples, *seed, opt).Render())
		return
	case *design == "randomfill":
		jobs = []engine.Job[string]{{Name: "design/randomfill", Seed: *seed, Run: renderRandomFill}}
	case *design == "dawg":
		jobs = []engine.Job[string]{{Name: "design/dawg", Seed: *seed, Run: renderDAWG}}
	case *design == "both":
		jobs = []engine.Job[string]{
			{Name: "design/randomfill", Seed: *seed, Run: renderRandomFill},
			{Name: "design/dawg", Seed: *seed, Run: renderDAWG},
		}
	default:
		fmt.Fprintln(os.Stderr, "securesim: pass -fig 9, -fig 11, or -design randomfill|dawg|both")
		os.Exit(2)
	}
	for _, out := range engine.Values(engine.Run(jobs, opt)) {
		fmt.Print(out)
	}
}
