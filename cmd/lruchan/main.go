// Command lruchan regenerates the LRU-channel figures of the paper:
// latency histograms (Figures 3, 13), error-rate sweeps (Figure 4),
// receiver traces (Figures 5, 7, 14), and the time-sliced percent-of-ones
// sweeps (Figures 6, 8, 15). Multi-cell figures fan out over the
// experiment engine's worker pool; -workers 1 forces a serial run, which
// produces byte-identical output.
//
// Usage:
//
//	lruchan -fig 3  [-cpu sandy|skylake|zen] [-seed N]
//	lruchan -fig 4  [-alg 1|2] [-bits 128] [-repeats 30]
//	lruchan -fig 5  [-alg 1|2] [-samples 200]
//	lruchan -fig 6  [-samples 100]
//	lruchan -fig 7  [-alg 1|2] [-samples 1400]
//	lruchan -fig 8 | -fig 13 | -fig 14 | -fig 15
//	lruchan -sweep [-bits N] [-repeats N]   (multi-profile × multi-policy grid)
//	lruchan -stream [-payload 256] [-noise 3]   (streaming transport demo: codec comparison)
//	lruchan -stream -sweep [-payload N] [-noise N]   (transport capacity grid: codec × lanes × noise)
//
// All forms accept -workers N (0 = all cores) and -progress.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/transport"
)

func main() {
	var (
		fig      = flag.Int("fig", 5, "figure number to regenerate (3,4,5,6,7,8,13,14,15)")
		sweep    = flag.Bool("sweep", false, "run the generalized profile × policy × (Tr,Ts) sweep instead of one figure")
		cpu      = flag.String("cpu", "sandy", "CPU profile: sandy, skylake or zen")
		alg      = flag.Int("alg", 1, "channel protocol: 1 (shared memory) or 2 (no shared memory)")
		samples  = flag.Int("samples", 200, "receiver samples for trace figures")
		bits     = flag.Int("bits", 64, "message bits per trial (Figure 4; the paper uses 128)")
		repeats  = flag.Int("repeats", 4, "message repetitions (Figure 4; the paper uses 30)")
		seed     = flag.Uint64("seed", 2020, "experiment seed")
		workers  = flag.Int("workers", 0, "parallel experiment workers (0 = all cores)")
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
		stream   = flag.Bool("stream", false, "run the streaming-transport demo (with -sweep: the capacity grid)")
		payload  = flag.Int("payload", 256, "stream demo payload bytes")
		noise    = flag.Int("noise", 3, "stream demo noise threads")
	)
	flag.Parse()

	opt := lruleak.RunOptions{Workers: *workers}
	if *progress {
		opt.Progress = lruleak.ProgressTo(os.Stderr)
	}

	prof, err := lruleak.ProfileByName(*cpu)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	algorithm := lruleak.Alg1SharedMemory
	if *alg == 2 {
		algorithm = lruleak.Alg2NoSharedMemory
	}

	if *stream {
		// The transport's operating point is tuned for Algorithm 1 on
		// the default profile; reject every figure-only flag it would
		// otherwise silently ignore.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "alg", "cpu", "fig", "samples", "bits", "repeats":
				fmt.Fprintf(os.Stderr, "lruchan: -%s is not supported with -stream (the transport runs Algorithm 1 on the default profile)\n", f.Name)
				os.Exit(2)
			}
		})
		if max := transport.MaxPayloadBytes(0); *payload < 1 || *payload > max {
			fmt.Fprintf(os.Stderr, "lruchan: -payload must be in [1, %d], got %d\n", max, *payload)
			os.Exit(2)
		}
		if *noise < 0 {
			fmt.Fprintf(os.Stderr, "lruchan: -noise must be >= 0, got %d\n", *noise)
			os.Exit(2)
		}
		if *sweep {
			spec := lruleak.StreamSpec{PayloadBytes: *payload}
			// An explicit -noise narrows the grid's noise dimension to
			// {0, noise} ({0} alone for -noise 0); unset, the spec
			// default applies.
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "noise" {
					spec.NoiseThreads = []int{0}
					if *noise != 0 {
						spec.NoiseThreads = append(spec.NoiseThreads, *noise)
					}
				}
			})
			fmt.Print(lruleak.RenderStreamSweep(lruleak.StreamSweep(spec, *seed, opt)))
			return
		}
		fmt.Print(lruleak.RenderStreamDemo(lruleak.StreamDemo(*payload, *noise, *seed, opt)))
		return
	}

	if *sweep {
		spec := lruleak.SweepSpec{
			Policies: []lruleak.ReplacementKind{lruleak.TreePLRU, lruleak.BitPLRU, lruleak.FIFO, lruleak.Random},
			Points:   []lruleak.TrTs{{Tr: 600, Ts: 6000}, {Tr: 1000, Ts: 12000}},
			MsgBits:  *bits, Repeats: *repeats,
		}
		// An explicit -cpu or -alg narrows the grid to that slice;
		// unset, the sweep covers all profiles and both algorithms.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "cpu":
				spec.Profiles = []lruleak.Profile{prof}
			case "alg":
				spec.Algorithms = append(spec.Algorithms, algorithm)
			}
		})
		cells := lruleak.Sweep(spec, *seed, opt)
		fmt.Print(lruleak.RenderSweep(cells))
		return
	}

	switch *fig {
	case 3:
		fmt.Print(lruleak.Figure3(prof, 5000, *seed, opt).Render())
	case 4:
		pts := lruleak.Figure4(prof, algorithm, *bits, *repeats, *seed, opt)
		fmt.Print(lruleak.RenderFigure4(pts))
	case 5:
		fmt.Print(lruleak.Figure5(prof, algorithm, *samples, *seed, opt).Render())
	case 6:
		pts := lruleak.Figure6(prof, nil, *samples, *seed, opt)
		fmt.Print(lruleak.RenderFigure6(pts))
	case 7:
		fmt.Print(lruleak.Figure7(algorithm, *samples, *seed, opt).Render())
	case 8:
		pts := lruleak.Figure6(lruleak.Zen(), nil, *samples, *seed, opt)
		fmt.Print(lruleak.RenderFigure6(pts))
	case 13:
		fmt.Print(lruleak.Figure13(prof, 5000, *seed, opt).Render())
	case 14:
		fmt.Print(lruleak.Figure5(lruleak.Skylake(), algorithm, *samples, *seed, opt).Render())
	case 15:
		pts := lruleak.Figure6(lruleak.Skylake(), nil, *samples, *seed, opt)
		fmt.Print(lruleak.RenderFigure6(pts))
	default:
		fmt.Fprintf(os.Stderr, "lruchan: no driver for figure %d\n", *fig)
		os.Exit(2)
	}
}
