// Command lrutables regenerates the tables of the paper's evaluation:
// Table I (PLRU eviction probabilities), Table II (cache latencies),
// Table IV (transmission rates), Table V (encoding latencies), Table VI
// (sender miss rates) and Table VII (Spectre attack miss rates). Each
// table's cells run in parallel over the experiment engine; -workers 1
// forces a serial run with byte-identical output.
//
// Usage:
//
//	lrutables -table 1 [-trials 10000]
//	lrutables -table 2|4|5|6|7 [-seed N]
//	lrutables -leakage
//	lrutables -all
//
// -leakage renders the automated policy leakage study instead of a
// paper table: the reachable replacement-state spaces per policy and
// the ranked bits-per-observation leaderboard across the defense
// matrix (internal/leakage).
//
// All forms accept -workers N (0 = all cores) and -progress.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		table    = flag.Int("table", 1, "table number to regenerate (1,2,4,5,6,7)")
		all      = flag.Bool("all", false, "regenerate every table")
		leak     = flag.Bool("leakage", false, "render the policy leakage leaderboard instead of a table")
		trials   = flag.Int("trials", 10000, "trials per Table I cell")
		seed     = flag.Uint64("seed", 2020, "experiment seed")
		secret   = flag.String("secret", "MAGIC", "secret string for Table VII")
		workers  = flag.Int("workers", 0, "parallel experiment workers (0 = all cores)")
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
	)
	flag.Parse()

	opt := lruleak.RunOptions{Workers: *workers}
	if *progress {
		opt.Progress = lruleak.ProgressTo(os.Stderr)
	}

	render := func(n int) (string, bool) {
		switch n {
		case 1:
			return lruleak.RenderTableI(lruleak.TableI(*trials, *seed, opt)), true
		case 2:
			return lruleak.RenderTableII(lruleak.TableII()), true
		case 4:
			return lruleak.RenderTableIV(lruleak.TableIV(64, 4, *seed, opt)), true
		case 5:
			return lruleak.RenderTableV(lruleak.TableV(*seed, opt)), true
		case 6:
			return lruleak.RenderTableVI(lruleak.TableVI(200, *seed, opt)), true
		case 7:
			return lruleak.RenderTableVII(lruleak.TableVII(lruleak.EncodeString(*secret), *seed, opt)), true
		}
		return "", false
	}

	if *leak {
		fmt.Print(lruleak.RenderLeakage(lruleak.LeakageSweep(lruleak.LeakageSpec{}, *seed, opt)))
		return
	}
	if *all {
		for _, n := range []int{1, 2, 4, 5, 6, 7} {
			out, _ := render(n)
			fmt.Printf("=== Table %d ===\n%s\n", n, out)
		}
		return
	}
	out, ok := render(*table)
	if !ok {
		fmt.Fprintf(os.Stderr, "lrutables: no driver for table %d\n", *table)
		os.Exit(2)
	}
	fmt.Print(out)
}
