// Command lrutables regenerates the tables of the paper's evaluation:
// Table I (PLRU eviction probabilities), Table II (cache latencies),
// Table IV (transmission rates), Table V (encoding latencies), Table VI
// (sender miss rates) and Table VII (Spectre attack miss rates).
//
// Usage:
//
//	lrutables -table 1 [-trials 10000]
//	lrutables -table 2|4|5|6|7 [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		table  = flag.Int("table", 1, "table number to regenerate (1,2,4,5,6,7)")
		trials = flag.Int("trials", 10000, "trials per Table I cell")
		seed   = flag.Uint64("seed", 2020, "experiment seed")
		secret = flag.String("secret", "MAGIC", "secret string for Table VII")
	)
	flag.Parse()

	switch *table {
	case 1:
		fmt.Print(lruleak.RenderTableI(lruleak.TableI(*trials, *seed)))
	case 2:
		fmt.Print(lruleak.RenderTableII(lruleak.TableII()))
	case 4:
		fmt.Print(lruleak.RenderTableIV(lruleak.TableIV(64, 4, *seed)))
	case 5:
		fmt.Print(lruleak.RenderTableV(lruleak.TableV(*seed)))
	case 6:
		fmt.Print(lruleak.RenderTableVI(lruleak.TableVI(200, *seed)))
	case 7:
		fmt.Print(lruleak.RenderTableVII(lruleak.TableVII(lruleak.EncodeString(*secret), *seed)))
	default:
		fmt.Fprintf(os.Stderr, "lrutables: no driver for table %d\n", *table)
		os.Exit(2)
	}
}
