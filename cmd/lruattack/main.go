// Command lruattack runs the secret-recovery side-channel attack: a
// secret-dependent victim (AES-style T-table lookup, square-and-multiply
// exponentiation, or a generic table dispatch) leaks its key through the
// L1 replacement state to a prime/probe template attacker, optionally
// through one of the Section IX secure-cache defenses, and a
// performance-counter monitor judges both processes while the attack
// runs.
//
// Usage:
//
//	lruattack [-victim ttable|sqmul|lookup] [-defense none|plcache|plcache-fix|randomfill|dawg]
//	          [-policy lru|treeplru|bitplru] [-cpu sandy|skylake|zen]
//	          [-probe full|d=1] [-schedule sync|smt|tslice]
//	          [-secret HEX] [-symbols N] [-trials N] [-profrounds N] [-seed N]
//	lruattack -sweep [-symbols N] [-trials N] [-reps N]   (full victim × policy × defense matrix)
//	lruattack -overhead [-maxvotes N]   (votes needed per schedule: the price of scheduling jitter)
//	lruattack -roc                      (detection threshold sweep: per-defense ROC curves and AUC)
//
// -probe selects the per-window probe strategy: the canonical full
// prime, or the d-split partial prime of the paper's Figure 11 d=1
// operating point (which sees the original PL cache's locked-line
// replacement-state update — the leak the canonical prime erases).
// -schedule runs victim and attacker as SMT hyper-threads or
// time-sliced processes instead of the synchronous baseline, so probe
// windows carry real scheduling jitter.
//
// -trials is the per-symbol vote count (observation windows fused into
// one guess); -reps is how many independent repetitions each -sweep
// cell aggregates (mean ± stddev).
//
// All forms accept -workers N (0 = all cores) and -progress (which only
// affect the multi-cell modes: -sweep, -overhead and -roc).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/replacement"
	"repro/internal/victim"
)

func main() {
	var (
		victimName = flag.String("victim", "ttable", "victim program: ttable, sqmul or lookup")
		defense    = flag.String("defense", "none", "cache defense: none, plcache, plcache-fix, randomfill or dawg")
		policy     = flag.String("policy", "treeplru", "L1 replacement policy: lru, treeplru or bitplru")
		cpu        = flag.String("cpu", "sandy", "CPU profile: sandy, skylake or zen")
		probeName  = flag.String("probe", "full", "probe strategy: full (canonical prime) or d=N (partial prime, Figure 11 d-split)")
		schedName  = flag.String("schedule", "sync", "execution schedule: sync, smt or tslice")
		secretFlag = flag.String("secret", "", "secret to plant (digits in the victim's symbol base); empty = demo secret")
		symbols    = flag.Int("symbols", 16, "demo-secret length in symbols (when -secret is empty)")
		trials     = flag.Int("trials", 4, "observation windows (votes) fused per secret symbol")
		reps       = flag.Int("reps", 1, "independent repetitions per -sweep cell (reported as mean ± stddev)")
		profrounds = flag.Int("profrounds", 8, "profiling windows per symbol value")
		seed       = flag.Uint64("seed", 2020, "experiment seed")
		sweep      = flag.Bool("sweep", false, "run the victim × policy × defense evaluation matrix instead")
		overhead   = flag.Bool("overhead", false, "measure the votes each schedule needs for full recovery")
		maxvotes   = flag.Int("maxvotes", 10, "vote-count search ceiling for -overhead")
		roc        = flag.Bool("roc", false, "sweep detection thresholds into per-defense ROC curves")
		workers    = flag.Int("workers", 0, "parallel experiment workers for multi-cell modes (0 = all cores)")
		progress   = flag.Bool("progress", false, "report per-cell progress on stderr (multi-cell modes)")
	)
	flag.Parse()

	opt := lruleak.RunOptions{Workers: *workers}
	if *progress {
		opt.Progress = lruleak.ProgressTo(os.Stderr)
	}

	probe, err := lruleak.AttackProbeByName(*probeName)
	fail(err)
	schedule, err := lruleak.AttackScheduleByName(*schedName)
	fail(err)

	if *sweep {
		cells := lruleak.AttackSweep(lruleak.AttackSpec{
			Probes: []lruleak.AttackProbe{probe}, Schedules: []lruleak.AttackSchedule{schedule},
			Symbols: *symbols, Votes: *trials, ProfilingRounds: *profrounds,
			Trials: *reps,
		}, *seed, opt)
		fmt.Print(lruleak.RenderAttackSweep(cells))
		return
	}
	if *overhead {
		pol, err := replacement.ParseKind(*policy)
		fail(err)
		rows := lruleak.VoteOverheadStudy(*victimName, pol, *symbols, *maxvotes, *seed, opt)
		fmt.Printf("Vote overhead — victim=%s policy=%v (scheduled windows drift against the victim's events)\n",
			*victimName, pol)
		fmt.Print(lruleak.RenderVoteOverhead(rows))
		return
	}
	if *roc {
		res := lruleak.ROCSweep(lruleak.ROCSpec{}, *seed, opt)
		fmt.Print(lruleak.RenderROC(res))
		return
	}

	prof, err := lruleak.ProfileByName(*cpu)
	fail(err)
	pol, err := replacement.ParseKind(*policy)
	fail(err)
	def, err := lruleak.AttackDefenseByName(*defense)
	fail(err)
	v, err := lruleak.NewVictim(*victimName, prof.L1Sets)
	fail(err)

	var secret []int
	if *secretFlag == "" {
		secret = victim.DemoSecret(v, *symbols, *seed)
	} else {
		secret, err = victim.ParseSecret(v, *secretFlag)
		fail(err)
	}

	res := lruleak.RunAttack(lruleak.AttackConfig{
		Victim: v, Defense: def, Policy: pol, Profile: prof,
		Probe: probe, Schedule: schedule,
		Votes: *trials, ProfilingRounds: *profrounds, Seed: *seed,
	}, secret)

	fmt.Printf("Secret recovery through L1 LRU state — victim=%s defense=%v policy=%v cpu=%s probe=%v schedule=%v\n",
		v.Name(), def, pol, prof.Arch, probe, schedule)
	fmt.Printf("windows: %d (profiling + %d votes/symbol)\n\n", res.Windows, *trials)
	fmt.Printf("planted   : %s\n", victim.FormatSecret(v, res.Secret))
	fmt.Printf("recovered : %s\n", victim.FormatSecret(v, res.Recovered))
	fmt.Printf("recovery rate %.2f, mean guesses-to-first-correct %.1f (chance %.1f), mean confidence %.2f\n",
		res.RecoveryRate, res.MeanGuesses, lruleak.AttackChanceGuesses(v),
		res.ConfidenceSummary().Mean)
	if m := res.RenderConfusion(); m != "" {
		fmt.Printf("\nconfusion matrix:\n%s", m)
	}
	fmt.Printf("\ndetection while the attack ran:\n")
	fmt.Printf("  attacker: %s\n", res.AttackerExplain)
	fmt.Printf("  victim:   %s\n", res.VictimExplain)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lruattack:", err)
		os.Exit(2)
	}
}
