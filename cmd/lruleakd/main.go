// Command lruleakd is the long-running leakage-analysis job server: the
// repository's experiment grids (attack sweeps, transport stream
// sweeps, detection ROC sweeps) behind an HTTP/JSON API instead of a
// one-shot CLI.
//
// Usage:
//
//	lruleakd [-addr host:port] [-workers N] [-runners N] [-queue N]
//	         [-store-dir dir] [-max-job-wall dur]
//	         [-debug-addr host:port] [-quiet]
//
// The server validates every submitted spec up front (a bad spec is a
// 400 with field-level messages), deduplicates identical (spec, seed)
// submissions through a content-addressed result cache, shards cells
// across one persistent engine worker pool shared by all jobs, streams
// per-cell progress, and renders reports with the same renderers the
// CLIs use — so a server-side run is byte-identical to the equivalent
// CLI run (and to the goldens under testdata/).
//
// API (all JSON unless noted):
//
//	POST   /v1/jobs                submit {"kind":"attack|stream|roc","seed":N,"<kind>":{...}}
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           job status
//	GET    /v1/jobs/{id}/report    rendered report, text/plain (?wait=1 blocks until terminal)
//	GET    /v1/jobs/{id}/events    per-cell progress, NDJSON (?wait=1 follows)
//	POST   /v1/jobs/{id}/cancel    cancel (also DELETE /v1/jobs/{id})
//	GET    /healthz                liveness
//	GET    /metrics                runtime telemetry, Prometheus text exposition
//
// The /metrics body carries the job lifecycle counters
// (service_jobs_total{state=...}), dedup cache accounting, HTTP request
// counts and latency histograms by route, and the engine pool's
// per-cell instrumentation (engine_cell_wall_seconds,
// engine_cells_*_total, queue/busy gauges).
//
// With -store-dir set, completed reports persist to a crash-safe
// content-addressed store on disk: a restart on the same directory
// answers repeat submissions from the persisted report without
// re-executing a single engine cell (status carries "restored":true,
// /metrics counts service_store_hits_total). Corrupt or torn entries
// found at startup are quarantined into <dir>/corrupt/, never blocking
// boot; persistent write failure degrades the server to memory-only
// mode (logged, counted, surfaced in /healthz) instead of failing jobs.
//
// -max-job-wall caps (and defaults) every job's wall-clock budget; a
// spec may set its own tighter "deadline_ms". A job that outruns its
// budget stops at the next cell boundary in the distinct
// deadline_exceeded state (report endpoint answers 504).
//
// With -debug-addr set, a SECOND listener (bind it to loopback) serves
// net/http/pprof under /debug/pprof/ and mirrors /metrics, keeping
// profiling endpoints off the public API port.
//
// Example:
//
//	lruleakd -addr 127.0.0.1:7090 &
//	curl -s -X POST 127.0.0.1:7090/v1/jobs -d '{"kind":"attack","seed":7,
//	  "attack":{"victims":["ttable"],"policies":["treeplru"],"symbols":6}}'
//	curl -s '127.0.0.1:7090/v1/jobs/<id>/report?wait=1'
//	curl -s 127.0.0.1:7090/metrics | grep engine_cell_wall_seconds
//
// SIGINT/SIGTERM shut down cleanly: in-flight grids stop at their next
// cell boundary and the listener drains before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7090", "listen address")
		workers    = flag.Int("workers", 0, "persistent engine pool size shared by all jobs (0 = all cores)")
		runners    = flag.Int("runners", 0, "concurrent jobs (0 = pool size)")
		queue      = flag.Int("queue", 0, "accepted-job backlog before 503s (0 = 4096)")
		storeDir   = flag.String("store-dir", "", "durable result store directory; completed reports persist here and survive restarts (empty = memory-only)")
		maxJobWall = flag.Duration("max-job-wall", 0, "cap (and default) on every job's wall-clock budget, e.g. 2m (0 = unlimited)")
		debugAddr  = flag.String("debug-addr", "", "optional second listener serving /debug/pprof/ and /metrics (keep it on loopback)")
		quiet      = flag.Bool("quiet", false, "suppress the per-request access log")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lruleakd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "lruleakd: ", log.LstdFlags)
	cfg := service.Config{
		EngineWorkers: *workers,
		Runners:       *runners,
		QueueDepth:    *queue,
		MaxJobWall:    *maxJobWall,
		Logf:          logger.Printf,
	}
	if *storeDir != "" {
		// A store that cannot even be opened (mkdir failure, unreadable
		// directory) is a deployment error worth dying on; everything
		// after open is the degradation ladder's problem, not a crash.
		disk, err := store.OpenDisk(*storeDir, store.DiskOptions{Logf: logger.Printf})
		if err != nil {
			logger.Fatalf("store: open %s: %v", *storeDir, err)
		}
		st := disk.Scan()
		logger.Printf("store: %s (%d entries loaded, %d quarantined, %d temp files swept)",
			*storeDir, st.Loaded, st.Quarantined, st.TempsRemoved)
		cfg.Store = disk
	}
	svc := service.New(cfg)

	var handler http.Handler = svc
	if !*quiet {
		handler = accessLog(logger, svc)
	}
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers — without it one slow-loris client per worker
	// pins the listener forever.
	httpSrv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on http://%s (engine workers: %d)", *addr, svc.Workers())

	// The debug listener is separate so pprof never rides on the public
	// API port. An explicit mux (not http.DefaultServeMux) keeps its
	// surface to exactly what is registered here.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("GET /metrics", svc.Registry())
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("debug listener: %v", err)
			}
		}()
		logger.Printf("debug listener on http://%s (/debug/pprof/, /metrics)", *debugAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("%v: shutting down", sig)
	case err := <-errc:
		logger.Printf("serve: %v", err)
		svc.Close()
		os.Exit(1)
	}

	// Stop accepting requests, then cancel every job: running grids
	// abort at their next cell boundary, so shutdown is prompt even
	// mid-sweep.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(ctx)
	}
	svc.Close()
	logger.Printf("bye")
}

// accessLog wraps the service with a one-line-per-request log.
func accessLog(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logger.Printf("%s %s %.1fms", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1000)
	})
}
