// Command lruleakd is the long-running leakage-analysis job server: the
// repository's experiment grids (attack sweeps, transport stream
// sweeps, detection ROC sweeps) behind an HTTP/JSON API instead of a
// one-shot CLI.
//
// Usage:
//
//	lruleakd [-addr host:port] [-workers N] [-runners N] [-queue N] [-quiet]
//
// The server validates every submitted spec up front (a bad spec is a
// 400 with field-level messages), deduplicates identical (spec, seed)
// submissions through a content-addressed result cache, shards cells
// across one persistent engine worker pool shared by all jobs, streams
// per-cell progress, and renders reports with the same renderers the
// CLIs use — so a server-side run is byte-identical to the equivalent
// CLI run (and to the goldens under testdata/).
//
// API (all JSON unless noted):
//
//	POST   /v1/jobs                submit {"kind":"attack|stream|roc","seed":N,"<kind>":{...}}
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           job status
//	GET    /v1/jobs/{id}/report    rendered report, text/plain (?wait=1 blocks until terminal)
//	GET    /v1/jobs/{id}/events    per-cell progress, NDJSON (?wait=1 follows)
//	POST   /v1/jobs/{id}/cancel    cancel (also DELETE /v1/jobs/{id})
//	GET    /healthz                liveness
//
// Example:
//
//	lruleakd -addr 127.0.0.1:7090 &
//	curl -s -X POST 127.0.0.1:7090/v1/jobs -d '{"kind":"attack","seed":7,
//	  "attack":{"victims":["ttable"],"policies":["treeplru"],"symbols":6}}'
//	curl -s '127.0.0.1:7090/v1/jobs/<id>/report?wait=1'
//
// SIGINT/SIGTERM shut down cleanly: in-flight grids stop at their next
// cell boundary and the listener drains before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7090", "listen address")
		workers = flag.Int("workers", 0, "persistent engine pool size shared by all jobs (0 = all cores)")
		runners = flag.Int("runners", 0, "concurrent jobs (0 = pool size)")
		queue   = flag.Int("queue", 0, "accepted-job backlog before 503s (0 = 4096)")
		quiet   = flag.Bool("quiet", false, "suppress the per-request access log")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lruleakd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "lruleakd: ", log.LstdFlags)
	svc := service.New(service.Config{
		EngineWorkers: *workers,
		Runners:       *runners,
		QueueDepth:    *queue,
	})

	var handler http.Handler = svc
	if !*quiet {
		handler = accessLog(logger, svc)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on http://%s (engine workers: %d)", *addr, svc.Workers())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("%v: shutting down", sig)
	case err := <-errc:
		logger.Printf("serve: %v", err)
		svc.Close()
		os.Exit(1)
	}

	// Stop accepting requests, then cancel every job: running grids
	// abort at their next cell boundary, so shutdown is prompt even
	// mid-sweep.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	svc.Close()
	logger.Printf("bye")
}

// accessLog wraps the service with a one-line-per-request log.
func accessLog(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logger.Printf("%s %s %.1fms", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1000)
	})
}
