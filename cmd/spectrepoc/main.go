// Command spectrepoc demonstrates Section VIII end to end: a Spectre v1
// attack that exfiltrates a secret through the L1 LRU channel instead of
// Flush+Reload, including the randomized-round prefetcher defence of
// Appendix C. It prints the recovered secret byte by byte and compares the
// minimum speculation window each disclosure primitive needs. Byte
// recoveries run as parallel engine jobs, one independent attack instance
// per byte; -workers 1 forces a serial run with identical output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/engine"
	"repro/internal/spectre"
)

func main() {
	var (
		secretText = flag.String("secret", "THE MAGIC WORDS ARE SQUEAMISH OSSIFRAGE", "secret to plant and recover")
		disc       = flag.String("disclosure", "lru1", "disclosure primitive: lru1, lru2, frmem, frl1")
		rounds     = flag.Int("rounds", 8, "randomized measurement rounds per byte")
		prefetch   = flag.Bool("prefetcher", false, "enable the next-line prefetcher (Appendix C noise)")
		windows    = flag.Bool("windows", false, "also compare minimum speculation windows")
		seed       = flag.Uint64("seed", 2020, "experiment seed")
		workers    = flag.Int("workers", 0, "parallel experiment workers (0 = all cores)")
		progress   = flag.Bool("progress", false, "report per-byte progress on stderr")
	)
	flag.Parse()

	opt := lruleak.RunOptions{Workers: *workers}
	if *progress {
		opt.Progress = lruleak.ProgressTo(os.Stderr)
	}

	var d spectre.Disclosure
	switch *disc {
	case "lru1":
		d = lruleak.DiscLRUAlg1
	case "lru2":
		d = lruleak.DiscLRUAlg2
	case "frmem":
		d = lruleak.DiscFRMem
	case "frl1":
		d = lruleak.DiscFRL1
	default:
		fmt.Printf("unknown disclosure %q\n", *disc)
		return
	}

	cfg := lruleak.SpectreConfig{Disclosure: d, Rounds: *rounds, Seed: *seed}
	if *prefetch {
		cfg.Prefetcher = lruleak.PrefetchNextLine
		if cfg.Rounds < 16 {
			cfg.Rounds = 16 // Appendix C: more rounds to cancel the noise
		}
	}
	if d == lruleak.DiscFRMem {
		cfg.Window = 300
	}

	secret := lruleak.EncodeString(*secretText)

	fmt.Printf("victim secret:   %q (%d bytes over the %d-value alphabet)\n",
		*secretText, len(secret), lruleak.SpectreAlphabet)
	fmt.Printf("disclosure:      %v, window %d cycles, %d rounds, prefetcher %v\n",
		d, cfgWindow(cfg), cfg.Rounds, *prefetch)

	// One job per secret byte: each builds its own attack (victim,
	// hierarchy, predictor) from a split seed and leaks just that byte.
	seeds := engine.Seeds(*seed, len(secret))
	jobs := make([]engine.Job[byte], len(secret))
	for i := range secret {
		i := i
		jobs[i] = engine.Job[byte]{
			Name: fmt.Sprintf("spectre/byte=%d", i),
			Seed: seeds[i],
			Run: func(s uint64) byte {
				c := cfg
				c.Seed = s
				a := lruleak.NewSpectre(c, secret)
				b, _ := a.RecoverByteWarm(i)
				return b
			},
		}
	}
	got := engine.Values(engine.Run(jobs, opt))

	fmt.Print("recovering:      ")
	for _, b := range got {
		fmt.Printf("%s", lruleak.DecodeString([]byte{b}))
	}
	fmt.Println()

	correct := 0
	for i := range got {
		if got[i] == secret[i] {
			correct++
		}
	}
	fmt.Printf("recovered:       %q (%d/%d bytes correct)\n",
		lruleak.DecodeString(got), correct, len(secret))

	if *windows {
		fmt.Println("\nminimum speculation window per disclosure primitive:")
		probe := lruleak.EncodeString("AB")
		prims := []struct {
			name string
			d    spectre.Disclosure
		}{{"LRU Alg.1", lruleak.DiscLRUAlg1}, {"LRU Alg.2", lruleak.DiscLRUAlg2},
			{"F+R (L1)", lruleak.DiscFRL1}, {"F+R (mem)", lruleak.DiscFRMem}}
		wjobs := make([]engine.Job[int], len(prims))
		for i, c := range prims {
			c := c
			wjobs[i] = engine.Job[int]{
				Name: "window/" + c.name,
				Seed: *seed,
				Run: func(s uint64) int {
					return spectre.MinimumWindow(lruleak.SpectreConfig{Disclosure: c.d, Seed: s}, probe, 1.0, 4, 400)
				},
			}
		}
		ws := engine.Values(engine.Run(wjobs, opt))
		for i, c := range prims {
			fmt.Printf("  %-10s %4d cycles\n", c.name, ws[i])
		}
	}
}

func cfgWindow(cfg lruleak.SpectreConfig) int {
	if cfg.Window != 0 {
		return cfg.Window
	}
	return 30 // the package default
}
