// Command spectrepoc demonstrates Section VIII end to end: a Spectre v1
// attack that exfiltrates a secret through the L1 LRU channel instead of
// Flush+Reload, including the randomized-round prefetcher defence of
// Appendix C. It prints the recovered secret byte by byte and compares the
// minimum speculation window each disclosure primitive needs.
package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/spectre"
)

func main() {
	var (
		secretText = flag.String("secret", "THE MAGIC WORDS ARE SQUEAMISH OSSIFRAGE", "secret to plant and recover")
		disc       = flag.String("disclosure", "lru1", "disclosure primitive: lru1, lru2, frmem, frl1")
		rounds     = flag.Int("rounds", 8, "randomized measurement rounds per byte")
		prefetch   = flag.Bool("prefetcher", false, "enable the next-line prefetcher (Appendix C noise)")
		windows    = flag.Bool("windows", false, "also compare minimum speculation windows")
		seed       = flag.Uint64("seed", 2020, "experiment seed")
	)
	flag.Parse()

	var d spectre.Disclosure
	switch *disc {
	case "lru1":
		d = lruleak.DiscLRUAlg1
	case "lru2":
		d = lruleak.DiscLRUAlg2
	case "frmem":
		d = lruleak.DiscFRMem
	case "frl1":
		d = lruleak.DiscFRL1
	default:
		fmt.Printf("unknown disclosure %q\n", *disc)
		return
	}

	cfg := lruleak.SpectreConfig{Disclosure: d, Rounds: *rounds, Seed: *seed}
	if *prefetch {
		cfg.Prefetcher = lruleak.PrefetchNextLine
		if cfg.Rounds < 16 {
			cfg.Rounds = 16 // Appendix C: more rounds to cancel the noise
		}
	}
	if d == lruleak.DiscFRMem {
		cfg.Window = 300
	}

	secret := lruleak.EncodeString(*secretText)
	attack := lruleak.NewSpectre(cfg, secret)

	fmt.Printf("victim secret:   %q (%d bytes over the %d-value alphabet)\n",
		*secretText, len(secret), lruleak.SpectreAlphabet)
	fmt.Printf("disclosure:      %v, window %d cycles, %d rounds, prefetcher %v\n",
		d, cfgWindow(cfg), cfg.Rounds, *prefetch)

	fmt.Print("recovering:      ")
	got := make([]byte, len(secret))
	for i := range secret {
		b, conf := attack.RecoverByte(i)
		got[i] = b
		fmt.Printf("%s", lruleak.DecodeString([]byte{b}))
		_ = conf
	}
	fmt.Println()

	correct := 0
	for i := range got {
		if got[i] == secret[i] {
			correct++
		}
	}
	fmt.Printf("recovered:       %q (%d/%d bytes correct)\n",
		lruleak.DecodeString(got), correct, len(secret))

	if *windows {
		fmt.Println("\nminimum speculation window per disclosure primitive:")
		probe := lruleak.EncodeString("AB")
		for _, c := range []struct {
			name string
			d    spectre.Disclosure
		}{{"LRU Alg.1", lruleak.DiscLRUAlg1}, {"LRU Alg.2", lruleak.DiscLRUAlg2},
			{"F+R (L1)", lruleak.DiscFRL1}, {"F+R (mem)", lruleak.DiscFRMem}} {
			w := spectre.MinimumWindow(lruleak.SpectreConfig{Disclosure: c.d, Seed: *seed}, probe, 1.0, 4, 400)
			fmt.Printf("  %-10s %4d cycles\n", c.name, w)
		}
	}
}

func cfgWindow(cfg lruleak.SpectreConfig) int {
	if cfg.Window != 0 {
		return cfg.Window
	}
	return 30 // the package default
}
