package lruleak

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/perf"
	"repro/internal/replacement"
	"repro/internal/sched"
	"repro/internal/secure"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/internal/workload"
)

// This file contains one driver per figure of the paper's evaluation. Each
// returns structured data plus a Render method producing the textual
// equivalent of the plot. bench_test.go and cmd/lruchan call these.
//
// Every driver declares its evaluation grid as engine jobs — one job per
// independent experiment cell (one simulated machine) — and hands the grid
// to engine.Run. Results come back in submission order, so the output is
// identical at any worker count.

// HistogramPair is Figures 3 and 13: latency distributions of a probed
// access that hit or missed L1.
type HistogramPair struct {
	Title     string
	Hit, Miss *stats.Histogram
	// Separable reports whether an Otsu threshold classifies at least
	// 95% of samples correctly.
	Separable bool
	Threshold float64
}

// Render draws both histograms.
func (h *HistogramPair) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n--- L1 hit ---\n%s--- L1 miss ---\n%s", h.Title, h.Hit.Render(40), h.Miss.Render(40))
	fmt.Fprintf(&b, "threshold %.1f cycles, single-shot separable: %v\n", h.Threshold, h.Separable)
	return b.String()
}

// histogramChunk is one job's worth of hit/miss latency samples.
type histogramChunk struct {
	hits, misses []float64
}

// histogramChunkSize is the number of samples one histogram job
// collects. The chunk count depends only on the requested sample count,
// never on the worker count, so the merged histogram is deterministic.
const histogramChunkSize = 256

// collectHistogramChunk samples hit and miss latencies on a fresh
// channel with either the pointer chase (Figure 3) or the naive single
// access (Figure 13).
func collectHistogramChunk(prof Profile, pointerChase bool, samples int, seed uint64) histogramChunk {
	s := NewChannel(ChannelConfig{Profile: prof, Seed: seed})
	target := s.ReceiverLines[0]
	ch := histogramChunk{
		hits:   make([]float64, 0, samples),
		misses: make([]float64, 0, samples),
	}
	measure := func() float64 {
		s.Chaser.WarmUp()
		if pointerChase {
			return s.Chaser.Measure(target).Observed
		}
		return s.Chaser.MeasureSingle(target).Observed
	}
	for i := 0; i < samples; i++ {
		s.Hier.Load(target, core.ReqReceiver)
		ch.hits = append(ch.hits, measure())
		s.Hier.L1().Flush(target.PhysLine) // leave the L2 copy: an L1 miss, L2 hit
		ch.misses = append(ch.misses, measure())
		s.Hier.Flush(target.PhysLine)
	}
	return ch
}

// measureHistogramPair fans the sampling out over chunk trials (each
// with its own channel and split seed) and merges the distributions.
func measureHistogramPair(prof Profile, pointerChase bool, samples int, seed uint64, opt RunOptions) *HistogramPair {
	chunks := (samples + histogramChunkSize - 1) / histogramChunkSize
	if chunks < 1 {
		chunks = 1
	}
	rs := engine.RunTrials(fmt.Sprintf("hist/%s", prof.Arch), seed, chunks,
		func(trial int, s uint64) histogramChunk {
			n := samples - trial*histogramChunkSize
			if n > histogramChunkSize {
				n = histogramChunkSize
			}
			return collectHistogramChunk(prof, pointerChase, n, s)
		}, opt)
	var hits, misses []float64
	for _, ch := range engine.Values(rs) {
		hits = append(hits, ch.hits...)
		misses = append(misses, ch.misses...)
	}

	all := append(append(make([]float64, 0, len(hits)+len(misses)), hits...), misses...)
	lo, hi := stats.Percentile(all, 0)-5, stats.Percentile(all, 100)+5
	pair := &HistogramPair{
		Hit:  stats.NewHistogram(lo, hi, 1),
		Miss: stats.NewHistogram(lo, hi, 1),
	}
	pair.Hit.AddAll(hits)
	pair.Miss.AddAll(misses)
	pair.Threshold = stats.OtsuThreshold(all)
	pair.Separable = separationError(hits, misses, pair.Threshold) < 0.05
	return pair
}

// separationError is the fraction of samples an explicit threshold
// misclassifies, given that everything in hits should fall at or below
// it and everything in misses above it.
func separationError(hits, misses []float64, threshold float64) float64 {
	if len(hits)+len(misses) == 0 {
		return 0
	}
	wrong := 0
	for _, v := range hits {
		if core.ClassifyBit(v, threshold, true) == 0 {
			wrong++
		}
	}
	for _, v := range misses {
		if core.ClassifyBit(v, threshold, true) == 1 {
			wrong++
		}
	}
	return float64(wrong) / float64(len(hits)+len(misses))
}

// Figure3 measures the pointer-chase latency distributions (7 L1 hits plus
// the 8th element hitting or missing).
func Figure3(prof Profile, samples int, seed uint64, opt RunOptions) *HistogramPair {
	p := measureHistogramPair(prof, true, samples, seed, opt)
	p.Title = fmt.Sprintf("Figure 3 — pointer-chase probe on %s", prof.Name)
	return p
}

// Figure13 measures the naive single-access rdtscp distributions of
// Appendix A, which must NOT separate.
func Figure13(prof Profile, samples int, seed uint64, opt RunOptions) *HistogramPair {
	p := measureHistogramPair(prof, false, samples, seed, opt)
	p.Title = fmt.Sprintf("Figure 13 — single-access rdtscp on %s", prof.Name)
	return p
}

// Figure4Point is one (Tr, Ts, d) cell of Figure 4.
type Figure4Point struct {
	Tr, Ts    uint64
	D         int
	RateKbps  float64
	ErrorRate float64
}

// Figure4 sweeps the transmission-rate/error-rate trade-off for one
// algorithm, over the paper's grid: Tr ∈ {600,1000,3000}, Ts ∈
// {4500,6000,12000,30000}, d ∈ 1..8. msgBits/repeats control the per-cell
// measurement cost (the paper uses 128-bit strings ≥ 30 times; the defaults
// here are lighter so the sweep completes in seconds — pass the paper's
// values for a full run).
func Figure4(prof Profile, alg core.Algorithm, msgBits, repeats int, seed uint64, opt RunOptions) []Figure4Point {
	if msgBits == 0 {
		msgBits = 64
	}
	if repeats == 0 {
		repeats = 4
	}
	var jobs []engine.Job[Figure4Point]
	for _, tr := range []uint64{600, 1000, 3000} {
		for _, ts := range []uint64{4500, 6000, 12000, 30000} {
			for d := 1; d <= prof.L1Ways; d++ {
				tr, ts, d := tr, ts, d
				jobs = append(jobs, engine.Job[Figure4Point]{
					Name: fmt.Sprintf("fig4/tr=%d/ts=%d/d=%d", tr, ts, d),
					Seed: seed + ts + tr + uint64(d),
					RunW: func(s uint64, ws *engine.Workspace) Figure4Point {
						c := NewChannelW(ChannelConfig{
							Profile: prof, Algorithm: alg, Mode: sched.SMT,
							Tr: tr, Ts: ts, D: d, Seed: s,
						}, ws)
						res := c.MeasureErrorRate(msgBits, repeats)
						return Figure4Point{
							Tr: tr, Ts: ts, D: d,
							RateKbps:  res.RateBps / 1000,
							ErrorRate: res.ErrorRate,
						}
					},
				})
			}
		}
	}
	return engine.Values(engine.Run(jobs, opt))
}

// RenderFigure4 formats the sweep grouped by Tr, like the paper's panels.
func RenderFigure4(points []Figure4Point) string {
	var b strings.Builder
	var lastTr uint64
	for _, p := range points {
		if p.Tr != lastTr {
			fmt.Fprintf(&b, "Tr=%d cycles:\n", p.Tr)
			lastTr = p.Tr
		}
		fmt.Fprintf(&b, "  Ts=%-6d d=%d  %7.1f Kbps  err %5.1f%%\n",
			p.Ts, p.D, p.RateKbps, 100*p.ErrorRate)
	}
	return b.String()
}

// FigureTrace is Figures 5, 7 and 14: a receiver latency trace while the
// sender alternates 0 and 1.
type FigureTrace struct {
	Title    string
	Trace    *Trace
	Smoothed []float64 // moving average (Figure 7's light blue line)
	HitIsOne bool
}

// Render prints the observation sequence with the threshold line.
func (f *FigureTrace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (threshold %.1f)\n", f.Title, f.Trace.Threshold)
	for i, o := range f.Trace.Observations {
		mark := " "
		if o.Latency > f.Trace.Threshold {
			mark = "*"
		}
		fmt.Fprintf(&b, "%4d %6.1f %s", i, o.Latency, mark)
		if f.Smoothed != nil {
			fmt.Fprintf(&b, " avg %6.1f", f.Smoothed[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// runTraceJob executes a single-cell trace driver through the engine so
// even one-machine figures share the execution layer (progress, wall
// accounting, worker override).
func runTraceJob(name string, seed uint64, opt RunOptions, run func(seed uint64) *FigureTrace) *FigureTrace {
	rs := engine.Run([]engine.Job[*FigureTrace]{{Name: name, Seed: seed, Run: run}}, opt)
	return rs[0].Value
}

// Figure5 records the hyper-threaded alternating-bit traces on an Intel
// profile: Algorithm 1 with d=8 (top) and Algorithm 2 with d=4 (bottom),
// Tr=600, Ts=6000. Figure 14 is the same on Skylake.
func Figure5(prof Profile, alg core.Algorithm, samples int, seed uint64, opt RunOptions) *FigureTrace {
	d := prof.L1Ways
	if alg == Alg2NoSharedMemory {
		d = prof.L1Ways / 2
	}
	return runTraceJob(fmt.Sprintf("fig5/%s", prof.Arch), seed, opt, func(s uint64) *FigureTrace {
		c := NewChannel(ChannelConfig{
			Profile: prof, Algorithm: alg, Mode: sched.SMT,
			Tr: 600, Ts: 6000, D: d, Seed: s,
		})
		tr := c.Run([]byte{0, 1}, true, samples, 1<<40)
		return &FigureTrace{
			Title: fmt.Sprintf("Figure 5 — %v on %s, Tr=600 Ts=6000 d=%d",
				alg, prof.Name, d),
			Trace:    tr,
			HitIsOne: c.HitMeansOne(),
		}
	})
}

// Figure7 records the AMD traces with their moving average: Algorithm 1 as
// two threads of one process (top) and Algorithm 2 across processes
// (bottom), Tr=1000, Ts=1e5.
func Figure7(alg core.Algorithm, samples int, seed uint64, opt RunOptions) *FigureTrace {
	prof := uarch.Zen()
	cfg := ChannelConfig{
		Profile: prof, Algorithm: alg, Mode: sched.SMT,
		Tr: 1000, Ts: 100_000, Seed: seed,
	}
	if alg == Alg1SharedMemory {
		cfg.SameAddressSpace = true // the pthreads arrangement of §VI-B
		cfg.D = prof.L1Ways
	} else {
		cfg.D = prof.L1Ways / 2
	}
	return runTraceJob("fig7/zen", seed, opt, func(s uint64) *FigureTrace {
		cfg := cfg
		cfg.Seed = s
		c := NewChannel(cfg)
		tr := c.Run([]byte{0, 1}, true, samples, 1<<41)
		// The paper smooths over roughly one bit period of samples.
		window := int(cfg.Ts / cfg.Tr)
		return &FigureTrace{
			Title: fmt.Sprintf("Figure 7 — %v on %s, Tr=1000 Ts=1e5 (moving average window %d)",
				alg, prof.Name, window),
			Trace:    tr,
			Smoothed: stats.MovingAverage(tr.Latencies(), window),
			HitIsOne: c.HitMeansOne(),
		}
	})
}

// Figure6Point is one cell of Figures 6, 8 and 15: the fraction of 1s the
// receiver decodes in time-sliced sharing.
type Figure6Point struct {
	Tr           uint64
	D            int
	SendingBit   byte
	FractionOnes float64
}

// Figure6 sweeps the time-sliced experiment: the sender constantly sends 0
// or 1 with Algorithm 1; the receiver samples every Tr. Figure 8 is the
// same on the Zen profile, Figure 15 on Skylake.
func Figure6(prof Profile, trs []uint64, measurements int, seed uint64, opt RunOptions) []Figure6Point {
	if len(trs) == 0 {
		trs = []uint64{2_000_000, 10_000_000, 50_000_000, 200_000_000}
	}
	if measurements == 0 {
		measurements = 100
	}
	var jobs []engine.Job[Figure6Point]
	for _, bit := range []byte{0, 1} {
		for _, tr := range trs {
			for d := 1; d <= prof.L1Ways; d++ {
				bit, tr, d := bit, tr, d
				jobs = append(jobs, engine.Job[Figure6Point]{
					Name: fmt.Sprintf("fig6/bit=%d/tr=%d/d=%d", bit, tr, d),
					Seed: seed + tr + uint64(d) + uint64(bit)<<32,
					RunW: func(s uint64, ws *engine.Workspace) Figure6Point {
						c := NewChannelW(ChannelConfig{
							Profile: prof, Algorithm: Alg1SharedMemory,
							Mode: sched.TimeSliced,
							Tr:   tr, Ts: 1 << 62, D: d,
							Seed: s,
						}, ws)
						return Figure6Point{
							Tr: tr, D: d, SendingBit: bit,
							FractionOnes: c.MeasureFractionOnes(bit, measurements),
						}
					},
				})
			}
		}
	}
	return engine.Values(engine.Run(jobs, opt))
}

// RenderFigure6 formats the sweep as two panels (sending 0, sending 1).
func RenderFigure6(points []Figure6Point) string {
	var b strings.Builder
	var lastBit byte = 255
	for _, p := range points {
		if p.SendingBit != lastBit {
			fmt.Fprintf(&b, "Sending %d:\n", p.SendingBit)
			lastBit = p.SendingBit
		}
		fmt.Fprintf(&b, "  Tr=%-11d d=%d  %5.1f%% ones\n", p.Tr, p.D, 100*p.FractionOnes)
	}
	return b.String()
}

// Figure9Row is one benchmark's bars in Figure 9.
type Figure9Row struct {
	Benchmark string
	MissRate  map[string]float64 // policy name -> L1D miss rate
	NormCPI   map[string]float64 // policy name -> CPI / CPI(Tree-PLRU)
}

// Figure9 runs the replacement-policy performance study: one engine job
// per (policy, benchmark) pair, reassembled into the suite × policy
// matrix that the normalization step needs in full.
func Figure9(instructions int, seed uint64, opt RunOptions) []Figure9Row {
	policies := []replacement.Kind{replacement.TreePLRU, replacement.FIFO, replacement.Random}
	if seed == 0 {
		seed = 2020 // match perf.Config's default so Suite seeding is unchanged
	}
	cfg := perf.Config{Instructions: instructions, Seed: seed}
	nBench := workload.SuiteSize()

	var jobs []engine.Job[perf.Result]
	for _, pol := range policies {
		for bi := 0; bi < nBench; bi++ {
			pol, bi := pol, bi
			jobs = append(jobs, engine.Job[perf.Result]{
				Name: fmt.Sprintf("fig9/%v/bench=%d", pol, bi),
				Seed: seed,
				Run: func(uint64) perf.Result {
					c := cfg
					c.Policy = pol
					// Each job needs its own generator instance;
					// construction is deterministic in the seed.
					return perf.RunBenchmark(workload.SuiteBenchmark(bi, cfg.Seed), c)
				},
			})
		}
	}
	flat := engine.Values(engine.Run(jobs, opt))
	results := make([][]perf.Result, len(policies))
	for p := range policies {
		results[p] = flat[p*nBench : (p+1)*nBench]
	}

	norm := perf.Normalized(results, true)
	var rows []Figure9Row
	for b := range results[0] {
		row := Figure9Row{
			Benchmark: results[0][b].Benchmark,
			MissRate:  map[string]float64{},
			NormCPI:   map[string]float64{},
		}
		for p, pol := range policies {
			row.MissRate[pol.String()] = results[p][b].L1DMissRate
			row.NormCPI[pol.String()] = norm[p][b]
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFigure9 formats the study as the two panels of the figure.
func RenderFigure9(rows []Figure9Row) string {
	var b strings.Builder
	b.WriteString("Benchmark     L1D miss%% (PLRU / FIFO / Random)    CPI vs PLRU (FIFO / Random)\n")
	var fifoCPI, randCPI []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s  %6.2f / %6.2f / %6.2f              %.3f / %.3f\n",
			r.Benchmark,
			100*r.MissRate["Tree-PLRU"], 100*r.MissRate["FIFO"], 100*r.MissRate["Random"],
			r.NormCPI["FIFO"], r.NormCPI["Random"])
		fifoCPI = append(fifoCPI, r.NormCPI["FIFO"])
		randCPI = append(randCPI, r.NormCPI["Random"])
	}
	fmt.Fprintf(&b, "%-12s  geometric mean CPI overhead:        %.3f / %.3f\n",
		"(geomean)", perf.GeoMean(fifoCPI), perf.GeoMean(randCPI))
	return b.String()
}

// Figure11Result packages the PL-cache evaluation.
type Figure11Result struct {
	Original secure.PLExperimentResult
	Fixed    secure.PLExperimentResult
}

// Figure11 attacks the original and the repaired PL cache with Algorithm 2
// (sender's line locked); the two designs run as parallel jobs.
func Figure11(samples int, seed uint64, opt RunOptions) Figure11Result {
	jobs := []engine.Job[secure.PLExperimentResult]{
		{Name: "fig11/original", Seed: seed, Run: func(s uint64) secure.PLExperimentResult {
			return secure.RunPLCacheExperiment(false, samples, s)
		}},
		{Name: "fig11/fixed", Seed: seed, Run: func(s uint64) secure.PLExperimentResult {
			return secure.RunPLCacheExperiment(true, samples, s)
		}},
	}
	rs := engine.Run(jobs, opt)
	return Figure11Result{Original: rs[0].Value, Fixed: rs[1].Value}
}

// Render summarizes both runs.
func (f Figure11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — PL cache under the LRU attack (Algorithm 2, line N locked)\n")
	fmt.Fprintf(&b, "original design: mean latency sending 0 = %.1f, sending 1 = %.1f (separation %.1f cycles) -> leak %v\n",
		f.Original.MeanZero, f.Original.MeanOne, f.Original.Separation,
		secure.PLLeakDetectable(f.Original))
	fmt.Fprintf(&b, "fixed design:    mean latency sending 0 = %.1f, sending 1 = %.1f (separation %.1f cycles) -> always hit %v\n",
		f.Fixed.MeanZero, f.Fixed.MeanOne, f.Fixed.Separation, f.Fixed.AlwaysHit)
	return b.String()
}
