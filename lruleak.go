// Package lruleak is a Go reproduction of "Leaking Information Through
// Cache LRU States" (Wenjie Xiong and Jakub Szefer, HPCA 2020): timing
// channels that leak through the replacement state of set-associative
// caches rather than through cache line presence.
//
// Because the attack's raw material — 4-versus-12-cycle load latencies —
// cannot be observed from Go (the runtime and GC destroy cycle-level
// timing), the package drives the paper's actual protocols on a
// deterministic cycle-level simulator of the relevant microarchitecture:
// Tree-PLRU/Bit-PLRU replacement state, a two/three-level cache hierarchy,
// rdtscp timing with per-CPU granularity, SMT and time-sliced core sharing,
// Spectre v1 transient execution, and the secure-cache designs of the
// paper's Section IX. See DESIGN.md for the full substitution table.
//
// # Quick start
//
//	setup := lruleak.NewChannel(lruleak.ChannelConfig{
//		Algorithm: lruleak.Alg1SharedMemory,
//		Mode:      lruleak.SMT,
//		Tr:        600, Ts: 6000,
//	})
//	trace := setup.Run([]byte{0, 1}, true, 200, 1<<40)   // alternate bits
//	bits := trace.RawBits(setup.HitMeansOne())           // decoded stream
//
// Every experiment of the paper's evaluation — Tables I-VII and Figures
// 3-15 — has a driver in this package (see figures.go and tables.go) and a
// regenerating benchmark in bench_test.go.
package lruleak

import (
	"io"

	"repro/internal/attack"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hier"
	"repro/internal/leakage"
	"repro/internal/replacement"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/transport"
	"repro/internal/transport/codec"
	"repro/internal/uarch"
	"repro/internal/victim"
)

// Re-exported configuration and result types. These are aliases, so the
// internal packages' documentation applies verbatim.
type (
	// Profile describes a CPU microarchitecture (Table III).
	Profile = uarch.Profile
	// ChannelConfig parameterizes an LRU channel experiment.
	ChannelConfig = core.Config
	// Channel is an instantiated LRU channel (sender, receiver,
	// hierarchy and measurement apparatus).
	Channel = core.Setup
	// Trace is a receiver observation sequence.
	Trace = core.Trace
	// Observation is one receiver sample.
	Observation = core.Observation
	// ErrorRateResult is one point of Figure 4.
	ErrorRateResult = core.ErrorRateResult
	// MultiChannel is the Section IV extension: one bit per cache set in
	// parallel.
	MultiChannel = core.MultiSetup
	// SpectreConfig parameterizes the Section VIII attack.
	SpectreConfig = spectre.Config
	// SpectreAttack is an instantiated Spectre v1 attack.
	SpectreAttack = spectre.Attack
	// BaselineChannel is a comparison attack (Flush+Reload/Prime+Probe).
	BaselineChannel = baseline.Channel
	// ReplacementKind selects an L1 replacement policy.
	ReplacementKind = replacement.Kind
	// RunOptions tunes how a driver's job grid executes: worker count
	// (0 = all cores) and an optional progress callback. The zero value
	// runs fully parallel and silent; results are identical either way.
	RunOptions = engine.Options
	// JobEvent is one progress notification from a running driver.
	JobEvent = engine.Event
	// StreamConfig parameterizes the streaming covert-channel transport
	// (framing, ECC, lane striping) over the LRU channel.
	StreamConfig = transport.Config
	// Stream is an instantiated covert-channel transport.
	Stream = transport.Stream
	// StreamPoint is one end-to-end goodput/frame-error measurement.
	StreamPoint = transport.CapacityPoint
	// StreamCodec is the transport's pluggable error-correcting code.
	StreamCodec = codec.Codec
	// VictimProgram is a secret-dependent victim (internal/victim):
	// the program the key-recovery attack observes.
	VictimProgram = victim.Victim
	// AttackConfig parameterizes one end-to-end key-recovery attack.
	AttackConfig = attack.Config
	// AttackResult is the recovery outcome plus detection verdicts.
	AttackResult = attack.Result
	// AttackDefense selects the secure-cache design under attack.
	AttackDefense = attack.Defense
	// AttackProbe selects the attacker's probe strategy: the canonical
	// full prime, or the Figure 11 d-split partial prime.
	AttackProbe = attack.Probe
	// AttackSchedule selects the attack's execution discipline:
	// synchronous, SMT hyper-threads, or time-sliced sharing.
	AttackSchedule = attack.Schedule
	// LeakageStrategy tunes the leakage study's eviction probe.
	LeakageStrategy = leakage.Strategy
	// LeakageEnumOptions tunes the reachable-state-space enumerator.
	LeakageEnumOptions = leakage.Options
	// LeakageStateSpace is one policy's enumerated reachable state set.
	LeakageStateSpace = leakage.StateSpace
	// LeakageEval is one measured leakage cell (bits per observation).
	LeakageEval = leakage.Result
)

// NewVictim constructs a victim program by kind name ("ttable",
// "sqmul", "lookup") over a cache with the given set count.
func NewVictim(name string, sets int) (VictimProgram, error) { return victim.ByName(name, sets) }

// RunAttack executes the full template attack (profiling, recovery,
// detection verdict) against the configured victim and defense.
func RunAttack(cfg AttackConfig, secret []int) AttackResult { return attack.Run(cfg, secret) }

// AttackDefenseByName resolves a defense name ("none", "plcache",
// "plcache-fix", "randomfill", "dawg") for command-line flags.
func AttackDefenseByName(name string) (AttackDefense, error) { return attack.ParseDefense(name) }

// AttackDefenses lists the evaluated defenses in matrix order.
func AttackDefenses() []AttackDefense { return attack.Defenses() }

// AttackProbeByName resolves a probe-strategy name ("full", "d=1",
// "d1") for command-line flags.
func AttackProbeByName(name string) (AttackProbe, error) { return attack.ParseProbe(name) }

// AttackProbes lists the evaluated probe strategies.
func AttackProbes() []AttackProbe { return attack.Probes() }

// AttackScheduleByName resolves a schedule name ("sync", "smt",
// "tslice") for command-line flags.
func AttackScheduleByName(name string) (AttackSchedule, error) { return attack.ParseSchedule(name) }

// AttackSchedules lists the execution disciplines in evaluation order.
func AttackSchedules() []AttackSchedule { return attack.Schedules() }

// AttackChanceGuesses is the guesses-to-first-correct a blind attacker
// achieves against the victim — the chance baseline attack reports are
// compared to.
func AttackChanceGuesses(v VictimProgram) float64 { return attack.ChanceGuesses(v) }

// NewStream builds a streaming transport over a fresh multi-set LRU
// channel.
func NewStream(cfg StreamConfig) *Stream { return transport.New(cfg) }

// StreamCodecByName resolves "none", "repK" or "hamming74" to a codec.
func StreamCodecByName(name string) (StreamCodec, error) { return codec.ByName(name) }

// DefaultWorkers is the worker-pool size drivers use when
// RunOptions.Workers is 0: $LRULEAK_WORKERS if set, else GOMAXPROCS.
func DefaultWorkers() int { return engine.DefaultWorkers() }

// ProgressTo returns a RunOptions.Progress callback printing one line
// per completed experiment cell to w (typically os.Stderr).
func ProgressTo(w io.Writer) func(JobEvent) { return engine.StderrProgress(w) }

// Protocol selectors.
const (
	// Alg1SharedMemory is the paper's Algorithm 1.
	Alg1SharedMemory = core.Alg1SharedMemory
	// Alg2NoSharedMemory is the paper's Algorithm 2.
	Alg2NoSharedMemory = core.Alg2NoSharedMemory
)

// Core sharing modes (Section III threat model).
const (
	// SMT shares the core between two hyper-threads.
	SMT = sched.SMT
	// TimeSliced alternates processes on the core.
	TimeSliced = sched.TimeSliced
)

// Replacement policies (Section II-B).
const (
	TrueLRU  = replacement.TrueLRU
	TreePLRU = replacement.TreePLRU
	BitPLRU  = replacement.BitPLRU
	FIFO     = replacement.FIFO
	Random   = replacement.Random
)

// Spectre disclosure primitives (Section VIII / Table VII).
const (
	DiscLRUAlg1 = spectre.LRUAlg1
	DiscLRUAlg2 = spectre.LRUAlg2
	DiscFRMem   = spectre.FRMem
	DiscFRL1    = spectre.FRL1
)

// Baseline channels (Section VII / Table V).
const (
	FlushReloadMem = baseline.FlushReloadMem
	FlushReloadL1  = baseline.FlushReloadL1
	PrimeProbe     = baseline.PrimeProbe
)

// Prefetcher models.
const (
	PrefetchNone     = hier.PrefetchNone
	PrefetchNextLine = hier.PrefetchNextLine
	PrefetchStride   = hier.PrefetchStride
)

// SandyBridge returns the Intel Xeon E5-2690 profile.
func SandyBridge() Profile { return uarch.SandyBridge() }

// Skylake returns the Intel Xeon E3-1245 v5 profile.
func Skylake() Profile { return uarch.Skylake() }

// Zen returns the AMD EPYC 7571 profile.
func Zen() Profile { return uarch.Zen() }

// Profiles returns all three evaluated CPUs in Table III order.
func Profiles() []Profile { return uarch.Profiles() }

// ProfileByName finds a profile by CPU or microarchitecture name.
func ProfileByName(name string) (Profile, error) { return uarch.ByName(name) }

// NewChannel instantiates an LRU channel experiment.
func NewChannel(cfg ChannelConfig) *Channel { return core.NewSetup(cfg) }

// NewChannelW is NewChannel with a worker Workspace: the simulated
// machine's cache hierarchy is pooled per worker and Reset between
// grid cells, bit-identical to fresh construction. The grid drivers
// pass the Workspace the engine hands their jobs; ws may be nil.
func NewChannelW(cfg ChannelConfig, ws *engine.Workspace) *Channel { return core.NewSetupW(cfg, ws) }

// NewMultiChannel instantiates the parallel multi-set channel over the
// given target L1 sets (Section IV's rate-multiplying extension).
func NewMultiChannel(cfg ChannelConfig, targetSets []int) *MultiChannel {
	return core.NewMultiSetup(cfg, targetSets)
}

// NewSpectre instantiates the Section VIII attack with the given secret
// (bytes must be below spectre.Alphabet = 62).
func NewSpectre(cfg SpectreConfig, secret []byte) *SpectreAttack {
	return spectre.New(cfg, secret)
}

// SpectreAlphabet is the number of distinguishable secret values per
// transient access (one per usable L1 set).
const SpectreAlphabet = spectre.Alphabet

// NewBaseline instantiates a comparison channel over an existing setup.
func NewBaseline(kind baseline.Kind, s *Channel) *BaselineChannel {
	return baseline.New(kind, s)
}

// EncodeString maps an upper-case-and-space string into the Spectre 6-bit
// alphabet (A=0..Z=25, space=26, 0-9=27..36); unsupported characters map to
// value 61. DecodeString reverses it.
func EncodeString(s string) []byte {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out[i] = c - 'A'
		case c >= 'a' && c <= 'z':
			out[i] = c - 'a'
		case c == ' ':
			out[i] = 26
		case c >= '0' && c <= '9':
			out[i] = 27 + c - '0'
		default:
			out[i] = 61
		}
	}
	return out
}

// DecodeString maps recovered alphabet values back to text.
func DecodeString(b []byte) string {
	out := make([]byte, len(b))
	for i, v := range b {
		switch {
		case v < 26:
			out[i] = 'A' + v
		case v == 26:
			out[i] = ' '
		case v >= 27 && v <= 36:
			out[i] = '0' + v - 27
		default:
			out[i] = '?'
		}
	}
	return string(out)
}
