package rng

import "math"

// polarScale returns sqrt(-2 ln s / s), the scaling factor of the Marsaglia
// polar method. Split into its own file/function to keep the math import in
// one obvious place.
func polarScale(s float64) float64 {
	return math.Sqrt(-2 * math.Log(s) / s)
}
