// Package rng provides a small, deterministic, allocation-free pseudo-random
// number generator used throughout the simulator.
//
// Experiments in this repository must be exactly reproducible from a seed:
// the scheduler interleaving, the warm-up access sequences of Table I, the
// Spectre round ordering of Appendix C, and all measurement noise are drawn
// from instances of Rand that the caller threads through explicitly. The
// global state of math/rand is deliberately avoided.
//
// The generator is xoshiro256**, seeded via splitmix64, following the
// reference constructions by Blackman and Vigna. It is not cryptographically
// secure; it only needs good statistical behaviour and speed.
package rng

// Rand is a deterministic pseudo-random number generator.
//
// The zero value is not usable; construct instances with New. Rand is not
// safe for concurrent use; give each goroutine (or each simulated hardware
// thread) its own instance, typically via Split.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output. It is used
// only to expand a 64-bit seed into the 256-bit xoshiro state so that
// similar seeds yield unrelated streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators constructed with
// the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Reseed resets r in place to the exact state New(seed) would return,
// without allocating. Worker-local machine reuse depends on this: a
// pooled machine whose generator is Reseeded before a trial produces
// the same stream as a freshly constructed one, so reuse stays
// bit-identical to per-cell construction.
func (r *Rand) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives a new independent generator from r. The derived stream is
// decorrelated from r's future output, so subsystems can be given their own
// generators without consuming each other's sequences.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// SplitInto reseeds dst to the exact state Split would have returned,
// consuming the same single draw from r. Pooled machines keep their
// generator object (internal references stay valid) and SplitInto it
// back to construction state between cells.
func (r *Rand) SplitInto(dst *Rand) {
	dst.Reseed(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Debiasing uses Lemire's multiply-shift rejection method.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed integer in [0, n). It panics if
// n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire's method: multiply a 64-bit random by n and keep the high
	// word, rejecting the small biased region of the low word.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo). Implemented
// manually so the package has no dependency on math/bits semantics changing
// (and to keep the arithmetic explicit).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p. Values of p outside [0, 1] clamp to
// always-false / always-true.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the polar (Marsaglia) method.
func (r *Rand) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		// sqrt(-2 ln s / s) via the stdlib-free approximations below
		// would be silly; math is stdlib. Use it.
		return mean + stddev*u*polarScale(s)
	}
}

// Perm returns a pseudo-random permutation of [0, n) as a slice, using the
// Fisher–Yates shuffle.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, exactly like math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bit returns a single uniformly distributed bit as a byte (0 or 1).
func (r *Rand) Bit() byte {
	return byte(r.Uint64() >> 63)
}

// Bits returns n uniformly distributed bits, one per byte, each 0 or 1.
// It is used to produce the random message strings of Section V.
func (r *Rand) Bits(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = r.Bit()
	}
	return b
}
