package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("seed 0 generator produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	child := r.Split()
	// The child stream must not simply replay the parent stream.
	parentNext := r.Uint64()
	childNext := child.Uint64()
	if parentNext == childNext {
		t.Errorf("split stream mirrors parent: both produced %d", parentNext)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 8, 64, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const draws = 50000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < draws; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-p) > 0.02 {
			t.Errorf("Bool(%v): observed frequency %v", p, got)
		}
	}
}

func TestBoolClamps(t *testing.T) {
	r := New(10)
	for i := 0; i < 100; i++ {
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v, want about 10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Norm stddev = %v, want about 3", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 8, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermVariesAcrossCalls(t *testing.T) {
	r := New(22)
	a, b := r.Perm(16), r.Perm(16)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two consecutive Perm(16) calls were identical")
	}
}

func TestBitsLengthAndValues(t *testing.T) {
	r := New(30)
	b := r.Bits(256)
	if len(b) != 256 {
		t.Fatalf("Bits(256) returned %d bytes", len(b))
	}
	ones := 0
	for _, v := range b {
		if v != 0 && v != 1 {
			t.Fatalf("Bits produced value %d", v)
		}
		ones += int(v)
	}
	if ones < 96 || ones > 160 {
		t.Errorf("Bits(256) has %d ones; distribution looks broken", ones)
	}
}

func TestMul64AgainstBigProducts(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	r := New(99)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShufflePreservesMultiset(t *testing.T) {
	r := New(123)
	f := func(in []byte) bool {
		orig := map[byte]int{}
		for _, v := range in {
			orig[v]++
		}
		s := append([]byte(nil), in...)
		r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		got := map[byte]int{}
		for _, v := range s {
			got[v]++
		}
		if len(orig) != len(got) {
			return false
		}
		for k, v := range orig {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
