// Package workload generates synthetic memory-reference traces standing in
// for the SPEC CPU2006 benchmarks of Figure 9 (the paper drives GEM5 with
// SPEC; we cannot redistribute SPEC, so each benchmark is replaced by a
// generator with a similar locality profile — see DESIGN.md's substitution
// table).
//
// Each Benchmark produces a deterministic stream of virtual addresses given
// a seed. The profiles vary along the axes that matter to a replacement
// policy study: working-set size relative to the L1D, reuse-distance
// distribution (Zipf-like vs uniform), streaming vs strided vs
// pointer-chasing access order, and the fraction of accesses to a small hot
// region.
package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Access is one memory reference.
type Access struct {
	Addr uint64 // virtual byte address
}

// Generator yields an infinite reference stream.
type Generator interface {
	// Name identifies the workload (the SPEC benchmark it imitates).
	Name() string
	// Next returns the next reference.
	Next() Access
	// Reset restarts the stream with a fresh seed.
	Reset(seed uint64)
}

const lineSize = 64

// sequential streams through a buffer repeatedly: the libquantum/lbm-like
// profile, maximal spatial locality, no temporal reuse within the sweep.
type sequential struct {
	name   string
	bytes  uint64
	pos    uint64
	stride uint64
}

func (s *sequential) Name() string { return s.name }
func (s *sequential) Reset(seed uint64) {
	s.pos = (seed * 0x9e3779b9) % s.bytes
}
func (s *sequential) Next() Access {
	a := Access{Addr: s.pos}
	s.pos = (s.pos + s.stride) % s.bytes
	return a
}

// zipf draws lines from a Zipf-like distribution over a working set: the
// gcc/perlbench-like profile where a hot minority of lines carries most
// references. Temporal locality is strong, so LRU-family policies shine.
type zipf struct {
	name  string
	lines int
	skew  float64
	r     *rng.Rand
	cdf   []float64
}

func newZipf(name string, lines int, skew float64) *zipf {
	z := &zipf{name: name, lines: lines, skew: skew}
	z.cdf = make([]float64, lines)
	sum := 0.0
	for i := 0; i < lines; i++ {
		sum += 1 / math.Pow(float64(i+1), skew)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	z.Reset(1)
	return z
}

func (z *zipf) Name() string      { return z.name }
func (z *zipf) Reset(seed uint64) { z.r = rng.New(seed) }
func (z *zipf) Next() Access {
	u := z.r.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Scramble rank -> line so hot lines spread across cache sets.
	line := uint64(lo) * 0x9e3779b97f4a7c15 % uint64(z.lines)
	return Access{Addr: line * lineSize}
}

// pointerChase jumps through a randomized permutation of a large working
// set: the mcf/omnetpp-like profile, almost no locality the cache can use.
type pointerChase struct {
	name  string
	lines int
	next  []uint32
	pos   uint32
}

func newPointerChase(name string, lines int, seed uint64) *pointerChase {
	p := &pointerChase{name: name, lines: lines}
	p.build(seed)
	return p
}

func (p *pointerChase) build(seed uint64) {
	r := rng.New(seed)
	perm := r.Perm(p.lines)
	p.next = make([]uint32, p.lines)
	for i := 0; i < p.lines; i++ {
		p.next[perm[i]] = uint32(perm[(i+1)%p.lines])
	}
	p.pos = uint32(perm[0])
}

func (p *pointerChase) Name() string      { return p.name }
func (p *pointerChase) Reset(seed uint64) { p.build(seed) }
func (p *pointerChase) Next() Access {
	a := Access{Addr: uint64(p.pos) * lineSize}
	p.pos = p.next[p.pos]
	return a
}

// strided walks a working set with a fixed multi-line stride, wrapping: the
// milc/soplex-like profile. Spatial reuse across sweeps, conflict-prone.
type strided struct {
	name   string
	lines  uint64
	stride uint64
	pos    uint64
}

func (s *strided) Name() string      { return s.name }
func (s *strided) Reset(seed uint64) { s.pos = seed % s.lines }
func (s *strided) Next() Access {
	a := Access{Addr: s.pos * lineSize}
	s.pos = (s.pos + s.stride) % s.lines
	return a
}

// mixed interleaves a hot Zipf region with occasional streaming sweeps:
// bzip2/h264ref-like.
type mixed struct {
	name string
	hot  *zipf
	cold *sequential
	r    *rng.Rand
	p    float64 // probability of a hot access
}

func (m *mixed) Name() string { return m.name }
func (m *mixed) Reset(seed uint64) {
	m.hot.Reset(seed)
	m.cold.Reset(seed + 1)
	m.r = rng.New(seed + 2)
}
func (m *mixed) Next() Access {
	if m.r.Float64() < m.p {
		return m.hot.Next()
	}
	a := m.cold.Next()
	a.Addr += 1 << 30 // keep the cold region disjoint from the hot one
	return a
}

// suiteBuilders constructs each Figure 9 benchmark lazily, so callers
// that need a single generator (one parallel job per benchmark) do not
// pay for the whole suite — pointer-chase permutations and Zipf CDF
// tables are the expensive parts.
var suiteBuilders = []func(seed uint64) Generator{
	func(uint64) Generator { return newZipf("perlbench", 4096, 1.1) },
	func(uint64) Generator {
		return &mixed{name: "bzip2", hot: newZipf("", 1024, 1.0),
			cold: &sequential{bytes: 1 << 22, stride: lineSize}, p: 0.85}
	},
	func(uint64) Generator { return newZipf("gcc", 16384, 0.9) },
	func(seed uint64) Generator { return newPointerChase("mcf", 1<<16, seed) },
	func(uint64) Generator {
		return &mixed{name: "gobmk", hot: newZipf("", 2048, 1.2),
			cold: &sequential{bytes: 1 << 20, stride: lineSize}, p: 0.7}
	},
	func(uint64) Generator { return &strided{name: "hmmer", lines: 3000, stride: 7} },
	func(uint64) Generator { return newZipf("sjeng", 8192, 1.05) },
	func(uint64) Generator { return &sequential{name: "libquantum", bytes: 1 << 23, stride: lineSize} },
	func(seed uint64) Generator { return newPointerChase("omnetpp", 1<<15, seed+7) },
	func(uint64) Generator { return &strided{name: "milc", lines: 1 << 14, stride: 33} },
	func(uint64) Generator { return &sequential{name: "lbm", bytes: 1 << 24, stride: 2 * lineSize} },
	func(uint64) Generator {
		return &mixed{name: "sphinx3", hot: newZipf("", 512, 1.3),
			cold: &sequential{bytes: 1 << 21, stride: lineSize}, p: 0.6}
	},
}

// SuiteSize is the number of Figure 9 benchmarks, without constructing
// any of them.
func SuiteSize() int { return len(suiteBuilders) }

// SuiteBenchmark builds and seeds the i'th suite benchmark alone. It is
// identical to Suite(seed)[i].
func SuiteBenchmark(i int, seed uint64) Generator {
	g := suiteBuilders[i](seed)
	g.Reset(seed + uint64(i)*1315423911)
	return g
}

// Suite returns the Figure 9 benchmark suite, seeded and ready to stream.
// Names follow the SPEC programs whose locality each generator imitates.
func Suite(seed uint64) []Generator {
	gens := make([]Generator, SuiteSize())
	for i := range gens {
		gens[i] = SuiteBenchmark(i, seed)
	}
	return gens
}

// ByName finds a suite generator.
func ByName(name string, seed uint64) (Generator, error) {
	for _, g := range Suite(seed) {
		if g.Name() == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}
