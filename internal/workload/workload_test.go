package workload

import (
	"testing"
)

func TestSuiteComplete(t *testing.T) {
	gens := Suite(1)
	if len(gens) != 12 {
		t.Fatalf("suite has %d benchmarks", len(gens))
	}
	seen := map[string]bool{}
	for _, g := range gens {
		if g.Name() == "" {
			t.Error("unnamed generator in suite")
		}
		if seen[g.Name()] {
			t.Errorf("duplicate benchmark %q", g.Name())
		}
		seen[g.Name()] = true
	}
}

func TestByName(t *testing.T) {
	g, err := ByName("mcf", 1)
	if err != nil || g.Name() != "mcf" {
		t.Errorf("ByName(mcf) = %v, %v", g, err)
	}
	if _, err := ByName("doom", 1); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range []string{"gcc", "mcf", "libquantum", "bzip2", "milc"} {
		a, _ := ByName(name, 7)
		b, _ := ByName(name, 7)
		for i := 0; i < 1000; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%s: streams diverge at %d", name, i)
			}
		}
	}
}

func TestResetRestartsStream(t *testing.T) {
	g, _ := ByName("gcc", 3)
	var first []Access
	for i := 0; i < 100; i++ {
		first = append(first, g.Next())
	}
	g.Reset(3 + 2*1315423911) // gcc is suite index 2
	for i := 0; i < 100; i++ {
		if g.Next() != first[i] {
			t.Fatalf("Reset did not restart stream at %d", i)
		}
	}
}

func TestSequentialIsSequential(t *testing.T) {
	g, _ := ByName("libquantum", 1)
	prev := g.Next().Addr
	for i := 0; i < 1000; i++ {
		cur := g.Next().Addr
		if cur != prev+64 && cur != 0 { // wraps at buffer end
			t.Fatalf("non-sequential step %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestZipfIsSkewed(t *testing.T) {
	g, _ := ByName("gcc", 5)
	counts := map[uint64]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[g.Next().Addr]++
	}
	// A Zipf stream concentrates: the top 10% of touched lines must
	// carry well over 10% of accesses.
	var all []int
	for _, c := range counts {
		all = append(all, c)
	}
	top := 0
	total := 0
	max10 := len(all) / 10
	// Selection without sort package gymnastics: count accesses above a
	// threshold found by scanning.
	for _, c := range all {
		total += c
	}
	// Simple: find the max10 largest by repeated max scan (small n).
	used := make([]bool, len(all))
	for k := 0; k < max10; k++ {
		best, bi := -1, -1
		for i, c := range all {
			if !used[i] && c > best {
				best, bi = c, i
			}
		}
		used[bi] = true
		top += best
	}
	if float64(top)/float64(total) < 0.3 {
		t.Errorf("top 10%% of lines carry only %.1f%% of accesses; not Zipf-like",
			100*float64(top)/float64(total))
	}
}

func TestPointerChaseCoversWorkingSet(t *testing.T) {
	g, _ := ByName("mcf", 9)
	seen := map[uint64]bool{}
	for i := 0; i < 1<<16; i++ {
		seen[g.Next().Addr] = true
	}
	// The permutation cycle must cover the full working set.
	if len(seen) != 1<<16 {
		t.Errorf("pointer chase visited %d distinct lines, want %d", len(seen), 1<<16)
	}
}

func TestMixedHasTwoRegions(t *testing.T) {
	g, _ := ByName("bzip2", 11)
	var hot, cold int
	for i := 0; i < 10000; i++ {
		if g.Next().Addr >= 1<<30 {
			cold++
		} else {
			hot++
		}
	}
	if hot == 0 || cold == 0 {
		t.Errorf("mixed workload degenerate: hot=%d cold=%d", hot, cold)
	}
	if hot < cold {
		t.Errorf("hot region should dominate: hot=%d cold=%d", hot, cold)
	}
}
