package core

import (
	"testing"

	"repro/internal/replacement"
	"repro/internal/sched"
	"repro/internal/uarch"
)

func TestAlgorithmString(t *testing.T) {
	if Alg1SharedMemory.String() == "" || Alg2NoSharedMemory.String() == "" || Algorithm(9).String() == "" {
		t.Error("Algorithm.String broken")
	}
}

func TestDefaultsFilled(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Profile.Name == "" || cfg.Algorithm != Alg1SharedMemory {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.D != 8 { // Algorithm 1 default d = ways
		t.Errorf("Alg1 default d = %d", cfg.D)
	}
	cfg2 := Config{Algorithm: Alg2NoSharedMemory}.withDefaults()
	if cfg2.D != 4 { // the paper's Figure 5 setting
		t.Errorf("Alg2 default d = %d", cfg2.D)
	}
	if cfg.L1Policy != replacement.TreePLRU {
		t.Errorf("default policy = %v", cfg.L1Policy)
	}
}

func TestSetupAlg1SharesPhysicalLine(t *testing.T) {
	s := NewSetup(Config{Algorithm: Alg1SharedMemory, Seed: 1})
	if s.SenderLine.PhysLine != s.ReceiverLines[0].PhysLine {
		t.Error("Algorithm 1 sender and receiver line 0 are different physical lines")
	}
	if s.SenderLine.VirtLine == s.ReceiverLines[0].VirtLine {
		t.Error("distinct address spaces should map line 0 at distinct virtual lines")
	}
	if len(s.ReceiverLines) != 9 { // N+1 for 8 ways
		t.Errorf("Algorithm 1 receiver lines = %d, want 9", len(s.ReceiverLines))
	}
}

func TestSetupAlg2DisjointLines(t *testing.T) {
	s := NewSetup(Config{Algorithm: Alg2NoSharedMemory, Seed: 1})
	if len(s.ReceiverLines) != 8 { // N for 8 ways
		t.Errorf("Algorithm 2 receiver lines = %d, want 8", len(s.ReceiverLines))
	}
	for i, l := range s.ReceiverLines {
		if l.PhysLine == s.SenderLine.PhysLine {
			t.Errorf("receiver line %d aliases the sender's private line", i)
		}
	}
}

func TestSetupLinesMapToTargetSet(t *testing.T) {
	for _, alg := range []Algorithm{Alg1SharedMemory, Alg2NoSharedMemory} {
		s := NewSetup(Config{Algorithm: alg, TargetSet: 11, Seed: 2})
		for i, l := range s.ReceiverLines {
			if got := s.Hier.L1().SetIndex(l.PhysLine); got != 11 {
				t.Errorf("%v receiver line %d in set %d", alg, i, got)
			}
		}
		if got := s.Hier.L1().SetIndex(s.SenderLine.PhysLine); got != 11 {
			t.Errorf("%v sender line in set %d", alg, got)
		}
	}
}

func TestSameAddressSpaceSetup(t *testing.T) {
	s := NewSetup(Config{Algorithm: Alg1SharedMemory, SameAddressSpace: true, Seed: 3})
	if s.SenderAS != s.ReceiverAS {
		t.Error("SameAddressSpace did not share the address space")
	}
	if s.SenderLine != s.ReceiverLines[0] {
		t.Error("sender should use the receiver's own line 0 in-process")
	}
}

func TestHitMeansOnePolarity(t *testing.T) {
	if !NewSetup(Config{Algorithm: Alg1SharedMemory, Seed: 4}).HitMeansOne() {
		t.Error("Algorithm 1: hit should mean 1")
	}
	if NewSetup(Config{Algorithm: Alg2NoSharedMemory, Seed: 4}).HitMeansOne() {
		t.Error("Algorithm 2: miss should mean 1")
	}
}

// The headline behaviour (Figure 5 top): under SMT with Algorithm 1, an
// alternating 0/1 message produces clearly bimodal receiver latencies with
// the right polarity and near-perfect ground-truth agreement.
func TestAlg1SMTTransfersAlternatingBits(t *testing.T) {
	s := NewSetup(Config{
		Algorithm: Alg1SharedMemory, Mode: sched.SMT,
		Tr: 600, Ts: 6000, Seed: 42,
	})
	tr := s.Run([]byte{0, 1}, true, 400, 1<<40)
	if len(tr.Observations) != 400 {
		t.Fatalf("got %d observations", len(tr.Observations))
	}
	bits := tr.RawBits(true)
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	// Half the time the sender sends 1: expect roughly balanced bits.
	if ones < 100 || ones > 300 {
		t.Errorf("decoded %d ones out of 400; channel not transferring", ones)
	}
	// Decoded bits must flip in runs of ~Ts/Tr = 10, not at random.
	transitions := 0
	for i := 1; i < len(bits); i++ {
		if bits[i] != bits[i-1] {
			transitions++
		}
	}
	if transitions > 120 {
		t.Errorf("%d transitions in 400 samples; expected runs of ~10", transitions)
	}
}

func TestAlg1ErrorRateLowAtPaperSettings(t *testing.T) {
	s := NewSetup(Config{
		Algorithm: Alg1SharedMemory, Mode: sched.SMT,
		Tr: 600, Ts: 6000, D: 8, Seed: 7,
	})
	res := s.MeasureErrorRate(128, 5)
	if res.ErrorRate > 0.1 {
		t.Errorf("Algorithm 1 error rate %v at Tr=600/Ts=6000, want < 10%%", res.ErrorRate)
	}
	if res.RateBps < 400e3 {
		t.Errorf("transmission rate %v bps, want hundreds of Kbps", res.RateBps)
	}
}

func TestAlg2ErrorRateOddDBeatsEvenD(t *testing.T) {
	run := func(d int) float64 {
		s := NewSetup(Config{
			Algorithm: Alg2NoSharedMemory, Mode: sched.SMT,
			Tr: 600, Ts: 6000, D: d, Seed: 7,
		})
		return s.MeasureErrorRate(128, 4).ErrorRate
	}
	odd, even := run(1), run(4)
	// Section V-A: even d makes the Tree-PLRU point into the wrong
	// subtree and the receiver fails to evict line 0.
	if odd > 0.15 {
		t.Errorf("Algorithm 2 with d=1: error %v, want < 15%%", odd)
	}
	if even < odd {
		t.Errorf("even d (%v) should be worse than odd d (%v) on Tree-PLRU", even, odd)
	}
}

// The defining novelty vs Flush+Reload: the sender encodes entirely with
// cache HITS. Verify the sender's L1 miss count stays at its warm-up level
// while transmitting ones.
func TestSenderEncodesWithHitsOnly(t *testing.T) {
	s := NewSetup(Config{
		Algorithm: Alg1SharedMemory, Mode: sched.SMT,
		Tr: 600, Ts: 6000, Seed: 9,
	})
	tr := s.Run([]byte{1}, true, 100, 1<<40)
	if len(tr.Observations) == 0 {
		t.Fatal("no observations")
	}
	st := s.Hier.L1().RequestorStats(ReqSender)
	if st.Accesses < 100 {
		t.Fatalf("sender made only %d accesses", st.Accesses)
	}
	missRate := float64(st.Misses) / float64(st.Accesses)
	if missRate > 0.02 {
		t.Errorf("sender L1 miss rate %v while sending 1s; the LRU channel needs hits only", missRate)
	}
}

func TestTrueL1HitGroundTruthMatchesDecode(t *testing.T) {
	s := NewSetup(Config{
		Algorithm: Alg1SharedMemory, Mode: sched.SMT,
		Tr: 600, Ts: 6000, Seed: 10,
	})
	tr := s.Run([]byte{0, 1}, true, 300, 1<<40)
	agree := 0
	for _, o := range tr.Observations {
		decodedHit := o.Latency <= tr.Threshold
		if decodedHit == o.TrueL1Hit {
			agree++
		}
	}
	if rate := float64(agree) / float64(len(tr.Observations)); rate < 0.95 {
		t.Errorf("threshold decode agrees with ground truth only %v of the time", rate)
	}
}

func TestEncodeCostMatchesTableV(t *testing.T) {
	// Table V: L1 LRU encoding 31 cycles on E5-2690 (27 + one L1 hit).
	s := NewSetup(Config{Algorithm: Alg1SharedMemory, Seed: 11})
	got := s.EncodeCost()
	if got < 28 || got > 40 {
		t.Errorf("encode cost = %d cycles, want ~31", got)
	}
}

func TestTimeSlicedAlg1Distinguishes0And1(t *testing.T) {
	frac := func(bit byte) float64 {
		s := NewSetup(Config{
			Algorithm: Alg1SharedMemory, Mode: sched.TimeSliced,
			Tr: 10_000_000, Ts: 1 << 62, D: 8, Seed: 13,
			Quantum: 1_000_000,
		})
		return s.MeasureFractionOnes(bit, 60)
	}
	f0, f1 := frac(0), frac(1)
	if f1-f0 < 0.2 {
		t.Errorf("time-sliced fractions: sending0=%v sending1=%v; want clear separation", f0, f1)
	}
	if f0 > 0.3 {
		t.Errorf("sending 0 yields %v ones, want low", f0)
	}
}

func TestFractionOnesRangeAndDeterminism(t *testing.T) {
	s1 := NewSetup(Config{Algorithm: Alg1SharedMemory, Mode: sched.TimeSliced, Tr: 2_000_000, Ts: 1 << 62, Seed: 14})
	a := s1.MeasureFractionOnes(1, 30)
	s2 := NewSetup(Config{Algorithm: Alg1SharedMemory, Mode: sched.TimeSliced, Tr: 2_000_000, Ts: 1 << 62, Seed: 14})
	b := s2.MeasureFractionOnes(1, 30)
	if a != b {
		t.Errorf("same seed, different fractions: %v vs %v", a, b)
	}
	if a < 0 || a > 1 {
		t.Errorf("fraction out of range: %v", a)
	}
}

func TestNoiseThreadsIncreaseAlg2Error(t *testing.T) {
	run := func(noise int) float64 {
		s := NewSetup(Config{
			Algorithm: Alg2NoSharedMemory, Mode: sched.SMT,
			Tr: 600, Ts: 6000, D: 1, Seed: 15,
			NoiseThreads: noise, NoisePeriod: 2000,
		})
		return s.MeasureErrorRate(64, 4).ErrorRate
	}
	quiet, noisy := run(0), run(2)
	if noisy < quiet {
		t.Errorf("noise threads reduced error rate: quiet=%v noisy=%v", quiet, noisy)
	}
}

func TestZenProfileChannelStillWorks(t *testing.T) {
	// Same-address-space Algorithm 1 on Zen (Figure 7 top arrangement):
	// with averaging, the channel must still show signal despite the
	// coarse TSC.
	s := NewSetup(Config{
		Profile: uarch.Zen(), Algorithm: Alg1SharedMemory,
		Mode: sched.SMT, SameAddressSpace: true,
		Tr: 1000, Ts: 100_000, Seed: 16,
	})
	tr := s.Run([]byte{0, 1}, true, 600, 1<<40)
	// Split samples by the sender's bit period and compare means.
	var zeroSum, oneSum float64
	var zeroN, oneN int
	for _, o := range tr.Observations {
		bitIndex := (o.Wall / 100_000) % 2
		if bitIndex == 0 {
			zeroSum += o.Latency
			zeroN++
		} else {
			oneSum += o.Latency
			oneN++
		}
	}
	if zeroN == 0 || oneN == 0 {
		t.Fatal("samples not spread over bit periods")
	}
	// Algorithm 1: sending 1 keeps line 0 hot -> lower latency.
	if zeroSum/float64(zeroN) <= oneSum/float64(oneN) {
		t.Errorf("Zen: mean latency for 0-bits (%v) should exceed 1-bits (%v)",
			zeroSum/float64(zeroN), oneSum/float64(oneN))
	}
}

func TestFixedThresholdBetweenHitAndMiss(t *testing.T) {
	s := NewSetup(Config{Algorithm: Alg1SharedMemory, Seed: 17})
	th := s.FixedThreshold()
	prof := s.Hier.Profile()
	allHit := float64((len(s.Chaser.Elements())+1)*prof.L1Latency + prof.MeasureOverhead)
	oneMiss := allHit - float64(prof.L1Latency) + float64(prof.L2Latency)
	if th <= allHit || th >= oneMiss {
		t.Errorf("threshold %v not between all-hit %v and one-miss %v", th, allHit, oneMiss)
	}
}
