package core

import (
	"repro/internal/stats"
)

// Trace is the outcome of a channel run: the receiver's raw observation
// sequence plus derived quantities.
type Trace struct {
	Observations []Observation
	// Threshold is the hit/miss latency split chosen by Otsu's method
	// over the whole trace (the red dotted line of Figure 5).
	Threshold float64
	// Elapsed is the simulated wall time of the run in cycles.
	Elapsed uint64
	// BitsSent counts complete bit periods the sender transmitted.
	BitsSent int
}

// Latencies returns the observed latencies as a plain slice.
func (t *Trace) Latencies() []float64 {
	out := make([]float64, len(t.Observations))
	for i, o := range t.Observations {
		out[i] = o.Latency
	}
	return out
}

// RawBits classifies each observation into a received bit using the trace
// threshold and the protocol polarity (Algorithm 1: fast = 1; Algorithm 2:
// slow = 1).
func (t *Trace) RawBits(hitMeansOne bool) []byte {
	bits := make([]byte, len(t.Observations))
	for i, o := range t.Observations {
		isHit := o.Latency <= t.Threshold
		if isHit == hitMeansOne {
			bits[i] = 1
		} else {
			bits[i] = 0
		}
	}
	return bits
}

// FractionOnes returns the fraction of decoded 1s — the metric of the
// time-sliced experiments (Figures 6, 8, 15).
func (t *Trace) FractionOnes(hitMeansOne bool) float64 {
	bits := t.RawBits(hitMeansOne)
	if len(bits) == 0 {
		return 0
	}
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	return float64(ones) / float64(len(bits))
}

// Run executes the channel: the sender transmits message (repeating if
// repeat is set) while the receiver samples, until either maxSamples
// receiver observations have been collected or wallLimit cycles elapse.
func (s *Setup) Run(message []byte, repeat bool, maxSamples int, wallLimit uint64) *Trace {
	m := s.NewMachine()
	var obs []Observation
	s.WarmSender()
	m.AddThread("sender", ReqSender, s.SenderProgram(message, repeat))
	m.AddThread("receiver", ReqReceiver, s.ReceiverProgram(&obs, maxSamples))
	for i := 0; i < s.Cfg.NoiseThreads; i++ {
		m.AddThread("noise", ReqOther, s.NoiseProgram())
	}
	m.Run(wallLimit)

	tr := &Trace{Observations: obs, Elapsed: m.Now()}
	tr.Threshold = stats.OtsuThreshold(tr.Latencies())
	if s.Cfg.Ts > 0 {
		tr.BitsSent = int(tr.Elapsed / s.Cfg.Ts)
		if !repeat && tr.BitsSent > len(message) {
			tr.BitsSent = len(message)
		}
	}
	return tr
}

// ErrorRateResult is one point of Figure 4.
type ErrorRateResult struct {
	ErrorRate float64 // best-alignment edit distance per sent bit
	// RateBps is the effective transmission rate in bits/second at the
	// profile's clock frequency.
	RateBps float64
	Samples int
}

// MeasureErrorRate reproduces the Section V methodology: the sender
// transmits a random message of msgBits repeatedly at least repeats times;
// the receiver's samples are majority-decoded per bit period and the
// Wagner–Fischer edit distance to the sent string, minimized over
// alignments, gives the error rate.
func (s *Setup) MeasureErrorRate(msgBits, repeats int) ErrorRateResult {
	message := s.RNG.Split().Bits(msgBits)
	wall := s.Cfg.Ts * uint64(msgBits) * uint64(repeats+1)
	tr := s.Run(message, true, 0, wall)

	raw := tr.RawBits(s.HitMeansOne())
	// Each transmitted bit spans about Ts/Tr receiver samples; collapse
	// runs by majority vote, then align.
	perBit := float64(s.Cfg.Ts) / float64(s.Cfg.Tr)
	if len(tr.Observations) > 1 {
		// Calibrate with the actually achieved sampling period, which
		// exceeds Tr when the receiver's work per sample is longer.
		span := tr.Observations[len(tr.Observations)-1].Wall - tr.Observations[0].Wall
		achieved := float64(span) / float64(len(tr.Observations)-1)
		if achieved > 0 {
			perBit = float64(s.Cfg.Ts) / achieved
		}
	}
	if perBit < 1 {
		perBit = 1
	}
	decoded := stats.RunLengthDecode(raw, perBit)

	rate := stats.BestAlignmentErrorRate(message, decoded, 0)
	prof := s.Hier.Profile()
	return ErrorRateResult{
		ErrorRate: rate,
		RateBps:   prof.BitsPerSecond(float64(s.Cfg.Ts)),
		Samples:   len(tr.Observations),
	}
}

// MeasureFractionOnes runs the time-sliced experiment of Figure 6/8: the
// sender constantly transmits the single bit `bit`; the receiver takes
// measurements samples; the fraction of decoded 1s is returned. A fixed
// latency threshold is derived from the profile (midway between L1 and L2
// latency through the chase), because in the time-sliced setting a run may
// be all-hits or all-misses and Otsu would split noise.
func (s *Setup) MeasureFractionOnes(bit byte, measurements int) float64 {
	wall := s.Cfg.Tr*uint64(measurements+2) + 10_000_000
	tr := s.Run([]byte{bit}, true, measurements, wall)
	th := s.FixedThreshold()
	ones := 0
	for _, o := range tr.Observations {
		isHit := o.Latency <= th
		if isHit == s.HitMeansOne() {
			ones++
		}
	}
	if len(tr.Observations) == 0 {
		return 0
	}
	return float64(ones) / float64(len(tr.Observations))
}

// FixedThreshold returns the profile-derived hit/miss latency split for a
// full pointer-chase probe: chase floor plus the midpoint of the L1 and L2
// latencies plus measurement overhead.
func (s *Setup) FixedThreshold() float64 {
	prof := s.Hier.Profile()
	chain := len(s.Chaser.Elements())
	base := float64(chain*prof.L1Latency + prof.MeasureOverhead)
	return base + float64(prof.L1Latency+prof.L2Latency)/2
}

// EncodeCost returns the sender's encoding latency in cycles for one bit —
// the LRU-channel column of Table V: the address-computation overhead plus
// a single L1 hit (the victim line is warm).
func (s *Setup) EncodeCost() int {
	s.WarmSender()
	res := s.Hier.Load(s.SenderLine, ReqSender)
	const addressComputation = 27 // cycles of gadget arithmetic (Table V)
	return addressComputation + res.Latency
}
