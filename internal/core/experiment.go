package core

import (
	"repro/internal/stats"
)

// Trace is the outcome of a channel run: the receiver's raw observation
// sequence plus derived quantities.
type Trace struct {
	Observations []Observation
	// Threshold is the hit/miss latency split chosen by Otsu's method
	// over the whole trace (the red dotted line of Figure 5).
	Threshold float64
	// Elapsed is the simulated wall time of the run in cycles.
	Elapsed uint64
	// BitsSent counts complete bit periods the sender transmitted.
	BitsSent int

	// lat caches Latencies; a Trace is immutable once built, so the
	// projection is computed at most once.
	lat []float64
}

// Latencies returns the observed latencies as a plain slice. The slice
// is cached on the trace; callers must not mutate it.
func (t *Trace) Latencies() []float64 {
	if t.lat == nil && len(t.Observations) > 0 {
		t.lat = make([]float64, len(t.Observations))
		for i, o := range t.Observations {
			t.lat[i] = o.Latency
		}
	}
	return t.lat
}

// ClassifyBit is the one threshold classifier every decode path shares:
// a latency at or below the threshold is a hit, and whether a hit
// decodes to 1 is the protocol polarity (Algorithm 1: fast = 1;
// Algorithm 2: slow = 1).
func ClassifyBit(latency, threshold float64, hitMeansOne bool) byte {
	if (latency <= threshold) == hitMeansOne {
		return 1
	}
	return 0
}

// BitsAt classifies each observation against an explicit threshold.
func (t *Trace) BitsAt(threshold float64, hitMeansOne bool) []byte {
	bits := make([]byte, len(t.Observations))
	for i, o := range t.Observations {
		bits[i] = ClassifyBit(o.Latency, threshold, hitMeansOne)
	}
	return bits
}

// RawBits classifies each observation into a received bit using the trace
// threshold and the protocol polarity.
func (t *Trace) RawBits(hitMeansOne bool) []byte {
	return t.BitsAt(t.Threshold, hitMeansOne)
}

// FractionOnesAt returns the fraction of observations that decode to 1
// against an explicit threshold, without materializing the bit slice.
func (t *Trace) FractionOnesAt(threshold float64, hitMeansOne bool) float64 {
	if len(t.Observations) == 0 {
		return 0
	}
	ones := 0
	for _, o := range t.Observations {
		ones += int(ClassifyBit(o.Latency, threshold, hitMeansOne))
	}
	return float64(ones) / float64(len(t.Observations))
}

// FractionOnes returns the fraction of decoded 1s — the metric of the
// time-sliced experiments (Figures 6, 8, 15).
func (t *Trace) FractionOnes(hitMeansOne bool) float64 {
	return t.FractionOnesAt(t.Threshold, hitMeansOne)
}

// Run executes the channel: the sender transmits message (repeating if
// repeat is set) while the receiver samples, until either maxSamples
// receiver observations have been collected or wallLimit cycles elapse.
func (s *Setup) Run(message []byte, repeat bool, maxSamples int, wallLimit uint64) *Trace {
	m := s.NewMachine()
	obs := make([]Observation, 0, s.sampleCapacity(maxSamples, wallLimit))
	s.WarmSender()
	m.AddThread("sender", ReqSender, s.SenderProgram(message, repeat))
	m.AddThread("receiver", ReqReceiver, s.ReceiverProgram(&obs, maxSamples))
	for i := 0; i < s.Cfg.NoiseThreads; i++ {
		m.AddThread("noise", ReqOther, s.NoiseProgram())
	}
	m.Run(wallLimit)

	tr := &Trace{Observations: obs, Elapsed: m.Now()}
	tr.Threshold = stats.OtsuThreshold(tr.Latencies())
	if s.Cfg.Ts > 0 {
		tr.BitsSent = int(tr.Elapsed / s.Cfg.Ts)
		if !repeat && tr.BitsSent > len(message) {
			tr.BitsSent = len(message)
		}
	}
	return tr
}

// ErrorRateResult is one point of Figure 4.
type ErrorRateResult struct {
	ErrorRate float64 // best-alignment edit distance per sent bit
	// RateBps is the effective transmission rate in bits/second at the
	// profile's clock frequency.
	RateBps float64
	Samples int
}

// MeasureErrorRate reproduces the Section V methodology: the sender
// transmits a random message of msgBits repeatedly at least repeats times;
// the receiver's samples are majority-decoded per bit period and the
// Wagner–Fischer edit distance to the sent string, minimized over
// alignments, gives the error rate.
func (s *Setup) MeasureErrorRate(msgBits, repeats int) ErrorRateResult {
	message := s.RNG.Split().Bits(msgBits)
	wall := s.Cfg.Ts * uint64(msgBits) * uint64(repeats+1)
	tr := s.Run(message, true, 0, wall)

	raw := tr.RawBits(s.HitMeansOne())
	// Each transmitted bit spans about Ts/Tr receiver samples; collapse
	// runs by majority vote, then align.
	perBit := float64(s.Cfg.Ts) / float64(s.Cfg.Tr)
	if len(tr.Observations) > 1 {
		// Calibrate with the actually achieved sampling period, which
		// exceeds Tr when the receiver's work per sample is longer.
		span := tr.Observations[len(tr.Observations)-1].Wall - tr.Observations[0].Wall
		achieved := float64(span) / float64(len(tr.Observations)-1)
		if achieved > 0 {
			perBit = float64(s.Cfg.Ts) / achieved
		}
	}
	if perBit < 1 {
		perBit = 1
	}
	decoded := stats.RunLengthDecode(raw, perBit)

	rate := stats.BestAlignmentErrorRate(message, decoded, 0)
	prof := s.Hier.Profile()
	return ErrorRateResult{
		ErrorRate: rate,
		RateBps:   prof.BitsPerSecond(float64(s.Cfg.Ts)),
		Samples:   len(tr.Observations),
	}
}

// sampleCapacity estimates how many observations a run will collect so
// the buffer can be allocated once up front: maxSamples when bounded,
// otherwise the wall limit divided by the sampling period Tr (the
// receiver takes at most one sample per Tr), capped so absurd wall
// limits (1<<40 is common) do not translate into absurd allocations.
func (s *Setup) sampleCapacity(maxSamples int, wallLimit uint64) int {
	const capLimit = 1 << 16
	if maxSamples > 0 {
		if maxSamples > capLimit {
			return capLimit
		}
		return maxSamples
	}
	if s.Cfg.Tr == 0 {
		return 64
	}
	est := wallLimit / s.Cfg.Tr
	if est > capLimit {
		return capLimit
	}
	if est < 16 {
		return 16
	}
	return int(est)
}

// MeasureFractionOnes runs the time-sliced experiment of Figure 6/8: the
// sender constantly transmits the single bit `bit`; the receiver takes
// measurements samples; the fraction of decoded 1s is returned. A fixed
// latency threshold is derived from the profile (midway between L1 and L2
// latency through the chase), because in the time-sliced setting a run may
// be all-hits or all-misses and Otsu would split noise.
func (s *Setup) MeasureFractionOnes(bit byte, measurements int) float64 {
	wall := s.Cfg.Tr*uint64(measurements+2) + 10_000_000
	tr := s.Run([]byte{bit}, true, measurements, wall)
	return tr.FractionOnesAt(s.FixedThreshold(), s.HitMeansOne())
}

// FixedThreshold returns the profile-derived hit/miss latency split for a
// full pointer-chase probe: chase floor plus the midpoint of the L1 and L2
// latencies plus measurement overhead.
func (s *Setup) FixedThreshold() float64 {
	prof := s.Hier.Profile()
	chain := len(s.Chaser.Elements())
	base := float64(chain*prof.L1Latency + prof.MeasureOverhead)
	return base + float64(prof.L1Latency+prof.L2Latency)/2
}

// EncodeCost returns the sender's encoding latency in cycles for one bit —
// the LRU-channel column of Table V: the address-computation overhead plus
// a single L1 hit (the victim line is warm).
func (s *Setup) EncodeCost() int {
	s.WarmSender()
	res := s.Hier.Load(s.SenderLine, ReqSender)
	const addressComputation = 27 // cycles of gadget arithmetic (Table V)
	return addressComputation + res.Latency
}
