package core

import (
	"repro/internal/mem"
	"repro/internal/sched"
)

// Observation is one receiver sample: the observed probe latency, the wall
// time at which the decode completed, and ground truth for validation.
type Observation struct {
	Latency float64
	Wall    uint64
	// TrueL1Hit records whether line 0 really hit L1 — ground truth the
	// real attacker does not have, kept for test assertions.
	TrueL1Hit bool
}

// SenderProgram returns the sender thread: it transmits message (one byte
// per bit) by holding each bit for Ts cycles and running the encoding phase
// of the configured algorithm in a loop (Algorithm 3, sender side). If
// repeat is true the message is retransmitted forever (the experiment's
// wall-clock limit stops it).
func (s *Setup) SenderProgram(message []byte, repeat bool) func(*sched.Env) {
	period := s.Cfg.SenderPeriod
	ts := s.Cfg.Ts
	return func(e *sched.Env) {
		for {
			for _, bit := range message {
				deadline := e.Now() + ts
				for e.Now() < deadline {
					if bit != 0 {
						// Encoding phase: one access. Under
						// Algorithm 1 this touches shared
						// line 0; under Algorithm 2 the
						// private line N. Either way it is
						// normally a cache HIT.
						e.Access(s.SenderLine)
						if lat := period - uint64(s.Hier.Profile().L1Latency); lat > 0 {
							e.Busy(lat)
						}
					} else {
						// m=0: no access to the target set;
						// the loop still burns the address
						// computation time.
						e.Busy(period)
					}
				}
			}
			if !repeat {
				return
			}
		}
	}
}

// WarmSender pre-loads the sender's line so that, as the paper assumes, the
// victim line "is already in cache before the attack" and all encoding
// accesses are hits.
func (s *Setup) WarmSender() { s.Hier.Warm(s.SenderLine, ReqSender) }

// ReceiverProgram returns the receiver thread implementing Algorithm 3's
// receive loop around the configured algorithm: initialization phase
// (lines 0..d-1), busy-wait until Tr has elapsed since the previous sample,
// decoding phase (remaining lines), and the timed pointer-chase access to
// line 0. Each sample is appended to out. The thread runs until the
// machine's wall-clock limit stops it (or maxSamples is reached, if > 0).
func (s *Setup) ReceiverProgram(out *[]Observation, maxSamples int) func(*sched.Env) {
	d := s.Cfg.D
	if d > len(s.ReceiverLines) {
		d = len(s.ReceiverLines)
	}
	tr := s.Cfg.Tr
	return func(e *sched.Env) {
		s.Chaser.WarmUp()
		var tLast uint64
		for maxSamples <= 0 || len(*out) < maxSamples {
			// Step 0: initialization phase.
			for i := 0; i < d; i++ {
				e.Access(s.ReceiverLines[i])
			}
			// Sleep: allow the sender's encoding to land.
			e.BusyUntil(tLast + tr)
			tLast = e.Now()
			// Step 2: decoding phase.
			for i := d; i < s.decodeEnd(); i++ {
				e.Access(s.ReceiverLines[i])
			}
			// Timed access to line 0 via the pointer chase.
			m := e.Measure(s.Chaser, s.ReceiverLines[0])
			*out = append(*out, Observation{
				Latency:   m.Observed,
				Wall:      e.Now(),
				TrueL1Hit: m.L1Hit,
			})
		}
		// The experiment is over once the receiver has its samples;
		// don't leave the sender spinning to the wall-clock limit.
		e.StopAll()
	}
}

// NoiseProgram returns a background process that touches a random line of a
// random set every NoisePeriod cycles — the "other processes running during
// Tr" pollution discussed for time-sliced sharing in Section V-B.
func (s *Setup) NoiseProgram() func(*sched.Env) {
	prof := s.Hier.Profile()
	as := s.Sys.NewAddressSpace()
	// A private working set spanning every cache set, 4 lines deep.
	lines := make([]mem.Addr, 0, prof.L1Sets*4)
	for i := 0; i < 4; i++ {
		for set := 0; set < prof.L1Sets; set++ {
			v := as.LinesForSet(prof.L1Sets, set, 1)[0]
			lines = append(lines, as.Resolve(v))
		}
	}
	period := s.Cfg.NoisePeriod
	return func(e *sched.Env) {
		r := e.RNG()
		for {
			e.Access(lines[r.Intn(len(lines))])
			e.Busy(period)
		}
	}
}
