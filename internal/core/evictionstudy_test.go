package core

import (
	"testing"

	"repro/internal/replacement"
)

func studyCfg(pol replacement.Kind) EvictionStudyConfig {
	return EvictionStudyConfig{Policy: pol, Trials: 2000, Seed: 11}
}

// Table I row 1: true LRU evicts line 0 with probability 1 under both
// sequences and both initial conditions, at every iteration.
func TestTableITrueLRUAlwaysEvicts(t *testing.T) {
	for _, cond := range []InitCond{InitRandom, InitSequential} {
		for _, seq := range []Sequence{Seq1, Seq2} {
			res := RunEvictionStudy(studyCfg(replacement.TrueLRU), cond, seq)
			for it, p := range res.Prob {
				if p != 1 {
					t.Errorf("LRU %v seq%d iter %d: P(evict) = %v, want 1", cond, seq, it+1, p)
				}
			}
		}
	}
}

// Table I, Tree-PLRU / Sequence 1: the eviction probability must grow with
// loop iterations and reach ~100% by iteration 8 under both conditions
// (paper: 50.4% -> 82.8% -> 99.2% -> 100% for random init).
func TestTableITreePLRUSeq1Converges(t *testing.T) {
	for _, cond := range []InitCond{InitRandom, InitSequential} {
		res := RunEvictionStudy(studyCfg(replacement.TreePLRU), cond, Seq1)
		if res.Prob[0] < 0.3 || res.Prob[0] > 0.95 {
			t.Errorf("%v iter1 = %v, want mid-range", cond, res.Prob[0])
		}
		if res.Prob[7] < 0.99 {
			t.Errorf("%v iter8 = %v, want ~1", cond, res.Prob[7])
		}
		if res.Prob[2] < res.Prob[0] {
			t.Errorf("%v: eviction probability decreased: %v", cond, res.Prob[:3])
		}
	}
}

// Table I, Tree-PLRU / Sequence 2: saturates around 62%, NOT at 100% —
// the leakage floor that limits Algorithm 2 under hyper-threading.
func TestTableITreePLRUSeq2Saturates(t *testing.T) {
	res := RunEvictionStudy(studyCfg(replacement.TreePLRU), InitRandom, Seq2)
	if res.Prob[7] < 0.45 || res.Prob[7] > 0.8 {
		t.Errorf("Tree-PLRU seq2 iter8 = %v, want ~0.62", res.Prob[7])
	}
}

// Table I, sequential initial condition helps Sequence 1 at iteration 1
// (paper: 50.4% random vs 90.9% sequential for Tree-PLRU) — the reason the
// receiver should keep its lines in order (Section IV-C conclusion).
func TestTableISequentialInitHelps(t *testing.T) {
	rnd := RunEvictionStudy(studyCfg(replacement.TreePLRU), InitRandom, Seq1)
	seq := RunEvictionStudy(studyCfg(replacement.TreePLRU), InitSequential, Seq1)
	if seq.Prob[0] <= rnd.Prob[0] {
		t.Errorf("sequential init (%v) should beat random init (%v) at iteration 1",
			seq.Prob[0], rnd.Prob[0])
	}
}

// Bit-PLRU reaches ~100% on Sequence 1 by iteration 8 (paper: 100%).
func TestTableIBitPLRUSeq1EventuallyEvicts(t *testing.T) {
	res := RunEvictionStudy(studyCfg(replacement.BitPLRU), InitRandom, Seq1)
	if res.Prob[7] < 0.9 {
		t.Errorf("Bit-PLRU seq1 iter8 = %v, want ~1", res.Prob[7])
	}
}

func TestRunTableIShape(t *testing.T) {
	var cells []TableICell
	for _, sp := range TableISpecs() {
		cells = append(cells, RunTableISpec(sp, 500, 3)...)
	}
	// 2 conditions x 3 policies x 2 sequences x 4 iterations.
	if len(cells) != 48 {
		t.Fatalf("Table I has %d cells, want 48", len(cells))
	}
	for _, c := range cells {
		if c.Prob < 0 || c.Prob > 1 {
			t.Errorf("cell %+v out of range", c)
		}
		if c.Policy == replacement.TrueLRU && c.Prob != 1 {
			t.Errorf("LRU cell %+v != 1", c)
		}
	}
}

func TestEvictionStudyDeterministic(t *testing.T) {
	a := RunEvictionStudy(studyCfg(replacement.TreePLRU), InitRandom, Seq2)
	b := RunEvictionStudy(studyCfg(replacement.TreePLRU), InitRandom, Seq2)
	for i := range a.Prob {
		if a.Prob[i] != b.Prob[i] {
			t.Fatalf("same seed, different results at iter %d", i)
		}
	}
}

func TestInitCondString(t *testing.T) {
	if InitRandom.String() != "random" || InitSequential.String() != "sequential" {
		t.Error("InitCond strings wrong")
	}
}
