package core

import (
	"testing"

	"repro/internal/sched"
)

func multiCfg(seed uint64) Config {
	return Config{
		Algorithm: Alg1SharedMemory, Mode: sched.SMT,
		Tr: 2000, Ts: 20_000, Seed: seed,
	}
}

func TestNewMultiSetupValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty set list")
		}
	}()
	NewMultiSetup(multiCfg(1), nil)
}

func TestNewMultiSetupRejectsReservedSet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for reserved-set collision")
		}
	}()
	NewMultiSetup(multiCfg(1), []int{5, 63})
}

func TestMultiSetupLanesDistinct(t *testing.T) {
	m := NewMultiSetup(multiCfg(2), []int{3, 9, 17, 30})
	if m.Lanes() != 4 {
		t.Fatalf("lanes = %d", m.Lanes())
	}
	for lane, set := range m.TargetSets {
		for i, l := range m.receiverLines[lane] {
			if got := m.Hier.L1().SetIndex(l.PhysLine); got != set {
				t.Errorf("lane %d line %d in set %d, want %d", lane, i, got, set)
			}
		}
		if got := m.Hier.L1().SetIndex(m.senderLines[lane].PhysLine); got != set {
			t.Errorf("lane %d sender line in set %d, want %d", lane, got, set)
		}
	}
}

func TestMultiSetupAlg1SharesLineZero(t *testing.T) {
	m := NewMultiSetup(multiCfg(3), []int{3, 9})
	for lane := range m.TargetSets {
		if m.senderLines[lane].PhysLine != m.receiverLines[lane][0].PhysLine {
			t.Errorf("lane %d: sender and receiver line 0 differ", lane)
		}
	}
}

// The headline extension property: four lanes transfer four bits per
// symbol with high per-bit accuracy under SMT.
func TestMultiSetTransfersParallelBits(t *testing.T) {
	m := NewMultiSetup(multiCfg(4), []int{3, 9, 17, 30})
	words := [][]byte{
		{1, 0, 1, 0},
		{0, 1, 0, 1},
		{1, 1, 0, 0},
	}
	acc := m.MeasureWordAccuracy(words, 150)
	if acc < 0.85 {
		t.Errorf("parallel decode accuracy %v, want >= 0.85", acc)
	}
}

func TestMultiSetAlg2Works(t *testing.T) {
	cfg := multiCfg(5)
	cfg.Algorithm = Alg2NoSharedMemory
	cfg.D = 1
	m := NewMultiSetup(cfg, []int{4, 11})
	words := [][]byte{{1, 0}, {0, 1}}
	acc := m.MeasureWordAccuracy(words, 120)
	if acc < 0.75 {
		t.Errorf("Algorithm 2 parallel accuracy %v", acc)
	}
}

func TestMultiSetThroughputScalesWithLanes(t *testing.T) {
	// Same wall time, more lanes -> more correctly received bits.
	count := func(sets []int) int {
		m := NewMultiSetup(multiCfg(6), sets)
		word := make([]byte, len(sets))
		for i := range word {
			word[i] = byte(i % 2)
		}
		obs := m.Run([][]byte{word}, true, 100, 1<<40)
		decoded := m.DecodeSweeps(obs)
		ok := 0
		for _, bits := range decoded {
			for lane, b := range bits {
				if b == word[lane] {
					ok++
				}
			}
		}
		return ok
	}
	one := count([]int{3})
	four := count([]int{3, 9, 17, 30})
	if four < 3*one {
		t.Errorf("4 lanes delivered %d correct bits vs %d for 1 lane; expected ~4x", four, one)
	}
}

func TestDecodeSweepsShape(t *testing.T) {
	m := NewMultiSetup(multiCfg(7), []int{3, 9})
	obs := []MultiObservation{{Latencies: []float64{30, 50}}}
	bits := m.DecodeSweeps(obs)
	if len(bits) != 1 || len(bits[0]) != 2 {
		t.Fatalf("decode shape %v", bits)
	}
	// Algorithm 1: fast = 1, slow = 0.
	if bits[0][0] != 1 || bits[0][1] != 0 {
		t.Errorf("decoded %v, want [1 0]", bits[0])
	}
}
