package core

// Section IV notes that "in practice, several sets can be used in parallel
// to increase the transmission rate or to reduce the noise". This file
// implements that extension: a multi-set channel transmitting one bit per
// target set per symbol period, with the receiver sweeping every set each
// sampling period. The Spectre attack of Section VIII is itself a 63-way
// parallel use of the channel; here the parallelism carries payload bits.

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sched"
)

// MultiSetup is a parallel LRU channel over several target sets.
type MultiSetup struct {
	*Setup
	// TargetSets lists the L1 sets carrying one bit each.
	TargetSets []int
	// senderLines[i] is the line the sender touches to put a 1 on set i;
	// receiverLines[i] are the receiver's lines 0..K-1 for set i.
	senderLines   []mem.Addr
	receiverLines [][]mem.Addr
}

// NewMultiSetup builds a parallel channel over the given target sets (they
// must avoid the chaser's reserved set). The embedded Setup provides the
// hierarchy, clocks and the first target set's machinery.
func NewMultiSetup(cfg Config, targetSets []int) *MultiSetup {
	if len(targetSets) == 0 {
		panic("core: NewMultiSetup needs at least one target set")
	}
	cfg = cfg.withDefaults()
	cfg.TargetSet = targetSets[0]
	s := NewSetup(cfg)
	m := &MultiSetup{Setup: s, TargetSets: targetSets}

	prof := cfg.Profile
	for i, set := range targetSets {
		if set == cfg.ReservedSet {
			panic(fmt.Sprintf("core: target set %d collides with the reserved chase set", set))
		}
		if i == 0 {
			m.senderLines = append(m.senderLines, s.SenderLine)
			m.receiverLines = append(m.receiverLines, s.ReceiverLines)
			continue
		}
		switch cfg.Algorithm {
		case Alg1SharedMemory:
			if cfg.SameAddressSpace {
				vs := s.ReceiverAS.LinesForSet(prof.L1Sets, set, prof.L1Ways+1)
				lines := resolveAll(s.ReceiverAS, vs)
				m.receiverLines = append(m.receiverLines, lines)
				m.senderLines = append(m.senderLines, lines[0])
			} else {
				sv, rv := mem.SharedLinesForSet(s.Sys, s.SenderAS, s.ReceiverAS, prof.L1Sets, set, prof.L1Ways+1)
				m.receiverLines = append(m.receiverLines, resolveAll(s.ReceiverAS, rv))
				m.senderLines = append(m.senderLines, s.SenderAS.Resolve(sv[0]))
			}
		case Alg2NoSharedMemory:
			rv := s.ReceiverAS.LinesForSet(prof.L1Sets, set, prof.L1Ways)
			m.receiverLines = append(m.receiverLines, resolveAll(s.ReceiverAS, rv))
			sv := s.SenderAS.LinesForSet(prof.L1Sets, set, 1)
			m.senderLines = append(m.senderLines, s.SenderAS.Resolve(sv[0]))
		}
	}
	return m
}

// Lanes returns the number of parallel bit lanes.
func (m *MultiSetup) Lanes() int { return len(m.TargetSets) }

// MultiObservation is one receiver sweep: a latency per lane.
type MultiObservation struct {
	Latencies []float64
	Wall      uint64
}

// holdWord runs the sender's encode loop for one word until deadline:
// every iteration touches the sender line of each 1-lane (cache hits
// that push the lanes' replacement state) and burns the per-iteration
// address-computation budget.
func (m *MultiSetup) holdWord(e *sched.Env, word []byte, deadline uint64) {
	period := m.Cfg.SenderPeriod
	for e.Now() < deadline {
		issued := false
		for lane, bit := range word {
			if lane >= len(m.senderLines) {
				break
			}
			if bit != 0 {
				e.Access(m.senderLines[lane])
				issued = true
			}
		}
		if !issued {
			e.Busy(period)
		} else {
			e.Busy(period / 2)
		}
	}
}

// senderProgram transmits words (each word = Lanes() bits, one per set),
// holding each word for Ts cycles.
func (m *MultiSetup) senderProgram(words [][]byte, repeat bool) func(*sched.Env) {
	ts := m.Cfg.Ts
	return func(e *sched.Env) {
		for {
			for _, word := range words {
				m.holdWord(e, word, e.Now()+ts)
			}
			if !repeat {
				return
			}
		}
	}
}

// receiverProgram sweeps every lane each sampling period.
func (m *MultiSetup) receiverProgram(out *[]MultiObservation, maxSamples int) func(*sched.Env) {
	d := m.Cfg.D
	tr := m.Cfg.Tr
	return func(e *sched.Env) {
		m.Chaser.WarmUp()
		var tLast uint64
		for maxSamples <= 0 || len(*out) < maxSamples {
			for lane := range m.receiverLines {
				lines := m.receiverLines[lane]
				dd := d
				if dd > len(lines) {
					dd = len(lines)
				}
				for i := 0; i < dd; i++ {
					e.Access(lines[i])
				}
			}
			e.BusyUntil(tLast + tr)
			tLast = e.Now()
			obs := MultiObservation{Latencies: make([]float64, len(m.receiverLines))}
			for lane := range m.receiverLines {
				lines := m.receiverLines[lane]
				dd := d
				if dd > len(lines) {
					dd = len(lines)
				}
				for i := dd; i < len(lines); i++ {
					e.Access(lines[i])
				}
				meas := e.Measure(m.Chaser, lines[0])
				obs.Latencies[lane] = meas.Observed
			}
			obs.Wall = e.Now()
			*out = append(*out, obs)
			if len(*out) >= maxSamples && maxSamples > 0 {
				break
			}
		}
		e.StopAll()
	}
}

// Run transmits words through all lanes and collects receiver sweeps.
func (m *MultiSetup) Run(words [][]byte, repeat bool, maxSamples int, wallLimit uint64) []MultiObservation {
	mach := m.NewMachine()
	var obs []MultiObservation
	for _, l := range m.senderLines {
		m.Hier.Warm(l, ReqSender)
	}
	mach.AddThread("sender", ReqSender, m.senderProgram(words, repeat))
	mach.AddThread("receiver", ReqReceiver, m.receiverProgram(&obs, maxSamples))
	mach.Run(wallLimit)
	return obs
}

// scheduleSenderProgram transmits word j during wall ∈ [j·Ts, (j+1)·Ts)
// on an absolute symbol schedule, then returns. Unlike senderProgram,
// whose per-word deadlines are relative (deadline = now + Ts, so each
// word's encode-loop overshoot accumulates), the absolute schedule
// never drifts: after hundreds of symbols, word j still sits exactly in
// its slot. Streaming transports that index symbols by wall time
// (internal/transport) depend on this.
func (m *MultiSetup) scheduleSenderProgram(words [][]byte) func(*sched.Env) {
	ts := m.Cfg.Ts
	return func(e *sched.Env) {
		for j, word := range words {
			m.holdWord(e, word, uint64(j+1)*ts)
		}
	}
}

// RunSchedule transmits words on the absolute symbol schedule (word j
// held during wall ∈ [j·Ts, (j+1)·Ts)) and collects receiver sweeps
// until wallLimit. Unlike Run it also starts the config's NoiseThreads
// background processes, so noisy operating points can be measured on
// the parallel channel too.
func (m *MultiSetup) RunSchedule(words [][]byte, wallLimit uint64) []MultiObservation {
	mach := m.NewMachine()
	var obs []MultiObservation
	for _, l := range m.senderLines {
		m.Hier.Warm(l, ReqSender)
	}
	mach.AddThread("sender", ReqSender, m.scheduleSenderProgram(words))
	mach.AddThread("receiver", ReqReceiver, m.receiverProgram(&obs, 0))
	for i := 0; i < m.Cfg.NoiseThreads; i++ {
		mach.AddThread("noise", ReqOther, m.NoiseProgram())
	}
	mach.Run(wallLimit)
	return obs
}

// DecodeSweeps turns raw sweeps into one bit per lane per sweep using the
// fixed profile threshold and the protocol polarity.
func (m *MultiSetup) DecodeSweeps(obs []MultiObservation) [][]byte {
	th := m.FixedThreshold()
	hitIsOne := m.HitMeansOne()
	out := make([][]byte, len(obs))
	for i, o := range obs {
		bits := make([]byte, len(o.Latencies))
		for lane, lat := range o.Latencies {
			bits[lane] = ClassifyBit(lat, th, hitIsOne)
		}
		out[i] = bits
	}
	return out
}

// MeasureWordAccuracy sends each word for Ts cycles and reports the
// fraction of (sweep, lane) decodes that match the word active at the
// sweep's wall time — a throughput-oriented quality metric for the
// parallel channel.
func (m *MultiSetup) MeasureWordAccuracy(words [][]byte, samples int) float64 {
	obs := m.Run(words, true, samples, m.Cfg.Ts*uint64(len(words)*8+4))
	decoded := m.DecodeSweeps(obs)
	if len(decoded) == 0 {
		return 0
	}
	ok, total := 0, 0
	for i, o := range obs {
		word := words[(o.Wall/m.Cfg.Ts)%uint64(len(words))]
		for lane, bit := range decoded[i] {
			if lane >= len(word) {
				break
			}
			total++
			if bit == word[lane] {
				ok++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}
