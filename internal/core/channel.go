// Package core implements the paper's contribution: timing-based side and
// covert channels through cache LRU replacement state.
//
// Three protocol pieces map directly to the paper:
//
//   - Algorithm 1 — the LRU channel with shared memory: sender and receiver
//     share the physical cache line "line 0" (e.g. via a shared library);
//     the receiver primes the set with lines 0..d-1, the sender encodes a 1
//     by touching line 0 (a cache HIT — the novelty of the attack), and the
//     receiver decodes by accessing lines d..N and timing line 0.
//
//   - Algorithm 2 — the LRU channel without shared memory: the sender owns
//     a private line N mapping to the same set; the receiver accesses only
//     its own lines 0..N-1 and decodes by timing line 0, which gets evicted
//     exactly when the sender's access pushed the set's LRU state forward.
//
//   - Algorithm 3 — the covert-channel framing: the sender holds each bit
//     for Ts cycles; the receiver samples every Tr cycles using the
//     pointer-chase probe of Section IV-D.
//
// The package also contains the Table I eviction-probability study and the
// encoding-cost measurements that feed Tables IV and V.
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/timing"
	"repro/internal/uarch"
)

// Algorithm selects the channel protocol.
type Algorithm int

// The two LRU channel protocols.
const (
	// Alg1SharedMemory is Algorithm 1: sender and receiver share line 0.
	Alg1SharedMemory Algorithm = iota + 1
	// Alg2NoSharedMemory is Algorithm 2: disjoint address spaces.
	Alg2NoSharedMemory
)

// String names the protocol.
func (a Algorithm) String() string {
	switch a {
	case Alg1SharedMemory:
		return "Algorithm 1 (shared memory)"
	case Alg2NoSharedMemory:
		return "Algorithm 2 (no shared memory)"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Requestor ids used for cache counter attribution throughout the
// experiments.
const (
	ReqSender   = 0
	ReqReceiver = 1
	ReqOther    = 2
)

// Config parameterizes a channel experiment.
type Config struct {
	Profile   uarch.Profile
	Algorithm Algorithm
	Mode      sched.Mode

	// L1Policy defaults to Tree-PLRU, the policy of the parts in
	// Table III.
	L1Policy replacement.Kind

	// D is the receiver's split parameter: lines 0..D-1 are accessed in
	// the initialization phase, the rest in the decoding phase.
	D int
	// Ts is the sender's per-bit holding time in cycles (Algorithm 3).
	Ts uint64
	// Tr is the receiver's sampling period in cycles.
	Tr uint64

	// TargetSet is the L1 set carrying the channel (default 5).
	TargetSet int
	// ReservedSet holds the pointer-chase list (default: last set).
	ReservedSet int
	// ChainLen is the pointer-chase list length (default 7).
	ChainLen int

	// SameAddressSpace runs sender and receiver as two threads of one
	// process (the pthreads arrangement of Section VI-B, which is how
	// Algorithm 1 stays viable on AMD despite the utag predictor).
	SameAddressSpace bool

	// SenderPeriod is the cycle cost of one sender encode-loop iteration
	// (address computation + the access). Defaults: 31 cycles under SMT
	// (Table V), 50_000 under time-slicing (where within-slice repeats
	// are idempotent and only inflate event counts).
	SenderPeriod uint64

	// Quantum and CtxSwitch override the time-sliced scheduler defaults.
	Quantum   uint64
	CtxSwitch uint64

	// NoiseThreads adds background processes that touch random lines
	// (including the target set) every NoisePeriod cycles.
	NoiseThreads int
	NoisePeriod  uint64

	// Prefetcher enables an L1 prefetcher model (off for the plain
	// channel experiments; the Spectre experiments turn it on).
	Prefetcher hier.PrefetcherKind

	// PartitionLocked / LockReplacementState configure the PL secure
	// cache on the L1 (Section IX-B evaluation).
	PartitionLocked      bool
	LockReplacementState bool

	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Profile.Name == "" {
		c.Profile = uarch.SandyBridge()
	}
	if c.Algorithm == 0 {
		c.Algorithm = Alg1SharedMemory
	}
	if c.L1Policy == 0 { // replacement.TrueLRU is 0; default Tree-PLRU
		c.L1Policy = replacement.TreePLRU
	}
	if c.D == 0 {
		if c.Algorithm == Alg1SharedMemory {
			c.D = c.Profile.L1Ways
		} else {
			c.D = c.Profile.L1Ways / 2
		}
	}
	if c.Ts == 0 {
		c.Ts = 6000
	}
	if c.Tr == 0 {
		c.Tr = 600
	}
	if c.TargetSet == 0 {
		c.TargetSet = 5
	}
	if c.ReservedSet == 0 {
		c.ReservedSet = c.Profile.L1Sets - 1
	}
	if c.SenderPeriod == 0 {
		if c.Mode == sched.TimeSliced {
			c.SenderPeriod = 50_000
		} else {
			c.SenderPeriod = 31
		}
	}
	if c.NoisePeriod == 0 {
		c.NoisePeriod = 5_000
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Setup is an instantiated channel: hierarchy, address spaces, resolved
// lines and the receiver's measurement apparatus.
type Setup struct {
	Cfg  Config
	Sys  *mem.System
	Hier *hier.Hierarchy
	TSC  *timing.TSC
	RNG  *rng.Rand

	SenderAS   *mem.AddressSpace
	ReceiverAS *mem.AddressSpace

	// ReceiverLines are the receiver's lines 0..K-1 in its own virtual
	// addresses (K = ways+1 for Algorithm 1, ways for Algorithm 2).
	ReceiverLines []mem.Addr
	// SenderLine is the line the sender touches to encode a 1: the alias
	// of line 0 under Algorithm 1, or the private line N under
	// Algorithm 2.
	SenderLine mem.Addr

	Chaser *timing.Chaser
}

// NewSetup builds all machinery for a channel experiment.
func NewSetup(cfg Config) *Setup { return newSetup(cfg, nil) }

// NewSetupW is NewSetup with a worker Workspace: the hierarchy — the
// expensive part of a machine, dominated by its line slabs — is pooled
// per (worker, geometry) and Reset between cells instead of being
// reconstructed. The pooled machine's generator is SplitInto the state
// a fresh construction would have given it, so a Workspace-built setup
// is bit-identical to a fresh one. ws may be nil.
func NewSetupW(cfg Config, ws *engine.Workspace) *Setup { return newSetup(cfg, ws) }

// pooledMachine is the Workspace entry for one hierarchy geometry: the
// hierarchy plus the generator object it was constructed around (kept
// so internal references survive reseeding).
type pooledMachine struct {
	h *hier.Hierarchy
	r *rng.Rand
}

func newSetup(cfg Config, ws *engine.Workspace) *Setup {
	cfg = cfg.withDefaults()
	prof := cfg.Profile
	r := rng.New(cfg.Seed)
	s := &Setup{Cfg: cfg, RNG: r}

	hcfg := hier.Config{
		Profile:  prof,
		L1Policy: cfg.L1Policy, L2Policy: replacement.TreePLRU,
		Prefetcher:             cfg.Prefetcher,
		PartitionLockedL1:      cfg.PartitionLocked,
		LockReplacementStateL1: cfg.LockReplacementState,
		WithLLC:                true,
	}
	if ws == nil {
		hcfg.RNG = r.Split()
		s.Hier = hier.New(hcfg)
	} else {
		key := fmt.Sprintf("core.machine/%s/%dx%d/%v/%v/pl=%v/lrs=%v",
			prof.Name, prof.L1Sets, prof.L1Ways, cfg.L1Policy, cfg.Prefetcher,
			cfg.PartitionLocked, cfg.LockReplacementState)
		m := ws.Get(key, func() any {
			hr := rng.New(0)
			hcfg.RNG = hr
			return &pooledMachine{h: hier.New(hcfg), r: hr}
		}).(*pooledMachine)
		r.SplitInto(m.r)
		m.h.Reset()
		s.Hier = m.h
	}
	s.TSC = timing.NewTSC(prof, r.Split())
	s.Sys = mem.NewSystem(prof.LineSize)

	s.ReceiverAS = s.Sys.NewAddressSpace()
	if cfg.SameAddressSpace {
		s.SenderAS = s.ReceiverAS
	} else {
		s.SenderAS = s.Sys.NewAddressSpace()
	}

	ways := prof.L1Ways
	switch cfg.Algorithm {
	case Alg1SharedMemory:
		// Lines 0..N shared; the receiver uses all N+1, the sender
		// uses (its alias of) line 0.
		if cfg.SameAddressSpace {
			vs := s.ReceiverAS.LinesForSet(prof.L1Sets, cfg.TargetSet, ways+1)
			s.ReceiverLines = resolveAll(s.ReceiverAS, vs)
			s.SenderLine = s.ReceiverLines[0]
		} else {
			sv, rv := mem.SharedLinesForSet(s.Sys, s.SenderAS, s.ReceiverAS, prof.L1Sets, cfg.TargetSet, ways+1)
			s.ReceiverLines = resolveAll(s.ReceiverAS, rv)
			s.SenderLine = s.SenderAS.Resolve(sv[0])
		}
	case Alg2NoSharedMemory:
		// Receiver's private lines 0..N-1; sender's private line N.
		rv := s.ReceiverAS.LinesForSet(prof.L1Sets, cfg.TargetSet, ways)
		s.ReceiverLines = resolveAll(s.ReceiverAS, rv)
		sv := s.SenderAS.LinesForSet(prof.L1Sets, cfg.TargetSet, 1)
		s.SenderLine = s.SenderAS.Resolve(sv[0])
	default:
		panic(fmt.Sprintf("core: unknown algorithm %d", int(cfg.Algorithm)))
	}

	s.Chaser = timing.NewChaser(s.Hier, s.ReceiverAS, cfg.ReservedSet, cfg.ChainLen, ReqReceiver, s.TSC)
	return s
}

func resolveAll(as *mem.AddressSpace, vs []uint64) []mem.Addr {
	out := make([]mem.Addr, len(vs))
	for i, v := range vs {
		out[i] = as.Resolve(v)
	}
	return out
}

// NewMachine builds a scheduler machine over the setup's hierarchy.
func (s *Setup) NewMachine() *sched.Machine {
	return sched.New(sched.Config{
		Hier: s.Hier, TSC: s.TSC, RNG: s.RNG.Split(),
		Mode:    s.Cfg.Mode,
		Quantum: s.Cfg.Quantum, CtxSwitch: s.Cfg.CtxSwitch,
	})
}

// decodeEnd returns the exclusive end index of the receiver's decode loop:
// Algorithm 1 walks lines d..N (N+1 total with the init phase), Algorithm 2
// walks d..N-1 (N total).
func (s *Setup) decodeEnd() int { return len(s.ReceiverLines) }

// HitMeansOne reports the decode polarity: under Algorithm 1 a FAST access
// to line 0 (a hit) means the sender sent 1; under Algorithm 2 a SLOW
// access (a miss) means 1.
func (s *Setup) HitMeansOne() bool { return s.Cfg.Algorithm == Alg1SharedMemory }
