package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/replacement"
	"repro/internal/rng"
)

// This file reproduces the Table I study of Section IV-C: the probability
// that line 0 is evicted by the receiver's access pattern under PLRU
// policies, as a function of the initial condition of the set and the
// number of loop iterations.
//
// Sequence 1 (Algorithm 1 sending m=0): access lines 0..8 in order.
// Sequence 2 (Algorithm 2 sending m=1, hyper-threaded): access lines 0..7
// in order with the sender's line x (= line 8) randomly inserted after each
// element with probability 1/2 (at least once per pass).

// InitCond is the warm-up condition of the target set before the measured
// loop.
type InitCond int

// Initial conditions of Table I.
const (
	// InitRandom warms the set with accesses to lines 0..7 and other
	// lines in random order.
	InitRandom InitCond = iota
	// InitSequential warms the set with Sequence 2 passes (in-order
	// access with random insertions), the condition the paper recommends
	// the receiver establish.
	InitSequential
)

// String names the condition.
func (c InitCond) String() string {
	if c == InitRandom {
		return "random"
	}
	return "sequential"
}

// Sequence identifies the measured access pattern.
type Sequence int

// Access sequences of Table I.
const (
	Seq1 Sequence = 1
	Seq2 Sequence = 2
)

// EvictionStudyConfig parameterizes the Table I simulation.
type EvictionStudyConfig struct {
	Policy replacement.Kind
	Ways   int // default 8
	// Trials per (condition, sequence, iteration) cell; default 10000 to
	// match the paper.
	Trials int
	// MaxIterations bounds the loop; the paper reports 1, 2, 3 and >= 8.
	MaxIterations int
	Seed          uint64
}

func (c EvictionStudyConfig) withDefaults() EvictionStudyConfig {
	if c.Ways == 0 {
		c.Ways = 8
	}
	if c.Trials == 0 {
		c.Trials = 10_000
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// EvictionStudyResult holds P(line 0 evicted) per iteration (1-indexed:
// Prob[0] is after the first pass).
type EvictionStudyResult struct {
	Cfg  EvictionStudyConfig
	Init InitCond
	Seq  Sequence
	Prob []float64
}

// singleSetCache builds a one-set cache so physical line i is "line i" of
// the studied set.
func singleSetCache(cfg EvictionStudyConfig, r *rng.Rand) *cache.Cache {
	return cache.New(cache.Config{
		Name: "study", Sets: 1, Ways: cfg.Ways, LineSize: 64,
		Policy: cfg.Policy, RNG: r,
	})
}

func access(c *cache.Cache, line int) {
	c.Access(cache.Request{PhysLine: uint64(line)})
}

// warmUp establishes the initial condition.
func warmUp(c *cache.Cache, cond InitCond, ways int, r *rng.Rand) {
	switch cond {
	case InitRandom:
		// Random accesses over lines 0..ways (the set's lines plus
		// line x), enough to fill and scramble the set.
		for i := 0; i < ways*5; i++ {
			access(c, r.Intn(ways+1))
		}
	case InitSequential:
		// Two passes of Sequence 2.
		for p := 0; p < 2; p++ {
			runSequence2(c, ways, r)
		}
	}
}

// runSequence1 accesses lines 0..ways in order (ways+1 distinct lines).
func runSequence1(c *cache.Cache, ways int) {
	for i := 0; i <= ways; i++ {
		access(c, i)
	}
}

// runSequence2 accesses lines 0..ways-1 in order, inserting line x (= line
// `ways`) after each with probability 1/2, at least once per pass.
func runSequence2(c *cache.Cache, ways int, r *rng.Rand) {
	forced := r.Intn(ways) // position where x is forced if never inserted
	inserted := false
	for i := 0; i < ways; i++ {
		access(c, i)
		if r.Bool(0.5) {
			access(c, ways)
			inserted = true
		} else if !inserted && i == forced {
			access(c, ways)
			inserted = true
		}
	}
}

// appendLine appends one study access (requestor 0, plain load).
func appendLine(reqs []cache.Request, line int) []cache.Request {
	return append(reqs, cache.Request{PhysLine: uint64(line)})
}

// appendSequence1 materializes Sequence 1: lines 0..ways in order.
func appendSequence1(reqs []cache.Request, ways int) []cache.Request {
	for i := 0; i <= ways; i++ {
		reqs = appendLine(reqs, i)
	}
	return reqs
}

// appendSequence2 materializes one Sequence 2 pass, drawing from r in
// the exact order runSequence2 does (the accesses themselves never
// consume r for the deterministic policies this path serves, so
// materializing first preserves the study's draw sequence).
func appendSequence2(reqs []cache.Request, ways int, r *rng.Rand) []cache.Request {
	forced := r.Intn(ways)
	inserted := false
	for i := 0; i < ways; i++ {
		reqs = appendLine(reqs, i)
		if r.Bool(0.5) {
			reqs = appendLine(reqs, ways)
			inserted = true
		} else if !inserted && i == forced {
			reqs = appendLine(reqs, ways)
			inserted = true
		}
	}
	return reqs
}

// appendWarmUp materializes the initial condition.
func appendWarmUp(reqs []cache.Request, cond InitCond, ways int, r *rng.Rand) []cache.Request {
	switch cond {
	case InitRandom:
		for i := 0; i < ways*5; i++ {
			reqs = appendLine(reqs, r.Intn(ways+1))
		}
	case InitSequential:
		reqs = appendSequence2(reqs, ways, r)
		reqs = appendSequence2(reqs, ways, r)
	}
	return reqs
}

// RunEvictionStudy measures P(line 0 evicted) after each loop iteration of
// the given sequence under the given initial condition. One cache is
// built for the whole study and returned to power-on state between
// trials — at the paper's 10,000 trials per cell, per-trial machine
// construction used to dominate the study's allocation profile.
//
// For the deterministic policies, each trial phase is materialized
// into a request buffer and executed through cache.AccessBatch: the
// study is the hottest per-access loop in the repo (Table I alone is
// ~1.5M accesses per run) and the batch path cuts its per-access
// dispatch. The Random policy draws victims from r between accesses,
// so it keeps the interleaved per-access path.
func RunEvictionStudy(cfg EvictionStudyConfig, cond InitCond, seq Sequence) EvictionStudyResult {
	cfg = cfg.withDefaults()
	if seq != Seq1 && seq != Seq2 {
		panic(fmt.Sprintf("core: unknown sequence %d", int(seq)))
	}
	r := rng.New(cfg.Seed ^ uint64(cond)<<8 ^ uint64(seq)<<16 ^ uint64(cfg.Policy)<<24)
	evicted := make([]int, cfg.MaxIterations)
	c := singleSetCache(cfg, r)

	if cfg.Policy == replacement.Random {
		for trial := 0; trial < cfg.Trials; trial++ {
			c.Reset()
			warmUp(c, cond, cfg.Ways, r)
			for it := 0; it < cfg.MaxIterations; it++ {
				if seq == Seq1 {
					runSequence1(c, cfg.Ways)
				} else {
					runSequence2(c, cfg.Ways, r)
				}
				if !c.Contains(0) {
					evicted[it]++
				}
			}
		}
	} else {
		// Sequence 1 is draw-free: compile it once, replay per iteration.
		var seq1 []cache.Request
		if seq == Seq1 {
			seq1 = appendSequence1(nil, cfg.Ways)
		}
		buf := make([]cache.Request, 0, 5*cfg.Ways+8)
		for trial := 0; trial < cfg.Trials; trial++ {
			c.Reset()
			buf = appendWarmUp(buf[:0], cond, cfg.Ways, r)
			c.AccessBatch(buf, nil)
			for it := 0; it < cfg.MaxIterations; it++ {
				batch := seq1
				if seq == Seq2 {
					buf = appendSequence2(buf[:0], cfg.Ways, r)
					batch = buf
				}
				c.AccessBatch(batch, nil)
				if !c.Contains(0) {
					evicted[it]++
				}
			}
		}
	}

	res := EvictionStudyResult{Cfg: cfg, Init: cond, Seq: seq, Prob: make([]float64, cfg.MaxIterations)}
	for i, n := range evicted {
		res.Prob[i] = float64(n) / float64(cfg.Trials)
	}
	return res
}

// TableICell identifies one data cell of Table I.
type TableICell struct {
	Init   InitCond
	Policy replacement.Kind
	Seq    Sequence
	// Iteration is 1, 2, 3 or 8 (standing for ">= 8").
	Iteration int
	Prob      float64
}

// TableISpec identifies one eviction study of the Table I grid (one
// (condition, policy, sequence) triple, which yields four table cells —
// iterations 1, 2, 3 and >= 8).
type TableISpec struct {
	Init   InitCond
	Policy replacement.Kind
	Seq    Sequence
}

// String names the spec for progress reporting.
func (sp TableISpec) String() string {
	return fmt.Sprintf("tableI/%v/%v/seq%d", sp.Init, sp.Policy, int(sp.Seq))
}

// TableISpecs enumerates the full Table I grid in the paper's row
// order. The paper reports a single LRU column for both sequences (they
// agree); both are emitted.
func TableISpecs() []TableISpec {
	var specs []TableISpec
	for _, cond := range []InitCond{InitRandom, InitSequential} {
		for _, pol := range []replacement.Kind{replacement.TrueLRU, replacement.TreePLRU, replacement.BitPLRU} {
			for _, seq := range []Sequence{Seq1, Seq2} {
				specs = append(specs, TableISpec{Init: cond, Policy: pol, Seq: seq})
			}
		}
	}
	return specs
}

// RunTableISpec runs one grid study and expands it into its four table
// cells. All randomness derives from seed (RunEvictionStudy mixes in
// the spec itself), so the studies are independent and can execute in
// any order or in parallel.
func RunTableISpec(sp TableISpec, trials int, seed uint64) []TableICell {
	res := RunEvictionStudy(EvictionStudyConfig{
		Policy: sp.Policy, Trials: trials, Seed: seed,
	}, sp.Init, sp.Seq)
	cells := make([]TableICell, 0, 4)
	for _, it := range []int{1, 2, 3, 8} {
		cells = append(cells, TableICell{
			Init: sp.Init, Policy: sp.Policy, Seq: sp.Seq,
			Iteration: it, Prob: res.Prob[it-1],
		})
	}
	return cells
}
