package cache

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/replacement"
	"repro/internal/rng"
)

// The batch path's contract is bit-identity: AccessBatch must be
// indistinguishable from per-access Access calls in every observable —
// results, aggregate and per-requestor Stats, line/replacement state,
// RNG evolution. The fuzzer drives both paths with the same request
// stream over every policy (and over the feature configs that take the
// generic loop) and compares everything.

// batchConfigs enumerates the config corners the fuzzer exercises for
// one policy: the plain fast-loop config, and the feature configs that
// route through the generic per-access loop.
func batchConfigs(pol replacement.Kind, ways int) []Config {
	base := Config{Name: "t", Sets: 4, Ways: ways, LineSize: 64, Policy: pol}
	cfgs := []Config{base}
	pl := base
	pl.PartitionLocked = true
	cfgs = append(cfgs, pl)
	ut := base
	ut.TrackUtags = true
	cfgs = append(cfgs, ut)
	lrs := base
	lrs.LockReplacementState = true
	lrs.PartitionLocked = true
	cfgs = append(cfgs, lrs)
	return cfgs
}

// decodeBatch turns fuzz bytes into a request stream: low bits pick the
// line (a few sets' worth plus tag aliases), bit 6 the requestor, and a
// sparse marker turns an access into a lock op (meaningful only under
// the PL configs, a plain load flag-flip otherwise).
func decodeBatch(data []byte) []Request {
	reqs := make([]Request, 0, len(data))
	for _, b := range data {
		req := Request{
			PhysLine:  uint64(b & 0x1f),
			Requestor: int(b>>5) & 1,
		}
		req.LinearLine = req.PhysLine
		if b >= 0xf8 {
			req.Op = OpLock
		} else if b >= 0xf0 {
			req.Op = OpUnlock
		}
		reqs = append(reqs, req)
	}
	return reqs
}

func snapshotState(c *Cache) string {
	var buf bytes.Buffer
	for set := 0; set < c.Sets(); set++ {
		fmt.Fprintf(&buf, "set %d: %s |", set, c.PolicyState(set))
		for w := 0; w < c.Ways(); w++ {
			fmt.Fprintf(&buf, " %v", c.lines[set*c.Ways()+w])
		}
		buf.WriteByte('\n')
	}
	fmt.Fprintf(&buf, "stats %+v perReq %+v\n", c.stats, c.perReq)
	return buf.String()
}

func FuzzBatchEquivalence(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 33, 40, 0xf9, 3})
	f.Add(uint64(7), []byte{0xff, 0xf0, 1, 1, 1, 64, 65, 66, 67})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		reqs := decodeBatch(data)
		for _, pol := range replacement.Kinds() {
			for _, ways := range []int{4, 8, 16} {
				for _, cfg := range batchConfigs(pol, ways) {
					cfg := cfg
					ref := cfg
					if pol == replacement.Random {
						cfg.RNG = rng.New(seed)
						ref.RNG = rng.New(seed)
					}
					cb := New(cfg)
					cs := New(ref)

					want := make([]Result, len(reqs))
					for i, req := range reqs {
						want[i] = cs.Access(req)
					}
					got := make([]Result, len(reqs))
					cb.AccessBatch(reqs, got)

					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%v ways=%d cfg=%+v: result %d diverges: batch %+v, serial %+v",
								pol, ways, cfg, i, got[i], want[i])
						}
					}
					if gs, ws := snapshotState(cb), snapshotState(cs); gs != ws {
						t.Fatalf("%v ways=%d cfg=%+v: state diverges:\nbatch:\n%s\nserial:\n%s",
							pol, ways, cfg, gs, ws)
					}
					if pol == replacement.Random && cfg.RNG.Uint64() != ref.RNG.Uint64() {
						t.Fatalf("%v ways=%d: RNG draw order diverges", pol, ways)
					}
				}
			}
		}
	})
}

// TestAccessBatchNilOut pins the result-discarding mode: state and
// stats evolve exactly as with an output slice.
func TestAccessBatchNilOut(t *testing.T) {
	reqs := decodeBatch([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 64, 65, 3, 2, 1})
	a := New(Config{Name: "t", Sets: 4, Ways: 4, LineSize: 64, Policy: replacement.TreePLRU})
	b := New(Config{Name: "t", Sets: 4, Ways: 4, LineSize: 64, Policy: replacement.TreePLRU})
	a.AccessBatch(reqs, make([]Result, len(reqs)))
	b.AccessBatch(reqs, nil)
	if as, bs := snapshotState(a), snapshotState(b); as != bs {
		t.Fatalf("nil-out state diverges:\nwith out:\n%s\nnil out:\n%s", as, bs)
	}
}

// The batch loop must stay off the allocator once the per-requestor
// table covers the batch's requestors — it is the innermost loop of
// the trace-compiled drivers.
func TestAccessBatchZeroAllocs(t *testing.T) {
	reqs := decodeBatch([]byte{0, 1, 2, 3, 4, 5, 6, 7, 33, 40, 41, 42, 64, 65, 66, 67, 8, 9, 10, 11})
	out := make([]Result, len(reqs))
	for _, pol := range replacement.Kinds() {
		t.Run(pol.String(), func(t *testing.T) {
			c := New(allocConfig(pol))
			c.AccessBatch(reqs, out) // warm the requestor table
			if got := testing.AllocsPerRun(200, func() {
				c.AccessBatch(reqs, out)
			}); got != 0 {
				t.Errorf("AccessBatch allocates %.1f allocs/op, want 0", got)
			}
			if got := testing.AllocsPerRun(200, func() {
				c.AccessBatch(reqs, nil)
			}); got != 0 {
				t.Errorf("AccessBatch(nil out) allocates %.1f allocs/op, want 0", got)
			}
		})
	}
}
