// Package cache implements a parametric set-associative cache with
// pluggable replacement policies, the substrate every experiment in the
// paper runs on.
//
// The model is load-oriented (the attacks only issue loads; stores add
// nothing to the channel) and tracks, per line: validity, the physical tag,
// a lock bit (for the Partition-Locked secure cache of Section IX-B), a
// linear-address micro-tag (for the AMD Zen way-predictor model of Section
// VI-B), and the requestor that installed the line (for the per-process
// performance-counter tables).
//
// Addresses are handled as line numbers: physical address >> log2(lineSize).
// The set index is lineNumber mod sets; the tag is lineNumber / sets. Set
// counts must be powers of two (every geometry in the paper is), so both
// reduce to a mask and a shift. For the paper's 32 KiB 8-way 64-set L1D,
// virtual and physical index bits coincide (VIPT), which internal/mem
// depends on.
//
// Access and install are allocation-free: lines live in one contiguous
// slab, replacement state in a packed replacement.SetArray, and the
// per-requestor counter table is pre-sized. The experiment engine runs
// this method hundreds of millions of times per sweep; alloc_test.go
// pins 0 allocs/op for both the hit and the miss path.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/replacement"
	"repro/internal/rng"
)

// Op distinguishes the access types of the PL cache flow chart (Figure 10).
// Plain loads use OpLoad; OpLock and OpUnlock additionally set or clear the
// line's lock bit.
type Op int

// Access operations.
const (
	OpLoad Op = iota
	OpLock
	OpUnlock
)

// Config parameterizes a cache level.
type Config struct {
	Name     string
	Sets     int // must be a power of two
	Ways     int
	LineSize int // bytes; must be a power of two

	Policy replacement.Kind
	// RNG is required when Policy is replacement.Random; it is also used
	// for nothing else, so deterministic policies may pass nil.
	RNG *rng.Rand

	// PartitionLocked enables the PL-cache miss behaviour: a miss whose
	// chosen victim is locked does not replace (the access is handled
	// uncached / bypassed).
	PartitionLocked bool
	// LockReplacementState enables the paper's fix to the PL cache (the
	// blue boxes of Figure 10): hits to locked lines do not update the
	// replacement state, and bypassed misses do not either.
	LockReplacementState bool
	// TrackUtags enables the AMD linear-address utag model: each line
	// remembers the linear line number that last touched it, and a hit
	// through a different linear address is flagged (the way predictor
	// misses, costing L1-miss latency even though the data is present).
	TrackUtags bool
}

func (c Config) validate() error {
	if c.Sets < 1 || c.Ways < 1 {
		return fmt.Errorf("cache %q: sets and ways must be >= 1 (got %d, %d)", c.Name, c.Sets, c.Ways)
	}
	if c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d is not a power of two", c.Name, c.Sets)
	}
	if c.LineSize < 1 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d is not a power of two", c.Name, c.LineSize)
	}
	return nil
}

// Request describes one access.
type Request struct {
	PhysLine   uint64 // physical line number (physical address / line size)
	LinearLine uint64 // linear (virtual) line number, used only by the utag model
	Requestor  int    // small non-negative id; used for counter attribution
	Op         Op
}

// Result reports what an access did.
type Result struct {
	Hit bool
	// UtagMiss is set on hits made through a linear address whose hash
	// differs from the line's stored utag: the data was present but the
	// way predictor forced a slow path, so the observable latency is that
	// of an L1 miss (Section VI-B).
	UtagMiss bool
	Way      int
	// Evicted reports the physical line number displaced by a fill.
	Evicted  uint64
	DidEvict bool
	// Bypassed is set when a PL-cache miss found its victim locked and
	// therefore did not fill.
	Bypassed bool
}

// Stats counts cache events, overall and attributed per requestor.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// CrossEvictions counts the subset of Evictions that displaced a
	// line installed by a DIFFERENT requestor — the inter-process
	// interference signature a prime-and-probe attacker cannot avoid
	// (every probe refill displaces a victim line), which the
	// detection monitor thresholds on.
	CrossEvictions uint64
	Bypasses       uint64
	UtagMisses     uint64
}

// Add accumulates o into s field-wise. The set-partitioned executor
// uses it to fold per-partition counter blocks back together.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.CrossEvictions += o.CrossEvictions
	s.Bypasses += o.Bypasses
	s.UtagMisses += o.UtagMisses
}

// EmitEvents exports the counters as unprefixed named events — the
// metrics.Source interface, satisfied structurally so this package
// stays free of a metrics import. Wrap with metrics.Prefixed("l1d", s)
// to place the counters in a level's event namespace.
func (s Stats) EmitEvents(emit func(string, float64)) {
	emit("accesses", float64(s.Accesses))
	emit("hits", float64(s.Hits))
	emit("misses", float64(s.Misses))
	emit("evictions", float64(s.Evictions))
	emit("cross_evictions", float64(s.CrossEvictions))
	emit("bypasses", float64(s.Bypasses))
	emit("utag_misses", float64(s.UtagMisses))
}

// MissRate returns Misses/Accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// line flag bits.
const (
	lineValid  = 1 << 0
	lineLocked = 1 << 1
)

// line is one cache line's metadata. It is deliberately 16 bytes: the
// line slab is the bulk of a simulated machine's memory, it is zeroed
// wholesale on every Reset (the per-cell cost the trial loops pay), and
// a whole set of 8 ways fits two cache lines of host memory during the
// lookup scan.
type line struct {
	tag   uint64
	utag  uint8 // hash of the last linear line number that touched this line
	flags uint8 // lineValid | lineLocked
	owner int32
}

// reqStatsPrealloc is the initial per-requestor counter capacity. The
// experiments use a handful of small ids (sender, receiver, noise
// threads); pre-sizing keeps reqStats off the allocator on the hot path.
const reqStatsPrealloc = 8

// Cache is one level of set-associative cache.
type Cache struct {
	cfg Config

	// lines is the contiguous line slab: the line at (set, way) lives
	// at lines[set*ways+way].
	lines []line
	// repl holds the packed replacement state of every set.
	repl *replacement.SetArray

	setMask  uint64 // sets-1
	setShift uint   // log2(sets)
	ways     int

	stats  Stats
	perReq []Stats
}

// New builds a cache from cfg. It panics on invalid configuration, which is
// always a programming error in this codebase (configs are static).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:      cfg,
		lines:    make([]line, cfg.Sets*cfg.Ways),
		repl:     replacement.NewSetArray(cfg.Policy, cfg.Sets, cfg.Ways, cfg.RNG),
		setMask:  uint64(cfg.Sets - 1),
		setShift: uint(bits.TrailingZeros64(uint64(cfg.Sets))),
		ways:     cfg.Ways,
		perReq:   make([]Stats, 0, reqStatsPrealloc),
	}
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Sets and Ways report geometry.
func (c *Cache) Sets() int { return c.cfg.Sets }

// Ways reports the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// SetIndex returns the set that physLine maps to.
func (c *Cache) SetIndex(physLine uint64) int {
	return int(physLine & c.setMask)
}

func (c *Cache) tagOf(physLine uint64) uint64 {
	return physLine >> c.setShift
}

func (c *Cache) lineNumber(set int, tag uint64) uint64 {
	return tag<<c.setShift | uint64(set)
}

// set returns the line slab row for one set.
func (c *Cache) set(set int) []line {
	return c.lines[set*c.ways : set*c.ways+c.ways]
}

// utagHash models the linear-address micro-tag hash of the AMD L1 way
// predictor. The real hash is undocumented; any deterministic mixing of the
// linear line number preserves the behaviour the paper exploits (distinct
// linear addresses virtually never collide).
func utagHash(linearLine uint64) uint8 {
	x := linearLine * 0x9e3779b97f4a7c15
	return uint8(x ^ x>>29)
}

func (c *Cache) reqStats(requestor int) *Stats {
	return growStats(&c.perReq, requestor)
}

// growStats extends a per-requestor counter table to cover requestor
// and returns its entry. The returned pointer is invalidated by any
// later growth of the same table.
func growStats(perReq *[]Stats, requestor int) *Stats {
	for len(*perReq) <= requestor {
		*perReq = append(*perReq, Stats{})
	}
	return &(*perReq)[requestor]
}

// Access performs one access, updating line state, replacement state, lock
// bits and counters, and reports what happened. On a miss the caller (the
// hierarchy) is responsible for having fetched the data from the next
// level; this method installs the line unless bypassed.
func (c *Cache) Access(req Request) Result {
	if req.Requestor < 0 {
		panic("cache: negative requestor")
	}
	return c.accessInto(req, &c.stats, c.reqStats(req.Requestor))
}

// accessInto is the full access path, counting events into st and rs
// (the aggregate and per-requestor blocks — the cache's own under
// Access, a partition's private pair under AccessBatchStats).
func (c *Cache) accessInto(req Request, st, rs *Stats) Result {
	set := int(req.PhysLine & c.setMask)
	tag := req.PhysLine >> c.setShift
	lines := c.set(set)

	st.Accesses++
	rs.Accesses++

	// Lookup.
	for w := range lines {
		ln := &lines[w]
		if ln.flags&lineValid == 0 || ln.tag != tag {
			continue
		}
		// Hit.
		res := Result{Hit: true, Way: w}
		st.Hits++
		rs.Hits++
		if c.cfg.TrackUtags {
			h := utagHash(req.LinearLine)
			if ln.utag != h {
				res.UtagMiss = true
				st.UtagMisses++
				rs.UtagMisses++
			}
			ln.utag = h
		}
		// PL-cache fix: hits to locked lines leave replacement state
		// untouched so the LRU channel cannot be modulated through
		// protected lines.
		if !(c.cfg.LockReplacementState && ln.flags&lineLocked != 0) {
			c.repl.Touch(set, w)
		}
		c.applyLockOp(ln, req.Op)
		return res
	}

	// Miss.
	st.Misses++
	rs.Misses++

	// Prefer invalid ways: replacement policies are only consulted when
	// the set is full.
	for w := range lines {
		if lines[w].flags&lineValid == 0 {
			c.install(set, w, tag, req)
			return Result{Hit: false, Way: w}
		}
	}

	victim := c.repl.Victim(set)
	if c.cfg.PartitionLocked && lines[victim].flags&lineLocked != 0 {
		// Figure 10, left branch: victim locked, handle uncached.
		st.Bypasses++
		rs.Bypasses++
		res := Result{Hit: false, Bypassed: true, Way: -1}
		if !c.cfg.LockReplacementState {
			// Original PL design: the replacement state of the
			// victim is still updated, which is precisely the leak
			// demonstrated in Figure 11 (top).
			c.repl.Touch(set, victim)
		}
		return res
	}

	evicted := c.lineNumber(set, lines[victim].tag)
	res := Result{Hit: false, Way: victim, Evicted: evicted, DidEvict: true}
	st.Evictions++
	rs.Evictions++
	if int(lines[victim].owner) != req.Requestor {
		st.CrossEvictions++
		rs.CrossEvictions++
	}
	c.install(set, victim, tag, req)
	return res
}

// install writes the line into (set, way) and updates replacement state.
func (c *Cache) install(set, way int, tag uint64, req Request) {
	ln := &c.lines[set*c.ways+way]
	ln.tag = tag
	ln.flags = lineValid
	ln.owner = int32(req.Requestor)
	if c.cfg.TrackUtags {
		ln.utag = utagHash(req.LinearLine)
	}
	c.repl.Fill(set, way)
	c.applyLockOp(ln, req.Op)
}

func (c *Cache) applyLockOp(ln *line, op Op) {
	switch op {
	case OpLock:
		ln.flags |= lineLocked
	case OpUnlock:
		ln.flags &^= lineLocked
	}
}

// Contains reports whether physLine is currently cached (regardless of
// utag state).
func (c *Cache) Contains(physLine uint64) bool {
	set := c.SetIndex(physLine)
	tag := c.tagOf(physLine)
	for _, ln := range c.set(set) {
		if ln.flags&lineValid != 0 && ln.tag == tag {
			return true
		}
	}
	return false
}

// IsLocked reports whether physLine is cached with its lock bit set.
func (c *Cache) IsLocked(physLine uint64) bool {
	set := c.SetIndex(physLine)
	tag := c.tagOf(physLine)
	for _, ln := range c.set(set) {
		if ln.flags&lineValid != 0 && ln.tag == tag {
			return ln.flags&lineLocked != 0
		}
	}
	return false
}

// Flush invalidates physLine if present (the clflush model used by the
// Flush+Reload baseline). It reports whether a line was removed. Flushing
// does not touch replacement state — matching real hardware, where clflush
// does not update LRU bits.
func (c *Cache) Flush(physLine uint64) bool {
	set := c.SetIndex(physLine)
	tag := c.tagOf(physLine)
	lines := c.set(set)
	for w := range lines {
		ln := &lines[w]
		if ln.flags&lineValid != 0 && ln.tag == tag {
			ln.flags = 0
			return true
		}
	}
	return false
}

// InvalidateAll clears every line and resets replacement state, returning
// the cache to power-on conditions. Counters are preserved.
func (c *Cache) InvalidateAll() {
	clear(c.lines)
	c.repl.Reset()
}

// Reset returns the cache to full power-on state: lines invalidated,
// replacement state at its reset value, and all counters zeroed. Trial
// loops reuse one cache through Reset instead of reconstructing it —
// construction is the dominant allocation cost of a simulated machine.
func (c *Cache) Reset() {
	c.InvalidateAll()
	c.ResetStats()
	// Truncate (not just zero) the per-requestor table so a pooled
	// machine is indistinguishable from a freshly constructed one,
	// whose table starts empty.
	c.perReq = c.perReq[:0]
}

// ResetStats zeroes all counters.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	for i := range c.perReq {
		c.perReq[i] = Stats{}
	}
}

// Stats returns the aggregate counters.
func (c *Cache) Stats() Stats { return c.stats }

// RequestorStats returns the counters attributed to one requestor.
func (c *Cache) RequestorStats(requestor int) Stats {
	if requestor < 0 || requestor >= len(c.perReq) {
		return Stats{}
	}
	return c.perReq[requestor]
}

// PolicyState renders the replacement state of one set, for traces and the
// Table I study.
func (c *Cache) PolicyState(set int) string {
	return c.repl.StateString(set)
}

// VictimOf reports which way the policy would evict next in the given set
// (read-only for deterministic policies).
func (c *Cache) VictimOf(set int) int { return c.repl.Victim(set) }

// SetOccupancy returns the physical line numbers currently valid in a set,
// indexed by way; invalid ways carry ok=false.
func (c *Cache) SetOccupancy(set int) []struct {
	Line uint64
	OK   bool
} {
	out := make([]struct {
		Line uint64
		OK   bool
	}, c.cfg.Ways)
	for w, ln := range c.set(set) {
		if ln.flags&lineValid != 0 {
			out[w].Line = c.lineNumber(set, ln.tag)
			out[w].OK = true
		}
	}
	return out
}
