package cache

// Batch execution: the per-access API costs a call, a config check and
// a counter lookup per reference; the figure and table drivers issue
// hundreds of millions of references whose requests are known up front.
// AccessBatch runs a pre-resolved request slice through one tight loop
// over the line slab and the packed replacement state, bit-identical to
// the per-access path (the FuzzBatchEquivalence target pins this) and
// allocation-free once the per-requestor counter table covers the
// requestors in the batch.

// AccessBatch performs reqs in order, writing the i'th access's Result
// to out[i] (out must be at least as long as reqs, or nil to discard
// the results — the eviction-study loops only inspect state between
// batches). Results, Stats, replacement-state evolution and RNG draw
// order are bit-identical to calling Access once per request.
func (c *Cache) AccessBatch(reqs []Request, out []Result) {
	c.AccessBatchStats(reqs, out, &c.stats, &c.perReq)
}

// AccessBatchStats is AccessBatch with caller-owned counters: events
// are counted into st and perReq instead of the cache's own blocks.
// The set-partitioned parallel executor (internal/trace) gives each
// partition a private counter pair and merges them in fixed partition
// order through MergeStats, keeping parallel output byte-identical to
// serial.
func (c *Cache) AccessBatchStats(reqs []Request, out []Result, st *Stats, perReq *[]Stats) {
	if out != nil && len(out) < len(reqs) {
		panic("cache: AccessBatch output slice shorter than request slice")
	}
	if c.cfg.TrackUtags || c.cfg.PartitionLocked || c.cfg.LockReplacementState {
		// Feature-carrying configs share the full per-access path; the
		// batch still saves the per-call counter lookups.
		lastReq := -1
		var rs *Stats
		for i := range reqs {
			req := &reqs[i]
			if req.Requestor != lastReq {
				if req.Requestor < 0 {
					panic("cache: negative requestor")
				}
				rs = growStats(perReq, req.Requestor)
				lastReq = req.Requestor
			}
			res := c.accessInto(*req, st, rs)
			if out != nil {
				out[i] = res
			}
		}
		return
	}

	// Plain configs — every figure/table driver — take the specialized
	// loop: no lock or utag handling, install inlined, geometry hoisted,
	// and counters accumulated in locals, flushed to st and rs once per
	// requestor run (every event counts into both blocks identically on
	// this path, and only the batch's final counter values are
	// observable, so the deferred flush is exact).
	setMask, setShift, ways := c.setMask, c.setShift, c.ways
	repl := c.repl
	lastReq := -1
	var rs *Stats
	var nAcc, nHit, nMiss, nEv, nXev uint64
	for i := range reqs {
		req := &reqs[i]
		if req.Requestor != lastReq {
			if req.Requestor < 0 {
				panic("cache: negative requestor")
			}
			if rs != nil {
				flushCounters(st, rs, &nAcc, &nHit, &nMiss, &nEv, &nXev)
			}
			// Growing the table may reallocate it, so the cached
			// pointer is refreshed on every requestor change.
			rs = growStats(perReq, req.Requestor)
			lastReq = req.Requestor
		}
		if req.Op != OpLoad {
			// Lock ops still flip line flag bits even outside the PL
			// configs; keep them on the shared path.
			res := c.accessInto(*req, st, rs)
			if out != nil {
				out[i] = res
			}
			continue
		}
		set := int(req.PhysLine & setMask)
		tag := req.PhysLine >> setShift
		base := set * ways
		lines := c.lines[base : base+ways]
		nAcc++

		// One pass finds both the hit way and the first invalid way: a
		// hit is never an invalid way, so breaking on the hit cannot
		// skip a fill slot the miss path would have used.
		hit, way := -1, -1
		for w := range lines {
			if lines[w].flags&lineValid == 0 {
				if way < 0 {
					way = w
				}
				continue
			}
			if lines[w].tag == tag {
				hit = w
				break
			}
		}
		if hit >= 0 {
			nHit++
			repl.Touch(set, hit)
			if out != nil {
				out[i] = Result{Hit: true, Way: hit}
			}
			continue
		}

		nMiss++
		if way < 0 {
			way = repl.Victim(set)
			ln := &lines[way]
			nEv++
			if int(ln.owner) != req.Requestor {
				nXev++
			}
			if out != nil {
				// Evicted must read the victim's tag before the install
				// overwrites it.
				out[i] = Result{Way: way, Evicted: ln.tag<<setShift | uint64(set), DidEvict: true}
			}
		} else if out != nil {
			out[i] = Result{Way: way}
		}
		ln := &lines[way]
		ln.tag = tag
		ln.flags = lineValid
		ln.owner = int32(req.Requestor)
		repl.Fill(set, way)
	}
	if rs != nil {
		flushCounters(st, rs, &nAcc, &nHit, &nMiss, &nEv, &nXev)
	}
}

// flushCounters adds the fast loop's local event counts to both the
// aggregate and the per-requestor block and zeroes them.
func flushCounters(st, rs *Stats, nAcc, nHit, nMiss, nEv, nXev *uint64) {
	st.Accesses += *nAcc
	rs.Accesses += *nAcc
	st.Hits += *nHit
	rs.Hits += *nHit
	st.Misses += *nMiss
	rs.Misses += *nMiss
	st.Evictions += *nEv
	rs.Evictions += *nEv
	st.CrossEvictions += *nXev
	rs.CrossEvictions += *nXev
	*nAcc, *nHit, *nMiss, *nEv, *nXev = 0, 0, 0, 0, 0
}

// AllResident reports whether every listed physical line is currently
// valid in its set. The trace executors call it, read-only, before
// applying a run plan: all distinct lines of a span resident at span
// start implies (by induction — hits never evict) that every record of
// the span hits, so the plan's bulk replay is exact.
func (c *Cache) AllResident(physLines []uint64) bool {
	for _, pl := range physLines {
		set := int(pl & c.setMask)
		tag := pl >> c.setShift
		lines := c.set(set)
		found := false
		for w := range lines {
			if lines[w].flags&lineValid != 0 && lines[w].tag == tag {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TouchLine applies the hit-path replacement touch to the resident
// line, reporting whether it was found. It moves no counters and must
// not be used under TrackUtags or LockReplacementState configs (the
// trace executors only reach it where run analysis is enabled, which
// excludes both).
func (c *Cache) TouchLine(physLine uint64) bool {
	set := int(physLine & c.setMask)
	tag := physLine >> c.setShift
	lines := c.set(set)
	for w := range lines {
		if lines[w].flags&lineValid != 0 && lines[w].tag == tag {
			c.repl.Touch(set, w)
			return true
		}
	}
	return false
}

// CreditLoadHits counts n plain load hits for requestor — the bulk
// form of the fast loop's hit counters, used by run-plan replay where
// the per-record events are known without executing them.
func (c *Cache) CreditLoadHits(requestor int, n uint64) {
	if requestor < 0 {
		panic("cache: negative requestor")
	}
	c.stats.Accesses += n
	c.stats.Hits += n
	rs := c.reqStats(requestor)
	rs.Accesses += n
	rs.Hits += n
}

// AccessStats is Access with caller-owned counters, the single-access
// form of AccessBatchStats. Set-partitioned executors use it for the
// records they cannot batch.
func (c *Cache) AccessStats(req Request, st *Stats, perReq *[]Stats) Result {
	if req.Requestor < 0 {
		panic("cache: negative requestor")
	}
	return c.accessInto(req, st, growStats(perReq, req.Requestor))
}

// MergeStats folds a partition's private counters (accumulated by
// AccessBatchStats) into the cache's own, growing the per-requestor
// table exactly as the serial path would have. Callers must merge
// partitions in a fixed order covering every entry, including zero
// ones, so the table's final length matches serial execution.
func (c *Cache) MergeStats(st Stats, perReq []Stats) {
	c.stats.Add(st)
	for i := range perReq {
		c.reqStats(i).Add(perReq[i])
	}
}
