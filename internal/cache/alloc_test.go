package cache

import (
	"fmt"
	"testing"

	"repro/internal/replacement"
	"repro/internal/rng"
)

// The zero-allocation invariant of the flattened hot path: once a cache
// is warm (per-requestor counter table grown, set filled), Access must
// never touch the allocator — neither on hits nor on the full
// miss/evict/install path — for every replacement policy. The engine
// runs Access hundreds of millions of times per sweep; a single alloc
// per access puts the GC back on the profile.

func allocConfig(pol replacement.Kind) Config {
	cfg := Config{Name: "L1D", Sets: 64, Ways: 8, LineSize: 64, Policy: pol}
	if pol == replacement.Random {
		cfg.RNG = rng.New(11)
	}
	return cfg
}

func TestAccessHitPathZeroAllocs(t *testing.T) {
	for _, pol := range replacement.Kinds() {
		t.Run(pol.String(), func(t *testing.T) {
			c := New(allocConfig(pol))
			const set = 5
			// Warm: fill the set and grow the requestor tables.
			for i := 0; i < 8; i++ {
				c.Access(Request{PhysLine: lineInSet(c, set, i), Requestor: 1})
			}
			target := lineInSet(c, set, 3)
			if got := testing.AllocsPerRun(200, func() {
				if !c.Access(Request{PhysLine: target, Requestor: 1}).Hit {
					t.Fatal("warm access missed")
				}
			}); got != 0 {
				t.Errorf("hit path allocates %.1f allocs/op, want 0", got)
			}
		})
	}
}

func TestAccessMissPathZeroAllocs(t *testing.T) {
	for _, pol := range replacement.Kinds() {
		t.Run(pol.String(), func(t *testing.T) {
			c := New(allocConfig(pol))
			const set = 5
			for i := 0; i < 8; i++ {
				c.Access(Request{PhysLine: lineInSet(c, set, i), Requestor: 1})
			}
			// Every access below is to a never-seen line in the full
			// set: always a miss, always an eviction (cross-requestor,
			// to also exercise the CrossEvictions counters).
			next := 8
			if got := testing.AllocsPerRun(200, func() {
				res := c.Access(Request{PhysLine: lineInSet(c, set, next), Requestor: 2})
				next++
				if res.Hit {
					t.Fatal("fresh line hit")
				}
			}); got != 0 {
				t.Errorf("miss path allocates %.1f allocs/op, want 0", got)
			}
		})
	}
}

func TestAccessUtagAndPLPathsZeroAllocs(t *testing.T) {
	// The two optional per-access features: utag tracking (Zen) and the
	// PL-cache bypass branch.
	t.Run("utag", func(t *testing.T) {
		cfg := allocConfig(replacement.TreePLRU)
		cfg.TrackUtags = true
		c := New(cfg)
		c.Access(Request{PhysLine: 100, LinearLine: 1})
		alias := uint64(2)
		if got := testing.AllocsPerRun(200, func() {
			c.Access(Request{PhysLine: 100, LinearLine: alias})
			alias ^= 3 // alternate linear aliases: every hit is a utag miss
		}); got != 0 {
			t.Errorf("utag hit path allocates %.1f allocs/op, want 0", got)
		}
	})
	t.Run("pl-bypass", func(t *testing.T) {
		cfg := allocConfig(replacement.TrueLRU)
		cfg.PartitionLocked = true
		// The fixed design freezes replacement state on bypass, so the
		// locked line stays the victim and every miss below bypasses.
		cfg.LockReplacementState = true
		c := New(cfg)
		const set = 0
		c.Access(Request{PhysLine: lineInSet(c, set, 0), Op: OpLock})
		for i := 1; i < 8; i++ {
			c.Access(Request{PhysLine: lineInSet(c, set, i)})
		}
		next := 8
		if got := testing.AllocsPerRun(200, func() {
			res := c.Access(Request{PhysLine: lineInSet(c, set, next)})
			next++
			if !res.Bypassed {
				t.Fatal("locked-victim miss did not bypass")
			}
		}); got != 0 {
			t.Errorf("PL bypass path allocates %.1f allocs/op, want 0", got)
		}
	})
}

// Construction is where the allocations now live — and there must be a
// constant number of them (the slabs), not O(sets) policy objects.
func TestConstructionAllocationBudget(t *testing.T) {
	for _, sets := range []int{64, 2048} {
		got := testing.AllocsPerRun(10, func() {
			New(Config{Name: "t", Sets: sets, Ways: 8, LineSize: 64, Policy: replacement.TreePLRU})
		})
		// Cache struct + line slab + SetArray + its word slice = 4; leave
		// headroom for one more internal slab but not for per-set objects.
		if got > 8 {
			t.Errorf("New with %d sets makes %.0f allocs, want O(1)", sets, got)
		}
	}
}

func BenchmarkAccessHit(b *testing.B) {
	for _, pol := range replacement.Kinds() {
		b.Run(pol.String(), func(b *testing.B) {
			c := New(allocConfig(pol))
			for i := 0; i < 8; i++ {
				c.Access(Request{PhysLine: lineInSet(c, 5, i)})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(Request{PhysLine: lineInSet(c, 5, i&7)})
			}
		})
	}
}

func BenchmarkAccessMissEvict(b *testing.B) {
	for _, pol := range replacement.Kinds() {
		b.Run(pol.String(), func(b *testing.B) {
			c := New(allocConfig(pol))
			for i := 0; i < 8; i++ {
				c.Access(Request{PhysLine: lineInSet(c, 5, i)})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(Request{PhysLine: lineInSet(c, 5, 8+i)})
			}
		})
	}
}

func ExampleCache_Access() {
	c := New(Config{Name: "L1D", Sets: 64, Ways: 8, LineSize: 64, Policy: replacement.TreePLRU})
	miss := c.Access(Request{PhysLine: 5})
	hit := c.Access(Request{PhysLine: 5})
	fmt.Println(miss.Hit, hit.Hit)
	// Output: false true
}
