package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/replacement"
	"repro/internal/rng"
)

// l1Config mirrors the paper's L1D: 32 KiB, 8-way, 64 sets, 64 B lines.
func l1Config(pol replacement.Kind) Config {
	return Config{Name: "L1D", Sets: 64, Ways: 8, LineSize: 64, Policy: pol}
}

// lineInSet returns the i-th distinct physical line mapping to the given set.
func lineInSet(c *Cache, set, i int) uint64 {
	return uint64(i)*uint64(c.Sets()) + uint64(set)
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero sets":     {Sets: 0, Ways: 8, LineSize: 64},
		"zero ways":     {Sets: 64, Ways: 0, LineSize: 64},
		"npot sets":     {Sets: 48, Ways: 8, LineSize: 64},
		"npot linesize": {Sets: 64, Ways: 8, LineSize: 48},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(l1Config(replacement.TreePLRU))
	r1 := c.Access(Request{PhysLine: 100})
	if r1.Hit {
		t.Fatal("first access hit an empty cache")
	}
	r2 := c.Access(Request{PhysLine: 100})
	if !r2.Hit {
		t.Fatal("second access missed")
	}
	if r2.Way != r1.Way {
		t.Errorf("hit in way %d, filled way %d", r2.Way, r1.Way)
	}
}

func TestSetIndexingIsModSets(t *testing.T) {
	c := New(l1Config(replacement.TreePLRU))
	for _, pl := range []uint64{0, 1, 63, 64, 65, 1000} {
		if got, want := c.SetIndex(pl), int(pl%64); got != want {
			t.Errorf("SetIndex(%d) = %d, want %d", pl, got, want)
		}
	}
}

func TestInvalidWaysFilledFirst(t *testing.T) {
	c := New(l1Config(replacement.TreePLRU))
	for i := 0; i < 8; i++ {
		res := c.Access(Request{PhysLine: lineInSet(c, 5, i)})
		if res.Hit || res.DidEvict {
			t.Fatalf("fill %d: hit=%v evict=%v, want cold fill", i, res.Hit, res.DidEvict)
		}
	}
	if got := c.Stats().Evictions; got != 0 {
		t.Errorf("evictions during cold fill = %d", got)
	}
}

// The Algorithm 1 (m=0) core sequence: fill 0..7, access line 8, and line 0
// must be the line evicted under sequential fill for LRU/Tree-PLRU/Bit-PLRU.
func TestNinthLineEvictsLineZero(t *testing.T) {
	for _, pol := range []replacement.Kind{replacement.TrueLRU, replacement.TreePLRU, replacement.BitPLRU} {
		c := New(l1Config(pol))
		const set = 3
		for i := 0; i < 8; i++ {
			c.Access(Request{PhysLine: lineInSet(c, set, i)})
		}
		res := c.Access(Request{PhysLine: lineInSet(c, set, 8)})
		if !res.DidEvict {
			t.Fatalf("%v: no eviction on 9th distinct line", pol)
		}
		if res.Evicted != lineInSet(c, set, 0) {
			t.Errorf("%v: evicted line %d, want line 0 (%d)", pol, res.Evicted, lineInSet(c, set, 0))
		}
		if c.Contains(lineInSet(c, set, 0)) {
			t.Errorf("%v: line 0 still present", pol)
		}
	}
}

// The Algorithm 1 (m=1) core sequence: fill 0..7, re-touch line 0 (the
// sender's hit), access line 8 — line 0 must survive.
func TestSenderHitProtectsLineZero(t *testing.T) {
	for _, pol := range []replacement.Kind{replacement.TrueLRU, replacement.TreePLRU, replacement.BitPLRU} {
		c := New(l1Config(pol))
		const set = 3
		for i := 0; i < 8; i++ {
			c.Access(Request{PhysLine: lineInSet(c, set, i)})
		}
		if res := c.Access(Request{PhysLine: lineInSet(c, set, 0)}); !res.Hit {
			t.Fatalf("%v: sender encoding access missed", pol)
		}
		c.Access(Request{PhysLine: lineInSet(c, set, 8)})
		if !c.Contains(lineInSet(c, set, 0)) {
			t.Errorf("%v: line 0 evicted despite sender hit", pol)
		}
	}
}

func TestDistinctSetsDoNotInterfere(t *testing.T) {
	c := New(l1Config(replacement.TreePLRU))
	for i := 0; i < 8; i++ {
		c.Access(Request{PhysLine: lineInSet(c, 1, i)})
	}
	// Hammer a different set.
	for i := 0; i < 100; i++ {
		c.Access(Request{PhysLine: lineInSet(c, 2, i)})
	}
	for i := 0; i < 8; i++ {
		if !c.Contains(lineInSet(c, 1, i)) {
			t.Fatalf("line %d of set 1 evicted by set 2 traffic", i)
		}
	}
}

func TestFlushRemovesLine(t *testing.T) {
	c := New(l1Config(replacement.TreePLRU))
	c.Access(Request{PhysLine: 42})
	if !c.Flush(42) {
		t.Fatal("Flush reported no line removed")
	}
	if c.Contains(42) {
		t.Fatal("line present after flush")
	}
	if c.Flush(42) {
		t.Fatal("second flush found a line")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := New(l1Config(replacement.TreePLRU))
	c.Access(Request{PhysLine: 1, Requestor: 0})
	c.Access(Request{PhysLine: 1, Requestor: 0})
	c.Access(Request{PhysLine: 2, Requestor: 1})
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
	s0 := c.RequestorStats(0)
	if s0.Accesses != 2 || s0.Hits != 1 || s0.Misses != 1 {
		t.Errorf("requestor 0 stats = %+v", s0)
	}
	s1 := c.RequestorStats(1)
	if s1.Accesses != 1 || s1.Misses != 1 {
		t.Errorf("requestor 1 stats = %+v", s1)
	}
	if got := c.RequestorStats(9); got != (Stats{}) {
		t.Errorf("unknown requestor stats = %+v", got)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats left counters")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate != 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("miss rate = %v", got)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(l1Config(replacement.TreePLRU))
	for i := 0; i < 20; i++ {
		c.Access(Request{PhysLine: uint64(i)})
	}
	c.InvalidateAll()
	for i := 0; i < 20; i++ {
		if c.Contains(uint64(i)) {
			t.Fatalf("line %d survived InvalidateAll", i)
		}
	}
}

func TestLockBitLifecycle(t *testing.T) {
	cfg := l1Config(replacement.TreePLRU)
	cfg.PartitionLocked = true
	c := New(cfg)
	c.Access(Request{PhysLine: 7, Op: OpLock})
	if !c.IsLocked(7) {
		t.Fatal("line not locked after OpLock")
	}
	c.Access(Request{PhysLine: 7, Op: OpUnlock})
	if c.IsLocked(7) {
		t.Fatal("line still locked after OpUnlock")
	}
	if c.IsLocked(9999) {
		t.Fatal("absent line reported locked")
	}
}

func TestPLCacheVictimLockedBypasses(t *testing.T) {
	cfg := l1Config(replacement.TrueLRU)
	cfg.PartitionLocked = true
	c := New(cfg)
	const set = 0
	// Fill the set; lock the line that will be the LRU victim (line 0).
	c.Access(Request{PhysLine: lineInSet(c, set, 0), Op: OpLock})
	for i := 1; i < 8; i++ {
		c.Access(Request{PhysLine: lineInSet(c, set, i)})
	}
	res := c.Access(Request{PhysLine: lineInSet(c, set, 8)})
	if !res.Bypassed {
		t.Fatal("miss with locked victim did not bypass")
	}
	if c.Contains(lineInSet(c, set, 8)) {
		t.Fatal("bypassed line was installed")
	}
	if !c.Contains(lineInSet(c, set, 0)) {
		t.Fatal("locked line was evicted")
	}
	if got := c.Stats().Bypasses; got != 1 {
		t.Errorf("bypass count = %d", got)
	}
}

// The original PL design updates replacement state even on bypassed misses
// and on hits to locked lines; the fixed design does not. This is the
// observable difference behind Figure 11.
func TestPLCacheFixFreezesReplacementState(t *testing.T) {
	run := func(fix bool) string {
		cfg := l1Config(replacement.TreePLRU)
		cfg.PartitionLocked = true
		cfg.LockReplacementState = fix
		c := New(cfg)
		const set = 0
		for i := 0; i < 8; i++ {
			op := OpLoad
			if i == 7 {
				op = OpLock
			}
			c.Access(Request{PhysLine: lineInSet(c, set, i), Op: op})
		}
		before := c.PolicyState(set)
		// Hit the locked line: with the fix the state must not move.
		c.Access(Request{PhysLine: lineInSet(c, set, 7)})
		after := c.PolicyState(set)
		if fix && before != after {
			t.Errorf("fixed PL cache: locked-line hit changed state %s -> %s", before, after)
		}
		if !fix && before == after {
			// Sequential fill ends with way 7 most recent; touching
			// line 7 again leaves Tree-PLRU state unchanged, so use
			// a different probe: hit line 7 after touching line 0.
			c.Access(Request{PhysLine: lineInSet(c, set, 0)})
			mid := c.PolicyState(set)
			c.Access(Request{PhysLine: lineInSet(c, set, 7)})
			if c.PolicyState(set) == mid {
				t.Error("original PL cache: locked-line hit did not update state")
			}
		}
		return after
	}
	run(true)
	run(false)
}

func TestUtagMissOnLinearAliasChange(t *testing.T) {
	cfg := l1Config(replacement.TreePLRU)
	cfg.TrackUtags = true
	c := New(cfg)
	// Sender installs the shared line through its own linear address.
	c.Access(Request{PhysLine: 100, LinearLine: 0x1000, Requestor: 0})
	// Receiver touches the same physical line through a different linear
	// address: data is present but the way predictor misses.
	res := c.Access(Request{PhysLine: 100, LinearLine: 0x2000, Requestor: 1})
	if !res.Hit || !res.UtagMiss {
		t.Fatalf("cross-address-space hit: hit=%v utagMiss=%v", res.Hit, res.UtagMiss)
	}
	// The utag is retrained: the receiver's second access is clean.
	res = c.Access(Request{PhysLine: 100, LinearLine: 0x2000, Requestor: 1})
	if !res.Hit || res.UtagMiss {
		t.Fatalf("retrained access: hit=%v utagMiss=%v", res.Hit, res.UtagMiss)
	}
	if c.Stats().UtagMisses != 1 {
		t.Errorf("utag miss count = %d", c.Stats().UtagMisses)
	}
}

func TestUtagSameLinearNoPenalty(t *testing.T) {
	cfg := l1Config(replacement.TreePLRU)
	cfg.TrackUtags = true
	c := New(cfg)
	c.Access(Request{PhysLine: 100, LinearLine: 0x1000})
	res := c.Access(Request{PhysLine: 100, LinearLine: 0x1000})
	if res.UtagMiss {
		t.Fatal("same linear address triggered utag miss")
	}
}

func TestNegativeRequestorPanics(t *testing.T) {
	c := New(l1Config(replacement.TreePLRU))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative requestor")
		}
	}()
	c.Access(Request{PhysLine: 1, Requestor: -1})
}

func TestSetOccupancy(t *testing.T) {
	c := New(l1Config(replacement.TreePLRU))
	c.Access(Request{PhysLine: lineInSet(c, 4, 0)})
	c.Access(Request{PhysLine: lineInSet(c, 4, 1)})
	occ := c.SetOccupancy(4)
	valid := 0
	for _, e := range occ {
		if e.OK {
			valid++
			if e.Line != lineInSet(c, 4, 0) && e.Line != lineInSet(c, 4, 1) {
				t.Errorf("unexpected occupant %d", e.Line)
			}
		}
	}
	if valid != 2 {
		t.Errorf("valid ways = %d, want 2", valid)
	}
}

func TestRandomPolicyCacheWorks(t *testing.T) {
	cfg := l1Config(replacement.Random)
	cfg.RNG = rng.New(11)
	c := New(cfg)
	const set = 2
	for i := 0; i < 8; i++ {
		c.Access(Request{PhysLine: lineInSet(c, set, i)})
	}
	res := c.Access(Request{PhysLine: lineInSet(c, set, 8)})
	if !res.DidEvict {
		t.Fatal("random policy: no eviction on full set")
	}
}

// Property: cache contents are a function of the access stream — a hit is
// reported exactly when the line was accessed before and not displaced, as
// verified against a brute-force reference model of a fully-recorded set.
func TestQuickHitIffPresentReference(t *testing.T) {
	f := func(raw []byte) bool {
		c := New(Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64, Policy: replacement.TrueLRU})
		// Reference: per-set recency list, capacity 2.
		ref := map[int][]uint64{}
		for _, b := range raw {
			pl := uint64(b % 16)
			set := int(pl % 4)
			res := c.Access(Request{PhysLine: pl})
			// Check against reference.
			present := false
			for _, v := range ref[set] {
				if v == pl {
					present = true
					break
				}
			}
			if res.Hit != present {
				return false
			}
			// Update reference LRU list.
			lst := ref[set]
			for i, v := range lst {
				if v == pl {
					lst = append(lst[:i], lst[i+1:]...)
					break
				}
			}
			lst = append(lst, pl)
			if len(lst) > 2 {
				lst = lst[1:]
			}
			ref[set] = lst
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: total accesses == hits + misses, and misses == cold fills +
// evictions + bypasses.
func TestQuickStatsConservation(t *testing.T) {
	r := rng.New(31)
	f := func(raw []byte) bool {
		cfg := l1Config(replacement.TreePLRU)
		cfg.PartitionLocked = true
		c := New(cfg)
		for i, b := range raw {
			op := OpLoad
			if i%17 == 0 {
				op = OpLock
			}
			c.Access(Request{PhysLine: uint64(b), Op: op, Requestor: r.Intn(3)})
		}
		s := c.Stats()
		if s.Accesses != s.Hits+s.Misses {
			return false
		}
		// Every miss either filled an invalid way, evicted, or bypassed.
		return s.Misses >= s.Evictions+s.Bypasses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
