package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/perfctr"
	"repro/internal/sched"
)

func alg1Setup(seed uint64) *core.Setup {
	return core.NewSetup(core.Config{
		Algorithm: core.Alg1SharedMemory, Mode: sched.SMT,
		Tr: 600, Ts: 6000, Seed: seed,
	})
}

func TestKindString(t *testing.T) {
	if FlushReloadMem.String() != "F+R (mem)" || FlushReloadL1.String() != "F+R (L1)" ||
		PrimeProbe.String() != "Prime+Probe" || Kind(9).String() == "" {
		t.Error("Kind strings wrong")
	}
}

// Table V row: F+R (mem) encoding is an order of magnitude more expensive
// than the LRU channel's (336 vs 31 cycles on E5-2690), and F+R (L1) sits
// in between (35-56 cycles).
func TestTableVEncodingOrdering(t *testing.T) {
	s := alg1Setup(1)
	lru := s.EncodeCost()
	frMem := New(FlushReloadMem, alg1Setup(2)).EncodeCostOne()
	frL1 := New(FlushReloadL1, alg1Setup(3)).EncodeCostOne()
	if !(lru < frL1 && frL1 < frMem) {
		t.Errorf("encode costs: LRU=%d, F+R(L1)=%d, F+R(mem)=%d; want LRU < F+R(L1) < F+R(mem)", lru, frL1, frMem)
	}
	if frMem < 150 {
		t.Errorf("F+R(mem) encode = %d cycles, should be dominated by the flush (~300)", frMem)
	}
	if lru > 40 {
		t.Errorf("LRU encode = %d cycles, want ~31", lru)
	}
}

// Table VI: the LRU-channel sender's L1 miss rate is lower than the
// Flush+Reload sender's, because F+R re-misses the target line every bit.
func TestTableVISenderMissRates(t *testing.T) {
	// LRU channel run.
	sLRU := alg1Setup(4)
	sLRU.Run([]byte{1, 0}, true, 200, 1<<40)
	lruRep := perfctr.Collect(sLRU.Hier, core.ReqSender)

	// F+R (mem) run with the same framing.
	sFR := alg1Setup(5)
	ch := New(FlushReloadMem, sFR)
	ch.Run([]byte{1, 0}, true, 200, 1<<40)
	frRep := perfctr.Collect(sFR.Hier, core.ReqSender)

	if lruRep.L1D.Accesses == 0 || frRep.L1D.Accesses == 0 {
		t.Fatalf("senders idle: lru=%+v fr=%+v", lruRep, frRep)
	}
	if lruRep.L1D.MissRate() >= frRep.L1D.MissRate() {
		t.Errorf("LRU sender L1D miss rate %v should be below F+R's %v",
			lruRep.L1D.MissRate(), frRep.L1D.MissRate())
	}
	// The LRU sender misses essentially never after warm-up.
	if lruRep.L1D.MissRate() > 0.01 {
		t.Errorf("LRU sender L1D miss rate = %v, want ~0", lruRep.L1D.MissRate())
	}
}

// Flush+Reload still transfers bits in the simulator (sanity for the
// comparison baseline).
func TestFlushReloadTransfers(t *testing.T) {
	s := alg1Setup(6)
	ch := New(FlushReloadMem, s)
	tr := ch.Run([]byte{0, 1}, true, 200, 1<<40)
	if len(tr.Observations) != 200 {
		t.Fatalf("got %d observations", len(tr.Observations))
	}
	bits := tr.RawBits(true) // hit (fast reload) = sender accessed = 1
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	if ones < 40 || ones > 160 {
		t.Errorf("F+R decoded %d/200 ones; channel looks broken", ones)
	}
}

func TestPrimeProbeReceiverSeesSenderAccess(t *testing.T) {
	s := core.NewSetup(core.Config{
		Algorithm: core.Alg2NoSharedMemory, Mode: sched.SMT,
		Tr: 1000, Ts: 20_000, Seed: 7,
	})
	ch := New(PrimeProbe, s)
	tr := ch.Run([]byte{0, 1}, true, 300, 1<<40)
	// Probe totals must be bimodal: all-hit (8x4=32 plus overhead) when
	// the sender was idle, at least one miss (+8) when it touched the set.
	var lo, hi int
	for _, o := range tr.Observations {
		if o.Latency > tr.Threshold {
			hi++
		} else {
			lo++
		}
	}
	if lo == 0 || hi == 0 {
		t.Errorf("Prime+Probe observations unimodal: lo=%d hi=%d", lo, hi)
	}
}

func TestFlushReloadL1NeedsNoFlush(t *testing.T) {
	// F+R(L1) must evict the line using only loads: after one encode the
	// target is out of L1 but still in L2 or deeper.
	s := alg1Setup(8)
	ch := New(FlushReloadL1, s)
	s.Hier.Warm(s.SenderLine, core.ReqSender)
	ch.Encode(0) // eviction epoch, no reload
	if s.Hier.L1().Contains(s.SenderLine.PhysLine) {
		t.Error("F+R(L1) encode(0) left the target in L1")
	}
	if !s.Hier.L2().Contains(s.SenderLine.PhysLine) {
		t.Error("F+R(L1) should not push the target past L2")
	}
}

func TestEncodeUnknownKindPanics(t *testing.T) {
	ch := &Channel{Kind: Kind(42), Setup: alg1Setup(9)}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ch.Encode(1)
}

func TestPerfctrCombined(t *testing.T) {
	s := alg1Setup(10)
	s.Run([]byte{1}, true, 50, 1<<40)
	a := perfctr.Collect(s.Hier, core.ReqSender)
	b := perfctr.Collect(s.Hier, core.ReqReceiver)
	both := perfctr.CollectCombined(s.Hier, core.ReqSender, core.ReqReceiver)
	if both.L1D.Accesses != a.L1D.Accesses+b.L1D.Accesses {
		t.Errorf("combined accesses %d != %d + %d", both.L1D.Accesses, a.L1D.Accesses, b.L1D.Accesses)
	}
	if both.String() == "" {
		t.Error("empty report string")
	}
}
