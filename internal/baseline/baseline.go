// Package baseline implements the existing cache covert channels the paper
// compares against (Sections II-A and VII): Flush+Reload in its
// flush-to-memory form (clflush, "F+R (mem)") and its L1-eviction form
// ("F+R (L1)", eight conflicting accesses evict the line from L1 only),
// plus Prime+Probe. They share the Setup machinery of internal/core so the
// encoding-latency and miss-rate comparisons (Tables V and VI) are
// apples-to-apples.
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Kind selects a baseline channel.
type Kind int

// Baseline channels of Table V.
const (
	// FlushReloadMem flushes the shared line to memory with clflush.
	FlushReloadMem Kind = iota + 1
	// FlushReloadL1 evicts the shared line from L1 by accessing the
	// eight conflicting lines of the set (no clflush available, e.g.
	// inside a sandbox).
	FlushReloadL1
	// PrimeProbe is the Prime+Probe channel: the receiver owns the whole
	// set and probes all N ways.
	PrimeProbe
)

// String names the channel as in Table V.
func (k Kind) String() string {
	switch k {
	case FlushReloadMem:
		return "F+R (mem)"
	case FlushReloadL1:
		return "F+R (L1)"
	case PrimeProbe:
		return "Prime+Probe"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Channel is an instantiated baseline attack sharing a core.Setup's
// hierarchy and address spaces.
type Channel struct {
	Kind  Kind
	Setup *core.Setup
	// evictors are the sender-side conflicting lines used by F+R (L1) to
	// evict the target without clflush.
	evictors []mem.Addr
}

// New builds a baseline channel over the given setup. For the Flush+Reload
// variants the setup must use core.Alg1SharedMemory (they need the shared
// line); Prime+Probe works with either.
func New(kind Kind, s *core.Setup) *Channel {
	c := &Channel{Kind: kind, Setup: s}
	if kind == FlushReloadL1 {
		prof := s.Hier.Profile()
		set := s.Hier.L1().SetIndex(s.SenderLine.PhysLine)
		vs := s.SenderAS.LinesForSet(prof.L1Sets, set, prof.L1Ways)
		for _, v := range vs {
			c.evictors = append(c.evictors, s.SenderAS.Resolve(v))
		}
	}
	return c
}

// Encode performs the sender's operation for one bit directly against the
// hierarchy and returns its cost in cycles — the Table V measurement. For
// the F+R channels a 1 is sent by (re)loading the line after the flush
// epoch; crucially both involve a miss in the target level, unlike the LRU
// channel.
func (c *Channel) Encode(bit byte) int {
	s := c.Setup
	const addressComputation = 27
	switch c.Kind {
	case FlushReloadMem:
		// The sender's per-bit op in F+R: flush, then access if 1.
		// Cost is dominated by clflush reaching memory.
		s.Hier.Flush(c.Setup.SenderLine.PhysLine)
		cost := addressComputation + flushCost
		if bit != 0 {
			cost += s.Hier.Load(s.SenderLine, core.ReqSender).Latency
		}
		return cost
	case FlushReloadL1:
		// Evict by walking the set's conflicting lines (8 accesses).
		cost := addressComputation
		for _, e := range c.evictors {
			cost += s.Hier.Load(e, core.ReqSender).Latency
		}
		if bit != 0 {
			cost += s.Hier.Load(s.SenderLine, core.ReqSender).Latency
		}
		return cost
	case PrimeProbe:
		// The sender's op is one access (or none); the receiver pays
		// the N-way probe instead.
		cost := addressComputation
		if bit != 0 {
			cost += s.Hier.Load(s.SenderLine, core.ReqSender).Latency
		}
		return cost
	default:
		panic(fmt.Sprintf("baseline: unknown kind %d", int(c.Kind)))
	}
}

// flushCost mirrors sched.Config.FlushCost's default: a clflush that must
// reach memory.
const flushCost = 150

// EncodeCostOne returns the steady-state cost of encoding a 1-bit (the
// Table V convention): the target line and, for F+R (L1), the eviction set
// are warm from previous epochs, so the cost reflects only the per-bit
// work — the flush for F+R (mem), the 8-access walk for F+R (L1), a single
// hit for Prime+Probe's sender.
func (c *Channel) EncodeCostOne() int {
	s := c.Setup
	s.Hier.Warm(s.SenderLine, core.ReqSender)
	c.Encode(1) // warm-up epoch brings the eviction set into the caches
	return c.Encode(1)
}

// SenderProgram returns a scheduler program that transmits message with the
// baseline channel's sender operation, holding each bit for Ts cycles.
func (c *Channel) SenderProgram(message []byte, repeat bool) func(*sched.Env) {
	s := c.Setup
	return func(e *sched.Env) {
		for {
			for _, bit := range message {
				deadline := e.Now() + s.Cfg.Ts
				for e.Now() < deadline {
					switch c.Kind {
					case FlushReloadMem:
						e.Flush(s.SenderLine)
						if bit != 0 {
							e.Access(s.SenderLine)
						}
						e.Busy(27)
					case FlushReloadL1:
						for _, ev := range c.evictors {
							e.Access(ev)
						}
						if bit != 0 {
							e.Access(s.SenderLine)
						}
						e.Busy(27)
					case PrimeProbe:
						if bit != 0 {
							e.Access(s.SenderLine)
						}
						e.Busy(27)
					}
				}
			}
			if !repeat {
				return
			}
		}
	}
}

// ReceiverProgram returns the baseline receiver: for F+R it reloads and
// times the shared line every Tr; for Prime+Probe it primes the set with
// its N lines and probes them, timing the total.
func (c *Channel) ReceiverProgram(out *[]core.Observation, maxSamples int) func(*sched.Env) {
	s := c.Setup
	return func(e *sched.Env) {
		s.Chaser.WarmUp()
		var tLast uint64
		for maxSamples <= 0 || len(*out) < maxSamples {
			e.BusyUntil(tLast + s.Cfg.Tr)
			tLast = e.Now()
			switch c.Kind {
			case FlushReloadMem, FlushReloadL1:
				m := e.Measure(s.Chaser, s.ReceiverLines[0])
				*out = append(*out, core.Observation{
					Latency: m.Observed, Wall: e.Now(), TrueL1Hit: m.L1Hit,
				})
			case PrimeProbe:
				var total float64
				anyMiss := false
				for _, l := range s.ReceiverLines[:s.Hier.Profile().L1Ways] {
					res := e.Access(l)
					total += float64(res.Latency)
					anyMiss = anyMiss || res.Level != hier.LevelL1
				}
				*out = append(*out, core.Observation{
					Latency: total, Wall: e.Now(), TrueL1Hit: !anyMiss,
				})
			}
		}
		e.StopAll()
	}
}

// Run executes the baseline channel like core.Setup.Run does for the LRU
// channels.
func (c *Channel) Run(message []byte, repeat bool, maxSamples int, wallLimit uint64) *core.Trace {
	s := c.Setup
	m := s.NewMachine()
	var obs []core.Observation
	s.WarmSender()
	m.AddThread("sender", core.ReqSender, c.SenderProgram(message, repeat))
	m.AddThread("receiver", core.ReqReceiver, c.ReceiverProgram(&obs, maxSamples))
	m.Run(wallLimit)
	tr := &core.Trace{Observations: obs, Elapsed: m.Now()}
	tr.Threshold = stats.OtsuThreshold(tr.Latencies())
	return tr
}
