package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero value", s)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample standard deviation of this classic dataset is sqrt(32/7).
	if !almostEqual(s.Std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 3 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2 {
		t.Errorf("P50 = %v", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 25); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("P25 of {0,10} = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	xs := []float64{1, 2, 3}
	got := MovingAverage(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("window 1 changed data: %v", got)
		}
	}
}

func TestMovingAverageSmoothsStep(t *testing.T) {
	xs := make([]float64, 40)
	for i := 20; i < 40; i++ {
		xs[i] = 10
	}
	sm := MovingAverage(xs, 9)
	if sm[0] != 0 || sm[39] != 10 {
		t.Errorf("edges wrong: %v ... %v", sm[0], sm[39])
	}
	// The midpoint of the step should be roughly halfway.
	if sm[20] <= 2 || sm[20] >= 8 {
		t.Errorf("midpoint %v not smoothed", sm[20])
	}
	// Monotone non-decreasing through the transition.
	for i := 15; i < 25; i++ {
		if sm[i+1] < sm[i]-1e-12 {
			t.Errorf("smoothed step not monotone at %d: %v -> %v", i, sm[i], sm[i+1])
		}
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 1)
	h.AddAll([]float64{-1, 0, 0.5, 9.99, 10, 11})
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 {
		t.Errorf("bin 0 count = %d, want 2", h.Counts[0])
	}
	if h.Counts[9] != 1 {
		t.Errorf("bin 9 count = %d, want 1", h.Counts[9])
	}
	if h.Total != 6 {
		t.Errorf("Total = %d", h.Total)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for inverted bounds")
		}
	}()
	NewHistogram(5, 5, 1)
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 1)
	h.AddAll([]float64{1.5, 1.2, 1.9, 7.5})
	if got := h.Mode(); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("Mode = %v, want 1.5", got)
	}
}

func TestHistogramRenderNonEmpty(t *testing.T) {
	h := NewHistogram(0, 4, 1)
	h.AddAll([]float64{0.5, 0.6, 2.5})
	out := h.Render(20)
	if out == "" {
		t.Fatal("Render returned empty string")
	}
}

func TestOtsuSeparatesBimodal(t *testing.T) {
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, 35+float64(i%3)) // "hit" cluster near 35-37
	}
	for i := 0; i < 100; i++ {
		xs = append(xs, 50+float64(i%4)) // "miss" cluster near 50-53
	}
	th := OtsuThreshold(xs)
	if th <= 38 || th >= 50 {
		t.Errorf("threshold %v does not separate clusters (want in (38,50))", th)
	}
}

func TestOtsuDegenerate(t *testing.T) {
	if got := OtsuThreshold(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := OtsuThreshold([]float64{7, 7, 7}); got != 7 {
		t.Errorf("constant: %v", got)
	}
}

func TestClassify(t *testing.T) {
	bits := Classify([]float64{30, 50, 41, 39.9}, 40, 1, 0)
	want := []byte{1, 0, 0, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("Classify = %v, want %v", bits, want)
		}
	}
}

func TestFractionAbove(t *testing.T) {
	if got := FractionAbove([]float64{1, 2, 3, 4}, 2.5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("FractionAbove = %v", got)
	}
	if got := FractionAbove(nil, 0); got != 0 {
		t.Errorf("empty FractionAbove = %v", got)
	}
}

func TestEditDistanceKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"1", "", 1},
		{"", "101", 3},
		{"1010", "1010", 0},
		{"1010", "1000", 1},
		{"1010", "0101", 2}, // shift by one: delete front, insert back
		{"10101010", "1010101", 1},
	}
	for _, c := range cases {
		if got := EditDistance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetric(t *testing.T) {
	a, b := []byte("110100"), []byte("010011")
	if EditDistance(a, b) != EditDistance(b, a) {
		t.Error("edit distance not symmetric")
	}
}

func TestQuickEditDistanceProperties(t *testing.T) {
	// Identity, symmetry, and the length-difference lower bound.
	f := func(a, b []byte) bool {
		for i := range a {
			a[i] &= 1
		}
		for i := range b {
			b[i] &= 1
		}
		d := EditDistance(a, b)
		if d != EditDistance(b, a) {
			return false
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		if d < diff {
			return false
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		if d > max {
			return false
		}
		return EditDistance(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEditDistanceTriangle(t *testing.T) {
	f := func(a, b, c []byte) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		if len(c) > 30 {
			c = c[:30]
		}
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitErrorRateClamped(t *testing.T) {
	sent := []byte{1, 1}
	recv := []byte{0, 0, 1, 1, 0, 0}
	if r := BitErrorRate(sent, recv); r != 1 {
		t.Errorf("rate = %v, want clamped to 1", r)
	}
	if r := BitErrorRate(nil, recv); r != 0 {
		t.Errorf("empty sent rate = %v", r)
	}
}

func TestBestAlignmentFindsEmbeddedMessage(t *testing.T) {
	sent := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	received := append([]byte{0, 0, 0}, append(append([]byte{}, sent...), 1, 1)...)
	if r := BestAlignmentErrorRate(sent, received, 0); r != 0 {
		t.Errorf("embedded exact copy not found, rate = %v", r)
	}
}

func TestRunLengthDecode(t *testing.T) {
	// 3 samples per symbol, message 1,0,1 with one flipped sample.
	samples := []byte{1, 1, 0, 0, 0, 0, 1, 1, 1}
	got := RunLengthDecode(samples, 3)
	want := []byte{1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("decoded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decoded %v, want %v", got, want)
		}
	}
}

func TestRunLengthDecodeDegenerate(t *testing.T) {
	if got := RunLengthDecode(nil, 3); got != nil {
		t.Errorf("nil samples: %v", got)
	}
	if got := RunLengthDecode([]byte{1}, 0); got != nil {
		t.Errorf("zero rate: %v", got)
	}
}
