// Package stats contains the measurement post-processing used by the
// experiments: latency histograms (Figures 3, 13), moving averages
// (Figure 7), threshold selection between hit and miss latency clusters,
// bit-error accounting via the Wagner–Fischer edit distance (Section V), and
// simple summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics of xs. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MovingAverage returns the centered moving average of xs with the given
// window (the smoothing used for the AMD traces in Figure 7). Windows are
// truncated at the edges so the result has the same length as the input.
// window <= 1 returns a copy of xs.
func MovingAverage(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	if window <= 1 {
		copy(out, xs)
		return out
	}
	half := window / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// Histogram is a fixed-bin-width histogram over a float range.
type Histogram struct {
	Lo, Hi   float64 // range covered by the bins, [Lo, Hi)
	BinWidth float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	Total    int
}

// NewHistogram builds a histogram with bins of the given width spanning
// [lo, hi). It panics if the parameters do not describe at least one bin.
func NewHistogram(lo, hi, binWidth float64) *Histogram {
	if !(hi > lo) || !(binWidth > 0) {
		panic("stats: invalid histogram bounds")
	}
	n := int(math.Ceil((hi - lo) / binWidth))
	return &Histogram{Lo: lo, Hi: hi, BinWidth: binWidth, Counts: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.BinWidth)
		if i >= len(h.Counts) { // guard the hi-boundary rounding case
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Frequency returns the fraction of all samples landing in bin i.
func (h *Histogram) Frequency(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth
}

// Mode returns the center of the most populated bin, breaking ties toward
// the lower bin. It returns 0 when the histogram is empty.
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, 0
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return 0
	}
	return h.BinCenter(best)
}

// Render draws a textual histogram (one row per non-empty bin) used by the
// figure-regeneration commands. width is the length of the longest bar.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		fmt.Fprintf(&b, "%8.1f | %-*s %5.1f%%\n",
			h.BinCenter(i), width, strings.Repeat("#", bar), 100*h.Frequency(i))
	}
	return b.String()
}

// OtsuThreshold picks the latency threshold separating the "hit" cluster
// from the "miss" cluster of a bimodal sample, by maximizing between-class
// variance over candidate split points (Otsu's method on the raw sample).
// The paper's receiver needs exactly this: a red dotted line separating L1
// hits from misses in Figures 5, 7, 14. It returns the midpoint of the two
// extreme values when the sample has fewer than two distinct values.
func OtsuThreshold(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return sorted[0]
	}
	// Prefix sums for O(n) class statistics per split.
	prefix := make([]float64, len(sorted)+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
	}
	total := prefix[len(sorted)]
	n := float64(len(sorted))
	bestVar, bestSplit := -1.0, sorted[0]
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			continue
		}
		w0 := float64(i) / n
		w1 := 1 - w0
		mu0 := prefix[i] / float64(i)
		mu1 := (total - prefix[i]) / float64(len(sorted)-i)
		between := w0 * w1 * (mu0 - mu1) * (mu0 - mu1)
		if between > bestVar {
			bestVar = between
			bestSplit = (sorted[i-1] + sorted[i]) / 2
		}
	}
	return bestSplit
}

// Classify maps each latency to a bit using the threshold: values strictly
// above the threshold become `above`, others `below`. Used to turn receiver
// latencies into received bits.
func Classify(xs []float64, threshold float64, below, above byte) []byte {
	out := make([]byte, len(xs))
	for i, x := range xs {
		if x > threshold {
			out[i] = above
		} else {
			out[i] = below
		}
	}
	return out
}

// FractionAbove returns the fraction of samples strictly above the
// threshold (the "% of 1s received" metric of Figures 6, 8, 15).
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
