package stats

// EditDistance returns the Levenshtein distance between the bit strings a
// and b using the Wagner–Fischer dynamic program, the error metric of
// Section V: the distance counts bit flips (substitutions), bit insertions,
// and bit losses (deletions) with unit cost.
//
// Memory is O(min(len(a), len(b))) by keeping only two rows.
func EditDistance(a, b []byte) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// b is now the shorter string; rows have len(b)+1 entries.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			sub := prev[j-1] + cost
			m := del
			if ins < m {
				m = ins
			}
			if sub < m {
				m = sub
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// BitErrorRate returns EditDistance(sent, received) normalized by the number
// of sent bits, the per-trial error rate plotted in Figure 4. A zero-length
// sent string yields 0.
func BitErrorRate(sent, received []byte) float64 {
	if len(sent) == 0 {
		return 0
	}
	d := EditDistance(sent, received)
	r := float64(d) / float64(len(sent))
	if r > 1 {
		r = 1
	}
	return r
}

// BestAlignmentErrorRate slides `sent` over `received` and returns the
// minimum bit error rate over all alignments. The receiver of Algorithm 3
// does not know where in its sample stream the message starts; the paper's
// repeated-128-bit-string methodology implies scanning for the best-aligned
// copy. window is the number of received bits compared per alignment
// (len(sent) when window <= 0).
func BestAlignmentErrorRate(sent, received []byte, window int) float64 {
	if len(sent) == 0 {
		return 0
	}
	if window <= 0 || window > len(received) {
		window = len(received)
	}
	if len(received) <= len(sent) {
		return BitErrorRate(sent, received)
	}
	best := 1.0
	for off := 0; off+len(sent) <= len(received); off++ {
		end := off + window
		if end > len(received) {
			end = len(received)
		}
		r := BitErrorRate(sent, received[off:off+len(sent)])
		_ = end
		if r < best {
			best = r
			if best == 0 {
				break
			}
		}
	}
	return best
}

// RunLengthDecode collapses runs of identical bits in a raw sample stream
// into one decoded bit per transmitted symbol, given the expected number of
// samples per symbol. The receiver samples every Tr cycles while the sender
// holds each bit for Ts cycles, so each transmitted bit appears as about
// Ts/Tr consecutive samples; majority vote within each stretch decodes it.
func RunLengthDecode(samples []byte, samplesPerSymbol float64) []byte {
	if samplesPerSymbol <= 0 || len(samples) == 0 {
		return nil
	}
	nsym := int(float64(len(samples)) / samplesPerSymbol)
	out := make([]byte, 0, nsym)
	for s := 0; s < nsym; s++ {
		lo := int(float64(s) * samplesPerSymbol)
		hi := int(float64(s+1) * samplesPerSymbol)
		if hi > len(samples) {
			hi = len(samples)
		}
		if lo >= hi {
			break
		}
		ones := 0
		for _, b := range samples[lo:hi] {
			ones += int(b)
		}
		if 2*ones >= hi-lo {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}
