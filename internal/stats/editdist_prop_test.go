package stats

// Property tests for the edit-distance metric: Levenshtein distance is
// a metric on strings, so it must be symmetric, satisfy the triangle
// inequality, and vanish exactly on identical inputs. The decoding
// pipeline (BestAlignmentErrorRate) silently depends on all three.

import (
	"testing"

	"repro/internal/rng"
)

func randomBits(r *rng.Rand, maxLen int) []byte {
	return r.Bits(r.Intn(maxLen + 1))
}

func TestEditDistanceIdentity(t *testing.T) {
	r := rng.New(101)
	for i := 0; i < 200; i++ {
		a := randomBits(r, 16)
		if d := EditDistance(a, a); d != 0 {
			t.Fatalf("EditDistance(a, a) = %d for %v", d, a)
		}
	}
}

func TestEditDistanceSymmetry(t *testing.T) {
	r := rng.New(102)
	for i := 0; i < 500; i++ {
		a, b := randomBits(r, 12), randomBits(r, 12)
		ab, ba := EditDistance(a, b), EditDistance(b, a)
		if ab != ba {
			t.Fatalf("EditDistance(%v, %v) = %d but reversed = %d", a, b, ab, ba)
		}
	}
}

func TestEditDistanceTriangleInequality(t *testing.T) {
	r := rng.New(103)
	for i := 0; i < 500; i++ {
		a, b, c := randomBits(r, 10), randomBits(r, 10), randomBits(r, 10)
		ac := EditDistance(a, c)
		ab := EditDistance(a, b)
		bc := EditDistance(b, c)
		if ac > ab+bc {
			t.Fatalf("triangle violated: d(%v,%v)=%d > d(.,%v)+d(%v,.)=%d+%d",
				a, c, ac, b, b, ab, bc)
		}
	}
}

// The distance is bounded by the length of the longer string (delete
// everything, insert everything better is never needed), and a
// length difference alone forces at least that many edits.
func TestEditDistanceBounds(t *testing.T) {
	r := rng.New(104)
	for i := 0; i < 500; i++ {
		a, b := randomBits(r, 14), randomBits(r, 14)
		d := EditDistance(a, b)
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		if d < lo || d > hi {
			t.Fatalf("EditDistance(%v, %v) = %d outside [%d, %d]", a, b, d, lo, hi)
		}
	}
}
