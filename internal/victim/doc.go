// Package victim models secret-dependent victim programs for the
// secret-recovery side channel: each victim processes one secret symbol
// per "event window" (an AES first-round lookup, one square-and-multiply
// exponent bit, one keystroke) and performs exactly one secret-dependent
// memory access in that window — the single-access case the paper's LRU
// channel can observe and flush- or eviction-based attacks cannot.
//
// A victim's access stream is deterministic in (symbol, seed): the same
// symbol under the same window seed yields the identical Step sequence,
// which is what makes the attacker's template profiling transfer from
// its replica to the live run. Around the secret-dependent access every
// victim emits benign background traffic — a hot loop over a small
// private working set plus noise drawn from a workload.Generator — so
// its performance-counter profile looks like a working program rather
// than a bare gadget.
//
// Addresses are physical line numbers (line = tag*sets + set), the
// currency of internal/cache and the attack targets; victims, attacker
// and noise live in disjoint tag ranges so they can only collide in the
// dimension that matters: the cache set.
//
// Three victims are implemented: TTable (AES-style 16-line nibble
// lookup), SquareMultiply (per-exponent-bit branch) and TableLookup (a
// generic dispatch with configurable width and noise). ByName
// constructs each at its default placement; DemoSecret, ParseSecret
// and FormatSecret handle the planted keys the attacks recover.
package victim
