package victim

import (
	"testing"
)

func allVictims(t *testing.T) []Victim {
	t.Helper()
	var out []Victim
	for _, name := range Names() {
		v, err := ByName(name, 64)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if v.Name() != name {
			t.Errorf("ByName(%q) yields Name %q", name, v.Name())
		}
		out = append(out, v)
	}
	return out
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 64); err == nil {
		t.Error("unknown victim accepted")
	}
}

func TestSequenceDeterministic(t *testing.T) {
	for _, v := range allVictims(t) {
		for sym := 0; sym < v.SymbolSpace(); sym++ {
			a := v.Sequence(sym, 42)
			b := v.Sequence(sym, 42)
			if len(a) != len(b) {
				t.Fatalf("%s: lengths differ for symbol %d", v.Name(), sym)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: step %d differs for symbol %d", v.Name(), i, sym)
				}
			}
		}
	}
}

func TestSequenceHasExactlyOneSecretAccessInMonitoredSet(t *testing.T) {
	for _, v := range allVictims(t) {
		monitored := map[int]bool{}
		for _, s := range v.MonitorSets() {
			monitored[s] = true
		}
		for sym := 0; sym < v.SymbolSpace(); sym++ {
			secrets := 0
			for _, st := range v.Sequence(sym, 7) {
				if st.Secret {
					secrets++
					if !monitored[int(st.Line%64)] {
						t.Errorf("%s: secret access to unmonitored set %d", v.Name(), st.Line%64)
					}
				}
			}
			// Square-and-multiply's bit 0 is encoded by ABSENCE of the
			// multiply access; every other (victim, symbol) pair makes
			// exactly one secret-dependent access.
			wantSecret := 1
			if v.Name() == "sqmul" && sym == 0 {
				wantSecret = 0
			}
			if secrets != wantSecret {
				t.Errorf("%s symbol %d: %d secret accesses, want %d", v.Name(), sym, secrets, wantSecret)
			}
		}
	}
}

func TestDistinctSymbolsTouchDistinctLines(t *testing.T) {
	for _, v := range allVictims(t) {
		lines := v.TableLines()
		seen := map[uint64]bool{}
		for _, ln := range lines {
			if seen[ln] {
				t.Errorf("%s: duplicate table line %d", v.Name(), ln)
			}
			seen[ln] = true
		}
	}
}

func TestSymbolReduction(t *testing.T) {
	v, _ := ByName("ttable", 64)
	a := v.Sequence(-1, 5)
	b := v.Sequence(15, 5)
	if len(a) != len(b) {
		t.Fatal("reduced symbol sequence length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("-1 should reduce to 15 for a 16-symbol victim")
		}
	}
}

func TestWarmLinesCoverNoiseFootprint(t *testing.T) {
	v, _ := ByName("ttable", 64)
	warm := map[uint64]bool{}
	for _, ln := range v.WarmLines() {
		warm[ln] = true
	}
	// Every non-secret line any window can touch must be pre-warmed.
	for sym := 0; sym < v.SymbolSpace(); sym++ {
		for seed := uint64(1); seed < 20; seed++ {
			for _, st := range v.Sequence(sym, seed) {
				if !st.Secret && !warm[st.Line] {
					t.Fatalf("background line %d not in WarmLines", st.Line)
				}
			}
		}
	}
}

func TestDemoSecretDeterministicAndInRange(t *testing.T) {
	for _, v := range allVictims(t) {
		a := DemoSecret(v, 32, 9)
		b := DemoSecret(v, 32, 9)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: demo secret not deterministic", v.Name())
			}
			if a[i] < 0 || a[i] >= v.SymbolSpace() {
				t.Fatalf("%s: symbol %d out of range", v.Name(), a[i])
			}
		}
	}
}

func TestParseFormatSecretRoundTrip(t *testing.T) {
	v, _ := ByName("ttable", 64)
	sec, err := ParseSecret(v, "0fA9")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 15, 10, 9}
	for i := range want {
		if sec[i] != want[i] {
			t.Fatalf("parsed %v, want %v", sec, want)
		}
	}
	if got := FormatSecret(v, sec); got != "0fa9" {
		t.Errorf("formatted %q", got)
	}
	if _, err := ParseSecret(v, "xyz"); err == nil {
		t.Error("non-hex secret accepted for 16-symbol victim")
	}
	if _, err := ParseSecret(v, ""); err == nil {
		t.Error("empty secret accepted")
	}

	bits, _ := ByName("sqmul", 64)
	if _, err := ParseSecret(bits, "10110"); err != nil {
		t.Errorf("bit secret rejected: %v", err)
	}
	if _, err := ParseSecret(bits, "2"); err == nil {
		t.Error("digit 2 accepted for a 2-symbol victim")
	}
}

func TestLookupWidthValidation(t *testing.T) {
	if _, err := NewTableLookup(64, 0, 1, "gcc"); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := NewTableLookup(64, 0, 65, "gcc"); err == nil {
		t.Error("width > sets accepted")
	}
	if _, err := NewTableLookup(64, 0, 8, "not-a-benchmark"); err == nil {
		t.Error("unknown generator accepted")
	}
}
