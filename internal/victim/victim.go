package victim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/workload"
)

// Tag bases carve the (infinite) physical line space into disjoint
// regions per traffic class. Attack code uses its own base (see
// internal/attack); these only need to avoid each other and that one.
const (
	tableTagBase = 1 << 10 // secret-indexed table lines
	noiseTagBase = 1 << 12 // workload-generator noise
	hotTagBase   = 1 << 14 // benign hot-loop lines
)

// Background traffic defaults: per event window, the number of noise
// accesses drawn from the workload generator and the length of the
// benign hot loop. The hot loop dominates the victim's counter profile
// (almost all hits), keeping a working victim's miss rate benign.
const (
	defaultNoisePerWindow = 4
	defaultHotPerWindow   = 320
	hotLineCount          = 8
	// noiseDepth is the per-set depth of the noise footprint; 3 lines
	// plus one table line fit even a half-associativity DAWG partition,
	// so background traffic alone never thrashes the victim.
	noiseDepth = 3
)

// Step is one memory access by the victim: the physical line it touches
// and whether this is the window's secret-dependent access (ground
// truth kept for tests and profiling; the attacker never reads it).
type Step struct {
	Line   uint64
	Secret bool
}

// Victim is a secret-dependent program. One call to Sequence is one
// event window: the accesses the victim performs while processing a
// single secret symbol.
type Victim interface {
	// Name identifies the victim for reports and flags.
	Name() string
	// SymbolSpace is the number of distinct secret symbol values (16
	// for a key nibble, 2 for an exponent bit).
	SymbolSpace() int
	// MonitorSets lists the L1 sets an attacker must watch: the sets
	// the secret-dependent access can land in.
	MonitorSets() []int
	// TableLines are the victim's secret-indexed lines, to be resident
	// (warmed, and under a PL cache locked) before the attack begins.
	TableLines() []uint64
	// WarmLines are the victim's benign working set (hot loop and noise
	// footprint), touched once at program start.
	WarmLines() []uint64
	// Sequence returns the deterministic access sequence for one event
	// window processing the given symbol. Equal (symbol, seed) pairs
	// yield identical sequences; out-of-range symbols are reduced into
	// the symbol space.
	Sequence(symbol int, seed uint64) []Step
}

// background is the benign traffic mixed around every victim's
// secret-dependent access.
type background struct {
	sets           int
	gen            workload.Generator
	noisePerWindow int
	hotPerWindow   int
	hotLines       []uint64
}

func newBackground(sets int, genName string) background {
	g, err := workload.ByName(genName, 1)
	if err != nil {
		panic(err) // victim constructors pass fixed, known names
	}
	b := background{
		sets:           sets,
		gen:            g,
		noisePerWindow: defaultNoisePerWindow,
		hotPerWindow:   defaultHotPerWindow,
	}
	// The hot loop lives in the last few sets, away from the table
	// regions the attacker monitors.
	for i := 0; i < hotLineCount; i++ {
		set := sets - 1 - i%sets
		b.hotLines = append(b.hotLines, uint64(hotTagBase)*uint64(sets)+uint64(set))
	}
	return b
}

// noiseLine maps one generator reference into the victim's noise
// region: the generator's set index is preserved (noise genuinely
// pollutes monitored sets, like a real program's data traffic) while
// the tag is folded into a noiseDepth-deep footprint per set.
func (b *background) noiseLine(a workload.Access) uint64 {
	gl := a.Addr / 64
	set := gl % uint64(b.sets)
	depth := (gl / uint64(b.sets)) % noiseDepth
	return (uint64(noiseTagBase)+depth)*uint64(b.sets) + set
}

// warmLines lists the background working set — the hot loop plus the
// whole noise footprint — which the victim touches at startup like any
// program faulting in its data. Warming it keeps the victim's
// steady-state counter profile benign (background references hit).
func (b *background) warmLines() []uint64 {
	out := append([]uint64(nil), b.hotLines...)
	for depth := uint64(0); depth < noiseDepth; depth++ {
		for set := 0; set < b.sets; set++ {
			out = append(out, (uint64(noiseTagBase)+depth)*uint64(b.sets)+uint64(set))
		}
	}
	return out
}

// wrap builds the full window sequence: half the hot loop, the secret
// steps, the generator noise, then the rest of the hot loop. The noise
// draw is reseeded per window so the sequence is a pure function of
// (steps, seed).
func (b *background) wrap(secret []Step, seed uint64) []Step {
	out := make([]Step, 0, b.hotPerWindow+b.noisePerWindow+len(secret))
	half := b.hotPerWindow / 2
	for i := 0; i < half; i++ {
		out = append(out, Step{Line: b.hotLines[i%len(b.hotLines)]})
	}
	out = append(out, secret...)
	b.gen.Reset(seed)
	for i := 0; i < b.noisePerWindow; i++ {
		out = append(out, Step{Line: b.noiseLine(b.gen.Next())})
	}
	for i := half; i < b.hotPerWindow; i++ {
		out = append(out, Step{Line: b.hotLines[i%len(b.hotLines)]})
	}
	return out
}

// reduce folds an arbitrary symbol into [0, space).
func reduce(symbol, space int) int {
	s := symbol % space
	if s < 0 {
		s += space
	}
	return s
}

// lineForSet returns the table line mapping to the given set.
func lineForSet(sets, set int) uint64 {
	return uint64(tableTagBase)*uint64(sets) + uint64(set%sets)
}

// TTable is the AES-style T-table victim: a 16-line lookup table, one
// line per set starting at BaseSet, indexed by a key nibble. Each event
// window performs the single first-round access T[nibble].
type TTable struct {
	bg   background
	sets int
	base int
}

// NewTTable builds the T-table victim over a cache with the given set
// count. The table occupies sets baseSet..baseSet+15 (mod sets).
func NewTTable(sets, baseSet int) *TTable {
	if sets < 16 {
		panic(fmt.Sprintf("victim: ttable needs >= 16 sets, got %d", sets))
	}
	return &TTable{bg: newBackground(sets, "gcc"), sets: sets, base: baseSet}
}

// Name identifies the victim.
func (t *TTable) Name() string { return "ttable" }

// SymbolSpace is 16: one key nibble per lookup.
func (t *TTable) SymbolSpace() int { return 16 }

// MonitorSets lists the 16 table sets.
func (t *TTable) MonitorSets() []int {
	out := make([]int, 16)
	for i := range out {
		out[i] = (t.base + i) % t.sets
	}
	return out
}

// TableLines returns the 16 T-table lines, symbol-indexed.
func (t *TTable) TableLines() []uint64 {
	out := make([]uint64, 16)
	for i := range out {
		out[i] = lineForSet(t.sets, (t.base+i)%t.sets)
	}
	return out
}

// WarmLines is the benign working set.
func (t *TTable) WarmLines() []uint64 { return t.bg.warmLines() }

// Sequence is one table lookup plus background traffic.
func (t *TTable) Sequence(symbol int, seed uint64) []Step {
	k := reduce(symbol, 16)
	return t.bg.wrap([]Step{{Line: lineForSet(t.sets, (t.base+k)%t.sets), Secret: true}}, seed)
}

// SquareMultiply is the square-and-multiply modular-exponentiation
// victim: each window processes one exponent bit. The squaring table
// line (set BaseSet) is touched unconditionally; the multiply table
// line (set BaseSet+1) is touched only when the bit is 1 — the classic
// per-bit branch whose data access betrays the exponent.
type SquareMultiply struct {
	bg   background
	sets int
	base int
}

// NewSquareMultiply builds the exponentiation victim.
func NewSquareMultiply(sets, baseSet int) *SquareMultiply {
	if sets < 2 {
		panic(fmt.Sprintf("victim: sqmul needs >= 2 sets, got %d", sets))
	}
	return &SquareMultiply{bg: newBackground(sets, "perlbench"), sets: sets, base: baseSet}
}

// Name identifies the victim.
func (s *SquareMultiply) Name() string { return "sqmul" }

// SymbolSpace is 2: one exponent bit per window.
func (s *SquareMultiply) SymbolSpace() int { return 2 }

// MonitorSets lists the squaring and multiply sets.
func (s *SquareMultiply) MonitorSets() []int {
	return []int{s.base % s.sets, (s.base + 1) % s.sets}
}

// TableLines returns the squaring and multiply lines.
func (s *SquareMultiply) TableLines() []uint64 {
	return []uint64{
		lineForSet(s.sets, s.base%s.sets),
		lineForSet(s.sets, (s.base+1)%s.sets),
	}
}

// WarmLines is the benign working set.
func (s *SquareMultiply) WarmLines() []uint64 { return s.bg.warmLines() }

// Sequence squares always and multiplies iff the bit is 1.
func (s *SquareMultiply) Sequence(symbol int, seed uint64) []Step {
	bit := reduce(symbol, 2)
	steps := []Step{{Line: lineForSet(s.sets, s.base%s.sets)}}
	if bit == 1 {
		steps = append(steps, Step{Line: lineForSet(s.sets, (s.base+1)%s.sets), Secret: true})
	}
	return s.bg.wrap(steps, seed)
}

// TableLookup is the generic table-indexed victim (a keystroke handler
// dispatching on a scan-code byte, say): Width table lines, one per
// set, indexed by the secret symbol, with configurable background noise
// from a workload.Generator.
type TableLookup struct {
	bg    background
	sets  int
	base  int
	width int
}

// NewTableLookup builds a lookup victim with the given secret width and
// background-noise generator (any Figure 9 workload name).
func NewTableLookup(sets, baseSet, width int, genName string) (*TableLookup, error) {
	if width < 2 || width > sets {
		return nil, fmt.Errorf("victim: lookup width %d out of range [2,%d]", width, sets)
	}
	if _, err := workload.ByName(genName, 1); err != nil {
		return nil, err
	}
	return &TableLookup{bg: newBackground(sets, genName), sets: sets, base: baseSet, width: width}, nil
}

// SetNoise overrides the per-window background-noise access count (the
// knob the evaluation sweeps to stress the classifier).
func (l *TableLookup) SetNoise(perWindow int) {
	if perWindow >= 0 {
		l.bg.noisePerWindow = perWindow
	}
}

// Name identifies the victim.
func (l *TableLookup) Name() string { return "lookup" }

// SymbolSpace is the configured secret width.
func (l *TableLookup) SymbolSpace() int { return l.width }

// MonitorSets lists the table sets.
func (l *TableLookup) MonitorSets() []int {
	out := make([]int, l.width)
	for i := range out {
		out[i] = (l.base + i) % l.sets
	}
	return out
}

// TableLines returns the symbol-indexed table lines.
func (l *TableLookup) TableLines() []uint64 {
	out := make([]uint64, l.width)
	for i := range out {
		out[i] = lineForSet(l.sets, (l.base+i)%l.sets)
	}
	return out
}

// WarmLines is the benign working set.
func (l *TableLookup) WarmLines() []uint64 { return l.bg.warmLines() }

// Sequence is one table dispatch plus background traffic.
func (l *TableLookup) Sequence(symbol int, seed uint64) []Step {
	k := reduce(symbol, l.width)
	return l.bg.wrap([]Step{{Line: lineForSet(l.sets, (l.base+k)%l.sets), Secret: true}}, seed)
}

// Names lists the victim kinds ByName accepts, in presentation order.
func Names() []string { return []string{"ttable", "sqmul", "lookup"} }

// ByName constructs a victim by kind name over a cache with the given
// set count, at each kind's default placement and configuration.
func ByName(name string, sets int) (Victim, error) {
	switch strings.ToLower(name) {
	case "ttable", "aes":
		return NewTTable(sets, 8), nil
	case "sqmul", "rsa", "squaremultiply":
		return NewSquareMultiply(sets, 30), nil
	case "lookup", "keystroke":
		return NewTableLookup(sets, 34, 8, "gcc")
	default:
		return nil, fmt.Errorf("victim: unknown victim %q (want one of %s)",
			name, strings.Join(Names(), ", "))
	}
}

// DemoSecret derives a deterministic demo secret of n symbols for the
// victim from a seed — the "planted key" every attack run and sweep
// cell tries to recover.
func DemoSecret(v Victim, n int, seed uint64) []int {
	r := rng.New(seed ^ 0x5ec2e7)
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(v.SymbolSpace())
	}
	return out
}

// ParseSecret decodes a textual secret into symbols for the victim:
// each character is a digit in the victim's symbol base (hex digits for
// the 16-symbol T-table, 0/1 bits for square-and-multiply).
func ParseSecret(v Victim, s string) ([]int, error) {
	base := v.SymbolSpace()
	if base > 36 {
		base = 36
	}
	out := make([]int, 0, len(s))
	for _, c := range strings.ToLower(s) {
		d, err := strconv.ParseInt(string(c), base, 32)
		if err != nil {
			return nil, fmt.Errorf("victim: secret char %q is not a base-%d digit", c, base)
		}
		out = append(out, int(d))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("victim: empty secret")
	}
	return out, nil
}

// FormatSecret renders symbols in the victim's digit base, inverse of
// ParseSecret.
func FormatSecret(v Victim, symbols []int) string {
	base := v.SymbolSpace()
	if base > 36 {
		base = 36
	}
	var b strings.Builder
	for _, s := range symbols {
		b.WriteString(strconv.FormatInt(int64(reduce(s, base)), base))
	}
	return b.String()
}
