package victim

import "testing"

// FuzzSequenceInvariants is the victim-sequence invariant fuzz: for any
// (victim, symbol, seed), two Sequence calls must yield the identical
// access stream (the property template profiling transfers on), the
// stream must be non-empty, and every secret-dependent access must land
// in a monitored set.
func FuzzSequenceInvariants(f *testing.F) {
	f.Add(uint8(0), int16(3), uint64(1))
	f.Add(uint8(1), int16(-7), uint64(0))
	f.Add(uint8(2), int16(1000), uint64(1<<63))
	f.Fuzz(func(t *testing.T, which uint8, symbol int16, seed uint64) {
		name := Names()[int(which)%len(Names())]
		v, err := ByName(name, 64)
		if err != nil {
			t.Fatal(err)
		}
		a := v.Sequence(int(symbol), seed)
		b := v.Sequence(int(symbol), seed)
		if len(a) == 0 {
			t.Fatalf("%s: empty sequence", name)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: non-deterministic length %d vs %d", name, len(a), len(b))
		}
		monitored := map[uint64]bool{}
		for _, s := range v.MonitorSets() {
			monitored[uint64(s)] = true
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: step %d differs across identical calls", name, i)
			}
			if a[i].Secret && !monitored[a[i].Line%64] {
				t.Fatalf("%s: secret access outside monitored sets", name)
			}
		}
	})
}
