// Package uarch holds the microarchitecture profiles of the three CPUs the
// paper evaluates (Table II and Table III): Intel Sandy Bridge (Xeon
// E5-2690), Intel Skylake (Xeon E3-1245 v5), and AMD Zen (EPYC 7571).
//
// A Profile captures everything the channel's behaviour depends on: cache
// geometry and latencies, clock frequency (which converts a fixed cycle
// budget Ts into a wall-clock transmission rate), time-stamp-counter
// readout granularity (fine on Intel, coarse on AMD — the cause of the
// order-of-magnitude rate gap of Section VI), the AMD linear-address utag
// way predictor, and DVFS frequency wobble.
package uarch

import (
	"fmt"
	"strings"
)

// Profile describes one microarchitecture.
type Profile struct {
	Name string  // marketing CPU model, e.g. "Intel Xeon E5-2690"
	Arch string  // microarchitecture family, e.g. "Sandy Bridge"
	Freq float64 // nominal core clock in GHz

	LineSize int

	// L1 data cache geometry and load-to-use latency (cycles).
	L1Sets, L1Ways, L1Latency int
	// L2 geometry and hit latency (cycles).
	L2Sets, L2Ways, L2Latency int
	// Memory access latency (cycles) for loads missing all caches.
	MemLatency int

	// TSCQuantum is the effective granularity, in core cycles, of one
	// observable increment of the time stamp counter readout. Intel
	// rdtscp resolves individual core cycles (quantum 1); on the AMD
	// EPYC 7571 the readout is far coarser (Section VI-A), which forces
	// the receiver into averaging and costs an order of magnitude of
	// bandwidth.
	TSCQuantum int

	// MeasureOverhead is the fixed serialization cost, in cycles, that a
	// rdtscp-bracketed measurement adds on top of the memory access
	// itself; MeasureJitter is the standard deviation of its noise.
	MeasureOverhead int
	MeasureJitter   float64

	// HasUtagPredictor enables the AMD L1 linear-address utag / way
	// predictor model (Section VI-B): hits reached through a different
	// linear address than the one that trained the utag observe L1-miss
	// latency.
	HasUtagPredictor bool

	// DVFSWobble is the relative amplitude of slow frequency drift due
	// to power management. The paper observes (Figure 7) that the AMD
	// part ran at visibly different effective frequencies between
	// captures; a nonzero wobble reproduces the shifting latency bands.
	DVFSWobble float64
}

// String returns the CPU model name.
func (p Profile) String() string { return p.Name }

// CyclesToSeconds converts core cycles to seconds at nominal frequency.
func (p Profile) CyclesToSeconds(cycles float64) float64 {
	return cycles / (p.Freq * 1e9)
}

// BitsPerSecond converts a per-bit cycle budget into a transmission rate.
func (p Profile) BitsPerSecond(cyclesPerBit float64) float64 {
	if cyclesPerBit <= 0 {
		return 0
	}
	return p.Freq * 1e9 / cyclesPerBit
}

// L1MissDistinguishable reports whether a single L1-hit/L1-miss latency
// difference exceeds one TSC readout quantum, i.e. whether the receiver can
// decode single measurements (Intel) or must average (AMD).
func (p Profile) L1MissDistinguishable() bool {
	return p.L2Latency-p.L1Latency >= p.TSCQuantum
}

// SandyBridge returns the Intel Xeon E5-2690 profile (Table III, column 1).
func SandyBridge() Profile {
	return Profile{
		Name: "Intel Xeon E5-2690", Arch: "Sandy Bridge", Freq: 3.8,
		LineSize: 64,
		L1Sets:   64, L1Ways: 8, L1Latency: 4,
		L2Sets: 512, L2Ways: 8, L2Latency: 12,
		MemLatency:      200,
		TSCQuantum:      1,
		MeasureOverhead: 3,
		MeasureJitter:   1.2,
	}
}

// Skylake returns the Intel Xeon E3-1245 v5 profile (Table III, column 2).
func Skylake() Profile {
	return Profile{
		Name: "Intel Xeon E3-1245 v5", Arch: "Skylake", Freq: 3.9,
		LineSize: 64,
		L1Sets:   64, L1Ways: 8, L1Latency: 4,
		L2Sets: 1024, L2Ways: 4, L2Latency: 12,
		MemLatency:      210,
		TSCQuantum:      1,
		MeasureOverhead: 8,
		MeasureJitter:   1.5,
	}
}

// Zen returns the AMD EPYC 7571 profile (Table III, column 3).
func Zen() Profile {
	return Profile{
		Name: "AMD EPYC 7571", Arch: "Zen", Freq: 2.5,
		LineSize: 64,
		L1Sets:   64, L1Ways: 8, L1Latency: 5,
		L2Sets: 1024, L2Ways: 8, L2Latency: 17,
		MemLatency:       220,
		TSCQuantum:       24,
		MeasureOverhead:  12,
		MeasureJitter:    5,
		HasUtagPredictor: true,
		DVFSWobble:       0.15,
	}
}

// Profiles returns every profile the paper evaluates, in Table III order.
func Profiles() []Profile { return []Profile{SandyBridge(), Skylake(), Zen()} }

// ByName finds a profile by CPU model or microarchitecture name
// (case-insensitive substring match), for command-line flags.
func ByName(name string) (Profile, error) {
	n := strings.ToLower(name)
	for _, p := range Profiles() {
		if strings.Contains(strings.ToLower(p.Name), n) ||
			strings.Contains(strings.ToLower(p.Arch), n) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("uarch: no profile matches %q", name)
}
