package uarch

import (
	"math"
	"testing"
)

func TestProfilesMatchTableIII(t *testing.T) {
	sb := SandyBridge()
	if sb.L1Sets != 64 || sb.L1Ways != 8 || sb.LineSize != 64 {
		t.Errorf("Sandy Bridge L1 geometry = %d sets x %d ways", sb.L1Sets, sb.L1Ways)
	}
	if sb.Freq != 3.8 {
		t.Errorf("Sandy Bridge frequency = %v", sb.Freq)
	}
	sk := Skylake()
	if sk.Freq != 3.9 || sk.L1Ways != 8 {
		t.Errorf("Skylake profile wrong: %+v", sk)
	}
	zen := Zen()
	if zen.Freq != 2.5 || !zen.HasUtagPredictor {
		t.Errorf("Zen profile wrong: %+v", zen)
	}
	// 32 KiB L1D on all three parts.
	for _, p := range Profiles() {
		if got := p.L1Sets * p.L1Ways * p.LineSize; got != 32*1024 {
			t.Errorf("%s: L1D size = %d bytes, want 32 KiB", p.Name, got)
		}
	}
}

func TestLatenciesMatchTableII(t *testing.T) {
	// Table II: L1D 4-5 cycles everywhere; L2 12 on Intel, 17 on AMD.
	for _, p := range []Profile{SandyBridge(), Skylake()} {
		if p.L1Latency < 4 || p.L1Latency > 5 || p.L2Latency != 12 {
			t.Errorf("%s latencies L1=%d L2=%d", p.Name, p.L1Latency, p.L2Latency)
		}
	}
	z := Zen()
	if z.L1Latency < 4 || z.L1Latency > 5 || z.L2Latency != 17 {
		t.Errorf("Zen latencies L1=%d L2=%d", z.L1Latency, z.L2Latency)
	}
}

func TestIntelFineAMDCoarseTSC(t *testing.T) {
	if !SandyBridge().L1MissDistinguishable() {
		t.Error("Sandy Bridge should distinguish L1 hit from miss in one shot")
	}
	if !Skylake().L1MissDistinguishable() {
		t.Error("Skylake should distinguish L1 hit from miss in one shot")
	}
	if Zen().L1MissDistinguishable() {
		t.Error("Zen should NOT distinguish a single L1 hit from miss (coarse TSC)")
	}
}

func TestCyclesToSeconds(t *testing.T) {
	p := SandyBridge()
	got := p.CyclesToSeconds(3.8e9)
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("3.8e9 cycles at 3.8GHz = %v s, want 1", got)
	}
}

func TestBitsPerSecond(t *testing.T) {
	p := SandyBridge()
	// Ts = 6000 cycles/bit at 3.8 GHz -> ~633 Kbps upper bound; the paper
	// reports 480 Kbps effective for this setting, so the bound must be
	// in the hundreds of Kbps.
	bps := p.BitsPerSecond(6000)
	if bps < 400e3 || bps > 700e3 {
		t.Errorf("rate at Ts=6000 = %v bps", bps)
	}
	if p.BitsPerSecond(0) != 0 {
		t.Error("zero cycle budget should yield 0 rate")
	}
}

func TestByName(t *testing.T) {
	for _, q := range []string{"E5-2690", "sandy", "skylake", "EPYC", "zen"} {
		if _, err := ByName(q); err != nil {
			t.Errorf("ByName(%q) failed: %v", q, err)
		}
	}
	if _, err := ByName("pentium"); err == nil {
		t.Error("ByName accepted unknown CPU")
	}
}

func TestProfilesOrder(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("got %d profiles", len(ps))
	}
	if ps[0].Arch != "Sandy Bridge" || ps[1].Arch != "Skylake" || ps[2].Arch != "Zen" {
		t.Errorf("profile order: %v %v %v", ps[0].Arch, ps[1].Arch, ps[2].Arch)
	}
}
