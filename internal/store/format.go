package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
)

// Entry file format, version 1. Everything is big-endian:
//
//	offset  size  field
//	0       4     magic "LLRS" (lru-leak result store)
//	4       2     format version (1)
//	6       2     key length K
//	8       4     payload length P
//	12      4     CRC-32C (Castagnoli) over key bytes ++ payload bytes
//	16      K     key
//	16+K    P     payload
//
// The header carries the full key (not just its hash) so a verified
// entry proves which logical key it belongs to, independent of its
// filename; the length fields make truncation detectable before the
// CRC is even computed, so a torn write is classified as corrupt, not
// misread as a short payload.
const (
	entryMagic    = "LLRS"
	formatVersion = 1
	headerSize    = 4 + 2 + 2 + 4 + 4
	maxKeyLen     = 1<<16 - 1
)

// entrySuffix names committed entries; tempSuffix names in-flight
// writes (removed by the recovery scan — a temp file is by definition
// a write that never committed).
const (
	entrySuffix = ".entry"
	tempSuffix  = ".tmp"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// entryFile maps a key onto its committed filename: hex SHA-256 of the
// key plus the entry suffix. Hashing keeps arbitrary keys (the Store
// contract does not require path-safe ones) on the filename charset;
// the authoritative key lives in the entry header.
func entryFile(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + entrySuffix
}

// encodeEntry renders the on-disk bytes for (key, payload).
func encodeEntry(key string, payload []byte) ([]byte, error) {
	if key == "" {
		return nil, fmt.Errorf("store: empty key")
	}
	if len(key) > maxKeyLen {
		return nil, fmt.Errorf("store: key length %d exceeds %d", len(key), maxKeyLen)
	}
	buf := make([]byte, headerSize+len(key)+len(payload))
	copy(buf[0:4], entryMagic)
	binary.BigEndian.PutUint16(buf[4:6], formatVersion)
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(key)))
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(payload)))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], payload)
	binary.BigEndian.PutUint32(buf[12:16], crc32.Checksum(buf[headerSize:], castagnoli))
	return buf, nil
}

// decodeEntry parses and fully verifies one entry file's bytes. Any
// failure — short header, wrong magic, unknown version, truncated or
// oversized body, CRC mismatch — is a non-nil error; the caller
// quarantines on error.
func decodeEntry(raw []byte) (key string, payload []byte, err error) {
	if len(raw) < headerSize {
		return "", nil, fmt.Errorf("%d bytes, shorter than the %d-byte header", len(raw), headerSize)
	}
	if string(raw[0:4]) != entryMagic {
		return "", nil, fmt.Errorf("bad magic %q", raw[0:4])
	}
	if v := binary.BigEndian.Uint16(raw[4:6]); v != formatVersion {
		return "", nil, fmt.Errorf("unknown format version %d", v)
	}
	keyLen := int(binary.BigEndian.Uint16(raw[6:8]))
	payLen := int(binary.BigEndian.Uint32(raw[8:12]))
	if want := headerSize + keyLen + payLen; len(raw) != want {
		return "", nil, fmt.Errorf("%d bytes, header declares %d (torn or padded write)", len(raw), want)
	}
	if got, want := crc32.Checksum(raw[headerSize:], castagnoli), binary.BigEndian.Uint32(raw[12:16]); got != want {
		return "", nil, fmt.Errorf("payload CRC %08x, header declares %08x", got, want)
	}
	key = string(raw[headerSize : headerSize+keyLen])
	payload = append([]byte(nil), raw[headerSize+keyLen:]...)
	return key, payload, nil
}
