package store

import (
	"errors"
	"sort"
	"sync"
)

// Store is a durable (or durable-enough-for-tests) content-addressed
// payload map. Keys are opaque non-empty strings — the service uses
// its hex SHA-256 content addresses — and payloads are byte blobs the
// store never interprets. Implementations are safe for concurrent use.
type Store interface {
	// Get returns the payload stored under key. A missing key is
	// ErrNotFound; a key whose entry failed verification is ErrCorrupt
	// (and the entry is quarantined, so a retry reports ErrNotFound).
	Get(key string) ([]byte, error)
	// Put durably stores payload under key, replacing any previous
	// entry. When Put returns nil the entry survives a crash.
	Put(key string, payload []byte) error
	// Delete removes the entry. Deleting a missing key is a no-op.
	Delete(key string) error
	// Keys snapshots the stored keys in sorted order.
	Keys() ([]string, error)
	// Close releases the store. Further calls return ErrClosed.
	Close() error
}

var (
	// ErrNotFound reports a key with no stored entry.
	ErrNotFound = errors.New("store: key not found")
	// ErrCorrupt reports an entry that failed verification (bad magic,
	// truncation, key mismatch, CRC failure) and was quarantined.
	ErrCorrupt = errors.New("store: entry corrupt")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
)

// Mem is the in-memory Store: the test double and the shape the
// service degrades to when the disk store is unavailable (in that
// mode the service simply has no store at all, but tests that want
// store semantics without a disk use Mem).
type Mem struct {
	mu     sync.RWMutex
	m      map[string][]byte
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: map[string][]byte{}} }

// Get returns a copy of the stored payload, so callers cannot alias
// the store's backing memory.
func (s *Mem) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	p, ok := s.m[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), p...), nil
}

// Put stores a copy of payload under key.
func (s *Mem) Put(key string, payload []byte) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.m[key] = append([]byte(nil), payload...)
	return nil
}

// Delete removes the entry, if present.
func (s *Mem) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.m, key)
	return nil
}

// Keys snapshots the stored keys, sorted.
func (s *Mem) Keys() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Close marks the store closed.
func (s *Mem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	return nil
}
