package store

// The chaos suite: every fault the FaultFS can inject, driven through
// real Put/Get/recovery sequences. The invariants under test are the
// ones the daemon leans on: a failed Put never damages a durable
// entry, never leaves litter a recovery scan can't sweep, and always
// surfaces as an error the service can retry or degrade on.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openFaultDisk(t *testing.T, dir string) (*Disk, *FaultFS) {
	t.Helper()
	ffs := NewFaultFS(nil)
	d, err := OpenDisk(dir, DiskOptions{FS: ffs, Logf: t.Logf})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	return d, ffs
}

// dirNames lists the store directory's top-level file names.
func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names
}

func TestPutENOSPCFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	d, ffs := openFaultDisk(t, dir)
	if err := d.Put("survivor", []byte("old payload")); err != nil {
		t.Fatal(err)
	}

	ffs.FailWrites(ffs.Writes()+1, -1, nil) // every write from now on: ENOSPC
	err := d.Put("survivor", []byte("new payload"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Put on full disk: %v, want ENOSPC", err)
	}
	if err := d.Put("fresh", []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("fresh Put on full disk: %v", err)
	}

	// The durable entry is untouched, the failed keys are absent, and
	// no temp litter remains.
	if got, err := d.Get("survivor"); err != nil || string(got) != "old payload" {
		t.Fatalf("survivor after failed overwrite: %q, %v", got, err)
	}
	if _, err := d.Get("fresh"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed Put left key visible: %v", err)
	}
	for _, name := range dirNames(t, dir) {
		if strings.HasSuffix(name, tempSuffix) {
			t.Errorf("temp litter after failed Put: %s", name)
		}
	}

	// The disk recovering (fault disarmed) makes Put work again — the
	// transient-error half of the service's retry story.
	ffs.FailWrites(0, 0, nil)
	if err := d.Put("fresh", []byte("x")); err != nil {
		t.Fatalf("Put after fault cleared: %v", err)
	}
	if got, _ := d.Get("fresh"); string(got) != "x" {
		t.Fatalf("fresh after recovery: %q", got)
	}
}

// A single failing write followed by success is the transient-fault
// shape the service retries through.
func TestFailNthWriteIsTransient(t *testing.T) {
	d, ffs := openFaultDisk(t, t.TempDir())
	ffs.FailWrites(1, 1, nil)
	if err := d.Put("k", []byte("v")); err == nil {
		t.Fatal("first Put should have failed")
	}
	if err := d.Put("k", []byte("v")); err != nil {
		t.Fatalf("second Put (fault expired): %v", err)
	}
	if got, err := d.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("Get after retry: %q, %v", got, err)
	}
}

// Kill-mid-write: a torn write whose cleanup also fails (the process
// is gone) leaves a half-written temp file. The next open must sweep
// it, and every previously committed entry must still verify.
func TestKillMidWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	d, ffs := openFaultDisk(t, dir)
	if err := d.Put("committed", []byte("durable before the crash")); err != nil {
		t.Fatal(err)
	}

	ffs.TearWrite(ffs.Writes() + 1)
	ffs.FailRemoves(fmt.Errorf("process is dead; nobody runs cleanup"))
	if err := d.Put("mid-crash", []byte("never lands")); err == nil {
		t.Fatal("torn write reported success")
	}
	// The torn temp file really is on disk, exactly as a crash leaves it.
	tmp := entryFile("mid-crash") + tempSuffix
	if _, err := os.Stat(filepath.Join(dir, tmp)); err != nil {
		t.Fatalf("expected torn temp file %s: %v", tmp, err)
	}

	// "Reboot": a fresh store over the same directory.
	r := openDisk(t, dir)
	s := r.Scan()
	if s.Loaded != 1 || s.TempsRemoved != 1 {
		t.Fatalf("recovery scan %+v, want 1 loaded / 1 temp removed", s)
	}
	if got, err := r.Get("committed"); err != nil || string(got) != "durable before the crash" {
		t.Fatalf("committed entry after crash: %q, %v", got, err)
	}
	if _, err := r.Get("mid-crash"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("half-written key resurrected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, tmp)); !os.IsNotExist(err) {
		t.Errorf("torn temp file survived recovery: %v", err)
	}
}

func TestRenameFailureLeavesOldEntry(t *testing.T) {
	dir := t.TempDir()
	d, ffs := openFaultDisk(t, dir)
	if err := d.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	injected := fmt.Errorf("injected rename failure")
	ffs.FailRenames(injected)
	if err := d.Put("k", []byte("v2")); !errors.Is(err, injected) {
		t.Fatalf("Put with failing rename: %v", err)
	}
	if got, err := d.Get("k"); err != nil || string(got) != "v1" {
		t.Fatalf("old entry after failed rename: %q, %v", got, err)
	}
	if err := d.Put("new", []byte("x")); !errors.Is(err, injected) {
		t.Fatalf("fresh Put with failing rename: %v", err)
	}
	if _, err := d.Get("new"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("key visible despite failed rename: %v", err)
	}
	for _, name := range dirNames(t, dir) {
		if strings.HasSuffix(name, tempSuffix) {
			t.Errorf("temp litter after failed rename: %s", name)
		}
	}
	ffs.FailRenames(nil)
	if err := d.Put("k", []byte("v2")); err != nil {
		t.Fatalf("Put after renames recover: %v", err)
	}
	if got, _ := d.Get("k"); string(got) != "v2" {
		t.Fatalf("after recovery: %q", got)
	}
}

func TestSyncAndCreateFailures(t *testing.T) {
	d, ffs := openFaultDisk(t, t.TempDir())
	injected := fmt.Errorf("injected")
	ffs.FailSyncs(injected)
	if err := d.Put("k", []byte("v")); !errors.Is(err, injected) {
		t.Fatalf("Put with failing fsync: %v", err)
	}
	ffs.FailSyncs(nil)
	ffs.FailCreates(injected)
	if err := d.Put("k", []byte("v")); !errors.Is(err, injected) {
		t.Fatalf("Put with failing create: %v", err)
	}
	ffs.FailCreates(nil)
	ffs.FailDirSyncs(injected)
	if err := d.Put("k", []byte("v")); !errors.Is(err, injected) {
		t.Fatalf("Put with failing dir sync: %v", err)
	}
	ffs.FailDirSyncs(nil)
	if err := d.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put after faults cleared: %v", err)
	}
	// Put is idempotent, so the dir-sync retry converged on a good entry.
	if got, err := d.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("Get: %q, %v", got, err)
	}
}

// Faults arm and disarm while other goroutines hammer the store; the
// store must stay coherent (run under -race).
func TestConcurrentFaultsUnderRace(t *testing.T) {
	d, ffs := openFaultDisk(t, t.TempDir())
	defer d.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	togglerDone := make(chan struct{})
	go func() { // fault toggler
		defer close(togglerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				ffs.FailWrites(ffs.Writes()+2, 1, nil)
			case 1:
				ffs.FailRenames(ErrNoSpace)
			case 2:
				ffs.FailWrites(0, 0, nil)
				ffs.FailRenames(nil)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k-%d-%d", g, i%5)
				if err := d.Put(key, []byte("payload")); err == nil {
					if got, err := d.Get(key); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("Get after successful Put: %v", err)
					} else if err == nil && string(got) != "payload" {
						t.Errorf("Get returned %q", got)
					}
				}
			}
		}()
	}
	wg.Wait() // workers finish; then stop the toggler
	close(stop)
	<-togglerDone
}
