// Package store is the durable half of the job server's
// content-addressed result cache: a crash-safe key → payload map whose
// keys are the service's content addresses (hex SHA-256 of the
// normalized spec and seed), so a persisted report can be served after
// a restart — or byte-diffed against a recomputed one — without
// re-running a single engine cell.
//
// Two implementations share the Store interface: Mem, a mutex-guarded
// map for tests and memory-only fallback, and Disk, one file per entry
// written atomically (temp file, write, fsync, rename, directory
// fsync) with a self-describing header — magic, format version, the
// full key, and a CRC-32C over key and payload — so every read can
// prove the entry is the one that was written. Opening a Disk store
// runs a recovery scan: entries that verify are indexed, leftover temp
// files from a crashed write are deleted, and corrupt or truncated
// entries are quarantined into corrupt/ for post-mortem instead of
// being served or deleted. Recovery never fails the open — a damaged
// directory degrades to fewer entries, not a refusal to boot.
//
// All of Disk's filesystem traffic goes through the FS seam. OS is the
// real implementation; FaultFS wraps any FS with injectable faults —
// fail the Nth write (ENOSPC by default), tear a write short, fail
// renames, syncs, creates or removes — which is what the chaos tests
// drive kill-mid-write, torn-write and backoff-then-degrade scenarios
// with, all under -race. DESIGN.md §13 documents the entry format, the
// recovery state machine and the service's degradation ladder.
package store
