package store

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CorruptDir is the subdirectory (of the store directory) that
// quarantined entries are moved into: recovery and read-time
// verification never delete evidence, they move it out of the way.
const CorruptDir = "corrupt"

// DiskOptions tunes OpenDisk.
type DiskOptions struct {
	// FS is the filesystem seam; nil selects the real OS filesystem.
	// Tests wrap it in a FaultFS.
	FS FS
	// Logf, if set, receives recovery and quarantine notices (the
	// daemon passes its logger; nil is silent).
	Logf func(format string, args ...any)
}

// ScanStats summarizes the recovery scan an OpenDisk performed.
type ScanStats struct {
	// Loaded counts entries that verified and were indexed.
	Loaded int
	// Quarantined counts corrupt or truncated entries moved to corrupt/.
	Quarantined int
	// TempsRemoved counts leftover temp files (writes that never
	// committed — the signature of a crash mid-Put) that were deleted.
	TempsRemoved int
}

// Disk is the crash-safe Store: one file per entry under dir, written
// via temp-file + fsync + rename + directory fsync so a crash at any
// instruction leaves either the old entry, the new entry, or a temp
// file the next recovery scan deletes — never a half-written entry
// under a committed name. Bitrot that defeats the filesystem is still
// caught: every read re-verifies the header and CRC, and a failing
// entry is quarantined rather than served.
type Disk struct {
	dir  string
	fs   FS
	logf func(string, ...any)
	scan ScanStats

	mu     sync.RWMutex
	index  map[string]struct{}
	closed bool

	// writeMu serializes Put bodies so two Puts of one key never race
	// on the shared temp name.
	writeMu sync.Mutex
}

// OpenDisk opens (creating if needed) a disk store rooted at dir and
// runs the recovery scan. The scan never fails the open: damaged
// entries are quarantined and counted, not fatal. The only open errors
// are the directory being uncreatable or unlistable.
func OpenDisk(dir string, opt DiskOptions) (*Disk, error) {
	fsys := opt.FS
	if fsys == nil {
		fsys = OS{}
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	d := &Disk{dir: dir, fs: fsys, logf: logf, index: map[string]struct{}{}}
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

// Scan reports what the opening recovery scan found.
func (d *Disk) Scan() ScanStats { return d.scan }

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// recover is the startup scan: index every entry that verifies,
// delete leftover temp files, quarantine everything else that claims
// to be an entry. Good entries always load regardless of how many bad
// siblings surround them.
func (d *Disk) recover() error {
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", d.dir, err)
	}
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, tempSuffix):
			// A temp file is a write that never committed; its rename
			// never happened, so nothing references it.
			if err := d.fs.Remove(filepath.Join(d.dir, name)); err == nil {
				d.scan.TempsRemoved++
			} else {
				d.logf("store: recovery: remove %s: %v", name, err)
			}
		case strings.HasSuffix(name, entrySuffix):
			raw, err := d.fs.ReadFile(filepath.Join(d.dir, name))
			if err != nil {
				d.logf("store: recovery: read %s: %v", name, err)
				continue
			}
			key, _, derr := decodeEntry(raw)
			if derr == nil && entryFile(key) != name {
				derr = fmt.Errorf("entry holds key %q, which belongs in %s", key, entryFile(key))
			}
			if derr != nil {
				d.quarantine(name, derr)
				continue
			}
			d.index[key] = struct{}{}
			d.scan.Loaded++
		}
	}
	return nil
}

// quarantine moves a failed entry file into corrupt/, preserving it
// for post-mortem. Quarantine is best-effort: if even the move fails,
// the file is left behind and only logged — recovery and reads still
// proceed without it.
func (d *Disk) quarantine(name string, reason error) {
	d.logf("store: quarantining %s: %v", name, reason)
	dst := filepath.Join(d.dir, CorruptDir)
	if err := d.fs.MkdirAll(dst); err != nil {
		d.logf("store: quarantine mkdir: %v", err)
		return
	}
	if err := d.fs.Rename(filepath.Join(d.dir, name), filepath.Join(dst, name)); err != nil {
		d.logf("store: quarantine move %s: %v", name, err)
		return
	}
	d.scan.Quarantined++
}

// Get reads and fully re-verifies the entry under key. Verification
// failure quarantines the file and returns ErrCorrupt; the key is
// dropped from the index so a retry sees ErrNotFound.
func (d *Disk) Get(key string) ([]byte, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, ErrClosed
	}
	_, ok := d.index[key]
	d.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	name := entryFile(key)
	raw, err := d.fs.ReadFile(filepath.Join(d.dir, name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			d.drop(key)
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: read %s: %w", name, err)
	}
	k, payload, derr := decodeEntry(raw)
	if derr == nil && k != key {
		derr = fmt.Errorf("entry holds key %q, asked for %q", k, key)
	}
	if derr != nil {
		d.mu.Lock()
		delete(d.index, key)
		d.quarantine(name, derr)
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, derr)
	}
	return payload, nil
}

func (d *Disk) drop(key string) {
	d.mu.Lock()
	delete(d.index, key)
	d.mu.Unlock()
}

// Put commits (key, payload) with the full crash-safe sequence: write
// a temp file, fsync it, close it, rename it over the committed name,
// fsync the directory. Any error aborts the Put, best-effort removes
// the temp file, and leaves the previous entry (if any) intact — a
// failed Put never damages what was already durable.
func (d *Disk) Put(key string, payload []byte) error {
	buf, err := encodeEntry(key, payload)
	if err != nil {
		return err
	}
	d.mu.RLock()
	closed := d.closed
	d.mu.RUnlock()
	if closed {
		return ErrClosed
	}

	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	name := entryFile(key)
	tmp := filepath.Join(d.dir, name+tempSuffix)
	final := filepath.Join(d.dir, name)

	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create temp: %w", err)
	}
	cleanup := func(step string, err error) error {
		if rerr := d.fs.Remove(tmp); rerr != nil {
			d.logf("store: remove temp after failed put: %v", rerr)
		}
		return fmt.Errorf("store: %s: %w", step, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return cleanup("write", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return cleanup("sync", err)
	}
	if err := f.Close(); err != nil {
		return cleanup("close", err)
	}
	if err := d.fs.Rename(tmp, final); err != nil {
		return cleanup("rename", err)
	}
	// The rename is visible but not yet durable; sync the directory.
	// On failure the entry may or may not survive a crash, so the Put
	// reports failure — a retry rewrites the entry, which is idempotent.
	if err := d.fs.SyncDir(d.dir); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}

	d.mu.Lock()
	d.index[key] = struct{}{}
	d.mu.Unlock()
	return nil
}

// Delete removes the entry, if present.
func (d *Disk) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	delete(d.index, key)
	if err := d.fs.Remove(filepath.Join(d.dir, entryFile(key))); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete: %w", err)
	}
	return nil
}

// Keys snapshots the indexed keys, sorted.
func (d *Disk) Keys() ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	out := make([]string, 0, len(d.index))
	for k := range d.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Close marks the store closed. Every committed Put is already
// durable, so there is nothing to flush.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.closed = true
	return nil
}
