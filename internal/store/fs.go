package store

import (
	"io"
	"os"
)

// FS is the filesystem seam every Disk operation goes through. It is
// deliberately explicit about the steps that matter for crash safety —
// create, write, sync, close, rename, directory sync are separate
// calls — so FaultFS can fail or tear each one independently.
type FS interface {
	MkdirAll(dir string) error
	// ReadDir returns the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	Create(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// SyncDir fsyncs a directory, making a preceding rename durable.
	SyncDir(dir string) error
}

// File is the writable-file half of the seam.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS is the real filesystem.
type OS struct{}

func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OS) Create(path string) (File, error) { return os.Create(path) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(path string) error { return os.Remove(path) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Close errors after a successful fsync carry no information for a
	// read-only handle.
	defer d.Close()
	return d.Sync()
}
