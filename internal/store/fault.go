package store

import (
	"sync"
	"syscall"
)

// ErrNoSpace is the default injected write error: the disk-full errno
// a real filesystem returns when a Put runs out of space.
var ErrNoSpace error = syscall.ENOSPC

// FaultFS wraps an FS with injectable faults, the harness behind the
// chaos tests: fail the Nth write call (ENOSPC by default), tear a
// write short (half its bytes land, then an error — the torn-write /
// kill-mid-write shape), and fail renames, syncs, creates or removes
// wholesale. Write calls are counted FS-wide in arrival order, so "the
// Nth write" is deterministic for a single-writer sequence. All knobs
// are safe to arm and disarm concurrently with use.
type FaultFS struct {
	Inner FS

	mu         sync.Mutex
	writes     int   // write calls seen so far (1-based indexing)
	failFrom   int   // first write index to fail; 0 = disarmed
	failCount  int   // how many consecutive writes fail; < 0 = forever
	writeErr   error // error injected on failed writes
	tornWrite  int   // write index to tear; 0 = disarmed
	renameErr  error
	syncErr    error
	syncDirErr error
	createErr  error
	removeErr  error
}

// NewFaultFS wraps inner (nil selects the real OS filesystem) with all
// faults disarmed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS{}
	}
	return &FaultFS{Inner: inner}
}

// FailWrites arms write faults: write calls from (1-based, counted
// across the FS since construction) through from+count-1 return err
// without writing anything. count < 0 fails every write from 'from'
// on; from <= 0 disarms. A nil err injects ErrNoSpace.
func (f *FaultFS) FailWrites(from, count int, err error) {
	if err == nil {
		err = ErrNoSpace
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failFrom, f.failCount, f.writeErr = from, count, err
}

// TearWrite arms a torn write: write call n writes only the first half
// of its bytes to the underlying file, then returns ErrNoSpace — the
// on-disk shape of a crash or disk-full mid-write. n <= 0 disarms.
func (f *FaultFS) TearWrite(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornWrite = n
}

// FailRenames makes every Rename fail with err until disarmed (nil).
func (f *FaultFS) FailRenames(err error) { f.mu.Lock(); f.renameErr = err; f.mu.Unlock() }

// FailSyncs makes every file Sync fail with err until disarmed (nil).
func (f *FaultFS) FailSyncs(err error) { f.mu.Lock(); f.syncErr = err; f.mu.Unlock() }

// FailDirSyncs makes every SyncDir fail with err until disarmed (nil).
func (f *FaultFS) FailDirSyncs(err error) { f.mu.Lock(); f.syncDirErr = err; f.mu.Unlock() }

// FailCreates makes every Create fail with err until disarmed (nil).
func (f *FaultFS) FailCreates(err error) { f.mu.Lock(); f.createErr = err; f.mu.Unlock() }

// FailRemoves makes every Remove fail with err until disarmed (nil).
// Combined with TearWrite this models a hard kill: the torn temp file
// cannot even be cleaned up, and must be swept by the next recovery
// scan instead.
func (f *FaultFS) FailRemoves(err error) { f.mu.Lock(); f.removeErr = err; f.mu.Unlock() }

// Writes reports how many write calls the FS has seen.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

func (f *FaultFS) MkdirAll(dir string) error { return f.Inner.MkdirAll(dir) }

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }

func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.Inner.ReadFile(path) }

func (f *FaultFS) Create(path string) (File, error) {
	f.mu.Lock()
	err := f.createErr
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	inner, ferr := f.Inner.Create(path)
	if ferr != nil {
		return nil, ferr
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	err := f.renameErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	err := f.removeErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.Inner.Remove(path)
}

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	err := f.syncDirErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.Inner.SyncDir(dir)
}

// faultFile applies the FS's write and sync faults to one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	w.fs.writes++
	n := w.fs.writes
	fail := w.fs.failFrom > 0 && n >= w.fs.failFrom &&
		(w.fs.failCount < 0 || n < w.fs.failFrom+w.fs.failCount)
	torn := w.fs.tornWrite == n
	err := w.fs.writeErr
	w.fs.mu.Unlock()
	if torn {
		written, _ := w.inner.Write(p[:len(p)/2])
		return written, ErrNoSpace
	}
	if fail {
		if err == nil {
			err = ErrNoSpace
		}
		return 0, err
	}
	return w.inner.Write(p)
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	err := w.fs.syncErr
	w.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return w.inner.Sync()
}

func (w *faultFile) Close() error { return w.inner.Close() }
