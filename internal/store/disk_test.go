package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openDisk(t *testing.T, dir string) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, DiskOptions{Logf: t.Logf})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	d := openDisk(t, t.TempDir())
	key := "deadbeef"
	payload := []byte("report body\nwith lines\n")
	if _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get before Put: %v, want ErrNotFound", err)
	}
	if err := d.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := d.Get(key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get: %q, %v", got, err)
	}

	// Overwrite replaces the payload atomically.
	if err := d.Put(key, []byte("v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if got, _ := d.Get(key); string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}

	// Keys is sorted; Delete removes.
	d.Put("aaa", []byte("x"))
	keys, err := d.Keys()
	if err != nil || len(keys) != 2 || keys[0] != "aaa" || keys[1] != key {
		t.Fatalf("Keys: %v, %v", keys, err)
	}
	if err := d.Delete(key); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: %v", err)
	}
	if err := d.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of missing key: %v", err)
	}

	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := d.Get("aaa"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v", err)
	}
	if err := d.Put("aaa", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v", err)
	}
}

func TestDiskReopenLoadsEntries(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir)
	want := map[string]string{}
	for i := 0; i < 8; i++ {
		k, v := fmt.Sprintf("key-%d", i), fmt.Sprintf("payload %d", i)
		want[k] = v
		if err := d.Put(k, []byte(v)); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}
	d.Close()

	r := openDisk(t, dir)
	if s := r.Scan(); s.Loaded != 8 || s.Quarantined != 0 || s.TempsRemoved != 0 {
		t.Fatalf("scan after clean shutdown: %+v", s)
	}
	for k, v := range want {
		got, err := r.Get(k)
		if err != nil || string(got) != v {
			t.Fatalf("reopened Get %s: %q, %v", k, got, err)
		}
	}
}

// corruptEntryOnDisk flips one payload byte of key's committed file.
func corruptEntryOnDisk(t *testing.T, dir, key string) string {
	t.Helper()
	name := entryFile(key)
	path := filepath.Join(dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

// The recovery scan: good entries load, torn/corrupt/alien entries
// are quarantined into corrupt/, temp litter is swept — and none of
// it blocks the open.
func TestRecoveryScanQuarantinesAndSweeps(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir)
	for _, k := range []string{"good-1", "good-2", "bitrot", "torn"} {
		if err := d.Put(k, []byte("payload of "+k)); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()

	// Sabotage the directory the way crashes and bitrot would:
	// a flipped byte, a truncated entry (torn write that somehow got a
	// committed name), a file that was never an entry, a mis-filed
	// entry under the wrong name, and temp litter from a killed Put.
	corrupt1 := corruptEntryOnDisk(t, dir, "bitrot")
	tornName := entryFile("torn")
	raw, _ := os.ReadFile(filepath.Join(dir, tornName))
	os.WriteFile(filepath.Join(dir, tornName), raw[:len(raw)/2], 0o644)
	os.WriteFile(filepath.Join(dir, "zzzz"+entrySuffix), []byte("not an entry at all"), 0o644)
	goodRaw, _ := encodeEntry("some-other-key", []byte("x"))
	misfiled := "0000000000000000000000000000000000000000000000000000000000000000" + entrySuffix
	os.WriteFile(filepath.Join(dir, misfiled), goodRaw, 0o644)
	os.WriteFile(filepath.Join(dir, entryFile("half-written")+tempSuffix), []byte("partial"), 0o644)

	r := openDisk(t, dir)
	s := r.Scan()
	if s.Loaded != 2 || s.Quarantined != 4 || s.TempsRemoved != 1 {
		t.Fatalf("scan stats %+v, want 2 loaded / 4 quarantined / 1 temp removed", s)
	}
	for _, k := range []string{"good-1", "good-2"} {
		if got, err := r.Get(k); err != nil || string(got) != "payload of "+k {
			t.Fatalf("good entry %s lost to recovery: %q, %v", k, got, err)
		}
	}
	for _, k := range []string{"bitrot", "torn"} {
		if _, err := r.Get(k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("damaged entry %s: %v, want ErrNotFound", k, err)
		}
	}
	// The evidence is preserved, not deleted.
	for _, name := range []string{corrupt1, tornName, misfiled} {
		if _, err := os.Stat(filepath.Join(dir, CorruptDir, name)); err != nil {
			t.Errorf("quarantined file %s missing from %s/: %v", name, CorruptDir, err)
		}
	}
	// And the temp litter is gone.
	names, _ := os.ReadDir(dir)
	for _, e := range names {
		if strings.HasSuffix(e.Name(), tempSuffix) {
			t.Errorf("temp file %s survived recovery", e.Name())
		}
	}
}

// Read-time verification: corruption that lands after the recovery
// scan is caught by Get, quarantined, and reported once as ErrCorrupt;
// the retry sees a plain miss.
func TestGetQuarantinesLateCorruption(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir)
	if err := d.Put("rot", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	name := corruptEntryOnDisk(t, dir, "rot")
	if _, err := d.Get("rot"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of rotten entry: %v, want ErrCorrupt", err)
	}
	if _, err := d.Get("rot"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Get: %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(filepath.Join(dir, CorruptDir, name)); err != nil {
		t.Errorf("rotten entry not quarantined: %v", err)
	}
}

func TestEntryFormatRejections(t *testing.T) {
	good, err := encodeEntry("k", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty", nil},
		{"short header", good[:headerSize-1]},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"future version", mutate(func(b []byte) []byte { b[5] = 99; return b })},
		{"truncated payload", good[:len(good)-3]},
		{"trailing garbage", append(append([]byte(nil), good...), 0)},
		{"flipped payload byte", mutate(func(b []byte) []byte { b[len(b)-1] ^= 1; return b })},
		{"flipped key byte", mutate(func(b []byte) []byte { b[headerSize] ^= 1; return b })},
	}
	for _, tc := range cases {
		if _, _, err := decodeEntry(tc.raw); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
	if k, p, err := decodeEntry(good); err != nil || k != "k" || string(p) != "payload" {
		t.Fatalf("good entry rejected: %q %q %v", k, p, err)
	}
	if _, err := encodeEntry("", nil); err == nil {
		t.Error("empty key encoded")
	}
	if _, err := encodeEntry(strings.Repeat("k", maxKeyLen+1), nil); err == nil {
		t.Error("oversized key encoded")
	}
}

func TestMemStore(t *testing.T) {
	m := NewMem()
	if _, err := m.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty: %v", err)
	}
	if err := m.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get: %q, %v", got, err)
	}
	got[0] = 'X' // must not alias the stored copy
	if again, _ := m.Get("k"); string(again) != "v" {
		t.Error("Get aliases the stored payload")
	}
	m.Put("a", nil)
	if keys, _ := m.Keys(); len(keys) != 2 || keys[0] != "a" || keys[1] != "k" {
		t.Fatalf("Keys: %v", keys)
	}
	m.Delete("k")
	if _, err := m.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: %v", err)
	}
	m.Close()
	if err := m.Put("x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v", err)
	}
}

// Concurrent mixed traffic on one store; run under -race in CI.
func TestDiskConcurrentAccess(t *testing.T) {
	d := openDisk(t, t.TempDir())
	defer d.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				key := fmt.Sprintf("key-%d-%d", g, i%6)
				switch i % 4 {
				case 0, 1:
					if err := d.Put(key, []byte(fmt.Sprintf("g%d i%d", g, i))); err != nil {
						t.Errorf("Put: %v", err)
					}
				case 2:
					if _, err := d.Get(key); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("Get: %v", err)
					}
				case 3:
					if _, err := d.Keys(); err != nil {
						t.Errorf("Keys: %v", err)
					}
					if i%8 == 7 {
						if err := d.Delete(key); err != nil {
							t.Errorf("Delete: %v", err)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
