// Package metrics is the repository's metrics-definition layer and
// runtime-telemetry registry — the one surface every derived quantity
// and every operational counter reports through.
//
// It has two halves, mirroring the two meanings of "metrics" in a
// measurement system like PerfSpect's perfmon event lists:
//
// # Named events and derived-metric expressions
//
// A Source exports a flat set of named PMU-style events
// ("l1d.accesses", "l1d.cross_evictions", "l2.misses", ...). Both
// perfctr.Report and cache.Stats implement Source structurally, so the
// simulator's exact counters flow into the same namespace a real
// machine's perf events would. Derived quantities are then
// *definitions, not methods*: a Def names an expression over events
//
//	l1d.miss_rate = l1d.misses / l1d.accesses
//
// parsed once by a Set and evaluated against any Source. The grammar is
// the PerfSpect derived-metric shape: + - * /, parentheses, numeric
// literals, event/metric names, and a safe_div guard (every division —
// the bare / operator included — yields 0 on a zero denominator, so
// rates over idle counters are 0, never NaN). DefaultDefs ships the
// repository's standard metric set; internal/detect compiles its
// threshold rules against these names, so a detector criterion is a
// row of data citing its own formula rather than a hand-coded method.
//
// # Runtime telemetry
//
// Registry holds process-lifetime Counters, Gauges and Histograms
// (plus label-vector variants) with lock-free atomic updates, and
// renders them in the Prometheus text exposition format (hand-rolled;
// no dependencies) via WriteText or as an http.Handler — the body of
// lruleakd's GET /metrics. A Registry is itself a Source: every series
// it holds is exported as an event (label values dot-joined and
// sanitized), so the same expression layer that defines cache miss
// rates can define service-level ratios over live telemetry.
package metrics
