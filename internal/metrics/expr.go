package metrics

// The derived-metric expression language: a deliberately small,
// PerfSpect-shaped grammar over event names.
//
//	expr    := term  (('+' | '-') term)*
//	term    := unary (('*' | '/') unary)*
//	unary   := '-' unary | primary
//	primary := NUMBER | NAME | 'safe_div' '(' expr ',' expr ')' | '(' expr ')'
//	NAME    := [A-Za-z_] [A-Za-z0-9_.]*
//
// Division is total: x/0 and safe_div(x, 0) are 0, so a rate over an
// idle counter reads as 0 rather than NaN — the same convention the
// hand-written MissRate helpers used before this layer existed.

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is one parsed derived-metric expression, evaluatable against
// any event lookup.
type Expr struct {
	src  string
	root node
}

// Parse compiles an expression. The returned error carries the byte
// offset of the offending token.
func Parse(src string) (*Expr, error) {
	p := &parser{src: src}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("metrics: parse %q: trailing input at offset %d", src, p.pos)
	}
	return &Expr{src: src, root: root}, nil
}

// MustParse is Parse for expressions that are compile-time constants.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the original source text of the expression.
func (e *Expr) String() string { return e.src }

// Refs returns every event/metric name the expression references, in
// first-appearance order without duplicates.
func (e *Expr) Refs() []string {
	var out []string
	seen := map[string]bool{}
	e.root.refs(func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	})
	return out
}

// Eval computes the expression. lookup resolves a name to its value;
// returning ok=false makes Eval fail with an unknown-event error.
// Evaluation is total on finite inputs: it never panics, and division
// by zero yields 0.
func (e *Expr) Eval(lookup func(name string) (float64, bool)) (float64, error) {
	return e.root.eval(e.src, lookup)
}

// --- AST ---

type node interface {
	eval(src string, lookup func(string) (float64, bool)) (float64, error)
	refs(visit func(name string))
}

type numNode float64

func (n numNode) eval(string, func(string) (float64, bool)) (float64, error) {
	return float64(n), nil
}
func (numNode) refs(func(string)) {}

type refNode string

func (n refNode) eval(src string, lookup func(string) (float64, bool)) (float64, error) {
	v, ok := lookup(string(n))
	if !ok {
		return 0, fmt.Errorf("metrics: unknown event %q in %q", string(n), src)
	}
	return v, nil
}
func (n refNode) refs(visit func(string)) { visit(string(n)) }

type negNode struct{ x node }

func (n negNode) eval(src string, lookup func(string) (float64, bool)) (float64, error) {
	v, err := n.x.eval(src, lookup)
	return -v, err
}
func (n negNode) refs(visit func(string)) { n.x.refs(visit) }

type binNode struct {
	op   byte // '+', '-', '*', '/'  ('/' is safe_div)
	l, r node
}

func (n binNode) eval(src string, lookup func(string) (float64, bool)) (float64, error) {
	l, err := n.l.eval(src, lookup)
	if err != nil {
		return 0, err
	}
	r, err := n.r.eval(src, lookup)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	default: // '/'
		if r == 0 {
			return 0, nil
		}
		return l / r, nil
	}
}
func (n binNode) refs(visit func(string)) { n.l.refs(visit); n.r.refs(visit) }

// --- parser ---

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("metrics: parse %q: %s at offset %d", p.src, fmt.Sprintf(format, args...), p.pos)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseExpr() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		if op != '+' && op != '-' {
			return left, nil
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = binNode{op: op, l: left, r: right}
	}
}

func (p *parser) parseTerm() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		if op != '*' && op != '/' {
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binNode{op: op, l: left, r: right}
	}
}

func (p *parser) parseUnary() (node, error) {
	if p.peek() == '-' {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negNode{x: x}, nil
	}
	return p.parsePrimary()
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameByte(c byte) bool {
	return isNameStart(c) || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) parsePrimary() (node, error) {
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return inner, nil

	case c >= '0' && c <= '9' || c == '.':
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c >= '0' && c <= '9' || c == '.' {
				p.pos++
				continue
			}
			// Exponent part: e/E, optional sign, then digits.
			if (c == 'e' || c == 'E') && p.pos > start {
				q := p.pos + 1
				if q < len(p.src) && (p.src[q] == '+' || p.src[q] == '-') {
					q++
				}
				if q < len(p.src) && p.src[q] >= '0' && p.src[q] <= '9' {
					p.pos = q
					continue
				}
			}
			break
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			p.pos = start
			return nil, p.errf("bad number %q", p.src[start:p.pos])
		}
		return numNode(v), nil

	case isNameStart(c):
		start := p.pos
		for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		if p.peek() != '(' {
			return refNode(name), nil
		}
		// Function call: only safe_div(a, b) exists.
		if name != "safe_div" {
			p.pos = start
			return nil, p.errf("unknown function %q", name)
		}
		p.pos++ // '('
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ',' {
			return nil, p.errf("safe_div wants two arguments")
		}
		p.pos++
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, p.errf("missing ')' after safe_div arguments")
		}
		p.pos++
		return binNode{op: '/', l: a, r: b}, nil

	case c == 0:
		return nil, p.errf("unexpected end of expression")
	default:
		return nil, p.errf("unexpected %q", string(c))
	}
}

// sanitizeEvent maps an arbitrary string (a Prometheus label value,
// say) onto the expression language's name charset so registry series
// can be referenced from expressions.
func sanitizeEvent(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if isNameByte(c) && c != '.' {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
