package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine_cells_completed_total", "cells that ran to completion")
	c.Add(41)
	c.Inc()
	g := r.Gauge("engine_queue_depth", "jobs waiting")
	g.Set(7)
	g.Dec()
	h := r.Histogram("engine_cell_wall_seconds", "per-cell wall time", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := r.CounterVec("service_jobs_total", "jobs by terminal state", "state")
	v.With("done").Add(3)
	v.With("failed").Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE engine_cells_completed_total counter\n",
		"engine_cells_completed_total 42\n",
		"# HELP engine_queue_depth jobs waiting\n",
		"engine_queue_depth 6\n",
		"# TYPE engine_cell_wall_seconds histogram\n",
		`engine_cell_wall_seconds_bucket{le="0.1"} 1` + "\n",
		`engine_cell_wall_seconds_bucket{le="1"} 2` + "\n",
		`engine_cell_wall_seconds_bucket{le="+Inf"} 3` + "\n",
		"engine_cell_wall_seconds_sum 5.55\n",
		"engine_cell_wall_seconds_count 3\n",
		`service_jobs_total{state="done"} 3` + "\n",
		`service_jobs_total{state="failed"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Families are sorted by name.
	if strings.Index(out, "engine_cell_wall_seconds") > strings.Index(out, "service_jobs_total") {
		t.Error("families not sorted by name")
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "a_total 1\n") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestRegistryAsSource(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_done_total", "").Add(5)
	r.CounterVec("http_requests_total", "", "route", "code").With("/v1/jobs", "200").Add(9)
	h := r.Histogram("lat_seconds", "", []float64{1})
	h.Observe(0.25)
	h.Observe(0.75)

	es := Snapshot(r)
	if es["jobs_done_total"] != 5 {
		t.Errorf("jobs_done_total = %v", es["jobs_done_total"])
	}
	if es["http_requests_total._v1_jobs.200"] != 9 {
		t.Errorf("labeled series event = %v (events: %v)", es["http_requests_total._v1_jobs.200"], es)
	}
	if es["lat_seconds.count"] != 2 || es["lat_seconds.sum"] != 1 {
		t.Errorf("histogram events: count=%v sum=%v", es["lat_seconds.count"], es["lat_seconds.sum"])
	}

	// The expression layer can compute over live telemetry.
	v, err := Default().EvalExpr("lat_seconds.sum / lat_seconds.count", r)
	if err != nil || v != 0.5 {
		t.Fatalf("mean latency = %v, %v; want 0.5", v, err)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("h_seconds", "", []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 2000 {
		t.Fatalf("histogram count=%d sum=%v, want 8000/2000", h.Count(), h.Sum())
	}
}
