package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process's runtime telemetry: counters, gauges and
// histograms, flat or as label vectors, rendered in the Prometheus
// text exposition format. Registration takes a lock; updates on the
// returned instruments are lock-free atomics, so instrumented hot
// paths pay a few atomic adds, nothing more.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

type family struct {
	name, help, typ string
	labels          []string  // label keys, nil for an unlabeled family
	buckets         []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	order  []string
}

const (
	typCounter   = "counter"
	typGauge     = "gauge"
	typHistogram = "histogram"
)

// labelSep joins label values into a series key; it cannot appear in
// UTF-8 text, so distinct value tuples never collide.
const labelSep = "\xff"

func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, labels: labels,
			buckets: buckets, series: map[string]any{}}
		r.fams[name] = f
		return f
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: %s re-registered as %s with %d label(s); was %s with %d",
			name, typ, len(labels), f.typ, len(f.labels)))
	}
	return f
}

func (f *family) get(key string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// --- instruments ---

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; an implicit +Inf bucket is always present) and tracks
// count and sum, Prometheus-style, so scrapers can derive quantiles
// and means.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is the default latency bucket grid (seconds): a
// 1-2.5-10 ladder from 100µs to 30s, wide enough for both sub-ms HTTP
// handlers and multi-second experiment cells.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.001, 0.0025, 0.01, 0.025,
		0.1, 0.25, 1, 2.5, 10, 30,
	}
}

// --- registration ---

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typCounter, nil, nil)
	return f.get("", func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typGauge, nil, nil)
	return f.get("", func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or finds) an unlabeled histogram with the given
// bucket upper bounds (ascending; nil selects DurationBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets()
	}
	f := r.family(name, help, typHistogram, nil, buckets)
	return f.get("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec registers a counter family with label keys; With resolves
// one labeled child.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, typCounter, labels, nil)}
}

// HistogramVec registers a histogram family with label keys.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DurationBuckets()
	}
	return &HistogramVec{f: r.family(name, help, typHistogram, labels, buckets)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With resolves the child counter for the given label values (one per
// registered key, in order).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(joinValues(v.f, values), func() any { return &Counter{} }).(*Counter)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With resolves the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(joinValues(v.f, values), func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

func joinValues(f *family, values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	return strings.Join(values, labelSep)
}

// --- exposition ---

// WriteText renders the registry in the Prometheus text exposition
// format (families sorted by name, series in registration order), the
// body of GET /metrics.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, len(names))
	sort.Strings(names)
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()
	if len(keys) == 0 {
		return
	}

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for i, key := range keys {
		labels := f.renderLabels(key, "")
		switch s := series[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labels, strconv.FormatUint(s.Value(), 10))
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labels, strconv.FormatInt(s.Value(), 10))
		case *Histogram:
			var cum uint64
			for bi, bound := range s.bounds {
				cum += s.buckets[bi].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n",
					f.name, f.renderLabels(key, formatFloat(bound)), cum)
			}
			cum += s.buckets[len(s.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.renderLabels(key, "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labels, formatFloat(s.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labels, s.Count())
		}
	}
}

// renderLabels formats the {k="v",...} clause for a series key, with
// an optional le value appended (histogram buckets). Returns "" for an
// unlabeled, non-bucket series.
func (f *family) renderLabels(key, le string) string {
	var parts []string
	if len(f.labels) > 0 {
		values := strings.Split(key, labelSep)
		for i, k := range f.labels {
			parts = append(parts, fmt.Sprintf("%s=%q", k, escapeValue(values[i])))
		}
	}
	if le != "" {
		parts = append(parts, fmt.Sprintf("le=%q", le))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeValue escapes a label value per the exposition format. %q
// already escapes '"' and control bytes Go-style, which is a superset
// of what Prometheus requires, so only the raw value's backslashes
// need no extra handling — but %q renders them as \\ too. The helper
// exists to keep the call sites honest about WHICH escaping applies.
func escapeValue(s string) string { return s }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ServeHTTP makes the registry an http.Handler: GET returns the text
// exposition.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteText(w)
}

// EmitEvents exports every series as an expression-layer event, making
// the Registry a Source: unlabeled series under their family name,
// labeled series as name.value1.value2 with values sanitized onto the
// name charset; histograms export name.count and name.sum.
func (r *Registry) EmitEvents(emit func(string, float64)) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		for i, key := range keys {
			name := f.name
			if len(f.labels) > 0 {
				for _, v := range strings.Split(key, labelSep) {
					name += "." + sanitizeEvent(v)
				}
			}
			switch s := series[i].(type) {
			case *Counter:
				emit(name, float64(s.Value()))
			case *Gauge:
				emit(name, float64(s.Value()))
			case *Histogram:
				emit(name+".count", float64(s.Count()))
				emit(name+".sum", s.Sum())
			}
		}
	}
}
