package metrics

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func evalOn(t *testing.T, src string, events EventSet) float64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := e.Eval(func(name string) (float64, bool) {
		val, ok := events[name]
		return val, ok
	})
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestExprEval(t *testing.T) {
	events := EventSet{
		"l1d.accesses": 200, "l1d.misses": 8, "l1d.cross_evictions": 16,
		"l2.accesses": 0, "l2.misses": 0, "x": 3, "y": 4, "_z": 5,
	}
	cases := []struct {
		src  string
		want float64
	}{
		{"1", 1},
		{"  2.5\t", 2.5},
		{"1e3", 1000},
		{"2E-2", 0.02},
		{"x + y", 7},
		{"x - y", -1},
		{"x * y", 12},
		{"y / x", 4.0 / 3.0},
		{"x + y * 2", 11},   // precedence: * binds tighter
		{"(x + y) * 2", 14}, // parentheses override
		{"x - y - 1", -2},   // left associativity
		{"12 / y / x", 1},   // left associativity of /
		{"-x", -3},
		{"--x", 3},
		{"-x * y", -12},
		{"2 * -x", -6},
		{"_z", 5},
		{"l1d.misses / l1d.accesses", 0.04},
		{"l2.misses / l2.accesses", 0}, // div-by-zero → 0
		{"safe_div(x, 0)", 0},          // explicit guard, same convention
		{"safe_div(x + y, 2)", 3.5},
		{"1 / 0", 0},
		{"0 / 0", 0},
		{"l1d.cross_evictions / l1d.accesses * 100", 8},
	}
	for _, tc := range cases {
		if got := evalOn(t, tc.src, events); got != tc.want {
			t.Errorf("eval(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestExprParseErrors(t *testing.T) {
	bad := []string{
		"", "   ", "+", "1 +", "(1", "1)", "* 2", "x y", "1..2.3.4e",
		"foo(1, 2)", "safe_div(1)", "safe_div(1, 2", "safe_div(1 2)",
		"1 @ 2", "1e", "1e+",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestExprUnknownEvent(t *testing.T) {
	e := MustParse("nope / 2")
	_, err := e.Eval(func(string) (float64, bool) { return 0, false })
	if err == nil || !strings.Contains(err.Error(), `unknown event "nope"`) {
		t.Fatalf("want unknown-event error, got %v", err)
	}
}

func TestExprRefs(t *testing.T) {
	e := MustParse("a + b * safe_div(a, c.d) - 2")
	got := e.Refs()
	want := []string{"a", "b", "c.d"}
	if len(got) != len(want) {
		t.Fatalf("Refs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Refs() = %v, want %v", got, want)
		}
	}
	if e.String() != "a + b * safe_div(a, c.d) - 2" {
		t.Fatalf("String() = %q", e.String())
	}
}

func TestSetEvalAndShadowing(t *testing.T) {
	s := MustNewSet(
		Def{Name: "rate", Expr: "m / a"},
		Def{Name: "pct", Expr: "rate * 100"}, // references an earlier def
	)
	src := EventSet{"m": 5, "a": 50, "rate": 999} // raw event shadowed by def
	v, err := s.Eval("rate", src)
	if err != nil || v != 0.1 {
		t.Fatalf("Eval(rate) = %v, %v; want 0.1", v, err)
	}
	v, err = s.Eval("pct", src)
	if err != nil || v != 10 {
		t.Fatalf("Eval(pct) = %v, %v; want 10", v, err)
	}
	// Bare events still pass through.
	v, err = s.Eval("a", src)
	if err != nil || v != 50 {
		t.Fatalf("Eval(a) = %v, %v; want 50", v, err)
	}
	if _, err := s.Eval("missing", src); err == nil {
		t.Fatal("Eval(missing) succeeded, want error")
	}
	v, err = s.EvalExpr("pct / 2", src)
	if err != nil || v != 5 {
		t.Fatalf("EvalExpr(pct / 2) = %v, %v; want 5", v, err)
	}
}

func TestNewSetRejections(t *testing.T) {
	cases := []struct {
		name string
		defs []Def
	}{
		{"duplicate", []Def{{Name: "a", Expr: "1"}, {Name: "a", Expr: "2"}}},
		{"self-reference", []Def{{Name: "a", Expr: "a + 1"}}},
		{"forward-reference", []Def{{Name: "a", Expr: "b"}, {Name: "b", Expr: "1"}}},
		{"bad-expr", []Def{{Name: "a", Expr: "1 +"}}},
		{"empty-name", []Def{{Name: "", Expr: "1"}}},
		{"bad-name", []Def{{Name: "9lives", Expr: "1"}}},
	}
	for _, tc := range cases {
		if _, err := NewSet(tc.defs...); err == nil {
			t.Errorf("%s: NewSet succeeded, want error", tc.name)
		}
	}
}

func TestDefaultSetMatchesHandWrittenRates(t *testing.T) {
	src := EventSet{
		"l1d.accesses": 1000, "l1d.misses": 37, "l1d.evictions": 21,
		"l1d.cross_evictions": 9,
		"l2.accesses":         300, "l2.misses": 150,
		"llc.accesses": 0, "llc.misses": 0,
	}
	checks := map[string]float64{
		"l1d.miss_rate":           float64(37) / float64(1000),
		"l1d.eviction_rate":       float64(21) / float64(1000),
		"l1d.cross_eviction_rate": float64(9) / float64(1000),
		"l2.miss_rate":            float64(150) / float64(300),
		"llc.miss_rate":           0, // idle level: safe division
	}
	for name, want := range checks {
		got, err := Default().Eval(name, src)
		if err != nil {
			t.Fatalf("Eval(%s): %v", name, err)
		}
		if got != want {
			t.Errorf("Eval(%s) = %v, want %v", name, got, want)
		}
	}
	if Default().ExprOf("l1d.miss_rate") != "l1d.misses / l1d.accesses" {
		t.Fatalf("ExprOf(l1d.miss_rate) = %q", Default().ExprOf("l1d.miss_rate"))
	}
}

func TestPrefixedAndSnapshotAccumulate(t *testing.T) {
	base := EventSet{"hits": 2, "misses": 1}
	pre := Snapshot(Prefixed("l1d", base))
	if pre["l1d.hits"] != 2 || pre["l1d.misses"] != 1 {
		t.Fatalf("Prefixed snapshot = %v", pre)
	}
	// Duplicate emits accumulate.
	dup := Snapshot(sourceFunc(func(emit func(string, float64)) {
		emit("n", 1)
		emit("n", 2)
	}))
	if dup["n"] != 3 {
		t.Fatalf("duplicate emits: got %v, want 3", dup["n"])
	}
}

type sourceFunc func(emit func(string, float64))

func (f sourceFunc) EmitEvents(emit func(string, float64)) { f(emit) }

func FuzzMetricExpr(f *testing.F) {
	seeds := []string{
		"l1d.misses / l1d.accesses",
		"safe_div(a+b, c-d) * 100",
		"-(1.5e3 + x) / (y * 0)",
		"((((a))))",
		"safe_div(safe_div(a,b), safe_div(c,d))",
		"1 +", "x..y", ")(", "safe_div(", "\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src) // must never panic
		if err != nil {
			return
		}
		// Eval must be total on finite inputs: no panic, and an error
		// only for unknown events — which the constant lookup rules out.
		v, err := e.Eval(func(string) (float64, bool) { return 1, true })
		if err != nil {
			t.Fatalf("Eval(%q) errored with total lookup: %v", src, err)
		}
		_ = v // may be Inf/NaN from literal overflow arithmetic; must not panic
		if !utf8.ValidString(src) {
			return
		}
		// Round-trip: String() is the original source.
		if e.String() != src {
			t.Fatalf("String() = %q, want %q", e.String(), src)
		}
		_ = math.IsNaN(v)
	})
}
