package metrics

import (
	"fmt"
	"sync"
)

// Source exports named events — the PMU-event surface of this package.
// It is satisfied structurally (no import of this package needed), so
// perfctr.Report, cache.Stats and the runtime Registry all implement
// it: each calls emit once per event it knows.
type Source interface {
	EmitEvents(emit func(event string, value float64))
}

// EventSet is a flat snapshot of a Source; it is itself a Source.
type EventSet map[string]float64

// EmitEvents replays the snapshot (iteration order unspecified; the
// expression evaluator only ever looks names up).
func (s EventSet) EmitEvents(emit func(string, float64)) {
	for k, v := range s {
		emit(k, v)
	}
}

// Snapshot materializes a Source into an EventSet. A Source emitting
// the same event twice accumulates (the natural reading for counters
// merged from several sub-sources).
func Snapshot(src Source) EventSet {
	if es, ok := src.(EventSet); ok {
		return es
	}
	es := EventSet{}
	src.EmitEvents(func(name string, v float64) { es[name] += v })
	return es
}

// Prefixed wraps a Source, prepending prefix + "." to every event name
// — how a bare cache.Stats becomes the "l1d." family of a report.
func Prefixed(prefix string, src Source) Source {
	return prefixedSource{prefix: prefix + ".", src: src}
}

type prefixedSource struct {
	prefix string
	src    Source
}

func (p prefixedSource) EmitEvents(emit func(string, float64)) {
	p.src.EmitEvents(func(name string, v float64) { emit(p.prefix+name, v) })
}

// Def is one derived-metric definition: a name, its expression over
// events (and earlier-defined metrics), and a help string for reports.
type Def struct {
	Name, Expr, Help string
}

// Set is a compiled collection of metric definitions. Definitions may
// reference events and metrics defined EARLIER in the same set; forward
// and self references are rejected at compile time, which also rules
// out evaluation cycles.
type Set struct {
	order []string
	defs  map[string]*compiledDef
}

type compiledDef struct {
	def  Def
	expr *Expr
}

// NewSet compiles definitions in order.
func NewSet(defs ...Def) (*Set, error) {
	s := &Set{defs: map[string]*compiledDef{}}
	for _, d := range defs {
		if d.Name == "" {
			return nil, fmt.Errorf("metrics: definition with empty name (expr %q)", d.Expr)
		}
		if _, dup := s.defs[d.Name]; dup {
			return nil, fmt.Errorf("metrics: duplicate definition of %q", d.Name)
		}
		e, err := Parse(d.Expr)
		if err != nil {
			return nil, fmt.Errorf("metrics: definition %q: %w", d.Name, err)
		}
		if err := checkName(d.Name); err != nil {
			return nil, err
		}
		for _, ref := range e.Refs() {
			if ref == d.Name {
				return nil, fmt.Errorf("metrics: definition %q references itself", d.Name)
			}
		}
		s.order = append(s.order, d.Name)
		s.defs[d.Name] = &compiledDef{def: d, expr: e}
	}
	// Forward references: a def may only use metrics defined before it.
	pos := map[string]int{}
	for i, name := range s.order {
		pos[name] = i
	}
	for i, name := range s.order {
		for _, ref := range s.defs[name].expr.Refs() {
			if j, isDef := pos[ref]; isDef && j >= i {
				return nil, fmt.Errorf("metrics: definition %q references %q before its definition", name, ref)
			}
		}
	}
	return s, nil
}

// MustNewSet is NewSet for definition tables that are compile-time
// constants.
func MustNewSet(defs ...Def) *Set {
	s, err := NewSet(defs...)
	if err != nil {
		panic(err)
	}
	return s
}

func checkName(name string) error {
	if !isNameStart(name[0]) {
		return fmt.Errorf("metrics: definition name %q is not a valid identifier", name)
	}
	for i := 1; i < len(name); i++ {
		if !isNameByte(name[i]) {
			return fmt.Errorf("metrics: definition name %q is not a valid identifier", name)
		}
	}
	return nil
}

// Defs returns the definitions in compile order.
func (s *Set) Defs() []Def {
	out := make([]Def, len(s.order))
	for i, name := range s.order {
		out[i] = s.defs[name].def
	}
	return out
}

// ExprOf returns the defining expression of a metric ("" when name is
// not defined in the set — a bare event, say).
func (s *Set) ExprOf(name string) string {
	if d, ok := s.defs[name]; ok {
		return d.def.Expr
	}
	return ""
}

// Eval resolves name against the source: a defined metric evaluates
// its expression (definitions shadow same-named events); anything else
// reads the event directly. Unknown names error.
func (s *Set) Eval(name string, src Source) (float64, error) {
	es := Snapshot(src)
	return s.eval(name, es)
}

// EvalExpr evaluates a one-off expression (not a named definition)
// against the source, with the set's definitions in scope.
func (s *Set) EvalExpr(expr string, src Source) (float64, error) {
	e, err := Parse(expr)
	if err != nil {
		return 0, err
	}
	es := Snapshot(src)
	var inner error
	v, err := e.Eval(s.lookup(es, &inner))
	if inner != nil {
		return 0, inner
	}
	return v, err
}

func (s *Set) eval(name string, es EventSet) (float64, error) {
	if d, ok := s.defs[name]; ok {
		var inner error
		v, err := d.expr.Eval(s.lookup(es, &inner))
		if inner != nil {
			return 0, inner
		}
		return v, err
	}
	if v, ok := es[name]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("metrics: unknown event %q", name)
}

// lookup builds the resolver the expression evaluator uses: defined
// metrics first (recursively — NewSet guarantees the recursion is
// finite), then raw events. A nested definition's evaluation error is
// reported through inner.
func (s *Set) lookup(es EventSet, inner *error) func(string) (float64, bool) {
	return func(name string) (float64, bool) {
		if d, ok := s.defs[name]; ok {
			v, err := d.expr.Eval(s.lookup(es, inner))
			if err != nil && *inner == nil {
				*inner = err
			}
			return v, true
		}
		v, ok := es[name]
		return v, ok
	}
}

// DefaultDefs is the repository's standard derived-metric table: the
// quantities Tables VI/VII and the detection monitor report, as data.
// internal/detect compiles its threshold rules against these names.
func DefaultDefs() []Def {
	return []Def{
		{Name: "l1d.miss_rate", Expr: "l1d.misses / l1d.accesses",
			Help: "fraction of L1D references that missed"},
		{Name: "l1d.eviction_rate", Expr: "l1d.evictions / l1d.accesses",
			Help: "valid-line displacements per L1D reference"},
		{Name: "l1d.cross_eviction_rate", Expr: "l1d.cross_evictions / l1d.accesses",
			Help: "displacements of OTHER processes' L1 lines per reference — the prime-and-probe interference signature"},
		{Name: "l2.miss_rate", Expr: "l2.misses / l2.accesses",
			Help: "fraction of L2 references that missed"},
		{Name: "llc.miss_rate", Expr: "llc.misses / llc.accesses",
			Help: "fraction of LLC references that missed"},
	}
}

var defaultSet = sync.OnceValue(func() *Set { return MustNewSet(DefaultDefs()...) })

// Default returns the process-wide Set compiled from DefaultDefs.
func Default() *Set { return defaultSet() }
