package transport

import (
	"repro/internal/rng"
)

// CapacityPoint is one end-to-end goodput measurement: the Figure 4
// capacity-vs-reliability trade-off re-expressed at the transport layer
// (goodput of correct payload bits instead of raw channel rate, frame
// error rate instead of bit edit distance).
type CapacityPoint struct {
	Tr, Ts       uint64
	Codec        string
	Lanes        int
	NoiseThreads int
	PayloadBytes int

	FramesSent, FramesOK int
	FrameErrorRate       float64
	ByteErrors           int
	GoodputBitsPerCycle  float64
	GoodputBps           float64
}

// MeasureCapacity builds a stream from cfg, transfers a payload of
// payloadBytes pseudo-random bytes derived from seed, and reports the
// operating point. The channel seed is also derived from seed, so one
// uint64 pins the whole experiment.
func MeasureCapacity(cfg Config, payloadBytes int, seed uint64) CapacityPoint {
	r := rng.New(seed)
	cfg.Channel.Seed = r.Uint64()
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(r.Uint64())
	}

	s := New(cfg)
	res := s.Transfer(payload)
	return CapacityPoint{
		Tr: s.MS.Cfg.Tr, Ts: s.MS.Cfg.Ts,
		Codec:        s.Cfg.Codec.Name(),
		Lanes:        s.MS.Lanes(),
		NoiseThreads: s.MS.Cfg.NoiseThreads,
		PayloadBytes: payloadBytes,

		FramesSent: res.FramesSent, FramesOK: res.FramesOK,
		FrameErrorRate:      res.FrameErrorRate,
		ByteErrors:          res.ByteErrors,
		GoodputBitsPerCycle: res.GoodputBitsPerCycle,
		GoodputBps:          res.GoodputBps,
	}
}
