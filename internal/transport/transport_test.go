package transport

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/transport/codec"
)

func allCodecs() []codec.Codec {
	return []codec.Codec{codec.Identity{}, codec.Repetition{K: 3}, codec.Hamming74{}}
}

// --- frame layer (no channel) ---

func TestFrameRoundTripClean(t *testing.T) {
	r := rng.New(1)
	for _, c := range allCodecs() {
		for _, n := range []int{1, 31, 32, 33, 100} {
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(r.Uint64())
			}
			bits := EncodeFrames(payload, 32, c)
			frames := (n + 31) / 32
			if len(bits) != frames*WireBits(32, c) {
				t.Fatalf("%s n=%d: %d wire bits, want %d frames x %d",
					c.Name(), n, len(bits), frames, WireBits(32, c))
			}
			res := ScanFrames(bits, 32, c)
			if len(res.Frames) != frames || res.CRCFailures != 0 {
				t.Fatalf("%s n=%d: scanned %d frames (%d CRC failures), want %d",
					c.Name(), n, len(res.Frames), res.CRCFailures, frames)
			}
			got := Reassemble(res.Frames, 32, n)
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s n=%d: reassembled payload differs", c.Name(), n)
			}
		}
	}
}

// The scanner must find frames at any bit offset (lane striping plus
// lead-in symbols shift frame starts arbitrarily).
func TestScanFindsFramesAtAnyOffset(t *testing.T) {
	payload := []byte("stream me please")
	bits := EncodeFrames(payload, 32, codec.Identity{})
	for off := 0; off < 9; off++ {
		shifted := append(make([]byte, off), bits...)
		shifted = append(shifted, make([]byte, 5)...)
		res := ScanFrames(shifted, 32, codec.Identity{})
		if len(res.Frames) != 1 {
			t.Fatalf("offset %d: %d frames", off, len(res.Frames))
		}
		if got := Reassemble(res.Frames, 32, len(payload)); !bytes.Equal(got, payload) {
			t.Fatalf("offset %d: payload differs", off)
		}
	}
}

// A single flipped wire bit anywhere in a Hamming-coded frame must not
// cost the frame; under identity the CRC must reject the corruption
// rather than deliver a wrong payload.
func TestSingleWireFlip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	t.Run("hamming corrects", func(t *testing.T) {
		bits := EncodeFrames(payload, 8, codec.Hamming74{})
		for pos := SyncBits; pos < len(bits); pos++ {
			corr := append([]byte(nil), bits...)
			corr[pos] ^= 1
			res := ScanFrames(corr, 8, codec.Hamming74{})
			if len(res.Frames) != 1 || !bytes.Equal(res.Frames[0].Payload, payload) {
				t.Fatalf("flip at %d not corrected", pos)
			}
		}
	})
	t.Run("sync tolerates one flip", func(t *testing.T) {
		bits := EncodeFrames(payload, 8, codec.Identity{})
		for pos := 0; pos < SyncBits; pos++ {
			corr := append([]byte(nil), bits...)
			corr[pos] ^= 1
			res := ScanFrames(corr, 8, codec.Identity{})
			if len(res.Frames) != 1 {
				t.Fatalf("sync flip at %d lost the frame", pos)
			}
		}
	})
	t.Run("identity CRC rejects", func(t *testing.T) {
		bits := EncodeFrames(payload, 8, codec.Identity{})
		for pos := SyncBits; pos < len(bits); pos++ {
			corr := append([]byte(nil), bits...)
			corr[pos] ^= 1
			res := ScanFrames(corr, 8, codec.Identity{})
			for _, f := range res.Frames {
				if f.Seq == 0 && !bytes.Equal(f.Payload, payload) {
					t.Fatalf("flip at %d delivered a corrupt frame", pos)
				}
			}
			if len(res.Frames) == 1 {
				t.Fatalf("flip at %d: identity frame survived without ECC", pos)
			}
		}
	})
}

func TestReassembleMissingAndDuplicate(t *testing.T) {
	frames := []RxFrame{
		{Seq: 2, Payload: []byte("CCCC")},
		{Seq: 0, Payload: []byte("AAAA")},
		{Seq: 0, Payload: []byte("XXXX")}, // duplicate: first wins
		{Seq: 9, Payload: []byte("ZZZZ")}, // out of range: dropped
	}
	got := Reassemble(frames, 4, 12)
	want := []byte("AAAA\x00\x00\x00\x00CCCC")
	if !bytes.Equal(got, want) {
		t.Fatalf("reassembled %q, want %q", got, want)
	}
}

func TestEncodeFramesPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero frame payload": func() { EncodeFrames([]byte{1}, 0, codec.Identity{}) },
		"too many frames":    func() { EncodeFrames(make([]byte, 257), 1, codec.Identity{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCRC16KnownAnswer(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := crc16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("crc16 check value %#04x, want 0x29B1", got)
	}
}

func TestBitByteHelpers(t *testing.T) {
	bs := []byte{0xA5, 0x01}
	bits := bytesToBits(bs)
	want := []byte{1, 0, 1, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1}
	if !bytes.Equal(bits, want) {
		t.Fatalf("bytesToBits = %v", bits)
	}
	if got := bitsToBytes(bits); !bytes.Equal(got, bs) {
		t.Fatalf("bitsToBytes = %v", got)
	}
	// Trailing partial byte drops.
	if got := bitsToBytes(bits[:10]); !bytes.Equal(got, bs[:1]) {
		t.Fatalf("partial bitsToBytes = %v", got)
	}
}

// FuzzScanFrames hardens the receiver's frame scanner against arbitrary
// bit streams: it must never panic, and every frame it accepts must
// respect the wire invariants (payload within the frame size, sequence
// within the one-byte space).
func FuzzScanFrames(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(bytesToBits([]byte("some random stream bytes")), uint8(1))
	f.Add(EncodeFrames([]byte("seed corpus payload"), 8, codec.Hamming74{}), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, which uint8) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		c := allCodecs()[int(which)%3]
		res := ScanFrames(bits, 8, c)
		for _, fr := range res.Frames {
			if fr.Seq < 0 || fr.Seq > 255 {
				t.Fatalf("frame seq %d out of range", fr.Seq)
			}
			if len(fr.Payload) > 8 {
				t.Fatalf("frame payload %d bytes exceeds frame size", len(fr.Payload))
			}
		}
		if res.SyncHits < len(res.Frames)+res.CRCFailures {
			t.Fatalf("accounting: %d sync hits < %d frames + %d CRC failures",
				res.SyncHits, len(res.Frames), res.CRCFailures)
		}
	})
}

// --- end to end over the simulated channel ---

func streamCfg(noise int) Config {
	return Config{
		Channel: core.Config{
			Algorithm: core.Alg1SharedMemory, Mode: sched.SMT,
			NoiseThreads: noise, NoisePeriod: 20_000,
		},
	}
}

func TestTransferCleanChannel(t *testing.T) {
	r := rng.New(33)
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(r.Uint64())
	}
	for _, c := range allCodecs() {
		cfg := streamCfg(0)
		cfg.Codec = c
		cfg.Channel.Seed = 100
		s := New(cfg)
		res := s.Transfer(payload)
		if res.ByteErrors != 0 || res.FrameErrorRate != 0 {
			t.Errorf("%s on a clean channel: %v", c.Name(), res)
		}
		if !bytes.Equal(res.Received, payload) {
			t.Errorf("%s: received payload differs", c.Name())
		}
		if res.GoodputBps <= 0 {
			t.Errorf("%s: goodput %v", c.Name(), res.GoodputBps)
		}
	}
}

// More lanes must not break the transfer and must finish in fewer
// symbols (parallel goodput).
func TestTransferLaneScaling(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	elapsed := map[int]uint64{}
	for _, lanes := range []int{1, 4} {
		cfg := streamCfg(0)
		cfg.Lanes = DefaultLanes(lanes)
		cfg.Channel.Seed = 7
		s := New(cfg)
		res := s.Transfer(payload)
		if res.ByteErrors != 0 {
			t.Fatalf("lanes=%d: %d byte errors", lanes, res.ByteErrors)
		}
		elapsed[lanes] = res.ElapsedCycles
	}
	if elapsed[4]*2 >= elapsed[1] {
		t.Errorf("4 lanes took %d cycles vs %d for 1; expected ~4x speedup",
			elapsed[4], elapsed[1])
	}
}

// DefaultLanes must honour its contract for every feasible n: distinct
// sets, never set 0 or the reserved chase set 63.
func TestDefaultLanesContract(t *testing.T) {
	for _, n := range []int{1, 4, 10, 11, 12, 62} {
		lanes := DefaultLanes(n)
		if len(lanes) != n {
			t.Fatalf("DefaultLanes(%d) returned %d lanes", n, len(lanes))
		}
		seen := map[int]bool{}
		for _, set := range lanes {
			if set <= 0 || set >= 63 {
				t.Fatalf("DefaultLanes(%d) includes unusable set %d", n, set)
			}
			if seen[set] {
				t.Fatalf("DefaultLanes(%d) repeats set %d", n, set)
			}
			seen[set] = true
		}
	}
	// 11+ lanes must build a working multi-set channel, not panic.
	cfg := streamCfg(0)
	cfg.Lanes = DefaultLanes(11)
	cfg.Channel.Seed = 9
	if s := New(cfg); s.MS.Lanes() != 11 {
		t.Fatalf("11-lane stream has %d lanes", s.MS.Lanes())
	}
	defer func() {
		if recover() == nil {
			t.Error("DefaultLanes(63) did not panic")
		}
	}()
	DefaultLanes(63)
}

func TestMeasureCapacityDeterministic(t *testing.T) {
	a := MeasureCapacity(streamCfg(2), 48, 42)
	b := MeasureCapacity(streamCfg(2), 48, 42)
	if a != b {
		t.Fatalf("capacity point not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Codec != "none" || a.Lanes != 4 || a.NoiseThreads != 2 {
		t.Fatalf("capacity point identity %+v", a)
	}
}
