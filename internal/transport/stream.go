package transport

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/transport/codec"
)

// Config parameterizes a covert-channel stream.
type Config struct {
	// Channel configures the underlying LRU channel (profile,
	// algorithm, Tr, Ts, noise...). Zero Tr/Ts default to the stream
	// operating point Tr=2000, Ts=12000 — about six receiver sweeps
	// per symbol, enough majority voting to absorb the one-to-two
	// sweeps of replacement-state drift that follow a 1→0 transition
	// (the channel's intrinsic intersymbol interference).
	Channel core.Config

	// Lanes are the L1 target sets carrying one bit per symbol each.
	// Defaults to DefaultLanes(4).
	Lanes []int

	// Codec is the error-correcting code; defaults to codec.Identity.
	Codec codec.Codec

	// FramePayload is the payload bytes per frame (default
	// DefaultFramePayload).
	FramePayload int

	// LeadInSymbols is the number of idle (all-zero) symbols sent
	// before the first frame so the receiver's warm-up misses nothing
	// (default 4).
	LeadInSymbols int
}

// DefaultFramePayload is the frame payload size used when
// Config.FramePayload is zero.
const DefaultFramePayload = 32

func (c Config) withDefaults() Config {
	if c.Channel.Tr == 0 {
		c.Channel.Tr = 2000
	}
	if c.Channel.Ts == 0 {
		c.Channel.Ts = 12000
	}
	if len(c.Lanes) == 0 {
		c.Lanes = DefaultLanes(4)
	}
	if c.Codec == nil {
		c.Codec = codec.Identity{}
	}
	if c.FramePayload == 0 {
		c.FramePayload = DefaultFramePayload
	}
	if c.LeadInSymbols == 0 {
		c.LeadInSymbols = 4
	}
	return c
}

// DefaultLanes returns n well-spread L1 target sets for lane striping,
// avoiding set 0 (pollution magnet) and the default reserved
// pointer-chase set (the last set, 63 on every Table III profile). The
// first lanes step by 6 for spread; once the stride would leave the
// valid range, remaining lanes fill in from the lowest unused sets. It
// panics if n exceeds the 62 usable sets.
func DefaultLanes(n int) []int {
	const reserved, sets = 63, 64
	if n > sets-2 {
		panic(fmt.Sprintf("transport: DefaultLanes(%d) exceeds the %d usable sets", n, sets-2))
	}
	used := make([]bool, sets)
	out := make([]int, 0, n)
	take := func(set int) {
		if len(out) < n && set != 0 && set != reserved && !used[set] {
			used[set] = true
			out = append(out, set)
		}
	}
	for set := 3; set < reserved; set += 6 {
		take(set)
	}
	for set := 1; set < reserved; set++ {
		take(set)
	}
	return out
}

// Stream is an instantiated covert-channel transport: a multi-set
// channel plus the framing/ECC pipeline over it.
type Stream struct {
	Cfg Config
	MS  *core.MultiSetup
}

// New builds a stream over a fresh multi-set channel.
func New(cfg Config) *Stream {
	cfg = cfg.withDefaults()
	return &Stream{Cfg: cfg, MS: core.NewMultiSetup(cfg.Channel, cfg.Lanes)}
}

// WireBits returns the on-air size of one frame under the stream's
// codec.
func (s *Stream) WireBits() int { return WireBits(s.Cfg.FramePayload, s.Cfg.Codec) }

// TxRecord is the sender side of one transfer: the receiver's raw
// sweeps plus the wire accounting needed to decode and rate them.
type TxRecord struct {
	Obs []core.MultiObservation
	// Frames is the number of frames sent.
	Frames int
	// Symbols is the total symbol count including the lead-in.
	Symbols int
	// Elapsed is the simulated wall time of the run in cycles.
	Elapsed uint64
}

// Send frames, codes and stripes payload across the lanes, runs the
// simulated machine, and returns the receiver's raw sweeps. Decoding is
// the receiver's half (Receive) — split so experiments can decode one
// capture several ways.
func (s *Stream) Send(payload []byte) *TxRecord {
	lanes := s.MS.Lanes()
	bits := EncodeFrames(payload, s.Cfg.FramePayload, s.Cfg.Codec)
	frames := len(bits) / s.WireBits()

	stream := make([]byte, s.Cfg.LeadInSymbols*lanes, s.Cfg.LeadInSymbols*lanes+len(bits)+lanes)
	stream = append(stream, bits...)
	for len(stream)%lanes != 0 {
		stream = append(stream, 0)
	}
	symbols := len(stream) / lanes
	words := make([][]byte, symbols)
	for j := range words {
		words[j] = stream[j*lanes : (j+1)*lanes]
	}

	ts := s.MS.Cfg.Ts
	wall := uint64(symbols)*ts + s.MS.Cfg.Tr
	obs := s.MS.RunSchedule(words, wall)
	return &TxRecord{Obs: obs, Frames: frames, Symbols: symbols, Elapsed: wall}
}

// RxResult is the receiver side of one transfer.
type RxResult struct {
	ScanResult
	// Bits is the de-striped symbol stream the scan ran over.
	Bits []byte
	// Symbols is the number of symbol periods observed.
	Symbols int
	// EmptySymbols counts symbol periods with no sweep at all (erased
	// lanes-worth of bits — the receiver fell behind the schedule).
	EmptySymbols int
}

// Receive decodes raw sweeps into frames: per-symbol majority vote on
// each lane (symbol index from the sweep's wall time — sender and
// receiver share the machine's TSC, the paper's Algorithm 3 clock
// assumption), de-striping into a bit stream, then the sync-hunting
// frame scan.
func (s *Stream) Receive(obs []core.MultiObservation) *RxResult {
	lanes := s.MS.Lanes()
	ts, tr := s.MS.Cfg.Ts, s.MS.Cfg.Tr
	th := s.MS.FixedThreshold()
	hitOne := s.MS.HitMeansOne()

	maxSym := -1
	symOf := func(wall uint64) int {
		// A sweep's decode completes at wall; the state it read was
		// set during the preceding sampling window, so attribute it
		// half a period back.
		if wall < tr/2 {
			return 0
		}
		return int((wall - tr/2) / ts)
	}
	for _, o := range obs {
		if sym := symOf(o.Wall); sym > maxSym {
			maxSym = sym
		}
	}
	res := &RxResult{Symbols: maxSym + 1}
	if maxSym < 0 {
		return res
	}

	ones := make([]int, (maxSym+1)*lanes)
	total := make([]int, (maxSym+1)*lanes)
	for _, o := range obs {
		sym := symOf(o.Wall)
		for lane, lat := range o.Latencies {
			if lane >= lanes {
				break
			}
			total[sym*lanes+lane]++
			ones[sym*lanes+lane] += int(core.ClassifyBit(lat, th, hitOne))
		}
	}
	bits := make([]byte, (maxSym+1)*lanes)
	for sym := 0; sym <= maxSym; sym++ {
		empty := true
		for lane := 0; lane < lanes; lane++ {
			i := sym*lanes + lane
			if total[i] > 0 {
				empty = false
				// Strict majority: a transmitted 1 is reinforced every
				// ~SenderPeriod cycles, so all of its sweeps read fast;
				// a spurious fast read from replacement-state drift is
				// an isolated single-sweep event. Ties therefore
				// resolve to 0.
				if 2*ones[i] > total[i] {
					bits[i] = 1
				}
			}
		}
		if empty {
			res.EmptySymbols++
		}
	}
	res.Bits = bits
	res.ScanResult = ScanFrames(bits, s.Cfg.FramePayload, s.Cfg.Codec)
	return res
}

// TransferResult is the end-to-end outcome of moving one payload.
type TransferResult struct {
	Sent, Received []byte
	// FramesSent and FramesOK count wire frames and the distinct
	// in-range frames recovered with a valid CRC.
	FramesSent, FramesOK int
	// FrameErrorRate is 1 - FramesOK/FramesSent.
	FrameErrorRate float64
	// ByteErrors counts positions where Received differs from Sent —
	// residual errors after ECC, CRC and reassembly.
	ByteErrors int
	// ElapsedCycles is the simulated wall time of the whole transfer.
	ElapsedCycles uint64
	// GoodputBitsPerCycle is correctly delivered payload bits per
	// simulated cycle; GoodputBps scales it by the profile's clock.
	GoodputBitsPerCycle float64
	GoodputBps          float64
	// Rx keeps the receiver-side detail (sync hits, CRC failures,
	// empty symbols).
	Rx *RxResult
}

// Transfer sends payload end to end and scores the result against the
// ground truth.
func (s *Stream) Transfer(payload []byte) *TransferResult {
	tx := s.Send(payload)
	rx := s.Receive(tx.Obs)

	got := Reassemble(rx.Frames, s.Cfg.FramePayload, len(payload))
	res := &TransferResult{
		Sent: payload, Received: got,
		FramesSent:    tx.Frames,
		ElapsedCycles: tx.Elapsed,
		Rx:            rx,
	}
	seen := make(map[int]bool)
	for _, f := range rx.Frames {
		if f.Seq < tx.Frames && !seen[f.Seq] {
			seen[f.Seq] = true
			res.FramesOK++
		}
	}
	if tx.Frames > 0 {
		res.FrameErrorRate = 1 - float64(res.FramesOK)/float64(tx.Frames)
	}
	for i := range payload {
		if got[i] != payload[i] {
			res.ByteErrors++
		}
	}
	if tx.Elapsed > 0 {
		okBits := 8 * (len(payload) - res.ByteErrors)
		res.GoodputBitsPerCycle = float64(okBits) / float64(tx.Elapsed)
		res.GoodputBps = float64(okBits) / s.MS.Hier.Profile().CyclesToSeconds(float64(tx.Elapsed))
	}
	return res
}

// String summarizes a transfer for logs and the CLI.
func (r *TransferResult) String() string {
	return fmt.Sprintf("%d/%d frames, FER %.1f%%, %d byte errors, goodput %.1f Kbps",
		r.FramesOK, r.FramesSent, 100*r.FrameErrorRate, r.ByteErrors, r.GoodputBps/1000)
}
