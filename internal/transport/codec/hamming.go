package codec

// Hamming74 is the Hamming(7,4) block code: four data bits d1..d4 become
// the seven channel bits p1 p2 d1 p3 d2 d3 d4 (parity bits at the
// power-of-two positions 1, 2 and 4). The three syndrome bits read out
// the position of any single flipped bit, so every 7-bit block corrects
// one channel-bit error. Data lengths that are not a multiple of four
// are zero-padded on encode; Decode returns the padded length (the
// transport's frame sizes are byte multiples, so padding never occurs
// on the wire).
type Hamming74 struct{}

// Name implements Codec.
func (Hamming74) Name() string { return "hamming74" }

// Rate implements Codec.
func (Hamming74) Rate() float64 { return 4.0 / 7.0 }

// EncodedLen implements Codec.
func (Hamming74) EncodedLen(n int) int { return (n + 3) / 4 * 7 }

// Encode implements Codec.
func (Hamming74) Encode(data []byte) []byte {
	out := make([]byte, 0, Hamming74{}.EncodedLen(len(data)))
	for i := 0; i < len(data); i += 4 {
		var d [4]byte
		copy(d[:], data[i:min(i+4, len(data))])
		p1 := d[0] ^ d[1] ^ d[3]
		p2 := d[0] ^ d[2] ^ d[3]
		p3 := d[1] ^ d[2] ^ d[3]
		out = append(out, p1, p2, d[0], p3, d[1], d[2], d[3])
	}
	return out
}

// Decode implements Codec. Each 7-bit block has its syndrome computed
// and, when non-zero, the indicated bit flipped before the data bits
// are extracted.
func (Hamming74) Decode(coded []byte) []byte {
	out := make([]byte, 0, len(coded)/7*4)
	for i := 0; i+7 <= len(coded); i += 7 {
		var c [7]byte
		copy(c[:], coded[i:i+7])
		// Syndrome bit k covers the positions whose index (1-based)
		// has bit k set; together they spell the error position.
		s1 := c[0] ^ c[2] ^ c[4] ^ c[6]
		s2 := c[1] ^ c[2] ^ c[5] ^ c[6]
		s3 := c[3] ^ c[4] ^ c[5] ^ c[6]
		if syndrome := int(s1) | int(s2)<<1 | int(s3)<<2; syndrome != 0 {
			c[syndrome-1] ^= 1
		}
		out = append(out, c[2], c[4], c[5], c[6])
	}
	return out
}
