// Package codec provides the error-correcting codes of the streaming
// covert-channel transport (internal/transport). A Codec maps payload
// bits to channel bits and back; the channel-facing representation is
// the repository's bit-slice convention (one bit per byte, each 0 or 1),
// so coded output plugs straight into the multi-set sender words and the
// per-sweep decode of internal/core.
//
// Three codes are implemented:
//
//   - Identity — the no-ECC baseline; what the paper's raw channel is.
//   - Repetition(k) — each bit sent k times, majority-decoded. The
//     simplest capacity-for-reliability trade (rate 1/k).
//   - Hamming(7,4) — four data bits per seven channel bits with
//     single-bit error correction per block (rate 4/7), the classic
//     choice for the low-error-rate operating points of Figure 4.
package codec

import (
	"fmt"
	"strconv"
	"strings"
)

// Codec maps data bits to channel bits and back. Implementations must be
// deterministic and stateless: Encode and Decode may be called from
// concurrent engine jobs.
type Codec interface {
	// Name identifies the codec in sweep grids and bench output.
	Name() string
	// Rate is the information rate: data bits per channel bit (<= 1).
	Rate() float64
	// EncodedLen returns the channel-bit count for n data bits.
	EncodedLen(n int) int
	// Encode maps data bits (one per byte, 0 or 1) to channel bits.
	Encode(data []byte) []byte
	// Decode maps channel bits back to data bits, correcting what the
	// code can correct. len(coded) must be EncodedLen(n) for some n;
	// trailing bits short of a code block are dropped.
	Decode(coded []byte) []byte
}

// Identity is the no-ECC baseline: channel bits are the data bits.
type Identity struct{}

// Name implements Codec.
func (Identity) Name() string { return "none" }

// Rate implements Codec.
func (Identity) Rate() float64 { return 1 }

// EncodedLen implements Codec.
func (Identity) EncodedLen(n int) int { return n }

// Encode implements Codec.
func (Identity) Encode(data []byte) []byte {
	return append([]byte(nil), data...)
}

// Decode implements Codec.
func (Identity) Decode(coded []byte) []byte {
	return append([]byte(nil), coded...)
}

// Repetition sends every data bit K times and decodes by majority vote,
// correcting up to floor((K-1)/2) channel-bit errors per data bit. For
// even K, ties resolve to 0: the LRU channel's dominant error mode is a
// spurious fast read decoding as 1 (replacement-state drift), so the
// tie bias must point the other way.
type Repetition struct{ K int }

// Name implements Codec.
func (r Repetition) Name() string { return fmt.Sprintf("rep%d", r.k()) }

func (r Repetition) k() int {
	if r.K < 1 {
		return 3
	}
	return r.K
}

// Rate implements Codec.
func (r Repetition) Rate() float64 { return 1 / float64(r.k()) }

// EncodedLen implements Codec.
func (r Repetition) EncodedLen(n int) int { return n * r.k() }

// Encode implements Codec.
func (r Repetition) Encode(data []byte) []byte {
	k := r.k()
	out := make([]byte, 0, len(data)*k)
	for _, b := range data {
		for i := 0; i < k; i++ {
			out = append(out, b)
		}
	}
	return out
}

// Decode implements Codec.
func (r Repetition) Decode(coded []byte) []byte {
	k := r.k()
	out := make([]byte, 0, len(coded)/k)
	for i := 0; i+k <= len(coded); i += k {
		ones := 0
		for _, b := range coded[i : i+k] {
			ones += int(b)
		}
		if 2*ones > k {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// ByName constructs a codec from its sweep-grid name: "none" (or
// "identity"), "repK" for any K >= 1 (e.g. "rep3"), or "hamming74"
// (or "hamming").
func ByName(name string) (Codec, error) {
	switch n := strings.ToLower(strings.TrimSpace(name)); {
	case n == "none" || n == "identity":
		return Identity{}, nil
	case n == "hamming74" || n == "hamming":
		return Hamming74{}, nil
	case strings.HasPrefix(n, "rep"):
		k, err := strconv.Atoi(n[len("rep"):])
		if err != nil || k < 1 {
			return nil, fmt.Errorf("codec: bad repetition factor in %q", name)
		}
		return Repetition{K: k}, nil
	default:
		return nil, fmt.Errorf("codec: unknown codec %q", name)
	}
}

// Names lists the default codec family, in sweep presentation order.
func Names() []string { return []string{"none", "rep3", "hamming74"} }
