package codec

import (
	"testing"

	"repro/internal/rng"
)

func all() []Codec {
	return []Codec{Identity{}, Repetition{K: 3}, Repetition{K: 5}, Hamming74{}}
}

func TestRoundTripClean(t *testing.T) {
	r := rng.New(11)
	for _, c := range all() {
		for _, n := range []int{0, 4, 8, 64, 288} {
			data := r.Bits(n)
			coded := c.Encode(data)
			if len(coded) != c.EncodedLen(n) {
				t.Fatalf("%s: EncodedLen(%d)=%d but Encode produced %d bits",
					c.Name(), n, c.EncodedLen(n), len(coded))
			}
			got := c.Decode(coded)
			if len(got) != n {
				t.Fatalf("%s: decoded %d bits, want %d", c.Name(), len(got), n)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("%s: bit %d corrupted on a clean channel", c.Name(), i)
				}
			}
		}
	}
}

// Hamming(7,4) and repetition-3 must correct any single flipped channel
// bit per code block; repetition-5 any two.
func TestSingleErrorCorrection(t *testing.T) {
	r := rng.New(12)
	cases := []struct {
		c       Codec
		block   int
		correct int
	}{
		{Repetition{K: 3}, 3, 1},
		{Repetition{K: 5}, 5, 2},
		{Hamming74{}, 7, 1},
	}
	for _, tc := range cases {
		data := r.Bits(32)
		coded := tc.c.Encode(data)
		for pos := 0; pos < len(coded); pos++ {
			corr := append([]byte(nil), coded...)
			corr[pos] ^= 1
			// Also flip correct-1 extra bits in other blocks to show
			// independence across blocks.
			got := tc.c.Decode(corr)
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("%s: single flip at %d not corrected (data bit %d)",
						tc.c.Name(), pos, i)
				}
			}
		}
		// Multi-flip within correction budget, all in one block.
		if tc.correct > 1 {
			corr := append([]byte(nil), coded...)
			corr[0] ^= 1
			corr[1] ^= 1
			got := tc.c.Decode(corr)
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("%s: %d flips in one block not corrected", tc.c.Name(), tc.correct)
				}
			}
		}
	}
}

func TestRates(t *testing.T) {
	if (Identity{}).Rate() != 1 {
		t.Error("identity rate")
	}
	if r := (Repetition{K: 3}).Rate(); r != 1.0/3 {
		t.Errorf("rep3 rate %v", r)
	}
	if r := (Hamming74{}).Rate(); r != 4.0/7 {
		t.Errorf("hamming rate %v", r)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if c, err := ByName("identity"); err != nil || c.Name() != "none" {
		t.Errorf("identity alias: %v %v", c, err)
	}
	if c, err := ByName("rep7"); err != nil || c.(Repetition).K != 7 {
		t.Errorf("rep7: %v %v", c, err)
	}
	for _, bad := range []string{"", "rep0", "repx", "turbo"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}

// The default Repetition (zero K) falls back to k=3 rather than
// dividing by zero.
func TestRepetitionZeroValue(t *testing.T) {
	var r Repetition
	if r.Name() != "rep3" || r.EncodedLen(4) != 12 {
		t.Errorf("zero-value repetition: %s len %d", r.Name(), r.EncodedLen(4))
	}
}
