package transport

import (
	"fmt"

	"repro/internal/transport/codec"
)

// SyncBits is the length of the uncoded frame preamble.
const SyncBits = 16

// syncWord is the 16-bit frame preamble (0x1ACF, the head of the CCSDS
// attached sync marker), chosen for its low shifted self-similarity.
var syncWord = [SyncBits]byte{0, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 1, 1, 1}

// syncTolerance is the number of sync-word bit mismatches the scanner
// accepts: one flipped preamble bit must not cost a whole frame, and
// the CRC rejects the false positives the slack admits.
const syncTolerance = 1

// frameOverhead is the non-payload byte count inside the coded region:
// sequence number, length, and the CRC-16.
const frameOverhead = 4

// maxFrames is the sequence-number space (one byte).
const maxFrames = 256

// MaxPayloadBytes returns the largest payload a single Send can carry
// at the given frame size (the sequence-number space times the payload
// bytes per frame); framePayload <= 0 selects the config default.
func MaxPayloadBytes(framePayload int) int {
	if framePayload <= 0 {
		framePayload = DefaultFramePayload
	}
	return maxFrames * framePayload
}

// WireBits returns the on-air bit count of one frame carrying
// framePayload payload bytes under the given codec.
func WireBits(framePayload int, c codec.Codec) int {
	return SyncBits + c.EncodedLen(8*(framePayload+frameOverhead))
}

// EncodeFrames splits payload into ceil(len/framePayload) frames and
// returns the concatenated wire bits of all frames. It panics if the
// payload needs more than 256 frames (the sequence-number space) —
// callers stream larger transfers as multiple sends.
func EncodeFrames(payload []byte, framePayload int, c codec.Codec) []byte {
	if framePayload < 1 {
		panic("transport: framePayload must be >= 1")
	}
	frames := (len(payload) + framePayload - 1) / framePayload
	if frames == 0 {
		frames = 1
	}
	if frames > maxFrames {
		panic(fmt.Sprintf("transport: payload of %d bytes needs %d frames; max %d at %d bytes/frame",
			len(payload), frames, maxFrames, framePayload))
	}
	out := make([]byte, 0, frames*WireBits(framePayload, c))
	buf := make([]byte, framePayload+frameOverhead)
	for seq := 0; seq < frames; seq++ {
		chunk := payload[seq*framePayload:]
		if len(chunk) > framePayload {
			chunk = chunk[:framePayload]
		}
		buf[0] = byte(seq)
		buf[1] = byte(len(chunk))
		copy(buf[2:], chunk)
		for i := 2 + len(chunk); i < 2+framePayload; i++ {
			buf[i] = 0
		}
		crc := crc16(buf[:2+framePayload])
		buf[2+framePayload] = byte(crc >> 8)
		buf[3+framePayload] = byte(crc)
		out = append(out, syncWord[:]...)
		out = append(out, c.Encode(bytesToBits(buf))...)
	}
	return out
}

// RxFrame is one CRC-valid received frame.
type RxFrame struct {
	Seq int
	// Payload is trimmed to the frame's advertised length.
	Payload []byte
}

// ScanResult is the outcome of scanning a received bit stream.
type ScanResult struct {
	// Frames are the CRC-valid frames in detection order.
	Frames []RxFrame
	// SyncHits counts sync-word matches, including false ones.
	SyncHits int
	// CRCFailures counts sync matches whose frame failed the CRC
	// (corrupted frames and false syncs alike).
	CRCFailures int
}

// ScanFrames hunts for frames in a received bit stream: at each offset
// it matches the sync word within syncTolerance, decodes the fixed-size
// coded region, and accepts the frame if the CRC passes. On a CRC
// failure the scan advances one bit (a false sync must not shadow a
// real frame start); after an accepted frame it skips the whole frame.
func ScanFrames(bits []byte, framePayload int, c codec.Codec) ScanResult {
	var res ScanResult
	wire := WireBits(framePayload, c)
	for p := 0; p+wire <= len(bits); {
		if !syncMatch(bits[p : p+SyncBits]) {
			p++
			continue
		}
		res.SyncHits++
		data := bitsToBytes(c.Decode(bits[p+SyncBits : p+wire]))
		if len(data) < framePayload+frameOverhead {
			// A codec returning short blocks cannot carry this frame.
			p++
			continue
		}
		want := uint16(data[2+framePayload])<<8 | uint16(data[3+framePayload])
		n := int(data[1])
		if crc16(data[:2+framePayload]) != want || n > framePayload {
			res.CRCFailures++
			p++
			continue
		}
		res.Frames = append(res.Frames, RxFrame{
			Seq:     int(data[0]),
			Payload: append([]byte(nil), data[2:2+n]...),
		})
		p += wire
	}
	return res
}

// syncMatch reports whether the 16 bits at the window match the sync
// word within the scanner's tolerance.
func syncMatch(window []byte) bool {
	miss := 0
	for i, want := range syncWord {
		if window[i] != want {
			miss++
			if miss > syncTolerance {
				return false
			}
		}
	}
	return true
}

// Reassemble orders CRC-valid frames by sequence number into a payload
// of total bytes (the sender-side length, which the experiment knows).
// Bytes of missing frames stay zero; duplicate sequence numbers keep
// the first copy.
func Reassemble(frames []RxFrame, framePayload, total int) []byte {
	out := make([]byte, total)
	seen := make(map[int]bool, len(frames))
	for _, f := range frames {
		if seen[f.Seq] || f.Seq*framePayload >= total {
			continue
		}
		seen[f.Seq] = true
		copy(out[f.Seq*framePayload:], f.Payload)
	}
	return out
}

// crc16 is CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), the frame
// checksum.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// bytesToBits expands bytes into the repository's bit-slice convention,
// most significant bit first.
func bytesToBits(bs []byte) []byte {
	out := make([]byte, 0, 8*len(bs))
	for _, b := range bs {
		for i := 7; i >= 0; i-- {
			out = append(out, (b>>i)&1)
		}
	}
	return out
}

// bitsToBytes packs bits (one per byte, MSB first) back into bytes;
// trailing bits short of a full byte are dropped.
func bitsToBytes(bits []byte) []byte {
	out := make([]byte, 0, len(bits)/8)
	for i := 0; i+8 <= len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | bits[i+j]&1
		}
		out = append(out, b)
	}
	return out
}
