// Package transport is the streaming layer on top of the LRU covert
// channel: it turns arbitrary []byte payloads into framed, error-coded
// bit streams striped across multi-set channel lanes, and recovers them
// from the receiver's raw latency sweeps.
//
// The paper's channel (Algorithm 3) moves loose bits; Section VII's
// headline transfer rates implicitly assume a byte transport on top.
// This package supplies it:
//
//	payload -> frames -> ECC (codec) -> lane striping -> MultiSetup
//	sweeps  -> per-symbol majority vote -> de-striping -> sync hunt
//	        -> ECC decode -> CRC check -> reassembly
//
// Wire format of one frame (bit-level, MSB first within bytes):
//
//	+------------+-----------------------------------------------+
//	| SYNC 16b   |  codec.Encode( seq | len | payload | CRC-16 )  |
//	| (uncoded)  |   1B    1B     F bytes      2B                 |
//	+------------+-----------------------------------------------+
//
// The sync word is sent uncoded so the receiver can locate frames
// before it can decode them; it is matched with a 1-bit tolerance, and
// false matches are rejected by the CRC. Every frame carries exactly F
// payload bytes on the wire (the last frame zero-padded, its true
// length in the len field), so frames have a constant wire size and the
// scanner can skip a whole frame after each accepted one.
package transport
