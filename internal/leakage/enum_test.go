package leakage

import (
	"math"
	"testing"

	"repro/internal/replacement"
)

func TestEnumerateMatchesTheory(t *testing.T) {
	cases := []struct {
		kind replacement.Kind
		ways []int
	}{
		{replacement.TrueLRU, []int{2, 3, 4, 8}},
		{replacement.TreePLRU, []int{2, 4, 8, 16}},
		{replacement.BitPLRU, []int{2, 4, 8, 16}},
		{replacement.FIFO, []int{2, 4, 8, 16}},
	}
	for _, c := range cases {
		for _, ways := range c.ways {
			sp := Enumerate(c.kind, ways, Options{})
			want, ok := TheoreticalStates(c.kind, ways)
			if !ok {
				t.Fatalf("%v: no analytic count", c.kind)
			}
			if !sp.Exhaustive {
				t.Errorf("%v/%d: BFS did not complete", c.kind, ways)
			}
			if got := float64(len(sp.States)); got != want {
				t.Errorf("%v/%d: %v reachable states, theory says %v", c.kind, ways, got, want)
			}
			if sp.Coverage != 1 {
				t.Errorf("%v/%d: exhaustive coverage %v, want 1", c.kind, ways, sp.Coverage)
			}
			if got, want := sp.Bound(), math.Log2(float64(len(sp.States))); got != want {
				t.Errorf("%v/%d: bound %v, want %v", c.kind, ways, got, want)
			}
		}
	}
}

func TestEnumerateStatesSortedAndQueryable(t *testing.T) {
	sp := Enumerate(replacement.TreePLRU, 8, Options{})
	for i := 1; i < len(sp.States); i++ {
		if sp.States[i-1] >= sp.States[i] {
			t.Fatalf("states not strictly ascending at %d", i)
		}
	}
	for _, s := range sp.States {
		if !sp.Contains(s) {
			t.Errorf("Contains(%#x) = false for an enumerated state", s)
		}
	}
	// Tree-PLRU/8 reaches all 128 node-bit combinations, so the first
	// word outside the packed range must be absent.
	if sp.Contains(1 << 7) {
		t.Error("Contains reports a state beyond the 7 node bits")
	}
}

func TestEnumerateOrderIndependence(t *testing.T) {
	for _, kind := range []replacement.Kind{replacement.TrueLRU, replacement.TreePLRU, replacement.BitPLRU, replacement.FIFO} {
		canon := Enumerate(kind, 8, Options{})
		for _, seed := range []uint64{1, 2, 77} {
			got := Enumerate(kind, 8, Options{OrderSeed: seed})
			if len(got.States) != len(canon.States) {
				t.Fatalf("%v OrderSeed=%d: %d states, canonical %d",
					kind, seed, len(got.States), len(canon.States))
			}
			for i := range got.States {
				if got.States[i] != canon.States[i] {
					t.Fatalf("%v OrderSeed=%d: state[%d] = %#x, canonical %#x",
						kind, seed, i, got.States[i], canon.States[i])
				}
			}
		}
	}
}

// TestEnumerateSampledFallback forces sampling with a tiny MaxStates on
// a space whose closure is known, and checks the accounting: a strict
// certified subset, the advertised coverage, and no states outside the
// true closure.
func TestEnumerateSampledFallback(t *testing.T) {
	full := Enumerate(replacement.TreePLRU, 8, Options{})
	sp := Enumerate(replacement.TreePLRU, 8, Options{MaxStates: 16, SampleSequences: 64, SampleLength: 32})
	if sp.Exhaustive {
		t.Fatal("MaxStates=16 still reported exhaustive")
	}
	if sp.SampledSequences != 64 {
		t.Errorf("SampledSequences = %d, want 64", sp.SampledSequences)
	}
	for _, s := range sp.States {
		if !full.Contains(s) {
			t.Errorf("sampled state %#x is outside the true closure", s)
		}
	}
	if want := float64(len(sp.States)) / 128; math.Abs(sp.Coverage-want) > 1e-12 {
		t.Errorf("coverage %v, want %v", sp.Coverage, want)
	}
}

// TestEnumerateSampledConverges grows the sampling budget and demands
// coverage climb to the exhaustive answer on Tree-PLRU at 4 and 8 ways.
func TestEnumerateSampledConverges(t *testing.T) {
	for _, ways := range []int{4, 8} {
		prev := 0
		for _, seqs := range []int{1, 8, 256} {
			sp := Enumerate(replacement.TreePLRU, ways, Options{MaxStates: 2, SampleSequences: seqs})
			if len(sp.States) < prev {
				t.Errorf("TreePLRU/%d: coverage fell from %d to %d states at %d sequences",
					ways, prev, len(sp.States), seqs)
			}
			prev = len(sp.States)
		}
		want, _ := TheoreticalStates(replacement.TreePLRU, ways)
		if float64(prev) != want {
			t.Errorf("TreePLRU/%d: sampling plateaued at %d of %v states", ways, prev, want)
		}
	}
}

func TestEnumerateLRU16Samples(t *testing.T) {
	if testing.Short() {
		t.Skip("quarter-million-state BFS prefix")
	}
	sp := Enumerate(replacement.TrueLRU, 16, Options{SampleSequences: 32})
	if sp.Exhaustive {
		t.Fatal("true LRU at 16 ways reported exhaustive (16! states)")
	}
	if sp.Coverage >= 1e-6 {
		t.Errorf("coverage %v, want a vanishing fraction of 16!", sp.Coverage)
	}
	if len(sp.States) == 0 {
		t.Error("sampling found no states")
	}
}

func TestEnumeratePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"random":  func() { Enumerate(replacement.Random, 4, Options{}) },
		"lru >16": func() { Enumerate(replacement.TrueLRU, 24, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTheoreticalStates(t *testing.T) {
	for _, c := range []struct {
		kind replacement.Kind
		ways int
		want float64
	}{
		{replacement.TrueLRU, 4, 24},
		{replacement.TrueLRU, 8, 40320},
		{replacement.TreePLRU, 8, 128},
		{replacement.BitPLRU, 8, 255},
		{replacement.FIFO, 8, 8},
	} {
		got, ok := TheoreticalStates(c.kind, c.ways)
		if !ok || got != c.want {
			t.Errorf("TheoreticalStates(%v, %d) = %v, %v; want %v", c.kind, c.ways, got, ok, c.want)
		}
	}
	if _, ok := TheoreticalStates(replacement.Random, 8); ok {
		t.Error("Random reported an analytic state count")
	}
}
