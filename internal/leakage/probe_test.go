package leakage

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/replacement"
)

// statePolicies are the families the leaderboard scores: every policy
// with replacement state (Random keeps none and is excluded by
// construction).
var statePolicies = []replacement.Kind{
	replacement.TrueLRU, replacement.TreePLRU, replacement.BitPLRU, replacement.FIFO,
}

// fastStrategy keeps property-test grids cheap without changing the
// probe's structure.
var fastStrategy = Strategy{TrialsPerSecret: 24}

// TestEvalWithinBounds pins the information-theoretic range on the
// full defense matrix: 0 <= Bits <= log2(Secrets), and Bits never
// exceeds the state-space ceiling log2(|reachable states|) — the
// secret influences the machine only through one set's replacement
// state, so no observation can carry more than the state can hold.
func TestEvalWithinBounds(t *testing.T) {
	for _, pol := range statePolicies {
		for _, ways := range []int{4, 8} {
			space := Enumerate(pol, ways, Options{})
			for _, d := range attack.Defenses() {
				res := Eval(Config{Policy: pol, Ways: ways, Defense: d, Strategy: fastStrategy, Seed: 3})
				if res.Bits < 0 || math.IsNaN(res.Bits) {
					t.Errorf("%v/%d/%v: bits %v < 0", pol, ways, d, res.Bits)
				}
				if max := math.Log2(float64(res.Secrets)); res.Bits > max {
					t.Errorf("%v/%d/%v: bits %v above secret bound %v", pol, ways, d, res.Bits, max)
				}
				if res.Bits > space.Bound() {
					t.Errorf("%v/%d/%v: bits %v above state-space bound %v",
						pol, ways, d, res.Bits, space.Bound())
				}
				if res.Trials != res.Secrets*fastStrategy.TrialsPerSecret {
					t.Errorf("%v/%d/%v: %d trials, want %d", pol, ways, d,
						res.Trials, res.Secrets*fastStrategy.TrialsPerSecret)
				}
			}
		}
	}
}

// TestEvalDefenseNeverGains: adding a deterministic defense never
// increases the leakage of the same probing strategy — those cells are
// exact, so the comparison is too. Random fill is excluded from the
// exact comparison (its estimate carries sampling error, and the
// Cañones–Köpf–Reineke incomparability result warns that randomized
// designs need not be comparable observation-for-observation); it is
// instead held to the undefended cell within the estimator's noise
// margin.
func TestEvalDefenseNeverGains(t *testing.T) {
	const noise = 0.15
	for _, pol := range statePolicies {
		for _, ways := range []int{4, 8} {
			base := Eval(Config{Policy: pol, Ways: ways, Defense: attack.DefenseNone, Strategy: fastStrategy, Seed: 3})
			for _, d := range []attack.Defense{attack.DefensePLCache, attack.DefensePLCacheFixed, attack.DefenseDAWG} {
				res := Eval(Config{Policy: pol, Ways: ways, Defense: d, Strategy: fastStrategy, Seed: 3})
				if res.Bits > base.Bits {
					t.Errorf("%v/%d: %v leaks %v bits, undefended leaks %v",
						pol, ways, d, res.Bits, base.Bits)
				}
			}
			rf := Eval(Config{Policy: pol, Ways: ways, Defense: attack.DefenseRandomFill, Strategy: fastStrategy, Seed: 3})
			if rf.Bits > base.Bits+noise {
				t.Errorf("%v/%d: randomfill %v bits clears undefended %v by more than the noise margin",
					pol, ways, rf.Bits, base.Bits)
			}
		}
	}
}

// TestEvalKnownCells pins the analytically-derivable cells: the
// deterministic defenses report Deterministic, the state-freezing
// designs leak nothing, FIFO leaks nothing anywhere deterministic
// (hits never update its state, so the secret does not touch the
// machine), and the original PL cache leaks through its locked-hit
// state updates while the fixed one does not.
func TestEvalKnownCells(t *testing.T) {
	for _, pol := range statePolicies {
		for _, d := range []attack.Defense{attack.DefenseNone, attack.DefensePLCache, attack.DefensePLCacheFixed, attack.DefenseDAWG} {
			res := Eval(Config{Policy: pol, Ways: 8, Defense: d, Strategy: fastStrategy, Seed: 3})
			if !res.Deterministic {
				t.Errorf("%v/%v: not deterministic", pol, d)
			}
			switch {
			case d == attack.DefensePLCacheFixed || d == attack.DefenseDAWG:
				if res.Bits != 0 {
					t.Errorf("%v/%v: %v bits from a state-isolating defense", pol, d, res.Bits)
				}
			case pol == replacement.FIFO:
				if res.Bits != 0 {
					t.Errorf("FIFO/%v: %v bits, but hits never update FIFO state", d, res.Bits)
				}
			}
		}
	}
	for _, pol := range []replacement.Kind{replacement.TrueLRU, replacement.TreePLRU, replacement.BitPLRU} {
		pl := Eval(Config{Policy: pol, Ways: 8, Defense: attack.DefensePLCache, Strategy: fastStrategy, Seed: 3})
		if pl.Bits <= 0 {
			t.Errorf("%v/plcache: no leak — the Figure 11 locked-hit update should be visible", pol)
		}
		none := Eval(Config{Policy: pol, Ways: 8, Defense: attack.DefenseNone, Strategy: fastStrategy, Seed: 3})
		if none.Bits <= pl.Bits {
			t.Errorf("%v: undefended %v bits not above plcache %v", pol, none.Bits, pl.Bits)
		}
	}
}

// TestEvalRandomFillWindowKnob checks the knob is live: the canonical
// window leaks, and a wider window (fewer in-set fills per kicker)
// leaks less on true LRU at 8 ways.
func TestEvalRandomFillWindowKnob(t *testing.T) {
	cfg := Config{Policy: replacement.TrueLRU, Ways: 8, Defense: attack.DefenseRandomFill, Seed: 3}
	cfg.FillWindow = 16
	mid := Eval(cfg)
	cfg.FillWindow = 256
	wide := Eval(cfg)
	if mid.Bits <= 0 {
		t.Fatal("random fill at the canonical window reads zero bits")
	}
	if wide.Bits >= mid.Bits {
		t.Errorf("window 256 leaks %v bits, window 16 %v — widening should starve the in-set fill",
			wide.Bits, mid.Bits)
	}
	if mid.Deterministic || wide.Deterministic {
		t.Error("random fill cells reported deterministic")
	}
}

// TestEvalDeterministicGivenSeed: identical configs must reproduce
// identical results, bit for bit — the leaderboard golden depends on
// it.
func TestEvalDeterministicGivenSeed(t *testing.T) {
	cfg := Config{Policy: replacement.TreePLRU, Ways: 8, Defense: attack.DefenseRandomFill, Strategy: fastStrategy, Seed: 9}
	a, b := Eval(cfg), Eval(cfg)
	if a != b {
		t.Errorf("two identical Evals diverged: %+v vs %+v", a, b)
	}
}

func TestEvalPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"victim lines = ways": func() {
			Eval(Config{Policy: replacement.TrueLRU, Ways: 4, Strategy: Strategy{VictimLines: 4}})
		},
		"observation overflow": func() {
			Eval(Config{Policy: replacement.TrueLRU, Ways: 8, Strategy: Strategy{Rounds: 12}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
