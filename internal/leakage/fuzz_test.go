package leakage

import (
	"testing"

	"repro/internal/replacement"
)

// FuzzStateEnumeration pins the two contracts the leakage bound rests
// on. Closure: no access sequence, however adversarial, drives a set
// into a packed state outside the enumerated reachable set — if it
// could, log2(|states|) would not be a ceiling. Order independence:
// BFS with a shuffled frontier and a shuffled alphabet returns the
// identical canonical state list, so the golden is a property of the
// policy, not of the traversal.
func FuzzStateEnumeration(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 4})
	f.Add([]byte{1, 1, 8, 8, 0, 0, 5, 2})
	f.Add([]byte{2, 2, 0xff, 0x01, 0x80, 0x7f})
	f.Add([]byte{3, 0, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, trace []byte) {
		if len(trace) < 2 {
			return
		}
		// Byte 0 picks the policy, byte 1 the associativity; the rest is
		// the access sequence, each byte one alphabet symbol.
		kinds := []replacement.Kind{
			replacement.TrueLRU, replacement.TreePLRU, replacement.BitPLRU, replacement.FIFO,
		}
		kind := kinds[int(trace[0])%len(kinds)]
		ways := 1 << (1 + int(trace[1])%3) // 2, 4, 8
		sp := Enumerate(kind, ways, Options{})
		if !sp.Exhaustive {
			t.Fatalf("%v/%d: not exhaustive at these sizes", kind, ways)
		}

		a := replacement.NewSetArray(kind, 1, ways, nil)
		if !sp.Contains(a.PackedState(0)) {
			t.Fatalf("%v/%d: power-on state %#x not enumerated", kind, ways, a.PackedState(0))
		}
		for step, b := range trace[2:] {
			sym := int(b) % (ways + 1)
			if sym == ways {
				sym = MissSymbol
			}
			Apply(a, sym)
			if s := a.PackedState(0); !sp.Contains(s) {
				t.Fatalf("%v/%d step %d (sym %d): state %#x escaped the enumerated set",
					kind, ways, step, sym, s)
			}
		}

		// Order independence: derive a traversal shuffle from the input.
		var seed uint64
		for _, b := range trace {
			seed = seed*131 + uint64(b) + 1
		}
		shuffled := Enumerate(kind, ways, Options{OrderSeed: seed})
		if len(shuffled.States) != len(sp.States) {
			t.Fatalf("%v/%d OrderSeed=%d: %d states, canonical %d",
				kind, ways, seed, len(shuffled.States), len(sp.States))
		}
		for i := range shuffled.States {
			if shuffled.States[i] != sp.States[i] {
				t.Fatalf("%v/%d OrderSeed=%d: state[%d] differs", kind, ways, seed, i)
			}
		}
	})
}
