package leakage

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/replacement"
	"repro/internal/rng"
)

// MissSymbol is the access-alphabet symbol for a miss-insert: the
// policy's current victim way is filled. Symbols 0..ways-1 are hits on
// that way. Apply maps a symbol onto a SetArray.
const MissSymbol = -1

// Apply drives one access-alphabet symbol into set 0 of a single-set
// SetArray: sym in [0, ways) touches that way (a hit), any other value
// is a miss-insert (Victim then Fill). This is the exact transition
// function the cache's hit and miss paths perform on replacement state,
// so closure under Apply is closure under any access sequence.
func Apply(a *replacement.SetArray, sym int) {
	if sym >= 0 && sym < a.Ways() {
		a.Touch(0, sym)
		return
	}
	a.Fill(0, a.Victim(0))
}

// Options tunes Enumerate. The zero value is the documented default.
type Options struct {
	// MaxStates caps the exhaustive search; when the reachable set
	// outgrows it, Enumerate falls back to seeded sampling. Default
	// 1 << 18 — far above every word-backed family at the paper's
	// associativities (Tree-PLRU/8 has 128 states, true LRU/8 has
	// 40320), far below true LRU at 16 ways (16! ≈ 2·10^13).
	MaxStates int
	// SampleSequences and SampleLength size the sampling fallback:
	// that many independent random access sequences of that many
	// symbols each, all states along the way recorded. Defaults 2048
	// and 256.
	SampleSequences, SampleLength int
	// SampleSeed seeds the sampling fallback's generator (default 1).
	SampleSeed uint64
	// OrderSeed, when nonzero, shuffles the BFS frontier and alphabet
	// order. The returned canonical state set must be identical for
	// every OrderSeed — the order-independence property the fuzz
	// target pins.
	OrderSeed uint64
}

func (o Options) withDefaults() Options {
	if o.MaxStates == 0 {
		o.MaxStates = 1 << 18
	}
	if o.SampleSequences == 0 {
		o.SampleSequences = 2048
	}
	if o.SampleLength == 0 {
		o.SampleLength = 256
	}
	if o.SampleSeed == 0 {
		o.SampleSeed = 1
	}
	return o
}

// StateSpace is the reachable replacement-state set of one cache set
// under the access alphabet, starting from power-on.
type StateSpace struct {
	Kind replacement.Kind
	Ways int

	// States holds the canonical packed states (replacement.SetArray
	// PackedState words), sorted ascending.
	States []uint64

	// Exhaustive reports a completed BFS: States is the full closure.
	// When false, States is the union of SampledSequences random
	// walks and Coverage estimates the fraction found.
	Exhaustive bool
	// Coverage is |States| / TheoreticalStates (1 for a completed
	// BFS; NaN when no analytic count is known for the family).
	Coverage float64
	// SampledSequences is the number of random access sequences the
	// sampling fallback drew (0 when exhaustive).
	SampledSequences int
}

// Contains reports whether the canonical packed state s is in the
// enumerated set.
func (sp *StateSpace) Contains(s uint64) bool {
	i := sort.Search(len(sp.States), func(i int) bool { return sp.States[i] >= s })
	return i < len(sp.States) && sp.States[i] == s
}

// Bound is the state-space leakage ceiling in bits: log2(|States|). No
// probing strategy can extract more than Bound bits from a single
// observation of the set's replacement state — for a sampled space this
// is a lower bound on the true ceiling.
func (sp *StateSpace) Bound() float64 {
	if len(sp.States) == 0 {
		return 0
	}
	return math.Log2(float64(len(sp.States)))
}

// TheoreticalStates returns the analytic reachable-state count for the
// family, when one is known: ways! for true LRU (every permutation is
// reachable by touches), 2^(ways-1) node-bit combinations for
// Tree-PLRU, 2^ways - 1 for Bit-PLRU (every mask except all-set, which
// the generation rollover clears), and ways round-robin positions for
// FIFO. ok is false for Random, which keeps no state. The count is a
// float64 because 16! does not fit the exact integer range callers
// would want to divide in.
func TheoreticalStates(kind replacement.Kind, ways int) (n float64, ok bool) {
	switch kind {
	case replacement.TrueLRU:
		n = 1
		for i := 2; i <= ways; i++ {
			n *= float64(i)
		}
		return n, true
	case replacement.TreePLRU:
		return math.Pow(2, float64(ways-1)), true
	case replacement.BitPLRU:
		return math.Pow(2, float64(ways)) - 1, true
	case replacement.FIFO:
		return float64(ways), true
	default:
		return 0, false
	}
}

// Enumerate computes the reachable state space of one set of the given
// policy family and associativity: BFS from the power-on state under
// the ways+1-symbol access alphabet, falling back to seeded sampling
// when the closure outgrows opt.MaxStates. It panics for Random (which
// keeps no replacement state) and for true LRU beyond 16 ways (whose
// state exceeds the canonical packed word).
func Enumerate(kind replacement.Kind, ways int, opt Options) StateSpace {
	opt = opt.withDefaults()
	a := replacement.NewSetArray(kind, 1, ways, nil)
	if !a.StatePackable() {
		panic(fmt.Sprintf("leakage: %v at %d ways has no packable state", kind, ways))
	}
	sp := StateSpace{Kind: kind, Ways: ways}

	reset := a.PackedState(0)
	visited := map[uint64]bool{reset: true}
	frontier := []uint64{reset}
	var order *rng.Rand
	if opt.OrderSeed != 0 {
		order = rng.New(opt.OrderSeed)
	}
	full := false
	for len(frontier) > 0 && !full {
		// Pop the next frontier state — from the front canonically, or
		// anywhere under OrderSeed: BFS closure is order-independent,
		// and the shuffled pop is how the property is exercised.
		i := 0
		if order != nil {
			i = order.Intn(len(frontier))
		}
		s := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		var perm []int
		if order != nil {
			perm = order.Perm(ways + 1)
		}
		for off := 0; off <= ways; off++ {
			sym := off
			if perm != nil {
				sym = perm[off]
			}
			if sym == ways {
				sym = MissSymbol
			}
			a.SetPackedState(0, s)
			Apply(a, sym)
			next := a.PackedState(0)
			if !visited[next] {
				if len(visited) >= opt.MaxStates {
					full = true
					break
				}
				visited[next] = true
				frontier = append(frontier, next)
			}
		}
	}

	theory, hasTheory := TheoreticalStates(kind, ways)
	if !full {
		sp.Exhaustive = true
		sp.Coverage = 1
		sp.States = sortedKeys(visited)
		return sp
	}

	// Sampling fallback: the closure is out of reach, so draw seeded
	// random access sequences from power-on and record every state on
	// the way. The result is a certified subset with explicit coverage
	// accounting — never presented as the closure.
	found := map[uint64]bool{reset: true}
	r := rng.New(opt.SampleSeed)
	for seq := 0; seq < opt.SampleSequences; seq++ {
		a.ResetSet(0)
		for step := 0; step < opt.SampleLength; step++ {
			sym := r.Intn(ways + 1)
			if sym == ways {
				sym = MissSymbol
			}
			Apply(a, sym)
			found[a.PackedState(0)] = true
		}
	}
	sp.Exhaustive = false
	sp.SampledSequences = opt.SampleSequences
	sp.States = sortedKeys(found)
	if hasTheory {
		sp.Coverage = float64(len(sp.States)) / theory
	} else {
		sp.Coverage = math.NaN()
	}
	return sp
}

func sortedKeys[V any](m map[uint64]V) []uint64 {
	out := make([]uint64, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
