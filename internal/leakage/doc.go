// Package leakage computes information-theoretic leakage scores for the
// replacement policies and secure-cache designs the rest of the repo
// attacks one experiment at a time — the Cañones–Köpf–Reineke program
// ("Security Analysis of Cache Replacement Policies", "On the
// Incomparability of Cache Algorithms in Terms of Timing Leakage")
// applied to this simulator.
//
// It has two halves:
//
//   - A reachable-state-space enumerator (Enumerate): breadth-first
//     search over replacement.SetArray packed states under the access
//     alphabet of one set — hit on way i, or miss-insert into the
//     policy's victim. The reachable count bounds any probing
//     adversary's per-observation leakage at log2(|states|). The search
//     is exhaustive for the word-backed families at common
//     associativities and falls back to seeded sampling with explicit
//     coverage accounting where the space is out of reach (true LRU
//     beyond 8 ways: 16! ≈ 2·10^13 permutations).
//
//   - A probing-strategy evaluator (Eval): the empirical mutual
//     information, in bits per observation, between a victim's
//     secret-dependent access and the observation a canonical
//     prime→pressure→probe attacker extracts from the SIMULATED cache —
//     the machines come from the same attack.Target constructors
//     (internal/secure designs included) that the template attack runs
//     against, so the analyzed machine is the attacked machine, not a
//     side model.
//
// The leaderboard the two halves feed (sweep.go LeakageSweep, cmd
// lrutables -leakage) ranks policy × associativity × defense by bits
// per observation and is cross-checked against the empirical detection
// ROC AUCs pinned in testdata/roc.golden.
package leakage
