package leakage

import (
	"fmt"
	"math"

	"repro/internal/attack"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/uarch"
)

// Line-tag bases for the evaluator's three traffic classes. Lines are
// tag*L1Sets + 0, so every class shares set 0 and the tags keep the
// classes disjoint (mirroring internal/attack's tag discipline).
const (
	victimTagBase = 1
	probeTagBase  = 1 << 16
	kickerTagBase = 1 << 20
)

// Strategy is the repeated-kicker eviction probe: after establishing a
// known replacement state over victim and attacker ways, the victim
// performs (or skips) one secret-dependent touch; the attacker then
// runs Rounds of pressure-and-probe. Each round hammers
// KickersPerRound fresh kicker lines, KickerRepeats accesses each (on
// a deterministic target the first access evicts the policy's victim
// — or is bypassed while the victim is locked — and the rest hit; on
// random fill each access is an independent chance to force an in-set
// fill), then probes every established line. The observation
// concatenates, per round, each kicker's saturating miss count (extra
// misses are bypassed accesses, the original PL cache's Figure 11
// tell) and the probe hit bitmask.
type Strategy struct {
	// VictimLines is the number of victim table lines V (secret space
	// is V+1: touch line s, or stay idle). Default ways/2 — full-way
	// victims leave a PL cache with nothing to bypass and the
	// unprotected cache with no attacker residency to displace.
	VictimLines int
	// KickerRepeats is the accesses per kicker line (default 96). On a
	// deterministic target the kicker is resident after at most
	// VictimLines+2 accesses and the rest hit without touching anything
	// new; the long hammer is for random fill, where every repeat is an
	// independent 1/(2*window+1) chance of the in-set fill that makes
	// the round informative.
	KickerRepeats int
	// KickersPerRound is the number of fresh kicker lines hammered per
	// round (default 2: the second eviction drains replacement state
	// the first one re-normalizes, e.g. Tree-PLRU's off-path node
	// bits).
	KickersPerRound int
	// Rounds is the number of pressure-and-probe rounds (default 3).
	Rounds int
	// TrialsPerSecret is the observation sample size per secret value
	// (default 32). Deterministic cells need only enough to certify
	// determinism; stochastic cells trade trials for estimate variance.
	TrialsPerSecret int
}

// missCountBits is the per-kicker field width in the packed
// observation; counts saturate at its maximum. Deterministic targets
// miss at most VictimLines+1 times (every bypass walks one locked way,
// then the fill), so saturation only compresses random fill's
// mostly-uncached hammering, which carries no secret.
const missCountBits = 3

func (s Strategy) withDefaults(ways int) Strategy {
	if s.VictimLines == 0 {
		s.VictimLines = ways / 2
	}
	if s.KickerRepeats == 0 {
		s.KickerRepeats = 96
	}
	if s.KickersPerRound == 0 {
		s.KickersPerRound = 2
	}
	if s.Rounds == 0 {
		s.Rounds = 4
	}
	if s.TrialsPerSecret == 0 {
		s.TrialsPerSecret = 64
	}
	return s
}

// Config names one leakage cell: policy × associativity × defense,
// plus the probing strategy and seed.
type Config struct {
	// Policy is the L1 replacement policy under analysis.
	Policy replacement.Kind
	// Ways overrides the profile's L1 associativity when nonzero.
	Ways int
	// Defense selects the cache design (attack.DefenseNone for the
	// unprotected baseline).
	Defense attack.Defense
	// FillWindow is the random-fill window knob, forwarded to
	// attack.NewTargetCfg (0 = canonical; other defenses ignore it).
	FillWindow uint64
	// Profile supplies the cache geometry (default Sandy Bridge).
	Profile uarch.Profile
	// Strategy tunes the probe (zero value = documented defaults).
	Strategy Strategy
	// Seed drives trial seeding (default 1).
	Seed uint64
}

// Result is one cell's empirical leakage.
type Result struct {
	// Bits is the estimated mutual information between the secret and
	// one observation, in bits per observation, clamped to
	// [0, log2(Secrets)].
	Bits float64
	// Secrets is the secret-space size (VictimLines + 1).
	Secrets int
	// DistinctObs is the number of distinct observations seen.
	DistinctObs int
	// Deterministic reports that every secret produced a single
	// repeated observation, so Bits is exact rather than estimated.
	Deterministic bool
	// Trials is the total observation count across all secrets.
	Trials int
}

// Eval measures the probing-strategy leakage of one cell. The target
// is built by the same attack.NewTargetCfg constructors the template
// attack runs against, so the analyzed machine is the simulated
// machine. Panics when the observation would not fit one uint64
// ((V + attacker lines) * Rounds > 64).
func Eval(cfg Config) Result {
	prof := cfg.Profile
	if prof.Name == "" {
		prof = uarch.SandyBridge()
	}
	if cfg.Ways != 0 {
		prof.L1Ways = cfg.Ways
	}
	ways := prof.L1Ways
	st := cfg.Strategy.withDefaults(ways)
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if st.VictimLines <= 0 || st.VictimLines >= ways {
		panic(fmt.Sprintf("leakage: VictimLines %d out of range for %d ways", st.VictimLines, ways))
	}

	tcfg := attack.TargetConfig{
		Defense: cfg.Defense, Profile: prof, Policy: cfg.Policy,
		FillWindow: cfg.FillWindow,
	}
	attackerWays := attack.NewTargetCfg(tcfg).AttackerWays()
	v := st.VictimLines
	a := ways - v
	if a > attackerWays {
		a = attackerWays
	}
	if need := (st.KickersPerRound*missCountBits + v) * st.Rounds; need > 64 {
		panic(fmt.Sprintf("leakage: observation needs %d bits, one word holds 64", need))
	}

	sets := uint64(prof.L1Sets)
	vlines := make([]uint64, v)
	for i := range vlines {
		vlines[i] = uint64(victimTagBase+i) * sets
	}
	alines := make([]uint64, a)
	for i := range alines {
		alines[i] = uint64(probeTagBase+i) * sets
	}

	window := cfg.FillWindow
	if window == 0 {
		window = attack.RandomFillWindow
	}
	// Priming attempts per attacker line: two suffice on a
	// deterministic target (miss-fill, then the confirming hit); random
	// fill caches a missed line only when the fill neighbourhood draw
	// lands on the line itself, at 1/(2*window+1) per access.
	primeCap := 2
	if cfg.Defense == attack.DefenseRandomFill {
		primeCap = 4 * (2*int(window) + 1)
	}

	secrets := v + 1
	master := rng.New(seed)
	counts := make([]map[uint64]int, secrets)
	for s := range counts {
		counts[s] = make(map[uint64]int)
	}
	for s := 0; s < secrets; s++ {
		for trial := 0; trial < st.TrialsPerSecret; trial++ {
			tcfg.Seed = master.Uint64()
			obs := runTrial(tcfg, st, s, vlines, alines, sets, primeCap)
			counts[s][obs]++
		}
	}
	return score(counts, secrets, st, v, master)
}

// projections returns the canonical observation compressions the
// estimator scores: the identity, the probe bitmasks alone, the final
// round's probe bitmask, and the kicker miss counts alone. Every
// compression is a deterministic function of the observation, so by
// the data-processing inequality each one's mutual information with
// the secret lower-bounds I(S;O); the estimator reports the best
// surviving bound. On a noisy defense a low-cardinality projection
// (the accumulated eviction set, say) is estimable from far fewer
// trials than the full word.
func projections(st Strategy, v int) []func(uint64) uint64 {
	kbits := st.KickersPerRound * missCountBits
	stride := kbits + v
	vmask := uint64(1)<<uint(v) - 1
	kmask := uint64(1)<<uint(kbits) - 1
	return []func(uint64) uint64{
		func(o uint64) uint64 { return o },
		func(o uint64) uint64 {
			var out uint64
			for r := 0; r < st.Rounds; r++ {
				out |= (o >> uint(r*stride+kbits) & vmask) << uint(r*v)
			}
			return out
		},
		func(o uint64) uint64 {
			return o >> uint((st.Rounds-1)*stride+kbits) & vmask
		},
		func(o uint64) uint64 {
			var out uint64
			for r := 0; r < st.Rounds; r++ {
				out |= (o >> uint(r*stride) & kmask) << uint(r*kbits)
			}
			return out
		},
	}
}

// runTrial runs one establishment → secret → pressure/probe session
// and returns the packed observation.
func runTrial(tcfg attack.TargetConfig, st Strategy, secret int, vlines, alines []uint64, sets uint64, primeCap int) uint64 {
	tg := attack.NewTargetCfg(tcfg)

	// Establishment: victim table resident (and locked, under PL),
	// attacker lines resident, then one victim pass and one attacker
	// pass so the recency order — and with it the first eviction victim
	// — is a known function of the policy alone.
	tg.WarmVictim(vlines)
	for _, ln := range alines {
		for try := 0; try < primeCap; try++ {
			if tg.Access(ln, attack.ReqAttacker) {
				break
			}
		}
	}
	for _, ln := range vlines {
		tg.Access(ln, attack.ReqVictim)
	}
	for _, ln := range alines {
		tg.Access(ln, attack.ReqAttacker)
	}

	// The secret: one victim hit on table line `secret`, or idle.
	if secret < len(vlines) {
		tg.Access(vlines[secret], attack.ReqVictim)
	}

	var obs uint64
	bit := 0
	for round := 0; round < st.Rounds; round++ {
		for k := 0; k < st.KickersPerRound; k++ {
			kicker := uint64(kickerTagBase+round*st.KickersPerRound+k) * sets
			misses := 0
			for m := 0; m < st.KickerRepeats; m++ {
				if !tg.Access(kicker, attack.ReqAttacker) {
					misses++
				}
			}
			if misses > 1<<missCountBits-1 {
				misses = 1<<missCountBits - 1
			}
			obs |= uint64(misses) << uint(bit)
			bit += missCountBits
		}
		// Probe: the victim-line hit pattern is the recorded half of the
		// observation (evictions land there by construction); attacker
		// lines are re-probed for establishment pressure but their bits
		// are noise under a randomized defense, so they are not recorded.
		for _, ln := range vlines {
			if tg.Access(ln, attack.ReqAttacker) {
				obs |= 1 << uint(bit)
			}
			bit++
		}
		for _, ln := range alines {
			tg.Access(ln, attack.ReqAttacker)
		}
	}
	return obs
}

// nullShuffles is how many label permutations the surrogate bias
// estimate averages over for stochastic cells.
const nullShuffles = 4

// score turns per-secret observation histograms into the mutual
// information I(S;O) under a uniform secret prior. When every secret's
// observation is constant the plug-in estimate on the full word is
// exact, and no compression can beat it. Otherwise each canonical
// projection is scored as plug-in estimate minus a shuffled-label
// surrogate — the same estimator run with secret labels randomly
// permuted, whose true MI is zero, so whatever it reads is pure
// small-sample bias — and the best projection wins. This keeps
// high-cardinality stochastic cells honest: if every trial's full
// observation is unique, its plug-in reads the full log2(secrets) but
// so does its surrogate, the pair cancels, and only projections with
// estimable distributions contribute.
func score(counts []map[uint64]int, secrets int, st Strategy, v int, r *rng.Rand) Result {
	trials := st.TrialsPerSecret
	res := Result{Secrets: secrets, Trials: secrets * trials, Deterministic: true}

	for _, c := range counts {
		if len(c) > 1 {
			res.Deterministic = false
		}
	}

	marginal := make(map[uint64]int)
	for _, c := range counts {
		for o, n := range c {
			marginal[o] += n
		}
	}
	res.DistinctObs = len(marginal)

	var bits float64
	if res.Deterministic {
		bits = pluginMI(counts, trials)
	} else {
		pool := make([]uint64, 0, res.Trials)
		proj := make([]map[uint64]int, secrets)
		shuffled := make([]map[uint64]int, secrets)
		for _, p := range projections(st, v) {
			pool = pool[:0]
			for s, c := range counts {
				pc := make(map[uint64]int, len(c))
				for o, n := range c {
					pc[p(o)] += n
				}
				proj[s] = pc
				// Pool in sorted order so the shuffled surrogates do not
				// depend on map iteration order.
				for _, po := range sortedKeys(pc) {
					for i := 0; i < pc[po]; i++ {
						pool = append(pool, po)
					}
				}
			}
			est := pluginMI(proj, trials)
			null := 0.0
			for shot := 0; shot < nullShuffles; shot++ {
				r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
				for s := range shuffled {
					c := make(map[uint64]int, trials)
					for _, o := range pool[s*trials : (s+1)*trials] {
						c[o]++
					}
					shuffled[s] = c
				}
				null += pluginMI(shuffled, trials)
			}
			if est -= null / nullShuffles; est > bits {
				bits = est
			}
		}
	}

	if bound := math.Log2(float64(secrets)); bits > bound {
		bits = bound
	}
	if bits < 0 {
		bits = 0
	}
	res.Bits = bits
	return res
}

// pluginMI is the maximum-likelihood mutual-information estimate
// H(O) - H(O|S) in bits for per-secret histograms of equal sample
// size. Accumulation runs in sorted-key order so the float result is
// identical run to run (map iteration order is not).
func pluginMI(counts []map[uint64]int, trials int) float64 {
	perSecret := float64(trials)
	total := perSecret * float64(len(counts))

	marginal := make(map[uint64]int)
	condH := 0.0
	for _, c := range counts {
		for _, o := range sortedKeys(c) {
			n := c[o]
			marginal[o] += n
			p := float64(n) / perSecret
			condH -= p * math.Log2(p)
		}
	}
	condH /= float64(len(counts))

	outH := 0.0
	for _, o := range sortedKeys(marginal) {
		p := float64(marginal[o]) / total
		outH -= p * math.Log2(p)
	}
	return outH - condH
}
