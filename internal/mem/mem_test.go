package mem

import (
	"testing"
	"testing/quick"
)

func TestNewSystemValidation(t *testing.T) {
	for _, bad := range []int{0, -64, 48, 8192} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("line size %d: no panic", bad)
				}
			}()
			NewSystem(bad)
		}()
	}
	if s := NewSystem(64); s.LineSize() != 64 {
		t.Error("LineSize mismatch")
	}
}

func TestAllocDistinctPhysicalPages(t *testing.T) {
	s := NewSystem(64)
	as := s.NewAddressSpace()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		v := as.Alloc(1)
		pa := as.MustTranslate(v)
		pp := pa / PageSize
		if seen[pp] {
			t.Fatalf("physical page %d allocated twice", pp)
		}
		seen[pp] = true
	}
}

func TestTranslateUnmapped(t *testing.T) {
	s := NewSystem(64)
	as := s.NewAddressSpace()
	if _, ok := as.Translate(0xdead000); ok {
		t.Fatal("unmapped address translated")
	}
}

func TestMustTranslatePanics(t *testing.T) {
	s := NewSystem(64)
	as := s.NewAddressSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	as.MustTranslate(0x12345000)
}

func TestPageOffsetPreserved(t *testing.T) {
	s := NewSystem(64)
	as := s.NewAddressSpace()
	base := as.Alloc(1)
	for _, off := range []uint64{0, 1, 63, 64, 4095} {
		pa := as.MustTranslate(base + off)
		if pa%PageSize != off {
			t.Errorf("offset %d became %d", off, pa%PageSize)
		}
	}
}

func TestAddressSpacesDisjointVirtual(t *testing.T) {
	s := NewSystem(64)
	a, b := s.NewAddressSpace(), s.NewAddressSpace()
	va, vb := a.Alloc(4), b.Alloc(4)
	if va == vb {
		t.Fatal("two address spaces returned the same virtual base")
	}
	if a.PID() == b.PID() {
		t.Fatal("duplicate PIDs")
	}
}

func TestPrivatePagesNotShared(t *testing.T) {
	s := NewSystem(64)
	a, b := s.NewAddressSpace(), s.NewAddressSpace()
	pa := a.MustTranslate(a.Alloc(1))
	pb := b.MustTranslate(b.Alloc(1))
	if pa/PageSize == pb/PageSize {
		t.Fatal("private allocations share a physical page")
	}
}

func TestSharedSegmentAliases(t *testing.T) {
	s := NewSystem(64)
	a, b := s.NewAddressSpace(), s.NewAddressSpace()
	seg := s.NewSegment(2)
	if seg.Pages() != 2 {
		t.Fatalf("segment pages = %d", seg.Pages())
	}
	va, vb := a.MapShared(seg), b.MapShared(seg)
	if va == vb {
		t.Error("expected different virtual addresses across spaces")
	}
	for off := uint64(0); off < 2*PageSize; off += 512 {
		if a.MustTranslate(va+off) != b.MustTranslate(vb+off) {
			t.Fatalf("offset %d: shared segment translates differently", off)
		}
	}
}

func TestResolveLineNumbers(t *testing.T) {
	s := NewSystem(64)
	as := s.NewAddressSpace()
	base := as.Alloc(1)
	addr := as.Resolve(base + 130)
	if addr.VirtLine != (base+130)/64 {
		t.Errorf("VirtLine = %d", addr.VirtLine)
	}
	if addr.PhysLine != addr.Phys/64 {
		t.Errorf("PhysLine = %d, Phys = %d", addr.PhysLine, addr.Phys)
	}
	if addr.Phys%PageSize != 130 {
		t.Errorf("physical offset = %d", addr.Phys%PageSize)
	}
}

func TestSetIndexBits(t *testing.T) {
	s := NewSystem(64)
	// bits 6..11 select among 64 sets.
	if got := s.SetIndexBits(0, 64); got != 0 {
		t.Errorf("set of 0 = %d", got)
	}
	if got := s.SetIndexBits(64, 64); got != 1 {
		t.Errorf("set of 64 = %d", got)
	}
	if got := s.SetIndexBits(4096+5*64, 64); got != 5 {
		t.Errorf("set of page+5*64 = %d", got)
	}
}

func TestLinesForSetAllInSet(t *testing.T) {
	s := NewSystem(64)
	as := s.NewAddressSpace()
	const set = 17
	lines := as.LinesForSet(64, set, 9)
	if len(lines) != 9 {
		t.Fatalf("got %d lines", len(lines))
	}
	physSeen := map[uint64]bool{}
	for _, v := range lines {
		a := as.Resolve(v)
		if s.SetIndexBits(a.Virt, 64) != set {
			t.Errorf("virtual %#x maps to set %d", a.Virt, s.SetIndexBits(a.Virt, 64))
		}
		if s.SetIndexBits(a.Phys, 64) != set {
			t.Errorf("physical %#x maps to set %d", a.Phys, s.SetIndexBits(a.Phys, 64))
		}
		if physSeen[a.PhysLine] {
			t.Errorf("duplicate physical line %d", a.PhysLine)
		}
		physSeen[a.PhysLine] = true
	}
}

func TestLinesForSetValidatesSet(t *testing.T) {
	s := NewSystem(64)
	as := s.NewAddressSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range set")
		}
	}()
	as.LinesForSet(64, 64, 1)
}

func TestLinesForSetVIPTGuard(t *testing.T) {
	s := NewSystem(64)
	as := s.NewAddressSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when set bits exceed page offset")
		}
	}()
	// 128 sets * 64 B = 8 KiB > 4 KiB page: aliasing assumption broken.
	as.LinesForSet(128, 0, 1)
}

func TestSharedLinesForSetAlias(t *testing.T) {
	s := NewSystem(64)
	a, b := s.NewAddressSpace(), s.NewAddressSpace()
	const set = 9
	aa, bb := SharedLinesForSet(s, a, b, 64, set, 9)
	if len(aa) != 9 || len(bb) != 9 {
		t.Fatalf("lengths %d, %d", len(aa), len(bb))
	}
	for i := range aa {
		ra, rb := a.Resolve(aa[i]), b.Resolve(bb[i])
		if ra.PhysLine != rb.PhysLine {
			t.Fatalf("pair %d: physical lines differ (%d vs %d)", i, ra.PhysLine, rb.PhysLine)
		}
		if ra.VirtLine == rb.VirtLine {
			t.Errorf("pair %d: virtual lines identical; spaces should differ", i)
		}
		if s.SetIndexBits(ra.Phys, 64) != set {
			t.Errorf("pair %d in set %d", i, s.SetIndexBits(ra.Phys, 64))
		}
	}
	// Distinct pairs must be distinct physical lines.
	if a.Resolve(aa[0]).PhysLine == a.Resolve(aa[1]).PhysLine {
		t.Error("pair 0 and 1 share a physical line")
	}
}

func TestQuickTranslationConsistent(t *testing.T) {
	s := NewSystem(64)
	as := s.NewAddressSpace()
	base := as.Alloc(8)
	f := func(off uint32) bool {
		o := uint64(off) % (8 * PageSize)
		pa1 := as.MustTranslate(base + o)
		pa2 := as.MustTranslate(base + o)
		if pa1 != pa2 {
			return false
		}
		// Same page offset.
		return pa1%PageSize == (base+o)%PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickVIPTSetAgreement(t *testing.T) {
	// For 64 sets x 64 B lines, the virtual and physical set index agree
	// for every mapped address: the VIPT property of Section IV-B.
	s := NewSystem(64)
	as := s.NewAddressSpace()
	base := as.Alloc(16)
	f := func(off uint32) bool {
		o := uint64(off) % (16 * PageSize)
		v := base + o
		p := as.MustTranslate(v)
		return s.SetIndexBits(v, 64) == s.SetIndexBits(p, 64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
