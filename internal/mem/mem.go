// Package mem models the virtual-memory substrate the attacks need:
// per-process address spaces with 4 KiB pages, a simple physical page
// allocator, and shared segments (the shared-library pages of Algorithm 1).
//
// Two properties of real systems carry the attacks and are reproduced here:
//
//   - Algorithm 1 requires the sender and receiver to reach the *same
//     physical line* through their own (generally different) virtual
//     addresses — modelled by mapping a shared Segment into both spaces.
//
//   - Algorithm 2 requires only *same-set aliasing*: for a VIPT L1 with
//     64 sets × 64 B lines, address bits 6–11 select the set and lie inside
//     the page offset, so the low 12 bits of virtual and physical addresses
//     agree and a process can target any set purely with virtual addresses.
package mem

import "fmt"

// PageSize is the (only) page size of the model, matching the paper's
// VIPT argument: set index bits fall inside the page offset.
const PageSize = 4096

// System owns physical memory. Physical pages are never reclaimed: the
// simulations are short and the address space is 64-bit.
type System struct {
	lineSize     int
	nextPhysPage uint64
	nextPID      int
}

// NewSystem creates a memory system for the given cache line size (which
// must be a power of two dividing the page size).
func NewSystem(lineSize int) *System {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 || PageSize%lineSize != 0 {
		panic(fmt.Sprintf("mem: bad line size %d", lineSize))
	}
	// Start physical pages at 1 so that physical line 0 is never handed
	// out; several tests use "line 0 exists" as a sentinel.
	return &System{lineSize: lineSize, nextPhysPage: 1}
}

// LineSize returns the line size the system was built with.
func (s *System) LineSize() int { return s.lineSize }

func (s *System) allocPhysPage() uint64 {
	p := s.nextPhysPage
	s.nextPhysPage++
	return p
}

// Segment is a run of physical pages that can be mapped into multiple
// address spaces — the model of a shared library's read-only data pages.
type Segment struct {
	physPages []uint64
}

// NewSegment allocates npages fresh physical pages as a shareable segment.
func (s *System) NewSegment(npages int) *Segment {
	if npages <= 0 {
		panic("mem: segment needs at least one page")
	}
	seg := &Segment{physPages: make([]uint64, npages)}
	for i := range seg.physPages {
		seg.physPages[i] = s.allocPhysPage()
	}
	return seg
}

// Pages returns the number of pages in the segment.
func (seg *Segment) Pages() int { return len(seg.physPages) }

// AddressSpace is one process's page table.
type AddressSpace struct {
	sys       *System
	pid       int
	pages     map[uint64]uint64 // virtual page -> physical page
	nextVPage uint64
}

// NewAddressSpace creates an empty address space. Each space gets virtual
// pages from a distinct high region so that two processes never accidentally
// share virtual addresses (making cross-space aliasing bugs loud).
func (s *System) NewAddressSpace() *AddressSpace {
	pid := s.nextPID
	s.nextPID++
	return &AddressSpace{
		sys:       s,
		pid:       pid,
		pages:     make(map[uint64]uint64),
		nextVPage: uint64(pid+1) << 24, // disjoint 64 GiB-aligned regions
	}
}

// PID returns the process id of the space.
func (as *AddressSpace) PID() int { return as.pid }

// Alloc maps npages fresh private physical pages and returns the virtual
// base address of the run.
func (as *AddressSpace) Alloc(npages int) uint64 {
	if npages <= 0 {
		panic("mem: Alloc needs at least one page")
	}
	base := as.nextVPage
	for i := 0; i < npages; i++ {
		as.pages[as.nextVPage] = as.sys.allocPhysPage()
		as.nextVPage++
	}
	return base * PageSize
}

// MapShared maps seg into the space and returns the virtual base address.
// The same segment mapped into two spaces yields different virtual
// addresses backed by identical physical pages.
func (as *AddressSpace) MapShared(seg *Segment) uint64 {
	base := as.nextVPage
	for _, pp := range seg.physPages {
		as.pages[as.nextVPage] = pp
		as.nextVPage++
	}
	return base * PageSize
}

// Translate maps a virtual address to its physical address. The boolean is
// false for unmapped addresses.
func (as *AddressSpace) Translate(vaddr uint64) (uint64, bool) {
	pp, ok := as.pages[vaddr/PageSize]
	if !ok {
		return 0, false
	}
	return pp*PageSize + vaddr%PageSize, true
}

// MustTranslate is Translate for addresses the caller knows are mapped.
func (as *AddressSpace) MustTranslate(vaddr uint64) uint64 {
	pa, ok := as.Translate(vaddr)
	if !ok {
		panic(fmt.Sprintf("mem: unmapped virtual address %#x in pid %d", vaddr, as.pid))
	}
	return pa
}

// Addr is a resolved access target: the pair of line numbers the cache
// hierarchy consumes.
type Addr struct {
	Virt     uint64 // virtual byte address
	Phys     uint64 // physical byte address
	VirtLine uint64 // Virt / lineSize
	PhysLine uint64 // Phys / lineSize
}

// Resolve translates vaddr and packages the line numbers.
func (as *AddressSpace) Resolve(vaddr uint64) Addr {
	pa := as.MustTranslate(vaddr)
	ls := uint64(as.sys.lineSize)
	return Addr{Virt: vaddr, Phys: pa, VirtLine: vaddr / ls, PhysLine: pa / ls}
}

// SetIndexBits returns the L1 set index implied by an address for a VIPT
// cache with the given number of sets: bits log2(lineSize) .. log2(lineSize
// * sets)-1. Because lineSize*sets == PageSize for the paper's L1, virtual
// and physical addresses give the same answer.
func (s *System) SetIndexBits(addr uint64, sets int) int {
	return int(addr / uint64(s.lineSize) % uint64(sets))
}

// LinesForSet allocates private pages and returns count virtual addresses
// in as, every one mapping to the given L1 set, each on its own page (so
// each is a distinct cache line with a distinct physical tag). This builds
// the receiver's "line 0 .. line N" working set of Algorithms 1 and 2.
func (as *AddressSpace) LinesForSet(sets, set, count int) []uint64 {
	if set < 0 || set >= sets {
		panic(fmt.Sprintf("mem: set %d out of range [0,%d)", set, sets))
	}
	lineSize := as.sys.lineSize
	if lineSize*sets > PageSize {
		panic("mem: set index bits exceed page offset; VIPT aliasing assumption broken")
	}
	out := make([]uint64, count)
	for i := range out {
		base := as.Alloc(1)
		out[i] = base + uint64(set*lineSize)
	}
	return out
}

// SharedLinesForSet maps a fresh shared segment into both spaces and
// returns, for each space, count virtual addresses mapping to the given L1
// set and backed by the *same* physical lines in both — the shared-library
// lines of Algorithm 1. The i-th address in each slice refers to the same
// physical line.
func SharedLinesForSet(s *System, a, b *AddressSpace, sets, set, count int) (aAddrs, bAddrs []uint64) {
	if s.lineSize*sets > PageSize {
		panic("mem: set index bits exceed page offset; VIPT aliasing assumption broken")
	}
	aAddrs = make([]uint64, count)
	bAddrs = make([]uint64, count)
	for i := 0; i < count; i++ {
		seg := s.NewSegment(1)
		off := uint64(set * s.lineSize)
		aAddrs[i] = a.MapShared(seg) + off
		bAddrs[i] = b.MapShared(seg) + off
	}
	return aAddrs, bAddrs
}
