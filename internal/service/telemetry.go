package service

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
)

// telemetry is the server's runtime instrumentation: job lifecycle
// counters and gauges, dedup cache accounting, HTTP request counts and
// latency, plus the engine pool's cell-level hooks — all on one
// Registry, the body of GET /metrics. Methods are nil-receiver safe so
// an uninstrumented server (tests constructing Server by hand) pays
// only nil checks.
type telemetry struct {
	reg    *metrics.Registry
	engine *engine.Telemetry

	jobs        *metrics.CounterVec // service_jobs_total{state}: state ENTRIES
	dedupHits   *metrics.Counter
	dedupMisses *metrics.Counter
	queued      *metrics.Gauge
	running     *metrics.Gauge
	httpReqs    *metrics.CounterVec   // service_http_requests_total{route,code}
	httpLat     *metrics.HistogramVec // service_http_request_seconds{route}

	// Durable result store accounting (all zero when no store is
	// configured): hits are submissions answered from a prior process
	// lifetime's persisted report, with zero engine cells executed.
	storeHits       *metrics.Counter
	storeMisses     *metrics.Counter
	storePersists   *metrics.Counter
	storePutRetries *metrics.Counter
	storePutFails   *metrics.Counter
	storeDegraded   *metrics.Gauge
}

func newTelemetry() *telemetry {
	reg := metrics.NewRegistry()
	return &telemetry{
		reg:    reg,
		engine: engine.NewTelemetry(reg),
		jobs: reg.CounterVec("service_jobs_total",
			"job lifecycle state entries (queued, running, done, failed, canceled)", "state"),
		dedupHits: reg.Counter("service_dedup_hits_total",
			"submissions joined onto an existing job with the same content key"),
		dedupMisses: reg.Counter("service_dedup_misses_total",
			"submissions that created a fresh job"),
		queued: reg.Gauge("service_jobs_queued",
			"jobs accepted and waiting for a runner"),
		running: reg.Gauge("service_jobs_running",
			"jobs currently executing on the engine pool"),
		httpReqs: reg.CounterVec("service_http_requests_total",
			"HTTP requests by route pattern and status code", "route", "code"),
		httpLat: reg.HistogramVec("service_http_request_seconds",
			"HTTP request latency by route pattern", nil, "route"),
		storeHits: reg.Counter("service_store_hits_total",
			"submissions served from the durable result store without executing a single engine cell"),
		storeMisses: reg.Counter("service_store_misses_total",
			"submissions whose content key had no usable persisted report"),
		storePersists: reg.Counter("service_store_persists_total",
			"completed reports durably written to the result store"),
		storePutRetries: reg.Counter("service_store_put_retries_total",
			"persist attempts retried after a transient store failure"),
		storePutFails: reg.Counter("service_store_put_failures_total",
			"store Put attempts that returned an error"),
		storeDegraded: reg.Gauge("service_store_degraded",
			"1 when persistent store failure flipped the server to memory-only mode"),
	}
}

// jobQueued accounts a fresh job entering the queue.
func (t *telemetry) jobQueued() {
	if t == nil {
		return
	}
	t.jobs.With(string(StatusQueued)).Inc()
	t.queued.Inc()
}

// jobRunning accounts the queued → running transition.
func (t *telemetry) jobRunning() {
	if t == nil {
		return
	}
	t.jobs.With(string(StatusRunning)).Inc()
	t.queued.Dec()
	t.running.Inc()
}

// jobFinished accounts a terminal transition from the given prior
// state (a job canceled while queued never ran).
func (t *telemetry) jobFinished(from, to Status) {
	if t == nil {
		return
	}
	t.jobs.With(string(to)).Inc()
	switch from {
	case StatusQueued:
		t.queued.Dec()
	case StatusRunning:
		t.running.Dec()
	}
}

// jobRestored accounts a job born done from a persisted report: it
// counts as a done job (the CI scrape's liveness signal) and a store
// hit, but never moves the queue/running gauges — it was never queued.
func (t *telemetry) jobRestored() {
	if t == nil {
		return
	}
	t.jobs.With(string(StatusDone)).Inc()
	t.storeHits.Inc()
}

func (t *telemetry) storeMiss() {
	if t == nil {
		return
	}
	t.storeMisses.Inc()
}

func (t *telemetry) storePersist() {
	if t == nil {
		return
	}
	t.storePersists.Inc()
}

func (t *telemetry) storePutFailure(retrying bool) {
	if t == nil {
		return
	}
	t.storePutFails.Inc()
	if retrying {
		t.storePutRetries.Inc()
	}
}

func (t *telemetry) storeDegrade() {
	if t == nil {
		return
	}
	t.storeDegraded.Set(1)
}

func (t *telemetry) dedup(hit bool) {
	if t == nil {
		return
	}
	if hit {
		t.dedupHits.Inc()
	} else {
		t.dedupMisses.Inc()
	}
}

// statusWriter captures the response code for the request counter. It
// forwards Flush so the NDJSON event stream keeps streaming through
// the instrumentation layer.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the route mux with request counting and latency
// observation, labeled by the mux's matched route pattern (so /v1/jobs/
// {id} variants aggregate under one label, not one series per job ID).
func (t *telemetry) instrument(mux *http.ServeMux) http.Handler {
	if t == nil {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		t.httpLat.With(route).Observe(time.Since(start).Seconds())
		t.httpReqs.With(route, strconv.Itoa(sw.code)).Inc()
	})
}
