package service

// The /metrics surface, end to end: a real job through the HTTP API
// leaves the telemetry the scrape asserts on — job lifecycle counters,
// dedup accounting, HTTP latency series, and the engine pool's
// per-cell wall-time histogram. This is the in-process twin of the CI
// curl smoke.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

const tinySpec = `{"kind":"attack","seed":3,"attack":{"victims":["ttable"],"policies":["treeplru"],"defenses":["none"],"symbols":2,"votes":1,"profilingRounds":1,"trials":4}}`

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// series extracts the value of one exposition line by exact series
// match (name plus label clause), failing if absent.
func series(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("series %q not in scrape:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %q value %q: %v", name, m[1], err)
	}
	return v
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{EngineWorkers: 2})

	// Run one real job, plus a dedup resubmission of the same spec.
	body, code := postJob(t, ts, tinySpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if report, code := fetchReport(t, ts, body.ID); code != http.StatusOK {
		t.Fatalf("report: HTTP %d: %s", code, report)
	}
	if _, code := postJob(t, ts, tinySpec); code != http.StatusOK {
		t.Fatalf("dedup resubmit: HTTP %d, want 200", code)
	}

	out := scrape(t, ts.URL)

	if got := series(t, out, `service_jobs_total{state="done"}`); got != 1 {
		t.Errorf(`service_jobs_total{state="done"} = %v, want 1`, got)
	}
	if got := series(t, out, `service_jobs_total{state="queued"}`); got != 1 {
		t.Errorf(`service_jobs_total{state="queued"} = %v, want 1`, got)
	}
	if series(t, out, "service_dedup_hits_total") != 1 || series(t, out, "service_dedup_misses_total") != 1 {
		t.Error("dedup accounting off (want 1 hit, 1 miss)")
	}
	if series(t, out, "service_jobs_queued") != 0 || series(t, out, "service_jobs_running") != 0 {
		t.Error("load gauges did not drain to zero")
	}
	// The 4-cell grid landed in the engine histogram.
	if got := series(t, out, "engine_cell_wall_seconds_count"); got != 4 {
		t.Errorf("engine_cell_wall_seconds_count = %v, want 4", got)
	}
	if got := series(t, out, "engine_cells_completed_total"); got != 4 {
		t.Errorf("engine_cells_completed_total = %v, want 4", got)
	}
	// HTTP instrumentation: the submit route was hit twice (202 + 200),
	// and latency series exist labeled by route pattern, not job ID.
	if got := series(t, out, `service_http_requests_total{route="POST /v1/jobs",code="202"}`); got != 1 {
		t.Errorf("submit 202 count = %v, want 1", got)
	}
	if got := series(t, out, `service_http_requests_total{route="POST /v1/jobs",code="200"}`); got != 1 {
		t.Errorf("submit dedup 200 count = %v, want 1", got)
	}
	if got := series(t, out, `service_http_request_seconds_count{route="GET /v1/jobs/{id}/report"}`); got != 1 {
		t.Errorf("report latency count = %v, want 1", got)
	}

	// The registry doubles as an expression-layer Source.
	mean, err := metrics.Default().EvalExpr(
		"engine_cell_wall_seconds.sum / engine_cell_wall_seconds.count", s.Registry())
	if err != nil || mean < 0 {
		t.Fatalf("mean cell wall via expression layer: %v, %v", mean, err)
	}
}

// The NDJSON event stream carries elapsed_ns alongside the rounded
// wallMs, and it survives the instrumentation wrapper's statusWriter.
func TestEventsCarryElapsedNs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := postJob(t, ts, tinySpec)
	if report, code := fetchReport(t, ts, body.ID); code != http.StatusOK {
		t.Fatalf("report: HTTP %d: %s", code, report)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, body.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var fields map[string]any
		if err := json.Unmarshal([]byte(line), &fields); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		ns, ok := fields["elapsed_ns"].(float64)
		if !ok || ns <= 0 {
			t.Fatalf("event %d: elapsed_ns = %v, want positive integer", i, fields["elapsed_ns"])
		}
	}
}
