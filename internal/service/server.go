package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/store"
)

// Config sizes the server.
type Config struct {
	// EngineWorkers is the persistent engine pool size shared by every
	// job's cells; <= 0 selects engine.DefaultWorkers().
	EngineWorkers int
	// Runners is how many jobs may execute concurrently (their cells
	// all land on the one shared pool); <= 0 selects the pool size.
	Runners int
	// QueueDepth bounds the backlog of accepted-but-not-started jobs;
	// <= 0 selects 4096. A full queue rejects submissions with 503.
	QueueDepth int

	// Store, if set, is the durable result store: completed job
	// reports persist under their content key after render, and a
	// submission whose key is already persisted is answered as a job
	// born done — dedup across process lifetimes, zero engine cells.
	// The server owns the store once handed over and closes it in
	// Close. Nil runs memory-only.
	Store store.Store
	// MaxJobWall caps (and, for specs that set no deadline_ms,
	// defaults) every job's wall-clock budget; 0 = unlimited.
	MaxJobWall time.Duration
	// StorePutRetries is how many backoff retries a failed persist
	// gets before the server degrades to memory-only mode; <= 0
	// selects 3.
	StorePutRetries int
	// StoreRetryBase is the first persist-retry delay, doubling per
	// attempt and capped at 2s; <= 0 selects 50ms. Tests shrink it.
	StoreRetryBase time.Duration
	// Logf, if set, receives operational notices (store degradation,
	// persist retries). The daemon passes its logger; nil is silent.
	Logf func(format string, args ...any)
}

// Server is the leakage-analysis job server: a job store, a runner
// pool draining the queue, and the persistent engine pool the runners
// shard their cells onto. It implements http.Handler.
type Server struct {
	cfg  Config
	pool *engine.Pool
	tel  *telemetry

	mu       sync.Mutex
	jobs     map[string]*Job // by ID
	byKey    map[string]*Job // latest attempt per content key
	attempts map[string]int  // submissions that created a job, per key
	order    []string        // IDs in creation order

	// storeDown flips once, when persist retries are exhausted: the
	// degradation ladder's memory-only rung. Writes stop (reads are
	// still attempted — a full disk usually keeps serving reads) and
	// healthz + /metrics surface the reason. Sticky until restart.
	storeDown   bool
	storeReason string

	queue  chan *Job
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once

	mux     *http.ServeMux
	handler http.Handler // mux wrapped in HTTP instrumentation

	// exec runs a compiled spec; replaced by tests to inject failures.
	exec func(*compiledSpec, lruleak.RunOptions) string
}

// New starts a server: the engine pool and the job runners come up
// immediately and live until Close.
func New(cfg Config) *Server {
	if cfg.EngineWorkers <= 0 {
		cfg.EngineWorkers = engine.DefaultWorkers()
	}
	if cfg.Runners <= 0 {
		cfg.Runners = cfg.EngineWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	tel := newTelemetry()
	s := &Server{
		cfg:      cfg,
		pool:     engine.NewPoolWithTelemetry(cfg.EngineWorkers, tel.engine),
		tel:      tel,
		jobs:     map[string]*Job{},
		byKey:    map[string]*Job{},
		attempts: map[string]int{},
		queue:    make(chan *Job, cfg.QueueDepth),
		exec:     (*compiledSpec).run,
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", tel.reg)
	s.handler = tel.instrument(s.mux)
	s.wg.Add(cfg.Runners)
	for i := 0; i < cfg.Runners; i++ {
		go s.runner()
	}
	return s
}

// Workers reports the engine pool size (for logging and benches).
func (s *Server) Workers() int { return s.pool.Workers() }

// Close cancels every queued and running job, waits for the runners to
// drain, and releases the engine pool and the durable store. Running
// grids stop at their next cell boundary; completed cells keep their
// results but the jobs finish canceled. Reports persisted before the
// Close stay persisted — that is the point of the store.
func (s *Server) Close() {
	s.once.Do(func() {
		s.cancel()
		s.wg.Wait()
		s.mu.Lock()
		for _, j := range s.jobs {
			j.finish(StatusCanceled, "", "server shutdown")
		}
		s.mu.Unlock()
		s.pool.Close()
		if s.cfg.Store != nil {
			s.cfg.Store.Close()
		}
	})
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Registry exposes the server's telemetry registry: the body of GET
// /metrics, and the hook point for additional process-level series
// (cmd/lruleakd mirrors it onto the debug listener).
func (s *Server) Registry() *metrics.Registry { return s.tel.reg }

// --- job lifecycle ---

// Submit validates a spec and answers it from the cheapest source
// that has it: an in-process job with the same content key (dedup
// join), the durable store (a previous process lifetime computed it —
// the job comes back born done, zero engine cells), or a fresh queued
// job. The bool reports a dedup/store hit. It is the programmatic
// core of POST /v1/jobs.
func (s *Server) Submit(spec Spec) (*Job, bool, error) {
	compiled, fieldErrs := compile(spec)
	if len(fieldErrs) > 0 {
		return nil, false, &ValidationError{Fields: fieldErrs}
	}
	key := compiled.key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.byKey[key]; ok {
		// Queued, running and done attempts are joinable: the job IS
		// the cache entry. Failed, canceled and deadline-expired
		// attempts are not — a resubmission retries with a fresh job
		// under the same key (and may still hit the store below, e.g.
		// a report persisted before an attempt that was canceled).
		if st := prev.Status(); !st.retryable() {
			s.tel.dedup(true)
			return prev, true, nil
		}
	}
	if j, ok := s.restoreLocked(key, spec); ok {
		return j, true, nil
	}
	s.attempts[key]++
	id := s.jobIDLocked(key)
	j := newJob(id, key, spec)
	j.compiled = compiled
	j.tel = s.tel
	select {
	case s.queue <- j:
	default:
		s.attempts[key]--
		return nil, false, ErrQueueFull
	}
	s.tel.dedup(false)
	s.tel.jobQueued()
	s.jobs[id] = j
	s.byKey[key] = j
	s.order = append(s.order, id)
	return j, false, nil
}

// jobIDLocked allocates the next job ID for key: the key prefix, plus
// a retry suffix when earlier attempts exist. Caller holds s.mu and
// has already incremented s.attempts[key].
func (s *Server) jobIDLocked(key string) string {
	id := "j-" + key[:16]
	if n := s.attempts[key]; n > 1 {
		id = fmt.Sprintf("%s-r%d", id, n)
	}
	return id
}

// restoreLocked consults the durable store for a persisted report
// under key and, on a verified hit, registers a job born done serving
// it. Store read errors (including a quarantined-corrupt entry) are
// misses: the job recomputes, and determinism guarantees the rewrite
// is byte-identical. Caller holds s.mu.
func (s *Server) restoreLocked(key string, spec Spec) (*Job, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	payload, err := s.cfg.Store.Get(key)
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			s.logf("store: get %s: %v (recomputing)", key[:16], err)
		}
		s.tel.storeMiss()
		return nil, false
	}
	s.attempts[key]++
	id := s.jobIDLocked(key)
	j := newRestoredJob(id, key, spec, string(payload))
	j.tel = s.tel
	s.tel.jobRestored()
	s.jobs[id] = j
	s.byKey[key] = j
	s.order = append(s.order, id)
	return j, true
}

// logf forwards to Config.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// JobByID looks a job up.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) runner() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job on the shared pool. Four exits: done with a
// rendered (and, when a store is configured, persisted) report,
// deadline_exceeded (the job's wall-clock budget ran out), canceled
// (job context or server shutdown), or failed — a panicking cell is
// recovered by the engine, re-raised after the grid drains, and
// caught here, so it takes down exactly one job, never the process or
// a sibling job's work.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.ctx)
	if d := s.jobDeadline(j); d > 0 {
		cancel()
		ctx, cancel = context.WithTimeout(s.ctx, d)
	}
	defer cancel()
	if !j.markRunning(cancel) {
		return // canceled while queued
	}
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("%v", r)
			if pe, ok := r.(*engine.PanicError); ok {
				msg = fmt.Sprintf("cell %q panicked: %v", pe.Job, pe.Value)
			}
			j.finish(StatusFailed, "", msg)
		}
	}()
	report := s.exec(j.compiled, lruleak.RunOptions{
		Pool:     s.pool,
		Context:  ctx,
		Progress: j.recordEvent,
	})
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			j.finish(StatusDeadline, "", fmt.Sprintf("deadline of %v exceeded", s.jobDeadline(j)))
		} else {
			j.finish(StatusCanceled, "", err.Error())
		}
		return
	}
	// Persist BEFORE marking done: once a client sees status done, the
	// report is already durable (or the server has degraded) — the
	// guarantee the crash-restart CI smoke leans on.
	s.persist(j.Key, report)
	j.finish(StatusDone, report, "")
}

// jobDeadline resolves a job's effective wall-clock budget: the spec's
// deadline_ms, capped by (or defaulting to) the server's MaxJobWall.
func (s *Server) jobDeadline(j *Job) time.Duration {
	d := j.compiled.deadline
	if max := s.cfg.MaxJobWall; max > 0 && (d == 0 || d > max) {
		d = max
	}
	return d
}

// persist durably stores a finished report under its content key,
// retrying transient failures with capped exponential backoff. When
// the retries are exhausted the server flips to memory-only mode:
// jobs keep succeeding from memory, the degradation is logged,
// counted in /metrics, and surfaced in healthz. Never called once
// degraded — Put storms on a dead disk would only slow every job.
func (s *Server) persist(key, report string) {
	if s.cfg.Store == nil || s.degradedStore() != "" {
		return
	}
	retries := s.cfg.StorePutRetries
	if retries <= 0 {
		retries = 3
	}
	delay := s.cfg.StoreRetryBase
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = s.cfg.Store.Put(key, []byte(report)); err == nil {
			s.tel.storePersist()
			return
		}
		if attempt >= retries {
			s.tel.storePutFailure(false)
			break
		}
		s.tel.storePutFailure(true)
		s.logf("store: put %s failed (attempt %d/%d), retrying in %v: %v",
			key[:16], attempt+1, retries+1, delay, err)
		select {
		case <-time.After(delay):
		case <-s.ctx.Done():
			return // shutting down; not a disk verdict
		}
		if delay *= 2; delay > 2*time.Second {
			delay = 2 * time.Second
		}
	}
	s.mu.Lock()
	if !s.storeDown {
		s.storeDown = true
		s.storeReason = err.Error()
		s.tel.storeDegrade()
		s.logf("store: degrading to memory-only mode after %d failed attempts: %v", retries+1, err)
	}
	s.mu.Unlock()
}

// degradedStore returns the degradation reason, or "" while healthy.
func (s *Server) degradedStore() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.storeDown {
		return ""
	}
	return s.storeReason
}

// ErrQueueFull rejects submissions when the backlog is at QueueDepth.
var ErrQueueFull = fmt.Errorf("service: job queue is full")

// ValidationError carries the field-level findings of a rejected spec.
type ValidationError struct {
	Fields []FieldError
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("service: invalid spec (%d field errors)", len(e.Fields))
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error  string       `json:"error"`
	Fields []FieldError `json:"fields,omitempty"`
}

type submitBody struct {
	JobView
	Dedup bool `json:"dedup"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	j, dedup, err := s.Submit(spec)
	switch err := err.(type) {
	case nil:
	case *ValidationError:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid spec", Fields: err.Fields})
		return
	default:
		// A full queue is a transient condition: tell well-behaved
		// clients when to come back instead of letting them hammer.
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if dedup {
		code = http.StatusOK
	}
	writeJSON(w, code, submitBody{JobView: j.View(), Dedup: dedup})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].View())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{views})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.View())
	}
}

// handleReport serves the rendered report. With ?wait=1 it blocks
// until the job is terminal (or the client goes away), which gives
// clients submit-then-fetch semantics without polling.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			return
		}
	}
	switch st := j.Status(); st {
	case StatusDone:
		report, _ := j.Report()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report)
	case StatusFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: j.Err()})
	case StatusCanceled:
		writeJSON(w, http.StatusGone, errorBody{Error: "job canceled: " + j.Err()})
	case StatusDeadline:
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "job " + j.Err()})
	default:
		writeJSON(w, http.StatusConflict, j.View())
	}
}

// handleHealthz is the liveness probe. The first line is always "ok" —
// a degraded store never makes the server unhealthy, it makes it
// memory-only — and the degradation, when present, is a second line a
// human or a probe regex can pick up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	if reason := s.degradedStore(); reason != "" {
		fmt.Fprintf(w, "store: degraded (memory-only): %s\n", reason)
	}
}

// handleEvents streams the job's per-cell progress as NDJSON. The
// snapshot so far is always written; with ?wait=1 the response keeps
// following new events until the job is terminal.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	emit := func() {
		for _, ev := range j.Events()[next:] {
			enc.Encode(ev)
			next++
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit()
	if r.URL.Query().Get("wait") != "1" {
		return
	}
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-j.Done():
			emit()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			emit()
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.View())
}
