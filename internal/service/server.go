package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// Config sizes the server.
type Config struct {
	// EngineWorkers is the persistent engine pool size shared by every
	// job's cells; <= 0 selects engine.DefaultWorkers().
	EngineWorkers int
	// Runners is how many jobs may execute concurrently (their cells
	// all land on the one shared pool); <= 0 selects the pool size.
	Runners int
	// QueueDepth bounds the backlog of accepted-but-not-started jobs;
	// <= 0 selects 4096. A full queue rejects submissions with 503.
	QueueDepth int
}

// Server is the leakage-analysis job server: a job store, a runner
// pool draining the queue, and the persistent engine pool the runners
// shard their cells onto. It implements http.Handler.
type Server struct {
	cfg  Config
	pool *engine.Pool
	tel  *telemetry

	mu       sync.Mutex
	jobs     map[string]*Job // by ID
	byKey    map[string]*Job // latest attempt per content key
	attempts map[string]int  // submissions that created a job, per key
	order    []string        // IDs in creation order

	queue  chan *Job
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once

	mux     *http.ServeMux
	handler http.Handler // mux wrapped in HTTP instrumentation

	// exec runs a compiled spec; replaced by tests to inject failures.
	exec func(*compiledSpec, lruleak.RunOptions) string
}

// New starts a server: the engine pool and the job runners come up
// immediately and live until Close.
func New(cfg Config) *Server {
	if cfg.EngineWorkers <= 0 {
		cfg.EngineWorkers = engine.DefaultWorkers()
	}
	if cfg.Runners <= 0 {
		cfg.Runners = cfg.EngineWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	tel := newTelemetry()
	s := &Server{
		cfg:      cfg,
		pool:     engine.NewPoolWithTelemetry(cfg.EngineWorkers, tel.engine),
		tel:      tel,
		jobs:     map[string]*Job{},
		byKey:    map[string]*Job{},
		attempts: map[string]int{},
		queue:    make(chan *Job, cfg.QueueDepth),
		exec:     (*compiledSpec).run,
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.Handle("GET /metrics", tel.reg)
	s.handler = tel.instrument(s.mux)
	s.wg.Add(cfg.Runners)
	for i := 0; i < cfg.Runners; i++ {
		go s.runner()
	}
	return s
}

// Workers reports the engine pool size (for logging and benches).
func (s *Server) Workers() int { return s.pool.Workers() }

// Close cancels every queued and running job, waits for the runners to
// drain, and releases the engine pool. Running grids stop at their
// next cell boundary; completed cells keep their results but the jobs
// finish canceled.
func (s *Server) Close() {
	s.once.Do(func() {
		s.cancel()
		s.wg.Wait()
		s.mu.Lock()
		for _, j := range s.jobs {
			j.finish(StatusCanceled, "", "server shutdown")
		}
		s.mu.Unlock()
		s.pool.Close()
	})
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Registry exposes the server's telemetry registry: the body of GET
// /metrics, and the hook point for additional process-level series
// (cmd/lruleakd mirrors it onto the debug listener).
func (s *Server) Registry() *metrics.Registry { return s.tel.reg }

// --- job lifecycle ---

// Submit validates a spec and either joins it onto an existing job
// with the same content key (dedup) or queues a fresh one. The bool
// reports a dedup hit. It is the programmatic core of POST /v1/jobs.
func (s *Server) Submit(spec Spec) (*Job, bool, error) {
	compiled, fieldErrs := compile(spec)
	if len(fieldErrs) > 0 {
		return nil, false, &ValidationError{Fields: fieldErrs}
	}
	key := compiled.key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.byKey[key]; ok {
		// Queued, running and done attempts are joinable: the job IS
		// the cache entry. Failed and canceled attempts are not — a
		// resubmission retries with a fresh job under the same key.
		if st := prev.Status(); st != StatusFailed && st != StatusCanceled {
			s.tel.dedup(true)
			return prev, true, nil
		}
	}
	s.attempts[key]++
	id := "j-" + key[:16]
	if n := s.attempts[key]; n > 1 {
		id = fmt.Sprintf("%s-r%d", id, n)
	}
	j := newJob(id, key, spec)
	j.compiled = compiled
	j.tel = s.tel
	select {
	case s.queue <- j:
	default:
		s.attempts[key]--
		return nil, false, ErrQueueFull
	}
	s.tel.dedup(false)
	s.tel.jobQueued()
	s.jobs[id] = j
	s.byKey[key] = j
	s.order = append(s.order, id)
	return j, false, nil
}

// JobByID looks a job up.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) runner() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job on the shared pool. Three exits: done with a
// rendered report, canceled (job context or server shutdown), or
// failed — a panicking cell is recovered by the engine, re-raised
// after the grid drains, and caught here, so it takes down exactly one
// job, never the process or a sibling job's work.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if !j.markRunning(cancel) {
		return // canceled while queued
	}
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("%v", r)
			if pe, ok := r.(*engine.PanicError); ok {
				msg = fmt.Sprintf("cell %q panicked: %v", pe.Job, pe.Value)
			}
			j.finish(StatusFailed, "", msg)
		}
	}()
	report := s.exec(j.compiled, lruleak.RunOptions{
		Pool:     s.pool,
		Context:  ctx,
		Progress: j.recordEvent,
	})
	if ctx.Err() != nil {
		j.finish(StatusCanceled, "", ctx.Err().Error())
		return
	}
	j.finish(StatusDone, report, "")
}

// ErrQueueFull rejects submissions when the backlog is at QueueDepth.
var ErrQueueFull = fmt.Errorf("service: job queue is full")

// ValidationError carries the field-level findings of a rejected spec.
type ValidationError struct {
	Fields []FieldError
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("service: invalid spec (%d field errors)", len(e.Fields))
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error  string       `json:"error"`
	Fields []FieldError `json:"fields,omitempty"`
}

type submitBody struct {
	JobView
	Dedup bool `json:"dedup"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	j, dedup, err := s.Submit(spec)
	switch err := err.(type) {
	case nil:
	case *ValidationError:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid spec", Fields: err.Fields})
		return
	default:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if dedup {
		code = http.StatusOK
	}
	writeJSON(w, code, submitBody{JobView: j.View(), Dedup: dedup})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].View())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{views})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.View())
	}
}

// handleReport serves the rendered report. With ?wait=1 it blocks
// until the job is terminal (or the client goes away), which gives
// clients submit-then-fetch semantics without polling.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			return
		}
	}
	switch st := j.Status(); st {
	case StatusDone:
		report, _ := j.Report()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report)
	case StatusFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: j.Err()})
	case StatusCanceled:
		writeJSON(w, http.StatusGone, errorBody{Error: "job canceled: " + j.Err()})
	default:
		writeJSON(w, http.StatusConflict, j.View())
	}
}

// handleEvents streams the job's per-cell progress as NDJSON. The
// snapshot so far is always written; with ?wait=1 the response keeps
// following new events until the job is terminal.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	emit := func() {
		for _, ev := range j.Events()[next:] {
			enc.Encode(ev)
			next++
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit()
	if r.URL.Query().Get("wait") != "1" {
		return
	}
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-j.Done():
			emit()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			emit()
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.View())
}
