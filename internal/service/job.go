package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/engine"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"   // a cell panicked or execution errored
	StatusCanceled Status = "canceled" // client cancel or server shutdown
	// StatusDeadline marks a job whose wall-clock budget (the spec's
	// deadline_ms, capped by the server's -max-job-wall) expired before
	// the grid finished. Distinct from canceled so clients and
	// telemetry can tell "you asked us to stop" from "it ran too long".
	StatusDeadline Status = "deadline_exceeded"
)

// terminal reports whether no further transition can happen.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled || s == StatusDeadline
}

// retryable reports whether a resubmission under the same content key
// should start a fresh attempt instead of joining this job: only done
// jobs are cache entries; failed, canceled and expired attempts are
// not results.
func (s Status) retryable() bool {
	return s == StatusFailed || s == StatusCanceled || s == StatusDeadline
}

// ProgressEvent is one serialized engine.Event: cell Index of the
// job's current engine grid finished as the Done'th of Total after
// WallMs host milliseconds. A job may run several grids back to back
// (the ROC sweep's positive and negative phases), so Done/Total are
// per-grid; Seq numbers the events job-wide.
type ProgressEvent struct {
	Seq    int     `json:"seq"`
	Index  int     `json:"index"`
	Done   int     `json:"done"`
	Total  int     `json:"total"`
	Name   string  `json:"name"`
	WallMs float64 `json:"wallMs"`
	// ElapsedNs is the cell's exact host wall time in nanoseconds
	// (WallMs is the same quantity rounded for human eyes).
	ElapsedNs int64 `json:"elapsed_ns"`
}

// Job is one submitted experiment: the unit of deduplication, caching,
// cancellation and failure isolation. All fields behind mu; the
// exported accessors snapshot under the lock.
type Job struct {
	ID   string // "j-" + first 16 hex digits of Key, plus a retry suffix
	Key  string // content address of (normalized spec, seed)
	Spec Spec   // as submitted

	// compiled is the validated, resolved grid (set once at submit).
	compiled *compiledSpec
	// tel, when set by the owning server, accounts lifecycle
	// transitions; nil for jobs constructed outside a server.
	tel *telemetry

	mu        sync.Mutex
	status    Status
	restored  bool   // report loaded from the durable store, not computed
	report    string // rendered result; the cache payload
	errMsg    string // failure detail (panic value, execution error)
	events    []ProgressEvent
	cellsDone int
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // set while running
	done      chan struct{}      // closed on any terminal transition
}

func newJob(id, key string, spec Spec) *Job {
	return &Job{
		ID: id, Key: key, Spec: spec,
		status:    StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

// newRestoredJob builds a job that is born terminal: its report was
// loaded from the durable result store (a previous process lifetime
// computed it) rather than executed. It never visits the queue, so no
// queue/running gauges move for it.
func newRestoredJob(id, key string, spec Spec, report string) *Job {
	j := newJob(id, key, spec)
	j.status = StatusDone
	j.restored = true
	j.report = report
	j.finished = time.Now()
	close(j.done)
	return j
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Report returns the rendered report and whether it is available
// (only StatusDone jobs have one).
func (j *Job) Report() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.status == StatusDone
}

// Err returns the failure detail of a failed job.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Events snapshots the progress events recorded so far.
func (j *Job) Events() []ProgressEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]ProgressEvent, len(j.events))
	copy(out, j.events)
	return out
}

// recordEvent appends one engine progress event. It is the job's
// engine.Options.Progress callback; the engine serializes calls.
func (j *Job) recordEvent(ev engine.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cellsDone++
	j.events = append(j.events, ProgressEvent{
		Seq: len(j.events), Index: ev.Index, Done: ev.Done, Total: ev.Total,
		Name: ev.Name, WallMs: float64(ev.Wall.Microseconds()) / 1000,
		ElapsedNs: ev.Wall.Nanoseconds(),
	})
}

// transitions; each returns false if the job was already terminal
// (e.g. canceled while the runner was finishing it), in which case the
// caller's result is discarded.

func (j *Job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	j.tel.jobRunning()
	return true
}

func (j *Job) finish(st Status, report, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return false
	}
	j.tel.jobFinished(j.status, st)
	j.status = st
	j.report = report
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
	return true
}

// requestCancel moves a queued job straight to canceled, or signals a
// running job's context so its grid stops at the next cell boundary
// (the runner then finishes it as canceled). Terminal jobs are left
// alone. Reports whether anything changed.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.status == StatusQueued {
		j.tel.jobFinished(StatusQueued, StatusCanceled)
		j.status = StatusCanceled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		return true
	}
	if j.status == StatusRunning && j.cancel != nil {
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return true
	}
	j.mu.Unlock()
	return false
}

// JobView is the JSON status representation of a job.
type JobView struct {
	ID        string  `json:"id"`
	Key       string  `json:"key"`
	Kind      string  `json:"kind"`
	Seed      uint64  `json:"seed"`
	Status    Status  `json:"status"`
	Restored  bool    `json:"restored,omitempty"` // served from the durable store
	CellsDone int     `json:"cellsDone"`
	Error     string  `json:"error,omitempty"`
	WallMs    float64 `json:"wallMs,omitempty"`
}

// View snapshots the job for the status endpoints.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, Key: j.Key, Kind: j.Spec.Kind, Seed: j.Spec.Seed,
		Status: j.status, Restored: j.restored, CellsDone: j.cellsDone, Error: j.errMsg,
	}
	if !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		v.WallMs = float64(end.Sub(j.started).Microseconds()) / 1000
	}
	return v
}
