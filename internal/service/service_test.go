package service

// The service's test suite leans on the repo's central invariant:
// engine determinism makes a server-side run byte-identical to the CLI
// run that produced the goldens under ../../testdata, so those files
// are the service's conformance suite. The concurrency tests (dedup,
// cancel mid-grid, panic isolation, queue overflow) all run under
// -race in CI.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// goldenSeed matches determinism_test.go at the repo root: every
// pinned golden was rendered at seed 7.
const goldenSeed = 7

func readGolden(t *testing.T, name string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", name+".golden"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	return string(raw)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postJob submits raw spec JSON and decodes the submit response.
func postJob(t *testing.T, ts *httptest.Server, spec string) (submitBody, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var body submitBody
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return body, resp.StatusCode
}

// fetchReport blocks on ?wait=1 and returns the report body and code.
func fetchReport(t *testing.T, ts *httptest.Server, id string) (string, int) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/report?wait=1", ts.URL, id))
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	return string(raw), resp.StatusCode
}

// --- conformance: server-rendered reports == CLI goldens ---

// One spec per golden, written the way a client would write it. The
// pinned CLI goldens were produced by the same sweeps at Workers: 1;
// determinism makes the pooled server run byte-identical.
var conformanceCases = []struct {
	name, golden, spec string
}{
	{
		name:   "attack",
		golden: "attacksweep",
		spec:   `{"kind":"attack","seed":7,"attack":{"victims":["ttable"],"policies":["treeplru"],"symbols":6}}`,
	},
	{
		name:   "stream",
		golden: "streamsweep",
		spec:   `{"kind":"stream","seed":7,"stream":{"codecs":["none","hamming74"],"laneCounts":[4],"noiseThreads":[0,3],"payloadBytes":48}}`,
	},
	{
		name:   "roc",
		golden: "roc",
		spec:   `{"kind":"roc","seed":7}`,
	},
}

func TestServerReportsMatchCLIGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweeps are not -short")
	}
	_, ts := newTestServer(t, Config{})
	for _, tc := range conformanceCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			body, code := postJob(t, ts, tc.spec)
			if code != http.StatusAccepted {
				t.Fatalf("submit: HTTP %d", code)
			}
			report, code := fetchReport(t, ts, body.ID)
			if code != http.StatusOK {
				t.Fatalf("report: HTTP %d: %s", code, report)
			}
			if want := readGolden(t, tc.golden); report != want {
				t.Errorf("server report diverges from %s.golden:\n--- got ---\n%s--- want ---\n%s",
					tc.golden, report, want)
			}
		})
	}
}

// Progress must have streamed: after a grid completes, the events
// endpoint replays one NDJSON line per cell.
func TestEventsStreamPerCell(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := postJob(t, ts, `{"kind":"attack","seed":3,"attack":{"victims":["ttable"],"policies":["treeplru"],"defenses":["none"],"symbols":2,"votes":1,"profilingRounds":1,"trials":4}}`)
	if report, code := fetchReport(t, ts, body.ID); code != http.StatusOK {
		t.Fatalf("report: HTTP %d: %s", code, report)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, body.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 { // 1 victim × 1 policy × 1 defense × 4 trials
		t.Fatalf("got %d event lines, want 4:\n%s", len(lines), raw)
	}
	for i, line := range lines {
		var ev ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event %d is not JSON: %v", i, err)
		}
		if ev.Seq != i || ev.Total != 4 {
			t.Errorf("event %d: seq=%d total=%d", i, ev.Seq, ev.Total)
		}
	}
}

// --- validation: 400 + field-level messages, never a panic ---

func TestValidationRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, spec, wantField string
	}{
		{"unknown kind", `{"kind":"nope","seed":1}`, "kind"},
		{"unknown victim", `{"kind":"attack","seed":1,"attack":{"victims":["caesar"]}}`, "attack.victims[0]"},
		{"unknown policy", `{"kind":"attack","seed":1,"attack":{"policies":["mru2"]}}`, "attack.policies[0]"},
		{"unknown defense", `{"kind":"attack","seed":1,"attack":{"defenses":["magic"]}}`, "attack.defenses[0]"},
		{"unknown probe", `{"kind":"attack","seed":1,"attack":{"probes":["d=x"]}}`, "attack.probes[0]"},
		{"unknown schedule", `{"kind":"attack","seed":1,"attack":{"schedules":["cooperative"]}}`, "attack.schedules[0]"},
		{"unknown cpu", `{"kind":"attack","seed":1,"attack":{"profiles":[{"cpu":"m1"}]}}`, "attack.profiles[0].cpu"},
		{"non-power-of-two sets", `{"kind":"attack","seed":1,"attack":{"profiles":[{"cpu":"sandy","l1Sets":48}]}}`, "attack.profiles[0].l1Sets"},
		{"zero ways", `{"kind":"attack","seed":1,"attack":{"profiles":[{"cpu":"sandy","l1Ways":0}]}}`, "attack.profiles[0].l1Ways"},
		// 8 is a legal power of two but too small for the T-table victim
		// (16 sets); the constructor's panic must come back as a 400.
		{"geometry breaks victim", `{"kind":"attack","seed":1,"attack":{"victims":["ttable"],"profiles":[{"cpu":"sandy","l1Sets":8}]}}`, "attack.victims[0]"},
		{"geometry breaks default victims", `{"kind":"attack","seed":1,"attack":{"profiles":[{"cpu":"sandy","l1Sets":4}]}}`, "attack.victims"},
		{"negative symbols", `{"kind":"attack","seed":1,"attack":{"symbols":-3}}`, "attack.symbols"},
		{"unknown codec", `{"kind":"stream","seed":1,"stream":{"codecs":["turbo"]}}`, "stream.codecs[0]"},
		{"zero lanes", `{"kind":"stream","seed":1,"stream":{"laneCounts":[0]}}`, "stream.laneCounts[0]"},
		{"zero-cycle point", `{"kind":"stream","seed":1,"stream":{"points":[{"tr":0,"ts":8000}]}}`, "stream.points[0].tr"},
		{"oversized payload", `{"kind":"stream","seed":1,"stream":{"payloadBytes":1000000}}`, "stream.payloadBytes"},
		{"negative threshold", `{"kind":"roc","seed":1,"roc":{"thresholds":[-0.5]}}`, "roc.thresholds[0]"},
		{"wrong section", `{"kind":"roc","seed":1,"attack":{}}`, "kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.spec))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400", resp.StatusCode)
			}
			var body errorBody
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("decode error body: %v", err)
			}
			found := false
			for _, fe := range body.Fields {
				if fe.Field == tc.wantField {
					found = true
					if fe.Message == "" {
						t.Errorf("field %s has no message", fe.Field)
					}
				}
			}
			if !found {
				t.Errorf("no error for field %q in %+v", tc.wantField, body.Fields)
			}
		})
	}
}

// The content key must not care how defaults are spelled: omitting a
// dimension and writing its documented default are the same grid.
func TestContentKeyCanonicalizesDefaults(t *testing.T) {
	parse := func(s string) Spec {
		var sp Spec
		if err := json.Unmarshal([]byte(s), &sp); err != nil {
			t.Fatal(err)
		}
		return sp
	}
	a, errs := compile(parse(`{"kind":"attack","seed":9,"attack":{"victims":["ttable"]}}`))
	if errs != nil {
		t.Fatal(errs)
	}
	b, errs := compile(parse(`{"kind":"attack","seed":9,"attack":{"victims":["ttable"],"symbols":8,"votes":4,"profilingRounds":8,"trials":1}}`))
	if errs != nil {
		t.Fatal(errs)
	}
	if a.key() != b.key() {
		t.Error("explicit defaults hash differently from omitted defaults")
	}
	c, _ := compile(parse(`{"kind":"attack","seed":10,"attack":{"victims":["ttable"]}}`))
	if a.key() == c.key() {
		t.Error("different seeds share a content key")
	}
}

// --- concurrency: dedup, cancel, panic isolation (run with -race) ---

// tinyAttack is a sub-second single-cell job for the concurrency tests.
func tinyAttack(seed int) string {
	return fmt.Sprintf(`{"kind":"attack","seed":%d,"attack":{"victims":["ttable"],"policies":["treeplru"],"defenses":["none"],"symbols":2,"votes":1,"profilingRounds":1}}`, seed)
}

func TestDedupReturnsCachedResult(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var execs int32
	inner := s.exec
	s.exec = func(c *compiledSpec, opt lruleak.RunOptions) string {
		atomic.AddInt32(&execs, 1)
		return inner(c, opt)
	}

	// 32 concurrent submissions of one spec must join a single job.
	const clients = 32
	ids := make([]string, clients)
	reports := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, code := postJob(t, ts, tinyAttack(1))
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("client %d: HTTP %d", i, code)
				return
			}
			ids[i] = body.ID
			reports[i], _ = fetchReport(t, ts, body.ID)
		}()
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("client %d landed on job %s, client 0 on %s", i, ids[i], ids[0])
		}
		if reports[i] != reports[0] || reports[i] == "" {
			t.Fatalf("client %d read a different report", i)
		}
	}
	if n := atomic.LoadInt32(&execs); n != 1 {
		t.Errorf("spec executed %d times for %d submissions, want 1", n, clients)
	}

	// A post-completion resubmission is a pure cache hit: HTTP 200 (not
	// 202), dedup flag set, report immediately available.
	body, code := postJob(t, ts, tinyAttack(1))
	if code != http.StatusOK || !body.Dedup || body.Status != StatusDone {
		t.Errorf("resubmit: HTTP %d dedup=%v status=%s, want 200/true/done", code, body.Dedup, body.Status)
	}
	if n := atomic.LoadInt32(&execs); n != 1 {
		t.Errorf("cache hit re-executed the spec (%d executions)", n)
	}

	// A different seed is a different job.
	other, _ := postJob(t, ts, tinyAttack(2))
	if other.ID == ids[0] {
		t.Error("different seed deduplicated onto the same job")
	}
}

func TestCancelMidGridKeepsServerAlive(t *testing.T) {
	// Two engine workers and a 64-cell grid make the job slow enough to
	// cancel deterministically after its first cell completes.
	_, ts := newTestServer(t, Config{EngineWorkers: 2})
	slow := `{"kind":"attack","seed":5,"attack":{"victims":["ttable"],"policies":["treeplru"],"defenses":["none"],"symbols":16,"votes":2,"profilingRounds":4,"trials":64}}`
	body, code := postJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	// Wait for the first completed cell, then cancel mid-grid.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", ts.URL, body.ID))
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if v.CellsDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%s/cancel", ts.URL, body.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	report, code := fetchReport(t, ts, body.ID)
	if code != http.StatusGone {
		t.Fatalf("report after cancel: HTTP %d (%s), want 410", code, report)
	}
	var final JobView
	r2, _ := http.Get(fmt.Sprintf("%s/v1/jobs/%s", ts.URL, body.ID))
	json.NewDecoder(r2.Body).Decode(&final)
	r2.Body.Close()
	if final.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", final.Status)
	}
	if final.CellsDone < 1 || final.CellsDone >= 64 {
		t.Errorf("cellsDone %d after mid-grid cancel; completed cells keep results, rest abort", final.CellsDone)
	}

	// The server must still run fresh jobs after the cancel.
	after, _ := postJob(t, ts, tinyAttack(6))
	if report, code := fetchReport(t, ts, after.ID); code != http.StatusOK {
		t.Fatalf("post-cancel job: HTTP %d (%s)", code, report)
	}

	// And a resubmission of the canceled spec retries as a new attempt
	// rather than returning the canceled husk.
	retry, code := postJob(t, ts, slow)
	if code != http.StatusAccepted || retry.ID == body.ID {
		t.Fatalf("resubmit of canceled spec: HTTP %d id=%s (original %s)", code, retry.ID, body.ID)
	}
	// Cancel it too; this test doesn't need the full grid again.
	http.Post(fmt.Sprintf("%s/v1/jobs/%s/cancel", ts.URL, retry.ID), "", nil)
}

// A panicking job must fail alone: sibling jobs in flight finish, the
// server keeps serving, and the panic surfaces as that job's error.
func TestPanicInOneJobLeavesSiblingsIntact(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inner := s.exec
	s.exec = func(c *compiledSpec, opt lruleak.RunOptions) string {
		if c.seed == 666 {
			panic("injected: invalid config reached a constructor")
		}
		return inner(c, opt)
	}

	var wg sync.WaitGroup
	results := make([]int, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			seed := i + 1
			if i == 3 {
				seed = 666
			}
			body, _ := postJob(t, ts, tinyAttack(seed))
			_, results[i] = fetchReport(t, ts, body.ID)
		}()
	}
	wg.Wait()
	for i, code := range results {
		want := http.StatusOK
		if i == 3 {
			want = http.StatusInternalServerError
		}
		if code != want {
			t.Errorf("job %d: HTTP %d, want %d", i, code, want)
		}
	}

	// The failed job reports its panic, and the server is still alive.
	body, _ := postJob(t, ts, tinyAttack(666))
	var v JobView
	resp, _ := http.Get(fmt.Sprintf("%s/v1/jobs/%s", ts.URL, body.ID))
	json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if v.Status != StatusFailed && v.Status != StatusQueued && v.Status != StatusRunning {
		t.Errorf("resubmitted panicking spec: status %s", v.Status)
	}
	if report, code := fetchReport(t, ts, body.ID); code != http.StatusInternalServerError {
		t.Errorf("panicking job report: HTTP %d (%s)", code, report)
	} else if !strings.Contains(report, "injected") {
		t.Errorf("failure detail lost: %s", report)
	}
	healthy, _ := postJob(t, ts, tinyAttack(7))
	if _, code := fetchReport(t, ts, healthy.ID); code != http.StatusOK {
		t.Error("server unhealthy after panics")
	}
}

// A real constructor panic (not just an exec-seam one) must also fail
// only its job. The victim constructor's sets requirement is a genuine
// panic site; compile validation normally rejects the geometry, so the
// test injects the sabotage past it through the exec seam — the way a
// latent constructor bug would reach a running daemon.
func TestCellPanicFailsJobNotProcess(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inner := s.exec
	s.exec = func(c *compiledSpec, opt lruleak.RunOptions) string {
		if c.seed == 31337 {
			bad := c.attack
			small := lruleak.SandyBridge()
			small.L1Sets = 2 // ttable needs >= 16; NewTTable panics
			bad.Profiles = []lruleak.Profile{small}
			return lruleak.RenderAttackSweep(lruleak.AttackSweep(bad, c.seed, opt))
		}
		return inner(c, opt)
	}
	body, _ := postJob(t, ts, tinyAttack(31337))
	report, code := fetchReport(t, ts, body.ID)
	if code != http.StatusInternalServerError {
		t.Fatalf("sabotaged job: HTTP %d (%s), want 500", code, report)
	}
	healthy, _ := postJob(t, ts, tinyAttack(8))
	if _, code := fetchReport(t, ts, healthy.ID); code != http.StatusOK {
		t.Error("server died with the panicking cell")
	}
}

func TestQueueOverflowRejectsWith503(t *testing.T) {
	s, ts := newTestServer(t, Config{Runners: 1, QueueDepth: 1})
	block := make(chan struct{})
	var once sync.Once
	inner := s.exec
	s.exec = func(c *compiledSpec, opt lruleak.RunOptions) string {
		<-block
		return inner(c, opt)
	}
	defer once.Do(func() { close(block) })

	// First job occupies the runner, second fills the queue; what the
	// third gets back must be 503, not a hang or a dropped job.
	postJob(t, ts, tinyAttack(1))
	// Wait until the runner has picked up job 1 (queue empty again).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, code := postJob(t, ts, tinyAttack(2)); code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained into the runner")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, code := postJob(t, ts, tinyAttack(3)); code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: HTTP %d, want 503", code)
	}
	once.Do(func() { close(block) })
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/j-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(raw)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, raw)
	}
}
