package service

import (
	"fmt"
	"strings"
	"time"

	"repro"
	"repro/internal/replacement"
	"repro/internal/transport"
	"repro/internal/transport/codec"
	"repro/internal/victim"
)

// FieldError locates one validation failure in the submitted spec.
type FieldError struct {
	Field   string `json:"field"`
	Message string `json:"message"`
}

func (e FieldError) Error() string { return e.Field + ": " + e.Message }

// errs collects field errors during compilation.
type errs struct{ list []FieldError }

func (e *errs) add(field, format string, args ...any) {
	e.list = append(e.list, FieldError{Field: field, Message: fmt.Sprintf(format, args...)})
}

// compile validates a submitted spec and resolves it onto the root
// package's sweep types. It is the daemon's line of defense against
// the constructor panics the one-shot CLIs are allowed to die on
// (cache.New on a non-power-of-two set count or zero ways,
// trace.NewBuilder, stats.NewHistogram): every name and every numeric
// bound is checked here, with a field-level message, before any
// simulator object exists. A non-empty error list means a 400 — the
// spec never reaches the engine.
func compile(sp Spec) (*compiledSpec, []FieldError) {
	var e errs
	c := &compiledSpec{kind: sp.Kind, seed: sp.Seed}
	if sp.DeadlineMS < 0 {
		e.add("deadline_ms", "must be >= 0 (0 = no per-job deadline)")
	} else {
		c.deadline = time.Duration(sp.DeadlineMS) * time.Millisecond
	}

	switch sp.Kind {
	case KindAttack:
		if sp.Stream != nil || sp.ROC != nil {
			e.add("kind", "kind %q takes only the %q section", sp.Kind, sp.Kind)
		}
		var a AttackSpec
		if sp.Attack != nil {
			a = *sp.Attack
		}
		c.attack = compileAttack(a, &e)
	case KindStream:
		if sp.Attack != nil || sp.ROC != nil {
			e.add("kind", "kind %q takes only the %q section", sp.Kind, sp.Kind)
		}
		var s StreamSpec
		if sp.Stream != nil {
			s = *sp.Stream
		}
		c.stream = compileStream(s, &e)
	case KindROC:
		if sp.Attack != nil || sp.Stream != nil {
			e.add("kind", "kind %q takes only the %q section", sp.Kind, sp.Kind)
		}
		var r ROCSpec
		if sp.ROC != nil {
			r = *sp.ROC
		}
		c.roc = compileROC(r, &e)
	default:
		e.add("kind", "unknown kind %q (valid: %s)", sp.Kind, strings.Join(Kinds(), ", "))
	}
	if len(e.list) > 0 {
		return nil, e.list
	}
	return c, nil
}

// nonNegative bounds the per-cell cost knobs: negative values are
// nonsense and huge ones would let one spec monopolize the daemon.
func nonNegative(e *errs, field string, v, max int) {
	if v < 0 {
		e.add(field, "must be >= 0")
	} else if v > max {
		e.add(field, "%d exceeds the service cap of %d", v, max)
	}
}

func compileAttack(a AttackSpec, e *errs) lruleak.AttackSpec {
	out := lruleak.AttackSpec{
		Symbols: a.Symbols, Votes: a.Votes,
		ProfilingRounds: a.ProfilingRounds, Trials: a.Trials,
	}
	for i, name := range a.Policies {
		pol, err := replacement.ParseKind(name)
		if err != nil {
			e.add(fmt.Sprintf("attack.policies[%d]", i), "%v", err)
			continue
		}
		out.Policies = append(out.Policies, pol)
	}
	for i, name := range a.Defenses {
		def, err := lruleak.AttackDefenseByName(name)
		if err != nil {
			e.add(fmt.Sprintf("attack.defenses[%d]", i), "%v", err)
			continue
		}
		out.Defenses = append(out.Defenses, def)
	}
	for i, name := range a.Probes {
		probe, err := lruleak.AttackProbeByName(name)
		if err != nil {
			e.add(fmt.Sprintf("attack.probes[%d]", i), "%v", err)
			continue
		}
		out.Probes = append(out.Probes, probe)
	}
	for i, name := range a.Schedules {
		sched, err := lruleak.AttackScheduleByName(name)
		if err != nil {
			e.add(fmt.Sprintf("attack.schedules[%d]", i), "%v", err)
			continue
		}
		out.Schedules = append(out.Schedules, sched)
	}
	for i, ps := range a.Profiles {
		prof, ok := compileProfile(ps, fmt.Sprintf("attack.profiles[%d]", i), e)
		if !ok {
			continue
		}
		out.Profiles = append(out.Profiles, prof)
	}
	// Victims are validated against every profile geometry they will
	// run on (the sweep pairs each victim with each profile), using the
	// same constructor AttackSweep calls — reused, not reimplemented.
	// When the spec omits victims, the sweep will default to all of
	// them, so the defaults are what must survive the geometry: a legal
	// power-of-two set count can still be too small for a victim
	// (ttable needs 16 sets), and that must be a 400 here, not a panic
	// in the sweep.
	profiles := out.Profiles
	if len(profiles) == 0 {
		profiles = []lruleak.Profile{lruleak.SandyBridge()}
	}
	victims := a.Victims
	defaulted := len(victims) == 0
	if defaulted {
		victims = victim.Names()
	}
	for i, name := range victims {
		field := fmt.Sprintf("attack.victims[%d]", i)
		if defaulted {
			field = "attack.victims"
		}
		for _, prof := range profiles {
			if err := tryVictim(name, prof.L1Sets); err != nil {
				e.add(field, "%q on %s (%d L1 sets): %v", name, prof.Arch, prof.L1Sets, err)
				break
			}
		}
	}
	out.Victims = a.Victims
	nonNegative(e, "attack.symbols", a.Symbols, 1024)
	nonNegative(e, "attack.votes", a.Votes, 1024)
	nonNegative(e, "attack.profilingRounds", a.ProfilingRounds, 1024)
	nonNegative(e, "attack.trials", a.Trials, 1024)
	return out
}

// tryVictim probes a (victim, set count) pairing through the same
// constructor the sweeps use. Some constructors report an impossible
// geometry by panicking (victim.NewTTable on < 16 sets) rather than
// returning an error; here both become a validation error.
func tryVictim(name string, sets int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	_, err = victim.ByName(name, sets)
	return err
}

// compileProfile resolves a named CPU profile and applies the optional
// L1 geometry override, enforcing the invariants cache.New would
// otherwise panic on: a positive power-of-two set count and at least
// one way.
func compileProfile(ps ProfileSpec, field string, e *errs) (lruleak.Profile, bool) {
	prof, err := lruleak.ProfileByName(ps.CPU)
	if err != nil {
		e.add(field+".cpu", "%v", err)
		return prof, false
	}
	ok := true
	if ps.L1Sets != nil {
		if n := *ps.L1Sets; n < 1 || n&(n-1) != 0 {
			e.add(field+".l1Sets", "%d is not a positive power of two", n)
			ok = false
		} else {
			prof.L1Sets = n
		}
	}
	if ps.L1Ways != nil {
		if n := *ps.L1Ways; n < 1 {
			e.add(field+".l1Ways", "%d ways; a cache needs at least 1", n)
			ok = false
		} else {
			prof.L1Ways = n
		}
	}
	return prof, ok
}

func compileStream(s StreamSpec, e *errs) lruleak.StreamSpec {
	out := lruleak.StreamSpec{
		NoisePeriod:  s.NoisePeriod,
		PayloadBytes: s.PayloadBytes,
		FramePayload: s.FramePayload,
	}
	for i, pt := range s.Points {
		field := fmt.Sprintf("stream.points[%d]", i)
		if pt.Tr < 1 {
			e.add(field+".tr", "the receiver period must be >= 1 cycle")
		}
		if pt.Ts < 1 {
			e.add(field+".ts", "the symbol period must be >= 1 cycle")
		}
		out.Points = append(out.Points, lruleak.TrTs{Tr: pt.Tr, Ts: pt.Ts})
	}
	for i, name := range s.Codecs {
		if _, err := codec.ByName(name); err != nil {
			e.add(fmt.Sprintf("stream.codecs[%d]", i), "%v", err)
			continue
		}
		out.Codecs = append(out.Codecs, name)
	}
	for i, lanes := range s.LaneCounts {
		// DefaultLanes panics above 62 usable sets; 0 lanes is no channel.
		if lanes < 1 || lanes > 62 {
			e.add(fmt.Sprintf("stream.laneCounts[%d]", i), "%d lanes; want 1..62 (the usable L1 sets)", lanes)
			continue
		}
		out.LaneCounts = append(out.LaneCounts, lanes)
	}
	for i, n := range s.NoiseThreads {
		if n < 0 || n > 64 {
			e.add(fmt.Sprintf("stream.noiseThreads[%d]", i), "%d noise threads; want 0..64", n)
			continue
		}
		out.NoiseThreads = append(out.NoiseThreads, n)
	}
	if s.FramePayload < 0 || s.FramePayload > 255 {
		e.add("stream.framePayload", "%d bytes/frame; want 0 (default) .. 255 (the frame length field is one byte)", s.FramePayload)
	}
	if s.PayloadBytes < 0 {
		e.add("stream.payloadBytes", "must be >= 0")
	} else if max := transport.MaxPayloadBytes(s.FramePayload); s.PayloadBytes > max {
		e.add("stream.payloadBytes", "%d bytes exceeds the %d-byte single-send limit at this frame size", s.PayloadBytes, max)
	}
	return out
}

func compileROC(r ROCSpec, e *errs) lruleak.ROCSpec {
	out := lruleak.ROCSpec{
		Trials: r.Trials, Symbols: r.Symbols,
		BenignRefs: r.BenignRefs, BenignSlice: r.BenignSlice,
	}
	for i, name := range r.Victims {
		if err := tryVictim(name, lruleak.SandyBridge().L1Sets); err != nil {
			e.add(fmt.Sprintf("roc.victims[%d]", i), "%v", err)
			continue
		}
		out.Victims = append(out.Victims, name)
	}
	for i, name := range r.Policies {
		pol, err := replacement.ParseKind(name)
		if err != nil {
			e.add(fmt.Sprintf("roc.policies[%d]", i), "%v", err)
			continue
		}
		out.Policies = append(out.Policies, pol)
	}
	for i, name := range r.Defenses {
		def, err := lruleak.AttackDefenseByName(name)
		if err != nil {
			e.add(fmt.Sprintf("roc.defenses[%d]", i), "%v", err)
			continue
		}
		out.Defenses = append(out.Defenses, def)
	}
	for i, th := range r.Thresholds {
		if th < 0 {
			e.add(fmt.Sprintf("roc.thresholds[%d]", i), "thresholds are rates; %g is negative", th)
		}
	}
	out.Thresholds = append(out.Thresholds, r.Thresholds...)
	nonNegative(e, "roc.trials", r.Trials, 1024)
	nonNegative(e, "roc.symbols", r.Symbols, 1024)
	nonNegative(e, "roc.benignRefs", r.BenignRefs, 100_000_000)
	nonNegative(e, "roc.benignSlice", r.BenignSlice, 100_000_000)
	return out
}
