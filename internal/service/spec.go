package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro"
)

// Experiment kinds accepted by the server. Each maps onto one of the
// root package's evaluation grids (sweep.go) and its renderer.
const (
	KindAttack = "attack" // lruleak.AttackSweep → RenderAttackSweep
	KindStream = "stream" // lruleak.StreamSweep → RenderStreamSweep
	KindROC    = "roc"    // lruleak.ROCSweep → RenderROC
)

// Kinds lists the accepted experiment kinds.
func Kinds() []string { return []string{KindAttack, KindStream, KindROC} }

// Spec is the submission schema of POST /v1/jobs: an experiment kind,
// the root seed the whole grid derives its randomness from, and the
// kind's spec section. All dimensions are named with the same strings
// the CLI flags accept (victim, policy, defense, probe, schedule, CPU
// and codec names); omitted dimensions take the documented sweep
// defaults, exactly as the zero-valued Go specs do. A nil section is
// the fully-defaulted grid of its kind.
type Spec struct {
	Kind string `json:"kind"`
	Seed uint64 `json:"seed"`

	// DeadlineMS, when positive, bounds the job's wall-clock execution
	// in milliseconds: if the grid has not finished by then, the run is
	// cancelled at its next cell boundary and the job finishes in the
	// distinct deadline_exceeded state. The server's -max-job-wall flag
	// caps (and defaults) this. A deadline is an execution budget, not
	// part of the experiment, so it is deliberately EXCLUDED from the
	// content key — two submissions differing only in deadline name the
	// same result, and a submission may join an in-flight job that was
	// queued under a different deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	Attack *AttackSpec `json:"attack,omitempty"`
	Stream *StreamSpec `json:"stream,omitempty"`
	ROC    *ROCSpec    `json:"roc,omitempty"`
}

// AttackSpec is the JSON form of lruleak.AttackSpec: the secret-
// recovery defense-evaluation matrix.
type AttackSpec struct {
	Victims         []string      `json:"victims,omitempty"`
	Policies        []string      `json:"policies,omitempty"`
	Defenses        []string      `json:"defenses,omitempty"`
	Profiles        []ProfileSpec `json:"profiles,omitempty"`
	Probes          []string      `json:"probes,omitempty"`
	Schedules       []string      `json:"schedules,omitempty"`
	Symbols         int           `json:"symbols,omitempty"`
	Votes           int           `json:"votes,omitempty"`
	ProfilingRounds int           `json:"profilingRounds,omitempty"`
	Trials          int           `json:"trials,omitempty"`
}

// ProfileSpec names a CPU profile ("sandy", "skylake", "zen") with an
// optional L1 geometry override. The overrides are pointers so an
// explicit invalid value (zero ways, a non-power-of-two set count) is
// distinguishable from "keep the profile's geometry" and can be
// rejected by the validator instead of panicking in cache.New.
type ProfileSpec struct {
	CPU    string `json:"cpu"`
	L1Sets *int   `json:"l1Sets,omitempty"`
	L1Ways *int   `json:"l1Ways,omitempty"`
}

// Point is one covert-channel operating point.
type Point struct {
	Tr uint64 `json:"tr"`
	Ts uint64 `json:"ts"`
}

// StreamSpec is the JSON form of lruleak.StreamSpec: the transport-
// layer capacity grid.
type StreamSpec struct {
	Points       []Point  `json:"points,omitempty"`
	Codecs       []string `json:"codecs,omitempty"`
	LaneCounts   []int    `json:"laneCounts,omitempty"`
	NoiseThreads []int    `json:"noiseThreads,omitempty"`
	NoisePeriod  uint64   `json:"noisePeriod,omitempty"`
	PayloadBytes int      `json:"payloadBytes,omitempty"`
	FramePayload int      `json:"framePayload,omitempty"`
}

// ROCSpec is the JSON form of lruleak.ROCSpec: the detection
// threshold sweep.
type ROCSpec struct {
	Victims     []string  `json:"victims,omitempty"`
	Policies    []string  `json:"policies,omitempty"`
	Defenses    []string  `json:"defenses,omitempty"`
	Trials      int       `json:"trials,omitempty"`
	Symbols     int       `json:"symbols,omitempty"`
	BenignRefs  int       `json:"benignRefs,omitempty"`
	BenignSlice int       `json:"benignSlice,omitempty"`
	Thresholds  []float64 `json:"thresholds,omitempty"`
}

// compiledSpec is a validated spec resolved onto the root package's
// sweep types, ready to execute. Exactly one of the three grid fields
// is meaningful, per kind.
type compiledSpec struct {
	kind string
	seed uint64
	// deadline is the job's wall-clock budget (0 = none); not part of
	// the content key.
	deadline time.Duration

	attack lruleak.AttackSpec
	stream lruleak.StreamSpec
	roc    lruleak.ROCSpec
}

// keyPayload is what the content address covers: the kind, the seed,
// and the *normalized* grid (WithDefaults applied), so spec spellings
// that evaluate the same grid share one cache entry. The lruleak spec
// types marshal deterministically (fixed struct field order, no maps).
// ROC thresholds travel as strings because the defaulted grid contains
// +Inf (the monitor-off point), which JSON cannot encode as a number.
type keyPayload struct {
	Kind          string              `json:"kind"`
	Seed          uint64              `json:"seed"`
	Attack        *lruleak.AttackSpec `json:"attack,omitempty"`
	Stream        *lruleak.StreamSpec `json:"stream,omitempty"`
	ROC           *lruleak.ROCSpec    `json:"roc,omitempty"`
	ROCThresholds []string            `json:"rocThresholds,omitempty"`
}

// key returns the job's content address: hex SHA-256 of the normalized
// (spec, seed) pair. Determinism makes this a result address too — the
// finished report is a pure function of the key.
func (c *compiledSpec) key() string {
	p := keyPayload{Kind: c.kind, Seed: c.seed}
	switch c.kind {
	case KindAttack:
		sp := c.attack.WithDefaults()
		p.Attack = &sp
	case KindStream:
		sp := c.stream.WithDefaults()
		p.Stream = &sp
	case KindROC:
		sp := c.roc.WithDefaults()
		p.ROCThresholds = make([]string, len(sp.Thresholds))
		for i, th := range sp.Thresholds {
			p.ROCThresholds[i] = strconv.FormatFloat(th, 'g', -1, 64)
		}
		sp.Thresholds = nil
		p.ROC = &sp
	}
	raw, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("service: content key marshal: %v", err)) // plain structs always marshal
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// run executes the compiled grid through the engine with the given
// options (the server passes its persistent pool, the job context and
// the progress recorder) and renders the report with the same
// renderers the CLIs use — which is what lets testdata/*.golden pin
// the service's output byte-for-byte.
func (c *compiledSpec) run(opt lruleak.RunOptions) string {
	switch c.kind {
	case KindAttack:
		return lruleak.RenderAttackSweep(lruleak.AttackSweep(c.attack, c.seed, opt))
	case KindStream:
		return lruleak.RenderStreamSweep(lruleak.StreamSweep(c.stream, c.seed, opt))
	case KindROC:
		return lruleak.RenderROC(lruleak.ROCSweep(c.roc, c.seed, opt))
	}
	panic(fmt.Sprintf("service: unvalidated kind %q reached run", c.kind))
}
