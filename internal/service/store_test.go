package service

// Durability behavior of the server: restart conformance (a persisted
// report survives a process death and is served byte-identical with
// zero engine cells re-executed), persist retry/degradation under
// injected store faults, the per-job wall-clock deadline, and the
// queue-full Retry-After contract. Runs under -race in CI.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/store"
)

// openTestDisk opens a disk store on dir (optionally through a fault
// FS), failing the test on error. The returned store is owned — and
// closed — by the server it is handed to.
func openTestDisk(t *testing.T, dir string, fs store.FS) *store.Disk {
	t.Helper()
	d, err := store.OpenDisk(dir, store.DiskOptions{FS: fs, Logf: t.Logf})
	if err != nil {
		t.Fatalf("open disk store: %v", err)
	}
	return d
}

// statusOf fetches a job's status view.
func statusOf(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return v
}

// The restart conformance test — the durability tentpole end to end.
// Lifetime 1 computes the golden attack grid and persists it; lifetime
// 2, a fresh server on the same store directory, must answer the same
// submission byte-identical to testdata/attacksweep.golden with ZERO
// engine cells executed, proven three ways: an exec seam that counts
// invocations, the engine's own dispatch counter, and the store-hit
// counter in /metrics.
func TestRestartServesPersistedGoldenWithoutRecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweeps are not -short")
	}
	dir := t.TempDir()
	spec := conformanceCases[0].spec // the attacksweep golden grid
	want := readGolden(t, "attacksweep")

	// Lifetime 1: compute, persist, die.
	s1, ts1 := newTestServer(t, Config{Store: openTestDisk(t, dir, nil)})
	body, code := postJob(t, ts1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("lifetime 1 submit: HTTP %d", code)
	}
	report, code := fetchReport(t, ts1, body.ID)
	if code != http.StatusOK {
		t.Fatalf("lifetime 1 report: HTTP %d: %s", code, report)
	}
	if report != want {
		t.Fatal("lifetime 1 report diverges from attacksweep.golden")
	}
	ts1.Close()
	s1.Close() // also closes the disk store

	// Lifetime 2: same directory, fresh process state, execution banned.
	s2, ts2 := newTestServer(t, Config{Store: openTestDisk(t, dir, nil)})
	var execs int32
	s2.exec = func(*compiledSpec, lruleak.RunOptions) string {
		atomic.AddInt32(&execs, 1)
		return "recomputed — durability broken"
	}
	body, code = postJob(t, ts2, spec)
	if code != http.StatusOK || !body.Dedup {
		t.Fatalf("restart submit: HTTP %d dedup=%v, want 200/true (store hit)", code, body.Dedup)
	}
	if !body.Restored || body.Status != StatusDone {
		t.Fatalf("restart submit: restored=%v status=%s, want true/done", body.Restored, body.Status)
	}
	report, code = fetchReport(t, ts2, body.ID)
	if code != http.StatusOK {
		t.Fatalf("restart report: HTTP %d", code)
	}
	if report != want {
		t.Errorf("restored report diverges from attacksweep.golden:\n--- got ---\n%s", report)
	}
	if n := atomic.LoadInt32(&execs); n != 0 {
		t.Errorf("restart executed the grid %d times, want 0", n)
	}
	out := scrape(t, ts2.URL)
	if got := series(t, out, "service_store_hits_total"); got != 1 {
		t.Errorf("service_store_hits_total = %v, want 1", got)
	}
	if got := series(t, out, "engine_cells_dispatched_total"); got != 0 {
		t.Errorf("engine_cells_dispatched_total = %v after restore, want 0", got)
	}
	if got := series(t, out, `service_jobs_total{state="done"}`); got != 1 {
		t.Errorf(`restored job missing from service_jobs_total{state="done"}: %v`, got)
	}
}

// The fast twin of the golden restart test: determinism means the
// persisted report equals the recomputed one, so lifetime 2's restored
// bytes must match lifetime 1's computed bytes exactly.
func TestRestartReportIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{Store: openTestDisk(t, dir, nil)})
	body, _ := postJob(t, ts1, tinyAttack(11))
	computed, code := fetchReport(t, ts1, body.ID)
	if code != http.StatusOK {
		t.Fatalf("compute: HTTP %d", code)
	}

	s2, ts2 := newTestServer(t, Config{Store: openTestDisk(t, dir, nil)})
	s2.exec = func(*compiledSpec, lruleak.RunOptions) string { return "MUST NOT RUN" }
	body, _ = postJob(t, ts2, tinyAttack(11))
	restored, code := fetchReport(t, ts2, body.ID)
	if code != http.StatusOK {
		t.Fatalf("restore: HTTP %d", code)
	}
	if restored != computed || computed == "" {
		t.Errorf("restored report differs from the computed one:\n--- restored ---\n%s--- computed ---\n%s",
			restored, computed)
	}
	// A key the store has never seen still computes.
	fresh, _ := postJob(t, ts2, tinyAttack(12))
	if r, code := fetchReport(t, ts2, fresh.ID); code != http.StatusOK || r != "MUST NOT RUN" {
		t.Errorf("novel key: HTTP %d %q, want the seam's output", code, r)
	}
}

// One transient Put failure must be retried and absorbed: the job
// finishes done, the entry lands on disk, and nothing degrades.
func TestPersistRetriesTransientPutFault(t *testing.T) {
	fs := store.NewFaultFS(nil)
	fs.FailWrites(1, 1, nil) // first write ENOSPCs; the retry's write succeeds
	disk := openTestDisk(t, t.TempDir(), fs)
	_, ts := newTestServer(t, Config{
		Store:          disk,
		StoreRetryBase: time.Millisecond,
	})
	body, _ := postJob(t, ts, tinyAttack(21))
	if report, code := fetchReport(t, ts, body.ID); code != http.StatusOK {
		t.Fatalf("report: HTTP %d: %s", code, report)
	}
	keys, err := disk.Keys()
	if err != nil || len(keys) != 1 {
		t.Fatalf("store keys after retried persist: %v, %v (want 1 key)", keys, err)
	}
	out := scrape(t, ts.URL)
	if got := series(t, out, "service_store_put_retries_total"); got != 1 {
		t.Errorf("service_store_put_retries_total = %v, want 1", got)
	}
	if got := series(t, out, "service_store_persists_total"); got != 1 {
		t.Errorf("service_store_persists_total = %v, want 1", got)
	}
	if got := series(t, out, "service_store_degraded"); got != 0 {
		t.Errorf("service_store_degraded = %v after a recovered fault, want 0", got)
	}
}

// Persistent store failure must cost durability, never jobs: after the
// backoff ladder is exhausted the server flips to memory-only mode,
// says so in /metrics and /healthz, and stops hammering the dead disk.
func TestPersistentPutFailureDegradesToMemoryOnly(t *testing.T) {
	fs := store.NewFaultFS(nil)
	fs.FailCreates(store.ErrNoSpace) // every Put fails before writing a byte
	_, ts := newTestServer(t, Config{
		Store:           openTestDisk(t, t.TempDir(), fs),
		StorePutRetries: 2,
		StoreRetryBase:  time.Millisecond,
	})

	// The job itself must succeed from memory.
	body, _ := postJob(t, ts, tinyAttack(31))
	if report, code := fetchReport(t, ts, body.ID); code != http.StatusOK {
		t.Fatalf("report during disk failure: HTTP %d: %s", code, report)
	}
	out := scrape(t, ts.URL)
	if got := series(t, out, "service_store_degraded"); got != 1 {
		t.Fatalf("service_store_degraded = %v, want 1", got)
	}
	if got := series(t, out, "service_store_put_failures_total"); got != 3 {
		t.Errorf("service_store_put_failures_total = %v, want 3 (initial + 2 retries)", got)
	}

	// healthz stays ok (liveness) but carries the degradation.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(raw), "ok\n") {
		t.Fatalf("healthz while degraded: %d %q, want 200 starting with ok", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "degraded (memory-only)") {
		t.Errorf("healthz does not surface the degradation: %q", raw)
	}

	// Once degraded, later jobs skip the dead disk entirely: no new Put
	// attempts, no new failures — and they still finish.
	next, _ := postJob(t, ts, tinyAttack(32))
	if _, code := fetchReport(t, ts, next.ID); code != http.StatusOK {
		t.Fatal("server stopped running jobs after degrading")
	}
	out = scrape(t, ts.URL)
	if got := series(t, out, "service_store_put_failures_total"); got != 3 {
		t.Errorf("degraded server still hammering the disk: %v put failures, want 3", got)
	}
	if got := series(t, out, "service_store_persists_total"); got != 0 {
		t.Errorf("service_store_persists_total = %v on a dead disk, want 0", got)
	}
}

// deadlineSpec is a tiny attack spec carrying a deadline_ms field.
func deadlineSpec(seed, deadlineMS int) string {
	return fmt.Sprintf(`{"kind":"attack","seed":%d,"deadline_ms":%d,"attack":{"victims":["ttable"],"policies":["treeplru"],"defenses":["none"],"symbols":2,"votes":1,"profilingRounds":1}}`, seed, deadlineMS)
}

// A job that outruns its wall-clock budget must finish in the distinct
// deadline_exceeded state: 504 on the report, its own telemetry series,
// and a resubmission starts a fresh attempt (an expired run is not a
// cache entry). Exercised both ways the budget can arrive: the spec's
// deadline_ms and the server-wide MaxJobWall cap.
func TestJobDeadlineExceeded(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		spec string
	}{
		{"spec deadline_ms", Config{}, deadlineSpec(41, 30)},
		{"server max-job-wall", Config{MaxJobWall: 30 * time.Millisecond}, tinyAttack(42)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, ts := newTestServer(t, tc.cfg)
			s.exec = func(c *compiledSpec, opt lruleak.RunOptions) string {
				<-opt.Context.Done() // a grid that never finishes in time
				return ""
			}
			body, code := postJob(t, ts, tc.spec)
			if code != http.StatusAccepted {
				t.Fatalf("submit: HTTP %d", code)
			}
			report, code := fetchReport(t, ts, body.ID)
			if code != http.StatusGatewayTimeout {
				t.Fatalf("report after deadline: HTTP %d (%s), want 504", code, report)
			}
			v := statusOf(t, ts, body.ID)
			if v.Status != StatusDeadline {
				t.Fatalf("status %s, want %s", v.Status, StatusDeadline)
			}
			if !strings.Contains(v.Error, "deadline") {
				t.Errorf("error detail %q does not name the deadline", v.Error)
			}
			out := scrape(t, ts.URL)
			if got := series(t, out, `service_jobs_total{state="deadline_exceeded"}`); got != 1 {
				t.Errorf(`service_jobs_total{state="deadline_exceeded"} = %v, want 1`, got)
			}
			// Expired attempts retry rather than joining the husk.
			retry, code := postJob(t, ts, tc.spec)
			if code != http.StatusAccepted || retry.ID == body.ID {
				t.Fatalf("resubmit after deadline: HTTP %d id=%s (original %s), want a fresh 202",
					code, retry.ID, body.ID)
			}
		})
	}
}

// The deadline is an execution budget, not part of the experiment:
// specs differing only in deadline_ms share one content key (and one
// cached result), and a negative budget is a field-level 400.
func TestDeadlineExcludedFromContentKey(t *testing.T) {
	parse := func(s string) Spec {
		var sp Spec
		if err := json.Unmarshal([]byte(s), &sp); err != nil {
			t.Fatal(err)
		}
		return sp
	}
	a, errs := compile(parse(deadlineSpec(9, 0)))
	if errs != nil {
		t.Fatal(errs)
	}
	b, errs := compile(parse(deadlineSpec(9, 60000)))
	if errs != nil {
		t.Fatal(errs)
	}
	if a.key() != b.key() {
		t.Error("deadline_ms leaked into the content key")
	}
	if _, errs := compile(parse(deadlineSpec(9, -5))); len(errs) == 0 {
		t.Error("negative deadline_ms passed validation")
	}
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(deadlineSpec(9, -5)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative deadline_ms: HTTP %d, want 400", resp.StatusCode)
	}
}

// A queue-full 503 must carry Retry-After so well-behaved clients back
// off instead of hammering.
func TestQueueFullSetsRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Runners: 1, QueueDepth: 1})
	block := make(chan struct{})
	var once sync.Once
	inner := s.exec
	s.exec = func(c *compiledSpec, opt lruleak.RunOptions) string {
		<-block
		return inner(c, opt)
	}
	defer once.Do(func() { close(block) })

	postJob(t, ts, tinyAttack(51)) // occupies the runner
	deadline := time.Now().Add(5 * time.Second)
	for { // fills the queue once the runner picks job 1 up
		if _, code := postJob(t, ts, tinyAttack(52)); code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained into the runner")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tinyAttack(53)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: HTTP %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	once.Do(func() { close(block) })
}
