// Package service is the leakage-analysis job server behind
// cmd/lruleakd: a long-running HTTP/JSON front end over the same
// experiment drivers the one-shot CLIs call.
//
// A client POSTs an experiment spec — an attack sweep (the
// victim × policy × defense matrix), a transport stream sweep, or a
// detection ROC sweep — as JSON. The server validates the spec up
// front with field-level errors (a bad spec is a 400, never a panic
// deep inside a cache constructor), then runs it as a job: cells are
// sharded across one persistent engine.Pool shared by every job, so
// worker-local machines (engine.Workspace) are reused across jobs, and
// per-cell progress (the engine's Event stream) is recorded and
// streamable while the grid runs.
//
// Jobs are content-addressed: the key is a hash of the normalized spec
// (defaults applied, so two spellings of the same grid collide) plus
// the seed, and identical (spec, seed) submissions deduplicate onto
// one job whose finished report is the cache entry. This is sound
// because of the engine's determinism contract — the same (spec, seed)
// produces byte-identical output at any worker count, on any machine —
// which is also what makes the CLI goldens under testdata/ the
// service's conformance suite: the server renders its reports through
// the same lruleak.Render* functions the CLIs use, so a server-side
// attack/stream/ROC run is pinned byte-for-byte by the existing
// golden files.
//
// Daemon safety rests on the engine's panic containment: a job whose
// cell panics fails that job alone (the panic is recovered per cell,
// siblings keep their results, and the re-raise is caught at the job
// boundary), and a client disconnect or shutdown cancels the job's
// context, aborting its grid at cell boundaries without touching other
// jobs' work.
package service
