package sched

import (
	"testing"

	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/timing"
	"repro/internal/uarch"
)

func rig(mode Mode, seed uint64) (*Machine, *mem.System, *mem.AddressSpace) {
	prof := uarch.SandyBridge()
	h := hier.New(hier.Config{Profile: prof, L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU})
	r := rng.New(seed)
	m := New(Config{Hier: h, TSC: timing.NewTSC(prof, r.Split()), RNG: r, Mode: mode})
	sys := mem.NewSystem(64)
	return m, sys, sys.NewAddressSpace()
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil deps")
		}
	}()
	New(Config{})
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	m, _, as := rig(SMT, 1)
	a := as.Resolve(as.Alloc(1))
	n := 0
	m.AddThread("t", 0, func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Access(a)
			n++
		}
	})
	m.Run(1 << 40)
	if n != 10 {
		t.Errorf("thread performed %d accesses, want 10", n)
	}
}

func TestRunTwicePanics(t *testing.T) {
	m, _, _ := rig(SMT, 1)
	m.Run(100)
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	m.Run(100)
}

func TestAddThreadAfterRunPanics(t *testing.T) {
	m, _, _ := rig(SMT, 1)
	m.Run(100)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.AddThread("late", 0, func(e *Env) {})
}

func TestLimitStopsInfiniteLoop(t *testing.T) {
	m, _, as := rig(SMT, 2)
	a := as.Resolve(as.Alloc(1))
	n := 0
	m.AddThread("spin", 0, func(e *Env) {
		for {
			e.Access(a)
			n++
		}
	})
	m.Run(100_000)
	if n == 0 {
		t.Fatal("thread never ran")
	}
	// An L1 hit takes >= 4 cycles, so at most limit/4 accesses fit.
	if n > 100_000/4 {
		t.Errorf("%d accesses exceed the wall-time budget", n)
	}
}

func TestDeterminismSMT(t *testing.T) {
	trace := func(seed uint64) []uint64 {
		m, _, as := rig(SMT, seed)
		a := as.Resolve(as.Alloc(1))
		b := as.Resolve(as.Alloc(1))
		var out []uint64
		m.AddThread("A", 0, func(e *Env) {
			for i := 0; i < 50; i++ {
				e.Access(a)
				out = append(out, e.Now())
			}
		})
		m.AddThread("B", 1, func(e *Env) {
			for i := 0; i < 50; i++ {
				e.Access(b)
				out = append(out, e.Now()|1<<63)
			}
		})
		m.Run(1 << 40)
		return out
	}
	t1, t2 := trace(7), trace(7)
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestSMTThreadsInterleave(t *testing.T) {
	m, _, as := rig(SMT, 3)
	a := as.Resolve(as.Alloc(1))
	b := as.Resolve(as.Alloc(1))
	var order []byte
	m.AddThread("A", 0, func(e *Env) {
		for i := 0; i < 100; i++ {
			e.Access(a)
			order = append(order, 'A')
		}
	})
	m.AddThread("B", 1, func(e *Env) {
		for i := 0; i < 100; i++ {
			e.Access(b)
			order = append(order, 'B')
		}
	})
	m.Run(1 << 40)
	// Under SMT the two streams must interleave finely, not run back to
	// back: count alternations.
	alt := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			alt++
		}
	}
	if alt < 50 {
		t.Errorf("only %d alternations in 200 actions; SMT interleaving broken", alt)
	}
}

func TestTimeSlicedRunsInQuanta(t *testing.T) {
	m, _, as := rig(TimeSliced, 4)
	a := as.Resolve(as.Alloc(1))
	b := as.Resolve(as.Alloc(1))
	var order []byte
	m.AddThread("A", 0, func(e *Env) {
		for {
			e.Access(a)
			order = append(order, 'A')
		}
	})
	m.AddThread("B", 1, func(e *Env) {
		for {
			e.Access(b)
			order = append(order, 'B')
		}
	})
	m.Run(5_000_000) // five quanta
	// Within a quantum only one thread runs: alternations are rare.
	alt := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			alt++
		}
	}
	if alt > 10 {
		t.Errorf("%d alternations; time-sliced threads should run in long runs", alt)
	}
	if len(order) == 0 {
		t.Fatal("nothing ran")
	}
	// Both threads must have run.
	var sawA, sawB bool
	for _, c := range order {
		sawA = sawA || c == 'A'
		sawB = sawB || c == 'B'
	}
	if !sawA || !sawB {
		t.Errorf("sawA=%v sawB=%v", sawA, sawB)
	}
}

func TestBusyUntilAdvancesClock(t *testing.T) {
	m, _, _ := rig(SMT, 5)
	var reached uint64
	m.AddThread("t", 0, func(e *Env) {
		e.BusyUntil(50_000)
		reached = e.Now()
	})
	m.Run(1 << 40)
	if reached < 50_000 {
		t.Errorf("Now() after BusyUntil(50000) = %d", reached)
	}
}

func TestLongSleepCheapInTimeSliced(t *testing.T) {
	// A receiver spinning 10^8 cycles must not take 10^8 scheduler
	// events. We can't count events directly, but the test completing
	// quickly (and the other thread making progress) is the behaviour.
	m, _, as := rig(TimeSliced, 6)
	a := as.Resolve(as.Alloc(1))
	senderOps := 0
	m.AddThread("sleeper", 0, func(e *Env) {
		e.Busy(100_000_000)
	})
	m.AddThread("sender", 1, func(e *Env) {
		for {
			e.Access(a)
			e.Busy(10_000)
			senderOps++
		}
	})
	m.Run(100_000_000)
	if senderOps < 1000 {
		t.Errorf("sender made only %d ops while sleeper slept", senderOps)
	}
}

func TestFlushCharged(t *testing.T) {
	m, _, as := rig(SMT, 7)
	a := as.Resolve(as.Alloc(1))
	var after uint64
	m.AddThread("t", 0, func(e *Env) {
		e.Access(a)
		e.Flush(a)
		after = e.Now()
	})
	m.Run(1 << 40)
	if after < 150 {
		t.Errorf("flush cost not charged: Now()=%d", after)
	}
}

func TestMeasureThroughEnv(t *testing.T) {
	prof := uarch.SandyBridge()
	h := hier.New(hier.Config{Profile: prof, L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU})
	r := rng.New(8)
	tsc := timing.NewTSC(prof, r.Split())
	m := New(Config{Hier: h, TSC: tsc, RNG: r, Mode: SMT})
	sys := mem.NewSystem(64)
	as := sys.NewAddressSpace()
	ch := timing.NewChaser(h, as, 63, 0, 0, tsc)
	target := as.Resolve(as.LinesForSet(64, 5, 1)[0])
	var hit, miss float64
	m.AddThread("recv", 0, func(e *Env) {
		ch.WarmUp()
		e.Access(target)
		hit = e.Measure(ch, target).Observed
		h.L1().Flush(target.PhysLine)
		miss = e.Measure(ch, target).Observed
	})
	m.Run(1 << 40)
	if hit == 0 || miss == 0 {
		t.Fatal("measurements did not run")
	}
	if miss <= hit {
		t.Errorf("miss (%v) not slower than hit (%v)", miss, hit)
	}
}

func TestRequestorAttribution(t *testing.T) {
	m, _, as := rig(SMT, 9)
	a := as.Resolve(as.Alloc(1))
	b := as.Resolve(as.Alloc(1))
	m.AddThread("zero", 0, func(e *Env) { e.Access(a); e.Access(a) })
	m.AddThread("one", 1, func(e *Env) { e.Access(b) })
	m.Run(1 << 40)
	l1 := m.cfg.Hier.L1()
	if got := l1.RequestorStats(0).Accesses; got != 2 {
		t.Errorf("requestor 0 accesses = %d", got)
	}
	if got := l1.RequestorStats(1).Accesses; got != 1 {
		t.Errorf("requestor 1 accesses = %d", got)
	}
}

func TestModeString(t *testing.T) {
	if SMT.String() != "hyper-threaded" || TimeSliced.String() != "time-sliced" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestEnvIdentity(t *testing.T) {
	m, _, _ := rig(SMT, 10)
	var name string
	var req int
	m.AddThread("sender", 3, func(e *Env) {
		name, req = e.Name(), e.Requestor()
	})
	m.Run(1 << 40)
	if name != "sender" || req != 3 {
		t.Errorf("identity = %q/%d", name, req)
	}
}

func TestNoGoroutineLeakAfterLimit(t *testing.T) {
	// Threads parked in infinite loops must be reaped by Run's cleanup;
	// this test passes if it terminates (the goroutines panic with the
	// kill sentinel when resumed after close).
	m, _, as := rig(SMT, 11)
	a := as.Resolve(as.Alloc(1))
	m.AddThread("spin1", 0, func(e *Env) {
		for {
			e.Access(a)
		}
	})
	m.AddThread("spin2", 1, func(e *Env) {
		for {
			e.Busy(100)
		}
	})
	m.Run(50_000)
}

func TestTimeSlicedDeterminism(t *testing.T) {
	trace := func() []byte {
		m, _, as := rig(TimeSliced, 12)
		a := as.Resolve(as.Alloc(1))
		var order []byte
		m.AddThread("A", 0, func(e *Env) {
			for {
				e.Access(a)
				order = append(order, 'A')
				e.Busy(5000)
			}
		})
		m.AddThread("B", 1, func(e *Env) {
			for {
				e.Busy(3000)
				order = append(order, 'B')
			}
		})
		m.Run(10_000_000)
		return order
	}
	a, b := trace(), trace()
	if string(a) != string(b) {
		t.Error("time-sliced runs with identical seeds diverged")
	}
}
