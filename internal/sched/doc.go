// Package sched executes simulated programs against a shared cache
// hierarchy under the two sharing settings of the paper's threat model
// (Section III): simultaneous multi-threading (two hyper-threads issuing
// in parallel on one physical core) and time-sliced sharing (processes
// alternating on the core under an OS round-robin scheduler).
//
// Programs are ordinary Go functions that receive an *Env and issue memory
// accesses, busy-waits and timer reads through it. Each program runs on its
// own goroutine, but execution is strictly cooperative — exactly one
// program runs at any instant, resumed and suspended by the scheduler
// around every charged action — so simulations are fully deterministic
// given the seed.
//
// Time accounting:
//
//   - SMT: each hardware thread has its own wall clock; the scheduler
//     always advances the thread whose current action completes earliest.
//     Per-action multiplicative jitter models issue-slot and port
//     contention between the hyper-threads, producing the irregular
//     interleaving the paper's channels experience.
//
//   - Time-sliced: a single core clock and a round-robin quantum. A
//     program's long busy-waits are consumed lazily across its own slices
//     while other programs run in between, so a receiver spinning for
//     Tr = 10^8 cycles costs the simulator only Tr/quantum scheduling
//     steps, not 10^8 events.
//
// The machine normally wraps a hier.Hierarchy (Env.Access / Measure);
// programs that model their memory system elsewhere — the scheduled
// key-recovery attack drives its Target adapters directly — may build
// a machine without one and charge latencies through Env.Busy.
package sched
