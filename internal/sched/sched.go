package sched

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/timing"
)

// Mode selects the core-sharing setting.
type Mode int

// Sharing settings.
const (
	// SMT runs all threads as simultaneous hyper-threads.
	SMT Mode = iota
	// TimeSliced runs threads under round-robin quanta.
	TimeSliced
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SMT:
		return "hyper-threaded"
	case TimeSliced:
		return "time-sliced"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a Machine.
type Config struct {
	Hier *hier.Hierarchy
	TSC  *timing.TSC
	RNG  *rng.Rand
	Mode Mode

	// Quantum is the time-slice length in cycles (default 1e6, roughly a
	// 0.3 ms tick at 3.8 GHz — scaled down from Linux's ~4 ms so that
	// experiments with Tr up to 10^8 cycles stay fast; the ratio of Tr
	// to quantum is what shapes Figure 6).
	Quantum uint64
	// CtxSwitch is the context-switch cost in cycles (default 2000).
	CtxSwitch uint64
	// SMTJitter is the relative amplitude of per-action latency jitter
	// under SMT (default 0.35).
	SMTJitter float64

	// FlushCost is the charged latency of a clflush (default 150 cycles,
	// matching the F+R(mem) encode costs of Table V being dominated by
	// the flush reaching memory).
	FlushCost uint64
}

func (c *Config) fillDefaults() {
	if c.Quantum == 0 {
		c.Quantum = 1_000_000
	}
	if c.CtxSwitch == 0 {
		c.CtxSwitch = 2000
	}
	if c.SMTJitter == 0 {
		c.SMTJitter = 0.35
	}
	if c.FlushCost == 0 {
		c.FlushCost = 150
	}
}

type yieldMsg struct {
	cycles uint64
	done   bool
}

type thread struct {
	name string
	req  int
	idx  int // position in Machine.threads, the scheduler's tie-break
	fn   func(*Env)

	resume chan struct{}
	yield  chan yieldMsg

	started bool
	done    bool

	// readyWall is, under SMT, the wall time at which the thread's most
	// recent action completes (i.e. when it may issue its next action).
	readyWall uint64
	// pendingBusy is, under time-slicing, the portion of the thread's
	// current action not yet consumed by its slices.
	pendingBusy uint64
	// wallNow is the thread-visible current time, updated before resume.
	wallNow uint64
}

type killSentinel struct{}

// Machine owns the threads and the shared hierarchy and advances time.
//
// The hot path is charge: every simulated action suspends the acting
// program for its cycle cost. Parking a goroutine and waking the
// scheduler costs two channel handoffs — three orders of magnitude more
// than the simulated cache access itself — so charge applies the cost
// inline and only parks when the scheduling decision could actually
// change (another thread is further behind, the time slice or the wall
// limit is exhausted, or the machine was stopped). The action order, and
// therefore every RNG draw and cache update, is bit-identical to the
// park-on-every-action implementation; the determinism and golden tests
// pin this.
type Machine struct {
	cfg     Config
	threads []*thread
	clock   uint64 // time-sliced core clock; under SMT, max of readyWalls
	limit   uint64 // Run's wall-clock limit, visible to charge's fast path
	// sliceEnd is the end of the current time slice (time-sliced mode),
	// visible to charge so a short action can be consumed inline.
	sliceEnd uint64
	ran      bool
	closed   bool
	stopped  bool
}

// New creates a machine. RNG must be non-nil. Hier and TSC may be nil
// for programs that model their memory system outside the shared
// hierarchy (the scheduled key-recovery attack drives its Target
// adapters directly and charges latencies through Busy); such programs
// must not call Access, AccessOp, Flush, Measure or MeasureSingle.
func New(cfg Config) *Machine {
	if cfg.RNG == nil {
		panic("sched: Config requires RNG")
	}
	cfg.fillDefaults()
	return &Machine{cfg: cfg}
}

// AddThread registers a program. req is the requestor id used for cache
// counter attribution. Threads must be added before Run.
func (m *Machine) AddThread(name string, req int, fn func(*Env)) {
	if m.ran {
		panic("sched: AddThread after Run")
	}
	m.threads = append(m.threads, &thread{
		name: name, req: req, idx: len(m.threads), fn: fn,
		resume: make(chan struct{}),
		yield:  make(chan yieldMsg, 1),
	})
}

// Run advances simulated time until every thread finishes or the given
// wall-time limit (in cycles) is reached, then reaps all threads. It may be
// called once per Machine.
func (m *Machine) Run(limit uint64) {
	if m.ran {
		panic("sched: Run called twice")
	}
	m.ran = true
	m.limit = limit
	switch m.cfg.Mode {
	case SMT:
		m.runSMT(limit)
	case TimeSliced:
		m.runTimeSliced(limit)
	default:
		panic(fmt.Sprintf("sched: unknown mode %d", int(m.cfg.Mode)))
	}
	m.close()
}

// Now returns the machine's idea of elapsed time: the core clock under
// time-slicing, or the furthest hardware-thread wall clock under SMT.
func (m *Machine) Now() uint64 {
	if m.cfg.Mode == TimeSliced {
		return m.clock
	}
	var max uint64
	for _, t := range m.threads {
		if t.readyWall > max {
			max = t.readyWall
		}
	}
	return max
}

func (m *Machine) start(t *thread) {
	t.started = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); ok {
					return // machine shut down while we were parked
				}
				panic(r)
			}
		}()
		t.fn(&Env{m: m, t: t})
		t.yield <- yieldMsg{done: true}
	}()
}

// step resumes t (starting it if necessary) and returns its next yield.
func (m *Machine) step(t *thread) yieldMsg {
	t.wallNow = m.threadNow(t)
	if !t.started {
		m.start(t)
	} else {
		t.resume <- struct{}{}
	}
	return <-t.yield
}

func (m *Machine) threadNow(t *thread) uint64 {
	if m.cfg.Mode == TimeSliced {
		return m.clock
	}
	return t.readyWall
}

// runSMT resumes the runnable thread whose clock is furthest behind.
// Action costs (including the SMT jitter draw) are applied by charge at
// the moment each action completes; a thread only parks — and control
// only returns here — when it is no longer the thread this loop would
// pick, so a burst of consecutive actions by one hyper-thread costs one
// goroutine handoff instead of one per action.
func (m *Machine) runSMT(limit uint64) {
	for {
		// Pick the runnable thread whose clock is furthest behind.
		var t *thread
		for _, c := range m.threads {
			if c.done {
				continue
			}
			if t == nil || c.readyWall < t.readyWall {
				t = c
			}
		}
		if t == nil || t.readyWall >= limit || m.stopped {
			return
		}
		if m.step(t).done {
			t.done = true
		}
	}
}

// wouldResumeSMT reports whether the SMT scheduler's pick — the
// lowest-indexed runnable thread with the smallest readyWall — would be
// t again. charge's fast path keeps t running exactly when this holds,
// which reproduces runSMT's selection order action for action.
func (m *Machine) wouldResumeSMT(t *thread) bool {
	for _, c := range m.threads {
		if c == t || c.done {
			continue
		}
		if c.readyWall < t.readyWall || (c.readyWall == t.readyWall && c.idx < t.idx) {
			return false
		}
	}
	return true
}

func (m *Machine) runTimeSliced(limit uint64) {
	if len(m.threads) == 0 {
		return
	}
	owner := 0
	m.sliceEnd = m.clock + m.cfg.Quantum
	rotate := func() {
		for i := 1; i <= len(m.threads); i++ {
			n := (owner + i) % len(m.threads)
			if !m.threads[n].done {
				if n != owner {
					m.clock += m.cfg.CtxSwitch
				}
				owner = n
				break
			}
		}
		m.sliceEnd = m.clock + m.cfg.Quantum
	}
	for m.clock < limit && !m.stopped {
		t := m.threads[owner]
		if t.done {
			allDone := true
			for _, c := range m.threads {
				if !c.done {
					allDone = false
					break
				}
			}
			if allDone {
				return
			}
			rotate()
			continue
		}
		if t.pendingBusy == 0 {
			msg := m.step(t)
			if msg.done {
				t.done = true
				continue
			}
			t.pendingBusy = msg.cycles
			if t.pendingBusy == 0 {
				t.pendingBusy = 1 // every action takes at least a cycle
			}
		}
		run := t.pendingBusy
		if avail := m.sliceEnd - m.clock; run > avail {
			run = avail
		}
		m.clock += run
		t.pendingBusy -= run
		if m.clock >= m.sliceEnd {
			rotate()
		}
	}
}

// close reaps every parked goroutine.
func (m *Machine) close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, t := range m.threads {
		if t.started && !t.done {
			close(t.resume)
			// Drain a possibly buffered yield so the goroutine is
			// not blocked on send (the buffer makes this moot, but
			// draining keeps the invariant obvious).
			select {
			case <-t.yield:
			default:
			}
		}
	}
}

// Env is the interface a simulated program uses to act on the machine.
// All methods must be called from the program's own goroutine.
type Env struct {
	m *Machine
	t *thread
}

// charge accounts c cycles of CPU time to the program. This is the
// simulator's hottest function: it runs once per simulated action,
// hundreds of millions of times per sweep.
//
// Fast path: the cost is applied inline — including the SMT jitter
// draw, taken at exactly the point in the global RNG order where the
// scheduler used to take it — and the program simply keeps running
// whenever the scheduler would have picked this same thread again
// (SMT: still the furthest-behind thread; time-sliced: the action fits
// inside the current slice). Only when the scheduling decision could
// change does the goroutine park and hand control back to the
// scheduler loop, so the two-channel-handoff cost is paid per
// interleaving point, not per action. The resulting action order is
// identical to parking on every action.
func (e *Env) charge(c uint64) {
	m, t := e.m, e.t
	if m.cfg.Mode == SMT {
		// Apply the jittered cost exactly as runSMT's collection point
		// used to: same condition, same float arithmetic, same draw.
		cost := float64(c)
		if m.cfg.SMTJitter > 0 && c > 0 {
			cost *= 1 + m.cfg.SMTJitter*m.cfg.RNG.Float64()
		}
		t.readyWall += uint64(cost + 0.5)
		t.wallNow = t.readyWall
		if !m.stopped && t.readyWall < m.limit && m.wouldResumeSMT(t) {
			return
		}
	} else {
		n := c
		if n == 0 {
			n = 1 // every action takes at least a cycle
		}
		if !m.stopped && m.clock+n < m.sliceEnd && m.clock+n < m.limit {
			m.clock += n
			t.wallNow = m.clock
			return
		}
	}
	t.yield <- yieldMsg{cycles: c}
	if _, ok := <-t.resume; !ok {
		panic(killSentinel{})
	}
}

// Name returns the thread's name.
func (e *Env) Name() string { return e.t.name }

// Requestor returns the thread's cache-attribution id.
func (e *Env) Requestor() int { return e.t.req }

// Now returns the thread's current wall-clock time in cycles. Reading it is
// free (the cost of rdtsc pacing reads is folded into the loop bodies that
// use them).
func (e *Env) Now() uint64 { return e.t.wallNow }

// requireHier makes misuse of a hierarchy-less machine diagnosable:
// the construction is legal (see New), but memory actions are not.
func (e *Env) requireHier() *hier.Hierarchy {
	h := e.m.cfg.Hier
	if h == nil {
		panic("sched: " + e.t.name + " issued a memory action on a machine built without a Hier")
	}
	return h
}

// Access performs a load and blocks for its latency.
func (e *Env) Access(a mem.Addr) hier.Result {
	res := e.requireHier().Load(a, e.t.req)
	e.charge(uint64(res.Latency))
	return res
}

// AccessOp performs a load with a PL-cache lock/unlock side effect.
func (e *Env) AccessOp(a mem.Addr, op cache.Op) hier.Result {
	res := e.requireHier().LoadOp(a, e.t.req, op)
	e.charge(uint64(res.Latency))
	return res
}

// Flush evicts the physical line from the whole hierarchy (clflush). The
// invalidation takes effect when the instruction completes — i.e. after the
// flush latency has elapsed — so a flush+reload loop leaves the line absent
// only for the brief window between the flush completing and the reload.
func (e *Env) Flush(a mem.Addr) {
	h := e.requireHier()
	e.charge(e.m.cfg.FlushCost)
	h.Flush(a.PhysLine)
}

// Busy consumes c cycles of CPU time without touching memory — the "do
// nothing" busy-wait of Algorithm 3.
func (e *Env) Busy(c uint64) {
	if c > 0 {
		e.charge(c)
	}
}

// BusyUntil spins until the thread's wall clock reaches deadline.
func (e *Env) BusyUntil(deadline uint64) {
	if now := e.Now(); deadline > now {
		e.charge(deadline - now)
	}
}

// Measure runs the pointer-chase probe against target, charging the
// serialized chain's cost, and returns the observation.
func (e *Env) Measure(c *timing.Chaser, target mem.Addr) timing.Measurement {
	meas := c.Measure(target)
	e.charge(uint64(meas.Observed))
	return meas
}

// MeasureSingle runs the naive single-access rdtscp measurement.
func (e *Env) MeasureSingle(c *timing.Chaser, target mem.Addr) timing.Measurement {
	meas := c.MeasureSingle(target)
	e.charge(uint64(meas.Observed))
	return meas
}

// RNG returns a generator the program may use (shared with the machine; all
// use is serialized by construction).
func (e *Env) RNG() *rng.Rand { return e.m.cfg.RNG }

// StopAll asks the machine to halt once the calling thread suspends:
// experiments end when their measurement thread has what it needs, even if
// sender or noise threads would spin forever. The request takes effect at
// the thread's next charge, so callers should simply return after it.
func (e *Env) StopAll() { e.m.stopped = true }
