// Package detect implements the performance-counter attack detector the
// paper argues the LRU channel evades (Sections VII and X, citing
// CloudRadar-style monitors): the root cause of classical cache channels is
// the sender's cache misses, so real-time detectors threshold per-process
// miss rates. Table VI's point is that the LRU sender's miss profile is
// indistinguishable from benign contention — this package makes that claim
// executable.
package detect

import (
	"fmt"

	"repro/internal/hier"
	"repro/internal/perfctr"
)

// Verdict is a detector decision for one monitored process.
type Verdict int

// Decisions.
const (
	Benign Verdict = iota
	Suspicious
)

// String names the verdict.
func (v Verdict) String() string {
	if v == Suspicious {
		return "suspicious"
	}
	return "benign"
}

// Thresholds configures the monitor. The defaults follow the shape of the
// published detectors: a process that keeps missing in L1 while also
// pushing traffic past the L2 at a high rate looks like a flush- or
// eviction-driven sender.
type Thresholds struct {
	// MinAccesses gates the decision: below this sample size the monitor
	// abstains (returns Benign).
	MinAccesses uint64
	// L1MissRate flags a sender whose L1D misses exceed this fraction.
	L1MissRate float64
	// L2MissRate flags heavy past-L2 traffic (flushes to memory).
	L2MissRate float64
	// MinL2Refs makes the L2 criterion meaningful only when the process
	// actually produced L2 traffic.
	MinL2Refs uint64
}

// DefaultThresholds returns the monitor configuration used in the
// evaluation: tuned so that the Flush+Reload senders of Table VI trip it
// while the benign "sender & gcc" baseline does not.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MinAccesses: 200,
		L1MissRate:  0.02,
		L2MissRate:  0.5,
		MinL2Refs:   50,
	}
}

// Monitor samples per-process counters from a hierarchy and classifies.
type Monitor struct {
	th Thresholds
}

// NewMonitor builds a monitor; zero-value thresholds take the defaults.
func NewMonitor(th Thresholds) *Monitor {
	if th == (Thresholds{}) {
		th = DefaultThresholds()
	}
	return &Monitor{th: th}
}

// Classify inspects one process's counters.
func (m *Monitor) Classify(rep perfctr.Report) Verdict {
	if rep.L1D.Accesses < m.th.MinAccesses {
		return Benign
	}
	if rep.L1D.MissRate() > m.th.L1MissRate {
		return Suspicious
	}
	if rep.L2.Accesses >= m.th.MinL2Refs && rep.L2.MissRate() > m.th.L2MissRate {
		return Suspicious
	}
	return Benign
}

// ClassifyProcess reads the counters for one requestor and classifies.
func (m *Monitor) ClassifyProcess(h *hier.Hierarchy, requestor int) Verdict {
	return m.Classify(perfctr.Collect(h, requestor))
}

// Explain renders the decision with the evidence, for reports.
func (m *Monitor) Explain(rep perfctr.Report) string {
	v := m.Classify(rep)
	return fmt.Sprintf("%s (L1D miss %.2f%% over %d refs, L2 miss %.2f%% over %d refs)",
		v, 100*rep.L1D.MissRate(), rep.L1D.Accesses,
		100*rep.L2.MissRate(), rep.L2.Accesses)
}
