// Package detect implements the performance-counter attack detector the
// paper argues the LRU channel evades (Sections VII and X, citing
// CloudRadar-style monitors): the root cause of classical cache channels is
// the sender's cache misses, so real-time detectors threshold per-process
// miss rates. Table VI's point is that the LRU sender's miss profile is
// indistinguishable from benign contention — this package makes that claim
// executable.
package detect

import (
	"fmt"

	"repro/internal/hier"
	"repro/internal/perfctr"
)

// Verdict is a detector decision for one monitored process.
type Verdict int

// Decisions.
const (
	Benign Verdict = iota
	Suspicious
)

// String names the verdict.
func (v Verdict) String() string {
	if v == Suspicious {
		return "suspicious"
	}
	return "benign"
}

// Thresholds configures the monitor. The defaults follow the shape of the
// published detectors: a process that keeps missing in L1 while also
// pushing traffic past the L2 at a high rate looks like a flush- or
// eviction-driven sender.
type Thresholds struct {
	// MinAccesses gates the decision: below this sample size the monitor
	// abstains (returns Benign).
	MinAccesses uint64
	// L1MissRate flags a sender whose L1D misses exceed this fraction.
	L1MissRate float64
	// L2MissRate flags heavy past-L2 traffic (flushes to memory).
	L2MissRate float64
	// MinL2Refs makes the L2 criterion meaningful only when the process
	// actually produced L2 traffic.
	MinL2Refs uint64

	// L1CrossEvictionRate flags a process whose reference stream keeps
	// displacing OTHER processes' L1 lines — the prime-and-probe
	// signature of the secret-recovery attacker, whose probe refills
	// displace a victim line every observation window while a working
	// process mostly churns its own data. Zero disables the criterion
	// (it is off in DefaultThresholds, preserving the paper's Table VI
	// monitor; AttackThresholds enables it).
	L1CrossEvictionRate float64
	// MinCrossEvictions gates the cross-eviction criterion on a minimum
	// amount of observed interference.
	MinCrossEvictions uint64
}

// DefaultThresholds returns the monitor configuration used in the
// evaluation: tuned so that the Flush+Reload senders of Table VI trip it
// while the benign "sender & gcc" baseline does not.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MinAccesses: 200,
		L1MissRate:  0.02,
		L2MissRate:  0.5,
		MinL2Refs:   50,
	}
}

// AttackThresholds returns the monitor configuration for the
// secret-recovery evaluation (internal/attack): the Table VI defaults
// plus the cross-eviction criterion, which catches the prime-and-probe
// attacker that the miss-rate rules alone let through (the attacker's
// own miss rate stays under the 2% line — the paper's stealth argument
// — but every one of its observation windows displaces a victim line).
func AttackThresholds() Thresholds {
	th := DefaultThresholds()
	th.L1CrossEvictionRate = 0.008
	th.MinCrossEvictions = 16
	return th
}

// Monitor samples per-process counters from a hierarchy and classifies.
type Monitor struct {
	th Thresholds
}

// NewMonitor builds a monitor; zero-value thresholds take the defaults.
func NewMonitor(th Thresholds) *Monitor {
	if th == (Thresholds{}) {
		th = DefaultThresholds()
	}
	return &Monitor{th: th}
}

// Classify inspects one process's counters.
func (m *Monitor) Classify(rep perfctr.Report) Verdict {
	v, _ := m.classify(rep)
	return v
}

// classify returns the verdict together with the reason: which
// threshold tripped, or why the monitor stayed quiet.
func (m *Monitor) classify(rep perfctr.Report) (Verdict, string) {
	if rep.L1D.Accesses < m.th.MinAccesses {
		return Benign, fmt.Sprintf("below the %d-access decision floor", m.th.MinAccesses)
	}
	// The cross-eviction criterion is consulted first when enabled: it
	// is the discriminative one (a benign memory-heavy program can
	// exceed any miss-rate line, but it churns its own working set —
	// systematically displacing another process's lines is the
	// prime-and-probe signature).
	if m.th.L1CrossEvictionRate > 0 && rep.L1D.CrossEvictions >= m.th.MinCrossEvictions &&
		rep.L1D.CrossEvictionRate() > m.th.L1CrossEvictionRate {
		return Suspicious, fmt.Sprintf("L1D cross-eviction rate %.2f%% > threshold %.2f%%",
			100*rep.L1D.CrossEvictionRate(), 100*m.th.L1CrossEvictionRate)
	}
	if rep.L1D.MissRate() > m.th.L1MissRate {
		return Suspicious, fmt.Sprintf("L1D miss rate %.2f%% > threshold %.2f%%",
			100*rep.L1D.MissRate(), 100*m.th.L1MissRate)
	}
	if rep.L2.Accesses >= m.th.MinL2Refs && rep.L2.MissRate() > m.th.L2MissRate {
		return Suspicious, fmt.Sprintf("L2 miss rate %.2f%% > threshold %.2f%%",
			100*rep.L2.MissRate(), 100*m.th.L2MissRate)
	}
	return Benign, "no threshold exceeded"
}

// ClassifyProcess reads the counters for one requestor and classifies.
func (m *Monitor) ClassifyProcess(h *hier.Hierarchy, requestor int) Verdict {
	return m.Classify(perfctr.Collect(h, requestor))
}

// Explain renders the decision with the evidence and names the
// threshold that triggered it (or states that none did), for reports.
func (m *Monitor) Explain(rep perfctr.Report) string {
	v, reason := m.classify(rep)
	return fmt.Sprintf("%s (%s; L1D miss %.2f%% over %d refs, L2 miss %.2f%% over %d refs)",
		v, reason, 100*rep.L1D.MissRate(), rep.L1D.Accesses,
		100*rep.L2.MissRate(), rep.L2.Accesses)
}
