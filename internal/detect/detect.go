// Package detect implements the performance-counter attack detector the
// paper argues the LRU channel evades (Sections VII and X, citing
// CloudRadar-style monitors): the root cause of classical cache channels is
// the sender's cache misses, so real-time detectors threshold per-process
// miss rates. Table VI's point is that the LRU sender's miss profile is
// indistinguishable from benign contention — this package makes that claim
// executable.
//
// The monitor's criteria are data, not code: each Rule names a derived
// metric from the internal/metrics expression layer ("l1d.miss_rate" =
// "l1d.misses / l1d.accesses") and the threshold it is compared against,
// so Explain can cite the exact formula a verdict was computed from.
package detect

import (
	"fmt"
	"strings"

	"repro/internal/hier"
	"repro/internal/metrics"
	"repro/internal/perfctr"
)

// Verdict is a detector decision for one monitored process.
type Verdict int

// Decisions.
const (
	Benign Verdict = iota
	Suspicious
)

// String names the verdict.
func (v Verdict) String() string {
	if v == Suspicious {
		return "suspicious"
	}
	return "benign"
}

// Thresholds configures the monitor. The defaults follow the shape of the
// published detectors: a process that keeps missing in L1 while also
// pushing traffic past the L2 at a high rate looks like a flush- or
// eviction-driven sender.
type Thresholds struct {
	// MinAccesses gates the decision: below this sample size the monitor
	// abstains (returns Benign).
	MinAccesses uint64
	// L1MissRate flags a sender whose L1D misses exceed this fraction.
	L1MissRate float64
	// L2MissRate flags heavy past-L2 traffic (flushes to memory).
	L2MissRate float64
	// MinL2Refs makes the L2 criterion meaningful only when the process
	// actually produced L2 traffic.
	MinL2Refs uint64

	// L1CrossEvictionRate flags a process whose reference stream keeps
	// displacing OTHER processes' L1 lines — the prime-and-probe
	// signature of the secret-recovery attacker, whose probe refills
	// displace a victim line every observation window while a working
	// process mostly churns its own data. Zero disables the criterion
	// (it is off in DefaultThresholds, preserving the paper's Table VI
	// monitor; AttackThresholds enables it).
	L1CrossEvictionRate float64
	// MinCrossEvictions gates the cross-eviction criterion on a minimum
	// amount of observed interference.
	MinCrossEvictions uint64
}

// DefaultThresholds returns the monitor configuration used in the
// evaluation: tuned so that the Flush+Reload senders of Table VI trip it
// while the benign "sender & gcc" baseline does not.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MinAccesses: 200,
		L1MissRate:  0.02,
		L2MissRate:  0.5,
		MinL2Refs:   50,
	}
}

// AttackThresholds returns the monitor configuration for the
// secret-recovery evaluation (internal/attack): the Table VI defaults
// plus the cross-eviction criterion, which catches the prime-and-probe
// attacker that the miss-rate rules alone let through (the attacker's
// own miss rate stays under the 2% line — the paper's stealth argument
// — but every one of its observation windows displaces a victim line).
func AttackThresholds() Thresholds {
	th := DefaultThresholds()
	th.L1CrossEvictionRate = 0.008
	th.MinCrossEvictions = 16
	return th
}

// Gate is a precondition on a Rule: the named event must have reached
// Min before the rule's metric is even consulted (sample-size floors).
type Gate struct {
	Event string
	Min   float64
}

// Rule is one detector criterion as data: a named derived metric from
// the metrics-definition layer, the threshold it is compared against
// (strict >), and the gates that make the comparison meaningful. Label
// is the human name used in Explain output.
type Rule struct {
	Metric    string
	Label     string
	Threshold float64
	Gates     []Gate
}

// rules compiles the configured thresholds into the ordered criterion
// table. The cross-eviction criterion comes first when enabled: it is
// the discriminative one (a benign memory-heavy program can exceed any
// miss-rate line, but it churns its own working set — systematically
// displacing another process's lines is the prime-and-probe signature).
func (th Thresholds) rules() []Rule {
	var rules []Rule
	if th.L1CrossEvictionRate > 0 {
		rules = append(rules, Rule{
			Metric: "l1d.cross_eviction_rate", Label: "L1D cross-eviction rate",
			Threshold: th.L1CrossEvictionRate,
			Gates:     []Gate{{Event: "l1d.cross_evictions", Min: float64(th.MinCrossEvictions)}},
		})
	}
	rules = append(rules,
		Rule{Metric: "l1d.miss_rate", Label: "L1D miss rate", Threshold: th.L1MissRate},
		Rule{Metric: "l2.miss_rate", Label: "L2 miss rate", Threshold: th.L2MissRate,
			Gates: []Gate{{Event: "l2.accesses", Min: float64(th.MinL2Refs)}}},
	)
	return rules
}

// Monitor samples per-process counters from a hierarchy and classifies.
type Monitor struct {
	th    Thresholds
	rules []Rule
	set   *metrics.Set
}

// NewMonitor builds a monitor; zero-value thresholds take the defaults.
func NewMonitor(th Thresholds) *Monitor {
	if th == (Thresholds{}) {
		th = DefaultThresholds()
	}
	return &Monitor{th: th, rules: th.rules(), set: metrics.Default()}
}

// Rules returns the compiled criterion table, in evaluation order.
func (m *Monitor) Rules() []Rule {
	return append([]Rule(nil), m.rules...)
}

// Classify inspects one process's counters.
func (m *Monitor) Classify(rep perfctr.Report) Verdict {
	v, _ := m.classify(rep)
	return v
}

// classify returns the verdict together with the reason: which rule
// tripped (citing its defining expression), or why the monitor stayed
// quiet.
func (m *Monitor) classify(rep perfctr.Report) (Verdict, string) {
	if rep.L1D.Accesses < m.th.MinAccesses {
		return Benign, fmt.Sprintf("below the %d-access decision floor", m.th.MinAccesses)
	}
	es := metrics.Snapshot(rep)
	for _, rule := range m.rules {
		gated := false
		for _, g := range rule.Gates {
			if es[g.Event] < g.Min {
				gated = true
				break
			}
		}
		if gated {
			continue
		}
		v, err := m.set.Eval(rule.Metric, es)
		if err != nil {
			continue // metric over events the report did not emit (no LLC, say)
		}
		if v > rule.Threshold {
			return Suspicious, fmt.Sprintf("%s %.2f%% > threshold %.2f%% [%s = %s]",
				rule.Label, 100*v, 100*rule.Threshold, rule.Metric, m.set.ExprOf(rule.Metric))
		}
	}
	return Benign, "no threshold exceeded"
}

// ClassifyProcess reads the counters for one requestor and classifies.
func (m *Monitor) ClassifyProcess(h *hier.Hierarchy, requestor int) Verdict {
	return m.Classify(perfctr.Collect(h, requestor))
}

// Explain renders the decision with the evidence and names the rule
// that triggered it (or states that none did), for reports. The
// evidence block always shows the miss-rate metrics; the cross-eviction
// rate and count are included whenever that criterion is enabled.
func (m *Monitor) Explain(rep perfctr.Report) string {
	v, reason := m.classify(rep)
	es := metrics.Snapshot(rep)
	rate := func(name string) float64 {
		r, err := m.set.Eval(name, es)
		if err != nil {
			return 0
		}
		return r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s; L1D miss %.2f%% over %d refs, L2 miss %.2f%% over %d refs",
		v, reason, 100*rate("l1d.miss_rate"), rep.L1D.Accesses,
		100*rate("l2.miss_rate"), rep.L2.Accesses)
	if m.th.L1CrossEvictionRate > 0 {
		fmt.Fprintf(&b, ", L1D cross-eviction %.2f%% (%d displaced)",
			100*rate("l1d.cross_eviction_rate"), rep.L1D.CrossEvictions)
	}
	b.WriteString(")")
	return b.String()
}
