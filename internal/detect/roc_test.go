package detect

import (
	"math"
	"testing"

	"repro/internal/perfctr"
)

// report builds a synthetic counter view with the given L1 geometry.
func report(accesses, misses, crossEv uint64) perfctr.Report {
	var rep perfctr.Report
	rep.L1D.Level = "L1D"
	rep.L1D.Accesses = accesses
	rep.L1D.Misses = misses
	rep.L1D.Evictions = crossEv
	rep.L1D.CrossEvictions = crossEv
	rep.L2.Level = "L2"
	return rep
}

func repeat(rep perfctr.Report, n int) []perfctr.Report {
	out := make([]perfctr.Report, n)
	for i := range out {
		out[i] = rep
	}
	return out
}

// A cleanly separable population must sweep to AUC 1 and a perfect
// operating point at the deployed threshold.
func TestROCSeparable(t *testing.T) {
	pos := repeat(report(10_000, 100, 150), 8) // 1.5% cross rate, 1% misses
	neg := repeat(report(10_000, 100, 20), 8)  // 0.2% cross rate
	roc := SweepCrossEvictionThreshold(pos, neg, DefaultThresholds(), DefaultROCThresholds())
	if roc.AUC != 1.0 {
		t.Errorf("separable AUC = %v, want 1.0", roc.AUC)
	}
	p := roc.PointAt(AttackThresholds().L1CrossEvictionRate)
	if p.TPR != 1.0 || p.FPR != 0.0 {
		t.Errorf("deployed point TPR=%v FPR=%v, want 1, 0", p.TPR, p.FPR)
	}
	if roc.PosN != 8 || roc.NegN != 8 {
		t.Errorf("sample sizes %d/%d, want 8/8", roc.PosN, roc.NegN)
	}
}

// An indistinguishable population must sweep to AUC 0.5 (every swept
// point has TPR == FPR, so the anchored staircase is the diagonal).
func TestROCIndistinguishable(t *testing.T) {
	rep := report(10_000, 100, 100)
	roc := SweepCrossEvictionThreshold(repeat(rep, 4), repeat(rep, 4),
		DefaultThresholds(), DefaultROCThresholds())
	if math.Abs(roc.AUC-0.5) > 1e-12 {
		t.Errorf("identical populations AUC = %v, want 0.5", roc.AUC)
	}
}

// Lowering the threshold can only add flags: both rates must be
// monotone non-decreasing along the default (descending) grid, and the
// +Inf point must reflect only the fixed miss-rate rules.
func TestROCMonotoneAlongGrid(t *testing.T) {
	pos := []perfctr.Report{
		report(10_000, 100, 150),
		report(10_000, 100, 60),
		report(10_000, 3000, 10), // miss-rate rule catches this one at any threshold
	}
	neg := []perfctr.Report{
		report(10_000, 100, 25),
		report(10_000, 100, 5),
	}
	roc := SweepCrossEvictionThreshold(pos, neg, DefaultThresholds(), DefaultROCThresholds())
	for i := 1; i < len(roc.Points); i++ {
		if roc.Points[i].TPR < roc.Points[i-1].TPR || roc.Points[i].FPR < roc.Points[i-1].FPR {
			t.Fatalf("curve not monotone at grid point %d: %+v -> %+v",
				i, roc.Points[i-1], roc.Points[i])
		}
	}
	if first := roc.Points[0]; !math.IsInf(first.Threshold, 1) || first.TPR != 1.0/3 {
		t.Errorf("criterion-off point = %+v, want TPR 1/3 (the miss-rate catch)", first)
	}
}

// The gates must hold during a sweep: a process below the decision
// floor or the minimum cross-eviction count stays benign even at the
// tightest threshold.
func TestROCRespectsGates(t *testing.T) {
	base := AttackThresholds()
	small := report(base.MinAccesses-1, 0, base.MinCrossEvictions+10)
	few := report(10_000, 0, base.MinCrossEvictions-1)
	roc := SweepCrossEvictionThreshold(
		[]perfctr.Report{small, few}, nil, base, DefaultROCThresholds())
	for _, p := range roc.Points {
		if p.TPR != 0 {
			t.Fatalf("gated processes flagged at threshold %v", p.Threshold)
		}
	}
}

// Empty populations must not panic and must report zero rates.
func TestROCEmptyPopulations(t *testing.T) {
	roc := SweepCrossEvictionThreshold(nil, nil, DefaultThresholds(), DefaultROCThresholds())
	if roc.PosN != 0 || roc.NegN != 0 {
		t.Fatalf("sample sizes %d/%d", roc.PosN, roc.NegN)
	}
	for _, p := range roc.Points {
		if p.TPR != 0 || p.FPR != 0 {
			t.Fatalf("empty populations produced rates %+v", p)
		}
	}
	if math.Abs(roc.AUC-0.5) > 1e-12 {
		t.Errorf("degenerate AUC = %v, want the diagonal 0.5", roc.AUC)
	}
}

func TestPointAtPicksClosest(t *testing.T) {
	roc := ROC{Points: []ROCPoint{
		{Threshold: math.Inf(1), TPR: 0.1},
		{Threshold: 0.01, TPR: 0.5},
		{Threshold: 0.001, TPR: 0.9},
	}}
	if p := roc.PointAt(0.008); p.Threshold != 0.01 {
		t.Errorf("PointAt(0.008) picked %v", p.Threshold)
	}
	if p := roc.PointAt(math.Inf(1)); !math.IsInf(p.Threshold, 1) {
		t.Errorf("PointAt(+Inf) picked %v", p.Threshold)
	}
}
