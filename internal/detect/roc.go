package detect

// The ROC sweep: the monitor of this package decides at ONE operating
// point (the thresholds it was built with), which is how the paper and
// the Table VI reproduction report detection — a single verdict per
// process. "Security Analysis of Cache Replacement Policies" (Cañones
// et al.) frames why that is not enough: a detector's worth is its
// whole threshold-sensitivity curve, because a deployment that cannot
// tolerate false positives will run a lax threshold and a paranoid one
// a tight threshold, and two defenses can order differently at
// different points. This file sweeps the monitor's cross-eviction
// criterion — the one that catches the LRU-state attacker — across a
// threshold grid and reports the resulting ROC curve: attacker
// true-positive rate against benign-workload false-positive rate, with
// the area under the curve as the scalar summary.

import (
	"math"
	"sort"

	"repro/internal/perfctr"
)

// ROCPoint is one operating point of a threshold sweep.
type ROCPoint struct {
	// Threshold is the L1 cross-eviction rate above which the monitor
	// flags a process (+Inf disables the criterion: only the fixed
	// miss-rate rules remain).
	Threshold float64
	// TPR is the fraction of attacker processes flagged; FPR the
	// fraction of benign processes flagged.
	TPR, FPR float64
}

// ROC is the curve swept over a threshold grid, most conservative
// (highest threshold) first.
type ROC struct {
	Points []ROCPoint
	// AUC is the trapezoidal area under the curve through the swept
	// points, anchored at (0,0) and (1,1) — the "throttle the detector
	// randomly" interpolation standard for stepwise detectors.
	AUC float64
	// PosN and NegN are the sample sizes behind the rates.
	PosN, NegN int
}

// ROCBaseThresholds is the monitor configuration the ROC sweep varies:
// the decision gates kept, the classic miss-rate rules disabled, and
// the cross-eviction criterion live (its rate is what the grid
// replaces). The miss-rate rules are a fixed, separate detector — their
// verdicts cannot move with the swept threshold, and against the
// Figure 9 suite at L1 scale they fire on essentially every process
// (cache-stressing benchmarks miss constantly), which would pin the
// false-positive rate at 1 and flatten every curve. Disabling them
// isolates the criterion whose threshold sensitivity is under study.
func ROCBaseThresholds() Thresholds {
	return Thresholds{
		MinAccesses:         200,
		L1MissRate:          math.Inf(1),
		L2MissRate:          math.Inf(1),
		MinL2Refs:           50,
		L1CrossEvictionRate: AttackThresholds().L1CrossEvictionRate,
		MinCrossEvictions:   AttackThresholds().MinCrossEvictions,
	}
}

// DefaultROCThresholds is the sweep grid: from the criterion fully off
// (+Inf), through the deployed AttackThresholds operating point
// (0.008), down to a hair above zero. The grid is fixed so that swept
// curves are directly comparable — and golden-pinnable — across
// defenses and runs.
func DefaultROCThresholds() []float64 {
	return []float64{
		math.Inf(1), 0.1, 0.05, 0.02, 0.01, 0.008,
		0.005, 0.002, 0.001, 0.0005, 0.0001,
	}
}

// SweepCrossEvictionThreshold classifies every report under the full
// monitor — base's miss-rate rules unchanged — at each cross-eviction
// threshold of the grid, and returns the ROC curve. Because lowering
// the threshold can only add Suspicious verdicts, the curve is
// monotone along the grid.
func SweepCrossEvictionThreshold(pos, neg []perfctr.Report, base Thresholds, thresholds []float64) ROC {
	roc := ROC{PosN: len(pos), NegN: len(neg)}
	for _, th := range thresholds {
		t := base
		t.L1CrossEvictionRate = th
		m := NewMonitor(t)
		roc.Points = append(roc.Points, ROCPoint{
			Threshold: th,
			TPR:       flaggedFraction(m, pos),
			FPR:       flaggedFraction(m, neg),
		})
	}
	roc.AUC = auc(roc.Points)
	return roc
}

// PointAt returns the swept point closest to the given threshold (the
// deployed operating point, usually), or a zero point when the curve
// is empty.
func (r ROC) PointAt(threshold float64) ROCPoint {
	var best ROCPoint
	bestDist := math.Inf(1)
	for _, p := range r.Points {
		d := math.Abs(p.Threshold - threshold)
		if math.IsInf(p.Threshold, 1) && math.IsInf(threshold, 1) {
			d = 0
		}
		if d < bestDist {
			bestDist = d
			best = p
		}
	}
	return best
}

func flaggedFraction(m *Monitor, reps []perfctr.Report) float64 {
	if len(reps) == 0 {
		return 0
	}
	flagged := 0
	for _, rep := range reps {
		if m.Classify(rep) == Suspicious {
			flagged++
		}
	}
	return float64(flagged) / float64(len(reps))
}

// auc integrates the (FPR, TPR) staircase by trapezoid, anchored at
// (0,0) and (1,1).
func auc(points []ROCPoint) float64 {
	type xy struct{ x, y float64 }
	pts := make([]xy, 0, len(points)+2)
	pts = append(pts, xy{0, 0}, xy{1, 1})
	for _, p := range points {
		pts = append(pts, xy{p.FPR, p.TPR})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].x != pts[j].x {
			return pts[i].x < pts[j].x
		}
		return pts[i].y < pts[j].y
	})
	var area float64
	for i := 1; i < len(pts); i++ {
		area += (pts[i].x - pts[i-1].x) * (pts[i].y + pts[i-1].y) / 2
	}
	return area
}
