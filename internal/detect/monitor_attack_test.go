package detect_test

// The detection side of the secret-recovery subsystem, end to end: the
// monitor classifies a real attack run's processes — attacker flagged,
// victim clean — and its explanation names the threshold that fired.
// (External test package: internal/attack imports detect, so this
// lives in detect_test to keep the import graph acyclic.)

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/detect"
	"repro/internal/perfctr"
	"repro/internal/replacement"
	"repro/internal/victim"
)

func runAttack(t *testing.T, vname string) attack.Result {
	t.Helper()
	v, err := victim.ByName(vname, 64)
	if err != nil {
		t.Fatal(err)
	}
	secret := victim.DemoSecret(v, 8, 21)
	return attack.Run(attack.Config{
		Victim: v, Policy: replacement.TreePLRU, Seed: 13,
	}, secret)
}

// TestMonitorClassifiesAttackRuns is the end-to-end satellite: every
// victim kind's attack run yields a flagged attacker and a clean
// victim under the attack thresholds.
func TestMonitorClassifiesAttackRuns(t *testing.T) {
	for _, vname := range victim.Names() {
		res := runAttack(t, vname)
		if res.AttackerVerdict != detect.Suspicious {
			t.Errorf("%s: attacker process %v, want suspicious\n%s",
				vname, res.AttackerVerdict, res.AttackerExplain)
		}
		if res.VictimVerdict != detect.Benign {
			t.Errorf("%s: victim process %v, want benign\n%s",
				vname, res.VictimVerdict, res.VictimExplain)
		}
	}
}

// The extended Explain names the triggering threshold on both kinds of
// verdict.
func TestExplainNamesTriggeringThreshold(t *testing.T) {
	res := runAttack(t, "ttable")
	if !strings.Contains(res.AttackerExplain, "threshold") {
		t.Errorf("suspicious explanation lacks the threshold: %q", res.AttackerExplain)
	}
	if !strings.Contains(res.AttackerExplain, "cross-eviction") {
		t.Errorf("attacker should trip the cross-eviction criterion: %q", res.AttackerExplain)
	}
	if !strings.Contains(res.VictimExplain, "no threshold exceeded") {
		t.Errorf("benign explanation lacks the reason: %q", res.VictimExplain)
	}

	// The miss-rate criterion names itself too.
	m := detect.NewMonitor(detect.Thresholds{})
	var rep perfctr.Report
	rep.L1D.Accesses, rep.L1D.Misses = 1000, 1000
	out := m.Explain(rep)
	if !strings.Contains(out, "L1D miss rate") || !strings.Contains(out, "threshold") {
		t.Errorf("miss-rate explanation incomplete: %q", out)
	}
}

// The stock Table VI thresholds must be unchanged by the new criterion
// (it is disabled by default): a heavy cross-evictor with a benign miss
// profile stays benign under DefaultThresholds and turns suspicious
// only under AttackThresholds.
func TestCrossEvictionCriterionIsOptIn(t *testing.T) {
	var rep perfctr.Report
	rep.L1D.Accesses = 10_000
	rep.L1D.Misses = 100 // 1%: under the 2% line
	rep.L1D.Evictions = 100
	rep.L1D.CrossEvictions = 100 // 1%: over the 0.8% attack line

	if v := detect.NewMonitor(detect.DefaultThresholds()).Classify(rep); v != detect.Benign {
		t.Errorf("default monitor classified %v; the new criterion must be opt-in", v)
	}
	if v := detect.NewMonitor(detect.AttackThresholds()).Classify(rep); v != detect.Suspicious {
		t.Errorf("attack monitor classified %v; cross-evictions should trip it", v)
	}
}
