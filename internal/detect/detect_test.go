package detect

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/perfctr"
	"repro/internal/sched"
)

func smtSetup(seed uint64) *core.Setup {
	return core.NewSetup(core.Config{
		Algorithm: core.Alg1SharedMemory, Mode: sched.SMT,
		Tr: 600, Ts: 6000, Seed: seed,
	})
}

func TestVerdictString(t *testing.T) {
	if Benign.String() != "benign" || Suspicious.String() != "suspicious" {
		t.Error("verdict strings")
	}
}

func TestMonitorAbstainsOnTinySamples(t *testing.T) {
	m := NewMonitor(Thresholds{})
	rep := perfctr.Report{}
	rep.L1D.Accesses, rep.L1D.Misses = 10, 10
	if m.Classify(rep) != Benign {
		t.Error("monitor decided on 10 accesses")
	}
}

// The Section VII / Table VI claim, end to end: a miss-rate monitor flags
// the Flush+Reload sender but NOT the LRU-channel sender.
func TestLRUChannelEvadesDetector(t *testing.T) {
	m := NewMonitor(Thresholds{})

	// Flush+Reload (mem) sender: flagged.
	sFR := smtSetup(1)
	baseline.New(baseline.FlushReloadMem, sFR).Run([]byte{1, 0}, true, 600, 1<<40)
	if v := m.ClassifyProcess(sFR.Hier, core.ReqSender); v != Suspicious {
		t.Errorf("F+R sender classified %v; detector should catch it\n%s",
			v, m.Explain(perfctrCollect(sFR)))
	}

	// LRU sender: not flagged, despite actively exfiltrating.
	sLRU := smtSetup(2)
	sLRU.Run([]byte{1, 0}, true, 300, 1<<40)
	if v := m.ClassifyProcess(sLRU.Hier, core.ReqSender); v != Benign {
		t.Errorf("LRU sender classified %v; the channel should be stealthy\n%s",
			v, m.Explain(perfctrCollect(sLRU)))
	}
}

func TestAlg2SenderAlsoEvades(t *testing.T) {
	m := NewMonitor(Thresholds{})
	s := core.NewSetup(core.Config{
		Algorithm: core.Alg2NoSharedMemory, Mode: sched.SMT,
		Tr: 600, Ts: 6000, D: 1, Seed: 3,
	})
	s.Run([]byte{1, 0}, true, 300, 1<<40)
	if v := m.ClassifyProcess(s.Hier, core.ReqSender); v != Benign {
		t.Errorf("Algorithm 2 sender classified %v", v)
	}
}

func TestExplainMentionsEvidence(t *testing.T) {
	m := NewMonitor(Thresholds{})
	s := smtSetup(4)
	s.Run([]byte{1}, true, 100, 1<<40)
	out := m.Explain(perfctrCollect(s))
	if !strings.Contains(out, "L1D miss") || !strings.Contains(out, "benign") {
		t.Errorf("explanation incomplete: %q", out)
	}
}

func TestCustomThresholdsRespected(t *testing.T) {
	strict := NewMonitor(Thresholds{MinAccesses: 1, L1MissRate: 0, L2MissRate: 2, MinL2Refs: 1 << 62})
	rep := perfctr.Report{}
	rep.L1D.Accesses, rep.L1D.Misses = 100, 1
	if strict.Classify(rep) != Suspicious {
		t.Error("zero-tolerance L1 threshold did not trip")
	}
}

func perfctrCollect(s *core.Setup) perfctr.Report {
	return perfctr.Collect(s.Hier, core.ReqSender)
}
