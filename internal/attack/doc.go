// Package attack implements the attacker side of the secret-recovery
// LRU side channel: replacement-state probe primitives over the cache
// under attack, a profiling phase that builds per-secret-value
// templates, and a template classifier that recovers key nibbles or
// exponent bits with confidence scores.
//
// The protocol per monitored set is the paper's Algorithm 2 reshaped
// for one-shot secret recovery: the attacker PRIMES the set by loading
// its own `ways` lines in a fixed order, which both fills the ways and
// leaves the replacement state in a canonical, history-free
// configuration (every way was just touched in known order). The
// victim then runs one event window containing its single
// secret-dependent access, which advances the replacement state and —
// because the set is full of attacker lines — displaces the line in
// the policy's victim way. The attacker PROBES by reloading its lines
// in the same fixed order, recording which of them miss: the miss
// pattern reveals which way the victim's access promoted, and the
// reloads themselves re-prime the set for the next window.
//
// Two axes generalize that baseline protocol:
//
//   - The probe strategy (Probe). The canonical full prime above
//     erases what it measures: its own pass of touches overwrites the
//     replacement state, so a victim access that only UPDATES state
//     without displacing anything — a hit on a Partition-Locked
//     cache's locked line, the paper's Figure 11 top leak — is
//     invisible to it. The d-split partial prime (ProbeDSplit, the
//     Figure 11 d=1 operating point) touches only d ways before the
//     victim's window and probes the remainder after it, reporting
//     masks relative to the set's undisturbed steady orbit, which is
//     exactly sensitive to that update. See probe.go.
//
//   - The execution schedule (Schedule). The synchronous baseline runs
//     the victim's window between prime and probe in lockstep — an
//     idealized attack-driven sequencing. The scheduled modes run both
//     parties as internal/sched threads on an SMT or time-sliced
//     machine, pacing themselves by wall clock with no
//     synchronization, so probe windows drift against the victim's
//     events and the classifier needs more votes (MinVotes prices the
//     difference). See sched.go.
//
// The same protocol runs unchanged against every secure-cache design
// of Section IX through the Target interface (target.go), which is
// what turns internal/secure from isolated demos into defenses
// evaluated against a real attack.
package attack
