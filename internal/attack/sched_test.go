package attack

import (
	"testing"

	"repro/internal/replacement"
)

func TestParseProbeRoundTrip(t *testing.T) {
	for _, p := range Probes() {
		got, err := ParseProbe(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProbe(%q) = %v, %v", p.String(), got, err)
		}
	}
	for in, want := range map[string]Probe{
		"full": ProbeFull(), "canonical": ProbeFull(),
		"d1": ProbeDSplit(1), "d=1": ProbeDSplit(1), "d=3": ProbeDSplit(3),
		"dsplit": ProbeDSplit(1),
	} {
		got, err := ParseProbe(in)
		if err != nil || got != want {
			t.Errorf("ParseProbe(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"d0", "d=-1", "partial7", "x"} {
		if _, err := ParseProbe(bad); err == nil {
			t.Errorf("ParseProbe(%q) accepted", bad)
		}
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	for _, s := range Schedules() {
		got, err := ParseSchedule(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSchedule(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSchedule("quantum"); err == nil {
		t.Error("unknown schedule accepted")
	}
}

func TestProbeSplitClamps(t *testing.T) {
	if d := ProbeFull().split(8); d != 0 {
		t.Errorf("full split = %d", d)
	}
	if d := ProbeDSplit(1).split(8); d != 1 {
		t.Errorf("d=1 split = %d", d)
	}
	// At least one way must remain to probe.
	if d := ProbeDSplit(99).split(4); d != 3 {
		t.Errorf("oversized split = %d, want ways-1", d)
	}
}

// The d-split partial prime is the operating point that separates the
// PL-cache variants for key recovery (the Figure 11 distinction): the
// original design's locked-line replacement-state update leaks through
// it, the fixed design stays at chance.
func TestDSplitSeparatesPLVariants(t *testing.T) {
	cfg, secret := ttableConfig(DefensePLCache, replacement.TreePLRU, 7)
	cfg.Probe = ProbeDSplit(1)
	leak := Run(cfg, secret)

	fixCfg, _ := ttableConfig(DefensePLCacheFixed, replacement.TreePLRU, 7)
	fixCfg.Probe = ProbeDSplit(1)
	fixed := Run(fixCfg, secret)

	chance := ChanceGuesses(cfg.Victim)
	if leak.MeanGuesses > 0.7*chance {
		t.Errorf("plcache d=1 guesses %.1f not clearly below chance %.1f — the locked-line leak is gone",
			leak.MeanGuesses, chance)
	}
	if leak.RecoveryRate <= 1.0/float64(cfg.Victim.SymbolSpace()) {
		t.Errorf("plcache d=1 recovery %.2f at or below chance", leak.RecoveryRate)
	}
	if fixed.MeanGuesses < 0.7*chance {
		t.Errorf("plcache-fix d=1 guesses %.1f below chance %.1f — the fix should close the leak",
			fixed.MeanGuesses, chance)
	}
	if fixed.RecoveryRate > 0.2 {
		t.Errorf("plcache-fix d=1 recovery %.2f, want chance level", fixed.RecoveryRate)
	}
}

// The d-split must not cost the unprotected baseline: full recovery,
// like the canonical prime.
func TestDSplitRecoversBaseline(t *testing.T) {
	cfg, secret := ttableConfig(DefenseNone, replacement.TreePLRU, 7)
	cfg.Probe = ProbeDSplit(1)
	if res := Run(cfg, secret); res.RecoveryRate != 1.0 {
		t.Errorf("baseline d=1 recovery %.2f, want 1.0", res.RecoveryRate)
	}
}

// The scheduled attack — victim and attacker as sched threads with no
// synchronization — must still recover the key on the baseline cache,
// in both sharing modes, for the policies of the paper's family.
func TestScheduledRecoversBaseline(t *testing.T) {
	for _, sc := range []Schedule{ScheduleSMT, ScheduleTimeSliced} {
		for _, pol := range []replacement.Kind{replacement.TrueLRU, replacement.TreePLRU} {
			cfg, secret := ttableConfig(DefenseNone, pol, 7)
			cfg.Schedule = sc
			cfg.Votes = 6
			res := Run(cfg, secret)
			if res.RecoveryRate != 1.0 {
				t.Errorf("%v/%v: recovery %.2f, want 1.0", sc, pol, res.RecoveryRate)
			}
			if res.Schedule != sc {
				t.Errorf("%v: result schedule %v", sc, res.Schedule)
			}
		}
	}
}

// Scheduled runs are bit-deterministic in the seed, like everything
// else in the simulator.
func TestScheduledDeterministic(t *testing.T) {
	cfg, secret := ttableConfig(DefenseNone, replacement.TreePLRU, 11)
	cfg.Schedule = ScheduleSMT
	a, b := Run(cfg, secret), Run(cfg, secret)
	if a.RecoveryRate != b.RecoveryRate || a.MeanGuesses != b.MeanGuesses {
		t.Fatal("identical scheduled configs diverge")
	}
	for i := range a.Recovered {
		if a.Recovered[i] != b.Recovered[i] {
			t.Fatalf("scheduled recovered symbol %d differs across identical runs", i)
		}
	}
}

// MinVotes finds the sync baseline quickly and reports failure
// honestly when the ceiling is too low.
func TestMinVotes(t *testing.T) {
	cfg, secret := ttableConfig(DefenseNone, replacement.TreePLRU, 7)
	n, ok := MinVotes(cfg, secret, 6)
	if !ok || n < 1 || n > 6 {
		t.Errorf("sync MinVotes = %d, %v", n, ok)
	}
	dawgCfg, _ := ttableConfig(DefenseDAWG, replacement.TreePLRU, 7)
	if _, ok := MinVotes(dawgCfg, secret, 2); ok {
		t.Error("MinVotes claims recovery through DAWG")
	}
}
