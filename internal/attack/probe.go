package attack

import (
	"fmt"
	"strconv"
	"strings"
)

// Probe selects the attacker's per-window probe strategy — how the
// prime and probe phases split the attacker's lines around the victim's
// event window.
//
// The zero value is the canonical full prime: every attacker line is
// reloaded after the victim's window in one fixed-order pass, which
// both records the miss mask and re-primes the set for the next window.
// Its strength is a history-free, canonical replacement state at the
// start of every window; its weakness — established by the PL-cache
// rows of the attack matrix — is that the full pass of touches largely
// overwrites whatever the victim's single access did to the
// replacement state, so the original PL cache's locked-line LRU update
// (the Figure 11 top leak) is invisible to it.
//
// D >= 1 selects the d-split partial prime, the key-recovery restating
// of Algorithm 2's split parameter at the paper's Figure 11 d=1
// operating point: lines 0..D-1 are accessed at the START of the
// window (the initialization phase, before the victim's event), and
// only the remaining ways are probed after it. The replacement state
// is deliberately NOT canonicalized between windows, so the victim's
// single replacement-state update — including a hit on a locked line
// under the original PL cache — steers which attacker line the
// next overflow miss displaces, and the miss mask carries it.
type Probe struct {
	// D is the split parameter: 0 = canonical full prime, >= 1 = the
	// number of lines accessed in the initialization phase of the
	// d-split partial prime. Values >= the attacker's way count are
	// clamped to ways-1 (at least one way must remain to probe).
	D int
}

// ProbeFull is the canonical full-prime strategy (the zero value).
func ProbeFull() Probe { return Probe{} }

// ProbeDSplit is the d-split partial prime with the given split.
// ProbeDSplit(1) is the Figure 11 d=1 operating point.
func ProbeDSplit(d int) Probe {
	if d < 1 {
		d = 1
	}
	return Probe{D: d}
}

// String names the strategy ("full" or "d=1", "d=2", ...).
func (p Probe) String() string {
	if p.D <= 0 {
		return "full"
	}
	return fmt.Sprintf("d=%d", p.D)
}

// ParseProbe maps a probe name back to its value, for flags: "full"
// (or "canonical"), and "d=1" / "d1" / "dsplit" for the partial prime.
func ParseProbe(s string) (Probe, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	switch t {
	case "full", "canonical", "":
		return ProbeFull(), nil
	case "dsplit", "partial":
		return ProbeDSplit(1), nil
	}
	if rest, ok := strings.CutPrefix(t, "d"); ok {
		rest = strings.TrimPrefix(rest, "=")
		if d, err := strconv.Atoi(rest); err == nil && d >= 1 {
			return ProbeDSplit(d), nil
		}
	}
	return Probe{}, fmt.Errorf("attack: unknown probe %q (want full or d=N)", s)
}

// Probes lists the evaluated strategies, in presentation order.
func Probes() []Probe {
	return []Probe{ProbeFull(), ProbeDSplit(1)}
}

// split resolves the strategy against the attacker's way count: the
// number of lines accessed before the victim's window (0 under the
// canonical strategy) while the remainder is probed after it.
func (p Probe) split(ways int) int {
	if p.D <= 0 {
		return 0
	}
	d := p.D
	if d > ways-1 {
		d = ways - 1
	}
	if d < 0 {
		d = 0
	}
	return d
}
