package attack

import (
	"math"
	"sync"
	"testing"

	"repro/internal/replacement"
	"repro/internal/victim"
)

// fuzzTemplate is built once: a real profiled template (ttable victim,
// baseline target), so the fuzzer exercises the classifier against the
// same populated data structure the attack uses.
var fuzzTemplateOnce = sync.OnceValue(func() *Template {
	v, err := victim.ByName("ttable", 64)
	if err != nil {
		panic(err)
	}
	return Profile(Config{Victim: v, Policy: replacement.TreePLRU, ProfilingRounds: 2, Seed: 3})
})

func checkPosterior(t *testing.T, post []float64, space int) {
	t.Helper()
	if len(post) != space {
		t.Fatalf("posterior length %d, want %d", len(post), space)
	}
	sum := 0.0
	for _, p := range post {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			t.Fatalf("invalid probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %v", sum)
	}
}

// FuzzTemplateClassify feeds arbitrary observation vectors (any length,
// any mask values, including ones no real probe can produce) to the
// classifier: it must never panic and must always return a full,
// normalized candidate distribution.
func FuzzTemplateClassify(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xff, 0x01, 0x80, 0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20})
	f.Fuzz(func(t *testing.T, raw []byte) {
		tmpl := fuzzTemplateOnce()
		// Interpret the fuzz input as an observation: two bytes per
		// mask so mask values beyond any real probe width appear too.
		obs := make(Observation, 0, len(raw)/2+1)
		for i := 0; i+1 < len(raw); i += 2 {
			obs = append(obs, uint16(raw[i])|uint16(raw[i+1])<<8)
		}
		checkPosterior(t, tmpl.Classify(obs), tmpl.SymbolSpace())
		checkPosterior(t, tmpl.ClassifyMany([]Observation{obs, obs}), tmpl.SymbolSpace())
		checkPosterior(t, tmpl.ClassifyMany(nil), tmpl.SymbolSpace())
	})
}

// FuzzTemplateAddClassify interleaves hostile Add calls (out-of-range
// symbols, oversized observations) with classification on a fresh
// template: totality must hold for a template in any state.
func FuzzTemplateAddClassify(f *testing.F) {
	f.Add(int16(0), []byte{1, 2, 3})
	f.Add(int16(-5), []byte{})
	f.Add(int16(300), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, symbol int16, raw []byte) {
		tmpl := NewTemplate(4, 3, 8)
		obs := make(Observation, 0, len(raw))
		for _, b := range raw {
			obs = append(obs, uint16(b))
		}
		tmpl.Add(int(symbol), obs)
		tmpl.Add(0, obs)
		checkPosterior(t, tmpl.Classify(obs), 4)
	})
}
