package attack

import "math"

// Observation is what one probe pass yields: for every monitored set,
// a bitmask of which attacker lines missed on the reload (bit i set =
// line i missed). An all-zero mask means the set was untouched; a
// non-zero mask encodes which way the victim's access promoted and the
// eviction echo it caused under the policy in play.
type Observation []uint16

// clone copies an observation (probe buffers are reused).
func (o Observation) clone() Observation {
	c := make(Observation, len(o))
	copy(c, o)
	return c
}

// laplaceAlpha is the add-α smoothing constant of the per-cell
// categorical distributions. Unseen masks get probability
// α/(total+α·K) so the classifier never assigns zero likelihood.
const laplaceAlpha = 0.5

// Template is the product of the profiling phase: for every (secret
// symbol, monitored set) cell, the empirical distribution over
// observed miss masks. Classification is naive-Bayes across sets —
// the per-set distributions multiply — which matches the protocol:
// given the symbol, the per-set observations are (approximately)
// independent.
type Template struct {
	space int // number of secret symbol values
	nsets int // monitored sets per observation
	ways  int // probe lines per set (mask width)

	counts []map[uint16]int // [symbol*nsets+set] -> mask -> count
	totals []int            // [symbol*nsets+set]
}

// NewTemplate allocates an empty template for the given symbol space,
// monitored-set count and probe width. It panics on a non-positive
// symbol space (a victim always has one).
func NewTemplate(space, nsets, ways int) *Template {
	if space < 1 {
		panic("attack: template needs a positive symbol space")
	}
	if nsets < 0 {
		nsets = 0
	}
	t := &Template{space: space, nsets: nsets, ways: ways}
	t.counts = make([]map[uint16]int, space*nsets)
	t.totals = make([]int, space*nsets)
	for i := range t.counts {
		t.counts[i] = make(map[uint16]int)
	}
	return t
}

// SymbolSpace returns the number of secret values the template covers.
func (t *Template) SymbolSpace() int { return t.space }

// Add records one profiling observation for a known symbol. Symbols
// outside the space and observation entries beyond the monitored-set
// count are ignored (profiling only ever passes valid ones; the guard
// keeps the type total).
func (t *Template) Add(symbol int, obs Observation) {
	if symbol < 0 || symbol >= t.space {
		return
	}
	n := len(obs)
	if n > t.nsets {
		n = t.nsets
	}
	for s := 0; s < n; s++ {
		i := symbol*t.nsets + s
		t.counts[i][obs[s]]++
		t.totals[i]++
	}
}

// maskSpace is the smoothing denominator's category count: every
// possible miss mask plus one bucket for anything else.
func (t *Template) maskSpace() float64 {
	w := t.ways
	if w < 1 {
		w = 1
	}
	if w > 16 {
		w = 16
	}
	return float64(uint32(1)<<w) + 1
}

// logLikelihood returns log P(obs | symbol) under the template, with
// add-α smoothing. Observations of any length are accepted: entries
// beyond the template's set count are ignored, missing entries simply
// contribute no evidence.
func (t *Template) logLikelihood(symbol int, obs Observation) float64 {
	k := t.maskSpace()
	var ll float64
	n := len(obs)
	if n > t.nsets {
		n = t.nsets
	}
	for s := 0; s < n; s++ {
		i := symbol*t.nsets + s
		cnt := float64(t.counts[i][obs[s]])
		tot := float64(t.totals[i])
		ll += math.Log((cnt + laplaceAlpha) / (tot + laplaceAlpha*k))
	}
	return ll
}

// Classify returns the posterior candidate distribution over secret
// symbols for a single observation: a full, normalized probability
// vector of length SymbolSpace (uniform prior). It never panics, for
// any observation contents or length.
func (t *Template) Classify(obs Observation) []float64 {
	return t.ClassifyMany([]Observation{obs})
}

// ClassifyMany fuses several independent observations of the same
// secret symbol (the attack's repeated voting windows) by summing log
// likelihoods, and returns the normalized posterior. With no
// observations (or an empty template) the posterior is uniform.
func (t *Template) ClassifyMany(obss []Observation) []float64 {
	lls := make([]float64, t.space)
	for _, obs := range obss {
		for v := 0; v < t.space; v++ {
			lls[v] += t.logLikelihood(v, obs)
		}
	}
	return normalizePosterior(lls)
}

// normalizePosterior turns log likelihoods into a probability vector
// via the log-sum-exp trick, falling back to uniform when the inputs
// are degenerate (all -Inf or NaN — possible only for hostile inputs,
// but the classifier must stay total).
func normalizePosterior(lls []float64) []float64 {
	out := make([]float64, len(lls))
	if len(lls) == 0 {
		return out
	}
	max := math.Inf(-1)
	for _, ll := range lls {
		if ll > max {
			max = ll
		}
	}
	var sum float64
	if !math.IsInf(max, -1) && !math.IsNaN(max) {
		for i, ll := range lls {
			out[i] = math.Exp(ll - max)
			sum += out[i]
		}
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// rankOf returns the 1-based rank of the true symbol in the posterior:
// 1 + the number of symbols with strictly higher probability, plus
// earlier-indexed ties (the deterministic order a guessing attacker
// would enumerate). This is the per-symbol "guesses to first correct".
func rankOf(post []float64, truth int) int {
	if truth < 0 || truth >= len(post) {
		return len(post)
	}
	rank := 1
	for v, p := range post {
		if p > post[truth] || (p == post[truth] && v < truth) {
			rank++
		}
	}
	return rank
}
