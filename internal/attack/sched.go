package attack

// The scheduler-native attack: instead of the synchronous, attack-driven
// sequencing of the original subsystem (victim window, then probe, in
// lockstep), victim and attacker run as internal/sched threads on an
// SMT or time-sliced machine. The victim paces itself by wall clock —
// one secret symbol per SymbolPeriod cycles — and the attacker paces
// Votes probe windows per period on its own deadlines, bucketing each
// window by the symbol period it nominally covers. Neither party
// observes the other's progress: windows drift against the victim's
// event under per-access SMT jitter or time-slice quantization, probes
// catch events mid-sequence or miss them entirely, and the classifier
// pays for it in votes — which is exactly the overhead MinVotes
// measures against the synchronous baseline.

import (
	"fmt"
	"strings"

	"repro/internal/rng"
	"repro/internal/sched"
)

// Schedule selects how victim and attacker execute.
type Schedule int

// The execution disciplines.
const (
	// ScheduleSync is the synchronous attack-driven baseline: the
	// attacker runs the victim's event window between its prime and
	// probe phases, in lockstep, with no simulated time.
	ScheduleSync Schedule = iota
	// ScheduleSMT runs victim and attacker as hyper-threads of one
	// physical core (per-access jitter from issue contention).
	ScheduleSMT
	// ScheduleTimeSliced alternates victim and attacker on one core
	// under round-robin quanta (probe windows quantized to slices).
	ScheduleTimeSliced
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleSync:
		return "sync"
	case ScheduleSMT:
		return "smt"
	case ScheduleTimeSliced:
		return "tslice"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// ParseSchedule maps a schedule name back to its value, for flags.
func ParseSchedule(s string) (Schedule, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sync", "synchronous", "":
		return ScheduleSync, nil
	case "smt", "hyperthreaded", "hyper-threaded":
		return ScheduleSMT, nil
	case "tslice", "timesliced", "time-sliced", "ts":
		return ScheduleTimeSliced, nil
	default:
		return 0, fmt.Errorf("attack: unknown schedule %q (want sync, smt or tslice)", s)
	}
}

// Schedules lists every schedule, in evaluation order.
func Schedules() []Schedule {
	return []Schedule{ScheduleSync, ScheduleSMT, ScheduleTimeSliced}
}

// mode maps a scheduled discipline onto the sched.Machine mode.
func (s Schedule) mode() sched.Mode {
	if s == ScheduleTimeSliced {
		return sched.TimeSliced
	}
	return sched.SMT
}

// roundRobinStream is the profiling phase's symbol schedule: rounds
// repetitions of 0..space-1, the same interleaving the synchronous
// profiling loop uses, so every template cell sees the same
// steady-state history mix.
func roundRobinStream(space, rounds int) []int {
	out := make([]int, 0, space*rounds)
	for round := 0; round < rounds; round++ {
		for v := 0; v < space; v++ {
			out = append(out, v)
		}
	}
	return out
}

// scheduleStream runs one symbol stream through a scheduled machine
// built over the session's target and returns the attacker's
// observations bucketed by symbol index. The session must be freshly
// built (newSession warms and settles the target synchronously, so the
// machine starts from the protocol's steady state).
//
// The victim thread processes stream[i] during wall period
// [i·P, (i+1)·P), placing its event window a quarter period in; the
// attacker thread runs cfg.Votes probe windows per period at its own
// wall-clock deadlines and labels each window with the period it
// nominally covers. Labels are exact — the attacker knows its own
// schedule — but execution is not: under SMT every access cost
// jitters, and under time-slicing a deadline reached mid-quantum slips
// to the thread's next slice.
func scheduleStream(cfg Config, s *session, stream []int, seed uint64) [][]Observation {
	period := cfg.SymbolPeriod
	votes := cfg.Votes
	if votes < 1 {
		votes = 1
	}
	wp := period / uint64(votes)
	if wp == 0 {
		wp = 1
	}
	buckets := make([][]Observation, len(stream))

	m := sched.New(sched.Config{
		RNG:     rng.New(seed ^ 0x5c4ed11e),
		Mode:    cfg.Schedule.mode(),
		Quantum: cfg.Quantum,
	})
	// The attacker is thread 0: under time-slicing it owns the first
	// quantum, mirroring the synchronous protocol's attacker-first
	// ordering (the set is primed before the victim's first event).
	completed := 0
	m.AddThread("attacker", ReqAttacker, func(e *sched.Env) {
		total := len(stream) * votes
		for w := 0; w < total; w++ {
			deadline := uint64(w) * wp
			e.BusyUntil(deadline)
			if w%votes == 0 {
				// Symbol-period boundary: re-reference the d-split
				// orbit (no-op under the canonical strategy).
				s.reprime(e)
			}
			s.prime(e)
			// Sit out the middle of the window so the victim's event
			// has wall time to land between the phases.
			e.BusyUntil(deadline + wp/2)
			s.probe(e)
			obs := s.observed()
			s.windows++
			idx := w / votes
			buckets[idx] = append(buckets[idx], obs)
			completed = w + 1
		}
		// The attack is over once the last window is probed; don't
		// leave the victim spinning to the wall-clock limit.
		e.StopAll()
	})
	m.AddThread("victim", ReqVictim, func(e *sched.Env) {
		for i, sym := range stream {
			// The victim keeps processing events while a symbol is
			// live (a server runs many operations under one key
			// nibble), paced a quarter window past each attacker
			// deadline — between the prime and probe phases when both
			// parties are on schedule, and drifting across them under
			// scheduling jitter.
			for k := 0; k < votes; k++ {
				e.BusyUntil(uint64(i)*period + uint64(k)*wp + wp/4)
				s.victimWindow(e, sym)
			}
		}
	})
	m.Run(uint64(len(stream)+2) * period)
	// Every bucket gets exactly `votes` observations by construction
	// (labels follow the attacker's own window index), so a shortfall
	// means the wall-clock limit truncated the attack: the configured
	// SymbolPeriod cannot fit the probe windows it promises. Failing
	// loudly beats classifying empty buckets as uniform posteriors.
	if completed < len(stream)*votes {
		panic(fmt.Sprintf(
			"attack: scheduled run truncated after %d of %d windows — SymbolPeriod %d is too small for %d votes of probe work per symbol",
			completed, len(stream)*votes, period, votes))
	}
	return buckets
}

// MinVotes searches for the smallest per-symbol vote count at which
// the configured attack recovers the secret exactly, up to maxVotes.
// It reports the vote count and whether full recovery was reached —
// the metric that prices scheduling jitter: the scheduled attack needs
// MinVotes(scheduled) − MinVotes(sync) extra windows per symbol.
func MinVotes(cfg Config, secret []int, maxVotes int) (int, bool) {
	if maxVotes < 1 {
		maxVotes = 1
	}
	for votes := 1; votes <= maxVotes; votes++ {
		c := cfg
		c.Votes = votes
		if Run(c, secret).RecoveryRate == 1.0 {
			return votes, true
		}
	}
	return maxVotes, false
}
