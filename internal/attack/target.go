package attack

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/perfctr"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/secure"
	"repro/internal/uarch"
)

// Requestor ids: the victim matches core.ReqSender (it is the
// information source), the attacker the receiver.
const (
	ReqVictim   = 0
	ReqAttacker = 1
)

// Defense selects the cache design under attack.
type Defense int

// The evaluated designs (Section IX).
const (
	// DefenseNone is the unprotected baseline hierarchy.
	DefenseNone Defense = iota
	// DefensePLCache is the original Partition-Locked cache: the
	// victim's table lines are locked, but hits on locked lines still
	// update replacement state (the Figure 11 top leak).
	DefensePLCache
	// DefensePLCacheFixed adds the paper's fix: locked-line hits and
	// bypassed misses leave the replacement state untouched.
	DefensePLCacheFixed
	// DefenseRandomFill is the random-fill cache: misses are served
	// uncached and a random neighbour is filled instead.
	DefenseRandomFill
	// DefenseDAWG partitions ways AND replacement state per domain.
	DefenseDAWG
)

// String names the defense.
func (d Defense) String() string {
	switch d {
	case DefenseNone:
		return "none"
	case DefensePLCache:
		return "plcache"
	case DefensePLCacheFixed:
		return "plcache-fix"
	case DefenseRandomFill:
		return "randomfill"
	case DefenseDAWG:
		return "dawg"
	default:
		return fmt.Sprintf("Defense(%d)", int(d))
	}
}

// ParseDefense maps a defense name back to its value, for flags.
func ParseDefense(s string) (Defense, error) {
	switch strings.ToLower(strings.ReplaceAll(s, "_", "-")) {
	case "none", "baseline":
		return DefenseNone, nil
	case "plcache", "pl":
		return DefensePLCache, nil
	case "plcache-fix", "plcachefix", "pl-fix":
		return DefensePLCacheFixed, nil
	case "randomfill", "rf", "random-fill":
		return DefenseRandomFill, nil
	case "dawg":
		return DefenseDAWG, nil
	default:
		return 0, fmt.Errorf("attack: unknown defense %q", s)
	}
}

// Defenses lists every defense, in evaluation-matrix order.
func Defenses() []Defense {
	return []Defense{DefenseNone, DefensePLCache, DefensePLCacheFixed, DefenseRandomFill, DefenseDAWG}
}

// Target is the cache under attack as both parties see it: loads by
// requestor, a victim-table warm-up hook, and performance counters for
// the detection verdict. Implementations adapt the baseline hierarchy
// and each internal/secure defense to this one surface so the attack
// protocol runs unchanged across the whole defense matrix.
type Target interface {
	// Access performs one load and reports whether it hit at L1 speed
	// — the attacker's (and victim's) only architectural observable.
	Access(line uint64, requestor int) bool
	// WarmVictim makes the victim's table lines resident before the
	// attack (and locks them, under a PL cache), the paper's standing
	// "the victim's data is already cached" precondition.
	WarmVictim(lines []uint64)
	// AttackerWays is how many ways of each set the attacker can
	// occupy: the full associativity, except under DAWG where the
	// attacker owns only its own partition.
	AttackerWays() int
	// Report renders one requestor's performance counters for the
	// detection monitor.
	Report(requestor int) perfctr.Report
	// ResetStats zeroes the counters; the attack session calls it once
	// after its warm-up so the monitor judges the steady phase (a real
	// monitor samples rates over sliding windows, which amortizes any
	// process's cold-start fill burst away).
	ResetStats()
}

// RandomFillWindow is the canonical ±line half-width of the random-fill
// neighbourhood, matching secure.RandomFillLeakExperiment.
const RandomFillWindow = 16

// TargetConfig parameterizes NewTargetCfg beyond the canonical
// four-argument form: today only the random-fill window, the knob the
// leakage leaderboard sweeps.
type TargetConfig struct {
	Defense Defense
	Profile uarch.Profile
	Policy  replacement.Kind
	// Seed feeds only the defenses that need randomness (random fill).
	Seed uint64
	// FillWindow is the random-fill neighbourhood half-width in lines;
	// 0 selects the canonical RandomFillWindow. Ignored by the other
	// defenses.
	FillWindow uint64
}

// NewTarget builds the cache under attack: geometry from the profile,
// the given L1 replacement policy, and the chosen defense.
func NewTarget(d Defense, prof uarch.Profile, pol replacement.Kind, seed uint64) Target {
	return NewTargetCfg(TargetConfig{Defense: d, Profile: prof, Policy: pol, Seed: seed})
}

// NewTargetCfg is NewTarget with the extended configuration surface.
func NewTargetCfg(cfg TargetConfig) Target {
	prof := cfg.Profile
	switch cfg.Defense {
	case DefenseNone, DefensePLCache, DefensePLCacheFixed:
		h := hier.New(hier.Config{
			Profile:  prof,
			L1Policy: cfg.Policy, L2Policy: replacement.TreePLRU,
			RNG:                    rng.New(cfg.Seed),
			PartitionLockedL1:      cfg.Defense != DefenseNone,
			LockReplacementStateL1: cfg.Defense == DefensePLCacheFixed,
		})
		return &hierTarget{h: h, lock: cfg.Defense != DefenseNone, ways: prof.L1Ways}
	case DefenseRandomFill:
		window := cfg.FillWindow
		if window == 0 {
			window = RandomFillWindow
		}
		return &rfTarget{
			rf:   secure.NewRandomFillWithPolicy(prof.L1Sets, prof.L1Ways, window, cfg.Policy, rng.New(cfg.Seed)),
			ways: prof.L1Ways,
		}
	case DefenseDAWG:
		const domains = 2
		return &dawgTarget{
			d:       secure.NewDAWGWithPolicy(prof.L1Sets, prof.L1Ways, domains, cfg.Policy),
			waysPer: prof.L1Ways / domains,
		}
	default:
		panic(fmt.Sprintf("attack: unknown defense %d", int(cfg.Defense)))
	}
}

// lineAddr packages a physical line number as a resolved address (the
// attack's address spaces are identity-mapped: the channel only cares
// about set indices, which virtual and physical addresses share).
func lineAddr(line uint64) mem.Addr {
	return mem.Addr{Virt: line * 64, Phys: line * 64, VirtLine: line, PhysLine: line}
}

// BatchTarget is the optional batch surface of a Target: loads of
// lines in order on behalf of requestor with the hit bits written to
// hits, bit-identical to per-line Access calls. The synchronous attack
// session routes its prime/probe passes through it when the target
// provides one.
type BatchTarget interface {
	AccessBatch(lines []uint64, requestor int, hits []bool)
}

// hierTarget adapts the full hierarchy (baseline and both PL-cache
// variants).
type hierTarget struct {
	h    *hier.Hierarchy
	lock bool
	ways int

	// Scratch buffers of AccessBatch, reused across passes.
	baddrs []mem.Addr
	bres   []hier.Result
}

func (t *hierTarget) Access(line uint64, requestor int) bool {
	res := t.h.Load(lineAddr(line), requestor)
	return res.Level == hier.LevelL1 && !res.UtagMiss
}

func (t *hierTarget) AccessBatch(lines []uint64, requestor int, hits []bool) {
	if cap(t.baddrs) < len(lines) {
		t.baddrs = make([]mem.Addr, len(lines))
		t.bres = make([]hier.Result, len(lines))
	}
	addrs, res := t.baddrs[:len(lines)], t.bres[:len(lines)]
	for i, ln := range lines {
		addrs[i] = lineAddr(ln)
	}
	t.h.LoadBatch(addrs, requestor, res)
	for i := range res {
		hits[i] = res[i].Level == hier.LevelL1 && !res[i].UtagMiss
	}
}

func (t *hierTarget) WarmVictim(lines []uint64) {
	op := cache.OpLoad
	if t.lock {
		op = cache.OpLock
	}
	for _, ln := range lines {
		// Two loads: the first may fill only L2 (or be bypassed), the
		// second lands (and locks) the line in L1.
		t.h.LoadOp(lineAddr(ln), ReqVictim, op)
		t.h.LoadOp(lineAddr(ln), ReqVictim, op)
	}
}

func (t *hierTarget) AttackerWays() int { return t.ways }

func (t *hierTarget) Report(requestor int) perfctr.Report {
	return perfctr.Collect(t.h, requestor)
}

func (t *hierTarget) ResetStats() { t.h.ResetStats() }

// rfTarget adapts the random-fill cache. Warm-up goes through the
// inner cache (the table was demand-filled before the defense-relevant
// window, as in secure.RandomFillLeakExperiment); runtime accesses take
// the random-fill path, so the attacker cannot deterministically
// re-establish lines the defense refuses to fill.
type rfTarget struct {
	rf   *secure.RandomFillCache
	ways int
}

func (t *rfTarget) Access(line uint64, requestor int) bool {
	return t.rf.Access(line, requestor).Hit
}

func (t *rfTarget) WarmVictim(lines []uint64) {
	for _, ln := range lines {
		t.rf.Inner().Access(cache.Request{PhysLine: ln, Requestor: ReqVictim})
	}
}

func (t *rfTarget) AttackerWays() int { return t.ways }

func (t *rfTarget) Report(requestor int) perfctr.Report {
	return perfctr.FromL1Stats(requestor, t.rf.Inner().RequestorStats(requestor))
}

func (t *rfTarget) ResetStats() { t.rf.Inner().ResetStats() }

// dawgTarget adapts the way-partitioned cache: requestor == protection
// domain, and the attacker sizes its prime to its own partition. The
// DAWG model keeps no counters, so the adapter accounts accesses
// itself (evictions stay inside a domain by construction, so
// cross-domain evictions are structurally zero).
type dawgTarget struct {
	d       *secure.DAWGCache
	waysPer int
	stats   [2]cache.Stats
}

func (t *dawgTarget) Access(line uint64, requestor int) bool {
	hit := t.d.Access(line, requestor)
	s := &t.stats[requestor]
	s.Accesses++
	if hit {
		s.Hits++
	} else {
		s.Misses++
	}
	return hit
}

func (t *dawgTarget) WarmVictim(lines []uint64) {
	for _, ln := range lines {
		t.Access(ln, ReqVictim)
	}
}

func (t *dawgTarget) AttackerWays() int { return t.waysPer }

func (t *dawgTarget) Report(requestor int) perfctr.Report {
	return perfctr.FromL1Stats(requestor, t.stats[requestor])
}

func (t *dawgTarget) ResetStats() { t.stats = [2]cache.Stats{} }
