package attack

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/perfctr"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/internal/victim"
)

// attackerTagBase keeps the attacker's prime/probe lines in a tag
// range disjoint from every victim traffic class (see internal/victim).
const attackerTagBase = 1 << 16

// Config parameterizes one end-to-end key-recovery attack.
type Config struct {
	// Victim is the program under attack (required).
	Victim victim.Victim
	// Defense selects the cache design (default: unprotected).
	Defense Defense
	// Policy is the L1 replacement policy (the zero value is true LRU;
	// pass replacement.TreePLRU for the paper's evaluated parts).
	Policy replacement.Kind
	// Profile supplies the cache geometry (default Sandy Bridge).
	Profile uarch.Profile
	// Votes is the number of observation windows fused per secret
	// symbol (default 4).
	Votes int
	// ProfilingRounds is how many windows per symbol value the
	// profiling phase collects (default 8).
	ProfilingRounds int
	// Seed drives every random choice (default 0x5eed).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Profile.Name == "" {
		c.Profile = uarch.SandyBridge()
	}
	if c.Votes == 0 {
		c.Votes = 4
	}
	if c.ProfilingRounds == 0 {
		c.ProfilingRounds = 8
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Result is the outcome of one attack run.
type Result struct {
	VictimName string
	Defense    Defense
	Policy     replacement.Kind

	// Secret and Recovered are the planted and guessed symbol strings.
	Secret, Recovered []int
	// Posteriors[i] is the fused candidate distribution for symbol i.
	Posteriors [][]float64
	// Confidence[i] is the posterior mass of the recovered symbol.
	Confidence []float64

	// RecoveryRate is the fraction of symbols recovered exactly.
	RecoveryRate float64
	// MeanGuesses is the mean 1-based rank of the true symbol in the
	// posterior — the expected guesses-to-first-correct per symbol
	// (1.0 = perfect, SymbolSpace/2-ish = chance).
	MeanGuesses float64
	// Confusion[t][g] counts symbols of true value t recovered as g.
	Confusion [][]int

	// Windows counts every observation window the attack ran
	// (profiling + exploitation).
	Windows int

	// Detection verdicts from the perfctr monitor over the live run's
	// counters: is the attack observable while it runs, and does the
	// victim stay clean?
	AttackerVerdict, VictimVerdict detect.Verdict
	AttackerExplain, VictimExplain string
	AttackerReport, VictimReport   perfctr.Report
}

// session is one instantiated target+victim pair with the attacker's
// probe apparatus: the profiling replica and the live run each get
// their own.
type session struct {
	tg    Target
	v     victim.Victim
	sets  []int
	lines [][]uint64 // attacker lines per monitored set
	r     *rng.Rand
	obs   Observation // reusable probe buffer

	windows int
}

// newSession builds the cache under attack, warms (and under PL locks)
// the victim's table, and primes every monitored set.
func newSession(cfg Config, seed uint64) *session {
	s := &session{
		tg:   NewTarget(cfg.Defense, cfg.Profile, cfg.Policy, seed),
		v:    cfg.Victim,
		sets: cfg.Victim.MonitorSets(),
		r:    rng.New(seed ^ 0xa77ac4),
	}
	ways := s.tg.AttackerWays()
	totalSets := cfg.Profile.L1Sets
	s.lines = make([][]uint64, len(s.sets))
	for i, set := range s.sets {
		s.lines[i] = make([]uint64, ways)
		for w := 0; w < ways; w++ {
			s.lines[i][w] = uint64(attackerTagBase+w)*uint64(totalSets) + uint64(set%totalSets)
		}
	}
	s.obs = make(Observation, len(s.sets))

	s.tg.WarmVictim(s.v.TableLines())
	// The victim faults in its benign working set, like any program
	// touching its data at startup.
	for _, ln := range s.v.WarmLines() {
		s.tg.Access(ln, ReqVictim)
	}
	// Initial prime, then one settling pass so every monitored set
	// reaches the protocol's steady state (occupancy and replacement
	// state canonical) before the first real window. The counters are
	// then cleared: the detection verdict judges the attack's steady
	// phase, not the one-off cold fill.
	s.probe()
	s.probe()
	s.tg.ResetStats()
	return s
}

// probe reloads the attacker's lines of every monitored set in fixed
// order, recording the miss mask per set. The reloads re-prime the set
// as they go, so probe doubles as the prime step of the next window.
func (s *session) probe() Observation {
	for i := range s.sets {
		var mask uint16
		for w, ln := range s.lines[i] {
			if !s.tg.Access(ln, ReqAttacker) {
				mask |= 1 << uint(w)
			}
		}
		s.obs[i] = mask
	}
	return s.obs
}

// window runs one event: the victim processes one secret symbol, then
// the attacker probes. The returned observation is owned by the caller.
func (s *session) window(symbol int) Observation {
	for _, step := range s.v.Sequence(symbol, s.r.Uint64()) {
		s.tg.Access(step.Line, ReqVictim)
	}
	s.windows++
	return s.probe().clone()
}

// buildTemplate runs the template-building phase on a fresh replica of
// the target seeded with profSeed. Symbol values are interleaved
// round-robin so every cell sees the same steady-state history mix. It
// returns the template and the number of windows spent.
func buildTemplate(cfg Config, profSeed uint64) (*Template, int) {
	s := newSession(cfg, profSeed)
	space := cfg.Victim.SymbolSpace()
	tmpl := NewTemplate(space, len(s.sets), s.tg.AttackerWays())
	for round := 0; round < cfg.ProfilingRounds; round++ {
		for v := 0; v < space; v++ {
			tmpl.Add(v, s.window(v))
		}
	}
	return tmpl, s.windows
}

// Profile runs only the template-building phase (the classic
// template-attack setting: the attacker profiles a device it controls,
// with chosen secrets, before attacking the real one). The template is
// identical to the one Run builds for the same config.
func Profile(cfg Config) *Template {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	tmpl, _ := buildTemplate(cfg, root.Uint64())
	return tmpl
}

// Run executes the full attack — profiling, then recovery of every
// symbol of the secret on a fresh live target — and reports recovery
// quality plus the detection verdicts.
func Run(cfg Config, secret []int) Result {
	cfg = cfg.withDefaults()
	if cfg.Victim == nil {
		panic("attack: Config.Victim is required")
	}
	if len(secret) == 0 {
		panic("attack: empty secret")
	}
	space := cfg.Victim.SymbolSpace()

	// Seed discipline: the profiling replica and the live target draw
	// independent streams from the root seed, in a fixed order.
	root := rng.New(cfg.Seed)
	profSeed := root.Uint64()
	liveSeed := root.Uint64()

	// Phase 1: profiling on the attacker's replica.
	tmpl, profWindows := buildTemplate(cfg, profSeed)

	// Phase 2: exploitation on the live target.
	live := newSession(cfg, liveSeed)
	res := Result{
		VictimName: cfg.Victim.Name(),
		Defense:    cfg.Defense,
		Policy:     cfg.Policy,
		Secret:     append([]int(nil), secret...),
		Confusion:  newConfusion(space),
	}
	votes := make([]Observation, cfg.Votes)
	var ranks float64
	correct := 0
	for _, truth := range secret {
		truth = truth % space
		if truth < 0 {
			truth += space
		}
		for v := range votes {
			votes[v] = live.window(truth)
		}
		post := tmpl.ClassifyMany(votes)
		guess := argmax(post)
		res.Recovered = append(res.Recovered, guess)
		res.Posteriors = append(res.Posteriors, post)
		res.Confidence = append(res.Confidence, post[guess])
		res.Confusion[truth][guess]++
		if guess == truth {
			correct++
		}
		ranks += float64(rankOf(post, truth))
	}
	res.RecoveryRate = float64(correct) / float64(len(secret))
	res.MeanGuesses = ranks / float64(len(secret))
	res.Windows = profWindows + live.windows

	// Phase 3: the detection verdict — would a counter monitor have
	// flagged either party while the live attack ran?
	mon := detect.NewMonitor(detect.AttackThresholds())
	res.AttackerReport = live.tg.Report(ReqAttacker)
	res.VictimReport = live.tg.Report(ReqVictim)
	res.AttackerVerdict = mon.Classify(res.AttackerReport)
	res.VictimVerdict = mon.Classify(res.VictimReport)
	res.AttackerExplain = mon.Explain(res.AttackerReport)
	res.VictimExplain = mon.Explain(res.VictimReport)
	return res
}

// ChanceGuesses is the guesses-to-first-correct of a blind attacker
// against the victim: the mean rank of a uniformly placed symbol.
func ChanceGuesses(v victim.Victim) float64 {
	return (float64(v.SymbolSpace()) + 1) / 2
}

// ConfidenceSummary summarizes the per-symbol confidence scores.
func (r Result) ConfidenceSummary() stats.Summary {
	return stats.Summarize(r.Confidence)
}

// RenderConfusion formats the confusion matrix (rows = true symbol,
// columns = recovered symbol) for symbol spaces small enough to print.
func (r Result) RenderConfusion() string {
	n := len(r.Confusion)
	if n == 0 || n > 16 {
		return ""
	}
	out := "true\\guess"
	for g := 0; g < n; g++ {
		out += fmt.Sprintf("%4x", g)
	}
	out += "\n"
	for t, row := range r.Confusion {
		out += fmt.Sprintf("%9x ", t)
		for _, c := range row {
			if c == 0 {
				out += "   ."
			} else {
				out += fmt.Sprintf("%4d", c)
			}
		}
		out += "\n"
	}
	return out
}

func newConfusion(space int) [][]int {
	m := make([][]int, space)
	for i := range m {
		m[i] = make([]int, space)
	}
	return m
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
