package attack

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/perfctr"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/internal/victim"
)

// attackerTagBase keeps the attacker's prime/probe lines in a tag
// range disjoint from every victim traffic class (see internal/victim).
const attackerTagBase = 1 << 16

// Config parameterizes one end-to-end key-recovery attack.
type Config struct {
	// Victim is the program under attack (required).
	Victim victim.Victim
	// Defense selects the cache design (default: unprotected).
	Defense Defense
	// Policy is the L1 replacement policy (the zero value is true LRU;
	// pass replacement.TreePLRU for the paper's evaluated parts).
	Policy replacement.Kind
	// Profile supplies the cache geometry (default Sandy Bridge).
	Profile uarch.Profile
	// Votes is the number of observation windows fused per secret
	// symbol (default 4).
	Votes int
	// ProfilingRounds is how many windows per symbol value the
	// profiling phase collects (default 8).
	ProfilingRounds int
	// Probe selects the per-window probe strategy (the zero value is
	// the canonical full prime; ProbeDSplit(1) is the Figure 11 d=1
	// partial prime that sees the original PL cache's locked-line
	// replacement-state update).
	Probe Probe
	// Schedule selects how victim and attacker execute: the zero value
	// is the synchronous attack-driven baseline; ScheduleSMT and
	// ScheduleTimeSliced run both parties as internal/sched threads,
	// so probe windows carry real scheduling jitter.
	Schedule Schedule
	// SymbolPeriod is the wall-clock cycles the scheduled victim
	// spends per secret symbol (scheduled modes only; default 16_000
	// under SMT, 160_000 time-sliced).
	SymbolPeriod uint64
	// Quantum overrides the time-sliced scheduler quantum (default
	// 10_000 — scaled down with SymbolPeriod the same way the covert
	// channel scales Figure 6; the period/quantum ratio is what
	// matters).
	Quantum uint64
	// Seed drives every random choice (default 0x5eed).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Profile.Name == "" {
		c.Profile = uarch.SandyBridge()
	}
	if c.Votes == 0 {
		c.Votes = 4
	}
	if c.ProfilingRounds == 0 {
		c.ProfilingRounds = 8
	}
	if c.SymbolPeriod == 0 {
		if c.Schedule == ScheduleTimeSliced {
			c.SymbolPeriod = 160_000
		} else {
			c.SymbolPeriod = 16_000
		}
	}
	if c.Quantum == 0 {
		c.Quantum = 10_000
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Result is the outcome of one attack run.
type Result struct {
	VictimName string
	Defense    Defense
	Policy     replacement.Kind
	Probe      Probe
	Schedule   Schedule

	// Secret and Recovered are the planted and guessed symbol strings.
	Secret, Recovered []int
	// Posteriors[i] is the fused candidate distribution for symbol i.
	Posteriors [][]float64
	// Confidence[i] is the posterior mass of the recovered symbol.
	Confidence []float64

	// RecoveryRate is the fraction of symbols recovered exactly.
	RecoveryRate float64
	// MeanGuesses is the mean 1-based rank of the true symbol in the
	// posterior — the expected guesses-to-first-correct per symbol
	// (1.0 = perfect, SymbolSpace/2-ish = chance).
	MeanGuesses float64
	// Confusion[t][g] counts symbols of true value t recovered as g.
	Confusion [][]int

	// Windows counts every observation window the attack ran
	// (profiling + exploitation).
	Windows int

	// Detection verdicts from the perfctr monitor over the live run's
	// counters: is the attack observable while it runs, and does the
	// victim stay clean?
	AttackerVerdict, VictimVerdict detect.Verdict
	AttackerExplain, VictimExplain string
	AttackerReport, VictimReport   perfctr.Report
}

// session is one instantiated target+victim pair with the attacker's
// probe apparatus: the profiling replica and the live run each get
// their own.
type session struct {
	tg    Target
	v     victim.Victim
	sets  []int
	lines [][]uint64 // attacker lines per monitored set
	r     *rng.Rand
	obs   Observation // reusable probe buffer
	d     int         // probe split: lines 0..d-1 primed before the victim's window
	// ref is the d-split strategy's reference mask: the miss pattern of
	// the last reprime pass, i.e. the set's undisturbed steady orbit.
	// Observations are reported relative to it (obs XOR ref), which
	// makes them invariant to which way happens to hold the orbit's
	// standing hole — pure history — while any victim interference
	// shows as a nonzero difference.
	ref Observation

	// latHit/latMiss are the per-access cycle costs charged to a
	// scheduled thread (profile L1 and L2 latencies; the attack's
	// working set is L2-resident after warm-up).
	latHit, latMiss uint64

	// bt is the target's batch surface, if it has one; the synchronous
	// passes run through it. blines/bhits are its reusable staging
	// buffers.
	bt     BatchTarget
	blines []uint64
	bhits  []bool

	windows int
}

// newSession builds the cache under attack, warms (and under PL locks)
// the victim's table, and primes every monitored set.
func newSession(cfg Config, seed uint64) *session {
	s := &session{
		tg:   NewTarget(cfg.Defense, cfg.Profile, cfg.Policy, seed),
		v:    cfg.Victim,
		sets: cfg.Victim.MonitorSets(),
		r:    rng.New(seed ^ 0xa77ac4),
	}
	s.bt, _ = s.tg.(BatchTarget)
	ways := s.tg.AttackerWays()
	s.d = cfg.Probe.split(ways)
	s.latHit = uint64(cfg.Profile.L1Latency)
	s.latMiss = uint64(cfg.Profile.L2Latency)
	totalSets := cfg.Profile.L1Sets
	s.lines = make([][]uint64, len(s.sets))
	for i, set := range s.sets {
		s.lines[i] = make([]uint64, ways)
		for w := 0; w < ways; w++ {
			s.lines[i][w] = uint64(attackerTagBase+w)*uint64(totalSets) + uint64(set%totalSets)
		}
	}
	s.obs = make(Observation, len(s.sets))
	s.ref = make(Observation, len(s.sets))

	s.tg.WarmVictim(s.v.TableLines())
	// The victim faults in its benign working set, like any program
	// touching its data at startup.
	for _, ln := range s.v.WarmLines() {
		s.tg.Access(ln, ReqVictim)
	}
	// Initial prime, then one settling pass so every monitored set
	// reaches the protocol's steady state (occupancy and, under the
	// canonical strategy, replacement state) before the first real
	// window. The counters are then cleared: the detection verdict
	// judges the attack's steady phase, not the one-off cold fill.
	s.pass(0, len(s.lines[0]), nil)
	s.pass(0, len(s.lines[0]), nil)
	s.tg.ResetStats()
	return s
}

func (s *session) ways() int { return len(s.lines[0]) }

// access performs one attack-session load, charging its latency to e
// when the session runs under a scheduled machine (e == nil in the
// synchronous baseline, where simulated time does not advance).
func (s *session) access(e *sched.Env, line uint64, req int) bool {
	hit := s.tg.Access(line, req)
	if e != nil {
		if hit {
			e.Busy(s.latHit)
		} else {
			e.Busy(s.latMiss)
		}
	}
	return hit
}

// pass reloads attacker lines [from, to) of every monitored set in
// fixed order, recording their miss bits into the reusable observation
// buffer (bits outside the range are left as they were). The reloads
// re-prime the touched ways as they go.
func (s *session) pass(from, to int, e *sched.Env) {
	if e == nil && s.bt != nil {
		s.passBatch(from, to)
		return
	}
	for i := range s.sets {
		mask := s.obs[i]
		for w := from; w < to; w++ {
			bit := uint16(1) << uint(w)
			if s.access(e, s.lines[i][w], ReqAttacker) {
				mask &^= bit
			} else {
				mask |= bit
			}
		}
		s.obs[i] = mask
	}
}

// passBatch is the synchronous pass through the target's batch
// surface: the whole pass — every monitored set's [from, to) span, in
// the same fixed order — executes as one AccessBatch call, and the
// hit bits fold into the observation masks afterwards.
func (s *session) passBatch(from, to int) {
	need := len(s.sets) * (to - from)
	if cap(s.blines) < need {
		s.blines = make([]uint64, need)
		s.bhits = make([]bool, need)
	}
	blines := s.blines[:0]
	for i := range s.sets {
		blines = append(blines, s.lines[i][from:to]...)
	}
	hits := s.bhits[:need]
	s.bt.AccessBatch(blines, ReqAttacker, hits)
	k := 0
	for i := range s.sets {
		mask := s.obs[i]
		for w := from; w < to; w++ {
			bit := uint16(1) << uint(w)
			if hits[k] {
				mask &^= bit
			} else {
				mask |= bit
			}
			k++
		}
		s.obs[i] = mask
	}
}

// prime runs the initialization phase of one window: under the d-split
// strategy, lines 0..d-1 of every monitored set (their miss bits open
// this window's mask); under the canonical strategy, nothing — the
// previous window's full probe pass already re-primed the set.
func (s *session) prime(e *sched.Env) {
	if s.d > 0 {
		s.pass(0, s.d, e)
	}
}

// reprime re-references the d-split strategy between vote groups.
// Because the partial prime never touches every way in one pass, the
// replacement state settles into per-set orbits whose standing miss —
// which line is the set's absent one — is pure history: full passes
// do not move it (under a PL cache the policy's victim is perpetually
// the locked line, so the hole is literally permanent). Two canonical
// full passes settle every monitored set back onto its undisturbed
// orbit and the second pass's miss pattern is recorded as the group's
// reference mask; the group's observations are reported relative to
// it. A no-op under the canonical strategy, whose every probe pass
// re-canonicalizes the state anyway.
func (s *session) reprime(e *sched.Env) {
	if s.d == 0 {
		return
	}
	s.pass(0, s.ways(), e)
	s.pass(0, s.ways(), e)
	copy(s.ref, s.obs)
}

// probe runs the decoding phase of one window — the remaining ways
// (all of them under the canonical strategy) — and returns the
// completed miss mask. The buffer is reused; callers keep clones.
func (s *session) probe(e *sched.Env) Observation {
	s.pass(s.d, s.ways(), e)
	return s.obs
}

// observed renders the completed window mask as the strategy's
// observation — raw under the canonical full prime, differenced
// against the group's reference orbit under the d-split — as a fresh
// copy owned by the caller.
func (s *session) observed() Observation {
	c := s.obs.clone()
	if s.d > 0 {
		for i := range c {
			c[i] ^= s.ref[i]
		}
	}
	return c
}

// window runs one synchronous event: the attacker's initialization
// phase, the victim processing one secret symbol, then the attacker's
// probe phase. The returned observation is owned by the caller.
// Callers open each group of windows that should share a reference
// orbit with reprime.
func (s *session) window(symbol int) Observation {
	s.prime(nil)
	s.victimWindow(nil, symbol)
	s.windows++
	s.probe(nil)
	return s.observed()
}

// victimWindow plays one victim event window against the target.
func (s *session) victimWindow(e *sched.Env, symbol int) {
	for _, step := range s.v.Sequence(symbol, s.r.Uint64()) {
		s.access(e, step.Line, ReqVictim)
	}
}

// buildTemplate runs the template-building phase on a fresh replica of
// the target seeded with profSeed. Symbol values are interleaved
// round-robin so every cell sees the same steady-state history mix. It
// returns the template and the number of windows spent. Under a
// scheduled config the replica runs the same SMT or time-sliced
// machine as the live attack, so the templates absorb the scheduling
// jitter they will be classified under.
func buildTemplate(cfg Config, profSeed uint64) (*Template, int) {
	s := newSession(cfg, profSeed)
	space := cfg.Victim.SymbolSpace()
	tmpl := NewTemplate(space, len(s.sets), s.tg.AttackerWays())
	if cfg.Schedule != ScheduleSync {
		stream := roundRobinStream(space, cfg.ProfilingRounds)
		buckets := scheduleStream(cfg, s, stream, profSeed)
		for i, sym := range stream {
			for _, obs := range buckets[i] {
				tmpl.Add(sym, obs)
			}
		}
		return tmpl, s.windows
	}
	// The d-split strategy carries state across the windows of a vote
	// group (the reference orbit set by reprime, and the cumulative
	// orbit shift the victim's touches cause), so profiling must
	// replicate the exploitation phase's structure: runs of Votes
	// consecutive windows per symbol, re-referenced at the group
	// boundary. The canonical full prime re-canonicalizes every pass,
	// so single-window interleaving suffices there (group == 1, and
	// reprime is a no-op, keeping its established template shape).
	group := 1
	if s.d > 0 {
		group = cfg.Votes
	}
	for round := 0; round < cfg.ProfilingRounds; round++ {
		for v := 0; v < space; v++ {
			s.reprime(nil)
			for g := 0; g < group; g++ {
				tmpl.Add(v, s.window(v))
			}
		}
	}
	return tmpl, s.windows
}

// Profile runs only the template-building phase (the classic
// template-attack setting: the attacker profiles a device it controls,
// with chosen secrets, before attacking the real one). The template is
// identical to the one Run builds for the same config.
func Profile(cfg Config) *Template {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	tmpl, _ := buildTemplate(cfg, root.Uint64())
	return tmpl
}

// Run executes the full attack — profiling, then recovery of every
// symbol of the secret on a fresh live target — and reports recovery
// quality plus the detection verdicts.
func Run(cfg Config, secret []int) Result {
	cfg = cfg.withDefaults()
	if cfg.Victim == nil {
		panic("attack: Config.Victim is required")
	}
	if len(secret) == 0 {
		panic("attack: empty secret")
	}
	space := cfg.Victim.SymbolSpace()

	// Seed discipline: the profiling replica and the live target draw
	// independent streams from the root seed, in a fixed order.
	root := rng.New(cfg.Seed)
	profSeed := root.Uint64()
	liveSeed := root.Uint64()

	// Phase 1: profiling on the attacker's replica.
	tmpl, profWindows := buildTemplate(cfg, profSeed)

	// Phase 2: exploitation on the live target.
	live := newSession(cfg, liveSeed)
	res := Result{
		VictimName: cfg.Victim.Name(),
		Defense:    cfg.Defense,
		Policy:     cfg.Policy,
		Probe:      cfg.Probe,
		Schedule:   cfg.Schedule,
		Secret:     append([]int(nil), secret...),
		Confusion:  newConfusion(space),
	}
	truths := make([]int, len(secret))
	for i, t := range secret {
		t %= space
		if t < 0 {
			t += space
		}
		truths[i] = t
	}
	// Under a scheduled config the whole secret runs through one
	// machine, the attacker bucketing its windows per symbol period;
	// synchronously each symbol's votes are collected attack-driven.
	var buckets [][]Observation
	if cfg.Schedule != ScheduleSync {
		buckets = scheduleStream(cfg, live, truths, liveSeed)
	}
	votes := make([]Observation, cfg.Votes)
	var ranks float64
	correct := 0
	for si, truth := range truths {
		vs := votes
		if buckets != nil {
			vs = buckets[si]
		} else {
			live.reprime(nil)
			for v := range votes {
				votes[v] = live.window(truth)
			}
		}
		post := tmpl.ClassifyMany(vs)
		guess := argmax(post)
		res.Recovered = append(res.Recovered, guess)
		res.Posteriors = append(res.Posteriors, post)
		res.Confidence = append(res.Confidence, post[guess])
		res.Confusion[truth][guess]++
		if guess == truth {
			correct++
		}
		ranks += float64(rankOf(post, truth))
	}
	res.RecoveryRate = float64(correct) / float64(len(secret))
	res.MeanGuesses = ranks / float64(len(secret))
	res.Windows = profWindows + live.windows

	// Phase 3: the detection verdict — would a counter monitor have
	// flagged either party while the live attack ran?
	mon := detect.NewMonitor(detect.AttackThresholds())
	res.AttackerReport = live.tg.Report(ReqAttacker)
	res.VictimReport = live.tg.Report(ReqVictim)
	res.AttackerVerdict = mon.Classify(res.AttackerReport)
	res.VictimVerdict = mon.Classify(res.VictimReport)
	res.AttackerExplain = mon.Explain(res.AttackerReport)
	res.VictimExplain = mon.Explain(res.VictimReport)
	return res
}

// ChanceGuesses is the guesses-to-first-correct of a blind attacker
// against the victim: the mean rank of a uniformly placed symbol.
func ChanceGuesses(v victim.Victim) float64 {
	return (float64(v.SymbolSpace()) + 1) / 2
}

// ConfidenceSummary summarizes the per-symbol confidence scores.
func (r Result) ConfidenceSummary() stats.Summary {
	return stats.Summarize(r.Confidence)
}

// RenderConfusion formats the confusion matrix (rows = true symbol,
// columns = recovered symbol) for symbol spaces small enough to print.
func (r Result) RenderConfusion() string {
	n := len(r.Confusion)
	if n == 0 || n > 16 {
		return ""
	}
	out := "true\\guess"
	for g := 0; g < n; g++ {
		out += fmt.Sprintf("%4x", g)
	}
	out += "\n"
	for t, row := range r.Confusion {
		out += fmt.Sprintf("%9x ", t)
		for _, c := range row {
			if c == 0 {
				out += "   ."
			} else {
				out += fmt.Sprintf("%4d", c)
			}
		}
		out += "\n"
	}
	return out
}

func newConfusion(space int) [][]int {
	m := make([][]int, space)
	for i := range m {
		m[i] = make([]int, space)
	}
	return m
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
