package attack

import (
	"math"
	"strings"
	"testing"

	"repro/internal/detect"
	"repro/internal/replacement"
	"repro/internal/victim"
)

func ttableConfig(def Defense, pol replacement.Kind, seed uint64) (Config, []int) {
	v, err := victim.ByName("ttable", 64)
	if err != nil {
		panic(err)
	}
	return Config{Victim: v, Defense: def, Policy: pol, Seed: seed},
		victim.DemoSecret(v, 8, 99)
}

// The headline acceptance property: against the baseline cache the
// attack recovers the full demo key, under every replacement policy of
// the paper's Section II-B family.
func TestBaselineRecoversFullKey(t *testing.T) {
	for _, pol := range []replacement.Kind{replacement.TrueLRU, replacement.TreePLRU, replacement.BitPLRU} {
		cfg, secret := ttableConfig(DefenseNone, pol, 7)
		res := Run(cfg, secret)
		if res.RecoveryRate != 1.0 {
			t.Errorf("%v: recovery rate %.2f, want 1.0", pol, res.RecoveryRate)
		}
		if res.MeanGuesses != 1.0 {
			t.Errorf("%v: mean guesses %.2f, want 1.0", pol, res.MeanGuesses)
		}
		for i := range secret {
			if res.Recovered[i] != secret[i] {
				t.Errorf("%v: symbol %d recovered as %x, want %x", pol, i, res.Recovered[i], secret[i])
			}
		}
	}
}

// DAWG's way+replacement-state partitioning must drive recovery to
// chance: the attacker's observations carry no victim information.
func TestDAWGDrivesRecoveryToChance(t *testing.T) {
	cfg, secret := ttableConfig(DefenseDAWG, replacement.TreePLRU, 7)
	res := Run(cfg, secret)
	if res.RecoveryRate > 0.3 {
		t.Errorf("DAWG recovery rate %.2f, want chance (<= 0.3)", res.RecoveryRate)
	}
	// Chance-level guessing sits far from the perfect 1.0.
	if res.MeanGuesses < 4 {
		t.Errorf("DAWG mean guesses %.1f, want chance-like (>= 4)", res.MeanGuesses)
	}
}

// Both PL-cache variants block template key recovery under this
// protocol: locking keeps the victim's table lines resident (so the
// victim never misses — a pure-hit victim no flush or eviction attack
// could see), and the canonical full prime erases the sensitivity to
// the locked line's replacement-state update. Note this does NOT
// contradict Figure 11: the covert-channel demo of internal/secure
// drives the original PL leak with a d=1 partial prime, an operating
// point this attacker does not use (ROADMAP records the gap).
func TestPLCacheBlocksTemplateRecovery(t *testing.T) {
	baseCfg, secret := ttableConfig(DefenseNone, replacement.TreePLRU, 7)
	baseRate := Run(baseCfg, secret).VictimReport.L1D.MissRate()
	for _, def := range []Defense{DefensePLCache, DefensePLCacheFixed} {
		cfg, _ := ttableConfig(def, replacement.TreePLRU, 7)
		res := Run(cfg, secret)
		if res.RecoveryRate > 0.5 {
			t.Errorf("%v: recovery rate %.2f, want near chance", def, res.RecoveryRate)
		}
		// With the table locked the victim's secret accesses always
		// hit; only background-noise misses remain, well below the
		// baseline's one-forced-miss-per-window profile.
		if rate := res.VictimReport.L1D.MissRate(); rate >= 0.75*baseRate {
			t.Errorf("%v: victim miss rate %.4f not clearly below baseline %.4f",
				def, rate, baseRate)
		}
	}
}

// Every victim kind must be recoverable on the baseline.
func TestAllVictimsRecoverOnBaseline(t *testing.T) {
	for _, name := range victim.Names() {
		v, err := victim.ByName(name, 64)
		if err != nil {
			t.Fatal(err)
		}
		secret := victim.DemoSecret(v, 8, 12)
		res := Run(Config{Victim: v, Policy: replacement.TreePLRU, Seed: 5}, secret)
		if res.RecoveryRate != 1.0 {
			t.Errorf("%s: recovery %.2f, want 1.0", name, res.RecoveryRate)
		}
	}
}

// The whole pipeline is deterministic in the seed.
func TestRunDeterministic(t *testing.T) {
	cfg, secret := ttableConfig(DefenseRandomFill, replacement.TreePLRU, 11)
	a := Run(cfg, secret)
	b := Run(cfg, secret)
	if a.RecoveryRate != b.RecoveryRate || a.MeanGuesses != b.MeanGuesses {
		t.Fatal("identical configs diverge")
	}
	for i := range a.Recovered {
		if a.Recovered[i] != b.Recovered[i] {
			t.Fatalf("recovered symbol %d differs across identical runs", i)
		}
	}
	if a.AttackerExplain != b.AttackerExplain || a.VictimExplain != b.VictimExplain {
		t.Fatal("detection explanations diverge")
	}
}

// The detection hookup: on the baseline the monitor flags the attacker
// (naming the cross-eviction threshold) and clears the victim.
func TestDetectionVerdicts(t *testing.T) {
	cfg, secret := ttableConfig(DefenseNone, replacement.TreePLRU, 7)
	res := Run(cfg, secret)
	if res.AttackerVerdict != detect.Suspicious {
		t.Errorf("attacker verdict %v, want suspicious\n%s", res.AttackerVerdict, res.AttackerExplain)
	}
	if res.VictimVerdict != detect.Benign {
		t.Errorf("victim verdict %v, want benign\n%s", res.VictimVerdict, res.VictimExplain)
	}
	if !strings.Contains(res.AttackerExplain, "cross-eviction") ||
		!strings.Contains(res.AttackerExplain, "threshold") {
		t.Errorf("attacker explanation does not name the triggering threshold: %q", res.AttackerExplain)
	}
}

func TestConfusionMatrixAccounting(t *testing.T) {
	cfg, secret := ttableConfig(DefenseNone, replacement.TreePLRU, 7)
	res := Run(cfg, secret)
	total := 0
	for _, row := range res.Confusion {
		for _, c := range row {
			total += c
		}
	}
	if total != len(secret) {
		t.Errorf("confusion matrix holds %d entries, want %d", total, len(secret))
	}
	if res.RenderConfusion() == "" {
		t.Error("16-symbol confusion matrix should render")
	}
}

func TestPosteriorsNormalized(t *testing.T) {
	cfg, secret := ttableConfig(DefenseDAWG, replacement.TreePLRU, 7)
	res := Run(cfg, secret)
	for i, post := range res.Posteriors {
		if len(post) != cfg.Victim.SymbolSpace() {
			t.Fatalf("posterior %d has %d entries", i, len(post))
		}
		sum := 0.0
		for _, p := range post {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("posterior %d has invalid probability %v", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior %d sums to %v", i, sum)
		}
	}
}

func TestDefenseParseRoundTrip(t *testing.T) {
	for _, d := range Defenses() {
		got, err := ParseDefense(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDefense(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDefense("fortress"); err == nil {
		t.Error("unknown defense accepted")
	}
}

func TestRankOf(t *testing.T) {
	post := []float64{0.1, 0.5, 0.2, 0.2}
	if r := rankOf(post, 1); r != 1 {
		t.Errorf("rank of best = %d", r)
	}
	if r := rankOf(post, 0); r != 4 {
		t.Errorf("rank of worst = %d", r)
	}
	// Tie between 2 and 3: earlier index enumerated first.
	if r := rankOf(post, 2); r != 2 {
		t.Errorf("rank of first tie = %d", r)
	}
	if r := rankOf(post, 3); r != 3 {
		t.Errorf("rank of second tie = %d", r)
	}
	if r := rankOf(post, 99); r != len(post) {
		t.Errorf("out-of-range rank = %d", r)
	}
}
