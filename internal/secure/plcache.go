// Package secure evaluates the paper's Section IX: how existing secure
// cache designs fare against the LRU channel, and the fixes that close it.
//
// Three designs are implemented and attacked:
//
//   - The Partition-Locked (PL) cache (Wang & Lee), in its original form —
//     which protects line contents but leaks through LRU state updates on
//     locked lines (Figure 11 top) — and with the paper's fix of locking
//     the replacement state too (Figure 10 blue boxes, Figure 11 bottom).
//
//   - A random-fill-style cache, which decouples misses from fills but
//     still updates replacement state on hits, so the hit-driven LRU
//     channel survives (Section IX-B "Randomization").
//
//   - A DAWG-style way partition that splits both the ways and the
//     replacement state between protection domains, which closes the
//     channel.
package secure

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// PLExperimentResult summarizes a Figure 11 run: the receiver's trace and
// how strongly it correlates with the sender's bits.
type PLExperimentResult struct {
	Trace *core.Trace
	// MeanZero/MeanOne are the receiver's mean observed latencies during
	// sender-0 and sender-1 periods.
	MeanZero, MeanOne float64
	// Separation is |MeanOne-MeanZero| in cycles: the leak's amplitude.
	Separation float64
	// AlwaysHit reports that every observation decoded as an L1 hit —
	// the fixed design's signature in Figure 11 (bottom).
	AlwaysHit bool
}

// RunPLCacheExperiment reproduces Figure 11: Algorithm 2 against a PL
// cache, with the sender's line locked. fixed selects the paper's repaired
// design (replacement state locked too). The sender alternates 0 and 1.
func RunPLCacheExperiment(fixed bool, samples int, seed uint64) PLExperimentResult {
	s := core.NewSetup(core.Config{
		Profile:   uarch.SandyBridge(),
		Algorithm: core.Alg2NoSharedMemory,
		Mode:      sched.SMT,
		Tr:        600, Ts: 6000, D: 1,
		PartitionLocked:      true,
		LockReplacementState: fixed,
		Seed:                 seed,
	})
	// The sender locks its line N before the channel runs (Section IX-B:
	// "line N ... is first locked by the sender").
	s.Hier.LoadOp(s.SenderLine, core.ReqSender, cache.OpLock)
	s.Hier.LoadOp(s.SenderLine, core.ReqSender, cache.OpLock) // ensure locked in L1

	tr := s.Run([]byte{0, 1}, true, samples, 1<<40)
	res := PLExperimentResult{Trace: tr}

	var sum0, sum1 float64
	var n0, n1 int
	for _, o := range tr.Observations {
		if (o.Wall/s.Cfg.Ts)%2 == 0 {
			sum0 += o.Latency
			n0++
		} else {
			sum1 += o.Latency
			n1++
		}
	}
	if n0 > 0 {
		res.MeanZero = sum0 / float64(n0)
	}
	if n1 > 0 {
		res.MeanOne = sum1 / float64(n1)
	}
	res.Separation = res.MeanOne - res.MeanZero
	if res.Separation < 0 {
		res.Separation = -res.Separation
	}

	th := s.FixedThreshold()
	res.AlwaysHit = true
	for _, o := range tr.Observations {
		if o.Latency > th {
			res.AlwaysHit = false
			break
		}
	}
	return res
}

// PLLeakDetectable applies a simple detector to the experiment: the leak is
// considered present when the 0-period and 1-period latency means are
// separated by more than a quarter of the L1/L2 latency gap.
func PLLeakDetectable(res PLExperimentResult) bool {
	gap := float64(uarch.SandyBridge().L2Latency-uarch.SandyBridge().L1Latency) / 4
	return res.Separation > gap
}

// OtsuSplit exposes the threshold used on a PL trace (for reports).
func OtsuSplit(res PLExperimentResult) float64 {
	return stats.OtsuThreshold(res.Trace.Latencies())
}
