package secure

import "repro/internal/rng"

// newSeededRand is a tiny indirection so experiment files don't each import
// the rng package for one call.
func newSeededRand(seed uint64) *rng.Rand { return rng.New(seed) }
