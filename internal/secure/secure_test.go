package secure

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/rng"
)

// Figure 11 (top): the original PL cache leaks — the receiver's latencies
// during sender-1 periods differ clearly from sender-0 periods even though
// the sender's line is locked.
func TestPLCacheOriginalLeaks(t *testing.T) {
	res := RunPLCacheExperiment(false, 300, 21)
	if len(res.Trace.Observations) != 300 {
		t.Fatalf("got %d observations", len(res.Trace.Observations))
	}
	if !PLLeakDetectable(res) {
		t.Errorf("original PL cache shows no leak: separation %v cycles (means %v / %v)",
			res.Separation, res.MeanZero, res.MeanOne)
	}
}

// Figure 11 (bottom): the fixed design (locked replacement state) closes
// the channel — the receiver always observes a hit.
func TestPLCacheFixedAlwaysHit(t *testing.T) {
	res := RunPLCacheExperiment(true, 300, 21)
	if !res.AlwaysHit {
		t.Errorf("fixed PL cache: receiver saw misses; separation %v", res.Separation)
	}
	if PLLeakDetectable(res) {
		t.Errorf("fixed PL cache still leaks: separation %v cycles", res.Separation)
	}
}

func TestPLFixReducesSeparation(t *testing.T) {
	orig := RunPLCacheExperiment(false, 300, 22)
	fixed := RunPLCacheExperiment(true, 300, 22)
	if fixed.Separation >= orig.Separation {
		t.Errorf("fix did not shrink the signal: %v -> %v", orig.Separation, fixed.Separation)
	}
}

func TestRandomFillHitUpdatesState(t *testing.T) {
	c := NewRandomFill(64, 8, 16, rng.New(1))
	const set = 3
	line := func(i int) uint64 { return uint64(i)*64 + set }
	for i := 0; i < 8; i++ {
		c.Inner().Access(cache.Request{PhysLine: line(i)})
	}
	before := c.Inner().PolicyState(set)
	c.Access(line(0), 0) // hit
	after := c.Inner().PolicyState(set)
	if before == after {
		t.Error("hit did not update replacement state; random-fill model wrong")
	}
}

func TestRandomFillMissDoesNotInstallRequested(t *testing.T) {
	c := NewRandomFill(64, 8, 16, rng.New(2))
	res := c.Access(999_999, 0)
	if res.Hit {
		t.Fatal("cold access hit")
	}
	if !res.DidFill {
		t.Fatal("miss did not fill anything")
	}
	if res.Filled == 999_999 && c.Contains(999_999) {
		// A random fill CAN coincidentally pick the requested line
		// (1-in-33 with window 16); only flag systematic installs.
		t.Skip("coincidental self-fill; acceptable")
	}
	if c.Contains(999_999) && res.Filled != 999_999 {
		t.Error("requested line installed despite random fill semantics")
	}
}

func TestRandomFillFillsWithinWindow(t *testing.T) {
	c := NewRandomFill(64, 8, 4, rng.New(3))
	for i := 0; i < 200; i++ {
		target := uint64(10_000 + i*100)
		res := c.Access(target, 0)
		if !res.DidFill {
			continue
		}
		lo, hi := target-4, target+4
		if res.Filled < lo || res.Filled > hi {
			t.Fatalf("fill %d outside window [%d,%d]", res.Filled, lo, hi)
		}
	}
}

// Section IX-B: the LRU channel survives the random-fill cache.
func TestRandomFillLeakSurvives(t *testing.T) {
	acc := RandomFillLeakExperiment(400, 120, 7)
	if acc < 0.62 {
		t.Errorf("random-fill decode accuracy %v; the hit-driven LRU channel should beat chance clearly", acc)
	}
}

func TestDAWGPartitionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for indivisible ways")
		}
	}()
	NewDAWG(64, 8, 3)
}

func TestDAWGDomainsIsolated(t *testing.T) {
	d := NewDAWG(64, 8, 2)
	const set = 7
	line := func(i int) uint64 { return uint64(i)*64 + set }
	// Domain 1 fills its partition.
	for i := 0; i < 4; i++ {
		d.Access(line(i), 1)
	}
	before := d.PolicyState(set, 1)
	// Domain 0 hammers the same set index.
	for i := 100; i < 140; i++ {
		d.Access(line(i), 0)
	}
	if d.PolicyState(set, 1) != before {
		t.Error("domain 0 traffic changed domain 1's replacement state")
	}
	for i := 0; i < 4; i++ {
		if !d.Contains(line(i), 1) {
			t.Errorf("domain 1 line %d evicted by domain 0 traffic", i)
		}
	}
}

func TestDAWGNoCrossDomainHit(t *testing.T) {
	d := NewDAWG(64, 8, 2)
	d.Access(42*64, 0)
	if hit := d.Access(42*64, 1); hit {
		t.Error("domain 1 hit on a line cached by domain 0; partition broken")
	}
}

// Section IX-B: way + replacement-state partitioning closes the channel —
// the receiver decodes at chance.
func TestDAWGLeakAtChance(t *testing.T) {
	acc := DAWGLeakExperiment(2000, 13)
	if acc < 0.4 || acc > 0.6 {
		t.Errorf("DAWG decode accuracy %v, want ~0.5 (chance)", acc)
	}
}

func TestDAWGEvictsWithinDomainOnly(t *testing.T) {
	d := NewDAWG(64, 8, 2)
	const set = 9
	line := func(i int) uint64 { return uint64(i)*64 + set }
	// Fill both domains.
	for i := 0; i < 4; i++ {
		d.Access(line(i), 0)
		d.Access(line(10+i), 1)
	}
	// Overflow domain 0: its own lines must be evicted, never domain 1's.
	for i := 20; i < 30; i++ {
		d.Access(line(i), 0)
	}
	for i := 0; i < 4; i++ {
		if !d.Contains(line(10+i), 1) {
			t.Errorf("domain 1 line %d evicted by domain 0 overflow", 10+i)
		}
	}
}
