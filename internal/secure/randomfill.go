package secure

import (
	"repro/internal/cache"
	"repro/internal/replacement"
	"repro/internal/rng"
)

// RandomFillCache models the random-fill cache of Liu & Lee (Section IX-B
// "Randomization"): a miss is served directly to the core WITHOUT caching
// the requested line; instead, a line from a random nearby address (within
// the fill window) is brought in. Crucially — and this is the paper's
// observation — a HIT still updates the replacement state, so a sender that
// encodes with hits drives the LRU channel straight through the defence.
type RandomFillCache struct {
	inner *cache.Cache
	r     *rng.Rand
	// Window is the half-width, in lines, of the random-fill
	// neighbourhood.
	Window uint64
}

// NewRandomFill builds a random-fill cache with the paper's L1D
// geometry and Tree-PLRU replacement.
func NewRandomFill(sets, ways int, window uint64, r *rng.Rand) *RandomFillCache {
	return NewRandomFillWithPolicy(sets, ways, window, replacement.TreePLRU, r)
}

// NewRandomFillWithPolicy is NewRandomFill with an explicit replacement
// policy, for the secret-recovery defense matrix. The rng is required
// when pol is replacement.Random and for the fill randomness itself.
func NewRandomFillWithPolicy(sets, ways int, window uint64, pol replacement.Kind, r *rng.Rand) *RandomFillCache {
	return &RandomFillCache{
		inner: cache.New(cache.Config{
			Name: "RF-L1D", Sets: sets, Ways: ways, LineSize: 64,
			Policy: pol, RNG: r,
		}),
		r:      r,
		Window: window,
	}
}

// AccessResult reports what one random-fill access did.
type AccessResult struct {
	Hit bool
	// Filled is the line actually installed (only on misses), which is
	// generally NOT the requested line.
	Filled  uint64
	DidFill bool
}

// Access performs a load. Hits behave normally (including the replacement
// state update that keeps the LRU channel alive); misses return the data
// uncached and install a random neighbour instead.
func (c *RandomFillCache) Access(physLine uint64, requestor int) AccessResult {
	if c.inner.Contains(physLine) {
		res := c.inner.Access(cache.Request{PhysLine: physLine, Requestor: requestor})
		return AccessResult{Hit: res.Hit}
	}
	// Miss: the requested line bypasses the cache. Fill a random line
	// from [physLine-Window, physLine+Window] instead.
	span := 2*c.Window + 1
	offset := c.r.Uint64n(span)
	var fill uint64
	if physLine >= c.Window {
		fill = physLine - c.Window + offset
	} else {
		fill = offset
	}
	c.inner.Access(cache.Request{PhysLine: fill, Requestor: requestor})
	return AccessResult{Filled: fill, DidFill: true}
}

// Contains reports residency of a specific line.
func (c *RandomFillCache) Contains(physLine uint64) bool { return c.inner.Contains(physLine) }

// Inner exposes the underlying cache for state inspection in experiments.
func (c *RandomFillCache) Inner() *cache.Cache { return c.inner }

// RandomFillLeakExperiment demonstrates Section IX-B's point: the LRU
// channel survives a random-fill cache. The sender's encoding access is a
// HIT, which updates the replacement state exactly as in a normal cache;
// the receiver then provokes random fills (every miss installs a random
// neighbour, occasionally landing in the target set) and observes whether
// its line 0 — the PLRU victim iff the sender stayed silent — got evicted.
// The decode is statistical (fills land in the target set with probability
// ~1/sets per miss), but clearly above chance. It returns the fraction of
// trials whose bit decoded correctly.
func RandomFillLeakExperiment(trials, missesPerTrial int, seed uint64) (correct float64) {
	r := rng.New(seed)
	ok := 0
	// One inner cache for all trials, Reset between them; the per-trial
	// split generator keeps the fill-randomness stream identical to the
	// construct-per-trial formulation.
	inner := cache.New(cache.Config{
		Name: "RF-L1D", Sets: 64, Ways: 8, LineSize: 64,
		Policy: replacement.TreePLRU,
	})
	for trial := 0; trial < trials; trial++ {
		inner.Reset()
		c := &RandomFillCache{inner: inner, r: r.Split(), Window: 16}
		const set = 5
		line := func(i int) uint64 { return uint64(i)*64 + set }
		// Receiver init (all hits after the first pass): lines 0..7
		// in order, establishing the sequential condition.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 8; i++ {
				c.Inner().Access(cache.Request{PhysLine: line(i), Requestor: 1})
			}
		}
		bit := r.Bit()
		// Sender encode: hit on line 0 iff bit==1.
		if bit == 1 {
			c.Access(line(0), 0)
		}
		// Receiver decode: provoke fills with misses to scattered
		// addresses; random fills sometimes land in the target set
		// and evict its PLRU victim.
		for i := 0; i < missesPerTrial; i++ {
			c.Access(1_000_000+uint64(trial)*100_000+uint64(i)*37, 1)
		}
		got := byte(1)
		if !c.Contains(line(0)) {
			got = 0 // line 0 evicted: it was the victim, sender silent
		}
		if got == bit {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}
