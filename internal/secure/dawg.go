package secure

import (
	"fmt"

	"repro/internal/replacement"
)

// DAWGCache models the relevant property of DAWG (Kiriansky et al.,
// Section IX-B): cache ways AND the replacement state are partitioned
// between protection domains. Each domain owns a contiguous group of ways
// per set and an independent replacement-policy instance over only those
// ways, so no access by one domain can influence the victim selection — or
// the observable timing — of another.
//
// The model is a single cache set per set-index (like cache.Cache) but with
// per-domain sub-policies; it exposes just enough surface to run the LRU
// channel protocols against it.
type DAWGCache struct {
	sets     int
	waysPer  int // ways owned by each domain
	domains  int
	lines    [][]dawgLine           // [set][way]
	policies [][]replacement.Policy // [set][domain]
}

type dawgLine struct {
	valid bool
	tag   uint64
}

// NewDAWG builds a partitioned cache: `ways` total ways per set divided
// evenly among `domains` protection domains, running Tree-PLRU inside
// each partition.
func NewDAWG(sets, ways, domains int) *DAWGCache {
	return NewDAWGWithPolicy(sets, ways, domains, replacement.TreePLRU)
}

// NewDAWGWithPolicy is NewDAWG with an explicit per-partition
// replacement policy, for the secret-recovery defense matrix that
// sweeps the attack across policies.
func NewDAWGWithPolicy(sets, ways, domains int, pol replacement.Kind) *DAWGCache {
	if domains < 1 || ways%domains != 0 {
		panic(fmt.Sprintf("secure: %d ways not divisible among %d domains", ways, domains))
	}
	d := &DAWGCache{sets: sets, waysPer: ways / domains, domains: domains}
	d.lines = make([][]dawgLine, sets)
	d.policies = make([][]replacement.Policy, sets)
	for s := 0; s < sets; s++ {
		d.lines[s] = make([]dawgLine, ways)
		d.policies[s] = make([]replacement.Policy, domains)
		for dom := 0; dom < domains; dom++ {
			d.policies[s][dom] = replacement.New(pol, d.waysPer, nil)
		}
	}
	return d
}

// Reset returns every partition to power-on state: all lines invalid,
// every domain's replacement policy at its reset value. Trial loops
// reuse one DAWGCache through Reset instead of reconstructing the
// sets × domains policy matrix per trial.
func (d *DAWGCache) Reset() {
	for s := range d.lines {
		for w := range d.lines[s] {
			d.lines[s][w] = dawgLine{}
		}
		for _, p := range d.policies[s] {
			p.Reset()
		}
	}
}

// Access performs a load by `domain`. Lookups search only the domain's own
// ways (DAWG partitions hits too — a cross-domain hit would itself be a
// channel), and replacement state updates stay inside the domain.
func (d *DAWGCache) Access(physLine uint64, domain int) (hit bool) {
	if domain < 0 || domain >= d.domains {
		panic(fmt.Sprintf("secure: domain %d out of range", domain))
	}
	set := int(physLine % uint64(d.sets))
	tag := physLine / uint64(d.sets)
	base := domain * d.waysPer
	pol := d.policies[set][domain]
	for w := 0; w < d.waysPer; w++ {
		ln := &d.lines[set][base+w]
		if ln.valid && ln.tag == tag {
			pol.OnAccess(w)
			return true
		}
	}
	// Miss: fill an invalid way of the domain or evict its own victim.
	for w := 0; w < d.waysPer; w++ {
		ln := &d.lines[set][base+w]
		if !ln.valid {
			ln.valid, ln.tag = true, tag
			pol.OnAccess(w)
			return false
		}
	}
	w := pol.Victim()
	d.lines[set][base+w] = dawgLine{valid: true, tag: tag}
	pol.OnAccess(w)
	return false
}

// Contains reports whether the line is resident in the given domain's
// partition.
func (d *DAWGCache) Contains(physLine uint64, domain int) bool {
	set := int(physLine % uint64(d.sets))
	tag := physLine / uint64(d.sets)
	base := domain * d.waysPer
	for w := 0; w < d.waysPer; w++ {
		ln := d.lines[set][base+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// PolicyState renders one domain's replacement state in a set.
func (d *DAWGCache) PolicyState(set, domain int) string {
	return d.policies[set][domain].StateString()
}

// DAWGLeakExperiment runs the Algorithm 2 single-set protocol against the
// partitioned cache: the receiver (domain 1) primes its partition, the
// sender (domain 0) accesses its line or not, the receiver decodes. It
// returns the fraction of trials in which the receiver correctly decoded
// the sender's bit — which must sit at chance (~0.5), because the
// partitions are independent.
func DAWGLeakExperiment(trials int, seed uint64) float64 {
	r := newSeededRand(seed)
	ok := 0
	d := NewDAWG(64, 8, 2)
	for trial := 0; trial < trials; trial++ {
		d.Reset()
		const set = 5
		line := func(i int) uint64 { return uint64(i)*64 + set }
		ways := 4 // receiver's partition size
		// Receiver primes its partition with its own lines.
		for i := 0; i < ways; i++ {
			d.Access(line(i), 1)
		}
		bit := r.Bit()
		if bit == 1 {
			d.Access(line(100), 0) // sender's access in its own domain
		}
		// Receiver decodes: one more line, then checks line 0.
		d.Access(line(ways), 1)
		got := byte(1)
		if d.Contains(line(0), 1) {
			got = 0
		}
		if got == bit {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}
