package perf

import (
	"math"
	"testing"

	"repro/internal/replacement"
	"repro/internal/workload"
)

func fig9Policies() []replacement.Kind {
	return []replacement.Kind{replacement.TreePLRU, replacement.FIFO, replacement.Random}
}

func TestRunBenchmarkSane(t *testing.T) {
	g, _ := workload.ByName("gcc", 1)
	res := RunBenchmark(g, Config{Policy: replacement.TreePLRU, Instructions: 300_000})
	if res.Benchmark != "gcc" {
		t.Errorf("benchmark name %q", res.Benchmark)
	}
	if res.L1DMissRate < 0 || res.L1DMissRate > 1 {
		t.Errorf("miss rate %v", res.L1DMissRate)
	}
	if res.CPI < baseCPI {
		t.Errorf("CPI %v below base %v", res.CPI, baseCPI)
	}
}

func TestStreamingWorkloadMissesHard(t *testing.T) {
	// libquantum's 8 MiB sweep cannot live in a 64 KiB L1.
	g, _ := workload.ByName("libquantum", 1)
	res := RunBenchmark(g, Config{Policy: replacement.TreePLRU, Instructions: 600_000})
	if res.L1DMissRate < 0.5 {
		t.Errorf("streaming L1D miss rate %v, want high", res.L1DMissRate)
	}
}

func TestHotWorkloadHitsWell(t *testing.T) {
	// perlbench's hot set fits easily.
	g, _ := workload.ByName("perlbench", 1)
	res := RunBenchmark(g, Config{Policy: replacement.TreePLRU, Instructions: 600_000})
	if res.L1DMissRate > 0.2 {
		t.Errorf("hot-set L1D miss rate %v, want low", res.L1DMissRate)
	}
}

// The Figure 9 claims: (a) FIFO and Random degrade the L1D miss rate only
// slightly overall; (b) CPI changes stay within ~2% in geometric mean.
func TestFigure9RelativeShape(t *testing.T) {
	results := RunSuite(fig9Policies(), Config{Instructions: 400_000, Seed: 9})
	if len(results) != 3 || len(results[0]) != 12 {
		t.Fatalf("suite shape %dx%d", len(results), len(results[0]))
	}
	cpi := Normalized(results, true)
	for p := 1; p < 3; p++ {
		gm := GeoMean(cpi[p])
		if math.Abs(gm-1) > 0.05 {
			t.Errorf("policy %v: normalized CPI geomean %v, want within 5%% of 1",
				results[p][0].Policy, gm)
		}
	}
	miss := Normalized(results, false)
	for p := 1; p < 3; p++ {
		gm := GeoMean(nonZero(miss[p]))
		if gm > 1.6 || gm < 0.6 {
			t.Errorf("policy %v: normalized miss-rate geomean %v, want mild change",
				results[p][0].Policy, gm)
		}
	}
}

// Some benchmarks prefer FIFO/Random over Tree-PLRU (the paper notes FIFO
// and Random "sometimes have an even smaller cache miss rate"). With a
// strided conflict-heavy workload, LRU-family thrashing shows.
func TestSomeBenchmarkPrefersNonLRU(t *testing.T) {
	results := RunSuite(fig9Policies(), Config{Instructions: 400_000, Seed: 9})
	better := 0
	for b := range results[0] {
		if results[1][b].L1DMissRate < results[0][b].L1DMissRate-1e-9 ||
			results[2][b].L1DMissRate < results[0][b].L1DMissRate-1e-9 {
			better++
		}
	}
	if better == 0 {
		t.Error("no benchmark preferred FIFO or Random; Figure 9's mixed picture lost")
	}
}

func TestNormalizedBaseIsOne(t *testing.T) {
	results := RunSuite(fig9Policies(), Config{Instructions: 200_000, Seed: 4})
	cpi := Normalized(results, true)
	for b, v := range cpi[0] {
		if v != 1 {
			t.Errorf("baseline normalized CPI[%d] = %v", b, v)
		}
	}
	if Normalized(nil, true) != nil {
		t.Error("Normalized(nil) != nil")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestDeterministicRuns(t *testing.T) {
	g1, _ := workload.ByName("mcf", 2)
	g2, _ := workload.ByName("mcf", 2)
	a := RunBenchmark(g1, Config{Policy: replacement.Random, Instructions: 200_000, Seed: 5})
	b := RunBenchmark(g2, Config{Policy: replacement.Random, Instructions: 200_000, Seed: 5})
	if a != b {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func nonZero(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}
