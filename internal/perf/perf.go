// Package perf is the GEM5 substitute behind Figure 9: it runs the
// synthetic SPEC-like workloads through the paper's simulated memory system
// (64 KiB 8-way L1D at 4 cycles, 2 MiB 16-way L2 at 8 cycles, 50 ns main
// memory) with different L1D replacement policies and reports the L1D miss
// rate and a cycles-per-instruction estimate.
//
// The CPU model is deliberately simple — a fixed base CPI plus a partially
// overlapped miss penalty — because Figure 9's claim is relative: swapping
// Tree-PLRU for FIFO or Random moves the L1D miss rate slightly and the CPI
// by under ~2%. A pipeline model's absolute numbers would still not match
// GEM5's; the ratio structure is what we reproduce.
package perf

import (
	"math"

	"repro/internal/cache"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Config parameterizes one Figure 9 run.
type Config struct {
	// Policy is the L1D replacement policy under test.
	Policy replacement.Kind
	// Instructions simulated per benchmark (default 2,000,000; about one
	// memory reference is issued every MemRefEvery instructions).
	Instructions int
	// MemRefEvery is the instruction distance between memory references
	// (default 3, a typical load/store density).
	MemRefEvery int
	Seed        uint64
}

func (c Config) withDefaults() Config {
	if c.Instructions == 0 {
		c.Instructions = 2_000_000
	}
	if c.MemRefEvery == 0 {
		c.MemRefEvery = 3
	}
	if c.Seed == 0 {
		c.Seed = 2020
	}
	return c
}

// Figure 9's GEM5 memory-system parameters.
const (
	l1Sets, l1Ways, l1Lat = 128, 8, 4   // 64 KiB 8-way
	l2Sets, l2Ways, l2Lat = 2048, 16, 8 // 2 MiB 16-way
	memLat                = 100         // 50 ns at the simulated 2 GHz
	baseCPI               = 0.6         // out-of-order core issuing ~1.7 IPC at best
	// overlap is the fraction of a miss penalty hidden by out-of-order
	// execution and MLP.
	overlap = 0.6
)

// Result is one bar of Figure 9.
type Result struct {
	Benchmark   string
	Policy      replacement.Kind
	L1DMissRate float64
	L2MissRate  float64
	CPI         float64
}

// RunBenchmark executes one workload under one policy.
func RunBenchmark(gen workload.Generator, cfg Config) Result {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	l1 := cache.New(cache.Config{
		Name: "L1D", Sets: l1Sets, Ways: l1Ways, LineSize: 64,
		Policy: cfg.Policy, RNG: r,
	})
	l2 := cache.New(cache.Config{
		Name: "L2", Sets: l2Sets, Ways: l2Ways, LineSize: 64,
		Policy: replacement.TreePLRU, RNG: r,
	})

	cycles := baseCPI * float64(cfg.Instructions)
	refs := cfg.Instructions / cfg.MemRefEvery

	// The reference stream is generator-driven — the addresses never
	// depend on cache outcomes — so it executes as L1 batches with the
	// misses walked afterwards in record order. That keeps the CPI
	// accumulation order (float addition does not commute) and the RNG
	// draw order exact: the L2 is Tree-PLRU and never draws from the
	// shared generator, so batching the L1 pass ahead of the L2 walk
	// reorders no draws even under a Random L1 policy.
	const chunk = 4096
	reqs := make([]cache.Request, chunk)
	res := make([]cache.Result, chunk)
	for done := 0; done < refs; {
		n := min(chunk, refs-done)
		for i := 0; i < n; i++ {
			reqs[i].PhysLine = gen.Next().Addr / 64
		}
		l1.AccessBatch(reqs[:n], res[:n])
		for i := 0; i < n; i++ {
			if res[i].Hit {
				// L1 hits are fully pipelined in the base CPI.
				continue
			}
			penalty := float64(l2Lat - l1Lat)
			if !l2.Access(cache.Request{PhysLine: reqs[i].PhysLine}).Hit {
				penalty += memLat
			}
			cycles += penalty * (1 - overlap)
		}
		done += n
	}
	return Result{
		Benchmark:   gen.Name(),
		Policy:      cfg.Policy,
		L1DMissRate: l1.Stats().MissRate(),
		L2MissRate:  l2.Stats().MissRate(),
		CPI:         cycles / float64(cfg.Instructions),
	}
}

// RunSuite runs every suite benchmark under every given policy. The outer
// index follows the suite order, the inner the policy order.
func RunSuite(policies []replacement.Kind, cfg Config) [][]Result {
	cfg = cfg.withDefaults()
	var out [][]Result
	for _, pol := range policies {
		c := cfg
		c.Policy = pol
		var row []Result
		for _, gen := range workload.Suite(cfg.Seed) {
			row = append(row, RunBenchmark(gen, c))
		}
		out = append(out, row)
	}
	return out
}

// Normalized returns each policy's metric divided by the first policy's
// (the paper normalizes to Tree-PLRU). metric selects CPI (true) or L1D
// miss rate (false).
func Normalized(results [][]Result, cpi bool) [][]float64 {
	if len(results) == 0 {
		return nil
	}
	norm := make([][]float64, len(results))
	for p := range results {
		norm[p] = make([]float64, len(results[p]))
		for b := range results[p] {
			var base, v float64
			if cpi {
				base, v = results[0][b].CPI, results[p][b].CPI
			} else {
				base, v = results[0][b].L1DMissRate, results[p][b].L1DMissRate
			}
			if base == 0 {
				norm[p][b] = 1
			} else {
				norm[p][b] = v / base
			}
		}
	}
	return norm
}

// GeoMean returns the geometric mean of xs (the summary bar of Figure 9).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
