package engine

import "testing"

// The determinism contract rests on Seeds being position-based: the
// seed of job i must not depend on how many jobs the driver asked for.
// Otherwise growing a grid (or chunking it differently) would silently
// reseed every cell.
func TestSeedsPrefixStability(t *testing.T) {
	for _, root := range []uint64{0, 1, 42, 0x5eed, ^uint64(0)} {
		full := Seeds(root, 100)
		for _, k := range []int{0, 1, 7, 50, 100} {
			prefix := Seeds(root, k)
			if len(prefix) != k {
				t.Fatalf("root %d: Seeds(%d) has length %d", root, k, len(prefix))
			}
			for i := range prefix {
				if prefix[i] != full[i] {
					t.Fatalf("root %d: Seeds(%d)[%d] = %d, but Seeds(100)[%d] = %d",
						root, k, i, prefix[i], i, full[i])
				}
			}
		}
	}
}

func TestSeedsNeverZero(t *testing.T) {
	for _, root := range []uint64{0, 1, 99, 2020} {
		for i, s := range Seeds(root, 10_000) {
			if s == 0 {
				t.Fatalf("root %d: seed %d is zero (means 'use default' downstream)", root, i)
			}
		}
	}
}

func TestSeedsDistinctAcrossPositions(t *testing.T) {
	seen := map[uint64]int{}
	for i, s := range Seeds(7, 10_000) {
		if j, dup := seen[s]; dup {
			t.Fatalf("seed at position %d duplicates position %d", i, j)
		}
		seen[s] = i
	}
}
