package engine

import (
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

// simulate is a stand-in experiment: deterministic in its seed, with
// enough work that parallel execution actually interleaves.
func simulate(seed uint64) float64 {
	r := rng.New(seed)
	acc := 0.0
	for i := 0; i < 5000; i++ {
		acc += r.Float64()
	}
	return acc
}

func testJobs(n int) []Job[float64] {
	seeds := Seeds(42, n)
	jobs := make([]Job[float64], n)
	for i := range jobs {
		jobs[i] = Job[float64]{Name: "sim", Seed: seeds[i], Run: simulate}
	}
	return jobs
}

func stripWall[T any](rs []Result[T]) []Result[T] {
	out := make([]Result[T], len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := testJobs(64)
	serial := Run(jobs, Options{Workers: 1})
	for _, workers := range []int{2, 4, 8, 16} {
		parallel := Run(jobs, Options{Workers: workers})
		if !reflect.DeepEqual(stripWall(serial), stripWall(parallel)) {
			t.Fatalf("Workers=%d results differ from serial", workers)
		}
	}
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	jobs := make([]Job[int], 100)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Name: "idx", Run: func(uint64) int { return i }}
	}
	rs := Run(jobs, Options{Workers: 8})
	for i, r := range rs {
		if r.Value != i {
			t.Fatalf("result %d holds job %d's value", i, r.Value)
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if got := Run([]Job[int]{}, Options{}); len(got) != 0 {
		t.Fatalf("empty job list returned %d results", len(got))
	}
	rs := Run([]Job[int]{{Name: "one", Seed: 7, Run: func(s uint64) int { return int(s) }}}, Options{Workers: 4})
	if rs[0].Value != 7 || rs[0].Name != "one" || rs[0].Seed != 7 {
		t.Fatalf("single job result %+v", rs[0])
	}
}

func TestProgressReportsEveryJobExactlyOnce(t *testing.T) {
	const n = 50
	var calls int32
	seenIndex := make([]bool, n)
	lastDone := 0
	opts := Options{
		Workers: 8,
		Progress: func(ev Event) {
			// The callback is serialized, so this needs no locking.
			atomic.AddInt32(&calls, 1)
			if ev.Total != n {
				t.Errorf("Total = %d", ev.Total)
			}
			if ev.Done != lastDone+1 {
				t.Errorf("Done jumped from %d to %d", lastDone, ev.Done)
			}
			lastDone = ev.Done
			if seenIndex[ev.Index] {
				t.Errorf("job %d reported twice", ev.Index)
			}
			seenIndex[ev.Index] = true
		},
	}
	Run(testJobs(n), opts)
	if calls != n {
		t.Fatalf("progress called %d times, want %d", calls, n)
	}
}

func TestWallTimeAccounting(t *testing.T) {
	jobs := []Job[int]{
		{Name: "sleep", Run: func(uint64) int { time.Sleep(2 * time.Millisecond); return 0 }},
		{Name: "sleep", Run: func(uint64) int { time.Sleep(2 * time.Millisecond); return 0 }},
	}
	rs := Run(jobs, Options{Workers: 2})
	for i, r := range rs {
		if r.Wall < time.Millisecond {
			t.Errorf("job %d wall %v, want >= 1ms", i, r.Wall)
		}
	}
}

func TestSeedsDeterministicDistinctNonZero(t *testing.T) {
	a, b := Seeds(9, 256), Seeds(9, 256)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Seeds not deterministic")
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if s == 0 {
			t.Fatal("zero seed emitted")
		}
		if seen[s] {
			t.Fatalf("duplicate seed %#x", s)
		}
		seen[s] = true
	}
	// A longer prefix shares the shorter prefix's seeds (position-based).
	long := Seeds(9, 512)
	if !reflect.DeepEqual(long[:256], a) {
		t.Fatal("Seeds prefix not stable under n")
	}
}

func TestRunTrialsOrderAndSeeds(t *testing.T) {
	type pair struct {
		Trial int
		Seed  uint64
	}
	rs := RunTrials("t", 5, 20, func(trial int, seed uint64) pair {
		return pair{trial, seed}
	}, Options{Workers: 4})
	seeds := Seeds(5, 20)
	for i, r := range rs {
		if r.Value.Trial != i {
			t.Fatalf("result %d is trial %d", i, r.Value.Trial)
		}
		if r.Value.Seed != seeds[i] {
			t.Fatalf("trial %d got seed %#x, want %#x", i, r.Value.Seed, seeds[i])
		}
		if !strings.Contains(r.Name, "trial=") {
			t.Fatalf("trial name %q", r.Name)
		}
	}
}

func TestSummarizeBy(t *testing.T) {
	rs := []Result[pairT]{{Value: pairT{1}}, {Value: pairT{2}}, {Value: pairT{3}}, {Value: pairT{6}}}
	s := SummarizeBy(rs, func(p pairT) float64 { return p.V })
	if s.N != 4 || s.Mean != 3 || s.Min != 1 || s.Max != 6 {
		t.Fatalf("summary %+v", s)
	}
	// stats.Summarize semantics: sample (N-1) standard deviation.
	if math.Abs(s.Std-math.Sqrt(14.0/3)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
	if z := SummarizeBy(nil, func(p pairT) float64 { return p.V }); z.N != 0 {
		t.Fatalf("empty summary %+v", z)
	}
}

type pairT struct{ V float64 }

func TestValues(t *testing.T) {
	rs := Run(testJobs(5), Options{Workers: 1})
	vs := Values(rs)
	for i := range vs {
		if vs[i] != rs[i].Value {
			t.Fatal("Values order broken")
		}
	}
}

func TestStderrProgressFormat(t *testing.T) {
	var b strings.Builder
	p := StderrProgress(&b)
	p(Event{Index: 0, Done: 1, Total: 3, Name: "cell", Wall: 1500 * time.Microsecond})
	if !strings.Contains(b.String(), "[1/3]") || !strings.Contains(b.String(), "cell") {
		t.Fatalf("progress line %q", b.String())
	}
}

func TestDefaultWorkersEnvOverride(t *testing.T) {
	t.Setenv(WorkersEnv, "3")
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers with env = %d", got)
	}
	t.Setenv(WorkersEnv, "not-a-number")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers fallback = %d", got)
	}
}
