package engine

import "repro/internal/rng"

// Seeds derives n per-job seeds by splitting the root RNG: seed i is
// the i'th draw of an rng.Rand constructed from root. The derivation is
// position-based, so job i's seed does not depend on how many jobs run
// before it or on the worker count — the property the engine's
// determinism contract rests on.
func Seeds(root uint64, n int) []uint64 {
	r := rng.New(root)
	out := make([]uint64, n)
	for i := range out {
		s := r.Uint64()
		if s == 0 {
			// Seed 0 means "use the default" to most config structs
			// in this repository; avoid it.
			s = 0x5eed
		}
		out[i] = s
	}
	return out
}
