package engine

// Daemon-safety behavior of Run: panic containment, cell-boundary
// cancellation, and the persistent Pool. These are the contracts
// internal/service's job server rests on, so they are tested here at
// the engine layer (and again end to end in the service tests), all
// exercised under -race in CI.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// panicJobs builds n jobs where job `bad` panics and every other job
// returns its own index.
func panicJobs(n, bad int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Name: "ok", Seed: uint64(i), Run: func(uint64) int {
			if i == bad {
				panic("boom")
			}
			return i
		}}
	}
	jobs[bad].Name = "bad"
	return jobs
}

func TestPanicContainedLeavesSiblingsIntact(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rs := Run(panicJobs(32, 7), Options{Workers: workers, ContainPanics: true})
		for i, r := range rs {
			if i == 7 {
				var pe *PanicError
				if !errors.As(r.Err, &pe) {
					t.Fatalf("workers=%d: job 7 Err = %v, want *PanicError", workers, r.Err)
				}
				if pe.Job != "bad" || pe.Value != "boom" || len(pe.Stack) == 0 {
					t.Errorf("workers=%d: panic error %q/%v missing identity or stack", workers, pe.Job, pe.Value)
				}
				if !strings.Contains(pe.Error(), "boom") {
					t.Errorf("workers=%d: Error() hides the panic value: %s", workers, pe.Error())
				}
				continue
			}
			if r.Err != nil || r.Value != i {
				t.Errorf("workers=%d: sibling %d got (%d, %v), want (%d, nil)", workers, i, r.Value, r.Err, i)
			}
		}
	}
}

func TestPanicReRaisedByDefault(t *testing.T) {
	var finished int32
	jobs := panicJobs(16, 3)
	for i := range jobs {
		run := jobs[i].Run
		jobs[i].Run = func(s uint64) int {
			v := run(s)
			atomic.AddInt32(&finished, 1)
			return v
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run swallowed the panic without ContainPanics")
		}
		pe, ok := r.(*PanicError)
		if !ok || pe.Value != "boom" {
			t.Fatalf("re-raised %v, want *PanicError wrapping \"boom\"", r)
		}
		// Fail-fast is for the caller; siblings still ran to completion
		// (the daemon property the re-raise must not undo).
		if got := atomic.LoadInt32(&finished); got != 15 {
			t.Errorf("%d siblings finished before the re-raise, want 15", got)
		}
	}()
	Run(jobs, Options{Workers: 4})
}

func TestCancelAtCellBoundaries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 64
	var started int32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Name: "cell", Run: func(uint64) int {
			if atomic.AddInt32(&started, 1) == 4 {
				cancel() // cancel mid-grid, from inside a running cell
			}
			time.Sleep(time.Millisecond)
			return i + 1
		}}
	}
	rs := Run(jobs, Options{Workers: 4, Context: ctx})
	var done, skipped int
	for i, r := range rs {
		switch {
		case r.Err == nil && r.Value == i+1:
			done++
		case errors.Is(r.Err, context.Canceled) && r.Value == 0:
			skipped++
		default:
			t.Fatalf("job %d: Value=%d Err=%v", i, r.Value, r.Err)
		}
	}
	if done < 4 {
		t.Errorf("only %d cells completed; the 4 in-flight cells must keep their results", done)
	}
	if skipped == 0 {
		t.Error("no cell was skipped by the cancel")
	}
	if done+skipped != n {
		t.Errorf("done %d + skipped %d != %d", done, skipped, n)
	}
}

// A cancelled context must never leave the feeder blocked on idx <-
// (the pre-fix deadlock when workers stop draining). The run must
// return promptly even when cancellation races job completion.
func TestCancelledRunReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run even starts
	start := time.Now()
	rs := Run(testJobs(1000), Options{Workers: 2, Context: ctx})
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled run took %v", d)
	}
	for i, r := range rs {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d ran after pre-cancel: %+v", i, r)
		}
	}
}

func TestPoolRunsAndIsDeterministic(t *testing.T) {
	jobs := testJobs(64)
	want := Run(jobs, Options{Workers: 1})
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("pool size %d", p.Workers())
	}
	for round := 0; round < 3; round++ {
		got := Run(jobs, Options{Pool: p})
		for i := range got {
			if got[i].Value != want[i].Value || got[i].Name != want[i].Name || got[i].Seed != want[i].Seed {
				t.Fatalf("round %d job %d: pooled result %+v != serial %+v", round, i, got[i], want[i])
			}
		}
	}
}

// Workspaces must persist across Run calls on one pool — the machine-
// reuse property the service's throughput depends on.
func TestPoolWorkspacePersistsAcrossRuns(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var builds int32
	mkJobs := func(n int) []Job[int] {
		jobs := make([]Job[int], n)
		for i := range jobs {
			jobs[i] = Job[int]{Name: "ws", RunW: func(_ uint64, ws *Workspace) int {
				c := ws.Get("counter", func() any {
					atomic.AddInt32(&builds, 1)
					return new(int)
				}).(*int)
				*c++
				return *c
			}}
		}
		return jobs
	}
	// Two rendezvous jobs first: each blocks until the other has
	// started, so one worker cannot run both and both workspaces are
	// forced into existence (on one CPU a fast 8-job run can otherwise
	// be drained entirely by whichever worker wakes first).
	var gate sync.WaitGroup
	gate.Add(2)
	pair := make([]Job[int], 2)
	for i := range pair {
		pair[i] = Job[int]{Name: "gate", RunW: func(_ uint64, ws *Workspace) int {
			gate.Done()
			gate.Wait()
			ws.Get("counter", func() any {
				atomic.AddInt32(&builds, 1)
				return new(int)
			})
			return 0
		}}
	}
	Run(pair, Options{Pool: p})
	for round := 0; round < 5; round++ {
		Run(mkJobs(8), Options{Pool: p})
	}
	if got := atomic.LoadInt32(&builds); got != 2 {
		t.Fatalf("workspace constructed %d times over 6 runs, want once per pool worker (2)", got)
	}
}

// Concurrent Run calls may share one pool (the service runs several
// jobs at once); results must stay per-call correct.
func TestPoolSharedByConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	jobs := testJobs(32)
	want := Run(jobs, Options{Workers: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := Run(jobs, Options{Pool: p})
			for i := range got {
				if got[i].Value != want[i].Value {
					t.Errorf("job %d diverged under pool sharing", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// A panic on a pool worker must not kill the worker: later runs on the
// same pool still execute.
func TestPoolSurvivesJobPanic(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	rs := Run(panicJobs(8, 2), Options{Pool: p, ContainPanics: true})
	if _, ok := rs[2].Err.(*PanicError); !ok {
		t.Fatalf("job 2 Err = %v", rs[2].Err)
	}
	after := Run(testJobs(8), Options{Pool: p})
	for i, r := range after {
		if r.Err != nil {
			t.Fatalf("post-panic run job %d failed: %v", i, r.Err)
		}
	}
}
