package engine

import (
	"time"

	"repro/internal/metrics"
)

// Telemetry is the engine's runtime instrumentation: per-cell lifecycle
// counters, a wall-time histogram, and load gauges, registered on a
// metrics.Registry (the daemon's /metrics surface). All hook methods
// are nil-receiver safe, so an uninstrumented run — the CLI default —
// pays a single nil check per hook and nothing else.
type Telemetry struct {
	dispatched *metrics.Counter
	completed  *metrics.Counter
	panicked   *metrics.Counter
	skipped    *metrics.Counter
	reuse      *metrics.Counter
	queueDepth *metrics.Gauge
	busy       *metrics.Gauge
	cellWall   *metrics.Histogram
}

// NewTelemetry registers the engine's instrument families on r and
// returns the hook set. Registering twice on one registry returns
// instruments backed by the same series.
func NewTelemetry(r *metrics.Registry) *Telemetry {
	return &Telemetry{
		dispatched: r.Counter("engine_cells_dispatched_total",
			"cells handed to a worker (skipped cells are not dispatched)"),
		completed: r.Counter("engine_cells_completed_total",
			"cells that ran to completion"),
		panicked: r.Counter("engine_cells_panicked_total",
			"cells whose job function panicked (recovered per cell)"),
		skipped: r.Counter("engine_cells_skipped_total",
			"cells skipped by context cancellation before starting"),
		reuse: r.Counter("engine_workspace_reuse_total",
			"workspace Get calls served from a previously built value (pooled-machine reuse hits)"),
		queueDepth: r.Gauge("engine_queue_depth",
			"cells enqueued in Run calls and not yet started or skipped"),
		busy: r.Gauge("engine_workers_busy",
			"workers currently executing a cell"),
		cellWall: r.Histogram("engine_cell_wall_seconds",
			"per-cell host wall time", nil),
	}
}

func (t *Telemetry) enqueue(n int) {
	if t == nil {
		return
	}
	t.queueDepth.Add(int64(n))
}

// dispatch marks a cell leaving the queue for a worker.
func (t *Telemetry) dispatch() {
	if t == nil {
		return
	}
	t.queueDepth.Dec()
	t.dispatched.Inc()
	t.busy.Inc()
}

// done marks a dispatched cell finished, panicked or not.
func (t *Telemetry) done(wall time.Duration, panicked bool) {
	if t == nil {
		return
	}
	t.busy.Dec()
	if panicked {
		t.panicked.Inc()
	} else {
		t.completed.Inc()
	}
	t.cellWall.Observe(wall.Seconds())
}

// skip marks a cell that left the queue without running.
func (t *Telemetry) skip() {
	if t == nil {
		return
	}
	t.queueDepth.Dec()
	t.skipped.Inc()
}

func (t *Telemetry) reuseHit() {
	if t == nil {
		return
	}
	t.reuse.Inc()
}
