package engine

import (
	"context"
	"sync"
)

// Pool is a persistent worker pool shared across Run calls. Each worker
// goroutine owns one Workspace for the pool's whole lifetime, so pooled
// machines (hierarchies, schedulers, scratch buffers) built for one
// grid are reused by every later grid that lands on the same worker —
// the configuration a long-running job server wants, where per-call
// goroutine+machine construction would dominate small jobs.
//
// A pool may serve several Run calls concurrently; their cells simply
// interleave over the same workers. Determinism is preserved for the
// same reason it holds within one Run: every job restores any reused
// machine to a seed-determined state before use, so results cannot
// depend on which worker (or which interleaving) executed which cell.
type Pool struct {
	tasks chan func(*Workspace)
	wg    sync.WaitGroup
	size  int
	once  sync.Once
	tel   *Telemetry
}

// NewPool starts a pool of n persistent workers (n <= 0 selects
// DefaultWorkers()). Close releases them.
func NewPool(n int) *Pool { return NewPoolWithTelemetry(n, nil) }

// NewPoolWithTelemetry is NewPool with instrumentation attached: every
// Run on the pool that does not set its own Options.Telemetry records
// through tel, and the workers' Workspaces count their reuse hits
// there. A nil tel yields an uninstrumented pool.
func NewPoolWithTelemetry(n int, tel *Telemetry) *Pool {
	if n <= 0 {
		n = DefaultWorkers()
	}
	p := &Pool{tasks: make(chan func(*Workspace)), size: n, tel: tel}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer p.wg.Done()
			ws := &Workspace{tel: tel}
			for f := range p.tasks {
				f(ws)
			}
		}()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.size }

// Close stops accepting work, waits for in-flight tasks to finish, and
// releases the workers. Safe to call more than once.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.tasks) })
	p.wg.Wait()
}

// run dispatches n indexed tasks onto the pool and blocks until each
// has either executed or been skipped. On context cancellation the
// feeder stops immediately (it never blocks on a pool that has stopped
// draining) and skip is called for every index not yet handed to a
// worker; exec itself is responsible for skipping indices that were
// queued before the cancel but start after it.
func (p *Pool) run(n int, ctx context.Context, exec func(int, *Workspace), skip func(int)) {
	var wg sync.WaitGroup
	fed := n
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		task := func(ws *Workspace) {
			defer wg.Done()
			exec(i, ws)
		}
		if ctx == nil {
			p.tasks <- task
			continue
		}
		select {
		case p.tasks <- task:
		case <-ctx.Done():
			wg.Done()
			fed = i
		}
		if fed == i {
			break
		}
	}
	for i := fed; i < n; i++ {
		skip(i)
	}
	wg.Wait()
}
