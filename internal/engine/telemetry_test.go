package engine

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/metrics"
)

// TestPooledTelemetryCountsCells runs several grids over one
// instrumented pool (run under -race in CI) and asserts the lifecycle
// counters reconcile exactly with the results: every cell is
// dispatched and completed, the wall histogram saw every cell, the
// load gauges return to zero, and pooled workspaces registered reuse.
func TestPooledTelemetryCountsCells(t *testing.T) {
	reg := metrics.NewRegistry()
	tel := NewTelemetry(reg)
	pool := NewPoolWithTelemetry(4, tel)
	defer pool.Close()

	total := 0
	for run := 0; run < 3; run++ {
		jobs := make([]Job[int], 24)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Name: fmt.Sprintf("run%d/cell%d", run, i),
				Seed: uint64(i),
				RunW: func(seed uint64, ws *Workspace) int {
					n := ws.Get("scratch", func() any { return new(int) }).(*int)
					*n++
					return int(seed) + *n
				},
			}
		}
		results := Run(jobs, Options{Pool: pool})
		if len(results) != len(jobs) {
			t.Fatalf("run %d: %d results for %d jobs", run, len(results), len(jobs))
		}
		total += len(results)
	}

	es := metrics.Snapshot(reg)
	if got := es["engine_cells_dispatched_total"]; got != float64(total) {
		t.Errorf("dispatched = %v, want %d", got, total)
	}
	if got := es["engine_cells_completed_total"]; got != float64(total) {
		t.Errorf("completed = %v, want %d", got, total)
	}
	if got := es["engine_cell_wall_seconds.count"]; got != float64(total) {
		t.Errorf("wall histogram count = %v, want %d", got, total)
	}
	for _, zero := range []string{"engine_cells_panicked_total", "engine_cells_skipped_total",
		"engine_queue_depth", "engine_workers_busy"} {
		if es[zero] != 0 {
			t.Errorf("%s = %v, want 0", zero, es[zero])
		}
	}
	// 72 cells over persistent workers: every Get after a worker's first
	// is a reuse hit, so misses = distinct workers that ran a cell —
	// between 1 and pool.Workers() depending on how the queue drained.
	reuse := es["engine_workspace_reuse_total"]
	if misses := float64(total) - reuse; misses < 1 || misses > float64(pool.Workers()) {
		t.Errorf("workspace reuse = %v (misses %v), want misses in [1, %d]", reuse, misses, pool.Workers())
	}
}

// Skipped cells are accounted as skips, never as dispatches, and the
// queue gauge still drains to zero.
func TestTelemetryCountsSkips(t *testing.T) {
	reg := metrics.NewRegistry()
	tel := NewTelemetry(reg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every cell is skipped

	jobs := make([]Job[int], 10)
	for i := range jobs {
		jobs[i] = Job[int]{Name: fmt.Sprintf("cell%d", i), Run: func(uint64) int { return 0 }}
	}
	results := Run(jobs, Options{Workers: 2, Context: ctx, Telemetry: tel})
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("cell %s ran after cancel", r.Name)
		}
	}

	es := metrics.Snapshot(reg)
	if es["engine_cells_skipped_total"] != 10 || es["engine_cells_dispatched_total"] != 0 {
		t.Errorf("skipped=%v dispatched=%v, want 10/0",
			es["engine_cells_skipped_total"], es["engine_cells_dispatched_total"])
	}
	if es["engine_queue_depth"] != 0 {
		t.Errorf("queue depth = %v, want 0", es["engine_queue_depth"])
	}
}

// Panicking cells land in the panicked counter; completed counts only
// clean cells.
func TestTelemetryCountsPanics(t *testing.T) {
	reg := metrics.NewRegistry()
	tel := NewTelemetry(reg)
	jobs := []Job[int]{
		{Name: "ok", Run: func(uint64) int { return 1 }},
		{Name: "boom", Run: func(uint64) int { panic("boom") }},
		{Name: "ok2", Run: func(uint64) int { return 2 }},
	}
	Run(jobs, Options{Workers: 1, ContainPanics: true, Telemetry: tel})

	es := metrics.Snapshot(reg)
	if es["engine_cells_panicked_total"] != 1 || es["engine_cells_completed_total"] != 2 {
		t.Errorf("panicked=%v completed=%v, want 1/2",
			es["engine_cells_panicked_total"], es["engine_cells_completed_total"])
	}
	if es["engine_cell_wall_seconds.count"] != 3 {
		t.Errorf("wall histogram count = %v, want 3 (panicked cells still timed)",
			es["engine_cell_wall_seconds.count"])
	}
}
