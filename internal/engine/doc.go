// Package engine is the experiment-execution subsystem: every figure,
// table and benchmark driver in this repository declares its evaluation
// grid as a slice of Jobs and hands it to Run, which fans the jobs out
// over a worker pool.
//
// The engine's contract is determinism: results are collected in
// submission order and each job derives all of its randomness from its
// own seed, so a parallel run over N workers is bit-identical to a
// serial run over 1 worker. Parallelism is safe because every job
// constructs its own simulated machine (hierarchy, scheduler, TSC,
// RNG) — the simulator has no shared mutable state.
//
// The unit of parallelism is the experiment cell: one simulated
// machine, run start to finish. Loops *inside* a cell (the receiver's
// sampling loop, the sender's encode loop) are the protocol under
// study and stay sequential; loops *across* cells (profiles ×
// algorithms × (Tr, Ts) points × trials) are what the engine
// parallelizes.
package engine
