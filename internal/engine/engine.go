package engine

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// Job is one independent experiment cell: a name for progress
// reporting, the seed from which the cell derives all randomness, and
// the function that runs it. Exactly one of Run and RunW must be set;
// RunW additionally receives the worker's Workspace so consecutive
// cells on one worker can share a reusable simulated machine.
type Job[T any] struct {
	Name string
	Seed uint64
	Run  func(seed uint64) T
	RunW func(seed uint64, ws *Workspace) T
}

// Workspace is per-worker keyed storage for state that is expensive to
// construct and cheap to Reset: simulated machines, scratch buffers.
// Each worker goroutine owns exactly one Workspace for the lifetime of
// a Run call, so values need no locking — but a job reusing a pooled
// machine MUST return it to a seed-determined state (Reset, Reseed)
// before use, or results would depend on which worker ran which cell.
type Workspace struct {
	m map[string]any
}

// Get returns the value stored under key, constructing it with mk on
// the worker's first use.
func (w *Workspace) Get(key string, mk func() any) any {
	if w.m == nil {
		w.m = make(map[string]any)
	}
	v, ok := w.m[key]
	if !ok {
		v = mk()
		w.m[key] = v
	}
	return v
}

// Result pairs a job's output with its identity and wall-time cost.
type Result[T any] struct {
	Name  string
	Seed  uint64
	Value T
	// Wall is the host wall time the job took (not simulated cycles).
	Wall time.Duration
}

// Event is one progress notification: job Index just finished as the
// Done'th of Total, after Wall host time.
type Event struct {
	Index, Done, Total int
	Name               string
	Wall               time.Duration
}

// Options tunes an engine run. The zero value runs on all cores with no
// progress reporting.
type Options struct {
	// Workers is the pool size; <= 0 selects DefaultWorkers().
	Workers int
	// Progress, if set, is called once per completed job. Calls are
	// serialized (never concurrent) but arrive in completion order,
	// which under parallelism is not submission order.
	Progress func(Event)
}

// WorkersEnv is the environment variable that overrides the default
// worker count (useful for CI and for the cmd/ binaries' default).
const WorkersEnv = "LRULEAK_WORKERS"

// DefaultWorkers returns the pool size used when Options.Workers <= 0:
// the LRULEAK_WORKERS environment variable if set and positive,
// otherwise GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv(WorkersEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return DefaultWorkers()
}

// ResolvedWorkers reports the pool size Run will actually use (before
// the cap to the job count): Workers when positive, otherwise the
// session default. Benchmarks record this — not the requested value —
// so a "workers=all" measurement taken on a single-core runner is
// visibly a 1-worker run in the emitted results.
func (o Options) ResolvedWorkers() int { return o.workers() }

// Run executes jobs over the worker pool and returns one Result per
// job, in submission order. The output is independent of the worker
// count provided each job is deterministic in its seed.
func Run[T any](jobs []Job[T], opts Options) []Result[T] {
	out := make([]Result[T], len(jobs))
	if len(jobs) == 0 {
		return out
	}
	workers := opts.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var mu sync.Mutex // serializes Progress calls and the done counter
	done := 0
	finish := func(i int, wall time.Duration) {
		if opts.Progress == nil {
			return
		}
		mu.Lock()
		done++
		opts.Progress(Event{Index: i, Done: done, Total: len(jobs), Name: jobs[i].Name, Wall: wall})
		mu.Unlock()
	}
	runOne := func(i int, ws *Workspace) {
		start := time.Now()
		var v T
		if jobs[i].RunW != nil {
			v = jobs[i].RunW(jobs[i].Seed, ws)
		} else {
			v = jobs[i].Run(jobs[i].Seed)
		}
		wall := time.Since(start)
		out[i] = Result[T]{Name: jobs[i].Name, Seed: jobs[i].Seed, Value: v, Wall: wall}
		finish(i, wall)
	}

	if workers == 1 {
		ws := &Workspace{}
		for i := range jobs {
			runOne(i, ws)
		}
		return out
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := &Workspace{}
			for i := range idx {
				runOne(i, ws)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Values strips the bookkeeping from a result slice, preserving order.
func Values[T any](rs []Result[T]) []T {
	out := make([]T, len(rs))
	for i, r := range rs {
		out[i] = r.Value
	}
	return out
}

// RunTrials fans one experiment out over trials repetitions. Trial i
// runs f(i, seeds[i]) where the seeds are split deterministically from
// root (see Seeds), and the per-trial results come back in trial order.
func RunTrials[T any](name string, root uint64, trials int, f func(trial int, seed uint64) T, opts Options) []Result[T] {
	seeds := Seeds(root, trials)
	jobs := make([]Job[T], trials)
	for i := range jobs {
		i := i
		jobs[i] = Job[T]{
			Name: fmt.Sprintf("%s/trial=%d", name, i),
			Seed: seeds[i],
			Run:  func(seed uint64) T { return f(i, seed) },
		}
	}
	return Run(jobs, opts)
}

// StderrProgress returns a Progress callback that writes one line per
// completed job to w (pass os.Stderr), for the cmd/ binaries.
func StderrProgress(w io.Writer) func(Event) {
	return func(ev Event) {
		fmt.Fprintf(w, "[%d/%d] %-40s %8.1fms\n",
			ev.Done, ev.Total, ev.Name, float64(ev.Wall.Microseconds())/1000)
	}
}
