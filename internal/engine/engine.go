package engine

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

// Job is one independent experiment cell: a name for progress
// reporting, the seed from which the cell derives all randomness, and
// the function that runs it. Exactly one of Run and RunW must be set;
// RunW additionally receives the worker's Workspace so consecutive
// cells on one worker can share a reusable simulated machine.
type Job[T any] struct {
	Name string
	Seed uint64
	Run  func(seed uint64) T
	RunW func(seed uint64, ws *Workspace) T
}

// Workspace is per-worker keyed storage for state that is expensive to
// construct and cheap to Reset: simulated machines, scratch buffers.
// Each worker goroutine owns exactly one Workspace for the lifetime of
// a Run call, so values need no locking — but a job reusing a pooled
// machine MUST return it to a seed-determined state (Reset, Reseed)
// before use, or results would depend on which worker ran which cell.
type Workspace struct {
	m   map[string]any
	tel *Telemetry
}

// Get returns the value stored under key, constructing it with mk on
// the worker's first use.
func (w *Workspace) Get(key string, mk func() any) any {
	if w.m == nil {
		w.m = make(map[string]any)
	}
	v, ok := w.m[key]
	if !ok {
		v = mk()
		w.m[key] = v
	} else {
		w.tel.reuseHit()
	}
	return v
}

// Result pairs a job's output with its identity and wall-time cost.
type Result[T any] struct {
	Name  string
	Seed  uint64
	Value T
	// Wall is the host wall time the job took (not simulated cycles).
	Wall time.Duration
	// Err is non-nil when the job did not produce a Value: a
	// *PanicError when the job function panicked, or the context error
	// when the run was cancelled before this job executed. Completed
	// jobs keep Err == nil regardless of what happened to their
	// siblings, so a grid that is partially cancelled or partially
	// crashed still carries every finished cell's result.
	Err error
}

// PanicError is the recovered panic of one job, carrying the job's
// identity and the goroutine stack captured at the panic site. Run
// re-raises it after the pool drains unless Options.ContainPanics is
// set, so non-daemon callers keep fail-fast semantics while a server
// can treat a crashing job as that job's failure alone.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job %q panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// Event is one progress notification: job Index just finished as the
// Done'th of Total, after Wall host time.
type Event struct {
	Index, Done, Total int
	Name               string
	Wall               time.Duration
}

// Options tunes an engine run. The zero value runs on all cores with no
// progress reporting, fail-fast on panic, and no cancellation.
type Options struct {
	// Workers is the pool size; <= 0 selects DefaultWorkers().
	// Ignored when Pool is set (the pool's size governs).
	Workers int
	// Progress, if set, is called once per completed job. Calls are
	// serialized (never concurrent) but arrive in completion order,
	// which under parallelism is not submission order.
	Progress func(Event)
	// Context, if non-nil, cancels the run at cell boundaries: jobs
	// already executing finish normally and keep their results, jobs
	// not yet started return immediately with Err set to the context's
	// error. Run never blocks on a cancelled context — in particular
	// the job feeder bails out instead of waiting on workers that have
	// stopped draining.
	Context context.Context
	// ContainPanics keeps a panicking job from taking the process (or
	// its sibling jobs) down: the panic is recovered inside the worker,
	// recorded as the job's Result.Err (*PanicError), and the run
	// continues. When false — the CLI default — panics are still
	// recovered per job so siblings complete, but Run re-raises the
	// first one (in submission order) after the pool drains, preserving
	// fail-fast behavior on the caller's goroutine.
	ContainPanics bool
	// Pool, if set, runs the jobs on a shared persistent worker pool
	// instead of spawning per-call goroutines. Consecutive Run calls on
	// one pool reuse each worker's Workspace, so pooled machines
	// survive across grids — the daemon configuration. Determinism is
	// unaffected: jobs derive everything from their seeds.
	Pool *Pool
	// Telemetry, if set, records per-cell lifecycle counters, the
	// wall-time histogram and load gauges for this run. When nil and
	// Pool carries telemetry (NewPoolWithTelemetry), the pool's is
	// used; otherwise the run is uninstrumented.
	Telemetry *Telemetry
}

// WorkersEnv is the environment variable that overrides the default
// worker count (useful for CI and for the cmd/ binaries' default).
const WorkersEnv = "LRULEAK_WORKERS"

// DefaultWorkers returns the pool size used when Options.Workers <= 0:
// the LRULEAK_WORKERS environment variable if set and positive,
// otherwise GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv(WorkersEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return DefaultWorkers()
}

// ResolvedWorkers reports the pool size Run will actually use (before
// the cap to the job count): Workers when positive, otherwise the
// session default. Benchmarks record this — not the requested value —
// so a "workers=all" measurement taken on a single-core runner is
// visibly a 1-worker run in the emitted results.
func (o Options) ResolvedWorkers() int { return o.workers() }

// Run executes jobs over the worker pool and returns one Result per
// job, in submission order. The output is independent of the worker
// count provided each job is deterministic in its seed.
//
// A job that panics never takes its siblings down: the panic is
// recovered and recorded as that job's Result.Err. Unless
// Options.ContainPanics is set, Run re-raises the first recorded panic
// (submission order) once every in-flight job has finished.
//
// When Options.Context is cancelled, jobs that have not started yet are
// skipped with Err set to the context error; jobs already executing run
// to completion and keep their results.
func Run[T any](jobs []Job[T], opts Options) []Result[T] {
	out := make([]Result[T], len(jobs))
	if len(jobs) == 0 {
		return out
	}
	ctx := opts.Context
	cancelled := func() bool { return ctx != nil && ctx.Err() != nil }
	tel := opts.Telemetry
	if tel == nil && opts.Pool != nil {
		tel = opts.Pool.tel
	}
	tel.enqueue(len(jobs))

	var mu sync.Mutex // serializes Progress calls and the done counter
	done := 0
	finish := func(i int, wall time.Duration) {
		if opts.Progress == nil {
			return
		}
		mu.Lock()
		done++
		opts.Progress(Event{Index: i, Done: done, Total: len(jobs), Name: jobs[i].Name, Wall: wall})
		mu.Unlock()
	}
	// runOne executes job i on ws, or skips it (recording the context
	// error) when the run has been cancelled. Each index reaches
	// exactly one runOne/skip call, so out needs no locking.
	skip := func(i int) {
		tel.skip()
		out[i] = Result[T]{Name: jobs[i].Name, Seed: jobs[i].Seed, Err: ctx.Err()}
	}
	runOne := func(i int, ws *Workspace) {
		if cancelled() {
			skip(i)
			return
		}
		tel.dispatch()
		start := time.Now()
		func() {
			defer func() {
				if r := recover(); r != nil {
					out[i].Err = &PanicError{Job: jobs[i].Name, Value: r, Stack: debug.Stack()}
				}
			}()
			if jobs[i].RunW != nil {
				out[i].Value = jobs[i].RunW(jobs[i].Seed, ws)
			} else {
				out[i].Value = jobs[i].Run(jobs[i].Seed)
			}
		}()
		wall := time.Since(start)
		_, panicked := out[i].Err.(*PanicError)
		tel.done(wall, panicked)
		out[i].Name, out[i].Seed, out[i].Wall = jobs[i].Name, jobs[i].Seed, wall
		finish(i, wall)
	}

	switch {
	case opts.Pool != nil:
		opts.Pool.run(len(jobs), ctx, func(i int, ws *Workspace) { runOne(i, ws) }, skip)
	case opts.workers() == 1 || len(jobs) == 1:
		ws := &Workspace{tel: tel}
		for i := range jobs {
			runOne(i, ws)
		}
	default:
		workers := opts.workers()
		if workers > len(jobs) {
			workers = len(jobs)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				ws := &Workspace{tel: tel}
				for i := range idx {
					runOne(i, ws)
				}
			}()
		}
		feed := len(jobs)
		for i := 0; i < len(jobs); i++ {
			if ctx == nil {
				idx <- i
				continue
			}
			select {
			case idx <- i:
			case <-ctx.Done():
				feed = i
			}
			if feed == i {
				break
			}
		}
		close(idx)
		// Indices never fed are skipped here; indices fed after the
		// cancel are skipped by the worker's runOne. Either way every
		// job gets exactly one Result.
		for i := feed; i < len(jobs); i++ {
			skip(i)
		}
		wg.Wait()
	}

	if !opts.ContainPanics {
		for i := range out {
			if pe, ok := out[i].Err.(*PanicError); ok {
				panic(pe)
			}
		}
	}
	return out
}

// Values strips the bookkeeping from a result slice, preserving order.
func Values[T any](rs []Result[T]) []T {
	out := make([]T, len(rs))
	for i, r := range rs {
		out[i] = r.Value
	}
	return out
}

// RunTrials fans one experiment out over trials repetitions. Trial i
// runs f(i, seeds[i]) where the seeds are split deterministically from
// root (see Seeds), and the per-trial results come back in trial order.
func RunTrials[T any](name string, root uint64, trials int, f func(trial int, seed uint64) T, opts Options) []Result[T] {
	seeds := Seeds(root, trials)
	jobs := make([]Job[T], trials)
	for i := range jobs {
		i := i
		jobs[i] = Job[T]{
			Name: fmt.Sprintf("%s/trial=%d", name, i),
			Seed: seeds[i],
			Run:  func(seed uint64) T { return f(i, seed) },
		}
	}
	return Run(jobs, opts)
}

// StderrProgress returns a Progress callback that writes one line per
// completed job to w (pass os.Stderr), for the cmd/ binaries.
func StderrProgress(w io.Writer) func(Event) {
	return func(ev Event) {
		fmt.Fprintf(w, "[%d/%d] %-40s %8.1fms\n",
			ev.Done, ev.Total, ev.Name, float64(ev.Wall.Microseconds())/1000)
	}
}
