package engine

import "repro/internal/stats"

// Summary re-exports the repository's one descriptive-statistics type
// (mean, sample stddev, min/max, median) so drivers aggregating engine
// results don't need a second import.
type Summary = stats.Summary

// SummarizeBy extracts a float64 metric from each result and summarizes
// it with stats.Summarize — e.g. the error-rate summary over the trials
// of one sweep cell.
func SummarizeBy[T any](rs []Result[T], metric func(T) float64) Summary {
	xs := make([]float64, len(rs))
	for i, r := range rs {
		xs[i] = metric(r.Value)
	}
	return stats.Summarize(xs)
}
