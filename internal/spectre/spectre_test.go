package spectre

import (
	"testing"

	"repro/internal/hier"
	"repro/internal/perfctr"
	"repro/internal/uarch"
)

// testSecret spells "THEMAGICWORDS" in the 6-bit alphabet (A=0..Z=25,
// digits and punctuation above).
var testSecret = []byte{19, 7, 4, 12, 0, 6, 8, 2, 22, 14, 17, 3, 18}

func TestDisclosureString(t *testing.T) {
	for _, d := range []Disclosure{LRUAlg1, LRUAlg2, FRMem, FRL1, Disclosure(9)} {
		if d.String() == "" {
			t.Errorf("empty string for %d", int(d))
		}
	}
}

func TestNewRejectsOutOfAlphabetSecret(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for byte 63")
		}
	}()
	New(Config{Seed: 1}, []byte{63})
}

func TestPredictorTrains(t *testing.T) {
	var p predictor
	if p.taken() {
		t.Error("untrained predictor predicts taken")
	}
	for i := 0; i < 4; i++ {
		p.update(true)
	}
	if !p.taken() {
		t.Error("predictor not trained after 4 taken branches")
	}
	p.update(false)
	p.update(false)
	p.update(false)
	if p.taken() {
		t.Error("predictor did not untrain")
	}
}

// The headline Section VIII result: Spectre with the LRU Algorithm 1
// disclosure recovers the secret.
func TestSpectreLRUAlg1RecoversSecret(t *testing.T) {
	a := New(Config{Disclosure: LRUAlg1, Seed: 2}, testSecret)
	if acc := a.Accuracy(); acc < 0.9 {
		t.Errorf("LRU Alg.1 disclosure accuracy = %v, want >= 0.9", acc)
	}
}

func TestSpectreLRUAlg2RecoversSecret(t *testing.T) {
	a := New(Config{Disclosure: LRUAlg2, Rounds: 16, Seed: 3}, testSecret)
	if acc := a.Accuracy(); acc < 0.8 {
		t.Errorf("LRU Alg.2 disclosure accuracy = %v, want >= 0.8", acc)
	}
}

func TestSpectreFlushReloadNeedsBigWindow(t *testing.T) {
	// With the LRU channel's tiny window, F+R (mem) cannot exfiltrate:
	// its probe line must come from memory inside the window.
	small := New(Config{Disclosure: FRMem, Window: 20, Seed: 4}, testSecret[:4])
	if acc := small.Accuracy(); acc > 0.5 {
		t.Errorf("F+R (mem) succeeded (%v) within a 20-cycle window; it should need ~a memory latency", acc)
	}
	big := New(Config{Disclosure: FRMem, Window: 300, Seed: 5}, testSecret[:4])
	if acc := big.Accuracy(); acc < 0.9 {
		t.Errorf("F+R (mem) accuracy with a 300-cycle window = %v", acc)
	}
}

func TestSpectreFRL1Works(t *testing.T) {
	a := New(Config{Disclosure: FRL1, Window: 25, Seed: 6}, testSecret[:6])
	if acc := a.Accuracy(); acc < 0.9 {
		t.Errorf("F+R (L1) accuracy = %v", acc)
	}
}

// Section VIII's comparison: the minimum speculation window for the LRU
// disclosure is far below Flush+Reload (mem)'s.
func TestMinimumWindowOrdering(t *testing.T) {
	sec := testSecret[:3]
	lru := MinimumWindow(Config{Disclosure: LRUAlg1, Seed: 7}, sec, 1.0, 4, 400)
	fr := MinimumWindow(Config{Disclosure: FRMem, Seed: 7}, sec, 1.0, 4, 400)
	if lru < 0 || fr < 0 {
		t.Fatalf("window search failed: lru=%d fr=%d", lru, fr)
	}
	if lru*5 > fr {
		t.Errorf("LRU window %d not far below F+R window %d", lru, fr)
	}
}

func TestUntrainedPredictorBlocksLeak(t *testing.T) {
	a := New(Config{Disclosure: LRUAlg1, Training: -1, Seed: 8}, testSecret[:2])
	// Without training, out-of-bounds calls resolve the branch instantly
	// and never execute transiently: accuracy collapses to chance.
	correct := 0
	got := a.RecoverSecret()
	for i := range got {
		if got[i] == a.secret[i] {
			correct++
		}
	}
	if correct == len(got) {
		t.Error("attack succeeded with an untrained predictor")
	}
}

// Appendix C: the next-line prefetcher pollutes neighbouring sets' LRU
// state. Under Algorithm 2 (where any extra line in a set reads as "the
// victim touched it") this produces false positives that a single round
// cannot tell from the signal; randomized multi-round averaging recovers
// the secret. (Algorithm 1's polarity — a HIT means touched — is naturally
// robust to prefetch pollution, which only causes extra evictions.)
func TestPrefetcherNoiseCancelledByRounds(t *testing.T) {
	noisyN := New(Config{
		Disclosure: LRUAlg2, Prefetcher: hier.PrefetchNextLine,
		Rounds: 24, Seed: 9,
	}, testSecret)
	if aN := noisyN.Accuracy(); aN < 0.8 {
		t.Errorf("24 randomized rounds accuracy = %v, want >= 0.8", aN)
	}
	// The per-round probe stream must actually be triggering prefetches
	// for the defence to be exercised at all.
	clean := New(Config{Disclosure: LRUAlg2, Rounds: 24, Seed: 9}, testSecret)
	clean.Accuracy()
	if noisyN.Hier.L1().Stats().Accesses <= clean.Hier.L1().Stats().Accesses {
		t.Error("prefetcher produced no extra L1 traffic; noise model inactive")
	}
}

// Table VII: cache miss rates during the attack. The F+R (mem) attack pays
// far more L2 misses (its probe reloads come from memory after the flush,
// paper: 7.58% L2 miss rate vs 0.11% for the LRU variants) and far more
// absolute LLC misses.
func TestTableVIIMissRateShape(t *testing.T) {
	run := func(d Disclosure, window int) perfctr.Report {
		a := New(Config{Disclosure: d, Window: window, Seed: 10}, testSecret[:4])
		a.RecoverSecret()
		return perfctr.CollectCombined(a.Hier, ReqVictim, ReqAttacker)
	}
	lru := run(LRUAlg1, 30)
	fr := run(FRMem, 300)
	if fr.L2.MissRate() < 3*lru.L2.MissRate() {
		t.Errorf("F+R L2 miss rate %v not far above LRU's %v", fr.L2.MissRate(), lru.L2.MissRate())
	}
	if fr.LLC.Misses < 3*lru.LLC.Misses {
		t.Errorf("F+R LLC misses %d not far above LRU's %d", fr.LLC.Misses, lru.LLC.Misses)
	}
}

func TestDeterministicRecovery(t *testing.T) {
	a := New(Config{Disclosure: LRUAlg1, Seed: 11}, testSecret[:5])
	b := New(Config{Disclosure: LRUAlg1, Seed: 11}, testSecret[:5])
	ga, gb := a.RecoverSecret(), b.RecoverSecret()
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatal("same seed recovered different secrets")
		}
	}
}

func TestZenProfileSpectre(t *testing.T) {
	a := New(Config{Profile: uarch.Zen(), Disclosure: LRUAlg1, Rounds: 16, Seed: 12}, testSecret[:6])
	if acc := a.Accuracy(); acc < 0.6 {
		t.Errorf("Zen LRU Alg.1 accuracy = %v; coarse TSC should still allow multi-round recovery", acc)
	}
}

// Section IX-B: InvisiSpec (no microarchitectural state updates until
// non-speculative) blinds every disclosure primitive, including the LRU
// channel.
func TestInvisiSpecBlocksAllDisclosures(t *testing.T) {
	for _, d := range []Disclosure{LRUAlg1, LRUAlg2, FRL1} {
		a := New(Config{Disclosure: d, InvisiSpec: true, Seed: 31}, testSecret[:4])
		got := a.RecoverSecret()
		correct := 0
		for i := range got {
			if got[i] == a.secret[i] {
				correct++
			}
		}
		if correct == len(got) {
			t.Errorf("%v: full recovery despite InvisiSpec", d)
		}
	}
}

func TestInvisiSpecPreservesArchitecturalExecution(t *testing.T) {
	// In-bounds calls still work normally under InvisiSpec (only
	// speculative state is suppressed).
	a := New(Config{Disclosure: LRUAlg1, InvisiSpec: true, Seed: 32}, testSecret[:2])
	a.Train()
	if !a.Hier.L1().Contains(a.array1.PhysLine) {
		t.Error("architectural access did not fill the cache")
	}
}
