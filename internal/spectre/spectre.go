// Package spectre reproduces Section VIII: transient-execution attacks that
// use the LRU channel as the disclosure primitive instead of Flush+Reload.
//
// The model follows the Spectre variant 1 sample code: a victim function
//
//	if x < array1_size {            // trainable bounds check
//	    y = array2[array1[x] * 64]  // one access; its L1 SET encodes the value
//	}
//
// runs in the attacker's address space. The attacker trains the branch
// predictor with in-bounds calls, then supplies an out-of-bounds x that
// makes array1[x] alias a secret byte. During the transient window the
// victim's access touches one of the encoding L1 sets (one set is reserved
// for the attacker's pointer-chase list, one for the victim's own data; the
// paper uses 63 encoding sets, we use 62 — see Alphabet), and the attacker
// reads the touched set back through the LRU channel — Algorithm 1 (it
// shares array2) or Algorithm 2.
//
// Speculation-window model: transient loads execute serially (the array2
// index depends on the array1 load) and a load leaves a microarchitectural
// trace only if it completes within Window cycles. This directly expresses
// the paper's claim that the LRU channel needs a much smaller window: its
// encoding access is an L1 HIT (~4 cycles), while Flush+Reload's encoding
// requires a miss (~200 cycles) because the probe line was flushed first.
//
// Secrets are byte strings over a 6-bit alphabet (values 0..62), matching
// the channel's per-invocation capacity of one-of-63 sets.
package spectre

import (
	"fmt"

	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/timing"
	"repro/internal/uarch"
)

// Disclosure selects the covert channel used to exfiltrate the transient
// access (Table VII columns).
type Disclosure int

// Disclosure primitives.
const (
	// LRUAlg1 uses the shared-memory LRU channel: the attacker's "line
	// 0" of each set is the array2 line itself.
	LRUAlg1 Disclosure = iota + 1
	// LRUAlg2 uses the no-shared-memory LRU channel: the attacker
	// observes only through its own lines.
	LRUAlg2
	// FRMem is Flush+Reload with clflush to memory.
	FRMem
	// FRL1 is Flush+Reload with L1 eviction by conflicting loads.
	FRL1
)

// String names the primitive as in Table VII.
func (d Disclosure) String() string {
	switch d {
	case LRUAlg1:
		return "L1 LRU Alg.1"
	case LRUAlg2:
		return "L1 LRU Alg.2"
	case FRMem:
		return "F+R (mem)"
	case FRL1:
		return "F+R (L1)"
	default:
		return fmt.Sprintf("Disclosure(%d)", int(d))
	}
}

// Alphabet is the number of distinguishable secret values: one per usable
// L1 set. The paper uses 63 of the 64 sets, reserving one for the
// pointer-chase list; we reserve a second set for the victim's own data
// (array1, the secret bytes, and the training target), because any line the
// victim touches architecturally would otherwise be a deterministic false
// positive in its alias set. The paper's PoC has the same constraint
// implicitly (its victim variables alias *some* set).
const Alphabet = 62

// Requestor ids.
const (
	ReqVictim   = 0
	ReqAttacker = 1
)

// Config parameterizes an attack.
type Config struct {
	Profile    uarch.Profile
	Disclosure Disclosure
	// Window is the speculation window in cycles (default 20 — a handful
	// of issue slots, far below a memory round trip).
	Window int
	// Rounds is the number of randomized-order measurement rounds
	// averaged per byte (Appendix C's prefetcher-noise defence;
	// default 8).
	Rounds int
	// Training is the number of in-bounds calls before each transient
	// call (default 6).
	Training int
	// Prefetcher optionally enables the hardware prefetcher, the noise
	// source Appendix C is about.
	Prefetcher hier.PrefetcherKind
	// D is the Algorithm 2 split parameter (default 1, the odd value the
	// Tree-PLRU parity study favours).
	D int
	// InvisiSpec enables the Section IX-B mitigation from Yan et al.:
	// speculative loads leave NO microarchitectural trace (no fill, no
	// replacement-state update) until the access becomes non-speculative
	// — which for a bounds-check-bypass gadget is never. With it on,
	// every disclosure primitive goes blind.
	InvisiSpec bool
	Seed       uint64
}

func (c Config) withDefaults() Config {
	if c.Profile.Name == "" {
		c.Profile = uarch.SandyBridge()
	}
	if c.Disclosure == 0 {
		c.Disclosure = LRUAlg1
	}
	if c.Window == 0 {
		// Two L2 hits back to back (the secret byte and the probe
		// line, both typically displaced from L1 by the attacker's
		// priming) must fit: the smallest window any LRU disclosure
		// needs, still an order of magnitude below a memory access.
		c.Window = 30
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.Training == 0 {
		c.Training = 6
	}
	if c.Training < 0 {
		c.Training = 0 // explicit "no training" for ablation
	}
	if c.D == 0 {
		c.D = 1
	}
	if c.Seed == 0 {
		c.Seed = 0xa77ac4
	}
	return c
}

// predictor is a 2-bit saturating counter branch predictor for the bounds
// check.
type predictor struct{ counter int }

func (p *predictor) taken() bool { return p.counter >= 2 }

func (p *predictor) update(taken bool) {
	if taken {
		if p.counter < 3 {
			p.counter++
		}
	} else if p.counter > 0 {
		p.counter--
	}
}

// Attack is an instantiated Spectre v1 attack.
type Attack struct {
	cfg  Config
	Hier *hier.Hierarchy
	TSC  *timing.TSC
	RNG  *rng.Rand
	Sys  *mem.System

	as *mem.AddressSpace // the shared process address space

	array1Size int
	array1     mem.Addr   // base of the in-bounds array
	benign     mem.Addr   // the array2 entry touched by training calls
	secret     []byte     // victim memory contents beyond array1
	secretAddr []mem.Addr // address of each secret byte's cache line

	// array2Line[v] is the probe line whose set encodes value v.
	array2Line [Alphabet]mem.Addr
	// filler[s] are the attacker's private lines in set s (lines 1..N
	// for Algorithm 1, lines 0..N-1 for Algorithm 2).
	filler [Alphabet][]mem.Addr

	chaser *timing.Chaser
	pred   predictor
}

// New builds the attack with the given secret (every byte must be in
// [0, Alphabet)).
func New(cfg Config, secret []byte) *Attack {
	cfg = cfg.withDefaults()
	for i, b := range secret {
		if int(b) >= Alphabet {
			panic(fmt.Sprintf("spectre: secret byte %d = %d outside the %d-value alphabet", i, b, Alphabet))
		}
	}
	r := rng.New(cfg.Seed)
	a := &Attack{cfg: cfg, RNG: r, secret: append([]byte(nil), secret...)}
	a.Hier = hier.New(hier.Config{
		Profile:  cfg.Profile,
		L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU,
		RNG:        r.Split(),
		Prefetcher: cfg.Prefetcher,
		WithLLC:    true,
	})
	a.TSC = timing.NewTSC(cfg.Profile, r.Split())
	a.Sys = mem.NewSystem(cfg.Profile.LineSize)
	a.as = a.Sys.NewAddressSpace()

	prof := cfg.Profile
	reserved := prof.L1Sets - 1  // pointer-chase list
	victimSet := prof.L1Sets - 2 // victim-owned data

	// array1, the secret bytes and the benign training target all live
	// in the victim's reserved set; each secret byte gets its own line
	// so the transient array1[x] load's latency is realistic.
	a.array1Size = 16
	a.array1 = a.as.Resolve(a.as.LinesForSet(prof.L1Sets, victimSet, 1)[0])
	a.benign = a.as.Resolve(a.as.LinesForSet(prof.L1Sets, victimSet, 1)[0])
	a.secretAddr = make([]mem.Addr, len(secret))
	for i := range secret {
		a.secretAddr[i] = a.as.Resolve(a.as.LinesForSet(prof.L1Sets, victimSet, 1)[0])
	}

	// array2: one line per alphabet value, line v mapping to set v.
	for v := 0; v < Alphabet; v++ {
		a.array2Line[v] = a.as.Resolve(a.as.LinesForSet(prof.L1Sets, v, 1)[0])
	}
	// Attacker filler lines per set: N lines (enough for either
	// algorithm's receiver working set).
	for s := 0; s < Alphabet; s++ {
		vs := a.as.LinesForSet(prof.L1Sets, s, prof.L1Ways)
		a.filler[s] = make([]mem.Addr, len(vs))
		for i, v := range vs {
			a.filler[s][i] = a.as.Resolve(v)
		}
	}
	a.chaser = timing.NewChaser(a.Hier, a.as, reserved, 0, ReqAttacker, a.TSC)
	a.chaser.WarmUp()
	return a
}

// Secret exposes the planted secret (for verifying recovery in tests).
func (a *Attack) Secret() []byte { return a.secret }

// CallVictim models one invocation of the victim gadget. In-bounds calls
// execute architecturally and train the predictor; out-of-bounds calls
// execute transiently when the predictor says "taken", performing loads
// whose microarchitectural effects land only within the speculation window.
func (a *Attack) CallVictim(x int) {
	inBounds := x < a.array1Size
	predictedTaken := a.pred.taken()
	a.pred.update(inBounds)

	if inBounds {
		// Architectural execution: load array1[x], then the benign
		// array2 entry the in-bounds values point at. The benign line
		// lives in the victim's reserved set so that training cannot
		// pollute any of the 62 encoding sets.
		a.Hier.Load(a.array1, ReqVictim)
		a.Hier.Load(a.benign, ReqVictim)
		return
	}
	if !predictedTaken {
		return // branch resolved immediately; no transient execution
	}
	if a.cfg.InvisiSpec {
		// The speculative loads execute into invisible buffers and are
		// squashed with the mispredicted branch; no cache or LRU state
		// changes, so there is nothing for any receiver to observe.
		return
	}
	// Transient execution within the speculation window. The two loads
	// are data-dependent and serialize; a load leaves its
	// microarchitectural trace (fill and LRU update) only if it
	// completes before the window closes. This is the model expressing
	// the paper's Section VIII claim: the LRU channel's encoding access
	// is an L1 hit (~4 cycles) and fits a tiny window, while a
	// Flush+Reload-primed probe line must come from memory (~200
	// cycles) and needs a far larger one.
	idx := x - a.array1Size // which secret byte the OOB read hits
	if idx < 0 || idx >= len(a.secret) {
		return
	}
	lat := a.peekLatency(a.secretAddr[idx])
	if lat > a.cfg.Window {
		return // the secret-byte load itself did not complete in time
	}
	a.Hier.Load(a.secretAddr[idx], ReqVictim)
	v := int(a.secret[idx])
	if lat+a.peekLatency(a.array2Line[v]) > a.cfg.Window {
		return // the dependent access was squashed before completing
	}
	a.Hier.Load(a.array2Line[v], ReqVictim)
}

// peekLatency predicts a load's latency from current cache contents without
// performing it (the window check must not have side effects).
func (a *Attack) peekLatency(addr mem.Addr) int {
	prof := a.cfg.Profile
	switch {
	case a.Hier.L1().Contains(addr.PhysLine):
		return prof.L1Latency
	case a.Hier.L2().Contains(addr.PhysLine):
		return prof.L2Latency
	case a.Hier.LLC() != nil && a.Hier.LLC().Contains(addr.PhysLine):
		return 40
	default:
		return prof.MemLatency
	}
}

// Train performs the in-bounds calls that bias the bounds-check predictor
// toward "taken". It also models the victim's normal operation touching its
// own secret data (a victim that never reads its secret has nothing to
// leak): the secret lines end up warm in the cache hierarchy, exactly the
// Table V precondition that the encoding access is a hit.
func (a *Attack) Train() {
	for i := 0; i < a.cfg.Training; i++ {
		a.CallVictim(i % a.array1Size)
	}
	for _, sa := range a.secretAddr {
		a.Hier.Load(sa, ReqVictim)
	}
}

// Leak performs one transient call leaking secret byte idx. The predictor
// must have been trained first.
func (a *Attack) Leak(idx int) {
	a.CallVictim(a.array1Size + idx)
}

// TrainAndLeak is the convenience composition used by simple callers. Note
// that the attacks proper train BEFORE priming (training calls touch
// array2's first line architecturally and would otherwise pollute the
// primed state).
func (a *Attack) TrainAndLeak(idx int) {
	a.Train()
	a.Leak(idx)
}
