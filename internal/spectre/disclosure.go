package spectre

// This file implements the attacker's side: priming each cache set,
// triggering the transient leak, and reading the touched set back through
// the configured disclosure primitive. Appendix C's prefetcher defence is
// built in: every round visits the sets in a fresh random order and the
// per-set votes are averaged across rounds.

// fixedThreshold is the chase-latency split between "8th element hit L1"
// and anything slower.
func (a *Attack) fixedThreshold() float64 {
	prof := a.cfg.Profile
	base := float64(len(a.chaser.Elements())*prof.L1Latency + prof.MeasureOverhead)
	return base + float64(prof.L1Latency+prof.L2Latency)/2
}

// warmArray2 establishes the paper's precondition that the victim's probe
// lines are already cached (Table V note: "it is assumed that the victim
// line is already in cache before the attack").
func (a *Attack) warmArray2() {
	for v := 0; v < Alphabet; v++ {
		a.Hier.Load(a.array2Line[v], ReqVictim)
	}
}

// primeSet runs the receiver's initialization phase on set s.
func (a *Attack) primeSet(s int) {
	switch a.cfg.Disclosure {
	case LRUAlg1:
		// d=8: line 0 (the array2 line itself) plus 7 fillers.
		a.Hier.Load(a.array2Line[s], ReqAttacker)
		for i := 0; i < 7; i++ {
			a.Hier.Load(a.filler[s][i], ReqAttacker)
		}
	case LRUAlg2:
		for i := 0; i < a.cfg.D; i++ {
			a.Hier.Load(a.filler[s][i], ReqAttacker)
		}
	case FRMem:
		a.Hier.Flush(a.array2Line[s].PhysLine)
	case FRL1:
		// Evict the probe line from L1 with the 8 conflicting loads.
		for _, f := range a.filler[s] {
			a.Hier.Load(f, ReqAttacker)
		}
	}
}

// probeSet runs the decoding phase on set s and reports whether the victim
// touched it.
func (a *Attack) probeSet(s int) bool {
	th := a.fixedThreshold()
	switch a.cfg.Disclosure {
	case LRUAlg1:
		// Decode: line 8 (the 8th filler), then time line 0. A HIT
		// means the victim re-touched line 0 during speculation.
		a.Hier.Load(a.filler[s][7], ReqAttacker)
		m := a.chaser.Measure(a.array2Line[s])
		return m.Observed <= th
	case LRUAlg2:
		// Decode: the remaining own lines, then time line 0. A MISS
		// means the victim's access pushed it out.
		ways := a.cfg.Profile.L1Ways
		for i := a.cfg.D; i < ways; i++ {
			a.Hier.Load(a.filler[s][i], ReqAttacker)
		}
		m := a.chaser.Measure(a.filler[s][0])
		return m.Observed > th
	case FRMem, FRL1:
		// Reload: a fast (L1-hit) reload means the victim fetched or
		// touched the probe line.
		m := a.chaser.Measure(a.array2Line[s])
		return m.Observed <= th
	default:
		return false
	}
}

// RecoverByte leaks secret byte idx: Rounds rounds of prime → train+leak →
// probe, visiting sets in a fresh random order each round, then majority
// vote. It returns the winning value and its vote fraction.
func (a *Attack) RecoverByte(idx int) (byte, float64) {
	votes := make([]int, Alphabet)
	for round := 0; round < a.cfg.Rounds; round++ {
		// Train first: the training calls touch array2 architecturally
		// and must not land between priming and probing.
		a.Train()
		order := a.RNG.Perm(Alphabet)
		for _, s := range order {
			a.primeSet(s)
		}
		a.Leak(idx)
		// Re-establish the pointer-chase list in L1 before measuring:
		// prefetches triggered by the victim's loads can spill into
		// the reserved set (the paper's receiver likewise fetches its
		// 7 local elements before running measurements).
		a.chaser.WarmUp()
		for _, s := range order {
			if a.probeSet(s) {
				votes[s]++
			}
		}
	}
	best, bestVotes := 0, -1
	for s, v := range votes {
		if v > bestVotes {
			best, bestVotes = s, v
		}
	}
	return byte(best), float64(bestVotes) / float64(a.cfg.Rounds)
}

// RecoverByteWarm warms the victim's probe lines (the Table V
// precondition RecoverSecret establishes once for the whole string) and
// then leaks the single byte idx. It is the per-byte unit of work when
// recovery is fanned out over one Attack instance per byte.
func (a *Attack) RecoverByteWarm(idx int) (byte, float64) {
	a.warmArray2()
	return a.RecoverByte(idx)
}

// RecoverSecret leaks every byte of the planted secret.
func (a *Attack) RecoverSecret() []byte {
	a.warmArray2()
	out := make([]byte, len(a.secret))
	for i := range a.secret {
		out[i], _ = a.RecoverByte(i)
	}
	return out
}

// Accuracy runs a full recovery and returns the fraction of bytes
// recovered correctly.
func (a *Attack) Accuracy() float64 {
	got := a.RecoverSecret()
	if len(got) == 0 {
		return 0
	}
	ok := 0
	for i := range got {
		if got[i] == a.secret[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(got))
}

// MinimumWindow binary-searches the smallest speculation window (in cycles)
// at which the attack recovers at least minAccuracy of a test secret — the
// "smaller speculation window" comparison of Section VIII. The search
// range is [lo, hi] cycles.
func MinimumWindow(cfg Config, secret []byte, minAccuracy float64, lo, hi int) int {
	works := func(w int) bool {
		c := cfg
		c.Window = w
		return New(c, secret).Accuracy() >= minAccuracy
	}
	if !works(hi) {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if works(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
