// Package perfctr renders the hardware-performance-counter views used by
// Tables VI and VII: per-process cache references and miss rates at every
// level of the hierarchy, as Linux perf would report them. In the simulator
// the counters are exact (the cache layer attributes every access to a
// requestor id).
package perfctr

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/hier"
)

// LevelCounters is the per-level counter view for one process.
type LevelCounters struct {
	Level    string
	Accesses uint64
	Misses   uint64
	// Evictions counts valid lines this process displaced;
	// CrossEvictions the subset that belonged to another process (the
	// prime-and-probe interference signature the attack monitor
	// thresholds on).
	Evictions      uint64
	CrossEvictions uint64
}

// MissRate returns Misses/Accesses (0 when idle).
func (l LevelCounters) MissRate() float64 {
	if l.Accesses == 0 {
		return 0
	}
	return float64(l.Misses) / float64(l.Accesses)
}

// CrossEvictionRate returns CrossEvictions/Accesses (0 when idle): how
// much of the process's reference stream displaces other processes'
// cache lines.
func (l LevelCounters) CrossEvictionRate() float64 {
	if l.Accesses == 0 {
		return 0
	}
	return float64(l.CrossEvictions) / float64(l.Accesses)
}

// Report is the perf view of one process (requestor id) over a run.
type Report struct {
	Requestor int
	L1D       LevelCounters
	L2        LevelCounters
	LLC       LevelCounters
	HasLLC    bool
}

// Collect reads the per-requestor counters out of the hierarchy.
func Collect(h *hier.Hierarchy, requestor int) Report {
	rep := Report{Requestor: requestor}
	rep.L1D = fromStats("L1D", h.L1().RequestorStats(requestor))
	rep.L2 = fromStats("L2", h.L2().RequestorStats(requestor))
	if llc := h.LLC(); llc != nil {
		rep.HasLLC = true
		rep.LLC = fromStats("LLC", llc.RequestorStats(requestor))
	}
	return rep
}

// FromStats converts one cache level's raw counters into the perf
// view. It is exported for attack targets that model a single cache
// level outside a hier.Hierarchy (random fill, DAWG).
func FromStats(level string, s cache.Stats) LevelCounters {
	return LevelCounters{
		Level: level, Accesses: s.Accesses, Misses: s.Misses,
		Evictions: s.Evictions, CrossEvictions: s.CrossEvictions,
	}
}

// FromL1Stats builds the report of a process on a model with a single
// cache level (random fill, DAWG): L1D counters from s, an idle L2.
func FromL1Stats(requestor int, s cache.Stats) Report {
	rep := Report{Requestor: requestor}
	rep.L1D = FromStats("L1D", s)
	rep.L2.Level = "L2"
	return rep
}

func fromStats(level string, s cache.Stats) LevelCounters {
	return FromStats(level, s)
}

// CollectCombined merges the counters of several requestors (Table VII
// reports victim + attacker together during a Spectre run).
func CollectCombined(h *hier.Hierarchy, requestors ...int) Report {
	var rep Report
	rep.Requestor = -1
	rep.L1D.Level, rep.L2.Level, rep.LLC.Level = "L1D", "L2", "LLC"
	for _, r := range requestors {
		one := Collect(h, r)
		rep.L1D.Accesses += one.L1D.Accesses
		rep.L1D.Misses += one.L1D.Misses
		rep.L1D.Evictions += one.L1D.Evictions
		rep.L1D.CrossEvictions += one.L1D.CrossEvictions
		rep.L2.Accesses += one.L2.Accesses
		rep.L2.Misses += one.L2.Misses
		rep.L2.Evictions += one.L2.Evictions
		rep.L2.CrossEvictions += one.L2.CrossEvictions
		rep.LLC.Accesses += one.LLC.Accesses
		rep.LLC.Misses += one.LLC.Misses
		rep.LLC.Evictions += one.LLC.Evictions
		rep.LLC.CrossEvictions += one.LLC.CrossEvictions
		rep.HasLLC = rep.HasLLC || one.HasLLC
	}
	return rep
}

// String renders the report in the Table VI style.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "L1D %6.2f%%  L2 %6.2f%%", 100*r.L1D.MissRate(), 100*r.L2.MissRate())
	if r.HasLLC {
		fmt.Fprintf(&b, "  LLC %6.2f%%", 100*r.LLC.MissRate())
	}
	return b.String()
}
