// Package perfctr renders the hardware-performance-counter views used by
// Tables VI and VII: per-process cache references and miss rates at every
// level of the hierarchy, as Linux perf would report them. In the simulator
// the counters are exact (the cache layer attributes every access to a
// requestor id).
//
// Report and LevelCounters implement the metrics.Source interface
// structurally, exporting their counters as named PMU-style events
// ("l1d.accesses", "l2.misses", ...) for the derived-metric expression
// layer in internal/metrics.
package perfctr

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/hier"
	"repro/internal/metrics"
)

// LevelCounters is the per-level counter view for one process.
type LevelCounters struct {
	Level    string
	Accesses uint64
	Misses   uint64
	// Evictions counts valid lines this process displaced;
	// CrossEvictions the subset that belonged to another process (the
	// prime-and-probe interference signature the attack monitor
	// thresholds on).
	Evictions      uint64
	CrossEvictions uint64
}

// Add merges another level's counters into l (Level is kept).
func (l *LevelCounters) Add(o LevelCounters) {
	l.Accesses += o.Accesses
	l.Misses += o.Misses
	l.Evictions += o.Evictions
	l.CrossEvictions += o.CrossEvictions
}

// MissRate returns Misses/Accesses (0 when idle).
func (l LevelCounters) MissRate() float64 {
	if l.Accesses == 0 {
		return 0
	}
	return float64(l.Misses) / float64(l.Accesses)
}

// CrossEvictionRate returns CrossEvictions/Accesses (0 when idle): how
// much of the process's reference stream displaces other processes'
// cache lines.
func (l LevelCounters) CrossEvictionRate() float64 {
	if l.Accesses == 0 {
		return 0
	}
	return float64(l.CrossEvictions) / float64(l.Accesses)
}

// EmitEvents exports the counters as unprefixed events ("accesses",
// "misses", "evictions", "cross_evictions") — a metrics.Source.
func (l LevelCounters) EmitEvents(emit func(string, float64)) {
	emit("accesses", float64(l.Accesses))
	emit("misses", float64(l.Misses))
	emit("evictions", float64(l.Evictions))
	emit("cross_evictions", float64(l.CrossEvictions))
}

// Report is the perf view of one process (requestor id) over a run.
type Report struct {
	Requestor int
	L1D       LevelCounters
	L2        LevelCounters
	LLC       LevelCounters
	HasLLC    bool
}

// EmitEvents exports every level's counters under the standard event
// prefixes ("l1d.accesses", "l2.misses", "llc.cross_evictions", ...),
// making Report a metrics.Source. LLC events are only emitted when the
// hierarchy modeled one.
func (r Report) EmitEvents(emit func(string, float64)) {
	metrics.Prefixed("l1d", r.L1D).EmitEvents(emit)
	metrics.Prefixed("l2", r.L2).EmitEvents(emit)
	if r.HasLLC {
		metrics.Prefixed("llc", r.LLC).EmitEvents(emit)
	}
}

// Collect reads the per-requestor counters out of the hierarchy.
func Collect(h *hier.Hierarchy, requestor int) Report {
	rep := Report{Requestor: requestor}
	rep.L1D = FromStats("L1D", h.L1().RequestorStats(requestor))
	rep.L2 = FromStats("L2", h.L2().RequestorStats(requestor))
	if llc := h.LLC(); llc != nil {
		rep.HasLLC = true
		rep.LLC = FromStats("LLC", llc.RequestorStats(requestor))
	}
	return rep
}

// FromStats converts one cache level's raw counters into the perf
// view. It is exported for attack targets that model a single cache
// level outside a hier.Hierarchy (random fill, DAWG).
func FromStats(level string, s cache.Stats) LevelCounters {
	return LevelCounters{
		Level: level, Accesses: s.Accesses, Misses: s.Misses,
		Evictions: s.Evictions, CrossEvictions: s.CrossEvictions,
	}
}

// FromL1Stats builds the report of a process on a model with a single
// cache level (random fill, DAWG): L1D counters from s, an idle L2.
func FromL1Stats(requestor int, s cache.Stats) Report {
	rep := Report{Requestor: requestor}
	rep.L1D = FromStats("L1D", s)
	rep.L2.Level = "L2"
	return rep
}

// CollectCombined merges the counters of several requestors (Table VII
// reports victim + attacker together during a Spectre run).
func CollectCombined(h *hier.Hierarchy, requestors ...int) Report {
	var rep Report
	rep.Requestor = -1
	rep.L1D.Level, rep.L2.Level, rep.LLC.Level = "L1D", "L2", "LLC"
	for _, r := range requestors {
		one := Collect(h, r)
		rep.L1D.Add(one.L1D)
		rep.L2.Add(one.L2)
		rep.LLC.Add(one.LLC)
		rep.HasLLC = rep.HasLLC || one.HasLLC
	}
	return rep
}

// String renders the report in the Table VI style. The percentages are
// the metrics-layer definitions ("l1d.miss_rate" etc.) evaluated over
// this report's events.
func (r Report) String() string {
	set := metrics.Default()
	rate := func(name string) float64 {
		v, err := set.Eval(name, r)
		if err != nil {
			return 0
		}
		return v
	}
	var b strings.Builder
	fmt.Fprintf(&b, "L1D %6.2f%%  L2 %6.2f%%", 100*rate("l1d.miss_rate"), 100*rate("l2.miss_rate"))
	if r.HasLLC {
		fmt.Fprintf(&b, "  LLC %6.2f%%", 100*rate("llc.miss_rate"))
	}
	return b.String()
}
