package perfctr

import (
	"strings"
	"testing"

	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/uarch"
)

func rig(withLLC bool) (*hier.Hierarchy, *mem.AddressSpace) {
	h := hier.New(hier.Config{
		Profile:  uarch.SandyBridge(),
		L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU,
		WithLLC: withLLC,
	})
	sys := mem.NewSystem(64)
	return h, sys.NewAddressSpace()
}

func TestCollectCounts(t *testing.T) {
	h, as := rig(true)
	a := as.Resolve(as.Alloc(1))
	h.Load(a, 0) // miss at every level
	h.Load(a, 0) // L1 hit
	rep := Collect(h, 0)
	if rep.L1D.Accesses != 2 || rep.L1D.Misses != 1 {
		t.Errorf("L1D = %+v", rep.L1D)
	}
	if rep.L2.Accesses != 1 || rep.L2.Misses != 1 {
		t.Errorf("L2 = %+v", rep.L2)
	}
	if !rep.HasLLC || rep.LLC.Accesses != 1 {
		t.Errorf("LLC = %+v (hasLLC %v)", rep.LLC, rep.HasLLC)
	}
	if got := rep.L1D.MissRate(); got != 0.5 {
		t.Errorf("L1D miss rate = %v", got)
	}
}

func TestCollectNoLLC(t *testing.T) {
	h, as := rig(false)
	h.Load(as.Resolve(as.Alloc(1)), 0)
	rep := Collect(h, 0)
	if rep.HasLLC {
		t.Error("reported an LLC that does not exist")
	}
	if strings.Contains(rep.String(), "LLC") {
		t.Error("render mentions absent LLC")
	}
}

func TestCollectSeparatesRequestors(t *testing.T) {
	h, as := rig(false)
	a := as.Resolve(as.Alloc(1))
	b := as.Resolve(as.Alloc(1))
	h.Load(a, 0)
	h.Load(b, 1)
	h.Load(b, 1)
	if got := Collect(h, 0).L1D.Accesses; got != 1 {
		t.Errorf("requestor 0 accesses = %d", got)
	}
	if got := Collect(h, 1).L1D.Accesses; got != 2 {
		t.Errorf("requestor 1 accesses = %d", got)
	}
	if got := Collect(h, 7).L1D.Accesses; got != 0 {
		t.Errorf("unknown requestor accesses = %d", got)
	}
}

func TestCombinedSumsAndRenders(t *testing.T) {
	h, as := rig(true)
	h.Load(as.Resolve(as.Alloc(1)), 0)
	h.Load(as.Resolve(as.Alloc(1)), 1)
	both := CollectCombined(h, 0, 1)
	if both.L1D.Accesses != 2 || both.L1D.Misses != 2 {
		t.Errorf("combined = %+v", both.L1D)
	}
	out := both.String()
	if !strings.Contains(out, "L1D") || !strings.Contains(out, "LLC") {
		t.Errorf("render %q incomplete", out)
	}
}

func TestMissRateIdle(t *testing.T) {
	var l LevelCounters
	if l.MissRate() != 0 {
		t.Error("idle miss rate not 0")
	}
}
