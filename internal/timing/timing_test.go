package timing

import (
	"testing"

	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/uarch"
)

func intelRig(t *testing.T) (*hier.Hierarchy, *mem.System, *mem.AddressSpace, *TSC) {
	t.Helper()
	h := hier.New(hier.Config{
		Profile:  uarch.SandyBridge(),
		L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU,
	})
	sys := mem.NewSystem(64)
	as := sys.NewAddressSpace()
	return h, sys, as, NewTSC(uarch.SandyBridge(), rng.New(1))
}

func TestObserveQuantizationIntel(t *testing.T) {
	tsc := NewTSC(uarch.SandyBridge(), rng.New(2))
	v := tsc.Observe(36)
	if v != float64(int64(v)) {
		t.Errorf("Intel observation %v not integral", v)
	}
}

func TestObserveQuantizationAMD(t *testing.T) {
	tsc := NewTSC(uarch.Zen(), rng.New(2))
	q := float64(uarch.Zen().TSCQuantum)
	for i := 0; i < 100; i++ {
		v := tsc.Observe(40)
		if r := v / q; r != float64(int64(r)) {
			t.Fatalf("AMD observation %v is not a multiple of quantum %v", v, q)
		}
	}
}

func TestObserveMonotoneInMean(t *testing.T) {
	tsc := NewTSC(uarch.SandyBridge(), rng.New(3))
	var hit, miss float64
	const n = 2000
	for i := 0; i < n; i++ {
		hit += tsc.Observe(32)  // 8 L1 hits
		miss += tsc.Observe(40) // 7 hits + L2 hit
	}
	if miss/n-hit/n < 6 {
		t.Errorf("mean separation = %v, want ~8", miss/n-hit/n)
	}
}

// Figure 3 (left): with the pointer chase on Intel, the L1-hit and L1-miss
// distributions must be cleanly separable.
func TestChaseSeparatesHitMissIntel(t *testing.T) {
	h, _, as, tsc := intelRig(t)
	ch := NewChaser(h, as, 63, 0, 1, tsc)
	ch.WarmUp()

	target := as.Resolve(as.LinesForSet(64, 5, 1)[0])
	var hits, misses []float64
	for i := 0; i < 2000; i++ {
		h.Load(target, 1) // ensure in L1
		hits = append(hits, ch.Measure(target).Observed)
		h.Flush(target.PhysLine)
		h.Load(target, 1)             // now in L1 again; evict only from L1:
		h.L1().Flush(target.PhysLine) // leaves L2 copy -> true L1 miss, L2 hit
		misses = append(misses, ch.Measure(target).Observed)
		h.Flush(target.PhysLine)
	}
	th := stats.OtsuThreshold(append(append([]float64{}, hits...), misses...))
	wrongHits := 0
	for _, v := range hits {
		if v > th {
			wrongHits++
		}
	}
	wrongMisses := 0
	for _, v := range misses {
		if v <= th {
			wrongMisses++
		}
	}
	if rate := float64(wrongHits+wrongMisses) / float64(len(hits)+len(misses)); rate > 0.05 {
		t.Errorf("chase misclassification rate %v on Intel, want < 5%%", rate)
	}
}

// Appendix A (Figure 13): the naive single-access measurement must NOT
// separate an L1 hit from an L2 hit.
func TestSingleAccessCannotSeparate(t *testing.T) {
	h, _, as, tsc := intelRig(t)
	ch := NewChaser(h, as, 63, 0, 1, tsc)
	target := as.Resolve(as.LinesForSet(64, 5, 1)[0])
	var hits, misses []float64
	for i := 0; i < 2000; i++ {
		h.Load(target, 1)
		hits = append(hits, ch.MeasureSingle(target).Observed)
		h.L1().Flush(target.PhysLine)
		misses = append(misses, ch.MeasureSingle(target).Observed)
	}
	mh, mm := stats.Summarize(hits), stats.Summarize(misses)
	// The distributions overlap: their means differ by less than one
	// standard deviation.
	if diff := mm.Mean - mh.Mean; diff > mh.Std {
		t.Errorf("single-access measurement separates hit from miss (Δmean=%v, σ=%v); Appendix A says it must not", diff, mh.Std)
	}
}

// On AMD the quantum is so coarse that a single chase measurement cannot
// reliably decode a bit, but the distributions still differ — the receiver
// must average (Section VI-A).
func TestAMDChaseNeedsAveraging(t *testing.T) {
	prof := uarch.Zen()
	h := hier.New(hier.Config{Profile: prof, L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU})
	sys := mem.NewSystem(64)
	as := sys.NewAddressSpace()
	tsc := NewTSC(prof, rng.New(5))
	ch := NewChaser(h, as, 63, 0, 1, tsc)
	ch.WarmUp()
	target := as.Resolve(as.LinesForSet(64, 5, 1)[0])
	var hits, misses []float64
	for i := 0; i < 4000; i++ {
		h.Load(target, 1)
		ch.WarmUp()
		hits = append(hits, ch.Measure(target).Observed)
		h.L1().Flush(target.PhysLine)
		ch.WarmUp()
		misses = append(misses, ch.Measure(target).Observed)
	}
	mh, mm := stats.Summarize(hits), stats.Summarize(misses)
	if mm.Mean <= mh.Mean {
		t.Errorf("AMD miss mean %v not above hit mean %v", mm.Mean, mh.Mean)
	}
	// Single-shot separation must be poor: the distributions share
	// quantization buckets.
	th := stats.OtsuThreshold(append(append([]float64{}, hits...), misses...))
	wrong := 0
	for _, v := range hits {
		if v > th {
			wrong++
		}
	}
	for _, v := range misses {
		if v <= th {
			wrong++
		}
	}
	rate := float64(wrong) / float64(len(hits)+len(misses))
	if rate < 0.02 {
		t.Errorf("AMD single-shot error rate %v suspiciously low; coarse TSC should blur the channel", rate)
	}
}

func TestChaserElementsInReservedSet(t *testing.T) {
	h, sys, as, tsc := intelRig(t)
	ch := NewChaser(h, as, 63, 0, 1, tsc)
	for _, e := range ch.Elements() {
		if got := sys.SetIndexBits(e.Phys, 64); got != 63 {
			t.Errorf("chase element in set %d, want 63", got)
		}
	}
	if len(ch.Elements()) != DefaultChainLength {
		t.Errorf("chain length = %d", len(ch.Elements()))
	}
}

func TestChaserCustomLength(t *testing.T) {
	h, _, as, tsc := intelRig(t)
	ch := NewChaser(h, as, 63, 11, 1, tsc)
	if len(ch.Elements()) != 11 {
		t.Errorf("chain length = %d, want 11", len(ch.Elements()))
	}
	if ch.ChaseCost() != 12*4 {
		t.Errorf("chase cost = %d", ch.ChaseCost())
	}
}

func TestMeasureDoesNotPolluteTargetSet(t *testing.T) {
	// The probe elements live in set 63; measuring a target in set 5 must
	// leave every other set's replacement state untouched except set 5.
	h, _, as, tsc := intelRig(t)
	ch := NewChaser(h, as, 63, 0, 1, tsc)
	ch.WarmUp()
	target := as.Resolve(as.LinesForSet(64, 5, 1)[0])
	h.Load(target, 1)
	var before [64]string
	for s := 0; s < 64; s++ {
		before[s] = h.L1().PolicyState(s)
	}
	ch.Measure(target)
	for s := 0; s < 64; s++ {
		after := h.L1().PolicyState(s)
		if s == 5 || s == 63 {
			continue
		}
		if after != before[s] {
			t.Errorf("set %d state changed by measurement: %s -> %s", s, before[s], after)
		}
	}
}

func TestDVFSWobbleDriftsAMD(t *testing.T) {
	tsc := NewTSC(uarch.Zen(), rng.New(9))
	seen := map[float64]bool{}
	for i := 0; i < 20000; i++ {
		seen[tsc.Observe(45)] = true
	}
	if len(seen) < 2 {
		t.Error("AMD observations never drifted across quantization buckets")
	}
}

func TestIntelNoDVFSWobble(t *testing.T) {
	tsc := NewTSC(uarch.SandyBridge(), rng.New(9))
	if tsc.scale != 1 {
		t.Fatal("initial scale not 1")
	}
	for i := 0; i < 1000; i++ {
		tsc.Observe(40)
	}
	if tsc.scale != 1 {
		t.Error("Intel profile scale drifted despite zero wobble")
	}
}

func TestObserveNeverNegative(t *testing.T) {
	tsc := NewTSC(uarch.SandyBridge(), rng.New(10))
	for i := 0; i < 10000; i++ {
		if v := tsc.Observe(0); v < 0 {
			t.Fatalf("negative observation %v", v)
		}
		if v := tsc.ObserveSingle(0); v < 0 {
			t.Fatalf("negative single observation %v", v)
		}
	}
}
