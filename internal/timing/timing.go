// Package timing models how the receiver observes latency: the rdtscp time
// stamp counter with per-microarchitecture granularity and serialization
// noise, the naive single-access measurement of Appendix A (which cannot
// tell an L1 hit from an L2 hit), and the pointer-chasing probe of Section
// IV-D (Figure 2) that can.
//
// The pointer-chase probe walks a linked list of 7 elements resident in the
// receiver's own memory plus the target address as the 8th element. Because
// each load's address depends on the previous load's data, the eight
// accesses serialize, so their latencies add: 7 L1 hits plus the target.
// The total is then long enough that the hit/miss difference survives the
// measurement noise that swamps a single access.
package timing

import (
	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/uarch"
)

// TSC converts true latencies (in core cycles) into observed rdtscp
// measurements, applying serialization overhead, jitter, DVFS drift, and
// readout quantization.
type TSC struct {
	prof uarch.Profile
	r    *rng.Rand

	// scale is the current ratio of TSC cycles to core cycles. The TSC
	// runs at constant (nominal) frequency while DVFS moves the core
	// clock, so measured latency drifts with power management — visible
	// as the shifting latency bands of Figure 7.
	scale float64
}

// NewTSC builds a TSC model for the profile, drawing noise from r.
func NewTSC(prof uarch.Profile, r *rng.Rand) *TSC {
	return &TSC{prof: prof, r: r, scale: 1}
}

// step advances the DVFS drift: a bounded random walk of the core/TSC
// frequency ratio with steps three orders of magnitude smaller than the
// wobble amplitude, so consecutive measurements shift slowly.
func (t *TSC) step() {
	w := t.prof.DVFSWobble
	if w == 0 {
		return
	}
	t.scale += t.r.Norm(0, w/500)
	if t.scale < 1-w {
		t.scale = 1 - w
	}
	if t.scale > 1+w {
		t.scale = 1 + w
	}
}

// Observe returns the rdtscp-measured value for an operation that truly
// took trueCycles core cycles, assuming the operation fully serializes with
// the surrounding rdtscp pair (the pointer-chase case).
func (t *TSC) Observe(trueCycles float64) float64 {
	t.step()
	lat := trueCycles*t.scale + float64(t.prof.MeasureOverhead) + t.r.Norm(0, t.prof.MeasureJitter)
	return t.quantize(lat)
}

// ObserveSingle returns the rdtscp-measured value for a single memory
// access (Appendix A, Figure 12). Out-of-order execution overlaps a short
// load with the serializing instruction sequence itself, hiding the first
// execShadow cycles of the load; only the remainder is visible. L1 (≈4
// cycles) and L2 (≈12–17 cycles) latencies both vanish inside the shadow,
// which is why Figure 13's hit and miss histograms coincide.
func (t *TSC) ObserveSingle(trueCycles float64) float64 {
	t.step()
	const execShadow = 18
	visible := trueCycles - execShadow
	if visible < 0 {
		visible = 0
	}
	base := float64(t.prof.MeasureOverhead) + singleAccessFloor
	lat := visible*t.scale + base + t.r.Norm(0, singleAccessJitter*t.prof.MeasureJitter)
	return t.quantize(lat)
}

// singleAccessFloor and singleAccessJitter shape the Appendix A
// measurement: the rdtscp/rdtscp pair alone costs ~20 cycles and is much
// noisier than the difference between an L1 and an L2 hit.
const (
	singleAccessFloor  = 20
	singleAccessJitter = 3.5
)

func (t *TSC) quantize(lat float64) float64 {
	q := float64(t.prof.TSCQuantum)
	if q <= 1 {
		if lat < 0 {
			return 0
		}
		return float64(int64(lat + 0.5))
	}
	n := int64(lat/q + 0.5)
	if n < 0 {
		n = 0
	}
	return float64(n) * q
}

// Measurement is one observed probe.
type Measurement struct {
	Observed float64    // what rdtscp reported, in TSC cycles
	Level    hier.Level // where the target was truly served from
	L1Hit    bool       // true tag hit in L1 at full speed (no utag penalty)
}

// Chaser is the receiver's pointer-chasing measurement apparatus: seven
// linked-list elements in the receiver's own address space, all placed in
// one reserved cache set so that probing never pollutes the target set's
// LRU state (the "further optimization" at the end of Section IV-D).
type Chaser struct {
	h     *hier.Hierarchy
	tsc   *TSC
	elems []mem.Addr
	req   int
}

// DefaultChainLength is the paper's linked-list length (7 local elements;
// the 8th access is the target).
const DefaultChainLength = 7

// NewChaser allocates chainLen list elements in as, all mapping to
// reservedSet, measuring on behalf of requestor req. chainLen <= 0 uses
// DefaultChainLength.
func NewChaser(h *hier.Hierarchy, as *mem.AddressSpace, reservedSet, chainLen, req int, tsc *TSC) *Chaser {
	if chainLen <= 0 {
		chainLen = DefaultChainLength
	}
	prof := h.Profile()
	vaddrs := as.LinesForSet(prof.L1Sets, reservedSet, chainLen)
	elems := make([]mem.Addr, chainLen)
	for i, v := range vaddrs {
		elems[i] = as.Resolve(v)
	}
	return &Chaser{h: h, tsc: tsc, elems: elems, req: req}
}

// Elements returns the resolved list elements (for tests).
func (c *Chaser) Elements() []mem.Addr { return c.elems }

// WarmUp fetches every list element into L1 so the first seven accesses of
// each measurement hit.
func (c *Chaser) WarmUp() {
	for _, e := range c.elems {
		c.h.Load(e, c.req)
	}
}

// Measure walks the list and then the target, returning the observed total
// latency of the serialized chain. The target load participates fully in
// the cache hierarchy (it can evict, fill, and trigger prefetches), exactly
// like the real receiver's decode access.
func (c *Chaser) Measure(target mem.Addr) Measurement {
	var total float64
	for _, e := range c.elems {
		total += float64(c.h.Load(e, c.req).Latency)
	}
	res := c.h.Load(target, c.req)
	total += float64(res.Latency)
	return Measurement{
		Observed: c.tsc.Observe(total),
		Level:    res.Level,
		L1Hit:    res.L1Hit && !res.UtagMiss,
	}
}

// MeasureSingle measures the target with the naive Appendix A
// single-access rdtscp bracket instead of the chase.
func (c *Chaser) MeasureSingle(target mem.Addr) Measurement {
	res := c.h.Load(target, c.req)
	return Measurement{
		Observed: c.tsc.ObserveSingle(float64(res.Latency)),
		Level:    res.Level,
		L1Hit:    res.L1Hit && !res.UtagMiss,
	}
}

// ChaseCost returns the true (unobserved) cycle cost of one full probe when
// every access hits L1: the floor of the receiver's per-measurement budget.
func (c *Chaser) ChaseCost() int {
	return (len(c.elems) + 1) * c.h.Profile().L1Latency
}
