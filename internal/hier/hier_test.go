package hier

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/uarch"
)

func newTestHier(t *testing.T, cfg Config) (*Hierarchy, *mem.System, *mem.AddressSpace) {
	t.Helper()
	if cfg.Profile.Name == "" {
		cfg.Profile = uarch.SandyBridge()
	}
	h := New(cfg)
	sys := mem.NewSystem(cfg.Profile.LineSize)
	return h, sys, sys.NewAddressSpace()
}

func TestColdLoadComesFromMemory(t *testing.T) {
	h, _, as := newTestHier(t, Config{L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU})
	a := as.Resolve(as.Alloc(1))
	res := h.Load(a, 0)
	if res.Level != LevelMem {
		t.Fatalf("cold load served from %v", res.Level)
	}
	if res.Latency != uarch.SandyBridge().MemLatency {
		t.Errorf("latency = %d", res.Latency)
	}
}

func TestSecondLoadHitsL1(t *testing.T) {
	h, _, as := newTestHier(t, Config{L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU})
	a := as.Resolve(as.Alloc(1))
	h.Load(a, 0)
	res := h.Load(a, 0)
	if res.Level != LevelL1 || !res.L1Hit {
		t.Fatalf("second load: %+v", res)
	}
	if res.Latency != 4 {
		t.Errorf("L1 hit latency = %d, want 4", res.Latency)
	}
}

func TestL1EvictedStillHitsL2(t *testing.T) {
	h, _, as := newTestHier(t, Config{L1Policy: replacement.TrueLRU, L2Policy: replacement.TrueLRU})
	prof := h.Profile()
	const set = 7
	lines := as.LinesForSet(prof.L1Sets, set, prof.L1Ways+1)
	var addrs []mem.Addr
	for _, v := range lines {
		addrs = append(addrs, as.Resolve(v))
	}
	// Fill set with lines 0..7, then access line 8: line 0 leaves L1 but
	// stays in L2 (different L2 set mapping spreads them, but line 0 was
	// filled into L2 on its initial miss).
	for _, a := range addrs[:8] {
		h.Load(a, 0)
	}
	h.Load(addrs[8], 0)
	if h.L1().Contains(addrs[0].PhysLine) {
		t.Fatal("line 0 still in L1")
	}
	res := h.Load(addrs[0], 0)
	if res.Level != LevelL2 {
		t.Fatalf("re-load of evicted line served from %v", res.Level)
	}
	if res.Latency != 12 {
		t.Errorf("L2 latency = %d, want 12", res.Latency)
	}
}

func TestFlushRemovesFromAllLevels(t *testing.T) {
	h, _, as := newTestHier(t, Config{L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU, WithLLC: true})
	a := as.Resolve(as.Alloc(1))
	h.Load(a, 0)
	if lvl := h.Flush(a.PhysLine); lvl == 0 {
		t.Fatal("flush found nothing")
	}
	res := h.Load(a, 0)
	if res.Level != LevelMem {
		t.Fatalf("post-flush load served from %v", res.Level)
	}
	if h.Flush(999999) != 0 {
		t.Error("flushing absent line reported a level")
	}
}

func TestLLCPath(t *testing.T) {
	h, _, as := newTestHier(t, Config{L1Policy: replacement.TrueLRU, L2Policy: replacement.TrueLRU, WithLLC: true})
	a := as.Resolve(as.Alloc(1))
	h.Load(a, 0)
	// Evict from L1 and L2 by flushing just those levels via direct cache
	// access, leaving the LLC copy.
	h.L1().Flush(a.PhysLine)
	h.L2().Flush(a.PhysLine)
	res := h.Load(a, 0)
	if res.Level != LevelLLC {
		t.Fatalf("load served from %v, want LLC", res.Level)
	}
	if res.Latency != 40 {
		t.Errorf("LLC latency = %d", res.Latency)
	}
}

func TestUtagPenaltyOnZen(t *testing.T) {
	h := New(Config{Profile: uarch.Zen(), L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU})
	sys := mem.NewSystem(64)
	sender, receiver := sys.NewAddressSpace(), sys.NewAddressSpace()
	sAddrs, rAddrs := mem.SharedLinesForSet(sys, sender, receiver, 64, 5, 1)
	sa, ra := sender.Resolve(sAddrs[0]), receiver.Resolve(rAddrs[0])

	h.Load(sa, 0) // sender installs via its linear address
	res := h.Load(ra, 1)
	if !res.L1Hit || !res.UtagMiss {
		t.Fatalf("cross-space hit: %+v", res)
	}
	if res.Latency != uarch.Zen().L2Latency {
		t.Errorf("utag-miss latency = %d, want L2 latency %d", res.Latency, uarch.Zen().L2Latency)
	}
	// Receiver retrains the utag; its next access is a fast hit.
	res = h.Load(ra, 1)
	if !res.L1Hit || res.UtagMiss || res.Latency != uarch.Zen().L1Latency {
		t.Errorf("retrained access: %+v", res)
	}
}

func TestNoUtagPenaltyOnIntel(t *testing.T) {
	h := New(Config{Profile: uarch.SandyBridge(), L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU})
	sys := mem.NewSystem(64)
	sender, receiver := sys.NewAddressSpace(), sys.NewAddressSpace()
	sAddrs, rAddrs := mem.SharedLinesForSet(sys, sender, receiver, 64, 5, 1)
	h.Load(sender.Resolve(sAddrs[0]), 0)
	res := h.Load(receiver.Resolve(rAddrs[0]), 1)
	if res.UtagMiss || res.Latency != 4 {
		t.Errorf("Intel cross-space hit: %+v", res)
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	h, _, as := newTestHier(t, Config{
		L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU,
		Prefetcher: PrefetchNextLine,
	})
	base := as.Alloc(1)
	a := as.Resolve(base)
	next := as.Resolve(base + 64)
	res := h.Load(a, 0)
	if !res.PrefetchIssued {
		t.Fatal("miss did not trigger next-line prefetch")
	}
	if !h.L1().Contains(next.PhysLine) {
		t.Fatal("next line not prefetched into L1")
	}
	// A hit must not prefetch.
	res = h.Load(a, 0)
	if res.PrefetchIssued {
		t.Error("hit triggered prefetch")
	}
}

func TestStridePrefetcher(t *testing.T) {
	h, _, as := newTestHier(t, Config{
		L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU,
		Prefetcher: PrefetchStride,
	})
	base := as.Alloc(8)
	// Misses at lines 0, 2, 4: after the second identical stride the
	// prefetcher should fetch line 6.
	h.Load(as.Resolve(base), 0)
	h.Load(as.Resolve(base+2*64), 0)
	res := h.Load(as.Resolve(base+4*64), 0)
	if !res.PrefetchIssued {
		t.Fatal("constant stride not detected")
	}
	if !h.L1().Contains(as.Resolve(base + 6*64).PhysLine) {
		t.Fatal("strided line not prefetched")
	}
}

func TestStridePrefetcherIgnoresIrregular(t *testing.T) {
	h, _, as := newTestHier(t, Config{
		L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU,
		Prefetcher: PrefetchStride,
	})
	base := as.Alloc(16)
	for i, off := range []uint64{0, 3, 4, 9, 15} {
		res := h.Load(as.Resolve(base+off*64), 0)
		if res.PrefetchIssued {
			t.Fatalf("irregular access %d triggered prefetch", i)
		}
	}
}

func TestPrefetchPollutesLRUState(t *testing.T) {
	// The Appendix C problem in miniature: with the next-line prefetcher,
	// a miss in set S also updates the LRU state of set S+1.
	h, _, as := newTestHier(t, Config{
		L1Policy: replacement.TrueLRU, L2Policy: replacement.TrueLRU,
		Prefetcher: PrefetchNextLine,
	})
	prof := h.Profile()
	const set = 10
	lines := as.LinesForSet(prof.L1Sets, set, 1)
	before := h.L1().PolicyState(set + 1)
	h.Load(as.Resolve(lines[0]), 0)
	after := h.L1().PolicyState(set + 1)
	if before == after {
		t.Error("prefetch did not touch neighbouring set's replacement state")
	}
}

func TestPLBypassKeepsDataOutOfL1(t *testing.T) {
	h, _, as := newTestHier(t, Config{
		L1Policy: replacement.TrueLRU, L2Policy: replacement.TrueLRU,
		PartitionLockedL1: true,
	})
	prof := h.Profile()
	const set = 2
	lines := as.LinesForSet(prof.L1Sets, set, prof.L1Ways+1)
	// Lock line 0 (the eventual LRU victim) then fill the rest.
	h.LoadOp(as.Resolve(lines[0]), 0, lockOp())
	for i := 1; i < 8; i++ {
		h.Load(as.Resolve(lines[i]), 0)
	}
	res := h.Load(as.Resolve(lines[8]), 0)
	if !res.Bypassed {
		t.Fatal("miss with locked victim not bypassed")
	}
	if h.L1().Contains(as.Resolve(lines[8]).PhysLine) {
		t.Fatal("bypassed line installed in L1")
	}
	// Bypassed data is still served (from L2/mem) on later accesses.
	res = h.Load(as.Resolve(lines[8]), 0)
	if res.Level != LevelL2 {
		t.Errorf("bypassed line later served from %v, want L2", res.Level)
	}
}

func TestWarmBringsLineToL1(t *testing.T) {
	h, _, as := newTestHier(t, Config{L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU})
	a := as.Resolve(as.Alloc(1))
	h.Warm(a, 0)
	if !h.L1().Contains(a.PhysLine) {
		t.Fatal("Warm did not fill L1")
	}
}

func TestRandomPolicyHierarchy(t *testing.T) {
	h := New(Config{
		Profile:  uarch.SandyBridge(),
		L1Policy: replacement.Random, L2Policy: replacement.Random,
		RNG: rng.New(4),
	})
	sys := mem.NewSystem(64)
	as := sys.NewAddressSpace()
	for i := 0; i < 100; i++ {
		h.Load(as.Resolve(as.Alloc(1)), 0)
	}
	if h.L1().Stats().Misses != 100 {
		t.Errorf("misses = %d", h.L1().Stats().Misses)
	}
}

func TestLevelAndPrefetcherStrings(t *testing.T) {
	if LevelL1.String() != "L1" || LevelMem.String() != "Mem" || Level(9).String() == "" {
		t.Error("Level.String broken")
	}
	if PrefetchNone.String() != "none" || PrefetchNextLine.String() != "next-line" ||
		PrefetchStride.String() != "stride" || PrefetcherKind(9).String() == "" {
		t.Error("PrefetcherKind.String broken")
	}
}

func lockOp() cache.Op { return cache.OpLock }
