package hier

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/trace"
)

// Batch execution over the hierarchy. LoadBatch and LoadTrace replay
// pre-resolved access programs bit-identically to per-access Load
// calls: same results, same per-level Stats, same replacement-state
// and RNG evolution. Where the configuration allows it they split the
// work into one L1 AccessBatch pass plus a walk of the misses — valid
// because L1 and L2 hold independent state, so only a shared Random
// generator or a prefetcher (whose loads re-enter the L1 between
// records) forces strict per-access interleaving.

// batchChunk bounds the scratch buffers of the batch paths: requests
// are staged and executed in chunks so arbitrarily long programs run
// allocation-free after the first call.
const batchChunk = 1024

// phaseSplitOK reports whether the L1 pass may run ahead of the lower
// levels: no level draws victims from the shared generator, and no
// prefetcher injects loads between records.
func (h *Hierarchy) phaseSplitOK() bool {
	return h.cfg.L1Policy != replacement.Random &&
		h.cfg.L2Policy != replacement.Random &&
		h.cfg.Prefetcher == PrefetchNone
}

func (h *Hierarchy) scratch(n int) ([]cache.Request, []cache.Result) {
	if h.breqs == nil {
		h.breqs = make([]cache.Request, batchChunk)
		h.bres = make([]cache.Result, batchChunk)
	}
	return h.breqs[:n], h.bres[:n]
}

// reqAddr reconstructs the byte-address view of a record. Records hold
// line numbers only; rebuilding line-aligned byte addresses is exact
// for everything the hierarchy consults them for (page boundaries are
// line-aligned, so the prefetcher's samePage test is unaffected).
func (h *Hierarchy) reqAddr(req cache.Request) mem.Addr {
	ls := uint64(h.cfg.Profile.LineSize)
	return mem.Addr{
		Virt: req.LinearLine * ls, Phys: req.PhysLine * ls,
		VirtLine: req.LinearLine, PhysLine: req.PhysLine,
	}
}

// loadReq is Load for a pre-resolved record.
func (h *Hierarchy) loadReq(req cache.Request) Result {
	r1 := h.l1.Access(req)
	return h.finish(h.reqAddr(req), req.Requestor, r1, true)
}

// LoadBatch performs loads of addrs in order on behalf of requestor,
// writing the i'th load's Result to out[i] (out must be at least as
// long as addrs). It is bit-identical to calling Load per address.
func (h *Hierarchy) LoadBatch(addrs []mem.Addr, requestor int, out []Result) {
	if len(out) < len(addrs) {
		panic("hier: LoadBatch output slice shorter than address slice")
	}
	if !h.phaseSplitOK() {
		for i := range addrs {
			out[i] = h.load(addrs[i], requestor, cache.OpLoad, true)
		}
		return
	}
	p := h.cfg.Profile
	l1Hit := Result{Level: LevelL1, Latency: p.L1Latency, L1Hit: true}
	for base := 0; base < len(addrs); base += batchChunk {
		n := min(batchChunk, len(addrs)-base)
		reqs, res := h.scratch(n)
		for i := 0; i < n; i++ {
			a := &addrs[base+i]
			reqs[i] = cache.Request{PhysLine: a.PhysLine, LinearLine: a.VirtLine, Requestor: requestor}
		}
		h.l1.AccessBatch(reqs, res)
		for i := 0; i < n; i++ {
			if res[i].Hit && !res[i].UtagMiss {
				out[base+i] = l1Hit
				continue
			}
			out[base+i] = h.finish(addrs[base+i], requestor, res[i], true)
		}
	}
}

// NewTraceBuilder returns a trace.Builder matched to this hierarchy's
// L1, with run analysis enabled exactly when replaying a marked span
// as guaranteed L1 hits is sound here (no PL bypass, no utag latency
// remapping, no prefetcher loads invisible to the analysis).
func (h *Hierarchy) NewTraceBuilder() *trace.Builder {
	p := h.cfg.Profile
	return trace.NewBuilder(trace.Config{
		Sets: p.L1Sets, Ways: p.L1Ways, Policy: h.cfg.L1Policy,
		LockReplacementState: h.cfg.LockReplacementStateL1,
		AnalyzeRuns: !h.cfg.PartitionLockedL1 && !p.HasUtagPredictor &&
			h.cfg.Prefetcher == PrefetchNone,
	})
}

// LoadTrace replays a compiled trace, writing the i'th record's Result
// to out[i], bit-identically to loading the records one by one.
// Records inside the trace's provable-hit runs skip the hierarchy
// dispatch: a span with a compiled RunPlan replays as bulk hit-counter
// credits plus one touch per distinct line (validated resident first,
// which re-proves the all-hit claim against the actual cache state);
// spans without a plan execute as one L1 batch with pre-built L1-hit
// results. A record that nevertheless misses (which a sound analysis
// never produces) is completed through the lower levels, so output
// stays correct even then.
func (h *Hierarchy) LoadTrace(tr *trace.Trace, out []Result) {
	reqs := tr.Reqs
	if len(out) < len(reqs) {
		panic("hier: LoadTrace output slice shorter than trace")
	}
	p := h.cfg.Profile
	l1Hit := Result{Level: LevelL1, Latency: p.L1Latency, L1Hit: true}
	plans, planTouch := tr.RunPlans(h.cfg.L1Policy, h.cfg.LockReplacementStateL1)
	if p.HasUtagPredictor || h.cfg.PartitionLockedL1 || h.cfg.Prefetcher != PrefetchNone ||
		len(plans) != len(tr.Runs) {
		// Hits carry side effects beyond the replacement touch here
		// (utag rewrites, lock interactions, prefetch issue); a
		// well-formed builder never marks runs in these configs, but a
		// foreign trace replays safely through the full path.
		plans = nil
	}
	i := 0
	for ri, run := range tr.Runs {
		for ; i < run.Start; i++ {
			out[i] = h.loadReq(reqs[i])
		}
		if plans != nil && h.l1.AllResident(plans[ri].Lines) {
			for j := run.Start; j < run.End; j++ {
				out[j] = l1Hit
			}
			for _, rc := range plans[ri].Reqs {
				h.l1.CreditLoadHits(rc.Requestor, rc.N)
			}
			if planTouch {
				for _, ln := range plans[ri].Lines {
					h.l1.TouchLine(ln)
				}
			}
			i = run.End
			continue
		}
		for base := run.Start; base < run.End; base += batchChunk {
			n := min(batchChunk, run.End-base)
			_, res := h.scratch(n)
			h.l1.AccessBatch(reqs[base:base+n], res)
			for j := 0; j < n; j++ {
				if res[j].Hit && !res[j].UtagMiss {
					out[base+j] = l1Hit
					continue
				}
				out[base+j] = h.finish(h.reqAddr(reqs[base+j]), reqs[base+j].Requestor, res[j], true)
			}
		}
		i = run.End
	}
	for ; i < len(reqs); i++ {
		out[i] = h.loadReq(reqs[i])
	}
}

// levelCounters is one partition's private counter block for one cache
// level.
type levelCounters struct {
	st     cache.Stats
	perReq []cache.Stats
}

// finishStats is finish with partition-private counters and no
// prefetching (the parallel path never runs with a prefetcher).
func (h *Hierarchy) finishStats(req cache.Request, r1 cache.Result, l2c, llcc *levelCounters) Result {
	p := h.cfg.Profile
	if r1.Hit {
		res := Result{Level: LevelL1, Latency: p.L1Latency, L1Hit: true}
		if r1.UtagMiss {
			res.UtagMiss = true
			res.Latency = p.L2Latency
		}
		return res
	}
	res := Result{Bypassed: r1.Bypassed}
	r2 := h.l2.AccessStats(cache.Request{
		PhysLine: req.PhysLine, LinearLine: req.LinearLine, Requestor: req.Requestor,
	}, &l2c.st, &l2c.perReq)
	switch {
	case r2.Hit:
		res.Level, res.Latency = LevelL2, p.L2Latency
	case h.llc != nil:
		r3 := h.llc.AccessStats(cache.Request{
			PhysLine: req.PhysLine, LinearLine: req.LinearLine, Requestor: req.Requestor,
		}, &llcc.st, &llcc.perReq)
		if r3.Hit {
			res.Level, res.Latency = LevelLLC, h.llcLatency
		} else {
			res.Level, res.Latency = LevelMem, p.MemLatency
		}
	default:
		res.Level, res.Latency = LevelMem, p.MemLatency
	}
	return res
}

// LoadTraceParallel replays a compiled trace split by L1 set index
// across at most workers goroutines, byte-identically to LoadTrace.
// Set counts are powers of two and grow monotonically down the
// hierarchy, so records in different L1 sets also touch disjoint L2
// and LLC sets: partitions share no cache state at any level, each
// set's records stay in program order inside one partition, and the
// partitions' private counters merge in fixed order afterwards.
// Configurations whose accesses couple across sets — a shared Random
// victim generator or a prefetcher — fall back to serial.
func (h *Hierarchy) LoadTraceParallel(tr *trace.Trace, out []Result, workers int) {
	l1Sets := h.l1.Sets()
	if workers > l1Sets {
		workers = l1Sets
	}
	if workers <= 1 || !h.phaseSplitOK() ||
		h.l2.Sets() < l1Sets || (h.llc != nil && h.llc.Sets() < l1Sets) {
		h.LoadTrace(tr, out)
		return
	}
	if len(out) < len(tr.Reqs) {
		panic("hier: LoadTraceParallel output slice shorter than trace")
	}

	setMask := uint64(l1Sets - 1)
	parts := make([][]int32, workers)
	for i := range tr.Reqs {
		p := int(tr.Reqs[i].PhysLine&setMask) % workers
		parts[p] = append(parts[p], int32(i))
	}

	type partCounters struct {
		l1, l2, llc levelCounters
	}
	counters := make([]partCounters, workers)
	prof := h.cfg.Profile
	l1Hit := Result{Level: LevelL1, Latency: prof.L1Latency, L1Hit: true}
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		if len(parts[p]) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			idx := parts[p]
			pc := &counters[p]
			reqs := make([]cache.Request, len(idx))
			res := make([]cache.Result, len(idx))
			for j, i := range idx {
				reqs[j] = tr.Reqs[i]
			}
			h.l1.AccessBatchStats(reqs, res, &pc.l1.st, &pc.l1.perReq)
			for j, i := range idx {
				if res[j].Hit && !res[j].UtagMiss {
					out[i] = l1Hit
					continue
				}
				out[i] = h.finishStats(reqs[j], res[j], &pc.l2, &pc.llc)
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < workers; p++ {
		h.l1.MergeStats(counters[p].l1.st, counters[p].l1.perReq)
		h.l2.MergeStats(counters[p].l2.st, counters[p].l2.perReq)
		if h.llc != nil {
			h.llc.MergeStats(counters[p].llc.st, counters[p].llc.perReq)
		}
	}
}
