// Package hier assembles cache levels into the memory hierarchy the
// experiments run against: an L1D and L2 (and optionally an LLC for the
// miss-rate tables), with per-level latencies from a uarch.Profile, optional
// hardware prefetching (the noise source dealt with in Appendix C), and the
// AMD utag way-predictor effect on observable latency.
//
// The hierarchy is load-only: the attacks never need stores, and the paper's
// channels are read channels.
package hier

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/uarch"
)

// PrefetcherKind selects the L1 hardware prefetcher model.
type PrefetcherKind int

// Prefetcher models.
const (
	// PrefetchNone disables prefetching.
	PrefetchNone PrefetcherKind = iota
	// PrefetchNextLine fetches physical line X+1 on an L1 miss to X (the
	// DCU streamer-style behaviour that pollutes neighbouring sets'
	// LRU state during Spectre attacks, Appendix C).
	PrefetchNextLine
	// PrefetchStride detects constant-stride miss patterns per requestor
	// and prefetches one stride ahead.
	PrefetchStride
)

// String names the prefetcher model.
func (k PrefetcherKind) String() string {
	switch k {
	case PrefetchNone:
		return "none"
	case PrefetchNextLine:
		return "next-line"
	case PrefetchStride:
		return "stride"
	default:
		return fmt.Sprintf("PrefetcherKind(%d)", int(k))
	}
}

// Level identifies where a load was served from.
type Level int

// Service levels.
const (
	LevelL1  Level = 1
	LevelL2  Level = 2
	LevelLLC Level = 3
	LevelMem Level = 4
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelMem:
		return "Mem"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config parameterizes a hierarchy.
type Config struct {
	Profile uarch.Profile

	L1Policy replacement.Kind
	L2Policy replacement.Kind

	// RNG is needed when any level uses the Random policy.
	RNG *rng.Rand

	// PL-cache options applied to the L1 (Section IX-B).
	PartitionLockedL1      bool
	LockReplacementStateL1 bool

	Prefetcher PrefetcherKind

	// WithLLC adds a 2 MiB 16-way last-level cache between L2 and
	// memory, used by the miss-rate tables (VI, VII).
	WithLLC bool
	// LLCLatency in cycles; defaults to 40 when zero.
	LLCLatency int
}

// Result describes one load.
type Result struct {
	Level   Level // where the data came from
	Latency int   // cycles, including the utag penalty when applicable
	// L1Hit reports a tag match in L1 (independent of utag state).
	L1Hit bool
	// UtagMiss reports an L1 tag match that nevertheless pays L1-miss
	// latency because the linear-address utag did not match.
	UtagMiss bool
	// Bypassed reports that the PL L1 refused the fill.
	Bypassed bool
	// PrefetchIssued reports that this access triggered a prefetch.
	PrefetchIssued bool
}

// stridePref is the per-requestor stride-detector state of
// PrefetchStride: the last missing line, the last observed stride, and
// whether a miss has been seen at all. It lives in a small slice indexed
// by requestor id (ids are tiny: sender, receiver, a few noise threads)
// so the per-miss update never touches a map or the allocator.
type stridePref struct {
	lastMiss uint64
	stride   int64
	seen     bool
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	cfg Config
	l1  *cache.Cache
	l2  *cache.Cache
	llc *cache.Cache

	llcLatency int

	// Per-requestor stride-prefetcher state, grown on demand.
	pref []stridePref

	// Scratch buffers of the batch paths (see batch.go), allocated on
	// first use and reused across calls.
	breqs []cache.Request
	bres  []cache.Result
}

// prefPrealloc matches the cache's per-requestor counter pre-sizing.
const prefPrealloc = 8

// New builds the hierarchy described by cfg.
func New(cfg Config) *Hierarchy {
	p := cfg.Profile
	h := &Hierarchy{cfg: cfg, pref: make([]stridePref, 0, prefPrealloc)}
	h.l1 = cache.New(cache.Config{
		Name: "L1D", Sets: p.L1Sets, Ways: p.L1Ways, LineSize: p.LineSize,
		Policy: cfg.L1Policy, RNG: cfg.RNG,
		PartitionLocked:      cfg.PartitionLockedL1,
		LockReplacementState: cfg.LockReplacementStateL1,
		TrackUtags:           p.HasUtagPredictor,
	})
	h.l2 = cache.New(cache.Config{
		Name: "L2", Sets: p.L2Sets, Ways: p.L2Ways, LineSize: p.LineSize,
		Policy: cfg.L2Policy, RNG: cfg.RNG,
	})
	if cfg.WithLLC {
		h.llc = cache.New(cache.Config{
			Name: "LLC", Sets: 2048, Ways: 16, LineSize: p.LineSize,
			Policy: cfg.L2Policy, RNG: cfg.RNG,
		})
	}
	h.llcLatency = cfg.LLCLatency
	if h.llcLatency == 0 {
		h.llcLatency = 40
	}
	return h
}

// Profile returns the microarchitecture profile in use.
func (h *Hierarchy) Profile() uarch.Profile { return h.cfg.Profile }

// L1 exposes the L1 data cache (for state inspection in tests and traces).
func (h *Hierarchy) L1() *cache.Cache { return h.l1 }

// L2 exposes the second-level cache.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// LLC exposes the last-level cache, or nil when not configured.
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// Load performs a load of addr on behalf of requestor.
func (h *Hierarchy) Load(addr mem.Addr, requestor int) Result {
	return h.load(addr, requestor, cache.OpLoad, true)
}

// LoadOp performs a load with a PL-cache lock/unlock side effect.
func (h *Hierarchy) LoadOp(addr mem.Addr, requestor int, op cache.Op) Result {
	return h.load(addr, requestor, op, true)
}

func (h *Hierarchy) load(addr mem.Addr, requestor int, op cache.Op, allowPrefetch bool) Result {
	r1 := h.l1.Access(cache.Request{
		PhysLine: addr.PhysLine, LinearLine: addr.VirtLine,
		Requestor: requestor, Op: op,
	})
	return h.finish(addr, requestor, r1, allowPrefetch)
}

// finish completes a load whose L1 access already happened: latency
// selection for hits, the walk through L2/LLC/memory for misses, and
// the prefetch trigger. Splitting it from load lets the batch paths
// (LoadBatch, LoadTrace) run the L1 access through cache.AccessBatch
// and still share the exact per-access completion logic.
func (h *Hierarchy) finish(addr mem.Addr, requestor int, r1 cache.Result, allowPrefetch bool) Result {
	p := h.cfg.Profile
	if r1.Hit {
		res := Result{Level: LevelL1, Latency: p.L1Latency, L1Hit: true}
		if r1.UtagMiss {
			// Data present, way predictor wrong: the load replays
			// through the slow path and observes L1-miss latency.
			res.UtagMiss = true
			res.Latency = p.L2Latency
		}
		return res
	}

	// L1 miss: the line comes from L2 or beyond. The L1 access already
	// installed the line (or bypassed, for a locked PL victim).
	res := Result{Bypassed: r1.Bypassed}
	r2 := h.l2.Access(cache.Request{
		PhysLine: addr.PhysLine, LinearLine: addr.VirtLine,
		Requestor: requestor,
	})
	switch {
	case r2.Hit:
		res.Level, res.Latency = LevelL2, p.L2Latency
	case h.llc != nil:
		r3 := h.llc.Access(cache.Request{
			PhysLine: addr.PhysLine, LinearLine: addr.VirtLine,
			Requestor: requestor,
		})
		if r3.Hit {
			res.Level, res.Latency = LevelLLC, h.llcLatency
		} else {
			res.Level, res.Latency = LevelMem, p.MemLatency
		}
	default:
		res.Level, res.Latency = LevelMem, p.MemLatency
	}

	if allowPrefetch {
		res.PrefetchIssued = h.maybePrefetch(addr, requestor)
	}
	return res
}

// maybePrefetch implements the prefetcher models. Prefetched fills go
// through the normal access path (they update LRU state in every level they
// fill — that is exactly the noise the Spectre receiver must cancel), but
// they never recursively trigger further prefetches, and like real hardware
// prefetchers they never cross a 4 KiB page boundary.
func (h *Hierarchy) maybePrefetch(miss mem.Addr, requestor int) bool {
	switch h.cfg.Prefetcher {
	case PrefetchNextLine:
		next := mem.Addr{
			Virt: miss.Virt + uint64(h.cfg.Profile.LineSize), Phys: miss.Phys + uint64(h.cfg.Profile.LineSize),
			VirtLine: miss.VirtLine + 1, PhysLine: miss.PhysLine + 1,
		}
		if !samePage(next.Phys, miss.Phys) {
			return false
		}
		h.load(next, requestor, cache.OpLoad, false)
		return true
	case PrefetchStride:
		p := h.prefState(requestor)
		last, seen := p.lastMiss, p.seen
		p.lastMiss, p.seen = miss.PhysLine, true
		if !seen {
			return false
		}
		stride := int64(miss.PhysLine) - int64(last)
		prev := p.stride
		p.stride = stride
		if stride == 0 || stride != prev {
			return false
		}
		next := mem.Addr{
			Virt:     uint64(int64(miss.Virt) + stride*int64(h.cfg.Profile.LineSize)),
			Phys:     uint64(int64(miss.Phys) + stride*int64(h.cfg.Profile.LineSize)),
			VirtLine: uint64(int64(miss.VirtLine) + stride),
			PhysLine: uint64(int64(miss.PhysLine) + stride),
		}
		if !samePage(next.Phys, miss.Phys) {
			return false
		}
		h.load(next, requestor, cache.OpLoad, false)
		return true
	default:
		return false
	}
}

// samePage reports whether two physical byte addresses share a 4 KiB
// page — hardware prefetchers never cross one.
func samePage(a, b uint64) bool {
	return a/mem.PageSize == b/mem.PageSize
}

// prefState returns the stride-detector slot for one requestor, growing
// the table on first sight of a new id.
func (h *Hierarchy) prefState(requestor int) *stridePref {
	for len(h.pref) <= requestor {
		h.pref = append(h.pref, stridePref{})
	}
	return &h.pref[requestor]
}

// Flush removes the physical line from every level (the clflush model of
// the Flush+Reload baseline). It returns the deepest level that held the
// line, or 0 if it was nowhere cached.
func (h *Hierarchy) Flush(physLine uint64) Level {
	var deepest Level
	if h.l1.Flush(physLine) {
		deepest = LevelL1
	}
	if h.l2.Flush(physLine) {
		deepest = LevelL2
	}
	if h.llc != nil && h.llc.Flush(physLine) {
		deepest = LevelLLC
	}
	return deepest
}

// InvalidateAll empties every level.
func (h *Hierarchy) InvalidateAll() {
	h.l1.InvalidateAll()
	h.l2.InvalidateAll()
	if h.llc != nil {
		h.llc.InvalidateAll()
	}
}

// ResetStats clears counters in every level.
func (h *Hierarchy) ResetStats() {
	h.l1.ResetStats()
	h.l2.ResetStats()
	if h.llc != nil {
		h.llc.ResetStats()
	}
}

// Reset returns the whole hierarchy to power-on state: every level's
// lines, replacement state and counters, plus the prefetcher's stride
// detectors. Trial loops can re-run an experiment cell on one machine
// instead of reconstructing the hierarchy (construction, not simulation,
// is where a cell's allocations live).
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	if h.llc != nil {
		h.llc.Reset()
	}
	clear(h.pref)
	h.pref = h.pref[:0]
}

// Warm loads addr until it resides in L1 (two loads suffice: the first
// fills, the second verifies). It is used to satisfy preconditions like
// "line N is already in the cache before the attack" (Table V).
func (h *Hierarchy) Warm(addr mem.Addr, requestor int) {
	h.Load(addr, requestor)
	if !h.l1.Contains(addr.PhysLine) {
		// PL bypass can keep a line out of L1; callers warming locked
		// sets accept L2 residency.
		h.Load(addr, requestor)
	}
}
