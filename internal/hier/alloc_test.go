package hier

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/uarch"
)

// Load must be allocation-free for every prefetcher model once the
// per-requestor stride table is warm: the receiver's probe loop calls it
// eight times per sample, hundreds of millions of times per sweep.

func allocHier(pf PrefetcherKind) *Hierarchy {
	return New(Config{
		Profile:  uarch.SandyBridge(),
		L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU,
		Prefetcher: pf,
		WithLLC:    true,
	})
}

func lineAddr(physLine uint64) mem.Addr {
	return mem.Addr{
		Virt: physLine * 64, Phys: physLine * 64,
		VirtLine: physLine, PhysLine: physLine,
	}
}

func TestLoadZeroAllocs(t *testing.T) {
	for _, pf := range []PrefetcherKind{PrefetchNone, PrefetchNextLine, PrefetchStride} {
		t.Run(pf.String(), func(t *testing.T) {
			h := allocHier(pf)
			// Warm the stride table and the hit target.
			h.Load(lineAddr(1), 0)
			h.Load(lineAddr(1), 0)

			t.Run("hit", func(t *testing.T) {
				if got := testing.AllocsPerRun(200, func() {
					if res := h.Load(lineAddr(1), 0); res.Level != LevelL1 {
						t.Fatal("warm load missed L1")
					}
				}); got != 0 {
					t.Errorf("hit path allocates %.1f allocs/op, want 0", got)
				}
			})
			t.Run("miss", func(t *testing.T) {
				// A constant-stride cold-miss stream: every load misses
				// all levels and — under PrefetchStride — trains and
				// fires the prefetcher; under PrefetchNextLine each
				// miss issues the neighbour fetch.
				next := uint64(1 << 20)
				if got := testing.AllocsPerRun(200, func() {
					h.Load(lineAddr(next), 0)
					next += 2
				}); got != 0 {
					t.Errorf("miss path allocates %.1f allocs/op, want 0", got)
				}
			})
		})
	}
}

func TestHierarchyResetRestoresPowerOn(t *testing.T) {
	h := allocHier(PrefetchStride)
	for i := uint64(0); i < 100; i++ {
		h.Load(lineAddr(i*3), 1)
	}
	h.Reset()
	if h.L1().Stats() != (cache.Stats{}) || h.L2().Stats() != (cache.Stats{}) {
		t.Error("Reset left counters")
	}
	if h.L1().Contains(0) || h.L2().Contains(0) {
		t.Error("Reset left lines resident")
	}
	// The stride detector must be back at power-on: the first miss after
	// Reset must not be treated as part of the old stream (no prefetch
	// until a stride repeats).
	if res := h.Load(lineAddr(300), 1); res.PrefetchIssued {
		t.Error("stride state survived Reset")
	}
	if res := h.Load(lineAddr(303), 1); res.PrefetchIssued {
		t.Error("first stride observation already prefetched")
	}
	if res := h.Load(lineAddr(306), 1); !res.PrefetchIssued {
		t.Error("repeated stride did not prefetch after Reset")
	}
}
