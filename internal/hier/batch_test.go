package hier

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/replacement"
	"repro/internal/rng"
	"repro/internal/uarch"
)

// Bit-identity of the hierarchy batch paths: LoadBatch, LoadTrace and
// LoadTraceParallel must be indistinguishable from per-address Load
// calls — same Results, same per-level Stats, same replacement-state
// and RNG evolution — across every policy, prefetcher, and profile
// corner, including the configurations where they fall back to the
// per-access path.

// batchHierConfigs enumerates the corners: plain deterministic (phase
// split + parallel eligible), Random L1 (serial fallback), each
// prefetcher (fallback), utag profile, and the PL configs.
func batchHierConfigs() []Config {
	sb, zen := uarch.SandyBridge(), uarch.Zen()
	return []Config{
		{Profile: sb, L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU, WithLLC: true},
		{Profile: sb, L1Policy: replacement.TrueLRU, L2Policy: replacement.BitPLRU},
		{Profile: sb, L1Policy: replacement.BitPLRU, L2Policy: replacement.TreePLRU}, // runs but no plans
		{Profile: sb, L1Policy: replacement.FIFO, L2Policy: replacement.TreePLRU},    // counter-only plans
		{Profile: sb, L1Policy: replacement.Random, L2Policy: replacement.TreePLRU, WithLLC: true},
		{Profile: sb, L1Policy: replacement.FIFO, L2Policy: replacement.TreePLRU, Prefetcher: PrefetchNextLine},
		{Profile: sb, L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU, Prefetcher: PrefetchStride, WithLLC: true},
		{Profile: zen, L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU, WithLLC: true},
		{Profile: sb, L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU, PartitionLockedL1: true, WithLLC: true},
		{Profile: sb, L1Policy: replacement.TreePLRU, L2Policy: replacement.TreePLRU, PartitionLockedL1: true, LockReplacementStateL1: true},
	}
}

func cfgName(cfg Config) string {
	return fmt.Sprintf("%s/%v-%v/pf=%v/pl=%v", cfg.Profile.Arch, cfg.L1Policy, cfg.L2Policy,
		cfg.Prefetcher, cfg.PartitionLockedL1)
}

// batchAddrs builds a stream mixing set-local churn (revisits that
// produce L1 hits and provable runs) with strided cold misses.
func batchAddrs(cfg Config, n int, seed uint64) []mem.Addr {
	r := rng.New(seed)
	sets := uint64(cfg.Profile.L1Sets)
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		var line uint64
		switch r.Intn(4) {
		case 0: // cold-ish: large tag space
			line = uint64(r.Intn(64))*sets*7 + uint64(r.Intn(int(sets)))
		default: // hot working set: few tags, few sets
			line = uint64(r.Intn(10))*sets + uint64(r.Intn(4))
		}
		addrs[i] = lineAddr(line)
	}
	return addrs
}

func hierStats(h *Hierarchy) string {
	s := fmt.Sprintf("L1 %+v %+v\nL2 %+v %+v\n",
		h.l1.Stats(), h.l1.RequestorStats(0), h.l2.Stats(), h.l2.RequestorStats(1))
	if h.llc != nil {
		s += fmt.Sprintf("LLC %+v\n", h.llc.Stats())
	}
	// Replacement state too: the run-plan replay updates it through a
	// different code path than per-access execution, so counter
	// equality alone would not prove bit-identity.
	for set := 0; set < h.l1.Sets(); set++ {
		s += h.l1.PolicyState(set) + "\n"
	}
	return s
}

func TestLoadBatchMatchesLoad(t *testing.T) {
	for _, cfg := range batchHierConfigs() {
		t.Run(cfgName(cfg), func(t *testing.T) {
			addrs := batchAddrs(cfg, 600, 42)
			ca, cb := cfg, cfg
			if cfg.L1Policy == replacement.Random {
				ca.RNG, cb.RNG = rng.New(7), rng.New(7)
			}
			hs, hb := New(ca), New(cb)

			want := make([]Result, len(addrs))
			for i, a := range addrs {
				want[i] = hs.Load(a, i%2)
			}
			// Split the batch mid-stream across requestors like the
			// serial loop did — LoadBatch takes one requestor, so feed
			// it per-requestor runs of one address each via chunks of
			// the same interleave.
			got := make([]Result, len(addrs))
			for i := 0; i < len(addrs); i++ {
				hb.LoadBatch(addrs[i:i+1], i%2, got[i:i+1])
			}
			// Then a second identical pass as real multi-address
			// batches with a single requestor, against a serial
			// reference continuing from the same state.
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d diverges: batch %+v, serial %+v", i, got[i], want[i])
				}
			}
			tail := batchAddrs(cfg, 400, 99)
			tw := make([]Result, len(tail))
			for i, a := range tail {
				tw[i] = hs.Load(a, 0)
			}
			tg := make([]Result, len(tail))
			hb.LoadBatch(tail, 0, tg)
			for i := range tw {
				if tg[i] != tw[i] {
					t.Fatalf("tail record %d diverges: batch %+v, serial %+v", i, tg[i], tw[i])
				}
			}
			if a, b := hierStats(hs), hierStats(hb); a != b {
				t.Fatalf("stats diverge:\nserial:\n%s\nbatch:\n%s", a, b)
			}
		})
	}
}

func TestLoadTraceMatchesLoad(t *testing.T) {
	for _, cfg := range batchHierConfigs() {
		t.Run(cfgName(cfg), func(t *testing.T) {
			addrs := batchAddrs(cfg, 800, 4242)
			ca, cb := cfg, cfg
			if cfg.L1Policy == replacement.Random {
				ca.RNG, cb.RNG = rng.New(3), rng.New(3)
			}
			hs, hb := New(ca), New(cb)

			b := hb.NewTraceBuilder()
			for _, a := range addrs {
				b.Load(a.PhysLine, 0)
			}
			tr := b.Trace()

			want := make([]Result, len(addrs))
			for i, a := range addrs {
				want[i] = hs.Load(a, 0)
			}
			got := make([]Result, len(addrs))
			hb.LoadTrace(tr, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d diverges: trace %+v, serial %+v (runs=%v)", i, got[i], want[i], tr.Runs)
				}
			}
			if a, b := hierStats(hs), hierStats(hb); a != b {
				t.Fatalf("stats diverge:\nserial:\n%s\ntrace:\n%s", a, b)
			}
		})
	}
}

// The set-partition executor must be byte-identical to serial replay at
// every worker count, on the eligible configs and on the ones it must
// reject into the serial path.
func TestLoadTraceParallelMatchesSerial(t *testing.T) {
	for _, cfg := range batchHierConfigs() {
		t.Run(cfgName(cfg), func(t *testing.T) {
			addrs := batchAddrs(cfg, 1000, 77)
			for _, workers := range []int{2, 3, 8, 64} {
				ca, cb := cfg, cfg
				if cfg.L1Policy == replacement.Random {
					ca.RNG, cb.RNG = rng.New(5), rng.New(5)
				}
				hs, hp := New(ca), New(cb)
				b := hp.NewTraceBuilder()
				for _, a := range addrs {
					b.Load(a.PhysLine, 0)
				}
				tr := b.Trace()

				want := make([]Result, len(addrs))
				hs.LoadTrace(tr, want)
				got := make([]Result, len(addrs))
				hp.LoadTraceParallel(tr, got, workers)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d record %d diverges: parallel %+v, serial %+v",
							workers, i, got[i], want[i])
					}
				}
				if a, b := hierStats(hs), hierStats(hp); a != b {
					t.Fatalf("workers=%d stats diverge:\nserial:\n%s\nparallel:\n%s", workers, a, b)
				}
			}
		})
	}
}

// LoadBatch and LoadTrace must stay allocation-free after the first
// call sized the scratch buffers.
func TestLoadBatchZeroAllocs(t *testing.T) {
	cfg := Config{Profile: uarch.SandyBridge(), L1Policy: replacement.TreePLRU,
		L2Policy: replacement.TreePLRU, WithLLC: true}
	h := New(cfg)
	addrs := batchAddrs(cfg, 256, 1)
	out := make([]Result, len(addrs))
	h.LoadBatch(addrs, 0, out)
	if got := testing.AllocsPerRun(100, func() {
		h.LoadBatch(addrs, 0, out)
	}); got != 0 {
		t.Errorf("LoadBatch allocates %.1f allocs/op, want 0", got)
	}

	b := h.NewTraceBuilder()
	for _, a := range addrs {
		b.Load(a.PhysLine, 0)
	}
	tr := b.Trace()
	h.LoadTrace(tr, out)
	if got := testing.AllocsPerRun(100, func() {
		h.LoadTrace(tr, out)
	}); got != 0 {
		t.Errorf("LoadTrace allocates %.1f allocs/op, want 0", got)
	}
}
