package trace

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/replacement"
	"repro/internal/rng"
)

// The trace compiler's run markers claim "every record in this span is
// provably an L1 hit under any reachable cache state". These tests
// check the claim the hard way: replay adversarial programs and verify
// every marked record actually hits, across policies and against
// histories the builder never saw (a run must hold from the trace's
// start only, so the whole trace replays from power-on state here,
// exactly as the executors use it).

func mkCache(pol replacement.Kind, sets, ways int, seed uint64) *cache.Cache {
	cfg := cache.Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64, Policy: pol}
	if pol == replacement.Random {
		cfg.RNG = rng.New(seed)
	}
	return cache.New(cfg)
}

// traceProgram generates a load program with heavy revisits so runs
// actually form.
func traceProgram(n, sets int, seed uint64) []uint64 {
	r := rng.New(seed)
	lines := make([]uint64, n)
	for i := range lines {
		switch r.Intn(5) {
		case 0:
			lines[i] = uint64(r.Intn(40))*uint64(sets) + uint64(r.Intn(sets))
		default:
			lines[i] = uint64(r.Intn(6))*uint64(sets) + uint64(r.Intn(2))
		}
	}
	return lines
}

func TestRunsAreSound(t *testing.T) {
	for _, pol := range replacement.Kinds() {
		for _, ways := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%v/ways=%d", pol, ways), func(t *testing.T) {
				const sets = 4
				b := NewBuilder(Config{Sets: sets, Ways: ways, Policy: pol, AnalyzeRuns: true})
				prog := traceProgram(2000, sets, uint64(ways)<<8|uint64(pol))
				for i, ln := range prog {
					b.Load(ln, i%2)
				}
				tr := b.Trace()

				inRun := make([]bool, len(tr.Reqs))
				for _, run := range tr.Runs {
					if run.Start >= run.End || run.End > len(tr.Reqs) {
						t.Fatalf("malformed run %+v over %d records", run, len(tr.Reqs))
					}
					for i := run.Start; i < run.End; i++ {
						inRun[i] = true
					}
				}

				c := mkCache(pol, sets, ways, 11)
				for i, req := range tr.Reqs {
					res := c.Access(req)
					if inRun[i] && !res.Hit {
						t.Fatalf("record %d (line %d) is inside a run but MISSED", i, req.PhysLine)
					}
				}
			})
		}
	}
}

// The LRU stack rule must hold at its exact boundary: a probe loop
// over all ways of a set (reuse distance ways-1) is provable from the
// second pass on, while a loop over ways+1 lines (reuse distance ways)
// must never be marked — and actually evicts, which TestRunsAreSound
// would catch if it were.
func TestStackRuleBoundary(t *testing.T) {
	for _, ways := range []int{2, 4, 8} {
		b := NewBuilder(Config{Sets: 1, Ways: ways, Policy: replacement.TrueLRU, AnalyzeRuns: true})
		for pass := 0; pass < 3; pass++ {
			for w := 0; w < ways; w++ {
				b.Load(uint64(w), 0)
			}
		}
		tr := b.Trace()
		if len(tr.Runs) != 1 || tr.Runs[0].Start != ways || tr.Runs[0].End != 3*ways {
			t.Errorf("ways=%d: full-pass loop runs = %v, want one run [%d,%d)",
				ways, tr.Runs, ways, 3*ways)
		}

		b = NewBuilder(Config{Sets: 1, Ways: ways, Policy: replacement.TrueLRU, AnalyzeRuns: true})
		for pass := 0; pass < 3; pass++ {
			for w := 0; w < ways+1; w++ {
				b.Load(uint64(w), 0)
			}
		}
		if runs := b.Trace().Runs; len(runs) != 0 {
			t.Errorf("ways=%d: over-capacity loop marked runs %v", ways, runs)
		}
	}
}

// Run plans must replay to the same observable cache as executing the
// run's records one by one: same replacement state, same counters.
// This pins the compression argument per policy — last-occurrence
// touches for True-LRU and Tree-PLRU, counter-only for FIFO and
// Random, and no plan at all for Bit-PLRU.
func TestRunPlansMatchFullReplay(t *testing.T) {
	for _, pol := range replacement.Kinds() {
		for _, ways := range []int{2, 4, 8, 16} {
			t.Run(fmt.Sprintf("%v/ways=%d", pol, ways), func(t *testing.T) {
				const sets = 4
				b := NewBuilder(Config{Sets: sets, Ways: ways, Policy: pol, AnalyzeRuns: true})
				prog := traceProgram(2500, sets, uint64(ways)<<9|uint64(pol))
				for i, ln := range prog {
					b.Load(ln, i%3)
				}
				tr := b.Trace()
				plans, touch := tr.RunPlans(pol, false)
				if pol == replacement.BitPLRU {
					if plans != nil {
						t.Fatal("Bit-PLRU trace compiled plans")
					}
					return
				}
				if len(tr.Runs) == 0 {
					t.Fatal("program produced no runs; test is vacuous")
				}
				if len(plans) != len(tr.Runs) {
					t.Fatalf("%d plans for %d runs", len(plans), len(tr.Runs))
				}
				if _, ok := tr.RunPlans(pol, true); ok || touch != (pol == replacement.TrueLRU || pol == replacement.TreePLRU) {
					t.Fatal("plan eligibility wrong: lock-state must disable, touch must track policy")
				}

				full := mkCache(pol, sets, ways, 3)
				plan := mkCache(pol, sets, ways, 3)
				snapshot := func(c *cache.Cache) string {
					s := fmt.Sprintf("stats %+v", c.Stats())
					for r := 0; r < 3; r++ {
						s += fmt.Sprintf(" req%d %+v", r, c.RequestorStats(r))
					}
					for set := 0; set < sets; set++ {
						s += "\n" + c.PolicyState(set)
					}
					return s
				}
				i := 0
				for ri, run := range tr.Runs {
					var n uint64
					for _, rc := range plans[ri].Reqs {
						n += rc.N
					}
					if n != uint64(run.End-run.Start) {
						t.Fatalf("run %d: plan counts %d records, span has %d", ri, n, run.End-run.Start)
					}
					for ; i < run.Start; i++ {
						full.Access(tr.Reqs[i])
						plan.Access(tr.Reqs[i])
					}
					for ; i < run.End; i++ {
						if res := full.Access(tr.Reqs[i]); !res.Hit {
							t.Fatalf("record %d in run %d missed", i, ri)
						}
					}
					if !plan.AllResident(plans[ri].Lines) {
						t.Fatalf("run %d: planned lines not resident at run start", ri)
					}
					for _, rc := range plans[ri].Reqs {
						plan.CreditLoadHits(rc.Requestor, rc.N)
					}
					if touch {
						for _, ln := range plans[ri].Lines {
							if !plan.TouchLine(ln) {
								t.Fatalf("run %d: TouchLine lost line %d", ri, ln)
							}
						}
					}
				}
				for ; i < len(tr.Reqs); i++ {
					full.Access(tr.Reqs[i])
					plan.Access(tr.Reqs[i])
				}
				if fs, ps := snapshot(full), snapshot(plan); fs != ps {
					t.Fatalf("plan replay diverges from full replay:\nfull:\n%s\nplan:\n%s", fs, ps)
				}
			})
		}
	}
}

// A run claim must survive any policy the guards allow it for — the
// LRU-stack rule is only used under TrueLRU, so force the no-miss rule
// alone by interleaving misses, and check the conservative result.
func TestRunsDisabledByGuards(t *testing.T) {
	b := NewBuilder(Config{Sets: 4, Ways: 4, Policy: replacement.TreePLRU, AnalyzeRuns: true})
	b.Load(1, 0)
	b.LoadOp(2, 2, 0, cache.OpLock) // non-load op: analysis must shut off
	b.Load(1, 0)
	b.Load(1, 0)
	if runs := b.Trace().Runs; len(runs) != 0 {
		t.Fatalf("runs %v survived a non-load record", runs)
	}

	if NewBuilder(Config{Sets: 4, Ways: 4, Policy: replacement.TrueLRU,
		LockReplacementState: true}).useStack {
		t.Fatal("LRU-stack rule enabled under LockReplacementState")
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(Config{Sets: 2, Ways: 4, Policy: replacement.TrueLRU, AnalyzeRuns: true})
	for i := 0; i < 100; i++ {
		b.Load(uint64(i%3), 0)
	}
	first := len(b.Trace().Runs)
	if first == 0 {
		t.Fatal("expected runs from a 3-line loop in a 4-way set")
	}
	b.Reset()
	if tr := b.Trace(); len(tr.Reqs) != 0 || len(tr.Runs) != 0 {
		t.Fatalf("Reset left %d reqs, %d runs", len(tr.Reqs), len(tr.Runs))
	}
	for i := 0; i < 100; i++ {
		b.Load(uint64(i%3), 0)
	}
	if got := len(b.Trace().Runs); got != first {
		t.Fatalf("post-Reset build found %d runs, first build %d", got, first)
	}
}

// ExecCacheParallel must be byte-identical to serial execution — the
// same Results and the same counters — at every worker count, and fall
// back cleanly where partitioning is invalid.
func TestExecCacheParallelMatchesSerial(t *testing.T) {
	for _, pol := range replacement.Kinds() {
		t.Run(pol.String(), func(t *testing.T) {
			const sets, ways = 8, 4
			b := NewBuilder(Config{Sets: sets, Ways: ways, Policy: pol, AnalyzeRuns: pol == replacement.TrueLRU})
			prog := traceProgram(3000, sets, 5)
			for i, ln := range prog {
				b.Load(ln, i%3)
			}
			tr := b.Trace()

			for _, workers := range []int{1, 2, 4, 16} {
				cs := mkCache(pol, sets, ways, 9)
				cp := mkCache(pol, sets, ways, 9)
				want := make([]cache.Result, len(tr.Reqs))
				ExecCache(cs, tr, want)
				got := make([]cache.Result, len(tr.Reqs))
				ExecCacheParallel(cp, tr, got, workers)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d record %d diverges: parallel %+v, serial %+v",
							workers, i, got[i], want[i])
					}
				}
				if a, b := fmt.Sprintf("%+v", cs.Stats()), fmt.Sprintf("%+v", cp.Stats()); a != b {
					t.Fatalf("workers=%d stats diverge: serial %s, parallel %s", workers, a, b)
				}
				for r := 0; r < 3; r++ {
					if a, b := cs.RequestorStats(r), cp.RequestorStats(r); a != b {
						t.Fatalf("workers=%d requestor %d stats diverge: serial %+v, parallel %+v",
							workers, r, a, b)
					}
				}
			}
		})
	}
}
