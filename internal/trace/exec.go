package trace

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/replacement"
)

// ExecCache replays tr against a bare cache, writing the i'th record's
// result to out[i]. It is bit-identical to issuing the records through
// Access one by one.
func ExecCache(c *cache.Cache, tr *Trace, out []cache.Result) {
	c.AccessBatch(tr.Reqs, out)
}

// ExecCacheParallel replays tr split by set index across at most
// workers goroutines. Disjoint sets share no line or replacement
// state, each set's records execute in program order within one
// partition, and per-partition counters merge in fixed partition
// order — so results, final cache state and Stats are byte-identical
// to serial execution. Traces against Random-policy caches fall back
// to serial (victim draws come from one shared generator whose draw
// order must match the program order), as do single-set caches and
// workers <= 1.
func ExecCacheParallel(c *cache.Cache, tr *Trace, out []cache.Result, workers int) {
	sets := c.Sets()
	if workers > sets {
		workers = sets
	}
	if workers <= 1 || sets < 2 || c.Config().Policy == replacement.Random {
		ExecCache(c, tr, out)
		return
	}
	if len(out) < len(tr.Reqs) {
		panic("trace: ExecCacheParallel output slice shorter than trace")
	}

	// Partition record indices by set, preserving program order.
	parts := make([][]int32, workers)
	setMask := uint64(sets - 1)
	for i := range tr.Reqs {
		p := int(tr.Reqs[i].PhysLine&setMask) % workers
		parts[p] = append(parts[p], int32(i))
	}

	type partCounters struct {
		st     cache.Stats
		perReq []cache.Stats
	}
	counters := make([]partCounters, workers)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		if len(parts[p]) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			idx := parts[p]
			reqs := make([]cache.Request, len(idx))
			res := make([]cache.Result, len(idx))
			for j, i := range idx {
				reqs[j] = tr.Reqs[i]
			}
			c.AccessBatchStats(reqs, res, &counters[p].st, &counters[p].perReq)
			for j, i := range idx {
				out[i] = res[j]
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < workers; p++ {
		c.MergeStats(counters[p].st, counters[p].perReq)
	}
}
