// Package trace compiles deterministic access programs — victim
// Sequence output, attacker prime/probe passes, figure reference
// streams — into flat, pre-resolved request traces that the batch
// executors replay without per-access dispatch.
//
// A compiled Trace is a slice of cache.Request records in program
// order plus run-length markers over spans whose accesses PROVABLY hit
// the L1 regardless of the cache's state when the trace is replayed.
// The hierarchy executor (hier.LoadTrace) turns a marked span into one
// cache.AccessBatch call and a row of pre-built L1-hit results,
// skipping the per-access hierarchy dispatch entirely; everything
// outside a span replays through the ordinary per-access path, so a
// trace executes bit-identically to issuing its records one by one.
//
// Two sound provability rules are used while building:
//
//  1. The no-miss rule (any policy): an access leaves its line
//     resident (a hit keeps it, a miss installs it — which is why the
//     analysis is disabled for PL-cache configs, where a bypassed miss
//     does not install). If every later record in the same set is
//     itself provable, no miss and hence no eviction can have touched
//     the set, so a repeat access must hit.
//  2. The LRU stack rule (true LRU only): if strictly fewer than ways
//     distinct lines of the set were accessed since the line's last
//     access, the repeat access must hit. This is the classical stack
//     property at its exact boundary: with at most ways-1 distinct
//     intervening lines, NO line in the window — the target or any
//     intervener — can age to ways-1 (a line's age equals the distinct
//     lines used since its own last use, and every such count stays
//     below ways-1 inside the window), so no miss in the window can
//     select the target as victim. In particular a full probe pass
//     over all ways of a set, the paper's canonical access pattern,
//     has reuse distance exactly ways-1 and is provable. (Not sound
//     for the PLRU approximations: a hit updates their state and can
//     REDIRECT the next victim choice toward the line, so only rule 1
//     applies there.)
//
// Prefetchers issue loads that are invisible to this analysis, and
// lock operations interact with the LockReplacementState touch
// suppression, so builders disable run analysis in those configs (see
// hier.NewTraceBuilder).
//
// # Run plans
//
// Beyond marking a span, the compiler reduces it to a RunPlan: the
// span's distinct lines in last-occurrence order plus per-requestor
// access counts. Inside a run every record hits, and for most policies
// a hit's ONLY state effect is the replacement touch — so the span's
// net effect on the cache is the touches of each line's LAST access
// (order-earlier touches are overwritten) plus bulk hit counters:
//
//   - True LRU: the final age permutation ranks lines by last use, so
//     touching each distinct line once, in last-occurrence order,
//     lands every lane exactly where the full replay would.
//   - Tree-PLRU: each tree node points away from the LAST touched way
//     in its subtree; replaying last occurrences in order preserves
//     which way touched every node last.
//   - FIFO / Random: hits do not move replacement state at all, so
//     the plan replay is pure counter credit.
//   - Bit-PLRU is the exception — the MRU-bit generation rollover
//     fires on intermediate accesses, so no plan is compiled and runs
//     replay in full.
//
// Executors validate a plan before applying it (every planned line
// resident at run start — which by induction guarantees the all-hit
// claim), making plan replay self-verifying even against a trace
// whose analysis was misconfigured.
package trace

import (
	"repro/internal/cache"
	"repro/internal/replacement"
)

// Run marks the half-open record span [Start, End) as provable L1
// hits.
type Run struct {
	Start, End int
}

// ReqCount is one requestor's access count within a run, in order of
// first appearance.
type ReqCount struct {
	Requestor int
	N         uint64
}

// RunPlan is the compiled fast replay of one provable-hit run: credit
// the hit counters in bulk and touch each distinct line once, in
// last-occurrence order (see the package comment for why that is
// exact). Lines holds the span's distinct physical lines ascending by
// their last record index; Reqs the per-requestor access counts.
type RunPlan struct {
	Lines []uint64
	Reqs  []ReqCount
}

// Trace is a compiled access program.
type Trace struct {
	// Reqs are the pre-resolved records in program order.
	Reqs []cache.Request
	// Runs are the provable-L1-hit spans, ascending and disjoint.
	Runs []Run

	plans      []RunPlan // parallel to Runs; nil when not compiled
	planPolicy replacement.Kind
	planTouch  bool
}

// RunPlans returns the per-run replay plans (parallel to Runs) when
// they are valid for a cache running the given policy with the given
// LockReplacementState setting, and whether replay must apply the
// plan's line touches (True-LRU and Tree-PLRU; FIFO and Random hits
// leave replacement state alone). It returns nil for Bit-PLRU traces,
// locked-replacement configs, and policy mismatches — callers then
// replay runs in full.
func (tr *Trace) RunPlans(pol replacement.Kind, lockReplacementState bool) ([]RunPlan, bool) {
	if tr.plans == nil || lockReplacementState || pol != tr.planPolicy {
		return nil, false
	}
	return tr.plans, tr.planTouch
}

// Config parameterizes a Builder with the L1 geometry the provability
// analysis reasons about.
type Config struct {
	Sets, Ways int
	Policy     replacement.Kind
	// AnalyzeRuns enables the provable-hit analysis. It must be false
	// whenever replay-time behaviour can evict lines behind the
	// analysis's back: PL-cache bypasses, utag tracking (which changes
	// hit latency semantics), or a hardware prefetcher.
	AnalyzeRuns bool
	// LockReplacementState disables the LRU stack rule: hits to locked
	// lines skip the replacement update, so recency can no longer be
	// modelled from the access order alone.
	LockReplacementState bool
}

// Builder accumulates an access program and compiles it into a Trace.
// The zero value is not usable; construct with NewBuilder. A Builder
// may be Reset and reused; compiled Traces alias its storage and are
// valid until the next Reset.
type Builder struct {
	cfg      Config
	setMask  uint64
	useStack bool

	reqs []cache.Request
	runs []Run

	analyze bool
	// lastIdx[physLine] is the index of the line's most recent record.
	lastIdx map[uint64]int
	// lastUnprovable[set] is the index of the set's most recent record
	// NOT proven to hit (-1 if none): any such record may miss and
	// evict.
	lastUnprovable []int
	// recency[set] is the set's move-to-front list of distinct lines,
	// capped at ways entries, for the LRU stack rule: presence means a
	// reuse distance of at most ways-1.
	recency [][]uint64

	// Plan-compiler scratch, reused across Trace calls: the per-run
	// Lines and Reqs slices are windows into the two flat buffers.
	plans     []RunPlan
	planLines []uint64
	planReqs  []ReqCount
	planSeen  map[uint64]struct{}
}

// NewBuilder returns a Builder for the given L1 configuration. Sets
// must be a power of two (every geometry in the repo is).
func NewBuilder(cfg Config) *Builder {
	if cfg.Sets < 1 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("trace: set count must be a positive power of two")
	}
	if cfg.Ways < 1 {
		panic("trace: ways must be >= 1")
	}
	b := &Builder{
		cfg:      cfg,
		setMask:  uint64(cfg.Sets - 1),
		useStack: cfg.Policy == replacement.TrueLRU && !cfg.LockReplacementState,
		analyze:  cfg.AnalyzeRuns,
	}
	if b.analyze {
		b.lastIdx = make(map[uint64]int)
		b.lastUnprovable = make([]int, cfg.Sets)
		for i := range b.lastUnprovable {
			b.lastUnprovable[i] = -1
		}
		if b.useStack {
			b.recency = make([][]uint64, cfg.Sets)
		}
	}
	return b
}

// Len reports the number of records built so far.
func (b *Builder) Len() int { return len(b.reqs) }

// Load appends a plain load record.
func (b *Builder) Load(physLine uint64, requestor int) {
	b.append(cache.Request{PhysLine: physLine, LinearLine: physLine, Requestor: requestor})
}

// LoadOp appends a record with distinct linear line (for utag-tracking
// hierarchies) or a PL lock/unlock side effect. Non-load ops disable
// run analysis for the rest of the program: under the
// LockReplacementState fix their locked lines stop updating recency.
func (b *Builder) LoadOp(physLine, linearLine uint64, requestor int, op cache.Op) {
	if op != cache.OpLoad {
		b.analyze = false
		b.runs = b.runs[:0]
	}
	b.append(cache.Request{PhysLine: physLine, LinearLine: linearLine, Requestor: requestor, Op: op})
}

func (b *Builder) append(req cache.Request) {
	i := len(b.reqs)
	b.reqs = append(b.reqs, req)
	if !b.analyze {
		return
	}

	set := int(req.PhysLine & b.setMask)
	provable := false
	if last, seen := b.lastIdx[req.PhysLine]; seen {
		// Rule 1: no possibly-missing record in the set since the
		// line's own last record (which left it resident).
		provable = last >= b.lastUnprovable[set]
	}
	if b.useStack {
		// Rule 2: presence in the ways-capped recency list means at
		// most ways-1 distinct lines intervened.
		for _, ln := range b.recency[set] {
			if ln == req.PhysLine {
				provable = true
				break
			}
		}
		b.touchRecency(set, req.PhysLine)
	}
	b.lastIdx[req.PhysLine] = i
	if !provable {
		b.lastUnprovable[set] = i
		return
	}
	if n := len(b.runs); n > 0 && b.runs[n-1].End == i {
		b.runs[n-1].End = i + 1
	} else {
		b.runs = append(b.runs, Run{Start: i, End: i + 1})
	}
}

// touchRecency moves line to the front of the set's recency list,
// keeping at most ways entries (a deeper position means a reuse
// distance of at least ways — past the stack-property bound).
func (b *Builder) touchRecency(set int, line uint64) {
	list := b.recency[set]
	pos := -1
	for j, ln := range list {
		if ln == line {
			pos = j
			break
		}
	}
	switch {
	case pos == 0:
		return
	case pos > 0:
		copy(list[1:pos+1], list[:pos])
		list[0] = line
		return
	}
	limit := b.cfg.Ways
	if len(list) < limit {
		list = append(list, 0)
	}
	copy(list[1:], list)
	list[0] = line
	b.recency[set] = list
}

// Trace compiles the program built so far. The result aliases the
// Builder's storage and is invalidated by Reset.
func (b *Builder) Trace() *Trace {
	tr := &Trace{Reqs: b.reqs, Runs: b.runs}
	if b.analyze && len(b.runs) > 0 &&
		!b.cfg.LockReplacementState && b.cfg.Policy != replacement.BitPLRU {
		tr.plans = b.compilePlans()
		tr.planPolicy = b.cfg.Policy
		tr.planTouch = b.cfg.Policy == replacement.TrueLRU || b.cfg.Policy == replacement.TreePLRU
	}
	return tr
}

// compilePlans reduces every run to its RunPlan. Distinct lines in
// last-occurrence order come from a reverse walk (the first sighting
// walking backwards IS the last occurrence), reversed in place;
// requestor counts accumulate in first-appearance order so a plan
// replay grows the per-requestor table exactly as the full replay
// would.
func (b *Builder) compilePlans() []RunPlan {
	b.plans = b.plans[:0]
	b.planLines = b.planLines[:0]
	b.planReqs = b.planReqs[:0]
	if b.planSeen == nil {
		b.planSeen = make(map[uint64]struct{})
	}
	for _, run := range b.runs {
		lStart, rStart := len(b.planLines), len(b.planReqs)
		clear(b.planSeen)
		for i := run.End - 1; i >= run.Start; i-- {
			ln := b.reqs[i].PhysLine
			if _, seen := b.planSeen[ln]; !seen {
				b.planSeen[ln] = struct{}{}
				b.planLines = append(b.planLines, ln)
			}
		}
		lines := b.planLines[lStart:]
		for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
			lines[i], lines[j] = lines[j], lines[i]
		}
		for i := run.Start; i < run.End; i++ {
			req := b.reqs[i].Requestor
			counted := false
			for j := rStart; j < len(b.planReqs); j++ {
				if b.planReqs[j].Requestor == req {
					b.planReqs[j].N++
					counted = true
					break
				}
			}
			if !counted {
				b.planReqs = append(b.planReqs, ReqCount{Requestor: req, N: 1})
			}
		}
		b.plans = append(b.plans, RunPlan{Lines: lines, Reqs: b.planReqs[rStart:]})
	}
	return b.plans
}

// Reset clears the Builder for a new program, retaining its storage.
func (b *Builder) Reset() {
	b.reqs = b.reqs[:0]
	b.runs = b.runs[:0]
	b.analyze = b.cfg.AnalyzeRuns
	if !b.analyze {
		return
	}
	clear(b.lastIdx)
	for i := range b.lastUnprovable {
		b.lastUnprovable[i] = -1
	}
	for i := range b.recency {
		b.recency[i] = b.recency[i][:0]
	}
}
